// cfgtagc — the paper's "automatic hardware generator" as a command-line
// tool: a Yacc-style grammar file in, VHDL + implementation reports out,
// with optional tagging of an input file for quick experiments.
//
//   cfgtagc GRAMMAR [options]
//
//   --vhdl FILE         write structural VHDL for the generated tagger
//   --netlist FILE      write the gate-level netlist (cfgtag-netlist-v1)
//   --entity NAME       VHDL entity name (default: tagger)
//   --report            print LUT/FF/Fmax/bandwidth for both paper devices
//   --analysis          print the First/Follow analysis (paper Fig. 10)
//   --lint              print grammar diagnostics (arm conflicts etc.)
//   --tag FILE          tag the contents of FILE and print the tag stream
//   --cycle-accurate    tag via gate-level simulation instead of the model
//   --vcd FILE          with --tag: dump a VCD waveform of the simulation
//   --testbench FILE    with --tag: emit a self-checking VHDL testbench
//                       that replays the tagged input and asserts the tags
//   --mode MODE         anchored | scan | resync       (default anchored)
//   --backend ENGINE    functional | fused | lazy | auto: the software
//                       engine behind --tag (default functional; fused is
//                       the byte-class-compressed bit-parallel engine,
//                       lazy memoizes fused steps as a lazily built DFA,
//                       auto picks lazy when the grammar's byte-class x
//                       state-word product is small enough for the
//                       transition cache to pay off, fused otherwise)
//   --threads N         with --tag: shard the input at newline record
//                       boundaries and tag shards in parallel (needs
//                       --mode resync and newline-framed records;
//                       default 1)
//   --bytes-per-cycle N 1, 2 or 4                      (default 1)
//   --replicate N       decoder replication threshold  (default off)
//   --no-longest-match  disable the Fig. 7 look-ahead
//   --no-encoder        omit the index encoder
//   --metrics-out FILE  write Prometheus-style metrics ("-" = stdout)
//   --trace-out FILE    write a Chrome trace_event JSON of the run
//   --stats-port N      serve /metrics, /metrics.json, /trace.json,
//                       /events, /rules and /healthz over HTTP on
//                       127.0.0.1:N for the run's duration (0 = pick a
//                       free port; the bound port is printed)
//   --attribution       per-token/per-rule hot-path attribution (the
//                       /rules ranking and cfgtag_attr_* metrics)
//   --flight-recorder-out FILE
//                       dump the flight-recorder event ring to FILE on
//                       exit — and from a SIGINT/SIGTERM handler, so an
//                       interrupted run still leaves its last events
//   --save-artifact FILE
//                       serialize the compiled software tagger (fused or
//                       lazy backend) into a zero-copy artifact file
//   --load-artifact FILE
//                       skip the grammar compile entirely: mmap a saved
//                       artifact and tag with it (software engine only —
//                       no GRAMMAR argument, no hardware outputs)
//   --cache-dir DIR     content-addressed compile cache: load the
//                       artifact keyed by (grammar, options) from DIR if
//                       present, else compile and store it (ignored when
//                       hardware outputs are requested — those need the
//                       netlist, which artifacts do not carry)
//   --deadline-ms N     with --tag: abort the (software) scan N ms in,
//                       print the tags found so far, and exit nonzero
//                       with DEADLINE_EXCEEDED (ignored by
//                       --cycle-accurate; with --threads the deadline is
//                       shared across all shards)
//   --memory-budget-mb N
//                       cap the resilience resource budget at N MiB; as
//                       pressure rises the run degrades (DFA cache shed,
//                       session pools trimmed, artifact cache read-only)
//                       instead of growing unbounded — see
//                       docs/robustness.md
//   --faults SPEC       arm the fault injector, e.g.
//                       "artifact.mmap,scan.chunk:3:20" (same syntax as
//                       the CFGTAG_FAULTS environment variable; see
//                       docs/robustness.md for the site catalog)
//
// A second positional argument is shorthand for --tag:
//   cfgtagc GRAMMAR INPUT == cfgtagc GRAMMAR --tag INPUT
// With --load-artifact the grammar positional is dropped, so the first
// positional (if any) is the input to tag.

#include <unistd.h>

#include <cerrno>
#include <climits>
#include <optional>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/resilience/budget.h"
#include "core/resilience/deadline.h"
#include "core/resilience/fault_injector.h"
#include "core/token_tagger.h"
#include "core/worker_pool.h"
#include "grammar/analysis.h"
#include "grammar/grammar_parser.h"
#include "grammar/lint.h"
#include "obs/attribution.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/stats_server.h"
#include "obs/trace.h"
#include "rtl/device.h"
#include "rtl/serialize.h"
#include "tagger/artifact/cache.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s GRAMMAR [INPUT] [--vhdl FILE] [--entity NAME]\n"
               "       [--report] [--analysis] [--tag FILE]\n"
               "       [--cycle-accurate] [--mode anchored|scan|resync]\n"
               "       [--backend functional|fused|lazy|auto]\n"
               "       [--threads N] [--bytes-per-cycle N] [--replicate N]\n"
               "       [--no-longest-match] [--no-encoder]\n"
               "       [--metrics-out FILE] [--trace-out FILE]\n"
               "       [--stats-port N] [--attribution]\n"
               "       [--flight-recorder-out FILE]\n"
               "       [--save-artifact FILE] [--load-artifact FILE]\n"
               "       [--cache-dir DIR] [--deadline-ms N]\n"
               "       [--memory-budget-mb N] [--faults SPEC]\n",
               argv0);
  return 2;
}

// Observability sinks, written on every exit path (a failed run's partial
// metrics and trace are exactly what one wants when debugging it).
std::string g_metrics_out;
std::string g_trace_out;
std::string g_flight_out;

// Lives for the whole process so /healthz stays up across the run; the
// destructor joins the accept thread on exit.
cfgtag::obs::StatsServer g_stats_server;

// Prints a stage's Status failure, flight-records it (so --flight-
// recorder-out dumps carry the failure that ended the run), and returns
// the tool's error exit code.
int FailStatus(const char* stage, const cfgtag::Status& status) {
  std::fprintf(stderr, "%s error: %s\n", stage, status.ToString().c_str());
  cfgtag::obs::RecordEvent(cfgtag::obs::EventKind::kStatusError, 0, 0,
                           std::string(stage) + ": " + status.ToString());
  return 1;
}

void WriteObservability() {
  if (!g_metrics_out.empty()) {
    const std::string text =
        cfgtag::obs::MetricsRegistry::Default().ExpositionText();
    if (g_metrics_out == "-") {
      std::fwrite(text.data(), 1, text.size(), stdout);
    } else {
      std::ofstream out(g_metrics_out, std::ios::binary);
      out << text;
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", g_metrics_out.c_str());
      } else {
        std::fprintf(stderr, "wrote metrics to %s\n", g_metrics_out.c_str());
      }
    }
  }
  if (!g_trace_out.empty()) {
    std::ofstream out(g_trace_out, std::ios::binary);
    cfgtag::obs::Tracer::Default().WriteChromeTrace(out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", g_trace_out.c_str());
    } else {
      std::fprintf(stderr, "wrote trace to %s (open in chrome://tracing)\n",
                   g_trace_out.c_str());
    }
  }
  if (!g_flight_out.empty()) {
    std::ofstream out(g_flight_out, std::ios::binary);
    cfgtag::obs::FlightRecorder::Default().WriteJson(out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", g_flight_out.c_str());
    } else {
      std::fprintf(stderr, "wrote flight-recorder events to %s\n",
                   g_flight_out.c_str());
    }
  }
}

// Strict positive-integer parse: the whole string must be digits (no
// trailing junk — "12abc" is an error, unlike atoi), and the value must fit
// and be >= 1.
bool ParsePositiveInt(const char* s, int* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  if (v <= 0 || v > INT_MAX) return false;
  *out = static_cast<int>(v);
  return true;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

int RunTool(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);

  std::string grammar_path;
  std::string vhdl_path;
  std::string netlist_path;
  std::string entity = "tagger";
  std::string tag_path;
  std::string vcd_path;
  std::string testbench_path;
  bool report = false;
  bool analysis = false;
  bool lint = false;
  bool cycle_accurate = false;
  std::string save_artifact;
  std::string load_artifact;
  std::string cache_dir;
  int threads = 1;
  int deadline_ms = 0;       // 0 = no deadline
  int memory_budget_mb = 0;  // 0 = unlimited
  int stats_port = -1;  // -1 = no stats server; 0 = kernel-assigned
  bool attribution = false;
  cfgtag::hwgen::HwOptions options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // --flag=VALUE and --flag VALUE are both accepted; flags and
    // positionals mix in any order.
    std::string inline_value;
    bool has_inline = false;
    if (arg.rfind("--", 0) == 0) {
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
        has_inline = true;
      }
    } else {
      // Positionals: first the grammar, then optionally an input to tag.
      if (grammar_path.empty()) {
        grammar_path = arg;
      } else if (tag_path.empty()) {
        tag_path = arg;
      } else {
        return Usage(argv[0]);
      }
      continue;
    }
    auto next = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--vhdl") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      vhdl_path = v;
    } else if (arg == "--netlist") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      netlist_path = v;
    } else if (arg == "--entity") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      entity = v;
    } else if (arg == "--tag") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      tag_path = v;
    } else if (arg == "--vcd") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      vcd_path = v;
    } else if (arg == "--testbench") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      testbench_path = v;
    } else if (arg == "--report") {
      report = true;
    } else if (arg == "--analysis") {
      analysis = true;
    } else if (arg == "--lint") {
      lint = true;
    } else if (arg == "--cycle-accurate") {
      cycle_accurate = true;
    } else if (arg == "--mode") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      if (std::strcmp(v, "anchored") == 0) {
        options.tagger.arm_mode = cfgtag::tagger::ArmMode::kAnchored;
      } else if (std::strcmp(v, "scan") == 0) {
        options.tagger.arm_mode = cfgtag::tagger::ArmMode::kScan;
      } else if (std::strcmp(v, "resync") == 0) {
        options.tagger.arm_mode = cfgtag::tagger::ArmMode::kResync;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--backend") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      if (std::strcmp(v, "functional") == 0) {
        options.tagger.backend = cfgtag::tagger::TaggerBackend::kFunctional;
      } else if (std::strcmp(v, "fused") == 0) {
        options.tagger.backend = cfgtag::tagger::TaggerBackend::kFused;
      } else if (std::strcmp(v, "lazy") == 0) {
        options.tagger.backend = cfgtag::tagger::TaggerBackend::kLazyDfa;
      } else if (std::strcmp(v, "auto") == 0) {
        options.tagger.backend = cfgtag::tagger::TaggerBackend::kAuto;
      } else {
        std::fprintf(stderr,
                     "--backend must be functional, fused, lazy or auto\n");
        return Usage(argv[0]);
      }
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      if (!ParsePositiveInt(v, &threads)) {
        std::fprintf(stderr, "--threads needs a positive count, got \"%s\"\n",
                     v);
        return Usage(argv[0]);
      }
    } else if (arg == "--bytes-per-cycle") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      options.bytes_per_cycle = std::atoi(v);
    } else if (arg == "--replicate") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      const int threshold = std::atoi(v);
      if (threshold <= 0) {
        std::fprintf(stderr, "--replicate needs a positive threshold\n");
        return Usage(argv[0]);
      }
      options.decoder_replication = true;
      options.replication_threshold = static_cast<uint32_t>(threshold);
    } else if (arg == "--no-longest-match") {
      options.tagger.longest_match = false;
    } else if (arg == "--no-encoder") {
      options.emit_index_encoder = false;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      g_metrics_out = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      g_trace_out = v;
    } else if (arg == "--stats-port") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      if (std::strcmp(v, "0") == 0) {
        stats_port = 0;
      } else if (!ParsePositiveInt(v, &stats_port) || stats_port > 65535) {
        std::fprintf(stderr, "--stats-port needs a port (0-65535), got "
                     "\"%s\"\n", v);
        return Usage(argv[0]);
      }
    } else if (arg == "--attribution") {
      attribution = true;
    } else if (arg == "--flight-recorder-out") {
      const char* v = next();
      if (!v || *v == '\0') return Usage(argv[0]);
      // Validate the path up front, exactly like --threads/--stats-port
      // validate their values: a dump that would only fail at exit (or in
      // the signal handler) is a silently lost flight recording. Probe by
      // opening for append — creates the file if absent, never truncates
      // an existing one.
      std::ofstream probe(v, std::ios::app | std::ios::binary);
      if (!probe) {
        std::fprintf(stderr,
                     "--flight-recorder-out needs a writable path, "
                     "cannot open \"%s\"\n", v);
        return Usage(argv[0]);
      }
      g_flight_out = v;
    } else if (arg == "--save-artifact") {
      const char* v = next();
      if (!v || *v == '\0') return Usage(argv[0]);
      // Same up-front probe discipline as --flight-recorder-out: fail
      // before the (potentially long) compile, not after it. Append mode
      // creates the file if absent and never truncates an existing one.
      std::ofstream probe(v, std::ios::app | std::ios::binary);
      if (!probe) {
        std::fprintf(stderr,
                     "--save-artifact needs a writable path, "
                     "cannot open \"%s\"\n", v);
        return Usage(argv[0]);
      }
      save_artifact = v;
    } else if (arg == "--load-artifact") {
      const char* v = next();
      if (!v || *v == '\0') return Usage(argv[0]);
      std::ifstream probe(v, std::ios::binary);
      if (!probe) {
        std::fprintf(stderr,
                     "--load-artifact needs a readable artifact file, "
                     "cannot open \"%s\"\n", v);
        return Usage(argv[0]);
      }
      load_artifact = v;
    } else if (arg == "--cache-dir") {
      const char* v = next();
      if (!v || *v == '\0') return Usage(argv[0]);
      // Probe by creating (and removing) a file in the directory — the
      // one capability the cache needs; an unwritable or missing
      // directory fails here instead of silently disabling the cache.
      const std::string probe_path =
          std::string(v) + "/.cfgtag-probe-" + std::to_string(::getpid());
      {
        std::ofstream probe(probe_path, std::ios::binary);
        if (!probe) {
          std::fprintf(stderr,
                       "--cache-dir needs a writable directory, "
                       "cannot create files in \"%s\"\n", v);
          return Usage(argv[0]);
        }
      }
      std::remove(probe_path.c_str());
      cache_dir = v;
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      if (!ParsePositiveInt(v, &deadline_ms)) {
        std::fprintf(stderr,
                     "--deadline-ms needs a positive millisecond count, "
                     "got \"%s\"\n", v);
        return Usage(argv[0]);
      }
    } else if (arg == "--memory-budget-mb") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      if (!ParsePositiveInt(v, &memory_budget_mb)) {
        std::fprintf(stderr,
                     "--memory-budget-mb needs a positive MiB count, "
                     "got \"%s\"\n", v);
        return Usage(argv[0]);
      }
    } else if (arg == "--faults") {
      const char* v = next();
      if (!v || *v == '\0') return Usage(argv[0]);
      // Validate-and-arm up front, like every other flag: a typo'd site
      // name fails the run here, not silently never-fires.
      const cfgtag::Status armed =
          cfgtag::core::resilience::FaultInjector::Instance().ArmFromSpec(v);
      if (!armed.ok()) {
        std::fprintf(stderr, "--faults: %s\n", armed.ToString().c_str());
        return Usage(argv[0]);
      }
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }

  const bool needs_hardware = report || cycle_accurate ||
                              !vhdl_path.empty() || !netlist_path.empty() ||
                              !testbench_path.empty() || !vcd_path.empty();
  if (!load_artifact.empty()) {
    // No grammar compile happens, so the grammar positional slot becomes
    // the input to tag.
    if (!grammar_path.empty()) {
      if (!tag_path.empty()) return Usage(argv[0]);
      tag_path = grammar_path;
      grammar_path.clear();
    }
    if (needs_hardware) {
      std::fprintf(stderr,
                   "--load-artifact provides the software engine only; "
                   "--vhdl/--netlist/--report/--cycle-accurate/"
                   "--testbench/--vcd need a grammar compile\n");
      return Usage(argv[0]);
    }
    if (analysis || lint) {
      std::fprintf(stderr,
                   "--analysis/--lint need the grammar source, not an "
                   "artifact\n");
      return Usage(argv[0]);
    }
  } else if (grammar_path.empty()) {
    return Usage(argv[0]);
  }

  if (attribution) cfgtag::obs::AttributionTable::set_enabled(true);
  if (memory_budget_mb > 0) {
    // Before any tagger construction, so the compile's DFA cache and the
    // artifact mmap both charge against the cap from byte one.
    cfgtag::core::resilience::ResourceBudget::Process().SetLimit(
        static_cast<uint64_t>(memory_budget_mb) << 20);
    std::printf("memory budget: %d MiB\n", memory_budget_mb);
  }
  if (!g_flight_out.empty()) {
    // Crash-safe path: SIGINT/SIGTERM dump the ring before the process
    // dies with the conventional signal status.
    cfgtag::obs::FlightRecorder::InstallSignalDump(g_flight_out.c_str());
  }
  if (stats_port >= 0) {
    const cfgtag::Status started = g_stats_server.Start(stats_port);
    if (!started.ok()) return FailStatus("stats server", started);
    std::printf("stats server on http://127.0.0.1:%d/ "
                "(/metrics /metrics.json /trace.json /events /rules "
                "/healthz)\n",
                g_stats_server.port());
  }

  std::optional<cfgtag::core::CompiledTagger> tagger;
  if (!load_artifact.empty()) {
    auto loaded = cfgtag::core::CompiledTagger::LoadArtifact(load_artifact);
    if (!loaded.ok()) return FailStatus("artifact", loaded.status());
    tagger.emplace(std::move(loaded).value());
    const auto& g = tagger->grammar();
    std::printf("grammar: %zu tokens, %zu nonterminals, %zu productions, "
                "%zu pattern bytes (from artifact %s)\n",
                g.NumTokens(), g.NumNonterminals(), g.productions().size(),
                g.PatternBytes(), load_artifact.c_str());
  } else {
    std::string grammar_text;
    if (!ReadFile(grammar_path, &grammar_text)) {
      std::fprintf(stderr, "cannot read %s\n", grammar_path.c_str());
      return 1;
    }
    auto grammar = [&] {
      cfgtag::obs::ScopedSpan span("grammar.Parse");
      return cfgtag::grammar::ParseGrammar(grammar_text);
    }();
    if (!grammar.ok()) return FailStatus("grammar", grammar.status());
    std::printf("grammar: %zu tokens, %zu nonterminals, %zu productions, "
                "%zu pattern bytes\n",
                grammar->NumTokens(), grammar->NumNonterminals(),
                grammar->productions().size(), grammar->PatternBytes());

    if (analysis) {
      auto a = cfgtag::grammar::Analyze(*grammar);
      if (!a.ok()) return FailStatus("analysis", a.status());
      std::printf("\n%s", a->ToString(*grammar).c_str());
    }

    if (lint) {
      auto findings = cfgtag::grammar::Lint(*grammar);
      if (!findings.ok()) return FailStatus("lint", findings.status());
      if (findings->empty()) {
        std::printf("lint: no findings\n");
      }
      for (const auto& f : *findings) {
        std::printf("lint [%s]: %s\n",
                    cfgtag::grammar::LintKindName(f.kind), f.message.c_str());
      }
    }

    // Hardware outputs need the netlist, which artifacts do not carry, so
    // the cache only serves software-tagging runs.
    auto compiled =
        (!cache_dir.empty() && !needs_hardware)
            ? cfgtag::core::CompiledTagger::CompileCached(
                  std::move(grammar).value(), options, cache_dir)
            : cfgtag::core::CompiledTagger::Compile(
                  std::move(grammar).value(), options);
    if (!compiled.ok()) return FailStatus("compile", compiled.status());
    tagger.emplace(std::move(compiled).value());
  }
  if (tagger->has_hardware()) {
    const auto stats = tagger->hardware().netlist.ComputeStats();
    std::printf("netlist: %zu gates, %zu registers, %d byte(s)/cycle, "
                "match latency %d cycle(s)\n",
                stats.num_gates, stats.num_regs, tagger->hardware().lanes,
                tagger->hardware().match_latency);
  } else {
    std::printf("software engine loaded from artifact (no netlist)\n");
  }

  if (!save_artifact.empty()) {
    auto bytes = tagger->Serialize();
    if (!bytes.ok()) return FailStatus("artifact", bytes.status());
    const cfgtag::Status stored =
        cfgtag::tagger::artifact::AtomicWriteFile(save_artifact, *bytes);
    if (!stored.ok()) return FailStatus("artifact", stored);
    std::printf("wrote %zu-byte artifact to %s\n", bytes->size(),
                save_artifact.c_str());
  }

  if (report) {
    for (const cfgtag::rtl::Device& device :
         {cfgtag::rtl::VirtexE2000(), cfgtag::rtl::Virtex4LX200()}) {
      auto r = tagger->Implement(device);
      if (!r.ok()) return FailStatus("implement", r.status());
      std::printf("\n%s: %zu LUTs (%.2f/byte), %zu FFs, %.0f MHz, "
                  "%.2f Gbps\n",
                  device.name.c_str(), r->area.luts, r->area.luts_per_byte,
                  r->area.ffs, r->timing.fmax_mhz, r->bandwidth_gbps);
      for (const auto& bucket : r->area.breakdown) {
        std::printf("  %-10s %6zu LUTs %6zu FFs\n",
                    bucket.scope.empty() ? "(misc)" : bucket.scope.c_str(),
                    bucket.luts, bucket.ffs);
      }
      std::printf("  %s\n", r->timing.ToString().c_str());
    }
  }

  if (!vhdl_path.empty()) {
    auto vhdl = tagger->ExportVhdl(entity);
    if (!vhdl.ok()) return FailStatus("vhdl", vhdl.status());
    std::ofstream out(vhdl_path, std::ios::binary);
    out << *vhdl;
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", vhdl_path.c_str());
      return 1;
    }
    std::printf("wrote %zu bytes of VHDL to %s (entity %s)\n", vhdl->size(),
                vhdl_path.c_str(), entity.c_str());
  }

  if (!netlist_path.empty()) {
    std::ofstream out(netlist_path, std::ios::binary);
    const std::string text =
        cfgtag::rtl::SerializeNetlist(tagger->hardware().netlist);
    out << text;
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", netlist_path.c_str());
      return 1;
    }
    std::printf("wrote %zu bytes of netlist to %s\n", text.size(),
                netlist_path.c_str());
  }

  if (!tag_path.empty()) {
    std::string input;
    if (!ReadFile(tag_path, &input)) {
      std::fprintf(stderr, "cannot read %s\n", tag_path.c_str());
      return 1;
    }
    cfgtag::obs::ScopedSpan tag_span("cfgtagc.Tag");
    std::vector<cfgtag::tagger::Tag> tags;
    // One deadline for the whole tag run: with --threads every shard
    // checks the same clock, so the first shard to notice trips them all.
    cfgtag::Status tag_status;
    const bool controlled = deadline_ms > 0 && !cycle_accurate;
    cfgtag::core::resilience::ScanControl control;
    if (controlled) {
      control.deadline =
          cfgtag::core::resilience::Deadline::AfterMillis(deadline_ms);
    }
    if (cycle_accurate) {
      if (deadline_ms > 0) {
        std::fprintf(stderr,
                     "--deadline-ms is ignored with --cycle-accurate "
                     "(the simulator is not deadline-aware)\n");
      }
      if (threads > 1) {
        std::fprintf(stderr,
                     "--threads is ignored with --cycle-accurate "
                     "(the simulator is single-stream)\n");
      }
      auto hw = tagger->TagCycleAccurate(input);
      if (!hw.ok()) return FailStatus("simulation", hw.status());
      tags = std::move(hw).value();
    } else if (threads > 1) {
      // Shard the input at newline record boundaries and tag shards in
      // parallel. Only resync mode makes a fresh tagger at a record
      // boundary equivalent to one that streamed through it — and only at
      // a RECORD boundary: a mid-message token delimiter still carries
      // follow-set arms a fresh tagger would not have.
      const cfgtag::regex::CharClass record =
          cfgtag::regex::CharClass::Of('\n');
      if (options.tagger.EffectiveArmMode() !=
          cfgtag::tagger::ArmMode::kResync) {
        std::fprintf(stderr,
                     "--threads needs --mode resync; tagging with one "
                     "thread instead\n");
        tags = tagger->Tag(input);
      } else if (!record.Minus(options.tagger.delimiters).Empty()) {
        std::fprintf(stderr,
                     "--threads needs newline to be a tagger delimiter; "
                     "tagging with one thread instead\n");
        tags = tagger->Tag(input);
      } else {
        cfgtag::core::WorkerPool pool(threads);
        const std::vector<size_t> starts = cfgtag::core::ShardSplitPoints(
            input, record,
            /*max_shards=*/2 * static_cast<size_t>(threads),
            /*min_shard_bytes=*/4096);
        std::vector<std::vector<cfgtag::tagger::Tag>> shard(starts.size());
        std::vector<cfgtag::Status> shard_status(starts.size());
        pool.RunIndexed(starts.size(), [&](size_t i) {
          const size_t begin = starts[i];
          const size_t end =
              i + 1 < starts.size() ? starts[i + 1] : input.size();
          const std::string_view piece =
              std::string_view(input).substr(begin, end - begin);
          if (controlled) {
            shard_status[i] = tagger->TagWithControl(
                piece,
                [&](const cfgtag::tagger::Tag& t) {
                  shard[i].push_back(t);
                  return true;
                },
                control);
          } else {
            shard[i] = tagger->Tag(piece);
          }
          for (cfgtag::tagger::Tag& t : shard[i]) t.end += begin;
        });
        // Merge every shard — a tripped shard still tagged its consumed
        // prefix, and those partial tags are worth printing.
        for (std::vector<cfgtag::tagger::Tag>& s : shard) {
          tags.insert(tags.end(), s.begin(), s.end());
        }
        for (size_t i = 0; i < shard_status.size(); ++i) {
          if (!shard_status[i].ok()) {
            tag_status = shard_status[i].WithContext(
                "shard " + std::to_string(i));
            break;
          }
        }
        std::printf("tagged with %d thread(s) across %zu shard(s)\n",
                    pool.num_threads(), starts.size());
      }
    } else if (controlled) {
      tag_status = tagger->TagWithControl(
          input,
          [&](const cfgtag::tagger::Tag& t) {
            tags.push_back(t);
            return true;
          },
          control);
    } else {
      tags = tagger->Tag(input);
    }
    if (!testbench_path.empty()) {
      auto tb = tagger->ExportVhdlTestbench(entity, input);
      if (!tb.ok()) return FailStatus("testbench", tb.status());
      std::ofstream out(testbench_path, std::ios::binary);
      out << *tb;
      std::printf("wrote testbench to %s (run against the --vhdl output)\n",
                  testbench_path.c_str());
    }
    if (!vcd_path.empty()) {
      std::ofstream vcd(vcd_path, std::ios::binary);
      auto status = tagger->DumpWaveform(input, vcd);
      if (!status.ok()) return FailStatus("vcd", status);
      std::printf("wrote waveform to %s\n", vcd_path.c_str());
    }
    // Report the engine the compile resolved to (--backend auto becomes
    // fused or lazy-dfa by here).
    const char* engine = "functional";
    if (cycle_accurate) {
      engine = "cycle-accurate";
    } else if (tagger->backend() == cfgtag::tagger::TaggerBackend::kFused) {
      engine = "fused";
    } else if (tagger->backend() ==
               cfgtag::tagger::TaggerBackend::kLazyDfa) {
      engine = "lazy-dfa";
    }
    std::printf("%zu tags from %s (%s engine)%s:\n", tags.size(),
                tag_path.c_str(), engine,
                tag_status.ok() ? "" : ", partial — scan aborted");
    for (const auto& t : tags) {
      std::printf("  byte %8llu  %s\n",
                  static_cast<unsigned long long>(t.end),
                  tagger->grammar().tokens()[t.token].name.c_str());
    }
    // Partial tags printed above; the exit status still reports the trip.
    if (!tag_status.ok()) return FailStatus("tag", tag_status);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const int code = RunTool(argc, argv);
  if (code != 2) WriteObservability();  // usage errors have nothing to report
  return code;
}
