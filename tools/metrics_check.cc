// metrics_check — offline validator for the two machine-readable formats
// the observability layer emits: Prometheus text exposition 0.0.4
// (/metrics, what an external scraper parses) and the registry's JSON dump
// (bench_metrics.json / BENCH_*.json, what the CI perf gate parses).
//
//   metrics_check --prom FILE            validate a Prometheus text exposition
//   metrics_check --json FILE            validate a registry JSON dump
//   metrics_check --expect-family NAME   require a metric family (repeatable)
//
// Both modes may be given together; each FILE is checked independently.
// --expect-family NAME fails the run unless some checked file contains a
// metric (prom sample / HELP / TYPE name, or JSON object key) whose name
// starts with NAME — the CI hook that keeps instrument families such as
// cfgtag_artifact_ from silently disappearing from the exposition.
// Exit 0 when every file validates, 1 with per-line diagnostics otherwise.
// Dependency-free by design (the repo's no-new-deps rule): the Prometheus
// checker is a hand-rolled line grammar, the JSON checker a
// recursive-descent parser over the subset the registry emits (objects,
// arrays, strings, numbers, booleans, null).

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Diag {
  int line;
  std::string message;
};

// ---------------------------------------------------------------------------
// Prometheus text exposition 0.0.4.
// ---------------------------------------------------------------------------

bool IsMetricNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool IsMetricNameChar(char c) {
  return IsMetricNameStart(c) || std::isdigit(static_cast<unsigned char>(c));
}
bool IsLabelNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsLabelNameChar(char c) {
  return IsLabelNameStart(c) || std::isdigit(static_cast<unsigned char>(c));
}

// Parses a metric name at s[i], advancing i past it. Empty result = error.
std::string ParseMetricName(const std::string& s, size_t& i) {
  const size_t begin = i;
  if (i < s.size() && IsMetricNameStart(s[i])) {
    ++i;
    while (i < s.size() && IsMetricNameChar(s[i])) ++i;
  }
  return s.substr(begin, i - begin);
}

// Validates a {label="value",...} block at s[i] (i points at '{'),
// advancing past the closing '}'. Escapes allowed in values: \\ \" \n.
bool ParseLabels(const std::string& s, size_t& i, std::string* error) {
  ++i;  // consume '{'
  bool first = true;
  while (true) {
    if (i >= s.size()) {
      *error = "unterminated label block";
      return false;
    }
    if (s[i] == '}') {
      ++i;
      return true;
    }
    if (!first) {
      if (s[i] != ',') {
        *error = "expected ',' or '}' in label block";
        return false;
      }
      ++i;
      // A trailing comma before '}' is legal exposition.
      if (i < s.size() && s[i] == '}') {
        ++i;
        return true;
      }
    }
    first = false;
    if (i >= s.size() || !IsLabelNameStart(s[i])) {
      *error = "bad label name";
      return false;
    }
    ++i;
    while (i < s.size() && IsLabelNameChar(s[i])) ++i;
    if (i >= s.size() || s[i] != '=') {
      *error = "expected '=' after label name";
      return false;
    }
    ++i;
    if (i >= s.size() || s[i] != '"') {
      *error = "label value must be double-quoted";
      return false;
    }
    ++i;
    while (true) {
      if (i >= s.size()) {
        *error = "unterminated label value";
        return false;
      }
      const char c = s[i];
      if (c == '"') {
        ++i;
        break;
      }
      if (c == '\\') {
        if (i + 1 >= s.size() || (s[i + 1] != '\\' && s[i + 1] != '"' &&
                                  s[i + 1] != 'n')) {
          *error = "bad escape in label value (allowed: \\\\ \\\" \\n)";
          return false;
        }
        i += 2;
        continue;
      }
      ++i;
    }
  }
}

// A sample value: a float, possibly signed, or +Inf/-Inf/NaN.
bool IsSampleValue(const std::string& v) {
  if (v.empty()) return false;
  if (v == "+Inf" || v == "-Inf" || v == "Inf" || v == "NaN") return true;
  char* end = nullptr;
  std::strtod(v.c_str(), &end);
  return end == v.c_str() + v.size();
}

// Validates one exposition; appends diagnostics. HELP/TYPE comments must
// name a metric; sample lines must be `name[{labels}] value [timestamp]`.
// Every metric name seen (samples and HELP/TYPE comments) lands in `names`
// for --expect-family matching.
void CheckProm(const std::string& text, std::vector<Diag>* diags,
               std::set<std::string>* names) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  int samples = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# HELP name text", "# TYPE name kind", or a plain comment.
      std::istringstream ls(line);
      std::string hash, keyword, name;
      ls >> hash >> keyword;
      if (keyword == "HELP" || keyword == "TYPE") {
        if (!(ls >> name) || name.empty() || !IsMetricNameStart(name[0])) {
          diags->push_back({lineno, "# " + keyword + " without a metric name"});
          continue;
        }
        for (char c : name) {
          if (!IsMetricNameChar(c)) {
            diags->push_back({lineno, "bad metric name in # " + keyword +
                                          ": " + name});
            break;
          }
        }
        names->insert(name);
        if (keyword == "TYPE") {
          std::string kind;
          ls >> kind;
          if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
              kind != "summary" && kind != "untyped") {
            diags->push_back({lineno, "unknown TYPE kind: " + kind});
          }
        }
      }
      continue;
    }
    size_t i = 0;
    const std::string name = ParseMetricName(line, i);
    if (name.empty()) {
      diags->push_back({lineno, "sample line does not start with a metric "
                                "name"});
      continue;
    }
    names->insert(name);
    if (i < line.size() && line[i] == '{') {
      std::string error;
      if (!ParseLabels(line, i, &error)) {
        diags->push_back({lineno, error});
        continue;
      }
      // Record the labeled form too, so --expect-family can pin a label
      // (e.g. cfgtag_degraded_mode{component=) exactly like it can
      // against the JSON dumps, whose keys carry the labels.
      names->insert(line.substr(0, i));
    }
    if (i >= line.size() || line[i] != ' ') {
      diags->push_back({lineno, "expected space before sample value"});
      continue;
    }
    while (i < line.size() && line[i] == ' ') ++i;
    const size_t value_begin = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (!IsSampleValue(line.substr(value_begin, i - value_begin))) {
      diags->push_back({lineno, "bad sample value: " +
                                    line.substr(value_begin,
                                                i - value_begin)});
      continue;
    }
    // Optional millisecond timestamp.
    while (i < line.size() && line[i] == ' ') ++i;
    if (i < line.size()) {
      const size_t ts_begin = i;
      if (line[i] == '-') ++i;
      while (i < line.size() && std::isdigit(static_cast<unsigned char>(line[i]))) {
        ++i;
      }
      if (i != line.size() || i == ts_begin) {
        diags->push_back({lineno, "trailing garbage after sample value"});
        continue;
      }
    }
    ++samples;
  }
  if (samples == 0) {
    diags->push_back({0, "exposition contains no samples"});
  }
}

// ---------------------------------------------------------------------------
// JSON (the subset the registry emits).
// ---------------------------------------------------------------------------

struct JsonParser {
  const std::string& s;
  size_t i = 0;
  std::string error;
  // Every object key, at any depth — the registry dump keys metrics by
  // name, so this is the JSON-side input to --expect-family.
  std::set<std::string>* keys = nullptr;

  int Line() const {
    int line = 1;
    for (size_t k = 0; k < i && k < s.size(); ++k) {
      if (s[k] == '\n') ++line;
    }
    return line;
  }

  void SkipWs() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r')) {
      ++i;
    }
  }

  bool Fail(const std::string& message) {
    if (error.empty()) error = message;
    return false;
  }

  bool ParseString(std::string* out = nullptr) {
    if (i >= s.size() || s[i] != '"') return Fail("expected string");
    ++i;
    const size_t begin = i;
    while (i < s.size()) {
      const char c = s[i];
      if (c == '"') {
        // Raw (still-escaped) content is fine for prefix matching: metric
        // names contain no characters that need escaping.
        if (out != nullptr) *out = s.substr(begin, i - begin);
        ++i;
        return true;
      }
      if (c == '\\') {
        if (i + 1 >= s.size()) return Fail("dangling escape");
        const char e = s[i + 1];
        if (e == 'u') {
          if (i + 5 >= s.size()) return Fail("short \\u escape");
          for (size_t k = i + 2; k < i + 6; ++k) {
            if (!std::isxdigit(static_cast<unsigned char>(s[k]))) {
              return Fail("bad \\u escape");
            }
          }
          i += 6;
          continue;
        }
        if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return Fail(std::string("bad escape \\") + e);
        }
        i += 2;
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      ++i;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber() {
    const size_t begin = i;
    if (i < s.size() && s[i] == '-') ++i;
    if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i]))) {
      return Fail("bad number");
    }
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
    if (i < s.size() && s[i] == '.') {
      ++i;
      if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i]))) {
        return Fail("bad fraction");
      }
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
        ++i;
      }
    }
    if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
      ++i;
      if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
      if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i]))) {
        return Fail("bad exponent");
      }
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
        ++i;
      }
    }
    return i > begin;
  }

  bool ParseValue(int depth) {
    if (depth > 64) return Fail("nesting too deep");
    SkipWs();
    if (i >= s.size()) return Fail("unexpected end of input");
    const char c = s[i];
    if (c == '{') {
      ++i;
      SkipWs();
      if (i < s.size() && s[i] == '}') {
        ++i;
        return true;
      }
      while (true) {
        SkipWs();
        std::string key;
        if (!ParseString(&key)) return Fail("object key must be a string");
        if (keys != nullptr) keys->insert(key);
        SkipWs();
        if (i >= s.size() || s[i] != ':') return Fail("expected ':'");
        ++i;
        if (!ParseValue(depth + 1)) return false;
        SkipWs();
        if (i < s.size() && s[i] == ',') {
          ++i;
          continue;
        }
        if (i < s.size() && s[i] == '}') {
          ++i;
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++i;
      SkipWs();
      if (i < s.size() && s[i] == ']') {
        ++i;
        return true;
      }
      while (true) {
        if (!ParseValue(depth + 1)) return false;
        SkipWs();
        if (i < s.size() && s[i] == ',') {
          ++i;
          continue;
        }
        if (i < s.size() && s[i] == ']') {
          ++i;
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') return ParseString();
    if (c == 't') {
      if (s.compare(i, 4, "true") != 0) return Fail("bad literal");
      i += 4;
      return true;
    }
    if (c == 'f') {
      if (s.compare(i, 5, "false") != 0) return Fail("bad literal");
      i += 5;
      return true;
    }
    if (c == 'n') {
      if (s.compare(i, 4, "null") != 0) return Fail("bad literal");
      i += 4;
      return true;
    }
    return ParseNumber();
  }
};

void CheckJson(const std::string& text, std::vector<Diag>* diags,
               std::set<std::string>* names) {
  JsonParser parser{text, 0, {}, names};
  if (!parser.ParseValue(0)) {
    diags->push_back({parser.Line(), parser.error});
    return;
  }
  parser.SkipWs();
  if (parser.i != text.size()) {
    diags->push_back({parser.Line(), "trailing garbage after JSON value"});
  }
}

// ---------------------------------------------------------------------------

int CheckFile(const char* mode, const char* path,
              std::set<std::string>* names) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "metrics_check: cannot read %s\n", path);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  std::vector<Diag> diags;
  if (std::strcmp(mode, "--prom") == 0) {
    CheckProm(text, &diags, names);
  } else {
    CheckJson(text, &diags, names);
  }
  if (diags.empty()) {
    std::printf("%s: OK (%s, %zu bytes)\n", path, mode + 2, text.size());
    return 0;
  }
  for (const Diag& d : diags) {
    if (d.line > 0) {
      std::fprintf(stderr, "%s:%d: %s\n", path, d.line, d.message.c_str());
    } else {
      std::fprintf(stderr, "%s: %s\n", path, d.message.c_str());
    }
  }
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: metrics_check [--prom FILE]... [--json FILE]...\n"
               "                     [--expect-family NAME]...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  int rc = 0;
  bool checked_file = false;
  std::set<std::string> names;
  std::vector<std::string> families;
  for (int i = 1; i < argc; ++i) {
    const bool is_file = std::strcmp(argv[i], "--prom") == 0 ||
                         std::strcmp(argv[i], "--json") == 0;
    if (!is_file && std::strcmp(argv[i], "--expect-family") != 0) {
      return Usage();
    }
    if (i + 1 >= argc) return Usage();
    if (is_file) {
      rc |= CheckFile(argv[i], argv[i + 1], &names);
      checked_file = true;
    } else {
      families.push_back(argv[i + 1]);
    }
    ++i;
  }
  if (!checked_file && !families.empty()) {
    std::fprintf(stderr,
                 "metrics_check: --expect-family needs at least one "
                 "--prom/--json file to scan\n");
    return Usage();
  }
  for (const std::string& family : families) {
    bool found = false;
    for (const std::string& name : names) {
      if (name.compare(0, family.size(), family) == 0) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr,
                   "metrics_check: no metric in any checked file matches "
                   "family prefix %s\n",
                   family.c_str());
      rc |= 1;
    }
  }
  return rc;
}
