// Stress grammar: a JSON subset with deep recursion through objects and
// arrays — heavy use of epsilon productions, nested Follow sets, and a
// non-trivial STR token (quoted, interior class). Cross-checks all three
// engines on nested documents.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/rng.h"
#include "core/token_tagger.h"
#include "grammar/grammar_parser.h"
#include "tagger/ll_parser.h"

namespace cfgtag {
namespace {

const std::string& JsonGrammarText() {
  static const std::string* const kText = [] {
    // The checked-in grammar file is the source of truth so the CLI and
    // the tests exercise the same bytes.
    std::ifstream in("examples/grammars/json_lite.grm");
    auto* s = new std::string;
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      *s = ss.str();
    }
    if (s->empty()) {
      // Fallback when the test runs from another directory.
      *s = R"grm(
STR    \"[^"]*\"
NUM    -?[0-9]+
%%
json:    value;
value:   obj | arr | STR | NUM | "true" | "false" | "null";
obj:     "{" members "}";
members: | pair more_pairs;
more_pairs: | "," pair more_pairs;
pair:    STR ":" value;
arr:     "[" elems "]";
elems:   | value more_elems;
more_elems: | "," value more_elems;
%%
)grm";
    }
    return s;
  }();
  return *kText;
}

grammar::Grammar Json() {
  auto g = grammar::ParseGrammar(JsonGrammarText());
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

// Random JSON document generator.
std::string RandomJson(Rng& rng, int depth) {
  switch (depth <= 0 ? rng.NextIndex(4) : rng.NextIndex(6)) {
    case 0:
      return "\"" + rng.NextString(1 + rng.NextIndex(6), "abcxyz") + "\"";
    case 1:
      return std::to_string(rng.NextInRange(-999, 999));
    case 2:
      return rng.NextBool() ? "true" : "false";
    case 3:
      return "null";
    case 4: {
      std::string out = "{";
      const size_t n = rng.NextIndex(3);
      for (size_t i = 0; i < n; ++i) {
        if (i) out += ", ";
        out += "\"k" + std::to_string(i) + "\": " +
               RandomJson(rng, depth - 1);
      }
      return out + "}";
    }
    default: {
      std::string out = "[";
      const size_t n = rng.NextIndex(4);
      for (size_t i = 0; i < n; ++i) {
        if (i) out += ", ";
        out += RandomJson(rng, depth - 1);
      }
      return out + "]";
    }
  }
}

TEST(JsonGrammarTest, IsLl1) {
  grammar::Grammar g = Json();
  auto p = tagger::PredictiveParser::Create(&g, {});
  EXPECT_TRUE(p.ok()) << p.status();
}

TEST(JsonGrammarTest, AcceptsAndRejects) {
  grammar::Grammar g = Json();
  auto p = tagger::PredictiveParser::Create(&g, {});
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Accepts("{}"));
  EXPECT_TRUE(p->Accepts("[]"));
  EXPECT_TRUE(p->Accepts("{\"a\": [1, 2, {\"b\": null}], \"c\": true}"));
  EXPECT_TRUE(p->Accepts("-42"));
  EXPECT_FALSE(p->Accepts("{\"a\": }"));
  EXPECT_FALSE(p->Accepts("[1, ]"));
  EXPECT_FALSE(p->Accepts("{\"a\" 1}"));
  EXPECT_FALSE(p->Accepts("}"));
}

TEST(JsonGrammarTest, TagsNestedDocument) {
  auto compiled = core::CompiledTagger::Compile(Json());
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  const std::string doc = "{\"a\": [1, \"x\"], \"b\": null}";
  auto tags = compiled->Tag(doc);
  // { STR : [ NUM , STR ] , STR : null } = 13 tokens.
  EXPECT_EQ(tags.size(), 13u);
}

class JsonFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsonFuzzTest, EnginesAgreeOnRandomDocuments) {
  grammar::Grammar g = Json();
  grammar::Grammar g2 = g.Clone();
  auto parser = tagger::PredictiveParser::Create(&g2, {});
  ASSERT_TRUE(parser.ok());
  auto compiled = core::CompiledTagger::Compile(std::move(g));
  ASSERT_TRUE(compiled.ok());

  Rng rng(GetParam() * 97 + 13);
  for (int i = 0; i < 5; ++i) {
    const std::string doc = RandomJson(rng, 4);
    EXPECT_TRUE(parser->Accepts(doc)) << doc;
    auto ll = parser->Parse(doc);
    ASSERT_TRUE(ll.ok()) << doc;
    // Hardware tags are a superset and, for this conflict-free grammar,
    // exactly equal in count.
    auto hw = compiled->Tag(doc);
    EXPECT_EQ(hw.size(), ll->size()) << doc;
    // Gate-level agreement on a sample.
    if (i == 0) {
      auto cyc = compiled->TagCycleAccurate(doc);
      ASSERT_TRUE(cyc.ok());
      EXPECT_EQ(*cyc, hw) << doc;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzzTest,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace cfgtag
