// End-to-end tests: grammar text -> generated hardware -> tags, with the
// three engines (functional model, cycle-accurate netlist, LL reference
// parser) cross-checked on the paper's own examples.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/token_tagger.h"
#include "grammar/grammar_parser.h"
#include "tagger/ll_parser.h"
#include "xmlrpc/message_gen.h"
#include "xmlrpc/router.h"
#include "xmlrpc/xmlrpc_grammar.h"

namespace cfgtag {
namespace {

using core::CompiledTagger;
using grammar::ParseGrammar;
using tagger::Tag;

// Fig. 9: the if-then-else grammar.
constexpr char kIfThenElse[] = R"(
%%
stmt: "if" cond "then" stmt "else" stmt | "go" | "stop";
cond: "true" | "false";
%%
)";

std::vector<std::pair<std::string, uint64_t>> Render(
    const grammar::Grammar& g, const std::vector<Tag>& tags) {
  std::vector<std::pair<std::string, uint64_t>> out;
  for (const Tag& t : tags) {
    out.emplace_back(g.tokens()[t.token].name, t.end);
  }
  return out;
}

TEST(IfThenElseTest, FunctionalModelTagsInOrder) {
  auto g = ParseGrammar(kIfThenElse);
  ASSERT_TRUE(g.ok()) << g.status();
  auto compiled = CompiledTagger::Compile(std::move(g).value());
  ASSERT_TRUE(compiled.ok()) << compiled.status();

  const std::string input = "if true then go else stop";
  auto tags = compiled->Tag(input);
  auto rendered = Render(compiled->grammar(), tags);

  std::vector<std::pair<std::string, uint64_t>> expected = {
      {"\"if\"", 1},   {"\"true\"", 6},  {"\"then\"", 11},
      {"\"go\"", 14},  {"\"else\"", 19}, {"\"stop\"", 24},
  };
  EXPECT_EQ(rendered, expected);
}

TEST(IfThenElseTest, NestedStatement) {
  auto g = ParseGrammar(kIfThenElse);
  ASSERT_TRUE(g.ok()) << g.status();
  auto compiled = CompiledTagger::Compile(std::move(g).value());
  ASSERT_TRUE(compiled.ok()) << compiled.status();

  const std::string input = "if false then if true then go else stop else go";
  auto tags = compiled->Tag(input);
  ASSERT_EQ(tags.size(), 11u);
  // First and last tokens.
  EXPECT_EQ(compiled->grammar().tokens()[tags.front().token].name, "\"if\"");
  EXPECT_EQ(compiled->grammar().tokens()[tags.back().token].name, "\"go\"");
}

TEST(IfThenElseTest, CycleAccurateMatchesFunctionalModel) {
  auto g = ParseGrammar(kIfThenElse);
  ASSERT_TRUE(g.ok()) << g.status();
  auto compiled = CompiledTagger::Compile(std::move(g).value());
  ASSERT_TRUE(compiled.ok()) << compiled.status();

  for (const std::string& input :
       {std::string("if true then go else stop"), std::string("go"),
        std::string("  stop  "),
        std::string("if true then if false then go else stop else go")}) {
    auto hw = compiled->TagCycleAccurate(input);
    ASSERT_TRUE(hw.ok()) << hw.status();
    EXPECT_EQ(compiled->Tag(input), hw.value()) << "input: " << input;
  }
}

TEST(IfThenElseTest, IndexBusMatchesFunctionalModel) {
  auto g = ParseGrammar(kIfThenElse);
  ASSERT_TRUE(g.ok()) << g.status();
  auto compiled = CompiledTagger::Compile(std::move(g).value());
  ASSERT_TRUE(compiled.ok()) << compiled.status();

  const std::string input = "if true then go else stop";
  auto bus = compiled->TagViaIndexBus(input);
  ASSERT_TRUE(bus.ok()) << bus.status();
  EXPECT_EQ(compiled->Tag(input), bus.value());
}

TEST(IfThenElseTest, LlParserAgreesOnValidInput) {
  auto g = ParseGrammar(kIfThenElse);
  ASSERT_TRUE(g.ok()) << g.status();
  auto parser = tagger::PredictiveParser::Create(&g.value(), {});
  ASSERT_TRUE(parser.ok()) << parser.status();

  auto parsed = parser->Parse("if true then go else stop");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 6u);

  EXPECT_FALSE(parser->Accepts("if true go"));
  EXPECT_FALSE(parser->Accepts("then"));
  EXPECT_TRUE(parser->Accepts("  go  "));
}

TEST(XmlRpcTest, GeneratedMessagesParseAndTagConsistently) {
  auto g = xmlrpc::XmlRpcGrammar();
  ASSERT_TRUE(g.ok()) << g.status();
  auto g2 = xmlrpc::XmlRpcGrammar();
  ASSERT_TRUE(g2.ok());
  auto parser = tagger::PredictiveParser::Create(&g2.value(), {});
  ASSERT_TRUE(parser.ok()) << parser.status();

  auto compiled = CompiledTagger::Compile(std::move(g).value());
  ASSERT_TRUE(compiled.ok()) << compiled.status();

  xmlrpc::MessageGenerator gen({}, /*seed=*/42);
  for (int i = 0; i < 20; ++i) {
    const std::string msg = gen.Generate();
    auto ll_tags = parser->Parse(msg);
    ASSERT_TRUE(ll_tags.ok()) << ll_tags.status() << "\nmsg: " << msg;

    // The hardware tags must be a superset of the true parser's tags
    // (paper §3.1: the collapsed FSA accepts a superset).
    auto hw_tags = compiled->Tag(msg);
    for (const Tag& t : *ll_tags) {
      EXPECT_TRUE(std::find(hw_tags.begin(), hw_tags.end(), t) !=
                  hw_tags.end())
          << "missing tag token=" << compiled->grammar().tokens()[t.token].name
          << " end=" << t.end << "\nmsg: " << msg;
    }
  }
}

TEST(XmlRpcTest, CycleAccurateMatchesFunctionalModel) {
  auto g = xmlrpc::XmlRpcGrammar();
  ASSERT_TRUE(g.ok()) << g.status();
  auto compiled = CompiledTagger::Compile(std::move(g).value());
  ASSERT_TRUE(compiled.ok()) << compiled.status();

  xmlrpc::MessageGenerator gen({}, /*seed=*/7);
  for (int i = 0; i < 3; ++i) {
    const std::string msg = gen.Generate();
    auto hw = compiled->TagCycleAccurate(msg);
    ASSERT_TRUE(hw.ok()) << hw.status();
    EXPECT_EQ(compiled->Tag(msg), hw.value()) << "msg: " << msg;
  }
}

TEST(XmlRpcTest, ImplementationReportIsPlausible) {
  auto g = xmlrpc::XmlRpcGrammar();
  ASSERT_TRUE(g.ok()) << g.status();
  auto compiled = CompiledTagger::Compile(std::move(g).value());
  ASSERT_TRUE(compiled.ok()) << compiled.status();

  auto report = compiled->Implement(rtl::Virtex4LX200());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->area.luts, 100u);
  EXPECT_GT(report->area.pattern_bytes, 200u);
  EXPECT_GT(report->timing.fmax_mhz, 100.0);
  EXPECT_GT(report->bandwidth_gbps, 0.8);
}

TEST(RouterTest, RoutesByMethodName) {
  xmlrpc::RouterConfig config;
  config.services = {{"deposit", 1}, {"withdraw", 1}, {"acctinfo", 1},
                     {"buy", 2},     {"sell", 2},     {"price", 2}};
  config.default_port = 0;
  auto router = xmlrpc::XmlRpcRouter::Create(config);
  ASSERT_TRUE(router.ok()) << router.status();

  xmlrpc::MessageGenerator gen({}, /*seed=*/3);
  EXPECT_EQ(router->Route(gen.GenerateWithMethod("deposit")), 1);
  EXPECT_EQ(router->Route(gen.GenerateWithMethod("sell")), 2);
  EXPECT_EQ(router->Route(gen.GenerateWithMethod("somethingelse")), 0);
}

TEST(RouterTest, AdversarialPayloadDoesNotMisroute) {
  xmlrpc::RouterConfig config;
  config.services = {{"deposit", 1}, {"buy", 2}};
  config.default_port = 0;
  auto router = xmlrpc::XmlRpcRouter::Create(config);
  ASSERT_TRUE(router.ok()) << router.status();

  // "buy" hidden in a string value of a "deposit" call must not route to 2.
  const std::string msg =
      "<methodCall><methodName>deposit</methodName><params>"
      "<param><string>please buy everything</string></param>"
      "</params></methodCall>";
  EXPECT_EQ(router->Route(msg), 1);
}

}  // namespace
}  // namespace cfgtag
