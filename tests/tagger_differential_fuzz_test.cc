// Differential fuzzing across the tagging engines: on randomly generated
// small grammars and random byte streams, the fused and lazy-DFA backends
// must be tag-for-tag identical to the functional reference — for every
// arm mode, with and without the longest-match look-ahead, chunked or
// whole-buffer, under both scalar and vectorized SIMD dispatch, and for
// the lazy DFA also under a starvation-sized transition cache (constant
// flushing, then the fused fallback) — and CompiledTagger::Tag must agree
// with itself across backends. The artifact leg closes the loop through
// the serializer: serialize → Deserialize → tag must be byte-identical to
// the compiler that produced the artifact, whole-buffer and chunked.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/token_tagger.h"
#include "grammar/grammar.h"
#include "tagger/functional_model.h"
#include "tagger/fused_model.h"
#include "tagger/lazy_dfa.h"
#include "tagger/simd/dispatch.h"

namespace cfgtag {
namespace {

using grammar::Grammar;
using grammar::Symbol;
using tagger::ArmMode;
using tagger::FunctionalTagger;
using tagger::FusedTagger;
using tagger::LazyDfaTagger;
using tagger::Tag;
using tagger::TaggerOptions;

// Small random grammar: literal tokens plus optional class tokens, wired
// into right-linear productions (same family as the hwgen equivalence
// fuzzer, but occasionally with a long literal so the fused state spans
// multiple words).
Grammar RandomGrammar(Rng& rng) {
  Grammar g;
  const int num_lits = 2 + static_cast<int>(rng.NextIndex(3));
  std::vector<int32_t> tokens;
  for (int i = 0; i < num_lits; ++i) {
    std::string text;
    text.push_back(static_cast<char>('a' + i));
    text += rng.NextString(1 + rng.NextIndex(3), "xyz");
    auto t = g.AddLiteralToken(text);
    if (t.ok()) tokens.push_back(*t);
  }
  if (rng.NextBool(0.6)) {
    auto t = g.AddToken("NUM", "[0-9]+");
    if (t.ok()) tokens.push_back(*t);
  }
  if (rng.NextBool(0.4)) {
    auto t = g.AddToken("HEX", "[a-f][a-f0-9]*");
    if (t.ok()) tokens.push_back(*t);
  }
  if (rng.NextBool(0.25)) {
    // >64 positions: forces a two-word token bitmap.
    auto t = g.AddLiteralToken("q" + std::string(70, 'w'));
    if (t.ok()) tokens.push_back(*t);
  }

  const int num_nts = 2 + static_cast<int>(rng.NextIndex(2));
  std::vector<int32_t> nts;
  for (int i = 0; i < num_nts; ++i) {
    nts.push_back(g.AddNonterminal("n" + std::to_string(i)));
  }
  for (int i = 0; i < num_nts; ++i) {
    const int alts = 1 + static_cast<int>(rng.NextIndex(2));
    for (int a = 0; a < alts; ++a) {
      std::vector<Symbol> rhs;
      rhs.push_back(Symbol::Terminal(tokens[rng.NextIndex(tokens.size())]));
      const int extra = static_cast<int>(rng.NextIndex(3));
      for (int e = 0; e < extra; ++e) {
        if (rng.NextBool(0.35) && i + 1 < num_nts) {
          rhs.push_back(Symbol::Nonterminal(
              nts[i + 1 + rng.NextIndex(num_nts - i - 1)]));
        } else {
          rhs.push_back(
              Symbol::Terminal(tokens[rng.NextIndex(tokens.size())]));
        }
      }
      g.AddProduction(nts[i], std::move(rhs));
    }
  }
  g.SetStart(nts[0]);
  return g;
}

// Random byte stream biased toward bytes the grammar can consume: token
// spellings, digits, delimiters, and occasional arbitrary garbage.
std::string RandomStream(const Grammar& g, Rng& rng) {
  std::string out;
  const size_t pieces = 1 + rng.NextIndex(12);
  for (size_t p = 0; p < pieces; ++p) {
    switch (rng.NextIndex(5)) {
      case 0:  // a token spelling
      case 1: {
        const auto& def = g.tokens()[rng.NextIndex(g.tokens().size())];
        if (def.is_literal) {
          out += def.literal_text;
          // Sometimes truncate/extend to probe partial matches.
          if (rng.NextBool(0.3) && out.size() > 1) out.pop_back();
        } else {
          out += std::to_string(rng.NextIndex(100000));
        }
        break;
      }
      case 2:  // delimiters
        out.append(1 + rng.NextIndex(4), rng.NextBool(0.5) ? ' ' : '\n');
        break;
      case 3:  // lowercase garbage (often prefixes of literals)
        out += rng.NextString(1 + rng.NextIndex(6), "abcdefwxyz");
        break;
      default:  // arbitrary bytes
        for (size_t i = 0, n = 1 + rng.NextIndex(4); i < n; ++i) {
          out.push_back(static_cast<char>(rng.NextIndex(256)));
        }
        break;
    }
  }
  return out;
}

// The kernel dispatches to sweep every backend comparison over: forced
// scalar plus the best vector tier the host offers (just scalar when the
// host has no vector tier).
std::vector<tagger::simd::Isa> DispatchIsas() {
  std::vector<tagger::simd::Isa> isas = {tagger::simd::Isa::kScalar};
  if (tagger::simd::BestAvailable() != tagger::simd::Isa::kScalar) {
    isas.push_back(tagger::simd::BestAvailable());
  }
  return isas;
}

template <typename Tagger>
std::vector<Tag> Chunked(const Tagger& t, std::string_view input,
                         size_t chunk) {
  std::vector<Tag> tags;
  auto session = t.NewSession();
  const tagger::TagSink sink = [&](const Tag& tag) {
    tags.push_back(tag);
    return true;
  };
  for (size_t i = 0; i < input.size(); i += chunk) {
    session.Feed(std::string_view(input).substr(i, chunk), sink);
  }
  session.Finish(sink);
  return tags;
}

void ExpectSameTags(const std::vector<Tag>& want, const std::vector<Tag>& got,
                    const std::string& what, const std::string& input) {
  ASSERT_EQ(want.size(), got.size())
      << what << " diverged on input: " << testing::PrintToString(input);
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_TRUE(want[i].token == got[i].token && want[i].end == got[i].end)
        << what << " tag " << i << " diverged on input: "
        << testing::PrintToString(input);
  }
}

TEST(DifferentialFuzzTest, FusedMatchesFunctionalEverywhere) {
  Rng rng(20260806);
  const ArmMode kModes[] = {ArmMode::kAnchored, ArmMode::kScan,
                            ArmMode::kResync};
  for (int iter = 0; iter < 60; ++iter) {
    const Grammar g = RandomGrammar(rng);
    TaggerOptions opt;
    opt.arm_mode = kModes[iter % 3];
    opt.longest_match = (iter % 2) == 0;
    auto functional = FunctionalTagger::Create(&g, opt);
    auto fused = FusedTagger::Create(&g, opt);
    auto lazy = LazyDfaTagger::Create(&g, opt);
    // Starvation-sized cache: interning even a handful of states blows the
    // budget, so every path through Flush() — and, past dfa_flush_fallback
    // flushes, the sticky fused fallback — is exercised on real streams.
    TaggerOptions tiny = opt;
    tiny.dfa_cache_bytes = 1 << 10;
    auto lazy_tiny = LazyDfaTagger::Create(&g, tiny);
    ASSERT_TRUE(functional.ok()) << functional.status();
    ASSERT_TRUE(fused.ok()) << fused.status();
    ASSERT_TRUE(lazy.ok()) << lazy.status();
    ASSERT_TRUE(lazy_tiny.ok()) << lazy_tiny.status();
    for (int s = 0; s < 8; ++s) {
      const std::string input = RandomStream(g, rng);
      const std::vector<Tag> want = functional->TagAll(input);
      const size_t chunk = 1 + rng.NextIndex(7);
      for (const tagger::simd::Isa isa : DispatchIsas()) {
        tagger::simd::ForceIsa(isa);
        const std::string d =
            std::string(" dispatch=") + tagger::simd::IsaName(isa);
        ExpectSameTags(want, fused->TagAll(input), "fused whole-buffer" + d,
                       input);
        ExpectSameTags(want, lazy->TagAll(input), "lazy whole-buffer" + d,
                       input);
        ExpectSameTags(want, lazy_tiny->TagAll(input),
                       "lazy tiny-cache whole-buffer" + d, input);
        ExpectSameTags(want, Chunked(*fused, input, chunk),
                       "fused chunk=" + std::to_string(chunk) + d, input);
        ExpectSameTags(want, Chunked(*lazy, input, chunk),
                       "lazy chunk=" + std::to_string(chunk) + d, input);
        ExpectSameTags(want, Chunked(*lazy_tiny, input, chunk),
                       "lazy tiny-cache chunk=" + std::to_string(chunk) + d,
                       input);
      }
      tagger::simd::ClearForcedIsa();
    }
  }
}

// serialize → Deserialize → tag: a tagger rebuilt from its own artifact
// bytes must be tag-for-tag identical to the tagger that wrote them, for
// both flat-table backends, with and without an AOT table, whole-buffer
// and chunked through the loaded engine's sessions.
TEST(DifferentialFuzzTest, ArtifactRoundTripMatchesDirectCompile) {
  Rng rng(20260809);
  const ArmMode kModes[] = {ArmMode::kAnchored, ArmMode::kScan,
                            ArmMode::kResync};
  const tagger::TaggerBackend kBackends[] = {tagger::TaggerBackend::kFused,
                                             tagger::TaggerBackend::kLazyDfa};
  for (int iter = 0; iter < 16; ++iter) {
    Grammar g = RandomGrammar(rng);
    hwgen::HwOptions options;
    options.tagger.arm_mode = kModes[iter % 3];
    options.tagger.longest_match = (iter % 2) == 0;
    options.tagger.backend = kBackends[iter % 2];
    // Odd iterations strip the AOT table so both artifact shapes (baked
    // DFA present / absent) go through the loader.
    if (iter % 4 == 1) options.tagger.aot_state_budget = 0;
    auto direct = core::CompiledTagger::Compile(g.Clone(), options);
    ASSERT_TRUE(direct.ok()) << direct.status();
    auto bytes = direct->Serialize();
    ASSERT_TRUE(bytes.ok()) << bytes.status();
    auto loaded = core::CompiledTagger::Deserialize(*bytes);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_FALSE(loaded->has_hardware());
    EXPECT_EQ(loaded->backend(), options.tagger.backend);
    for (int s = 0; s < 6; ++s) {
      const std::string input = RandomStream(direct->grammar(), rng);
      const std::vector<Tag> want = direct->Tag(input);
      ExpectSameTags(want, loaded->Tag(input), "artifact whole-buffer",
                     input);
      const size_t chunk = 1 + rng.NextIndex(7);
      if (loaded->lazy_model() != nullptr) {
        ExpectSameTags(want, Chunked(*loaded->lazy_model(), input, chunk),
                       "artifact lazy chunk=" + std::to_string(chunk), input);
      } else {
        ASSERT_NE(loaded->fused_model(), nullptr);
        ExpectSameTags(want, Chunked(*loaded->fused_model(), input, chunk),
                       "artifact fused chunk=" + std::to_string(chunk),
                       input);
      }
    }
  }
}

TEST(DifferentialFuzzTest, CompiledTaggerBackendsAgree) {
  Rng rng(424242);
  for (int iter = 0; iter < 12; ++iter) {
    Grammar g = RandomGrammar(rng);
    Grammar g2 = g.Clone();
    Grammar g3 = g.Clone();
    hwgen::HwOptions options;
    options.tagger.arm_mode = ArmMode::kResync;
    auto functional = core::CompiledTagger::Compile(std::move(g), options);
    options.tagger.backend = tagger::TaggerBackend::kFused;
    auto fused = core::CompiledTagger::Compile(std::move(g2), options);
    options.tagger.backend = tagger::TaggerBackend::kLazyDfa;
    auto lazy = core::CompiledTagger::Compile(std::move(g3), options);
    ASSERT_TRUE(functional.ok()) << functional.status();
    ASSERT_TRUE(fused.ok()) << fused.status();
    ASSERT_TRUE(lazy.ok()) << lazy.status();
    ASSERT_NE(fused->fused_model(), nullptr);
    ASSERT_EQ(functional->fused_model(), nullptr);
    ASSERT_NE(lazy->lazy_model(), nullptr);
    ASSERT_EQ(lazy->fused_model(), nullptr);
    for (int s = 0; s < 6; ++s) {
      const std::string input = RandomStream(functional->grammar(), rng);
      const std::vector<Tag> want = functional->Tag(input);
      ExpectSameTags(want, fused->Tag(input), "CompiledTagger fused backend",
                     input);
      ExpectSameTags(want, lazy->Tag(input), "CompiledTagger lazy backend",
                     input);
    }
  }
}

}  // namespace
}  // namespace cfgtag
