#include <gtest/gtest.h>

#include "grammar/grammar_parser.h"
#include "tagger/lexer.h"
#include "tagger/ll_parser.h"
#include "xmlrpc/xmlrpc_grammar.h"

namespace cfgtag::tagger {
namespace {

grammar::Grammar MustParse(const std::string& text) {
  auto g = grammar::ParseGrammar(text);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

TEST(LexerTest, BasicTokenization) {
  grammar::Grammar g =
      MustParse("NUM [0-9]+\nWORD [a-z]+\n%%\ns: NUM WORD;\n%%\n");
  auto lexer = Lexer::Create(&g);
  ASSERT_TRUE(lexer.ok()) << lexer.status();
  auto tags = lexer->Lex("123 abc 45x");
  ASSERT_EQ(tags.size(), 4u);
  EXPECT_EQ(tags[0].token, g.FindToken("NUM"));
  EXPECT_EQ(tags[0].length, 3u);
  EXPECT_EQ(tags[1].token, g.FindToken("WORD"));
  EXPECT_EQ(tags[2].token, g.FindToken("NUM"));
  EXPECT_EQ(tags[3].token, g.FindToken("WORD"));
  EXPECT_EQ(tags[3].end, 10u);
}

TEST(LexerTest, MaximalMunch) {
  grammar::Grammar g = MustParse("%%\ns: a | b;\na: \"ab\";\nb: \"abc\";\n%%\n");
  auto lexer = Lexer::Create(&g);
  ASSERT_TRUE(lexer.ok());
  auto tags = lexer->Lex("abc");
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0].length, 3u);  // "abc", not "ab" + skip
}

TEST(LexerTest, EarliestTokenWinsTies) {
  // KW and WORD both match "if" with length 2: lower id (KW) wins.
  grammar::Grammar g =
      MustParse("KW \"if\"\nWORD [a-z]+\n%%\ns: KW | WORD;\n%%\n");
  auto lexer = Lexer::Create(&g);
  ASSERT_TRUE(lexer.ok());
  auto tags = lexer->Lex("if iffy");
  ASSERT_EQ(tags.size(), 2u);
  EXPECT_EQ(tags[0].token, g.FindToken("KW"));
  EXPECT_EQ(tags[1].token, g.FindToken("WORD"));
}

TEST(LexerTest, SkippedBytesCounted) {
  grammar::Grammar g = MustParse("%%\ns: \"ab\";\n%%\n");
  auto lexer = Lexer::Create(&g);
  ASSERT_TRUE(lexer.ok());
  uint64_t skipped = 0;
  auto tags = lexer->Lex("??ab!?", &skipped);
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(skipped, 4u);
}

TEST(LexerTest, AgreesWithParserTagsOnUnambiguousGrammar) {
  grammar::Grammar g = MustParse(R"(
%%
stmt: "if" cond "then" stmt "else" stmt | "go" | "stop";
cond: "true" | "false";
%%
)");
  grammar::Grammar g2 = g.Clone();
  auto lexer = Lexer::Create(&g);
  auto parser = PredictiveParser::Create(&g2, {});
  ASSERT_TRUE(lexer.ok());
  ASSERT_TRUE(parser.ok());
  const std::string input = "if true then go else stop";
  auto lexed = lexer->Lex(input);
  auto parsed = parser->Parse(input);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(lexed.size(), parsed->size());
  for (size_t i = 0; i < lexed.size(); ++i) {
    EXPECT_TRUE(lexed[i] == (*parsed)[i]) << i;
  }
}

TEST(LexerTest, ContextFreeLexingCannotSplitDateTime) {
  // The paper's core point, software edition: without grammatical context
  // a lexer cannot produce YEAR MONTH DAY from "19980717" — maximal munch
  // hands the whole digit run to INT. The follow-wired tagger (and the LL
  // parser) split it correctly.
  auto g = xmlrpc::XmlRpcGrammar();
  ASSERT_TRUE(g.ok());
  auto lexer = Lexer::Create(&g.value());
  ASSERT_TRUE(lexer.ok());

  auto tags = lexer->Lex("19980717");
  ASSERT_EQ(tags.size(), 1u);
  // Maximal munch hands all 8 digits to one unbounded token (STRING beats
  // INT on the tie as the earlier definition) — never YEAR MONTH DAY.
  EXPECT_EQ(tags[0].token, g->FindToken("STRING"));
  EXPECT_EQ(tags[0].length, 8u);
  EXPECT_NE(tags[0].token, g->FindToken("YEAR"));
}

TEST(LexerTest, LexesWholeXmlRpcMessageWithoutSkips) {
  auto g = xmlrpc::XmlRpcGrammar();
  ASSERT_TRUE(g.ok());
  auto lexer = Lexer::Create(&g.value());
  ASSERT_TRUE(lexer.ok());
  uint64_t skipped = 0;
  auto tags = lexer->Lex(
      "<methodCall><methodName>buy</methodName>"
      "<params><param><i4>42</i4></param></params></methodCall>",
      &skipped);
  EXPECT_EQ(skipped, 0u);
  EXPECT_GE(tags.size(), 10u);
}

TEST(LexerTest, DfaStaysSmall) {
  auto g = xmlrpc::XmlRpcGrammar();
  ASSERT_TRUE(g.ok());
  auto lexer = Lexer::Create(&g.value());
  ASSERT_TRUE(lexer.ok());
  // The combined DFA over the whole XML-RPC token set must stay modest
  // (the token patterns share long literal prefixes).
  EXPECT_LT(lexer->NumDfaStates(), 600u);
  EXPECT_GT(lexer->NumDfaStates(), 50u);
}

TEST(LexerTest, HandlesHighBytes) {
  grammar::Grammar g = MustParse("HI [\\x80-\\xff]+\n%%\ns: HI;\n%%\n");
  auto lexer = Lexer::Create(&g);
  ASSERT_TRUE(lexer.ok());
  std::string input = "\x80\xFF\x9A";
  auto tags = lexer->Lex(input);
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0].length, 3u);
}

}  // namespace
}  // namespace cfgtag::tagger
