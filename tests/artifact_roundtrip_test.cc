// Round-trip and robustness tests for the compiled-tagger artifact layer:
// serialize → Deserialize / LoadArtifact must reproduce the compiling
// tagger tag-for-tag for every flat-table backend; the compile cache must
// hit on content-equal (even reordered) grammars; loaded taggers must
// reject the netlist-backed methods; and the hardened loader must turn
// malformed bytes into typed errors — never a crash, and never a tagger
// that silently diverges (the corrupt-artifact fuzz at the bottom).

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/token_tagger.h"
#include "grammar/canonical.h"
#include "grammar/grammar.h"
#include "tagger/artifact/cache.h"
#include "tagger/artifact/format.h"
#include "tagger/tag.h"

namespace cfgtag {
namespace {

using core::CompiledTagger;
using grammar::Grammar;
using grammar::Symbol;
using tagger::Tag;
using tagger::TaggerBackend;

// The Fig. 14 expression-flavored fixture: two class tokens, one literal,
// a recursive start rule.
Grammar FixtureGrammar() {
  Grammar g;
  const int32_t num = *g.AddToken("NUM", "[0-9]+");
  const int32_t word = *g.AddToken("WORD", "[a-z]+");
  const int32_t kw = *g.AddLiteralToken("begin");
  const int32_t s = g.AddNonterminal("s");
  g.AddProduction(s, {Symbol::Terminal(num), Symbol::Nonterminal(s)});
  g.AddProduction(s, {Symbol::Terminal(word), Symbol::Nonterminal(s)});
  g.AddProduction(s, {Symbol::Terminal(kw)});
  g.AddProduction(s, {Symbol::Terminal(num)});
  g.AddProduction(s, {Symbol::Terminal(word)});
  g.SetStart(s);
  return g;
}

// Same content as FixtureGrammar, everything declared in a different
// order (different internal ids) — must share a cache entry.
Grammar ReorderedFixtureGrammar() {
  Grammar g;
  const int32_t kw = *g.AddLiteralToken("begin");
  const int32_t word = *g.AddToken("WORD", "[a-z]+");
  const int32_t num = *g.AddToken("NUM", "[0-9]+");
  const int32_t s = g.AddNonterminal("s");
  g.AddProduction(s, {Symbol::Terminal(word)});
  g.AddProduction(s, {Symbol::Terminal(num)});
  g.AddProduction(s, {Symbol::Terminal(kw)});
  g.AddProduction(s, {Symbol::Terminal(word), Symbol::Nonterminal(s)});
  g.AddProduction(s, {Symbol::Terminal(num), Symbol::Nonterminal(s)});
  g.SetStart(s);
  return g;
}

const char* const kInputs[] = {
    "hello 123 world",
    "begin 42 end",
    "   7 seven 77   ",
    "beginbegin 0begin",
    "",
    "a1b2c3",
};

std::string TempPath(const std::string& leaf) {
  const char* dir = std::getenv("TMPDIR");
  std::string path = dir != nullptr ? dir : "/tmp";
  if (path.back() != '/') path += '/';
  path += "cfgtag_artifact_test_" + std::to_string(::getpid()) + "_" + leaf;
  return path;
}

void ExpectSameTags(const CompiledTagger& want, const CompiledTagger& got) {
  for (const char* input : kInputs) {
    const std::vector<Tag> w = want.Tag(input);
    const std::vector<Tag> g = got.Tag(input);
    ASSERT_EQ(w.size(), g.size()) << "on input: " << input;
    for (size_t i = 0; i < w.size(); ++i) {
      EXPECT_EQ(w[i].token, g[i].token) << "tag " << i << " on: " << input;
      EXPECT_EQ(w[i].end, g[i].end) << "tag " << i << " on: " << input;
    }
  }
}

hwgen::HwOptions Options(TaggerBackend backend, uint32_t aot_budget = 4096) {
  hwgen::HwOptions options;
  options.tagger.backend = backend;
  options.tagger.aot_state_budget = aot_budget;
  return options;
}

TEST(ArtifactRoundTripTest, FusedBackendRoundTrips) {
  auto direct =
      CompiledTagger::Compile(FixtureGrammar(), Options(TaggerBackend::kFused));
  ASSERT_TRUE(direct.ok()) << direct.status();
  auto bytes = direct->Serialize();
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  auto loaded = CompiledTagger::Deserialize(*bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->backend(), TaggerBackend::kFused);
  EXPECT_NE(loaded->fused_model(), nullptr);
  EXPECT_FALSE(loaded->has_hardware());
  ExpectSameTags(*direct, *loaded);
  // The rebuilt grammar keeps the original token numbering and names.
  EXPECT_EQ(loaded->grammar().FindToken("NUM"),
            direct->grammar().FindToken("NUM"));
  EXPECT_EQ(loaded->grammar().FindToken("WORD"),
            direct->grammar().FindToken("WORD"));
}

TEST(ArtifactRoundTripTest, LazyBackendRoundTripsWithAndWithoutAot) {
  for (uint32_t budget : {uint32_t{4096}, uint32_t{0}}) {
    auto direct = CompiledTagger::Compile(
        FixtureGrammar(), Options(TaggerBackend::kLazyDfa, budget));
    ASSERT_TRUE(direct.ok()) << direct.status();
    auto bytes = direct->Serialize();
    ASSERT_TRUE(bytes.ok()) << bytes.status();
    auto loaded = CompiledTagger::Deserialize(*bytes);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_EQ(loaded->backend(), TaggerBackend::kLazyDfa);
    ASSERT_NE(loaded->lazy_model(), nullptr);
    ExpectSameTags(*direct, *loaded);
  }
}

TEST(ArtifactRoundTripTest, SerializeIsDeterministic) {
  auto a = CompiledTagger::Compile(FixtureGrammar(),
                                   Options(TaggerBackend::kLazyDfa));
  auto b = CompiledTagger::Compile(FixtureGrammar(),
                                   Options(TaggerBackend::kLazyDfa));
  ASSERT_TRUE(a.ok() && b.ok());
  auto ba = a->Serialize();
  auto bb = b->Serialize();
  ASSERT_TRUE(ba.ok() && bb.ok());
  EXPECT_EQ(*ba, *bb);
}

TEST(ArtifactRoundTripTest, FunctionalBackendDoesNotSerialize) {
  auto direct = CompiledTagger::Compile(FixtureGrammar(),
                                        Options(TaggerBackend::kFunctional));
  ASSERT_TRUE(direct.ok()) << direct.status();
  auto bytes = direct->Serialize();
  ASSERT_FALSE(bytes.ok());
  EXPECT_EQ(bytes.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ArtifactRoundTripTest, LoadArtifactMmapsFromDisk) {
  auto direct = CompiledTagger::Compile(FixtureGrammar(),
                                        Options(TaggerBackend::kLazyDfa));
  ASSERT_TRUE(direct.ok()) << direct.status();
  auto bytes = direct->Serialize();
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  const std::string path = TempPath("mmap.cfgtag");
  ASSERT_TRUE(tagger::artifact::AtomicWriteFile(path, *bytes).ok());
  auto loaded = CompiledTagger::LoadArtifact(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectSameTags(*direct, *loaded);
  std::remove(path.c_str());

  auto missing = CompiledTagger::LoadArtifact(path);
  EXPECT_FALSE(missing.ok());
}

TEST(ArtifactRoundTripTest, LoadedTaggerRejectsHardwareMethods) {
  auto direct = CompiledTagger::Compile(FixtureGrammar(),
                                        Options(TaggerBackend::kFused));
  ASSERT_TRUE(direct.ok());
  auto bytes = direct->Serialize();
  ASSERT_TRUE(bytes.ok());
  auto loaded = CompiledTagger::Deserialize(*bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ(loaded->TagCycleAccurate("x").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(loaded->TagViaIndexBus("x").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(loaded->Implement(rtl::Virtex4LX200()).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(loaded->ExportVhdl("tagger").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(loaded->ExportVhdlTestbench("tagger", "x").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ArtifactRoundTripTest, CompileCachedMissesThenHits) {
  const std::string dir = TempPath("cache");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);

  hwgen::HwOptions options = Options(TaggerBackend::kAuto);
  auto miss = CompiledTagger::CompileCached(FixtureGrammar(), options, dir);
  ASSERT_TRUE(miss.ok()) << miss.status();
  // A miss compiles for real: the hardware side exists.
  EXPECT_TRUE(miss->has_hardware());
  // kAuto with AOT enabled resolves to the lazy DFA so the baked table is
  // actually used on later cold starts.
  EXPECT_EQ(miss->backend(), TaggerBackend::kLazyDfa);

  auto hit = CompiledTagger::CompileCached(FixtureGrammar(), options, dir);
  ASSERT_TRUE(hit.ok()) << hit.status();
  EXPECT_FALSE(hit->has_hardware());
  ExpectSameTags(*miss, *hit);

  // Content-equal but textually reordered grammar: same cache entry.
  EXPECT_EQ(grammar::CanonicalHash(FixtureGrammar()),
            grammar::CanonicalHash(ReorderedFixtureGrammar()));
  auto reordered =
      CompiledTagger::CompileCached(ReorderedFixtureGrammar(), options, dir);
  ASSERT_TRUE(reordered.ok()) << reordered.status();
  EXPECT_FALSE(reordered->has_hardware());
  ExpectSameTags(*miss, *reordered);

  // Different options hash → different entry → a fresh compile.
  hwgen::HwOptions other = options;
  other.tagger.longest_match = !other.tagger.longest_match;
  auto other_miss =
      CompiledTagger::CompileCached(FixtureGrammar(), other, dir);
  ASSERT_TRUE(other_miss.ok()) << other_miss.status();
  EXPECT_TRUE(other_miss->has_hardware());

  const std::string cmd = "rm -rf '" + dir + "'";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
}

// --- Hardened loader: malformed bytes become typed errors. ---------------

std::string ValidArtifact(TaggerBackend backend = TaggerBackend::kLazyDfa) {
  auto direct = CompiledTagger::Compile(FixtureGrammar(), Options(backend));
  EXPECT_TRUE(direct.ok());
  auto bytes = direct->Serialize();
  EXPECT_TRUE(bytes.ok());
  return *bytes;
}

TEST(ArtifactLoaderHardeningTest, RejectsTruncationAndGarbage) {
  const std::string bytes = ValidArtifact();

  // Too short for a header.
  for (size_t n : {size_t{0}, size_t{8}, size_t{100},
                   sizeof(tagger::artifact::ArtifactHeader) - 1}) {
    auto r = CompiledTagger::Deserialize(std::string_view(bytes).substr(0, n));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }

  // Truncated payload (header intact, file_bytes mismatch).
  {
    auto r = CompiledTagger::Deserialize(
        std::string_view(bytes).substr(0, bytes.size() - 8));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }

  // Trailing garbage.
  {
    auto r = CompiledTagger::Deserialize(bytes + "garbage!");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }

  // Not an artifact at all.
  {
    const std::string junk(1024, 'x');
    auto r = CompiledTagger::Deserialize(junk);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

// Flip bytes at a fixed header offset and expect a typed rejection.
void ExpectRejects(std::string bytes, size_t offset, const char* what) {
  bytes[offset] ^= 0x5a;
  auto r = CompiledTagger::Deserialize(bytes);
  ASSERT_FALSE(r.ok()) << what << ": corruption at offset " << offset
                       << " was accepted";
  EXPECT_TRUE(r.status().code() == StatusCode::kInvalidArgument ||
              r.status().code() == StatusCode::kOutOfRange)
      << what << ": " << r.status();
}

TEST(ArtifactLoaderHardeningTest, RejectsHeaderFieldCorruption) {
  const std::string bytes = ValidArtifact();
  ExpectRejects(bytes, 0, "magic");
  ExpectRejects(bytes, 8, "format version");
  ExpectRejects(bytes, 12, "endian tag");
  ExpectRejects(bytes, 16, "file_bytes");
  ExpectRejects(bytes, 24, "checksum");
}

// The acceptance invariant: random byte flips and truncations anywhere in
// the artifact either fail to load (typed error) or load into a tagger
// whose output is byte-identical to the original. Never a crash, never a
// silent divergence. The checksum catches essentially all of these; the
// structural checks stand behind it for crafted files.
TEST(ArtifactLoaderHardeningTest, CorruptArtifactFuzz) {
  const std::string bytes = ValidArtifact();
  auto original = CompiledTagger::Deserialize(bytes);
  ASSERT_TRUE(original.ok());
  std::vector<std::vector<Tag>> want;
  for (const char* input : kInputs) want.push_back(original->Tag(input));

  Rng rng(20260809);
  int loads = 0;
  for (int iter = 0; iter < 400; ++iter) {
    std::string corrupt = bytes;
    switch (rng.NextIndex(3)) {
      case 0:  // single byte flip
        corrupt[rng.NextIndex(corrupt.size())] ^=
            static_cast<char>(1 + rng.NextIndex(255));
        break;
      case 1:  // a burst of flips
        for (size_t k = 0, n = 1 + rng.NextIndex(16); k < n; ++k) {
          corrupt[rng.NextIndex(corrupt.size())] ^=
              static_cast<char>(1 + rng.NextIndex(255));
        }
        break;
      default:  // truncation (sometimes with the header intact)
        corrupt.resize(rng.NextIndex(corrupt.size()));
        break;
    }
    auto r = CompiledTagger::Deserialize(corrupt);
    if (!r.ok()) continue;  // typed rejection is the expected outcome
    ++loads;
    for (size_t i = 0; i < want.size(); ++i) {
      const std::vector<Tag> got = r->Tag(kInputs[i]);
      ASSERT_EQ(want[i].size(), got.size())
          << "corrupt artifact diverged (iter " << iter << ")";
      for (size_t t = 0; t < got.size(); ++t) {
        ASSERT_TRUE(want[i][t].token == got[t].token &&
                    want[i][t].end == got[t].end)
            << "corrupt artifact diverged (iter " << iter << ")";
      }
    }
  }
  // With a whole-file checksum, surviving loads should be rare; the few
  // that do survive (flips that cancel out, truncation at full length)
  // were verified identical above.
  EXPECT_LT(loads, 40) << "checksum is not catching corruption";
}

}  // namespace
}  // namespace cfgtag
