// Equivalence and edge-case coverage for the runtime-dispatched SIMD
// kernel library (src/tagger/simd/) and the RunScanner rewired on top of
// it: every available kernel tier must return byte-identical results to
// the scalar tier for arbitrary byte sets, buffer lengths shorter than a
// vector, unaligned heads and tails, and class maps of every plane count.

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "regex/char_class.h"
#include "tagger/simd/dispatch.h"
#include "tagger/skip_scan.h"

namespace cfgtag::tagger {
namespace {

using simd::BuildByteSet;
using simd::BuildClassTables;
using simd::ByteSet;
using simd::ClassTables;
using simd::Isa;
using simd::IsaAvailable;
using simd::Kernels;
using simd::KernelsFor;

std::vector<Isa> AvailableIsas() {
  std::vector<Isa> isas;
  for (int i = 0; i < simd::kNumIsas; ++i) {
    const Isa isa = static_cast<Isa>(i);
    if (IsaAvailable(isa)) isas.push_back(isa);
  }
  return isas;
}

// Reference implementation: plain per-byte membership loop.
size_t NaiveFindFirstIn(const bool members[256], const std::string& s,
                        size_t from, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (members[static_cast<unsigned char>(s[from + i])]) return i;
  }
  return n;
}

size_t NaiveFindFirstNotIn(const bool members[256], const std::string& s,
                           size_t from, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (!members[static_cast<unsigned char>(s[from + i])]) return i;
  }
  return n;
}

// A byte set with `count` pseudo-random members.
void RandomSet(std::mt19937* rng, int count, bool members[256]) {
  std::memset(members, 0, 256);
  int placed = 0;
  while (placed < count) {
    const int b = static_cast<int>((*rng)() % 256);
    if (!members[b]) {
      members[b] = true;
      ++placed;
    }
  }
}

std::string RandomBuffer(std::mt19937* rng, size_t n, const bool members[256],
                         double member_prob) {
  // Bytes drawn from inside/outside the set with the given bias, so runs
  // of both polarities occur at every tested length.
  std::vector<unsigned char> inside, outside;
  for (int b = 0; b < 256; ++b) {
    (members[b] ? inside : outside).push_back(static_cast<unsigned char>(b));
  }
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::string s;
  s.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const bool in = !inside.empty() && (outside.empty() || coin(*rng) < member_prob);
    const auto& pool = in ? inside : outside;
    s.push_back(static_cast<char>(pool[(*rng)() % pool.size()]));
  }
  return s;
}

TEST(SimdKernels, AtLeastScalarIsAvailable) {
  EXPECT_TRUE(IsaAvailable(Isa::kScalar));
  EXPECT_TRUE(IsaAvailable(simd::BestAvailable()));
}

// Every tier, every set size of interest (0, 1, 8, 9, 255 cross the
// memchr / SWAR / table strategy boundaries), buffers shorter than any
// vector width through several vectors long, at every alignment offset.
TEST(SimdKernels, FindFirstMatchesNaiveEverywhere) {
  std::mt19937 rng(20260809);
  const std::vector<Isa> isas = AvailableIsas();
  const int set_sizes[] = {0, 1, 2, 8, 9, 16, 100, 255, 256};
  for (const int count : set_sizes) {
    bool members[256];
    RandomSet(&rng, count, members);
    const ByteSet set = BuildByteSet(members);
    ASSERT_EQ(set.num_values, count);
    for (const double bias : {0.05, 0.5, 0.95}) {
      // Oversized so every (offset, length) window stays in bounds.
      const std::string buf = RandomBuffer(&rng, 256, members, bias);
      for (const size_t len : {size_t{0}, size_t{1}, size_t{3}, size_t{7},
                               size_t{8}, size_t{15}, size_t{16}, size_t{17},
                               size_t{31}, size_t{32}, size_t{33}, size_t{63},
                               size_t{64}, size_t{65}, size_t{100},
                               size_t{128}}) {
        for (const size_t off : {size_t{0}, size_t{1}, size_t{7}, size_t{13},
                                 size_t{16}, size_t{31}}) {
          const size_t want_in = NaiveFindFirstIn(members, buf, off, len);
          const size_t want_not = NaiveFindFirstNotIn(members, buf, off, len);
          for (const Isa isa : isas) {
            const Kernels& k = KernelsFor(isa);
            EXPECT_EQ(k.find_first_in(set, buf.data() + off, len), want_in)
                << "isa=" << simd::IsaName(isa) << " count=" << count
                << " off=" << off << " len=" << len;
            EXPECT_EQ(k.find_first_not_in(set, buf.data() + off, len),
                      want_not)
                << "isa=" << simd::IsaName(isa) << " count=" << count
                << " off=" << off << " len=" << len;
          }
        }
      }
    }
  }
}

// Class maps with 1, 2, 5, 16, 64 classes (0 to 6 bit-planes) plus one
// past the vector budget (>64 forces the scalar table loop in every tier).
TEST(SimdKernels, ClassifyMatchesMapEverywhere) {
  std::mt19937 rng(987654321);
  const std::vector<Isa> isas = AvailableIsas();
  for (const size_t num_classes :
       {size_t{1}, size_t{2}, size_t{5}, size_t{16}, size_t{64}, size_t{65},
        size_t{200}}) {
    uint8_t map[256];
    for (int b = 0; b < 256; ++b) {
      map[b] = static_cast<uint8_t>(rng() % num_classes);
    }
    // Ensure every class id actually appears so num_classes is honest.
    for (size_t c = 0; c < num_classes && c < 256; ++c) {
      map[c] = static_cast<uint8_t>(c);
    }
    const ClassTables tables = BuildClassTables(map, num_classes);
    if (num_classes <= 1) {
      EXPECT_EQ(tables.num_planes, 0);
    } else if (num_classes <= 64) {
      EXPECT_GT(tables.num_planes, 0);
    } else {
      EXPECT_EQ(tables.num_planes, -1);
    }
    std::string buf(300, '\0');
    for (char& c : buf) c = static_cast<char>(rng() % 256);
    for (const size_t len :
         {size_t{0}, size_t{1}, size_t{7}, size_t{16}, size_t{17}, size_t{33},
          size_t{64}, size_t{200}}) {
      for (const size_t off : {size_t{0}, size_t{3}, size_t{16}, size_t{29}}) {
        std::vector<uint8_t> want(len);
        for (size_t i = 0; i < len; ++i) {
          want[i] = map[static_cast<unsigned char>(buf[off + i])];
        }
        for (const Isa isa : isas) {
          std::vector<uint8_t> got(len + 1, 0xEE);
          KernelsFor(isa).classify(tables, buf.data() + off, len, got.data());
          EXPECT_EQ(std::memcmp(got.data(), want.data(), len), 0)
              << "isa=" << simd::IsaName(isa)
              << " num_classes=" << num_classes << " off=" << off
              << " len=" << len;
          EXPECT_EQ(got[len], 0xEE) << "classify wrote past the end";
        }
      }
    }
  }
}

TEST(SimdDispatch, ForceIsaSwitchesActiveKernels) {
  simd::ForceIsa(Isa::kScalar);
  EXPECT_EQ(simd::Active().isa, Isa::kScalar);
  const Isa best = simd::BestAvailable();
  simd::ForceIsa(best);
  EXPECT_EQ(simd::Active().isa, best);
  simd::ClearForcedIsa();
  // The startup selection honors CFGTAG_FORCE_SCALAR if the environment
  // sets it, so only sanity-check availability here.
  EXPECT_TRUE(IsaAvailable(simd::Active().isa));
}

TEST(SimdDispatch, ForcingUnavailableIsaFallsBackToScalar) {
#if defined(__aarch64__)
  const Isa missing = Isa::kAvx2;
#else
  const Isa missing = Isa::kNeon;
#endif
  ASSERT_FALSE(IsaAvailable(missing));
  simd::ForceIsa(missing);
  EXPECT_EQ(simd::Active().isa, Isa::kScalar);
  simd::ClearForcedIsa();
}

// RunScanner (the idle fast-skip engine) must agree between forced-scalar
// and the best vector dispatch for arbitrary sets, and its reported
// strategy must track the active dispatch.
TEST(RunScannerSimd, DispatchEquivalenceSweep) {
  std::mt19937 rng(1337);
  const Isa best = simd::BestAvailable();
  for (const int count : {0, 1, 3, 8, 9, 40, 255}) {
    bool members[256];
    RandomSet(&rng, count, members);
    regex::CharClass cc;
    for (int b = 0; b < 256; ++b) {
      if (members[b]) cc.Set(static_cast<unsigned char>(b));
    }
    const RunScanner scanner = RunScanner::ForSet(cc);
    EXPECT_EQ(scanner.num_values(), count);
    for (int b = 0; b < 256; ++b) {
      EXPECT_EQ(scanner.Test(static_cast<unsigned char>(b)), members[b]);
    }
    for (const double bias : {0.1, 0.9}) {
      const std::string buf = RandomBuffer(&rng, 200, members, bias);
      for (size_t len : {size_t{0}, size_t{5}, size_t{16}, size_t{40},
                         size_t{200}}) {
        simd::ForceIsa(Isa::kScalar);
        const size_t in_scalar = scanner.FindFirstIn(buf.data(), len);
        const size_t not_scalar = scanner.FindFirstNotIn(buf.data(), len);
        simd::ForceIsa(best);
        EXPECT_EQ(scanner.FindFirstIn(buf.data(), len), in_scalar);
        EXPECT_EQ(scanner.FindFirstNotIn(buf.data(), len), not_scalar);
      }
    }
  }
  simd::ClearForcedIsa();
}

TEST(RunScannerSimd, StrategyTracksDispatchAndPopulation) {
  auto scanner_with = [](int count) {
    regex::CharClass cc;
    for (int b = 0; b < count; ++b) cc.Set(static_cast<unsigned char>(b));
    return RunScanner::ForSet(cc);
  };
  simd::ForceIsa(Isa::kScalar);
  EXPECT_EQ(scanner_with(0).strategy(), SkipStrategy::kNone);
  EXPECT_EQ(scanner_with(1).strategy(), SkipStrategy::kMemchr);
  EXPECT_EQ(scanner_with(8).strategy(), SkipStrategy::kSwar);
  EXPECT_EQ(scanner_with(9).strategy(), SkipStrategy::kTable);
  const Isa best = simd::BestAvailable();
  simd::ForceIsa(best);
  if (best != Isa::kScalar) {
    EXPECT_EQ(scanner_with(0).strategy(), SkipStrategy::kNone);
    EXPECT_EQ(scanner_with(1).strategy(), SkipStrategy::kMemchr);
    EXPECT_EQ(scanner_with(8).strategy(), SkipStrategy::kSimd);
    EXPECT_EQ(scanner_with(9).strategy(), SkipStrategy::kSimd);
  }
  simd::ClearForcedIsa();
}

}  // namespace
}  // namespace cfgtag::tagger
