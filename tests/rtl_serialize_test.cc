#include <gtest/gtest.h>

#include "core/token_tagger.h"
#include "rtl/netlist.h"
#include "rtl/optimize.h"
#include "rtl/serialize.h"
#include "xmlrpc/xmlrpc_grammar.h"

namespace cfgtag::rtl {
namespace {

Netlist SmallDesign() {
  Netlist nl;
  nl.SetScope("front");
  NodeId a = nl.AddInput("a");
  NodeId b = nl.AddInput("b");
  NodeId g = nl.And2(a, nl.Not(b));
  nl.SetScope("back");
  NodeId r = nl.Reg(g, /*enable=*/b, /*init=*/true, "state");
  NodeId fb = nl.RegPlaceholder(kInvalidNode, false, "toggle");
  nl.SetRegD(fb, nl.Not(fb));
  nl.MarkOutput(r, "out");
  nl.MarkOutput(fb, "t");
  nl.SetScope("");
  return nl;
}

TEST(SerializeTest, RoundTripPreservesEverything) {
  Netlist nl = SmallDesign();
  const std::string text = SerializeNetlist(nl);
  auto loaded = ParseNetlist(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  ASSERT_EQ(loaded->NumNodes(), nl.NumNodes());
  for (NodeId id = 0; id < nl.NumNodes(); ++id) {
    const Node& x = nl.node(id);
    const Node& y = loaded->node(id);
    EXPECT_EQ(x.kind, y.kind) << id;
    EXPECT_EQ(x.fanin, y.fanin) << id;
    EXPECT_EQ(x.enable, y.enable) << id;
    EXPECT_EQ(x.init, y.init) << id;
    EXPECT_EQ(x.name, y.name) << id;
    EXPECT_EQ(nl.NodeScope(id), loaded->NodeScope(id)) << id;
  }
  ASSERT_EQ(loaded->outputs().size(), nl.outputs().size());
  EXPECT_EQ(loaded->outputs()[0].name, "out");
  EXPECT_TRUE(CheckEquivalent(nl, *loaded, 8, 8, 3).ok());
}

TEST(SerializeTest, RoundTripIsIdempotent) {
  Netlist nl = SmallDesign();
  const std::string once = SerializeNetlist(nl);
  auto loaded = ParseNetlist(once);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(SerializeNetlist(*loaded), once);
}

TEST(SerializeTest, EscapedNamesSurvive) {
  Netlist nl;
  NodeId a = nl.AddInput("in");
  NodeId r = nl.Reg(a, kInvalidNode, false, "weird \"name\"\twith\nstuff");
  nl.MarkOutput(r, "o");
  auto loaded = ParseNetlist(SerializeNetlist(nl));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->node(r).name, "weird \"name\"\twith\nstuff");
}

TEST(SerializeTest, GeneratedTaggerRoundTrips) {
  auto g = xmlrpc::XmlRpcGrammar();
  ASSERT_TRUE(g.ok());
  auto compiled = core::CompiledTagger::Compile(std::move(g).value());
  ASSERT_TRUE(compiled.ok());
  const Netlist& original = compiled->hardware().netlist;
  auto loaded = ParseNetlist(SerializeNetlist(original));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumNodes(), original.NumNodes());
  EXPECT_TRUE(CheckEquivalent(original, *loaded, 2, 32, 11).ok());
}

TEST(SerializeTest, ParserRejectsGarbage) {
  EXPECT_FALSE(ParseNetlist("").ok());
  EXPECT_FALSE(ParseNetlist("wrong header\n").ok());
  EXPECT_FALSE(ParseNetlist("cfgtag-netlist-v1\n5 i \"gap\"\n").ok())
      << "non-dense ids";
  EXPECT_FALSE(ParseNetlist("cfgtag-netlist-v1\n2 z\n").ok())
      << "unknown kind";
  EXPECT_FALSE(ParseNetlist("cfgtag-netlist-v1\n2 i\n").ok())
      << "input without name";
  EXPECT_FALSE(
      ParseNetlist("cfgtag-netlist-v1\n2 i \"a\"\n3 a 2 9\nout 3 \"o\"\n")
          .ok())
      << "fan-in out of range";
  // Oversized / non-numeric pin ids must return Status, never throw.
  EXPECT_FALSE(ParseNetlist("cfgtag-netlist-v1\n2 i \"a\"\n"
                            "3 r d=99999999999999999999999 en=- init=0\n"
                            "out 3 \"o\"\n")
                   .ok());
  EXPECT_FALSE(ParseNetlist("cfgtag-netlist-v1\n2 i \"a\"\n"
                            "3 r d=2 en=x init=0\nout 3 \"o\"\n")
                   .ok());
}

TEST(SerializeTest, ValidateRejectsCombinationalForwardRefs) {
  // A gate referencing a later node must be rejected (only registers may
  // close feedback loops).
  auto loaded = ParseNetlist(
      "cfgtag-netlist-v1\n"
      "2 i \"a\"\n"
      "3 a 2 4\n"
      "4 n 2\n"
      "out 3 \"o\"\n");
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace cfgtag::rtl
