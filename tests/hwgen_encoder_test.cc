#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "hwgen/encoder_gen.h"
#include "rtl/netlist.h"
#include "rtl/simulator.h"

namespace cfgtag::hwgen {
namespace {

struct EncoderFixture {
  rtl::Netlist nl;
  std::vector<rtl::NodeId> inputs;
  EncoderPorts ports;
  std::unique_ptr<rtl::Simulator> sim;

  void Build(size_t n, bool pipelined) {
    for (size_t i = 0; i < n; ++i) {
      inputs.push_back(nl.AddInput("in" + std::to_string(i)));
    }
    ports = pipelined ? EncoderGenerator::BuildPipelined(&nl, inputs, "enc")
                      : EncoderGenerator::BuildNaive(&nl, inputs, "enc");
    auto s = rtl::Simulator::Create(&nl);
    ASSERT_TRUE(s.ok()) << s.status();
    sim = std::make_unique<rtl::Simulator>(std::move(s).value());
  }

  // Drives a one-hot input, flushes the pipeline, returns (valid, index).
  std::pair<bool, uint32_t> Encode(uint64_t mask) {
    sim->Reset();
    for (size_t i = 0; i < inputs.size(); ++i) {
      sim->SetInput(inputs[i], (mask >> i) & 1);
    }
    sim->Step();
    // Clear inputs and flush the remaining stages.
    for (rtl::NodeId in : inputs) sim->SetInput(in, false);
    for (int s = 1; s < std::max(ports.latency, 1); ++s) sim->Step();
    uint32_t index = 0;
    for (size_t k = 0; k < ports.index_bits.size(); ++k) {
      if (sim->Get(ports.index_bits[k])) index |= 1u << k;
    }
    return {sim->Get(ports.valid), index};
  }
};

class EncoderSizeTest
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

// Every one-hot input must encode to its own index — for the pipelined
// OR-tree (eqs. 1-4) and the naive encoder alike, across sizes including
// non-powers of two.
TEST_P(EncoderSizeTest, OneHotEncodesIndex) {
  const auto [n, pipelined] = GetParam();
  EncoderFixture f;
  f.Build(n, pipelined);
  for (int i = 0; i < n; ++i) {
    auto [valid, index] = f.Encode(1ULL << i);
    EXPECT_TRUE(valid) << "input " << i;
    EXPECT_EQ(index, static_cast<uint32_t>(i)) << "input " << i;
  }
  auto [valid, index] = f.Encode(0);
  EXPECT_FALSE(valid);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, EncoderSizeTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 7, 15, 16, 42),
                       ::testing::Bool()));

TEST(EncoderTest, FifteenInputEncoderMatchesPaperEquations) {
  // The paper's 15-input example (eqs. 1-4): 4 index bits.
  EncoderFixture f;
  f.Build(15, /*pipelined=*/true);
  EXPECT_EQ(f.ports.index_bits.size(), 4u);
  EXPECT_EQ(f.ports.latency, 4);
  for (int i = 0; i < 15; ++i) {
    EXPECT_EQ(f.Encode(1ULL << i).second, static_cast<uint32_t>(i));
  }
}

TEST(EncoderTest, SimultaneousInputsOrTheirIndices) {
  // Without priorities, simultaneous assertions OR bitwise — the behaviour
  // eq. 5 exploits.
  EncoderFixture f;
  f.Build(8, /*pipelined=*/true);
  auto [valid, index] = f.Encode((1ULL << 3) | (1ULL << 5));
  EXPECT_TRUE(valid);
  EXPECT_EQ(index, 3u | 5u);
}

TEST(EncoderTest, NaiveEncoderPrioritizesHighestIndex) {
  // The CASE-chain encoder resolves simultaneous inputs by priority
  // (later elsif wins) rather than OR-merging.
  EncoderFixture f;
  f.Build(8, /*pipelined=*/false);
  auto [valid, index] = f.Encode((1ULL << 2) | (1ULL << 6));
  EXPECT_TRUE(valid);
  EXPECT_EQ(index, 6u);
}

TEST(EncoderTest, NaiveEncoderHasLatencyOne) {
  EncoderFixture f;
  f.Build(42, /*pipelined=*/false);
  EXPECT_EQ(f.ports.latency, 1);
}

TEST(EncoderTest, PipelinedLatencyIsLogDepth) {
  EncoderFixture f;
  f.Build(42, /*pipelined=*/true);
  EXPECT_EQ(f.ports.latency, 6);  // ceil(log2(42))
}

TEST(EncoderTest, EmptyInputs) {
  rtl::Netlist nl;
  EncoderPorts p = EncoderGenerator::BuildPipelined(&nl, {}, "enc");
  EXPECT_EQ(p.valid, nl.Const0());
  EXPECT_TRUE(p.index_bits.empty());
}

// ------------------------------------------------- Priority assignment

TEST(PriorityTest, SingleGroupNestedMasks) {
  // Tokens 0..3, group with ascending priority {0,1,2,3}.
  auto leaves = AssignPriorityIndices(4, {{0, 1, 2, 3}}, 4);
  ASSERT_TRUE(leaves.ok()) << leaves.status();
  // Find each token's index.
  std::vector<uint32_t> index_of(4);
  for (uint32_t i = 0; i < leaves->size(); ++i) {
    if ((*leaves)[i] >= 0) index_of[(*leaves)[i]] = i;
  }
  // Eq. 5: OR of any subset equals the highest-priority member's index.
  for (int hi = 0; hi < 4; ++hi) {
    uint32_t acc = 0;
    for (int lo = 0; lo <= hi; ++lo) acc |= index_of[lo];
    EXPECT_EQ(acc, index_of[hi]) << "priority " << hi;
  }
}

TEST(PriorityTest, GroupSizeLimitedByIndexBits) {
  // A chain of 6 needs 5 dedicated bits (plus the zero mask): fails with 4.
  EXPECT_FALSE(AssignPriorityIndices(6, {{0, 1, 2, 3, 4, 5}}, 4).ok());
  EXPECT_TRUE(AssignPriorityIndices(6, {{0, 1, 2, 3, 4, 5}}, 5).ok());
}

TEST(PriorityTest, TwoGroupsUseDisjointBits) {
  auto leaves = AssignPriorityIndices(6, {{0, 1, 2}, {3, 4, 5}}, 6);
  ASSERT_TRUE(leaves.ok()) << leaves.status();
  std::vector<uint32_t> index_of(6);
  for (uint32_t i = 0; i < leaves->size(); ++i) {
    if ((*leaves)[i] >= 0) index_of[(*leaves)[i]] = i;
  }
  EXPECT_EQ(index_of[0] | index_of[1] | index_of[2], index_of[2]);
  EXPECT_EQ(index_of[3] | index_of[4] | index_of[5], index_of[5]);
  // All indices unique.
  std::set<uint32_t> s(index_of.begin(), index_of.end());
  EXPECT_EQ(s.size(), 6u);
}

TEST(PriorityTest, UngroupedTokensFillRemainingLeaves) {
  auto leaves = AssignPriorityIndices(5, {{1, 3}}, 3);
  ASSERT_TRUE(leaves.ok()) << leaves.status();
  std::set<int32_t> placed;
  for (int32_t t : *leaves) {
    if (t >= 0) {
      EXPECT_TRUE(placed.insert(t).second);
    }
  }
  EXPECT_EQ(placed.size(), 5u);
}

TEST(PriorityTest, Rejections) {
  EXPECT_FALSE(AssignPriorityIndices(4, {{0, 1}, {1, 2}}, 4).ok())
      << "token in two groups";
  EXPECT_FALSE(AssignPriorityIndices(4, {{9}}, 4).ok()) << "bad token id";
  EXPECT_FALSE(AssignPriorityIndices(100, {}, 3).ok()) << "too many tokens";
  EXPECT_FALSE(AssignPriorityIndices(4, {}, 0).ok()) << "no bits";
}

}  // namespace
}  // namespace cfgtag::hwgen
