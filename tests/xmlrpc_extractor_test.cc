#include <gtest/gtest.h>

#include "xmlrpc/extractor.h"
#include "xmlrpc/message_gen.h"

namespace cfgtag::xmlrpc {
namespace {

TEST(CallExtractorTest, ExtractsMethodAndScalars) {
  auto ex = CallExtractor::Create();
  ASSERT_TRUE(ex.ok()) << ex.status();
  auto call = ex->Extract(
      "<methodCall><methodName>deposit</methodName><params>"
      "<param><i4>+42</i4></param>"
      "<param><string>savings</string></param>"
      "<param><double>3.14</double></param>"
      "</params></methodCall>");
  ASSERT_TRUE(call.ok()) << call.status();
  EXPECT_EQ(call->method, "deposit");
  ASSERT_EQ(call->params.size(), 3u);
  EXPECT_EQ(call->params[0].type, "i4");
  EXPECT_EQ(call->params[0].text, "+42");
  EXPECT_EQ(call->params[1].type, "string");
  EXPECT_EQ(call->params[1].text, "savings");
  EXPECT_EQ(call->params[2].type, "double");
  EXPECT_EQ(call->params[2].text, "3.14");
}

TEST(CallExtractorTest, HandlesWhitespaceBetweenTokens) {
  auto ex = CallExtractor::Create();
  ASSERT_TRUE(ex.ok());
  auto call = ex->Extract(
      "<methodCall>\n  <methodName>buy</methodName>\n  <params>\n"
      "    <param> <int>7</int> </param>\n  </params>\n</methodCall>");
  ASSERT_TRUE(call.ok()) << call.status();
  EXPECT_EQ(call->method, "buy");
  ASSERT_EQ(call->params.size(), 1u);
  EXPECT_EQ(call->params[0].text, "7");
}

TEST(CallExtractorTest, DateTimeSpansMultipleTokens) {
  auto ex = CallExtractor::Create();
  ASSERT_TRUE(ex.ok());
  auto call = ex->Extract(
      "<methodCall><methodName>when</methodName><params><param>"
      "<dateTime.iso8601>19980717T14:08:55</dateTime.iso8601>"
      "</param></params></methodCall>");
  ASSERT_TRUE(call.ok()) << call.status();
  ASSERT_EQ(call->params.size(), 1u);
  EXPECT_EQ(call->params[0].type, "dateTime.iso8601");
  EXPECT_EQ(call->params[0].text, "19980717T14:08:55");
}

TEST(CallExtractorTest, ContainersSummarizedAndNestedScalarsSkipped) {
  auto ex = CallExtractor::Create();
  ASSERT_TRUE(ex.ok());
  auto call = ex->Extract(
      "<methodCall><methodName>mix</methodName><params>"
      "<param><struct><member><name>k</name><i4>1</i4></member>"
      "</struct></param>"
      "<param><array><data><int>2</int><int>3</int></data></array></param>"
      "<param><int>9</int></param>"
      "</params></methodCall>");
  ASSERT_TRUE(call.ok()) << call.status();
  ASSERT_EQ(call->params.size(), 3u);
  EXPECT_EQ(call->params[0].type, "struct");
  EXPECT_EQ(call->params[1].type, "array");
  EXPECT_EQ(call->params[2].type, "int");
  EXPECT_EQ(call->params[2].text, "9");
}

TEST(CallExtractorTest, NoParams) {
  auto ex = CallExtractor::Create();
  ASSERT_TRUE(ex.ok());
  auto call = ex->Extract(
      "<methodCall><methodName>ping</methodName>"
      "<params></params></methodCall>");
  ASSERT_TRUE(call.ok()) << call.status();
  EXPECT_EQ(call->method, "ping");
  EXPECT_TRUE(call->params.empty());
}

TEST(CallExtractorTest, RejectsUnframedInput) {
  auto ex = CallExtractor::Create();
  ASSERT_TRUE(ex.ok());
  EXPECT_FALSE(ex->Extract("just some bytes").ok());
  EXPECT_FALSE(ex->Extract("<params><param><i4>1</i4></param></params>")
                   .ok());
}

class ExtractorFuzzTest : public ::testing::TestWithParam<uint64_t> {};

// Generated messages: the extractor must recover the method name and the
// right number of top-level parameters every time.
TEST_P(ExtractorFuzzTest, RoundTripsGeneratedMessages) {
  auto ex = CallExtractor::Create();
  ASSERT_TRUE(ex.ok());
  MessageGenerator gen({}, GetParam());
  for (int i = 0; i < 8; ++i) {
    const std::string msg = gen.Generate();
    auto call = ex->Extract(msg);
    ASSERT_TRUE(call.ok()) << call.status() << "\n" << msg;
    EXPECT_FALSE(call->method.empty());
    // Top-level params == number of "<param>" occurrences.
    size_t expected = 0, pos = 0;
    while ((pos = msg.find("<param>", pos)) != std::string::npos) {
      ++expected;
      pos += 7;
    }
    EXPECT_EQ(call->params.size(), expected) << msg;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtractorFuzzTest,
                         ::testing::Range<uint64_t>(0, 6));

}  // namespace
}  // namespace cfgtag::xmlrpc
