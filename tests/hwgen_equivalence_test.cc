// Property tests: on randomly generated grammars and inputs, the three
// engines must relate as the paper claims —
//   * the cycle-accurate netlist is bit-identical to the functional model
//     (they implement the same machine), under every option combination;
//   * on inputs accepted by the true (LL) parser, the hardware tag stream
//     is a superset of the parser's tag stream (§3.1 FSA collapse).

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "common/rng.h"
#include "core/token_tagger.h"
#include "grammar/grammar.h"
#include "tagger/ll_parser.h"

namespace cfgtag {
namespace {

using core::CompiledTagger;
using grammar::Grammar;
using grammar::Symbol;
using tagger::Tag;

// Builds a random grammar: a handful of literal and class tokens wired into
// random right-linear-ish productions (kept LL-friendly but not always
// LL(1) — the LL check is skipped when table construction fails).
Grammar RandomGrammar(Rng& rng) {
  Grammar g;
  const int num_lits = 2 + static_cast<int>(rng.NextIndex(3));
  std::vector<int32_t> tokens;
  for (int i = 0; i < num_lits; ++i) {
    // Distinct literal spellings.
    std::string text;
    text.push_back(static_cast<char>('a' + i));
    text += rng.NextString(1 + rng.NextIndex(3), "xyz");
    auto t = g.AddLiteralToken(text);
    if (t.ok()) tokens.push_back(*t);
  }
  if (rng.NextBool(0.6)) {
    auto t = g.AddToken("NUM", "[0-9]+");
    if (t.ok()) tokens.push_back(*t);
  }
  if (rng.NextBool(0.4)) {
    auto t = g.AddToken("HEX", "[a-f][a-f0-9]*");
    if (t.ok()) tokens.push_back(*t);
  }

  const int num_nts = 2 + static_cast<int>(rng.NextIndex(2));
  std::vector<int32_t> nts;
  for (int i = 0; i < num_nts; ++i) {
    nts.push_back(g.AddNonterminal("n" + std::to_string(i)));
  }
  // Every nonterminal gets 1-2 productions; rule bodies start with a token
  // (keeps First sets simple) and may reference later nonterminals.
  for (int i = 0; i < num_nts; ++i) {
    const int alts = 1 + static_cast<int>(rng.NextIndex(2));
    for (int a = 0; a < alts; ++a) {
      std::vector<Symbol> rhs;
      rhs.push_back(Symbol::Terminal(
          tokens[rng.NextIndex(tokens.size())]));
      const int extra = static_cast<int>(rng.NextIndex(3));
      for (int e = 0; e < extra; ++e) {
        if (rng.NextBool(0.35) && i + 1 < num_nts) {
          rhs.push_back(Symbol::Nonterminal(
              nts[i + 1 + rng.NextIndex(num_nts - i - 1)]));
        } else {
          rhs.push_back(Symbol::Terminal(
              tokens[rng.NextIndex(tokens.size())]));
        }
      }
      g.AddProduction(nts[i], std::move(rhs));
    }
  }
  g.SetStart(nts[0]);
  return g;
}

// Derives a random sentence from the grammar (depth-bounded), with random
// whitespace between tokens.
std::string RandomSentence(const Grammar& g, Rng& rng) {
  std::string out;
  std::function<void(int32_t, int)> derive = [&](int32_t nt, int depth) {
    // Pick a production of nt (prefer token-only ones when deep).
    std::vector<const grammar::Production*> prods;
    for (const auto& p : g.productions()) {
      if (p.lhs == nt) prods.push_back(&p);
    }
    const grammar::Production* pick =
        prods[rng.NextIndex(prods.size())];
    if (depth > 6) {
      for (const auto* p : prods) {
        bool token_only = true;
        for (const Symbol& s : p->rhs) token_only &= s.IsTerminal();
        if (token_only) {
          pick = p;
          break;
        }
      }
    }
    for (const Symbol& s : pick->rhs) {
      if (rng.NextBool(0.4)) out.append(rng.NextIndex(2) + 1, ' ');
      if (s.IsTerminal()) {
        const grammar::TokenDef& def = g.tokens()[s.index];
        if (def.is_literal) {
          out += def.literal_text;
        } else if (def.name == "NUM") {
          out += std::to_string(rng.NextIndex(10000));
        } else {  // HEX
          out += "a" + rng.NextString(rng.NextIndex(4), "abcdef0123456789");
        }
      } else {
        derive(s.index, depth + 1);
      }
    }
  };
  derive(g.start(), 0);
  return out;
}

struct EquivCase {
  uint64_t seed;
  bool longest_match;
  bool anchored;
};

class EquivalenceTest : public ::testing::TestWithParam<EquivCase> {};

TEST_P(EquivalenceTest, NetlistMatchesFunctionalModel) {
  const EquivCase c = GetParam();
  Rng rng(c.seed * 1000003 + 17);
  Grammar g = RandomGrammar(rng);
  ASSERT_TRUE(g.Validate().ok());

  hwgen::HwOptions opt;
  opt.tagger.longest_match = c.longest_match;
  opt.tagger.anchored = c.anchored;
  Grammar g_input = g.Clone();
  auto compiled = CompiledTagger::Compile(std::move(g_input), opt);
  ASSERT_TRUE(compiled.ok()) << compiled.status();

  for (int round = 0; round < 4; ++round) {
    // Half conforming sentences, half random garbage.
    const std::string input =
        round % 2 == 0 ? RandomSentence(g, rng)
                       : rng.NextString(rng.NextIndex(40), "abxyz 0<>/");
    auto hw = compiled->TagCycleAccurate(input);
    ASSERT_TRUE(hw.ok()) << hw.status();
    EXPECT_EQ(compiled->Tag(input), *hw)
        << "seed=" << c.seed << " lm=" << c.longest_match
        << " anchored=" << c.anchored << " input='" << input << "'";
  }
}

TEST_P(EquivalenceTest, HardwareTagsSupersetOfLlParser) {
  const EquivCase c = GetParam();
  if (!c.anchored) GTEST_SKIP() << "LL comparison only in parse mode";
  Rng rng(c.seed * 7 + 3);
  Grammar g = RandomGrammar(rng);
  ASSERT_TRUE(g.Validate().ok());

  Grammar g2 = g.Clone();
  auto parser = tagger::PredictiveParser::Create(&g2, {});
  if (!parser.ok()) GTEST_SKIP() << "grammar not LL(1): " << parser.status();

  hwgen::HwOptions opt;
  opt.tagger.longest_match = c.longest_match;
  auto compiled = CompiledTagger::Compile(g.Clone(), opt);
  ASSERT_TRUE(compiled.ok()) << compiled.status();

  for (int round = 0; round < 4; ++round) {
    const std::string input = RandomSentence(g, rng);
    auto ll = parser->Parse(input);
    if (!ll.ok()) continue;  // lexing ambiguity in a random grammar
    auto hw = compiled->Tag(input);
    for (const Tag& t : *ll) {
      EXPECT_TRUE(std::find(hw.begin(), hw.end(), t) != hw.end())
          << "missing token " << g.tokens()[t.token].name << " end=" << t.end
          << " input='" << input << "'";
    }
  }
}

std::vector<EquivCase> MakeCases() {
  std::vector<EquivCase> cases;
  for (uint64_t seed = 0; seed < 12; ++seed) {
    cases.push_back({seed, true, true});
    cases.push_back({seed, false, true});
    cases.push_back({seed, true, false});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomGrammars, EquivalenceTest,
                         ::testing::ValuesIn(MakeCases()));

}  // namespace
}  // namespace cfgtag
