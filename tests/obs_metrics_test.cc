#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/token_tagger.h"
#include "grammar/grammar_parser.h"
#include "obs/metrics.h"

namespace cfgtag::obs {
namespace {

TEST(CounterTest, MonotonicIncrement) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&c] {
      for (int j = 0; j < kPerThread; ++j) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.Value(), 1.5);
}

TEST(HistogramTest, BucketBoundariesAreLessOrEqual) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // <= 1        -> bucket 0
  h.Observe(1.0);    // == bound 1  -> bucket 0 (le semantics)
  h.Observe(1.0001); //             -> bucket 1
  h.Observe(10.0);   // == bound 10 -> bucket 1
  h.Observe(100.0);  //             -> bucket 2
  h.Observe(1e6);    // above all   -> +Inf bucket
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(3), 1u);  // +Inf
  EXPECT_EQ(h.TotalCount(), 6u);
  EXPECT_NEAR(h.Sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 100.0 + 1e6, 1e-9);
}

TEST(HistogramTest, NegativeAndZeroObservations) {
  Histogram h({0.0, 1.0});
  h.Observe(-5.0);
  h.Observe(0.0);
  h.Observe(0.5);
  EXPECT_EQ(h.BucketCount(0), 2u);  // -5 and 0 are both <= 0
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.TotalCount(), 3u);
}

TEST(RegistryTest, StablePointersAndIdempotentLookup) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x_total");
  Counter* b = reg.GetCounter("x_total");
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(b->Value(), 1u);
}

TEST(RegistryTest, ExpositionFormat) {
  MetricsRegistry reg;
  reg.GetCounter("cfgtag_demo_total", "A demo counter")->Increment(3);
  reg.GetGauge("cfgtag_demo_gauge")->Set(1.5);
  Histogram* h = reg.GetHistogram("cfgtag_demo_seconds", "Latency",
                                  std::vector<double>{0.1, 1.0});
  h->Observe(0.05);
  h->Observe(0.5);
  h->Observe(5.0);

  const std::string text = reg.ExpositionText();
  EXPECT_NE(text.find("# HELP cfgtag_demo_total A demo counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cfgtag_demo_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("cfgtag_demo_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cfgtag_demo_gauge gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("cfgtag_demo_gauge 1.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cfgtag_demo_seconds histogram\n"),
            std::string::npos);
  // Bucket counts are cumulative: 1, 2, 3.
  EXPECT_NE(text.find("cfgtag_demo_seconds_bucket{le=\"0.1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("cfgtag_demo_seconds_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("cfgtag_demo_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("cfgtag_demo_seconds_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("cfgtag_demo_seconds_sum"), std::string::npos);
}

TEST(RegistryTest, LabelledHistogramExposition) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram(
      "cfgtag_stage_seconds{stage=\"hwgen\"}", "",
      std::vector<double>{1.0});
  h->Observe(0.5);
  const std::string text = reg.ExpositionText();
  // The le label merges with the metric's own labels.
  EXPECT_NE(
      text.find("cfgtag_stage_seconds_bucket{stage=\"hwgen\",le=\"1\"} 1\n"),
      std::string::npos);
  EXPECT_NE(text.find("cfgtag_stage_seconds_sum{stage=\"hwgen\"}"),
            std::string::npos);
  EXPECT_NE(text.find("cfgtag_stage_seconds_count{stage=\"hwgen\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cfgtag_stage_seconds histogram\n"),
            std::string::npos);
}

TEST(RegistryTest, ExpositionEscapesLabelValues) {
  MetricsRegistry reg;
  // Label values carried inline in metric names may contain the three
  // characters the exposition format requires escaping: backslash, double
  // quote, newline.
  reg.GetCounter("cfgtag_path_total{path=\"C:\\temp\"}")->Increment();
  reg.GetGauge("cfgtag_name_gauge{name=\"say \"hi\"\"}")->Set(1);
  reg.GetCounter("cfgtag_nl_total{text=\"a\nb\"}")->Increment(2);

  const std::string text = reg.ExpositionText();
  EXPECT_NE(text.find("cfgtag_path_total{path=\"C:\\\\temp\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("cfgtag_name_gauge{name=\"say \\\"hi\\\"\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("cfgtag_nl_total{text=\"a\\nb\"} 2\n"),
            std::string::npos);
  // No raw newline survives inside any sample line's label block.
  for (size_t pos = text.find('{'); pos != std::string::npos;
       pos = text.find('{', pos + 1)) {
    const size_t close = text.find('}', pos);
    ASSERT_NE(close, std::string::npos);
    EXPECT_EQ(text.substr(pos, close - pos).find('\n'), std::string::npos);
  }
}

TEST(RegistryTest, ExpositionEscapesLabelsInHistogramSeries) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("cfgtag_h_seconds{dir=\"a\\b\"}", "",
                                  std::vector<double>{1.0});
  h->Observe(0.5);
  const std::string text = reg.ExpositionText();
  EXPECT_NE(text.find("cfgtag_h_seconds_bucket{dir=\"a\\\\b\",le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("cfgtag_h_seconds_sum{dir=\"a\\\\b\"}"),
            std::string::npos);
}

TEST(RegistryTest, ExpositionEscapesHelpText) {
  MetricsRegistry reg;
  reg.GetCounter("cfgtag_help_total", "line one\nwith a \\ backslash")
      ->Increment();
  const std::string text = reg.ExpositionText();
  EXPECT_NE(
      text.find(
          "# HELP cfgtag_help_total line one\\nwith a \\\\ backslash\n"),
      std::string::npos);
}

TEST(RegistryTest, JsonExport) {
  MetricsRegistry reg;
  reg.GetCounter("a_total")->Increment(7);
  reg.GetGauge("b")->Set(2.0);
  reg.GetHistogram("c_seconds", "", std::vector<double>{1.0})->Observe(0.5);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"a_total\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"b\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"c_seconds\": {\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(RegistryTest, EmptyRegistryExportsCleanly) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.ExpositionText(), "");
  EXPECT_NE(reg.ToJson().find("\"counters\": {}"), std::string::npos);
}

// End-to-end: compiling a grammar populates the default registry with the
// compile-stage metrics every later perf PR will diff.
TEST(InstrumentationTest, CompilePopulatesDefaultRegistry) {
  auto grammar = grammar::ParseGrammar(R"grm(
%%
greeting: "hello" | "bye";
%%
)grm");
  ASSERT_TRUE(grammar.ok()) << grammar.status();
  const uint64_t before =
      MetricsRegistry::Default().GetCounter("cfgtag_compile_total")->Value();
  auto tagger = core::CompiledTagger::Compile(std::move(grammar).value());
  ASSERT_TRUE(tagger.ok()) << tagger.status();
  EXPECT_EQ(
      MetricsRegistry::Default().GetCounter("cfgtag_compile_total")->Value(),
      before + 1);
  EXPECT_GT(
      MetricsRegistry::Default().GetGauge("cfgtag_compile_gates")->Value(),
      0.0);

  const uint64_t bytes_before =
      MetricsRegistry::Default().GetCounter("cfgtag_tag_bytes_total")->Value();
  (void)tagger->Tag("hello bye");
  EXPECT_EQ(MetricsRegistry::Default()
                .GetCounter("cfgtag_tag_bytes_total")
                ->Value(),
            bytes_before + 9);

  const std::string text = MetricsRegistry::Default().ExpositionText();
  EXPECT_NE(text.find("cfgtag_compile_stage_seconds_bucket{stage=\"hwgen\""),
            std::string::npos);
  EXPECT_NE(text.find("cfgtag_compile_seconds_count"), std::string::npos);
}

}  // namespace
}  // namespace cfgtag::obs
