// Threaded stress oracle for the whole cross-thread surface: the 4-way
// backend differential (functional / fused / lazy-DFA / starved lazy-DFA,
// all through core::CompiledTagger inside a ContextFilter) runs *through*
// nids::ScanEngine worker pools while
//
//   * a live obs::StatsServer is scraped continuously (/metrics exercises
//     the histogram CAS paths, /events the flight-recorder seqlock
//     readers, /rules the attribution table under its mutex),
//   * obs::AttributionTable::set_enabled flips mid-scan (sessions sample
//     the switch at pool-checkout Reset(), so alerts must not change),
//   * the FlightRecorder is hammered with events and snapshotted
//     concurrently (the lazy starved-cache backend also records
//     dfa_cache_flush/fallback events from inside the scan workers), and
//   * pooled sessions churn through BasicSessionPool retention.
//
// The oracle: every parallel result is byte-identical to the same
// filter's sequential Scan() computed before the storm, and all backends
// agree with the functional reference. Sizes are smoke-scaled for CI
// (TSan included); set CFGTAG_STRESS_ITERS to dig deeper locally.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/resilience/budget.h"
#include "core/resilience/deadline.h"
#include "core/resilience/fault_injector.h"
#include "grammar/grammar_parser.h"
#include "nids/context_filter.h"
#include "nids/scan_engine.h"
#include "obs/attribution.h"
#include "obs/events.h"
#include "obs/stats_server.h"

namespace cfgtag::nids {
namespace {

constexpr char kProtocol[] = R"grm(
PATH [a-zA-Z0-9/._-]+
WORD [a-zA-Z0-9/._-]+
%%
msg:  "REQ" path "HDR" hval "END";
path: PATH;
hval: WORD;
%%
)grm";

std::vector<Rule> WebRules() {
  return {
      {"TRAVERSAL", "../", "PATH", 3},
      {"PASSWD", "/etc/passwd", "PATH", 3},
      {"GLOBAL", "forbidden", "", 1},
  };
}

ContextFilter MakeFilter(tagger::TaggerBackend backend,
                         size_t dfa_cache_bytes) {
  auto g = grammar::ParseGrammar(kProtocol);
  EXPECT_TRUE(g.ok()) << g.status();
  hwgen::HwOptions opt;
  opt.tagger.arm_mode = tagger::ArmMode::kResync;
  opt.tagger.backend = backend;
  if (dfa_cache_bytes != 0) opt.tagger.dfa_cache_bytes = dfa_cache_bytes;
  auto filter = ContextFilter::Create(std::move(g).value(), WebRules(), opt);
  EXPECT_TRUE(filter.ok()) << filter.status();
  return std::move(filter).value();
}

std::string Traffic(int messages, uint64_t seed) {
  Rng rng(seed);
  std::string out;
  for (int i = 0; i < messages; ++i) {
    switch (rng.NextIndex(4)) {
      case 0:
        out += "REQ /a/../../etc/passwd HDR curl END\n";
        break;
      case 1:
        out += "REQ /index.html HDR decoy-/etc/passwd-x END\n";
        break;
      case 2:
        out += "REQ /ok HDR very-forbidden-agent END\n";
        break;
      default:
        out += "REQ /static/" + rng.NextString(8, "abcdefgh") +
               ".html HDR ua END\n";
    }
  }
  return out;
}

// Minimal blocking HTTP/1.0 GET against 127.0.0.1:port; empty on failure.
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

int StressIters() {
  const char* env = std::getenv("CFGTAG_STRESS_ITERS");
  if (env != nullptr && *env != '\0') {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 2;  // smoke scale: CI runs this under TSan too
}

TEST(ThreadedStressOracleTest, BackendsByteIdenticalUnderLiveObservation) {
  struct Backend {
    const char* name;
    ContextFilter filter;
    std::vector<std::vector<Alert>> batch_expected;
    std::vector<Alert> stream_expected;
  };
  std::vector<Backend> backends;
  backends.push_back(
      {"functional", MakeFilter(tagger::TaggerBackend::kFunctional, 0),
       {}, {}});
  backends.push_back(
      {"fused", MakeFilter(tagger::TaggerBackend::kFused, 0), {}, {}});
  backends.push_back(
      {"lazy", MakeFilter(tagger::TaggerBackend::kLazyDfa, 0), {}, {}});
  // Starvation-sized transition cache: every worker constantly flushes
  // (dfa_cache_flush flight events from inside scan threads) and
  // eventually takes the sticky fused fallback.
  backends.push_back(
      {"lazy-starved", MakeFilter(tagger::TaggerBackend::kLazyDfa, 1 << 10),
       {}, {}});

  std::vector<std::string> storage;
  for (uint64_t s = 0; s < 12; ++s) storage.push_back(Traffic(24, s));
  storage.push_back("");  // empty stream rides along
  const std::vector<std::string_view> streams(storage.begin(),
                                              storage.end());
  const std::string big_stream = Traffic(400, 777);

  // Sequential oracle, computed before the storm with attribution off.
  obs::AttributionTable::set_enabled(false);
  for (Backend& b : backends) {
    for (const std::string_view s : streams) {
      b.batch_expected.push_back(b.filter.Scan(s));
    }
    b.stream_expected = b.filter.Scan(big_stream);
  }
  ASSERT_FALSE(backends[0].stream_expected.empty());
  for (size_t i = 1; i < backends.size(); ++i) {
    EXPECT_EQ(backends[i].batch_expected, backends[0].batch_expected)
        << backends[i].name << " sequential batch diverged from functional";
    EXPECT_EQ(backends[i].stream_expected, backends[0].stream_expected)
        << backends[i].name << " sequential stream diverged from functional";
  }

  obs::StatsServer server;
  ASSERT_TRUE(server.Start(0).ok());
  const int port = server.port();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scrapes{0};
  std::atomic<uint64_t> toggles{0};

  // Continuous scrapers: every observability endpoint, round-robin.
  std::vector<std::thread> observers;
  for (int i = 0; i < 2; ++i) {
    observers.emplace_back([&, i] {
      const char* endpoints[] = {"/metrics", "/events",       "/rules",
                                 "/healthz", "/metrics.json", "/trace.json"};
      size_t k = static_cast<size_t>(i);
      while (!stop.load(std::memory_order_acquire)) {
        const std::string r = HttpGet(port, endpoints[k++ % 6]);
        if (!r.empty()) scrapes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Mid-scan togglers: attribution on/off plus flight-recorder write +
  // snapshot pressure from outside the scan workers.
  observers.emplace_back([&] {
    bool on = true;
    while (!stop.load(std::memory_order_acquire)) {
      obs::AttributionTable::set_enabled(on);
      on = !on;
      obs::RecordEvent(obs::EventKind::kCustom,
                       static_cast<int64_t>(toggles.load()), 0,
                       "stress toggle");
      (void)obs::FlightRecorder::Default().Snapshot();
      toggles.fetch_add(1, std::memory_order_relaxed);
    }
  });

  const int iters = StressIters();
  for (Backend& b : backends) {
    ScanEngineOptions opt;
    opt.num_threads = 4;
    opt.min_shard_bytes = 1024;  // force real sharding on the big stream
    const ScanEngine engine(&b.filter, opt);
    for (int it = 0; it < iters; ++it) {
      const auto results = engine.ScanBatch(streams);
      ASSERT_EQ(results.size(), streams.size()) << b.name;
      for (size_t i = 0; i < results.size(); ++i) {
        ASSERT_EQ(results[i].alerts, b.batch_expected[i])
            << b.name << " iter " << it << " stream " << i;
      }
      const StreamResult sharded = engine.ScanStream(big_stream);
      ASSERT_EQ(sharded.alerts, b.stream_expected)
          << b.name << " iter " << it << " sharded stream";
      ASSERT_EQ(sharded.stats.bytes, big_stream.size()) << b.name;
    }
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& t : observers) t.join();
  server.Stop();
  obs::AttributionTable::set_enabled(false);

  // The storm actually observed something while scans ran.
  EXPECT_GT(scrapes.load(), 0u);
  EXPECT_GT(toggles.load(), 0u);
  // And the observability surfaces are still coherent afterwards.
  const std::vector<obs::Event> events =
      obs::FlightRecorder::Default().Snapshot();
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
}

// Chaos leg: the same differential oracle with the fault injector armed at
// random scan-path sites. Faults that degrade (dfa.intern sheds the DFA
// cache, stalls slow workers, budget pressure trims pools) must leave the
// alert streams byte-identical; faults that trip a finite deadline must
// surface as a typed status with sane partial results — and nothing may
// crash, hang, or tear a result vector either way.
TEST(ThreadedStressOracleTest, ChaosFaultsPreserveOrFailCleanly) {
  namespace res = core::resilience;
  auto& injector = res::FaultInjector::Instance();
  injector.DisarmAll();
  res::ResourceBudget::Process().ResetForTest();

  ContextFilter functional = MakeFilter(tagger::TaggerBackend::kFunctional, 0);
  ContextFilter lazy = MakeFilter(tagger::TaggerBackend::kLazyDfa, 0);

  std::vector<std::string> storage;
  for (uint64_t s = 0; s < 8; ++s) storage.push_back(Traffic(24, s + 100));
  const std::vector<std::string_view> streams(storage.begin(),
                                              storage.end());
  const std::string big_stream = Traffic(300, 778);

  obs::AttributionTable::set_enabled(false);
  std::vector<std::vector<Alert>> batch_expected;
  for (const std::string_view s : streams) {
    batch_expected.push_back(functional.Scan(s));
  }
  const std::vector<Alert> stream_expected = functional.Scan(big_stream);
  ASSERT_FALSE(stream_expected.empty());

  // Sites that can fire inside a scan, with kinds that only degrade.
  struct Chaos {
    const char* spec;
    bool can_trip_deadline;  // may turn a finite deadline into a trip
  };
  const Chaos kChaos[] = {
      {"dfa.intern:2", false},
      {"scan.chunk:5:1", false},
      {"engine.shard:2:2", false},
      {"dfa.intern:3,scan.chunk:7:1", false},
      {"deadline.clock:3:60000", true},
      {"scan.chunk:2:1,deadline.clock:2:60000", true},
  };

  ScanEngineOptions opt;
  opt.num_threads = 4;
  opt.min_shard_bytes = 1024;
  opt.stuck_shard_seconds = 0;  // stalls here are chaos, not bugs
  const ScanEngine func_engine(&functional, opt);
  const ScanEngine lazy_engine(&lazy, opt);

  Rng rng(42);
  const int iters = StressIters();
  for (int it = 0; it < iters; ++it) {
    for (const Chaos& chaos : kChaos) {
      ASSERT_TRUE(injector.ArmFromSpec(chaos.spec).ok()) << chaos.spec;
      // Random budget pressure rides along on some rounds: the ladder may
      // shed DFA caches and trim pools mid-scan without changing alerts.
      const bool pressured = rng.NextIndex(2) == 0;
      if (pressured) {
        res::ResourceBudget::Process().SetLimit(100);
        res::ResourceBudget::Process().Charge(95, "chaos");
      }
      for (const ScanEngine* engine : {&func_engine, &lazy_engine}) {
        res::ScanControl control;
        control.check_interval_bytes = 2048;
        if (chaos.can_trip_deadline) {
          control.deadline = res::Deadline::AfterMillis(60000);
        }
        std::vector<StreamResult> results;
        const Status batch = engine->ScanBatch(streams, control, &results);
        ASSERT_EQ(results.size(), streams.size()) << chaos.spec;
        if (batch.ok()) {
          for (size_t i = 0; i < results.size(); ++i) {
            ASSERT_EQ(results[i].alerts, batch_expected[i])
                << chaos.spec << " iter " << it << " stream " << i;
          }
        } else {
          ASSERT_TRUE(batch.code() == StatusCode::kDeadlineExceeded ||
                      batch.code() == StatusCode::kCancelled)
              << chaos.spec << ": " << batch;
          for (size_t i = 0; i < results.size(); ++i) {
            for (const Alert& a : results[i].alerts) {
              ASSERT_LT(a.end, streams[i].size()) << chaos.spec;
            }
          }
        }
        StreamResult sharded;
        const Status stream_status =
            engine->ScanStream(big_stream, control, &sharded);
        if (stream_status.ok()) {
          ASSERT_EQ(sharded.alerts, stream_expected)
              << chaos.spec << " iter " << it;
        } else {
          ASSERT_TRUE(stream_status.code() ==
                          StatusCode::kDeadlineExceeded ||
                      stream_status.code() == StatusCode::kCancelled)
              << chaos.spec << ": " << stream_status;
          for (const Alert& a : sharded.alerts) {
            ASSERT_LT(a.end, big_stream.size()) << chaos.spec;
          }
        }
      }
      if (pressured) res::ResourceBudget::Process().ResetForTest();
      injector.DisarmAll();
    }
  }

  // Chaos over: the disarmed engines reproduce the oracle exactly.
  EXPECT_GT(injector.injected(), 0u);
  const std::vector<StreamResult> calm = lazy_engine.ScanBatch(streams);
  for (size_t i = 0; i < calm.size(); ++i) {
    EXPECT_EQ(calm[i].alerts, batch_expected[i]) << "post-chaos stream " << i;
  }
  EXPECT_EQ(lazy_engine.ScanStream(big_stream).alerts, stream_expected);
}

}  // namespace
}  // namespace cfgtag::nids
