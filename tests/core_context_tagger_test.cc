#include <gtest/gtest.h>

#include <set>

#include "core/context_tagger.h"
#include "grammar/grammar_parser.h"
#include "xmlrpc/xmlrpc_grammar.h"

namespace cfgtag::core {
namespace {

grammar::Grammar MustParse(const std::string& text) {
  auto g = grammar::ParseGrammar(text);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

// The paper's §3.2 scenario: one pattern, several grammatical roles.
constexpr char kTime[] = R"(
NUM [0-9][0-9]
%%
time: NUM ":" NUM ":" NUM;
%%
)";

TEST(ContextualTaggerTest, DistinguishesOccurrences) {
  auto tagger = ContextualTagger::Compile(MustParse(kTime));
  ASSERT_TRUE(tagger.ok()) << tagger.status();

  auto tags = tagger->Tag("12:34:56");
  ASSERT_EQ(tags.size(), 5u);
  // Three NUM occurrences report distinct positions 0 / 2 / 4 of the same
  // production — hour vs minute vs second.
  std::set<int32_t> num_positions;
  const int32_t num_base = tagger->original_grammar().FindToken("NUM");
  for (const ContextTag& t : tags) {
    if (t.base_token == num_base) num_positions.insert(t.position);
  }
  EXPECT_EQ(num_positions, (std::set<int32_t>{0, 2, 4}));
}

TEST(ContextualTaggerTest, DescribeContextIsReadable) {
  auto tagger = ContextualTagger::Compile(MustParse(kTime));
  ASSERT_TRUE(tagger.ok());
  auto tags = tagger->Tag("12:34:56");
  ASSERT_FALSE(tags.empty());
  const std::string desc = tagger->DescribeContext(tags[0]);
  EXPECT_NE(desc.find("NUM"), std::string::npos);
  EXPECT_NE(desc.find("time"), std::string::npos);
  EXPECT_NE(desc.find("position 0"), std::string::npos);
}

TEST(ContextualTaggerTest, SingleSiteTokensKeepPositionMinusOne) {
  auto tagger = ContextualTagger::Compile(
      MustParse("W [a-z]+\n%%\ns: \"<\" W \">\";\n%%\n"));
  ASSERT_TRUE(tagger.ok());
  for (const ContextTag& t : tagger->Tag("<abc>")) {
    EXPECT_EQ(t.position, -1) << "single-site token was split";
    EXPECT_GE(t.base_token, 0);
  }
}

TEST(ContextualTaggerTest, CycleAccurateAgrees) {
  auto tagger = ContextualTagger::Compile(MustParse(kTime));
  ASSERT_TRUE(tagger.ok());
  const std::string input = "12:34:56";
  auto hw = tagger->TagCycleAccurate(input);
  ASSERT_TRUE(hw.ok()) << hw.status();
  auto sw = tagger->Tag(input);
  ASSERT_EQ(hw->size(), sw.size());
  for (size_t i = 0; i < sw.size(); ++i) {
    EXPECT_TRUE((*hw)[i].tag == sw[i].tag);
    EXPECT_EQ((*hw)[i].position, sw[i].position);
  }
}

TEST(ContextualTaggerTest, XmlRpcDateTimeRoles) {
  // In the full XML-RPC grammar the ':' literal of dateTime appears at two
  // sites; context expansion splits it so MIN and SEC separators differ.
  auto g = xmlrpc::XmlRpcGrammar();
  ASSERT_TRUE(g.ok());
  auto tagger = ContextualTagger::Compile(*g);
  ASSERT_TRUE(tagger.ok()) << tagger.status();

  const std::string msg =
      "<methodCall><methodName>buy</methodName><params><param>"
      "<dateTime.iso8601>19980717T14:08:55</dateTime.iso8601>"
      "</param></params></methodCall>";
  auto tags = tagger->Tag(msg);
  const int32_t colon_base = [&] {
    return tagger->original_grammar().FindToken("\":\"");
  }();
  ASSERT_GE(colon_base, 0);
  std::set<int32_t> colon_positions;
  for (const ContextTag& t : tags) {
    if (t.base_token == colon_base) colon_positions.insert(t.position);
  }
  // Two ':' occurrences at two distinct RHS positions of dateTime.
  EXPECT_EQ(colon_positions.size(), 2u);
}

TEST(ContextualTaggerTest, ExactlyOneTagPerOccurrenceOnTime) {
  // Without expansion, the shared ':' token arms both MIN and SEC
  // contexts simultaneously (a duplicate-tag source the superset bench
  // quantifies); with expansion every occurrence tags exactly once.
  auto plain = CompiledTagger::Compile(MustParse(kTime));
  ASSERT_TRUE(plain.ok());
  auto contextual = ContextualTagger::Compile(MustParse(kTime));
  ASSERT_TRUE(contextual.ok());
  EXPECT_GT(plain->Tag("12:34:56").size(),
            contextual->Tag("12:34:56").size() - 1)
      << "sanity";
  EXPECT_EQ(contextual->Tag("12:34:56").size(), 5u);
  // The unexpanded grammar double-tags the NUM after the first ':' (both
  // NUM sites share one token and both MIN/SEC arms fire).
  EXPECT_GE(plain->Tag("12:34:56").size(), 5u);
}

}  // namespace
}  // namespace cfgtag::core
