#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/attribution.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/stats_server.h"

namespace cfgtag::obs {
namespace {

// Minimal blocking HTTP/1.0 GET against 127.0.0.1:port. Returns the full
// response (status line + headers + body), empty string on connect failure.
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

class StatsServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(server_.Start(/*port=*/0).ok());
    ASSERT_GT(server_.port(), 0);
  }
  void TearDown() override { server_.Stop(); }

  StatsServer server_;
};

TEST_F(StatsServerTest, HealthzIsOk) {
  const std::string response = HttpGet(server_.port(), "/healthz");
  EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(response.find("ok"), std::string::npos);
}

TEST_F(StatsServerTest, MetricsServesPrometheusText) {
  MetricsRegistry::Default()
      .GetCounter("cfgtag_stats_server_test_total", "A test counter")
      ->Increment();
  const std::string response = HttpGet(server_.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("cfgtag_stats_server_test_total"),
            std::string::npos);
  EXPECT_NE(response.find("# TYPE"), std::string::npos);
}

TEST_F(StatsServerTest, MetricsJsonServesRegistryDump) {
  const std::string response = HttpGet(server_.port(), "/metrics.json");
  EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
}

TEST_F(StatsServerTest, TraceJsonServesChromeTrace) {
  const std::string response = HttpGet(server_.port(), "/trace.json");
  EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(response.find("traceEvents"), std::string::npos);
}

TEST_F(StatsServerTest, EventsServesFlightRecorder) {
  RecordEvent(EventKind::kCustom, 1, 2, "stats-server-test-event");
  const std::string response = HttpGet(server_.port(), "/events");
  EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(response.find("\"recorded\""), std::string::npos);
  EXPECT_NE(response.find("stats-server-test-event"), std::string::npos);
}

TEST_F(StatsServerTest, RulesServesAttributionRanking) {
  AttributionTable::Default().AddToken("STATS_TEST_TOKEN", 5, 9);
  const std::string response = HttpGet(server_.port(), "/rules");
  EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(response.find("STATS_TEST_TOKEN"), std::string::npos);
  EXPECT_NE(response.find("\"enabled\""), std::string::npos);
}

TEST_F(StatsServerTest, UnknownPathIs404) {
  const std::string response = HttpGet(server_.port(), "/nope");
  EXPECT_NE(response.find("HTTP/1.0 404"), std::string::npos);
}

TEST_F(StatsServerTest, CountsRequestsServed) {
  const uint64_t before = server_.requests_served();
  HttpGet(server_.port(), "/healthz");
  HttpGet(server_.port(), "/healthz");
  EXPECT_EQ(server_.requests_served(), before + 2);
}

TEST(StatsServerLifecycleTest, StopUnbindsThePort) {
  StatsServer server;
  ASSERT_TRUE(server.Start(0).ok());
  const int port = server.port();
  ASSERT_FALSE(HttpGet(port, "/healthz").empty());
  server.Stop();
  EXPECT_FALSE(server.running());
  // A second server can bind the same port right away (SO_REUSEADDR plus a
  // genuinely closed listener).
  StatsServer second;
  EXPECT_TRUE(second.Start(port).ok());
  EXPECT_NE(HttpGet(port, "/healthz").find("200"), std::string::npos);
  second.Stop();
}

TEST(StatsServerLifecycleTest, RejectsOutOfRangePorts) {
  StatsServer server;
  EXPECT_FALSE(server.Start(-1).ok());
  EXPECT_FALSE(server.Start(65536).ok());
}

TEST(StatsServerLifecycleTest, StopBeforeStartIsANoOp) {
  StatsServer server;
  server.Stop();  // nothing to join, nothing to close
  server.Stop();
  EXPECT_FALSE(server.running());
  // And the object is still startable afterwards.
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_NE(HttpGet(server.port(), "/healthz").find("200"),
            std::string::npos);
  server.Stop();
}

TEST(StatsServerLifecycleTest, StartStopStartCyclesOnOneObject) {
  StatsServer server;
  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_TRUE(server.Start(0).ok()) << "cycle " << cycle;
    EXPECT_TRUE(server.running());
    EXPECT_NE(HttpGet(server.port(), "/healthz").find("200"),
              std::string::npos)
        << "cycle " << cycle;
    server.Stop();
    EXPECT_FALSE(server.running());
  }
}

// Regression for the double-join: two threads calling Stop() on a running
// server used to race into thread_.join() (std::terminate) or close the
// listen fd twice (EBADF for whoever re-opened the descriptor number in
// between). The lifecycle mutex makes every combination below a single
// join/close path.
TEST(StatsServerLifecycleTest, ConcurrentStopsJoinExactlyOnce) {
  StatsServer server;
  ASSERT_TRUE(server.Start(0).ok());
  const int port = server.port();
  ASSERT_FALSE(HttpGet(port, "/healthz").empty());

  constexpr int kStoppers = 4;
  std::vector<std::thread> stoppers;
  for (int i = 0; i < kStoppers; ++i) {
    stoppers.emplace_back([&server] { server.Stop(); });
  }
  for (std::thread& t : stoppers) t.join();
  EXPECT_FALSE(server.running());

  // The port is genuinely released and the object restartable: the
  // strongest observable proof that exactly one close happened.
  StatsServer second;
  ASSERT_TRUE(second.Start(port).ok());
  EXPECT_NE(HttpGet(port, "/healthz").find("200"), std::string::npos);
  second.Stop();
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_NE(HttpGet(server.port(), "/healthz").find("200"),
            std::string::npos);
  server.Stop();
}

// Stop() racing Start()-ed traffic: scrapers in flight while another
// thread tears the server down must either get a full response or a
// cleanly dropped connection — never a hang or a crash.
TEST(StatsServerLifecycleTest, StopWhileScrapersAreInFlight) {
  StatsServer server;
  ASSERT_TRUE(server.Start(0).ok());
  const int port = server.port();

  std::atomic<bool> stop_scraping{false};
  std::vector<std::thread> scrapers;
  for (int i = 0; i < 2; ++i) {
    scrapers.emplace_back([&] {
      while (!stop_scraping.load(std::memory_order_acquire)) {
        (void)HttpGet(port, "/metrics");
      }
    });
  }
  // Let a few scrapes land, then pull the rug.
  while (server.requests_served() < 3) {
    std::this_thread::yield();
  }
  server.Stop();
  stop_scraping.store(true, std::memory_order_release);
  for (std::thread& t : scrapers) t.join();
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace cfgtag::obs
