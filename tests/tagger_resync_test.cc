// Tests for ArmMode::kResync — the §5.2 error-recovery future work: start
// tokens re-arm at every post-delimiter byte, so the tagger recovers after
// garbage and handles streams of back-to-back messages without framing.

#include <gtest/gtest.h>

#include "core/token_tagger.h"
#include "grammar/grammar_parser.h"
#include "tagger/functional_model.h"
#include "xmlrpc/message_gen.h"
#include "xmlrpc/xmlrpc_grammar.h"

namespace cfgtag::tagger {
namespace {

grammar::Grammar MustParse(const std::string& text) {
  auto g = grammar::ParseGrammar(text);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

constexpr char kPair[] = "%%\ns: \"ab\" \"cd\";\n%%\n";

TaggerOptions Resync() {
  TaggerOptions opt;
  opt.arm_mode = ArmMode::kResync;
  return opt;
}

TEST(ResyncTest, RecoversAfterGarbage) {
  grammar::Grammar g = MustParse(kPair);
  auto t = FunctionalTagger::Create(&g, Resync());
  ASSERT_TRUE(t.ok());
  // Anchored mode loses the stream after 'x'; resync re-arms "ab" at the
  // next token boundary.
  auto tags = t->TagAll("ab xx ab cd");
  ASSERT_EQ(tags.size(), 3u);
  EXPECT_EQ(tags[0].end, 1u);
  EXPECT_EQ(tags[1].end, 7u);
  EXPECT_EQ(tags[2].end, 10u);
}

TEST(ResyncTest, DoesNotArmMidToken) {
  grammar::Grammar g = MustParse(kPair);
  auto t = FunctionalTagger::Create(&g, Resync());
  ASSERT_TRUE(t.ok());
  // "xab" has no boundary before 'a', so "ab" must NOT match inside it —
  // unlike scan mode, which arms at every byte.
  EXPECT_TRUE(t->TagAll("xab").empty());
  grammar::Grammar g2 = MustParse(kPair);
  TaggerOptions scan;
  scan.arm_mode = ArmMode::kScan;
  auto t_scan = FunctionalTagger::Create(&g2, scan);
  ASSERT_TRUE(t_scan.ok());
  EXPECT_EQ(t_scan->TagAll("xab").size(), 1u);
}

TEST(ResyncTest, BackToBackSentences) {
  grammar::Grammar g = MustParse(kPair);
  auto t = FunctionalTagger::Create(&g, Resync());
  ASSERT_TRUE(t.ok());
  // Two complete sentences separated by a newline: both fully tagged.
  auto tags = t->TagAll("ab cd\nab cd");
  EXPECT_EQ(tags.size(), 4u);
}

TEST(ResyncTest, LegacyAnchoredFlagStillWorks) {
  TaggerOptions opt;
  EXPECT_EQ(opt.EffectiveArmMode(), ArmMode::kAnchored);
  opt.anchored = false;
  EXPECT_EQ(opt.EffectiveArmMode(), ArmMode::kScan);
  opt.arm_mode = ArmMode::kResync;
  EXPECT_EQ(opt.EffectiveArmMode(), ArmMode::kResync);
}

class ResyncLaneTest : public ::testing::TestWithParam<int> {};

TEST_P(ResyncLaneTest, NetlistMatchesFunctionalModel) {
  hwgen::HwOptions opt;
  opt.tagger.arm_mode = ArmMode::kResync;
  opt.bytes_per_cycle = GetParam();
  auto compiled = core::CompiledTagger::Compile(MustParse(kPair), opt);
  ASSERT_TRUE(compiled.ok()) << compiled.status();

  for (const std::string& input :
       {std::string("ab xx ab cd"), std::string("ab cd ab cd"),
        std::string("xab"), std::string("  ab  cd"),
        std::string("junk ab cd junk")}) {
    auto hw = compiled->TagCycleAccurate(input);
    ASSERT_TRUE(hw.ok()) << hw.status();
    EXPECT_EQ(compiled->Tag(input), *hw)
        << "lanes=" << GetParam() << " input='" << input << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(Lanes, ResyncLaneTest, ::testing::Values(1, 2, 4));

TEST(ResyncTest, TagsXmlRpcMessageStream) {
  auto g = xmlrpc::XmlRpcGrammar();
  ASSERT_TRUE(g.ok());
  hwgen::HwOptions opt;
  opt.tagger.arm_mode = ArmMode::kResync;
  auto compiled = core::CompiledTagger::Compile(std::move(g).value(), opt);
  ASSERT_TRUE(compiled.ok()) << compiled.status();

  // Three newline-separated messages: the anchored tagger would only tag
  // the first; resync tags the "<methodCall>" opener of each.
  xmlrpc::MessageGenerator gen({}, 3);
  const std::string stream = gen.GenerateStream(3);
  const int32_t open_call =
      compiled->grammar().FindToken("\"<methodCall>\"");
  ASSERT_GE(open_call, 0);
  int openers = 0;
  for (const auto& t : compiled->Tag(stream)) openers += t.token == open_call;
  EXPECT_GE(openers, 3);

  auto g2 = xmlrpc::XmlRpcGrammar();
  auto anchored = core::CompiledTagger::Compile(std::move(g2).value(), {});
  ASSERT_TRUE(anchored.ok());
  int anchored_openers = 0;
  for (const auto& t : anchored->Tag(stream)) {
    anchored_openers += t.token == open_call;
  }
  EXPECT_EQ(anchored_openers, 1);
}

TEST(ResyncTest, NetlistMatchesOnXmlRpcStream) {
  auto g = xmlrpc::XmlRpcGrammar();
  ASSERT_TRUE(g.ok());
  hwgen::HwOptions opt;
  opt.tagger.arm_mode = ArmMode::kResync;
  auto compiled = core::CompiledTagger::Compile(std::move(g).value(), opt);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  xmlrpc::MessageGenerator gen({}, 9);
  const std::string stream = gen.GenerateStream(2);
  auto hw = compiled->TagCycleAccurate(stream);
  ASSERT_TRUE(hw.ok()) << hw.status();
  EXPECT_EQ(compiled->Tag(stream), *hw);
}

}  // namespace
}  // namespace cfgtag::tagger
