#include <gtest/gtest.h>

#include <sstream>

#include "rtl/netlist.h"
#include "rtl/simulator.h"
#include "rtl/vcd_writer.h"
#include "rtl/vhdl_emitter.h"

namespace cfgtag::rtl {
namespace {

Netlist SmallDesign() {
  Netlist nl;
  NodeId a = nl.AddInput("a");
  NodeId b = nl.AddInput("b");
  NodeId g = nl.And2(a, nl.Not(b));
  NodeId r = nl.Reg(g, /*enable=*/b, /*init=*/true, "state");
  nl.MarkOutput(r, "out");
  return nl;
}

TEST(VhdlEmitterTest, EmitsEntityAndArchitecture) {
  Netlist nl = SmallDesign();
  auto vhdl = VhdlEmitter::Emit(nl, "tagger");
  ASSERT_TRUE(vhdl.ok()) << vhdl.status();
  EXPECT_NE(vhdl->find("entity tagger is"), std::string::npos);
  EXPECT_NE(vhdl->find("architecture rtl of tagger"), std::string::npos);
  EXPECT_NE(vhdl->find("use ieee.std_logic_1164.all;"), std::string::npos);
}

TEST(VhdlEmitterTest, PortsIncludeClockResetAndIo) {
  Netlist nl = SmallDesign();
  auto vhdl = VhdlEmitter::Emit(nl, "t");
  ASSERT_TRUE(vhdl.ok());
  EXPECT_NE(vhdl->find("clk : in std_logic"), std::string::npos);
  EXPECT_NE(vhdl->find("rst : in std_logic"), std::string::npos);
  EXPECT_NE(vhdl->find("port_out : out std_logic"), std::string::npos);
}

TEST(VhdlEmitterTest, RegisterProcessHasResetAndEnable) {
  Netlist nl = SmallDesign();
  auto vhdl = VhdlEmitter::Emit(nl, "t");
  ASSERT_TRUE(vhdl.ok());
  EXPECT_NE(vhdl->find("rising_edge(clk)"), std::string::npos);
  // init=true register resets to '1'.
  EXPECT_NE(vhdl->find("<= '1';"), std::string::npos);
  // Clock enable renders as a guarded assignment.
  EXPECT_NE(vhdl->find("= '1' then"), std::string::npos);
}

TEST(VhdlEmitterTest, GateOperatorsEmitted) {
  Netlist nl;
  NodeId a = nl.AddInput("a");
  NodeId b = nl.AddInput("b");
  nl.MarkOutput(nl.And2(a, b), "o1");
  nl.MarkOutput(nl.Or2(a, b), "o2");
  nl.MarkOutput(nl.Xor(a, b), "o3");
  nl.MarkOutput(nl.Not(a), "o4");
  auto vhdl = VhdlEmitter::Emit(nl, "gates");
  ASSERT_TRUE(vhdl.ok());
  EXPECT_NE(vhdl->find(" and "), std::string::npos);
  EXPECT_NE(vhdl->find(" or "), std::string::npos);
  EXPECT_NE(vhdl->find(" xor "), std::string::npos);
  EXPECT_NE(vhdl->find(" not "), std::string::npos);
}

TEST(VhdlEmitterTest, RejectsBadEntityName) {
  Netlist nl = SmallDesign();
  EXPECT_FALSE(VhdlEmitter::Emit(nl, "9bad").ok());
  EXPECT_FALSE(VhdlEmitter::Emit(nl, "has space").ok());
  EXPECT_FALSE(VhdlEmitter::Emit(nl, "").ok());
}

TEST(VhdlEmitterTest, DeterministicOutput) {
  Netlist nl = SmallDesign();
  auto a = VhdlEmitter::Emit(nl, "t");
  auto b = VhdlEmitter::Emit(nl, "t");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(VcdWriterTest, EmitsHeaderAndChanges) {
  Netlist nl;
  NodeId in = nl.AddInput("in");
  NodeId r = nl.Reg(in, kInvalidNode, false, "r");
  nl.MarkOutput(r, "o");
  auto sim = Simulator::Create(&nl);
  ASSERT_TRUE(sim.ok());

  std::ostringstream os;
  VcdWriter vcd(&os, &nl);
  vcd.AddSignal(in, "in");
  vcd.AddSignal(r, "r");
  vcd.WriteHeader();

  sim->SetInput(in, true);
  sim->Step();
  vcd.Sample(*sim);
  sim->SetInput(in, false);
  sim->Step();
  vcd.Sample(*sim);
  sim->Step();
  vcd.Sample(*sim);

  const std::string out = os.str();
  EXPECT_NE(out.find("$timescale"), std::string::npos);
  EXPECT_NE(out.find("$var wire 1 ! in $end"), std::string::npos);
  EXPECT_NE(out.find("#0"), std::string::npos);
  // Value changes present for both signals.
  EXPECT_NE(out.find("1!"), std::string::npos);
  EXPECT_NE(out.find("0!"), std::string::npos);
}

TEST(VcdWriterTest, OnlyChangesAreEmitted) {
  Netlist nl;
  NodeId in = nl.AddInput("in");
  nl.MarkOutput(in, "o");
  auto sim = Simulator::Create(&nl);
  ASSERT_TRUE(sim.ok());

  std::ostringstream os;
  VcdWriter vcd(&os, &nl);
  vcd.AddSignal(in, "in");
  vcd.WriteHeader();
  sim->SetInput(in, false);
  for (int i = 0; i < 5; ++i) {
    sim->Step();
    vcd.Sample(*sim);
  }
  // One initial 0, no further change lines.
  const std::string out = os.str();
  EXPECT_EQ(out.find("#1"), std::string::npos);
}

}  // namespace
}  // namespace cfgtag::rtl

#include "core/token_tagger.h"
#include "grammar/grammar_parser.h"
#include "rtl/vhdl_testbench.h"

namespace cfgtag::rtl {
namespace {

TEST(VhdlTestbenchTest, EmitsSelfCheckingBench) {
  auto g = grammar::ParseGrammar("%%\ns: \"ab\" \"cd\";\n%%\n");
  ASSERT_TRUE(g.ok());
  auto compiled = core::CompiledTagger::Compile(std::move(g).value());
  ASSERT_TRUE(compiled.ok());
  auto tb = compiled->ExportVhdlTestbench("tagger", "ab cd");
  ASSERT_TRUE(tb.ok()) << tb.status();
  // Instantiates the DUT, clocks it, and asserts both match ports high at
  // some cycle.
  EXPECT_NE(tb->find("entity tb_tagger is"), std::string::npos);
  EXPECT_NE(tb->find("dut : entity work.tagger"), std::string::npos);
  EXPECT_NE(tb->find("assert port_match_t0 = '1'"), std::string::npos);
  EXPECT_NE(tb->find("assert port_match_t1 = '1'"), std::string::npos);
  EXPECT_NE(tb->find("assert port_match_t0 = '0'"), std::string::npos)
      << "pipeline-fill negative checks";
  EXPECT_NE(tb->find("report \"testbench finished\""), std::string::npos);
}

TEST(VhdlTestbenchTest, ChecksAgainstUnknownPortRejected) {
  Netlist nl;
  NodeId a = nl.AddInput("d0");
  nl.MarkOutput(nl.Reg(a), "o");
  TestbenchStimulus stim;
  stim.lanes = 1;
  stim.bytes = {{'x'}};
  EXPECT_FALSE(
      EmitVhdlTestbench(nl, "t", stim, {{0, "nosuch", true}}).ok());
}

TEST(VhdlTestbenchTest, LaneMismatchRejected) {
  Netlist nl;
  nl.MarkOutput(nl.Reg(nl.AddInput("d0")), "o");
  TestbenchStimulus stim;
  stim.lanes = 2;
  stim.bytes = {{'x'}};  // one byte for two lanes
  EXPECT_FALSE(EmitVhdlTestbench(nl, "t", stim, {}).ok());
}

}  // namespace
}  // namespace cfgtag::rtl
