#include <gtest/gtest.h>

#include "core/token_tagger.h"
#include "rtl/netlist.h"
#include "rtl/optimize.h"
#include "rtl/simulator.h"
#include "rtl/techmap.h"
#include "xmlrpc/xmlrpc_grammar.h"

namespace cfgtag::rtl {
namespace {

TEST(OptimizeTest, MergesIdenticalGates) {
  Netlist nl;
  NodeId a = nl.AddInput("a");
  NodeId b = nl.AddInput("b");
  // Two structurally identical ANDs and their mirror image.
  nl.MarkOutput(nl.And2(a, b), "o1");
  nl.MarkOutput(nl.And2(a, b), "o2");
  nl.MarkOutput(nl.And2(b, a), "o3");  // commutative: same gate

  OptimizeStats stats;
  auto opt = Optimize(nl, &stats);
  ASSERT_TRUE(opt.ok()) << opt.status();
  EXPECT_EQ(stats.gates_before, 3u);
  EXPECT_EQ(stats.gates_after, 1u);
  EXPECT_EQ(stats.cse_hits, 2u);
  EXPECT_TRUE(CheckEquivalent(nl, *opt, 8, 4, 1).ok());
}

TEST(OptimizeTest, RemovesDeadLogic) {
  Netlist nl;
  NodeId a = nl.AddInput("a");
  NodeId b = nl.AddInput("b");
  nl.Reg(nl.And2(a, b));          // dead register + gate
  nl.Or2(a, b);                   // dead gate
  nl.MarkOutput(nl.Not(a), "o");  // the only live logic

  OptimizeStats stats;
  auto opt = Optimize(nl, &stats);
  ASSERT_TRUE(opt.ok()) << opt.status();
  EXPECT_EQ(stats.gates_after, 1u);
  EXPECT_EQ(stats.regs_after, 0u);
}

TEST(OptimizeTest, SweepsBuffersAndDoubleNegation) {
  Netlist nl;
  NodeId a = nl.AddInput("a");
  nl.MarkOutput(nl.Buf(nl.Buf(a, "x"), "y"), "o1");
  nl.MarkOutput(nl.Not(nl.Not(a)), "o2");
  auto opt = Optimize(nl, nullptr);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(opt->ComputeStats().num_gates, 0u);
  EXPECT_TRUE(CheckEquivalent(nl, *opt, 4, 2, 2).ok());
}

TEST(OptimizeTest, DropsDuplicateAndInputs) {
  Netlist nl;
  NodeId a = nl.AddInput("a");
  NodeId b = nl.AddInput("b");
  nl.MarkOutput(nl.And({a, b, a, b, a}), "o");
  auto opt = Optimize(nl, nullptr);
  ASSERT_TRUE(opt.ok());
  // a & b & a & b & a  ==  a & b: a single 2-input gate.
  ASSERT_EQ(opt->ComputeStats().num_and, 1u);
  EXPECT_TRUE(CheckEquivalent(nl, *opt, 4, 2, 3).ok());
}

TEST(OptimizeTest, PreservesRegisterSemantics) {
  Netlist nl;
  NodeId d = nl.AddInput("d");
  NodeId en = nl.AddInput("en");
  NodeId r = nl.Reg(d, en, /*init=*/true, "r");
  nl.MarkOutput(r, "o");
  auto opt = Optimize(nl, nullptr);
  ASSERT_TRUE(opt.ok());
  EXPECT_TRUE(CheckEquivalent(nl, *opt, 16, 8, 4).ok());
}

TEST(OptimizeTest, PreservesFeedbackLoops) {
  Netlist nl;
  NodeId r = nl.RegPlaceholder(kInvalidNode, false, "toggle");
  nl.SetRegD(r, nl.Not(r));
  nl.MarkOutput(r, "o");
  auto opt = Optimize(nl, nullptr);
  ASSERT_TRUE(opt.ok()) << opt.status();
  EXPECT_TRUE(CheckEquivalent(nl, *opt, 2, 10, 5).ok());
}

TEST(OptimizeTest, DoesNotMergeRegisters) {
  // Two registers with identical D: fan-out replicas must survive.
  Netlist nl;
  NodeId a = nl.AddInput("a");
  NodeId r1 = nl.Reg(a, kInvalidNode, false, "r1");
  NodeId r2 = nl.Reg(a, kInvalidNode, false, "r2");
  nl.MarkOutput(r1, "o1");
  nl.MarkOutput(r2, "o2");
  auto opt = Optimize(nl, nullptr);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(opt->ComputeStats().num_regs, 2u);
}

TEST(OptimizeTest, GeneratedTaggerShrinksAndStaysEquivalent) {
  auto g = xmlrpc::XmlRpcGrammar();
  ASSERT_TRUE(g.ok());
  auto compiled = core::CompiledTagger::Compile(std::move(g).value());
  ASSERT_TRUE(compiled.ok());

  OptimizeStats stats;
  auto opt = Optimize(compiled->hardware().netlist, &stats);
  ASSERT_TRUE(opt.ok()) << opt.status();
  EXPECT_LT(stats.gates_after, stats.gates_before);
  EXPECT_GT(stats.cse_hits, 0u);

  // Random-vector equivalence over all match/index outputs.
  EXPECT_TRUE(CheckEquivalent(compiled->hardware().netlist, *opt,
                              /*vectors=*/3, /*cycles=*/48, /*seed=*/7)
                  .ok());

  // Mapping still works and is never larger.
  TechMapper mapper(4);
  auto m_raw = mapper.Map(compiled->hardware().netlist);
  auto m_opt = mapper.Map(*opt);
  ASSERT_TRUE(m_raw.ok());
  ASSERT_TRUE(m_opt.ok());
  EXPECT_LE(m_opt->NumLuts(), m_raw->NumLuts());
}

TEST(CheckEquivalentTest, DetectsRealDifferences) {
  Netlist a;
  NodeId ia = a.AddInput("x");
  a.MarkOutput(a.Not(ia), "o");
  Netlist b;
  NodeId ib = b.AddInput("x");
  b.MarkOutput(ib, "o");  // different function
  EXPECT_FALSE(CheckEquivalent(a, b, 4, 4, 9).ok());
}

TEST(CheckEquivalentTest, RejectsMismatchedPorts) {
  Netlist a;
  a.MarkOutput(a.AddInput("x"), "o");
  Netlist b;
  b.MarkOutput(b.AddInput("y"), "o");
  EXPECT_FALSE(CheckEquivalent(a, b, 1, 1, 0).ok());
}

}  // namespace
}  // namespace cfgtag::rtl
