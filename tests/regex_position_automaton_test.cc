#include <gtest/gtest.h>

#include <functional>

#include "common/rng.h"
#include "regex/nfa.h"
#include "regex/position_automaton.h"
#include "regex/regex_parser.h"

namespace cfgtag::regex {
namespace {

PositionAutomaton Build(const std::string& pattern) {
  auto re = ParseRegex(pattern);
  EXPECT_TRUE(re.ok()) << pattern;
  return PositionAutomaton::Build(**re);
}

// Runs the position automaton over `s` with injection only at step 0 and
// returns the longest accepted prefix (mirrors Nfa::LongestPrefixMatch).
size_t PaLongestPrefix(const PositionAutomaton& pa, const std::string& s) {
  const size_t nw = pa.NumWords() == 0 ? 1 : pa.NumWords();
  std::vector<uint64_t> state(nw, 0), next(nw, 0);
  size_t best = pa.nullable ? 0 : Nfa::kNoMatch;
  for (size_t i = 0; i < s.size(); ++i) {
    pa.StepState(state.data(), /*inject=*/i == 0,
                 static_cast<unsigned char>(s[i]), next.data());
    bool dead = true;
    for (size_t w = 0; w < nw; ++w) dead &= next[w] == 0;
    if (dead) break;
    if (pa.Accepts(next.data())) best = i + 1;
    state.swap(next);
  }
  return best;
}

TEST(PositionAutomatonTest, LiteralChain) {
  PositionAutomaton pa = Build("abc");
  ASSERT_EQ(pa.NumPositions(), 3u);
  EXPECT_EQ(pa.first, (std::vector<uint32_t>{0}));
  EXPECT_TRUE(pa.is_last[2]);
  EXPECT_FALSE(pa.is_last[0]);
  EXPECT_EQ(pa.follow[0], (std::vector<uint32_t>{1}));
  EXPECT_EQ(pa.follow[1], (std::vector<uint32_t>{2}));
  EXPECT_TRUE(pa.follow[2].empty());
  EXPECT_FALSE(pa.nullable);
}

TEST(PositionAutomatonTest, PlusSelfLoop) {
  PositionAutomaton pa = Build("a+");
  ASSERT_EQ(pa.NumPositions(), 1u);
  EXPECT_EQ(pa.follow[0], (std::vector<uint32_t>{0}));
  EXPECT_TRUE(pa.is_last[0]);
  EXPECT_FALSE(pa.nullable);
  EXPECT_TRUE(Build("a*").nullable);
}

TEST(PositionAutomatonTest, AlternationFirstsAndLasts) {
  PositionAutomaton pa = Build("ab|cd");
  ASSERT_EQ(pa.NumPositions(), 4u);
  EXPECT_EQ(pa.first, (std::vector<uint32_t>{0, 2}));
  EXPECT_TRUE(pa.is_last[1]);
  EXPECT_TRUE(pa.is_last[3]);
}

TEST(PositionAutomatonTest, OptionalMiddle) {
  PositionAutomaton pa = Build("ab?c");
  // 'a' is followed by both 'b' and 'c'.
  EXPECT_EQ(pa.follow[0], (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(pa.follow[1], (std::vector<uint32_t>{2}));
}

TEST(PositionAutomatonTest, StarLoopFollow) {
  PositionAutomaton pa = Build("(ab)*");
  // b loops back to a.
  EXPECT_EQ(pa.follow[1], (std::vector<uint32_t>{0}));
  EXPECT_TRUE(pa.nullable);
}

TEST(PositionAutomatonTest, PositionsCarryClasses) {
  PositionAutomaton pa = Build("[0-9][a-z]");
  EXPECT_TRUE(pa.positions[0].Test('5'));
  EXPECT_FALSE(pa.positions[0].Test('x'));
  EXPECT_TRUE(pa.positions[1].Test('x'));
}

TEST(PositionAutomatonTest, CanExtendOnlyFromAcceptingPositions) {
  PositionAutomaton pa = Build("a+b?");
  const size_t nw = 1;
  std::vector<uint64_t> state(nw, 0), next(nw, 0);
  pa.StepState(state.data(), true, 'a', next.data());
  ASSERT_TRUE(pa.Accepts(next.data()));
  // From an accepting 'a' run, both 'a' (self-loop) and 'b' extend.
  EXPECT_TRUE(pa.CanExtend(next.data(), 'a'));
  EXPECT_TRUE(pa.CanExtend(next.data(), 'b'));
  EXPECT_FALSE(pa.CanExtend(next.data(), 'c'));

  // After consuming 'b' the match cannot extend at all.
  state.swap(next);
  pa.StepState(state.data(), false, 'b', next.data());
  ASSERT_TRUE(pa.Accepts(next.data()));
  EXPECT_FALSE(pa.CanExtend(next.data(), 'a'));
  EXPECT_FALSE(pa.CanExtend(next.data(), 'b'));
}

TEST(PositionAutomatonTest, FixedLengthTokenNeverExtends) {
  PositionAutomaton pa = Build("\"<i4>\"");
  std::vector<uint64_t> state(1, 0), next(1, 0);
  const std::string s = "<i4>";
  for (size_t i = 0; i < s.size(); ++i) {
    pa.StepState(state.data(), i == 0, static_cast<unsigned char>(s[i]),
                 next.data());
    state.swap(next);
  }
  ASSERT_TRUE(pa.Accepts(state.data()));
  for (int c = 0; c < 256; ++c) {
    EXPECT_FALSE(pa.CanExtend(state.data(), static_cast<unsigned char>(c)));
  }
}

TEST(PositionAutomatonTest, InjectionMergesRuns) {
  // Two overlapping runs merge into one state set (the hardware shares one
  // register chain per token).
  PositionAutomaton pa = Build("aa");
  std::vector<uint64_t> state(1, 0), next(1, 0);
  pa.StepState(state.data(), true, 'a', next.data());  // run 1: pos0
  state.swap(next);
  pa.StepState(state.data(), true, 'a', next.data());  // run 2 starts too
  // Both pos0 (new run) and pos1 (old run) are live.
  EXPECT_EQ(next[0], 0b11u);
  EXPECT_TRUE(pa.Accepts(next.data()));
}

class PaVsNfaTest : public ::testing::TestWithParam<uint64_t> {};

// The position automaton and the Thompson NFA are two independent
// constructions of the same language: their prefix-match behaviour must
// coincide on random patterns and inputs.
TEST_P(PaVsNfaTest, LongestPrefixAgrees) {
  Rng rng(GetParam() * 7919 + 1);
  std::function<std::string(int)> gen = [&](int depth) -> std::string {
    if (depth <= 0 || rng.NextBool(0.4)) {
      static constexpr const char* kAtoms[] = {"a", "b", "[ab]", "c"};
      return kAtoms[rng.NextIndex(4)];
    }
    switch (rng.NextIndex(3)) {
      case 0:
        return gen(depth - 1) + gen(depth - 1);
      case 1:
        return "(" + gen(depth - 1) + "|" + gen(depth - 1) + ")";
      default:
        return "(" + gen(depth - 1) + ")" + (rng.NextBool() ? "+" : "?");
    }
  };
  const std::string pattern = gen(4);
  auto re = ParseRegex(pattern);
  ASSERT_TRUE(re.ok()) << pattern;
  Nfa nfa = Nfa::Build(**re);
  PositionAutomaton pa = PositionAutomaton::Build(**re);
  EXPECT_EQ(pa.nullable, (*re)->Nullable());
  for (int i = 0; i < 40; ++i) {
    const std::string s = rng.NextString(rng.NextIndex(7), "abc");
    EXPECT_EQ(PaLongestPrefix(pa, s), nfa.LongestPrefixMatch(s, 0))
        << pattern << " on " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaVsNfaTest, ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace cfgtag::regex
