#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace cfgtag {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(StatusTest, AllErrorConstructors) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(InternalError("a"), InternalError("a"));
  EXPECT_FALSE(InternalError("a") == InternalError("b"));
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return InvalidArgumentError("not positive");
  return x;
}

StatusOr<int> DoubledViaMacro(int x) {
  CFGTAG_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

Status CheckViaMacro(int x) {
  CFGTAG_RETURN_IF_ERROR(ParsePositive(x).status());
  return Status::Ok();
}

TEST(StatusOrTest, ValuePath) {
  auto r = ParsePositive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
}

TEST(StatusOrTest, ErrorPath) {
  auto r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  EXPECT_EQ(DoubledViaMacro(21).value(), 42);
  EXPECT_FALSE(DoubledViaMacro(0).ok());
  EXPECT_TRUE(CheckViaMacro(1).ok());
  EXPECT_FALSE(CheckViaMacro(0).ok());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(77);
  double sum = 0;
  for (int i = 0; i < 4000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 4000, 0.5, 0.05);
}

TEST(RngTest, NextBoolEdges) {
  Rng rng(3);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
  int trues = 0;
  for (int i = 0; i < 2000; ++i) trues += rng.NextBool(0.25);
  EXPECT_NEAR(trues / 2000.0, 0.25, 0.05);
}

TEST(RngTest, NextStringUsesAlphabet) {
  Rng rng(42);
  const std::string s = rng.NextString(64, "ab");
  EXPECT_EQ(s.size(), 64u);
  for (char c : s) EXPECT_TRUE(c == 'a' || c == 'b');
}

// --------------------------------------------------------------- Strings

TEST(StringsTest, StrSplitBasics) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(StringsTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(StringsTest, ByteName) {
  EXPECT_EQ(ByteName('a'), "'a'");
  EXPECT_EQ(ByteName(0x0A), "0x0A");
  EXPECT_EQ(ByteName(0xFF), "0xFF");
}

TEST(StringsTest, CEscape) {
  EXPECT_EQ(CEscape("a\nb"), "a\\nb");
  EXPECT_EQ(CEscape("\t\"\\"), "\\t\\\"\\\\");
  EXPECT_EQ(CEscape(std::string("\x01", 1)), "\\x01");
}

TEST(StatusTest, WithContextPrefixesMessage) {
  const Status s = InternalError("wide gate");
  const Status ctx = s.WithContext("techmap");
  EXPECT_EQ(ctx.code(), StatusCode::kInternal);
  EXPECT_EQ(ctx.message(), "techmap: wide gate");
  EXPECT_EQ(ctx.ToString(), "INTERNAL: techmap: wide gate");
}

TEST(StatusTest, WithContextChains) {
  const Status s = InvalidArgumentError("bad bound")
                       .WithContext("regex")
                       .WithContext("hwgen");
  EXPECT_EQ(s.message(), "hwgen: regex: bad bound");
}

TEST(StatusTest, WithContextOnOkAndEmpty) {
  EXPECT_TRUE(Status::Ok().WithContext("stage").ok());
  EXPECT_EQ(Status::Ok().WithContext("stage").message(), "");
  // Empty context is a no-op, and a message-less error keeps none.
  const Status bare(StatusCode::kNotFound, "");
  EXPECT_EQ(bare.WithContext("").message(), "");
  EXPECT_EQ(bare.WithContext("lookup").message(), "lookup");
}

}  // namespace
}  // namespace cfgtag
