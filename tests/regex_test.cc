#include <gtest/gtest.h>

#include <functional>

#include "common/rng.h"
#include "regex/char_class.h"
#include "regex/dfa.h"
#include "regex/nfa.h"
#include "regex/regex_parser.h"

namespace cfgtag::regex {
namespace {

std::unique_ptr<RegexNode> MustParse(const std::string& pattern) {
  auto r = ParseRegex(pattern);
  EXPECT_TRUE(r.ok()) << pattern << ": " << r.status();
  return std::move(r).value();
}

// ------------------------------------------------------------- CharClass

TEST(CharClassTest, Constructors) {
  EXPECT_EQ(CharClass::Of('a').Count(), 1u);
  EXPECT_EQ(CharClass::Range('0', '9').Count(), 10u);
  EXPECT_EQ(CharClass::NoCase('x').Count(), 2u);
  EXPECT_EQ(CharClass::NoCase('7').Count(), 1u);
  EXPECT_EQ(CharClass::Any().Count(), 256u);
  EXPECT_EQ(CharClass::Alpha().Count(), 52u);
  EXPECT_EQ(CharClass::AlphaNum().Count(), 62u);
  EXPECT_TRUE(CharClass::Whitespace().Test(' '));
  EXPECT_TRUE(CharClass::Whitespace().Test('\n'));
  EXPECT_FALSE(CharClass::Whitespace().Test('x'));
}

TEST(CharClassTest, SetAlgebra) {
  CharClass digits = CharClass::Digit();
  CharClass alpha = CharClass::Alpha();
  EXPECT_EQ(digits.Union(alpha).Count(), 62u);
  EXPECT_TRUE(digits.Intersect(alpha).Empty());
  EXPECT_EQ(digits.Complement().Count(), 246u);
  EXPECT_EQ(CharClass::AlphaNum().Minus(digits), alpha);
  EXPECT_TRUE(digits.Intersects(CharClass::Of('5')));
  EXPECT_FALSE(digits.Intersects(CharClass::Of('x')));
}

TEST(CharClassTest, ToStringForms) {
  EXPECT_EQ(CharClass::Of('a').ToString(), "'a'");
  EXPECT_EQ(CharClass().ToString(), "[]");
  EXPECT_EQ(CharClass::Any().ToString(), ".");
  EXPECT_EQ(CharClass::Digit().ToString(), "['0'-'9']");
}

TEST(CharClassTest, HashDistinguishesAndAgrees) {
  EXPECT_EQ(CharClass::Digit().Hash(), CharClass::Range('0', '9').Hash());
  EXPECT_NE(CharClass::Digit().Hash(), CharClass::Alpha().Hash());
}

// ---------------------------------------------------------- Regex parser

TEST(RegexParserTest, LiteralsAndMetrics) {
  auto re = MustParse("abc");
  EXPECT_EQ(re->LiteralCount(), 3u);
  EXPECT_EQ(re->MinLength(), 3u);
  EXPECT_EQ(re->MaxLength(), 3u);
  EXPECT_FALSE(re->Nullable());
}

TEST(RegexParserTest, PostfixOperators) {
  EXPECT_TRUE(MustParse("a*")->Nullable());
  EXPECT_FALSE(MustParse("a+")->Nullable());
  EXPECT_TRUE(MustParse("a?")->Nullable());
  EXPECT_EQ(MustParse("a+")->MaxLength(), SIZE_MAX);
  EXPECT_EQ(MustParse("a?")->MaxLength(), 1u);
  EXPECT_EQ(MustParse("(ab)+")->MinLength(), 2u);
}

TEST(RegexParserTest, Alternation) {
  auto re = MustParse("ab|c|de");
  EXPECT_EQ(re->kind, RegexNode::Kind::kAlternate);
  EXPECT_EQ(re->MinLength(), 1u);
  EXPECT_EQ(re->MaxLength(), 2u);
}

TEST(RegexParserTest, CharClasses) {
  auto re = MustParse("[a-zA-Z0-9]");
  ASSERT_EQ(re->kind, RegexNode::Kind::kLiteral);
  EXPECT_EQ(re->char_class, CharClass::AlphaNum());

  auto neg = MustParse("[^<>]");
  EXPECT_FALSE(neg->char_class.Test('<'));
  EXPECT_FALSE(neg->char_class.Test('>'));
  EXPECT_TRUE(neg->char_class.Test('a'));

  // ']' first in class is a literal member; '-' last is literal.
  auto tricky = MustParse("[]a-]");
  EXPECT_TRUE(tricky->char_class.Test(']'));
  EXPECT_TRUE(tricky->char_class.Test('a'));
  EXPECT_TRUE(tricky->char_class.Test('-'));
}

TEST(RegexParserTest, Escapes) {
  EXPECT_TRUE(MustParse("\\n")->char_class.Test('\n'));
  EXPECT_TRUE(MustParse("\\t")->char_class.Test('\t'));
  EXPECT_TRUE(MustParse("\\x41")->char_class.Test('A'));
  EXPECT_TRUE(MustParse("\\.")->char_class.Test('.'));
  EXPECT_TRUE(MustParse("\\+")->char_class.Test('+'));
}

TEST(RegexParserTest, QuotedStrings) {
  auto re = MustParse("\"<tag>\"");
  EXPECT_EQ(re->LiteralCount(), 5u);
  EXPECT_EQ(re->MinLength(), 5u);
}

TEST(RegexParserTest, DotExcludesNewline) {
  auto re = MustParse(".");
  EXPECT_TRUE(re->char_class.Test('x'));
  EXPECT_FALSE(re->char_class.Test('\n'));
}

TEST(RegexParserTest, Grouping) {
  auto re = MustParse("(a|b)c");
  EXPECT_EQ(re->kind, RegexNode::Kind::kConcat);
  EXPECT_EQ(re->MinLength(), 2u);
}

TEST(RegexParserTest, BoundedRepetition) {
  Nfa exact = Nfa::Build(*MustParse("[0-9]{4}"));
  EXPECT_TRUE(exact.FullMatch("1234"));
  EXPECT_FALSE(exact.FullMatch("123"));
  EXPECT_FALSE(exact.FullMatch("12345"));
  EXPECT_EQ(MustParse("a{4}")->LiteralCount(), 4u);

  Nfa range = Nfa::Build(*MustParse("a{2,4}"));
  EXPECT_FALSE(range.FullMatch("a"));
  EXPECT_TRUE(range.FullMatch("aa"));
  EXPECT_TRUE(range.FullMatch("aaa"));
  EXPECT_TRUE(range.FullMatch("aaaa"));
  EXPECT_FALSE(range.FullMatch("aaaaa"));

  Nfa open = Nfa::Build(*MustParse("(ab){2,}"));
  EXPECT_FALSE(open.FullMatch("ab"));
  EXPECT_TRUE(open.FullMatch("abab"));
  EXPECT_TRUE(open.FullMatch("ababab"));

  Nfa zero = Nfa::Build(*MustParse("a{0,2}b"));
  EXPECT_TRUE(zero.FullMatch("b"));
  EXPECT_TRUE(zero.FullMatch("aab"));
  EXPECT_FALSE(zero.FullMatch("aaab"));
}

TEST(RegexParserTest, BoundedRepetitionErrors) {
  EXPECT_FALSE(ParseRegex("a{").ok());
  EXPECT_FALSE(ParseRegex("a{}").ok());
  EXPECT_FALSE(ParseRegex("a{3,1}").ok());
  EXPECT_FALSE(ParseRegex("a{1000}").ok());
  EXPECT_FALSE(ParseRegex("a{2,x}").ok());
}

TEST(RegexParserTest, Errors) {
  EXPECT_FALSE(ParseRegex("(a").ok());
  EXPECT_FALSE(ParseRegex("a)").ok());
  EXPECT_FALSE(ParseRegex("[a").ok());
  EXPECT_FALSE(ParseRegex("*a").ok());
  EXPECT_FALSE(ParseRegex("a\\").ok());
  EXPECT_FALSE(ParseRegex("\"unterminated").ok());
  EXPECT_FALSE(ParseRegex("[z-a]").ok());
  EXPECT_FALSE(ParseRegex("\\xZZ").ok());
}

TEST(RegexParserTest, ToStringRoundTripsSemantics) {
  for (const std::string pattern :
       {"abc", "a+", "(ab)*c?", "a|b|cd", "[0-9]+\\.[0-9]+"}) {
    auto re = MustParse(pattern);
    auto re2 = MustParse(re->ToString());
    // Compare language on a few probes via NFA.
    Nfa n1 = Nfa::Build(*re);
    Nfa n2 = Nfa::Build(*re2);
    for (const std::string probe :
         {"", "a", "ab", "abc", "aab", "b", "cd", "3.14", "12", "c"}) {
      EXPECT_EQ(n1.FullMatch(probe), n2.FullMatch(probe))
          << pattern << " vs " << re->ToString() << " on " << probe;
    }
  }
}

TEST(RegexAstTest, CloneIsDeep) {
  auto re = MustParse("(ab|c)+");
  auto copy = re->Clone();
  EXPECT_EQ(re->ToString(), copy->ToString());
  EXPECT_NE(re.get(), copy.get());
}

// ------------------------------------------------------------------- NFA

TEST(NfaTest, FullMatchBasics) {
  Nfa nfa = Nfa::Build(*MustParse("ab*c"));
  EXPECT_TRUE(nfa.FullMatch("ac"));
  EXPECT_TRUE(nfa.FullMatch("abbbc"));
  EXPECT_FALSE(nfa.FullMatch("a"));
  EXPECT_FALSE(nfa.FullMatch("abcx"));
  EXPECT_FALSE(nfa.FullMatch(""));
}

TEST(NfaTest, EmptyMatch) {
  Nfa nfa = Nfa::Build(*MustParse("a*"));
  EXPECT_TRUE(nfa.FullMatch(""));
  EXPECT_EQ(nfa.LongestPrefixMatch("bbb", 0), 0u);
}

TEST(NfaTest, LongestPrefixMatch) {
  Nfa nfa = Nfa::Build(*MustParse("[0-9]+"));
  EXPECT_EQ(nfa.LongestPrefixMatch("1234x", 0), 4u);
  EXPECT_EQ(nfa.LongestPrefixMatch("x1234", 1), 4u);
  EXPECT_EQ(nfa.LongestPrefixMatch("xx", 0), Nfa::kNoMatch);
}

TEST(NfaTest, AlternationPrefixPicksLongest) {
  Nfa nfa = Nfa::Build(*MustParse("a|ab|abc"));
  EXPECT_EQ(nfa.LongestPrefixMatch("abcd", 0), 3u);
}

// ------------------------------------------------------------------- DFA

TEST(DfaTest, MatchesLikeNfa) {
  auto re = MustParse("(a|b)*abb");
  Nfa nfa = Nfa::Build(*re);
  Dfa dfa = Dfa::Build(nfa);
  for (const std::string s : {"abb", "aabb", "babb", "abab", "", "abbb"}) {
    EXPECT_EQ(dfa.FullMatch(s), nfa.FullMatch(s)) << s;
    EXPECT_EQ(dfa.LongestPrefixMatch(s, 0), nfa.LongestPrefixMatch(s, 0)) << s;
  }
}

TEST(DfaTest, MinimizationPreservesLanguageAndShrinks) {
  auto re = MustParse("(a|b)*abb");
  Dfa dfa = Dfa::Build(Nfa::Build(*re));
  Dfa min = dfa.Minimize();
  EXPECT_LE(min.NumStates(), dfa.NumStates());
  for (const std::string s :
       {"abb", "aabb", "ab", "", "bbabb", "abba", "aaabbb"}) {
    EXPECT_EQ(min.FullMatch(s), dfa.FullMatch(s)) << s;
  }
  // The classic minimal DFA for (a|b)*abb has 4 live states.
  EXPECT_LE(min.NumStates(), 5u);
}

class RandomRegexTest : public ::testing::TestWithParam<uint64_t> {};

// Generates a random regex AST, then checks NFA, DFA and minimized DFA all
// agree on random strings over a tiny alphabet (where matches are likely).
TEST_P(RandomRegexTest, NfaDfaMinimizedAgree) {
  Rng rng(GetParam());

  std::function<std::string(int)> gen = [&](int depth) -> std::string {
    if (depth <= 0 || rng.NextBool(0.35)) {
      static constexpr const char* kAtoms[] = {"a", "b", "c", "[ab]", "[^a]"};
      return kAtoms[rng.NextIndex(5)];
    }
    switch (rng.NextIndex(4)) {
      case 0:
        return gen(depth - 1) + gen(depth - 1);
      case 1:
        return "(" + gen(depth - 1) + "|" + gen(depth - 1) + ")";
      case 2:
        return "(" + gen(depth - 1) + ")" +
               (rng.NextBool() ? "*" : (rng.NextBool() ? "+" : "?"));
      default:
        return gen(depth - 1);
    }
  };

  const std::string pattern = gen(4);
  auto re = ParseRegex(pattern);
  ASSERT_TRUE(re.ok()) << pattern;
  Nfa nfa = Nfa::Build(**re);
  Dfa dfa = Dfa::Build(nfa);
  Dfa min = dfa.Minimize();

  for (int i = 0; i < 60; ++i) {
    const std::string s = rng.NextString(rng.NextIndex(8), "abc");
    const bool expected = nfa.FullMatch(s);
    EXPECT_EQ(dfa.FullMatch(s), expected) << pattern << " on " << s;
    EXPECT_EQ(min.FullMatch(s), expected) << pattern << " on " << s;
    EXPECT_EQ(dfa.LongestPrefixMatch(s, 0), nfa.LongestPrefixMatch(s, 0))
        << pattern << " on " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRegexTest,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace cfgtag::regex
