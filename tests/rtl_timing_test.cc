#include <gtest/gtest.h>

#include "rtl/device.h"
#include "rtl/netlist.h"
#include "rtl/techmap.h"
#include "rtl/timing.h"

namespace cfgtag::rtl {
namespace {

Device UnitDevice() {
  Device d;
  d.name = "unit";
  d.lut_inputs = 4;
  d.t_lut_ns = 1.0;
  d.t_clk2q_ns = 0.5;
  d.t_setup_ns = 0.5;
  d.route_base_ns = 0.0;
  d.route_fanout_ns = 0.0;
  d.max_freq_mhz = 10000.0;
  return d;
}

TimingReport AnalyzeOrDie(const Netlist& nl, const Device& d) {
  auto mapped = TechMapper(d.lut_inputs).Map(nl);
  EXPECT_TRUE(mapped.ok()) << mapped.status();
  auto report = TimingAnalyzer::Analyze(*mapped, d);
  EXPECT_TRUE(report.ok()) << report.status();
  return std::move(report).value();
}

TEST(TimingTest, RegToRegThroughOneLut) {
  Netlist nl;
  NodeId a = nl.Reg(nl.AddInput("a"));
  NodeId b = nl.Reg(nl.AddInput("b"));
  nl.MarkOutput(nl.Reg(nl.And2(a, b)), "o");
  TimingReport r = AnalyzeOrDie(nl, UnitDevice());
  // clk2q + lut + setup = 0.5 + 1 + 0.5.
  EXPECT_DOUBLE_EQ(r.critical_path_ns, 2.0);
  EXPECT_DOUBLE_EQ(r.fmax_mhz, 500.0);
  EXPECT_DOUBLE_EQ(r.logic_ns, 1.0);
  EXPECT_DOUBLE_EQ(r.sequencing_ns, 1.0);
}

TEST(TimingTest, DeeperConeCostsMoreLevels) {
  Netlist nl;
  std::vector<NodeId> regs;
  for (int i = 0; i < 16; ++i) {
    regs.push_back(nl.Reg(nl.AddInput("i" + std::to_string(i))));
  }
  // A 16-input AND over registers: 2 LUT levels after 4-LUT covering,
  // but the root LUT is separate: 16 -> 4 -> 1 wait both levels count.
  nl.MarkOutput(nl.Reg(nl.And(regs)), "o");
  TimingReport r = AnalyzeOrDie(nl, UnitDevice());
  EXPECT_DOUBLE_EQ(r.logic_ns, 2.0);  // two LUT levels
  EXPECT_DOUBLE_EQ(r.critical_path_ns, 3.0);
}

TEST(TimingTest, FanoutRaisesRoutingDelay) {
  Device d = UnitDevice();
  d.route_base_ns = 0.1;
  d.route_fanout_ns = 0.2;

  // One register driving N LUT sinks: higher N -> slower clock.
  auto build = [&](int sinks) {
    Netlist nl;
    NodeId hot = nl.Reg(nl.AddInput("a"), kInvalidNode, false, "hot");
    for (int i = 0; i < sinks; ++i) {
      NodeId other = nl.Reg(nl.AddInput("b" + std::to_string(i)));
      nl.MarkOutput(nl.Reg(nl.And2(hot, other)), "o" + std::to_string(i));
    }
    return AnalyzeOrDie(nl, d);
  };

  TimingReport small = build(2);
  TimingReport big = build(50);
  EXPECT_LT(small.critical_path_ns, big.critical_path_ns);
  EXPECT_GT(small.fmax_mhz, big.fmax_mhz);
  EXPECT_EQ(big.worst_net_fanout, 50u);
  EXPECT_EQ(big.worst_net_name, "hot");
}

TEST(TimingTest, OutputPortPathHasNoSetup) {
  Netlist nl;
  NodeId r = nl.Reg(nl.AddInput("a"));
  nl.MarkOutput(r, "o");
  TimingReport t = AnalyzeOrDie(nl, UnitDevice());
  // clk2q only (routing zero in the unit device, no LUT, no setup).
  EXPECT_DOUBLE_EQ(t.critical_path_ns, 0.5);
}

TEST(TimingTest, EmptyDesignRunsAtDeviceCeiling) {
  Netlist nl;
  nl.MarkOutput(nl.Const1(), "o");
  TimingReport t = AnalyzeOrDie(nl, UnitDevice());
  EXPECT_DOUBLE_EQ(t.fmax_mhz, 10000.0);
}

TEST(TimingTest, CeilingCapsFmax) {
  Device d = UnitDevice();
  d.max_freq_mhz = 100.0;
  Netlist nl;
  nl.MarkOutput(nl.Reg(nl.AddInput("a")), "o");
  TimingReport t = AnalyzeOrDie(nl, d);
  EXPECT_DOUBLE_EQ(t.fmax_mhz, 100.0);
}

TEST(TimingTest, CriticalPathTraceStartsAtSource) {
  Netlist nl;
  NodeId a = nl.Reg(nl.AddInput("a"), kInvalidNode, false, "srcreg");
  NodeId g = nl.And2(a, nl.Reg(nl.AddInput("b")));
  nl.MarkOutput(nl.Reg(nl.Or2(g, a)), "o");
  TimingReport t = AnalyzeOrDie(nl, UnitDevice());
  ASSERT_GE(t.path.size(), 2u);
  // Path is source-first; the first hop is a register.
  EXPECT_NE(t.path.front().description.find("REG"), std::string::npos);
  EXPECT_NE(t.path.back().description.find("LUT"), std::string::npos);
}

TEST(TimingTest, ReportToStringMentionsWorstNet) {
  Device d = UnitDevice();
  d.route_fanout_ns = 0.3;
  Netlist nl;
  NodeId hot = nl.Reg(nl.AddInput("a"), kInvalidNode, false, "hotnet");
  for (int i = 0; i < 9; ++i) {
    nl.MarkOutput(nl.Reg(nl.And2(hot, nl.Const1())), "o" + std::to_string(i));
  }
  TimingReport t = AnalyzeOrDie(nl, d);
  EXPECT_NE(t.ToString().find("hotnet"), std::string::npos);
}

TEST(DeviceTest, RouteDelayMonotoneInFanout) {
  for (const Device& d : {VirtexE2000(), Virtex4LX200()}) {
    double prev = -1.0;
    for (uint32_t f : {1u, 2u, 8u, 64u, 512u}) {
      const double cur = d.RouteDelayNs(f);
      EXPECT_GT(cur, prev) << d.name;
      prev = cur;
    }
    EXPECT_DOUBLE_EQ(d.RouteDelayNs(0), 0.0);
  }
}

TEST(DeviceTest, VirtexEIsSlowerThanVirtex4) {
  const Device ve = VirtexE2000();
  const Device v4 = Virtex4LX200();
  EXPECT_GT(ve.t_lut_ns, v4.t_lut_ns);
  EXPECT_GT(ve.RouteDelayNs(100), v4.RouteDelayNs(100));
  EXPECT_LT(ve.capacity_luts, v4.capacity_luts);
}

}  // namespace
}  // namespace cfgtag::rtl
