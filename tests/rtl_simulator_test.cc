#include <gtest/gtest.h>

#include "rtl/netlist.h"
#include "rtl/simulator.h"

namespace cfgtag::rtl {
namespace {

TEST(SimulatorTest, CombinationalGateTruthTables) {
  Netlist nl;
  NodeId a = nl.AddInput("a");
  NodeId b = nl.AddInput("b");
  NodeId and2 = nl.And2(a, b);
  NodeId or2 = nl.Or2(a, b);
  NodeId xo = nl.Xor(a, b);
  NodeId na = nl.Not(a);
  NodeId buf = nl.Buf(a);

  auto sim = Simulator::Create(&nl);
  ASSERT_TRUE(sim.ok());
  for (int va = 0; va <= 1; ++va) {
    for (int vb = 0; vb <= 1; ++vb) {
      sim->SetInput(a, va);
      sim->SetInput(b, vb);
      sim->EvalComb();
      EXPECT_EQ(sim->Get(and2), va && vb);
      EXPECT_EQ(sim->Get(or2), va || vb);
      EXPECT_EQ(sim->Get(xo), va != vb);
      EXPECT_EQ(sim->Get(na), !va);
      EXPECT_EQ(sim->Get(buf), va == 1);
    }
  }
}

TEST(SimulatorTest, WideGates) {
  Netlist nl;
  std::vector<NodeId> ins;
  for (int i = 0; i < 7; ++i) ins.push_back(nl.AddInput("i" + std::to_string(i)));
  NodeId all = nl.And(ins);
  NodeId any = nl.Or(ins);
  auto sim = Simulator::Create(&nl);
  ASSERT_TRUE(sim.ok());

  for (NodeId in : ins) sim->SetInput(in, true);
  sim->EvalComb();
  EXPECT_TRUE(sim->Get(all));
  EXPECT_TRUE(sim->Get(any));

  sim->SetInput(ins[3], false);
  sim->EvalComb();
  EXPECT_FALSE(sim->Get(all));
  EXPECT_TRUE(sim->Get(any));

  for (NodeId in : ins) sim->SetInput(in, false);
  sim->EvalComb();
  EXPECT_FALSE(sim->Get(any));
}

TEST(SimulatorTest, RegisterDelaysByOneCycle) {
  Netlist nl;
  NodeId in = nl.AddInput("in");
  NodeId r = nl.Reg(in);
  auto sim = Simulator::Create(&nl);
  ASSERT_TRUE(sim.ok());

  sim->SetInput(in, true);
  EXPECT_FALSE(sim->Get(r));  // before any edge
  sim->Step();
  EXPECT_TRUE(sim->Get(r));  // captured on the edge
  sim->SetInput(in, false);
  sim->Step();
  EXPECT_FALSE(sim->Get(r));
}

TEST(SimulatorTest, RegisterInitValue) {
  Netlist nl;
  NodeId r = nl.Reg(nl.Const0(), kInvalidNode, /*init=*/true);
  auto sim = Simulator::Create(&nl);
  ASSERT_TRUE(sim.ok());
  EXPECT_TRUE(sim->Get(r));
  sim->Step();
  EXPECT_FALSE(sim->Get(r));
  sim->Reset();
  EXPECT_TRUE(sim->Get(r));
}

TEST(SimulatorTest, ClockEnableHoldsValue) {
  Netlist nl;
  NodeId d = nl.AddInput("d");
  NodeId en = nl.AddInput("en");
  NodeId r = nl.Reg(d, en);
  auto sim = Simulator::Create(&nl);
  ASSERT_TRUE(sim.ok());

  sim->SetInput(d, true);
  sim->SetInput(en, true);
  sim->Step();
  EXPECT_TRUE(sim->Get(r));

  sim->SetInput(d, false);
  sim->SetInput(en, false);  // disabled: holds 1
  sim->Step();
  EXPECT_TRUE(sim->Get(r));

  sim->SetInput(en, true);
  sim->Step();
  EXPECT_FALSE(sim->Get(r));
}

TEST(SimulatorTest, FeedbackToggleFlipFlop) {
  // r.D = NOT r  -> toggles every cycle (register feedback loop).
  Netlist nl;
  NodeId r = nl.RegPlaceholder();
  nl.SetRegD(r, nl.Not(r));
  auto sim = Simulator::Create(&nl);
  ASSERT_TRUE(sim.ok());
  bool expect = false;
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(sim->Get(r), expect);
    sim->Step();
    expect = !expect;
  }
}

TEST(SimulatorTest, RippleCounterCounts) {
  // Two-bit counter from toggle registers: bit1 toggles when bit0 is 1.
  Netlist nl;
  NodeId b0 = nl.RegPlaceholder();
  NodeId b1 = nl.RegPlaceholder();
  nl.SetRegD(b0, nl.Not(b0));
  nl.SetRegD(b1, nl.Xor(b1, b0));
  auto sim = Simulator::Create(&nl);
  ASSERT_TRUE(sim.ok());
  for (int t = 0; t < 12; ++t) {
    const int value = (sim->Get(b1) << 1) | static_cast<int>(sim->Get(b0));
    EXPECT_EQ(value, t % 4);
    sim->Step();
  }
}

TEST(SimulatorTest, TwoPhaseSemanticsSwapRegisters) {
  // Classic swap: a.D = b, b.D = a. With correct two-phase simulation the
  // values exchange every cycle instead of collapsing.
  Netlist nl;
  NodeId a = nl.RegPlaceholder(kInvalidNode, /*init=*/true);
  NodeId b = nl.RegPlaceholder(kInvalidNode, /*init=*/false);
  nl.SetRegD(a, b);
  nl.SetRegD(b, a);
  auto sim = Simulator::Create(&nl);
  ASSERT_TRUE(sim.ok());
  for (int t = 0; t < 6; ++t) {
    EXPECT_EQ(sim->Get(a), t % 2 == 0);
    EXPECT_EQ(sim->Get(b), t % 2 == 1);
    sim->Step();
  }
}

TEST(SimulatorTest, CycleCountTracksSteps) {
  Netlist nl;
  nl.Reg(nl.Const1());
  auto sim = Simulator::Create(&nl);
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ(sim->cycle_count(), 0u);
  sim->Step();
  sim->Step();
  EXPECT_EQ(sim->cycle_count(), 2u);
  sim->Reset();
  EXPECT_EQ(sim->cycle_count(), 0u);
}

}  // namespace
}  // namespace cfgtag::rtl
