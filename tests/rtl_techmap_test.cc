#include <gtest/gtest.h>

#include "rtl/device.h"
#include "rtl/netlist.h"
#include "rtl/techmap.h"

namespace cfgtag::rtl {
namespace {

MappedNetlist MapOrDie(const Netlist& nl, int k = 4) {
  auto mapped = TechMapper(k).Map(nl);
  EXPECT_TRUE(mapped.ok()) << mapped.status();
  return std::move(mapped).value();
}

TEST(TechMapTest, SingleGateIsOneLut) {
  Netlist nl;
  NodeId a = nl.AddInput("a");
  NodeId b = nl.AddInput("b");
  nl.MarkOutput(nl.And2(a, b), "o");
  EXPECT_EQ(MapOrDie(nl).NumLuts(), 1u);
}

TEST(TechMapTest, FourInputGateFitsOneLut) {
  Netlist nl;
  std::vector<NodeId> ins;
  for (int i = 0; i < 4; ++i) ins.push_back(nl.AddInput("i" + std::to_string(i)));
  nl.MarkOutput(nl.And(ins), "o");
  EXPECT_EQ(MapOrDie(nl).NumLuts(), 1u);
}

TEST(TechMapTest, EightInputGateNeedsThreeLuts) {
  // 8-input AND = two 4-ANDs + a combiner when covered with 4-LUTs.
  Netlist nl;
  std::vector<NodeId> ins;
  for (int i = 0; i < 8; ++i) ins.push_back(nl.AddInput("i" + std::to_string(i)));
  nl.MarkOutput(nl.And(ins), "o");
  EXPECT_EQ(MapOrDie(nl).NumLuts(), 3u);
}

TEST(TechMapTest, NotChainAbsorbedIntoOneLut) {
  Netlist nl;
  NodeId a = nl.AddInput("a");
  NodeId x = nl.Not(nl.Or2(nl.Not(a), nl.AddInput("b")));
  nl.MarkOutput(x, "o");
  // NOT(OR(NOT a, b)) is a single 2-input function.
  EXPECT_EQ(MapOrDie(nl).NumLuts(), 1u);
}

TEST(TechMapTest, SharedGateNotAbsorbedTwice) {
  // g = a&b feeds two outputs: it must stay its own LUT (fanout 2), plus
  // one LUT per consumer gate.
  Netlist nl;
  NodeId a = nl.AddInput("a");
  NodeId b = nl.AddInput("b");
  NodeId c = nl.AddInput("c");
  NodeId g = nl.And2(a, b);
  nl.MarkOutput(nl.Or2(g, c), "o1");
  nl.MarkOutput(nl.Xor(g, c), "o2");
  MappedNetlist m = MapOrDie(nl);
  EXPECT_EQ(m.NumLuts(), 3u);
}

TEST(TechMapTest, RegistersCounted) {
  Netlist nl;
  NodeId a = nl.AddInput("a");
  NodeId r1 = nl.Reg(a);
  NodeId r2 = nl.Reg(r1);
  nl.MarkOutput(r2, "o");
  MappedNetlist m = MapOrDie(nl);
  EXPECT_EQ(m.NumFfs(), 2u);
  EXPECT_EQ(m.NumLuts(), 0u);  // pure wire datapath
}

TEST(TechMapTest, RegisterEnablePinCountsAsSink) {
  Netlist nl;
  NodeId d = nl.AddInput("d");
  NodeId en = nl.AddInput("en");
  nl.MarkOutput(nl.Reg(d, en), "o");
  MappedNetlist m = MapOrDie(nl);
  // Find the enable input net and check its fanout.
  bool found = false;
  for (const auto& net : m.nets) {
    if (net.kind == MappedNetlist::NetKind::kInput && net.name == "en") {
      EXPECT_EQ(net.fanout, 1u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TechMapTest, FanoutCountsAllSinkPins) {
  Netlist nl;
  NodeId a = nl.AddInput("a");
  NodeId b = nl.AddInput("b");
  // `a` feeds 3 gate pins and one output port = 4 sinks, but the three
  // gates collapse into one LUT, so the mapped fanout is 2 (LUT + port).
  NodeId g1 = nl.And2(a, b);
  NodeId g2 = nl.Or2(g1, a);
  NodeId g3 = nl.Xor(g2, a);
  nl.MarkOutput(g3, "o");
  nl.MarkOutput(a, "adir");
  MappedNetlist m = MapOrDie(nl);
  for (const auto& net : m.nets) {
    if (net.kind == MappedNetlist::NetKind::kInput && net.name == "a") {
      EXPECT_EQ(net.fanout, 2u);
    }
  }
}

TEST(TechMapTest, WideOrCoverScalesLinearly) {
  // A 64-input OR needs ceil(63/3) = 21 4-LUTs in a tree cover.
  Netlist nl;
  std::vector<NodeId> ins;
  for (int i = 0; i < 64; ++i) ins.push_back(nl.AddInput("i" + std::to_string(i)));
  nl.MarkOutput(nl.Or(ins), "o");
  EXPECT_EQ(MapOrDie(nl).NumLuts(), 21u);
}

TEST(TechMapTest, SixInputLutsCoverMore) {
  Netlist nl;
  std::vector<NodeId> ins;
  for (int i = 0; i < 8; ++i) ins.push_back(nl.AddInput("i" + std::to_string(i)));
  nl.MarkOutput(nl.And(ins), "o");
  // ceil(7/5) = 2 6-LUTs.
  EXPECT_EQ(MapOrDie(nl, 6).NumLuts(), 2u);
}

TEST(TechMapTest, UnusedLogicIsNotCovered) {
  Netlist nl;
  NodeId a = nl.AddInput("a");
  nl.And2(a, nl.AddInput("b"));  // dangling gate, no output/reg consumes it
  nl.MarkOutput(a, "o");
  EXPECT_EQ(MapOrDie(nl).NumLuts(), 0u);
}

TEST(TechMapTest, MaxFanoutNetIdentified) {
  Netlist nl;
  NodeId hot = nl.AddInput("hot");
  NodeId other = nl.AddInput("other");
  for (int i = 0; i < 5; ++i) {
    nl.MarkOutput(nl.Reg(nl.And2(hot, other), kInvalidNode, false,
                         "r" + std::to_string(i)),
                  "o" + std::to_string(i));
  }
  MappedNetlist m = MapOrDie(nl);
  const MappedNetlist::NetId worst = m.MaxFanoutNet();
  ASSERT_NE(worst, MappedNetlist::kNoNet);
  EXPECT_EQ(m.nets[worst].fanout, 5u);
}

TEST(TechMapTest, RejectsTinyLutSize) {
  Netlist nl;
  nl.MarkOutput(nl.AddInput("a"), "o");
  EXPECT_FALSE(TechMapper(1).Map(nl).ok());
}

}  // namespace
}  // namespace cfgtag::rtl
