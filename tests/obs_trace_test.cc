#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cfgtag::obs {
namespace {

TEST(TracerTest, RecordsSpanOnScopeExit) {
  Tracer tracer;
  EXPECT_TRUE(tracer.Snapshot().empty());
  { ScopedSpan span("work", &tracer); }
  const auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "work");
  EXPECT_EQ(spans[0].depth, 0);
}

TEST(TracerTest, NestedSpansTrackDepthAndCompleteChildFirst) {
  Tracer tracer;
  {
    ScopedSpan outer("outer", &tracer);
    {
      ScopedSpan inner("inner", &tracer);
      { ScopedSpan leaf("leaf", &tracer); }
    }
  }
  const auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Completion order: leaf, inner, outer.
  EXPECT_EQ(spans[0].name, "leaf");
  EXPECT_EQ(spans[0].depth, 2);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].name, "outer");
  EXPECT_EQ(spans[2].depth, 0);
  // A parent's window contains its child's.
  EXPECT_LE(spans[2].start_us, spans[1].start_us);
  EXPECT_GE(spans[2].start_us + spans[2].dur_us,
            spans[1].start_us + spans[1].dur_us);
}

TEST(TracerTest, LastSpanPathIsSlashJoinedAndOutlivesTheSpan) {
  Tracer tracer;
  {
    ScopedSpan outer("compile", &tracer);
    {
      ScopedSpan inner("hwgen", &tracer);
      EXPECT_EQ(tracer.LastSpanPath(), "compile/hwgen");
    }
    // Ending a child does not rewind the last-entered path.
    EXPECT_EQ(tracer.LastSpanPath(), "compile/hwgen");
  }
  EXPECT_EQ(tracer.LastSpanPath(), "compile/hwgen");
}

TEST(TracerTest, BoundedBufferCountsDrops) {
  Tracer tracer(/*capacity=*/2);
  { ScopedSpan a("a", &tracer); }
  { ScopedSpan b("b", &tracer); }
  { ScopedSpan c("c", &tracer); }
  EXPECT_EQ(tracer.Snapshot().size(), 2u);
  EXPECT_EQ(tracer.dropped_spans(), 1u);
  tracer.Clear();
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.dropped_spans(), 0u);
}

TEST(TracerTest, RingKeepsTheMostRecentSpans) {
  Tracer tracer(/*capacity=*/2);
  { ScopedSpan a("a", &tracer); }
  { ScopedSpan b("b", &tracer); }
  { ScopedSpan c("c", &tracer); }
  { ScopedSpan d("d", &tracer); }
  // Oldest-first snapshot of the two survivors: c then d, not a/b.
  const auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "c");
  EXPECT_EQ(spans[1].name, "d");
  EXPECT_EQ(tracer.dropped_spans(), 2u);
}

TEST(TracerTest, RingDropsBumpTheDefaultRegistryCounter) {
  Counter* dropped = MetricsRegistry::Default().GetCounter(
      "cfgtag_trace_spans_dropped_total");
  const uint64_t before = dropped->Value();
  Tracer tracer(/*capacity=*/1);
  { ScopedSpan a("a", &tracer); }
  { ScopedSpan b("b", &tracer); }
  EXPECT_EQ(dropped->Value(), before + 1);
}

TEST(TracerTest, SetCapacityShrinksKeepingTheMostRecent) {
  Tracer tracer(/*capacity=*/8);
  { ScopedSpan a("a", &tracer); }
  { ScopedSpan b("b", &tracer); }
  { ScopedSpan c("c", &tracer); }
  EXPECT_EQ(tracer.capacity(), 8u);
  tracer.set_capacity(2);
  EXPECT_EQ(tracer.capacity(), 2u);
  auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "b");
  EXPECT_EQ(spans[1].name, "c");
  // The shrunken ring keeps rotating correctly.
  { ScopedSpan d("d", &tracer); }
  spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "c");
  EXPECT_EQ(spans[1].name, "d");
}

TEST(TracerTest, ZeroCapacityDropsEverythingButCounts) {
  Tracer tracer(/*capacity=*/0);
  { ScopedSpan a("a", &tracer); }
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.dropped_spans(), 1u);
}

TEST(TracerTest, ChromeTraceJsonShape) {
  Tracer tracer;
  { ScopedSpan span("tag \"stream\"", &tracer); }
  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"cfgtag\""), std::string::npos);
  // Quotes inside span names are escaped, keeping the JSON loadable.
  EXPECT_NE(json.find("tag \\\"stream\\\""), std::string::npos);
  EXPECT_EQ(json.find("\"tag \"stream\"\""), std::string::npos);
}

TEST(TracerTest, ThreadsGetDistinctIds) {
  Tracer tracer;
  { ScopedSpan main_span("main", &tracer); }
  std::thread worker([&tracer] { ScopedSpan span("worker", &tracer); });
  worker.join();
  const auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].tid, spans[1].tid);
}

TEST(TracerTest, SpansOnSeparateThreadsDoNotNest) {
  Tracer tracer;
  ScopedSpan outer("outer", &tracer);
  std::thread worker([&tracer] {
    ScopedSpan span("worker", &tracer);
    // The other thread's live span is not this thread's parent.
    EXPECT_EQ(tracer.LastSpanPath(), "worker");
  });
  worker.join();
  const auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].depth, 0);
}

}  // namespace
}  // namespace cfgtag::obs
