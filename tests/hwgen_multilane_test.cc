// Tests for the multi-byte datapath (paper §5.2 future work, implemented):
// a W-byte/cycle tagger must produce exactly the same tag stream as the
// 1-byte functional model — the lanes are an implementation transform, not
// a semantic change.

#include <gtest/gtest.h>

#include "core/token_tagger.h"
#include "grammar/grammar_parser.h"
#include "rtl/device.h"
#include "xmlrpc/message_gen.h"
#include "xmlrpc/xmlrpc_grammar.h"

namespace cfgtag::hwgen {
namespace {

grammar::Grammar MustParse(const std::string& text) {
  auto g = grammar::ParseGrammar(text);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

constexpr char kIfThenElse[] = R"(
%%
stmt: "if" cond "then" stmt "else" stmt | "go" | "stop";
cond: "true" | "false";
%%
)";

class MultiLaneTest : public ::testing::TestWithParam<int> {};

TEST_P(MultiLaneTest, StructureScalesWithLanes) {
  HwOptions opt;
  opt.bytes_per_cycle = GetParam();
  auto gen = TaggerGenerator::Generate(MustParse(kIfThenElse), opt);
  ASSERT_TRUE(gen.ok()) << gen.status();
  const size_t lanes = static_cast<size_t>(GetParam());
  EXPECT_EQ(gen->data_in.size(), 8 * lanes);
  EXPECT_EQ(gen->match_regs.size(), lanes * gen->num_tokens);
  ASSERT_EQ(gen->lane_match_latency.size(), lanes);
  for (size_t k = 0; k + 1 < lanes; ++k) {
    EXPECT_EQ(gen->lane_match_latency[k], gen->lane_match_latency.back() - 1);
  }
}

TEST_P(MultiLaneTest, IfThenElseTagsMatchFunctionalModel) {
  HwOptions opt;
  opt.bytes_per_cycle = GetParam();
  auto compiled =
      core::CompiledTagger::Compile(MustParse(kIfThenElse), opt);
  ASSERT_TRUE(compiled.ok()) << compiled.status();

  for (const std::string& input :
       {std::string("if true then go else stop"), std::string("go"),
        std::string("   stop"),
        std::string("if false then if true then go else stop else go")}) {
    auto hw = compiled->TagCycleAccurate(input);
    ASSERT_TRUE(hw.ok()) << hw.status();
    EXPECT_EQ(compiled->Tag(input), *hw)
        << "lanes=" << GetParam() << " input='" << input << "'";
  }
}

TEST_P(MultiLaneTest, XmlRpcTagsMatchFunctionalModel) {
  auto g = xmlrpc::XmlRpcGrammar();
  ASSERT_TRUE(g.ok());
  HwOptions opt;
  opt.bytes_per_cycle = GetParam();
  auto compiled = core::CompiledTagger::Compile(std::move(g).value(), opt);
  ASSERT_TRUE(compiled.ok()) << compiled.status();

  xmlrpc::MessageGenerator gen({}, /*seed=*/GetParam() * 100 + 9);
  for (int i = 0; i < 2; ++i) {
    const std::string msg = gen.Generate();
    auto hw = compiled->TagCycleAccurate(msg);
    ASSERT_TRUE(hw.ok()) << hw.status();
    EXPECT_EQ(compiled->Tag(msg), *hw) << "lanes=" << GetParam();
  }
}

TEST_P(MultiLaneTest, UnalignedTokenBoundaries) {
  // Token boundaries landing on every lane position: single-char tokens
  // back to back.
  HwOptions opt;
  opt.bytes_per_cycle = GetParam();
  auto compiled = core::CompiledTagger::Compile(MustParse(R"(
%%
s: "a" "b" "c" "d" "e";
%%
)"),
                                                opt);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  for (const std::string& input :
       {std::string("abcde"), std::string("a b c d e"),
        std::string(" abcde"), std::string("ab cde")}) {
    auto hw = compiled->TagCycleAccurate(input);
    ASSERT_TRUE(hw.ok()) << hw.status();
    EXPECT_EQ(compiled->Tag(input), *hw)
        << "lanes=" << GetParam() << " input='" << input << "'";
  }
}

TEST_P(MultiLaneTest, LongRunsCrossCycleBoundaries) {
  HwOptions opt;
  opt.bytes_per_cycle = GetParam();
  auto compiled = core::CompiledTagger::Compile(MustParse(R"(
NUM [0-9]+
%%
s: NUM "x" NUM;
%%
)"),
                                                opt);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  for (const std::string& input :
       {std::string("1234567x89"), std::string("1x2"),
        std::string("123x45678901")}) {
    auto hw = compiled->TagCycleAccurate(input);
    ASSERT_TRUE(hw.ok()) << hw.status();
    EXPECT_EQ(compiled->Tag(input), *hw)
        << "lanes=" << GetParam() << " input='" << input << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(Lanes, MultiLaneTest, ::testing::Values(2, 4));

TEST(MultiLaneTest, BandwidthScalesButFrequencyDrops) {
  // The §5.2 trade-off: W bytes/cycle multiplies bandwidth per MHz, but the
  // W-deep combinational ladder costs clock frequency.
  auto one = core::CompiledTagger::Compile(MustParse(kIfThenElse), {});
  HwOptions opt4;
  opt4.bytes_per_cycle = 4;
  auto four = core::CompiledTagger::Compile(MustParse(kIfThenElse), opt4);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(four.ok());
  auto r1 = one->Implement(rtl::Virtex4LX200());
  auto r4 = four->Implement(rtl::Virtex4LX200());
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r4.ok());
  EXPECT_LE(r4->timing.fmax_mhz, r1->timing.fmax_mhz);
  EXPECT_GT(r4->bandwidth_gbps, r1->bandwidth_gbps);
  EXPECT_GT(r4->area.luts, r1->area.luts);
}

TEST(MultiLaneTest, NoEncoderOnMultiLane) {
  HwOptions opt;
  opt.bytes_per_cycle = 2;
  auto gen = TaggerGenerator::Generate(MustParse(kIfThenElse), opt);
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(gen->index_valid, rtl::kInvalidNode);
}

}  // namespace
}  // namespace cfgtag::hwgen
