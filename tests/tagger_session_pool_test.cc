// SessionPool: Run() must reuse pooled scratch state across calls and
// across threads, survive FunctionalTagger moves (the rebind path), and
// hand back clean sessions after early-stopped scans.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "grammar/grammar_parser.h"
#include "obs/metrics.h"
#include "tagger/functional_model.h"
#include "tagger/session_pool.h"

namespace cfgtag::tagger {
namespace {

grammar::Grammar MustParse(const std::string& text) {
  auto g = grammar::ParseGrammar(text);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

TEST(SessionPoolTest, RunReusesOnePooledSession) {
  grammar::Grammar g = MustParse("NUM [0-9]+\n%%\ns: \"<n>\" NUM \"</n>\";\n%%\n");
  auto t = FunctionalTagger::Create(&g, {});
  ASSERT_TRUE(t.ok());
  const auto first = t->TagAll("<n>123</n>");
  const auto second = t->TagAll("<n>123</n>");
  EXPECT_EQ(first, second);
  EXPECT_EQ(t->session_pool().sessions_created(), 1u);
  EXPECT_GE(t->session_pool().sessions_reused(), 1u);
  EXPECT_EQ(t->session_pool().IdleCount(), 1u);
}

TEST(SessionPoolTest, AcquireTracksCheckouts) {
  grammar::Grammar g = MustParse("%%\ns: \"ab\";\n%%\n");
  auto t = FunctionalTagger::Create(&g, {});
  ASSERT_TRUE(t.ok());
  SessionPool& pool = t->session_pool();
  {
    SessionPool::Handle a = pool.Acquire(&*t);
    SessionPool::Handle b = pool.Acquire(&*t);
    EXPECT_EQ(pool.IdleCount(), 0u);
    EXPECT_EQ(pool.sessions_created(), 2u);
    // Handles are movable; the moved-from handle returns nothing.
    SessionPool::Handle c = std::move(a);
    EXPECT_NE(c.get(), nullptr);
  }
  EXPECT_EQ(pool.IdleCount(), 2u);
  EXPECT_EQ(pool.HighWater(), 2u);
  // A temporary single checkout is a new (one-deep) burst: when it drains,
  // the high-water trim shrinks the idle list to that burst's peak.
  pool.Acquire(&*t);
  EXPECT_EQ(pool.IdleCount(), 1u);
  EXPECT_EQ(pool.sessions_created(), 2u);
  EXPECT_EQ(pool.sessions_dropped(), 1u);
}

TEST(SessionPoolTest, HardCapBoundsIdleSessions) {
  grammar::Grammar g = MustParse("%%\ns: \"ab\";\n%%\n");
  auto t = FunctionalTagger::Create(&g, {});
  ASSERT_TRUE(t.ok());
  SessionPool& pool = t->session_pool();
  pool.set_max_idle(2);
  {
    std::vector<SessionPool::Handle> handles;
    for (int i = 0; i < 5; ++i) handles.push_back(pool.Acquire(&*t));
    EXPECT_EQ(pool.sessions_created(), 5u);
  }
  // Five returned, at most two kept (the cap applies before any trim).
  EXPECT_EQ(pool.IdleCount(), 2u);
  EXPECT_EQ(pool.sessions_dropped(), 3u);
  EXPECT_EQ(pool.HighWater(), 5u);
}

TEST(SessionPoolTest, BurstTrimReleasesScratchAfterDrain) {
  grammar::Grammar g = MustParse("%%\ns: \"ab\";\n%%\n");
  auto t = FunctionalTagger::Create(&g, {});
  ASSERT_TRUE(t.ok());
  SessionPool& pool = t->session_pool();
  {
    std::vector<SessionPool::Handle> handles;
    for (int i = 0; i < 8; ++i) handles.push_back(pool.Acquire(&*t));
  }
  // The burst's own peak was 8, so all 8 stay resident right after it...
  EXPECT_EQ(pool.IdleCount(), 8u);
  // ...but the next steady single-session use trims down to its own peak:
  // a one-off 8-way burst does not pin 8 sessions' scratch forever.
  (void)t->TagAll("ab");
  EXPECT_EQ(pool.IdleCount(), 1u);
  EXPECT_EQ(pool.sessions_dropped(), 7u);
}

TEST(SessionPoolTest, IdleGaugeTracksPool) {
  grammar::Grammar g = MustParse("%%\ns: \"ab\";\n%%\n");
  auto t = FunctionalTagger::Create(&g, {});
  ASSERT_TRUE(t.ok());
  SessionPool& pool = t->session_pool();
  obs::Gauge* idle = obs::MetricsRegistry::Default().GetGauge(
      "cfgtag_session_pool_idle_sessions");
  obs::Counter* dropped = obs::MetricsRegistry::Default().GetCounter(
      "cfgtag_session_pool_dropped_total");
  const uint64_t dropped_before = dropped->Value();
  {
    SessionPool::Handle a = pool.Acquire(&*t);
    SessionPool::Handle b = pool.Acquire(&*t);
    EXPECT_EQ(idle->Value(), 0.0);
  }
  EXPECT_EQ(idle->Value(), static_cast<double>(pool.IdleCount()));
  pool.set_max_idle(1);
  { SessionPool::Handle a = pool.Acquire(&*t); }
  // One of the two sessions was dropped by the lowered cap (or the burst
  // trim); the process-wide counter advanced by exactly that amount.
  EXPECT_EQ(pool.IdleCount(), 1u);
  EXPECT_EQ(idle->Value(), 1.0);
  EXPECT_EQ(dropped->Value() - dropped_before, pool.sessions_dropped());
}

TEST(SessionPoolTest, SurvivesTaggerMove) {
  // CompiledTagger::Compile moves the FunctionalTagger after Create(), so
  // pooled sessions built before the move hold a stale tagger pointer;
  // Acquire() must rebind them to the new address.
  grammar::Grammar g = MustParse("NUM [0-9]+\n%%\ns: NUM \"x\";\n%%\n");
  auto created = FunctionalTagger::Create(&g, {});
  ASSERT_TRUE(created.ok());
  const auto before = created->TagAll("123x");
  ASSERT_FALSE(before.empty());
  ASSERT_EQ(created->session_pool().sessions_created(), 1u);

  FunctionalTagger moved = std::move(created).value();
  const auto after = moved.TagAll("123x");
  EXPECT_EQ(before, after);
  // Same pool, same session — rebound, not reallocated.
  EXPECT_EQ(moved.session_pool().sessions_created(), 1u);
  EXPECT_GE(moved.session_pool().sessions_reused(), 1u);
}

TEST(SessionPoolTest, EarlyStoppedSessionIsCleanOnReuse) {
  grammar::Grammar g = MustParse("%%\ns: \"a\" \"b\" \"c\";\n%%\n");
  auto t = FunctionalTagger::Create(&g, {});
  ASSERT_TRUE(t.ok());
  int seen = 0;
  t->Run("a b c", [&seen](const Tag&) { return ++seen < 2; });
  EXPECT_EQ(seen, 2);
  // The half-consumed session went back to the pool; the next Run must
  // start from scratch and see all three tokens.
  EXPECT_EQ(t->TagAll("a b c").size(), 3u);
  EXPECT_EQ(t->session_pool().sessions_created(), 1u);
}

TEST(SessionPoolTest, ConcurrentRunsShareThePool) {
  grammar::Grammar g = MustParse("NUM [0-9]+\n%%\ns: \"<n>\" NUM \"</n>\";\n%%\n");
  auto t = FunctionalTagger::Create(&g, {});
  ASSERT_TRUE(t.ok());
  const std::string input = "<n>4711</n>";
  const auto expected = t->TagAll(input);

  constexpr int kThreads = 4;
  constexpr int kRunsPerThread = 50;
  std::vector<std::thread> workers;
  std::vector<int> mismatches(kThreads, 0);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kRunsPerThread; ++i) {
        if (t->TagAll(input) != expected) ++mismatches[w];
      }
    });
  }
  for (auto& th : workers) th.join();
  for (int w = 0; w < kThreads; ++w) EXPECT_EQ(mismatches[w], 0);
  const SessionPool& pool = t->session_pool();
  // At most one session per concurrently-running thread was ever built.
  EXPECT_LE(pool.sessions_created(), static_cast<uint64_t>(kThreads) + 1);
  EXPECT_EQ(pool.sessions_created() + pool.sessions_reused(),
            static_cast<uint64_t>(kThreads) * kRunsPerThread + 1);
}

TEST(SessionPoolTest, TrimIdleDropsAndCounts) {
  grammar::Grammar g = MustParse("%%\ns: \"ab\";\n%%\n");
  auto t = FunctionalTagger::Create(&g, {});
  ASSERT_TRUE(t.ok());
  SessionPool& pool = t->session_pool();
  {
    std::vector<SessionPool::Handle> handles;
    for (int i = 0; i < 6; ++i) handles.push_back(pool.Acquire(&*t));
  }
  ASSERT_EQ(pool.IdleCount(), 6u);
  pool.TrimIdle(2);
  EXPECT_EQ(pool.IdleCount(), 2u);
  EXPECT_EQ(pool.sessions_dropped(), 4u);
  pool.TrimIdle(4);  // keep above current idle: no-op
  EXPECT_EQ(pool.IdleCount(), 2u);
  EXPECT_EQ(pool.sessions_dropped(), 4u);
  pool.TrimIdle(0);
  EXPECT_EQ(pool.IdleCount(), 0u);
  // Every created session is now accounted as dropped.
  EXPECT_EQ(pool.sessions_dropped(), pool.sessions_created());
}

// Contention oracle: hammer Acquire/Release from N threads while another
// thread keeps retuning retention (set_max_idle, TrimIdle). The pool's
// counters must reconcile against a single-threaded bookkeeping oracle:
//
//   created + reused == total acquires   (every checkout is exactly one)
//   created == dropped + IdleCount       (at quiescence: every session
//                                         ever built is either freed and
//                                         counted, or sitting idle)
//
// Any double-release, lost return, or drop that skipped the counter breaks
// one of the two identities.
TEST(SessionPoolTest, ContentionCountersReconcileAgainstOracle) {
  grammar::Grammar g = MustParse("NUM [0-9]+\n%%\ns: \"<n>\" NUM \"</n>\";\n%%\n");
  auto t = FunctionalTagger::Create(&g, {});
  ASSERT_TRUE(t.ok());
  SessionPool& pool = t->session_pool();

  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 300;
  std::atomic<bool> stop_tuning{false};
  std::atomic<uint64_t> acquires{0};

  std::thread tuner([&] {
    size_t n = 1;
    while (!stop_tuning.load(std::memory_order_acquire)) {
      pool.set_max_idle(1 + (n % 8));
      pool.TrimIdle(n % 4);
      (void)pool.IdleCount();
      (void)pool.HighWater();
      ++n;
    }
  });

  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kItersPerThread; ++i) {
        // Mix plain checkouts, nested checkouts (forces pool growth), and
        // full tagging runs through the pool's hot path.
        SessionPool::Handle a = pool.Acquire(&*t);
        acquires.fetch_add(1, std::memory_order_relaxed);
        if (i % 3 == 0) {
          SessionPool::Handle b = pool.Acquire(&*t);
          acquires.fetch_add(1, std::memory_order_relaxed);
        }
        if (i % 5 == w % 5) {
          (void)t->TagAll("<n>42</n>");  // acquires internally
          acquires.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : workers) th.join();
  stop_tuning.store(true, std::memory_order_release);
  tuner.join();

  // Identity 1: every acquire was served by exactly one create-or-reuse.
  EXPECT_EQ(pool.sessions_created() + pool.sessions_reused(),
            acquires.load());
  // Identity 2 (quiescence): built == freed + still-idle.
  EXPECT_EQ(pool.sessions_created(),
            pool.sessions_dropped() + pool.IdleCount());
  EXPECT_GE(pool.HighWater(), 1u);
  EXPECT_LE(pool.HighWater(), static_cast<size_t>(2 * kThreads));
  // Drain everything: the idle remainder converts to drops, closing the
  // books completely.
  pool.TrimIdle(0);
  EXPECT_EQ(pool.IdleCount(), 0u);
  EXPECT_EQ(pool.sessions_created(), pool.sessions_dropped());
}

}  // namespace
}  // namespace cfgtag::tagger
