#include <gtest/gtest.h>

#include "grammar/grammar_parser.h"
#include "nids/context_filter.h"

namespace cfgtag::nids {
namespace {

// A miniature request protocol: REQ <path> HDR <value> END
constexpr char kProtocol[] = R"grm(
PATH [a-zA-Z0-9/._-]+
WORD [a-zA-Z0-9/._-]+
%%
msg:  "REQ" path "HDR" hval "END";
path: PATH;
hval: WORD;
%%
)grm";

grammar::Grammar Protocol() {
  auto g = grammar::ParseGrammar(kProtocol);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

std::vector<Rule> WebRules() {
  return {
      {"TRAVERSAL", "../", "PATH", 3},
      {"PASSWD", "/etc/passwd", "PATH", 3},
      {"DROPPER", "cmd.exe", "PATH", 2},
  };
}

TEST(ContextFilterTest, AlertsOnPatternInContext) {
  auto filter = ContextFilter::Create(Protocol(), WebRules());
  ASSERT_TRUE(filter.ok()) << filter.status();
  auto alerts =
      filter->Scan("REQ /a/../../etc/passwd HDR curl END");
  // "../" twice + "/etc/passwd" once.
  ASSERT_EQ(alerts.size(), 3u);
  EXPECT_EQ(filter->rules()[alerts[0].rule_index].id, "TRAVERSAL");
  EXPECT_EQ(filter->rules()[alerts[2].rule_index].id, "PASSWD");
}

TEST(ContextFilterTest, IgnoresPatternOutsideContext) {
  auto filter = ContextFilter::Create(Protocol(), WebRules());
  ASSERT_TRUE(filter.ok());
  const std::string msg = "REQ /index.html HDR probe-/etc/passwd-x END";
  EXPECT_TRUE(filter->Scan(msg).empty());
  // The context-free baseline flags it.
  EXPECT_EQ(filter->ScanContextFree(msg).size(), 1u);
}

TEST(ContextFilterTest, AlertOffsetsAreStreamAbsolute) {
  auto filter = ContextFilter::Create(Protocol(), WebRules());
  ASSERT_TRUE(filter.ok());
  const std::string msg = "REQ /x/cmd.exe HDR agent END";
  auto alerts = filter->Scan(msg);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].end, msg.find("cmd.exe") + 6);
}

TEST(ContextFilterTest, ContextFreeRulesMatchAnywhere) {
  std::vector<Rule> rules = WebRules();
  rules.push_back({"GLOBAL", "forbidden", "", 1});
  auto filter = ContextFilter::Create(Protocol(), rules);
  ASSERT_TRUE(filter.ok());
  auto alerts = filter->Scan("REQ /ok HDR very-forbidden-agent END");
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(filter->rules()[alerts[0].rule_index].id, "GLOBAL");
}

TEST(ContextFilterTest, HeaderRulesSeparateFromPathRules) {
  std::vector<Rule> rules = {
      {"PATH-EVIL", "evil", "PATH", 2},
      {"UA-BADBOT", "badbot", "WORD", 1},
  };
  auto filter = ContextFilter::Create(Protocol(), rules);
  ASSERT_TRUE(filter.ok());

  auto a1 = filter->Scan("REQ /evil HDR goodagent END");
  ASSERT_EQ(a1.size(), 1u);
  EXPECT_EQ(filter->rules()[a1[0].rule_index].id, "PATH-EVIL");

  auto a2 = filter->Scan("REQ /fine HDR badbot END");
  ASSERT_EQ(a2.size(), 1u);
  EXPECT_EQ(filter->rules()[a2[0].rule_index].id, "UA-BADBOT");

  // Crossed contexts: no alerts.
  EXPECT_TRUE(filter->Scan("REQ /badbot HDR evil END").empty());
}

TEST(ContextFilterTest, StatsAreFilled) {
  auto filter = ContextFilter::Create(Protocol(), WebRules());
  ASSERT_TRUE(filter.ok());
  ScanStats stats;
  const std::string msg = "REQ /a/../b HDR ua END";
  auto alerts = filter->Scan(msg, &stats);
  EXPECT_EQ(stats.bytes, msg.size());
  EXPECT_GE(stats.tokens, 5u);
  EXPECT_GE(stats.spans_scanned, 1u);
  EXPECT_EQ(stats.alerts, alerts.size());
}

TEST(ContextFilterTest, CreateRejections) {
  EXPECT_FALSE(ContextFilter::Create(Protocol(), {}).ok());
  EXPECT_FALSE(
      ContextFilter::Create(Protocol(), {{"X", "", "PATH", 1}}).ok());
  EXPECT_FALSE(
      ContextFilter::Create(Protocol(), {{"X", "p", "NOSUCH", 1}}).ok());
}

TEST(ContextFilterTest, MultipleMessagesWithResync) {
  hwgen::HwOptions opt;
  opt.tagger.arm_mode = tagger::ArmMode::kResync;
  auto filter = ContextFilter::Create(Protocol(), WebRules(), opt);
  ASSERT_TRUE(filter.ok());
  const std::string stream =
      "REQ /ok HDR ua END\n"
      "REQ /x/../etc/passwd HDR ua END\n"
      "REQ /fine HDR probe-cmd.exe END\n";
  auto alerts = filter->Scan(stream);
  // Second message: one traversal + one passwd; third: decoy suppressed.
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(filter->rules()[alerts[0].rule_index].id, "TRAVERSAL");
  EXPECT_EQ(filter->rules()[alerts[1].rule_index].id, "PASSWD");
}

}  // namespace
}  // namespace cfgtag::nids
