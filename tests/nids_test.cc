#include <gtest/gtest.h>

#include "grammar/grammar_parser.h"
#include "nids/context_filter.h"

namespace cfgtag::nids {
namespace {

// A miniature request protocol: REQ <path> HDR <value> END
constexpr char kProtocol[] = R"grm(
PATH [a-zA-Z0-9/._-]+
WORD [a-zA-Z0-9/._-]+
%%
msg:  "REQ" path "HDR" hval "END";
path: PATH;
hval: WORD;
%%
)grm";

grammar::Grammar Protocol() {
  auto g = grammar::ParseGrammar(kProtocol);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

std::vector<Rule> WebRules() {
  return {
      {"TRAVERSAL", "../", "PATH", 3},
      {"PASSWD", "/etc/passwd", "PATH", 3},
      {"DROPPER", "cmd.exe", "PATH", 2},
  };
}

TEST(ContextFilterTest, AlertsOnPatternInContext) {
  auto filter = ContextFilter::Create(Protocol(), WebRules());
  ASSERT_TRUE(filter.ok()) << filter.status();
  auto alerts =
      filter->Scan("REQ /a/../../etc/passwd HDR curl END");
  // "../" twice + "/etc/passwd" once.
  ASSERT_EQ(alerts.size(), 3u);
  EXPECT_EQ(filter->rules()[alerts[0].rule_index].id, "TRAVERSAL");
  EXPECT_EQ(filter->rules()[alerts[2].rule_index].id, "PASSWD");
}

TEST(ContextFilterTest, IgnoresPatternOutsideContext) {
  auto filter = ContextFilter::Create(Protocol(), WebRules());
  ASSERT_TRUE(filter.ok());
  const std::string msg = "REQ /index.html HDR probe-/etc/passwd-x END";
  EXPECT_TRUE(filter->Scan(msg).empty());
  // The ungated baseline flags it.
  EXPECT_EQ(filter->ScanUngated(msg).size(), 1u);
}

TEST(ContextFilterTest, ScanContextFreeOmitsBoundRules) {
  // ScanContextFree is Scan()'s global pass alone: rules bound to a
  // context token must not fire from it, even when their pattern appears
  // in the stream. (ScanUngated is the anything-goes baseline.)
  std::vector<Rule> rules = WebRules();
  rules.push_back({"GLOBAL", "forbidden", "", 1});
  auto filter = ContextFilter::Create(Protocol(), rules);
  ASSERT_TRUE(filter.ok());
  const std::string msg =
      "REQ /a/../forbidden HDR decoy-/etc/passwd END";
  const auto free = filter->ScanContextFree(msg);
  ASSERT_EQ(free.size(), 1u);
  EXPECT_EQ(filter->rules()[free[0].rule_index].id, "GLOBAL");
  // ... while the ungated baseline fires on everything.
  EXPECT_GE(filter->ScanUngated(msg).size(), 3u);
  // And Scan() agrees with ScanContextFree on the global rule.
  bool scan_has_global = false;
  for (const Alert& a : filter->Scan(msg)) {
    if (filter->rules()[a.rule_index].id == "GLOBAL") scan_has_global = true;
  }
  EXPECT_TRUE(scan_has_global);
}

TEST(ContextFilterTest, SharedEndOffsetSpansAreBothScanned) {
  // Two token classes whose lexemes overlap: "123" is simultaneously a
  // NUM and a HEX, so both tags land on the same end offset. The span
  // computation must hand that span to BOTH tokens' rules — the old code
  // computed begin = prev_end + 1 for the second tag, failed the
  // begin <= end guard, and silently dropped its span.
  constexpr char kGrammar[] = R"grm(
NUM [0-9]+
HEX [0-9a-f]+
%%
msg: "GO" v "END";
v: NUM;
v: HEX;
%%
)grm";
  auto g = grammar::ParseGrammar(kGrammar);
  ASSERT_TRUE(g.ok()) << g.status();
  std::vector<Rule> rules = {
      {"NUM-123", "123", "NUM", 1},
      {"HEX-123", "123", "HEX", 1},
  };
  auto filter = ContextFilter::Create(std::move(g).value(), rules);
  ASSERT_TRUE(filter.ok()) << filter.status();
  const std::string msg = "GO 123 END";
  const auto alerts = filter->Scan(msg);
  ASSERT_EQ(alerts.size(), 2u) << "both co-located tags must be scanned";
  EXPECT_EQ(alerts[0].end, 5u);
  EXPECT_EQ(alerts[1].end, 5u);
  bool saw_num = false, saw_hex = false;
  for (const Alert& a : alerts) {
    saw_num |= filter->rules()[a.rule_index].id == "NUM-123";
    saw_hex |= filter->rules()[a.rule_index].id == "HEX-123";
  }
  EXPECT_TRUE(saw_num);
  EXPECT_TRUE(saw_hex);
}

TEST(ContextFilterTest, AlertOffsetsAreStreamAbsolute) {
  auto filter = ContextFilter::Create(Protocol(), WebRules());
  ASSERT_TRUE(filter.ok());
  const std::string msg = "REQ /x/cmd.exe HDR agent END";
  auto alerts = filter->Scan(msg);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].end, msg.find("cmd.exe") + 6);
}

TEST(ContextFilterTest, ContextFreeRulesMatchAnywhere) {
  std::vector<Rule> rules = WebRules();
  rules.push_back({"GLOBAL", "forbidden", "", 1});
  auto filter = ContextFilter::Create(Protocol(), rules);
  ASSERT_TRUE(filter.ok());
  auto alerts = filter->Scan("REQ /ok HDR very-forbidden-agent END");
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(filter->rules()[alerts[0].rule_index].id, "GLOBAL");
}

TEST(ContextFilterTest, HeaderRulesSeparateFromPathRules) {
  std::vector<Rule> rules = {
      {"PATH-EVIL", "evil", "PATH", 2},
      {"UA-BADBOT", "badbot", "WORD", 1},
  };
  auto filter = ContextFilter::Create(Protocol(), rules);
  ASSERT_TRUE(filter.ok());

  auto a1 = filter->Scan("REQ /evil HDR goodagent END");
  ASSERT_EQ(a1.size(), 1u);
  EXPECT_EQ(filter->rules()[a1[0].rule_index].id, "PATH-EVIL");

  auto a2 = filter->Scan("REQ /fine HDR badbot END");
  ASSERT_EQ(a2.size(), 1u);
  EXPECT_EQ(filter->rules()[a2[0].rule_index].id, "UA-BADBOT");

  // Crossed contexts: no alerts.
  EXPECT_TRUE(filter->Scan("REQ /badbot HDR evil END").empty());
}

TEST(ContextFilterTest, StatsAreFilled) {
  auto filter = ContextFilter::Create(Protocol(), WebRules());
  ASSERT_TRUE(filter.ok());
  ScanStats stats;
  const std::string msg = "REQ /a/../b HDR ua END";
  auto alerts = filter->Scan(msg, &stats);
  EXPECT_EQ(stats.bytes, msg.size());
  EXPECT_GE(stats.tokens, 5u);
  EXPECT_GE(stats.spans_scanned, 1u);
  EXPECT_EQ(stats.alerts, alerts.size());
}

TEST(ContextFilterTest, CreateRejections) {
  EXPECT_FALSE(ContextFilter::Create(Protocol(), {}).ok());
  EXPECT_FALSE(
      ContextFilter::Create(Protocol(), {{"X", "", "PATH", 1}}).ok());
  EXPECT_FALSE(
      ContextFilter::Create(Protocol(), {{"X", "p", "NOSUCH", 1}}).ok());
}

TEST(ContextFilterTest, MultipleMessagesWithResync) {
  hwgen::HwOptions opt;
  opt.tagger.arm_mode = tagger::ArmMode::kResync;
  auto filter = ContextFilter::Create(Protocol(), WebRules(), opt);
  ASSERT_TRUE(filter.ok());
  const std::string stream =
      "REQ /ok HDR ua END\n"
      "REQ /x/../etc/passwd HDR ua END\n"
      "REQ /fine HDR probe-cmd.exe END\n";
  auto alerts = filter->Scan(stream);
  // Second message: one traversal + one passwd; third: decoy suppressed.
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(filter->rules()[alerts[0].rule_index].id, "TRAVERSAL");
  EXPECT_EQ(filter->rules()[alerts[1].rule_index].id, "PASSWD");
}

}  // namespace
}  // namespace cfgtag::nids
