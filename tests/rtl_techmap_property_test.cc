// Property tests for the technology mapper over random netlists:
// structural invariants of the LUT cover must hold for any input design.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "rtl/netlist.h"
#include "rtl/techmap.h"

namespace cfgtag::rtl {
namespace {

// Builds a random synchronous netlist: layered random gates over inputs
// and a pool of feedback registers.
Netlist RandomNetlist(Rng& rng) {
  Netlist nl;
  std::vector<NodeId> pool;
  const int num_inputs = 2 + static_cast<int>(rng.NextIndex(6));
  for (int i = 0; i < num_inputs; ++i) {
    pool.push_back(nl.AddInput("in" + std::to_string(i)));
  }
  // Feedback registers (patched at the end).
  std::vector<NodeId> regs;
  const int num_regs = static_cast<int>(rng.NextIndex(4));
  for (int i = 0; i < num_regs; ++i) {
    regs.push_back(nl.RegPlaceholder(kInvalidNode, rng.NextBool(),
                                     "r" + std::to_string(i)));
    pool.push_back(regs.back());
  }
  const int num_gates = 5 + static_cast<int>(rng.NextIndex(60));
  for (int gate = 0; gate < num_gates; ++gate) {
    const int kind = static_cast<int>(rng.NextIndex(4));
    NodeId built = kInvalidNode;
    auto pick = [&] { return pool[rng.NextIndex(pool.size())]; };
    switch (kind) {
      case 0:
      case 1: {
        std::vector<NodeId> ins;
        const int arity = 2 + static_cast<int>(rng.NextIndex(7));
        for (int a = 0; a < arity; ++a) ins.push_back(pick());
        built = kind == 0 ? nl.And(ins) : nl.Or(ins);
        break;
      }
      case 2:
        built = nl.Not(pick());
        break;
      default:
        built = nl.Xor(pick(), pick());
        break;
    }
    pool.push_back(built);
    if (rng.NextBool(0.2)) pool.push_back(nl.Reg(built));
  }
  for (size_t i = 0; i < regs.size(); ++i) {
    nl.SetRegD(regs[i], pool[rng.NextIndex(pool.size())]);
  }
  const int num_outputs = 1 + static_cast<int>(rng.NextIndex(4));
  for (int i = 0; i < num_outputs; ++i) {
    nl.MarkOutput(pool[pool.size() - 1 - rng.NextIndex(pool.size() / 2 + 1)],
                  "out" + std::to_string(i));
  }
  return nl;
}

class TechMapPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(TechMapPropertyTest, CoverInvariantsHold) {
  const auto [seed, k] = GetParam();
  Rng rng(seed * 2654435761ULL + 3);
  Netlist nl = RandomNetlist(rng);
  ASSERT_TRUE(nl.Validate().ok());

  auto mapped_or = TechMapper(k).Map(nl);
  ASSERT_TRUE(mapped_or.ok()) << mapped_or.status();
  const MappedNetlist& m = *mapped_or;

  // 1. Every LUT has between 1 and k inputs, all valid net ids.
  for (const auto& net : m.nets) {
    if (net.kind != MappedNetlist::NetKind::kLut) {
      EXPECT_TRUE(net.inputs.empty());
      continue;
    }
    EXPECT_GE(net.inputs.size(), 1u);
    EXPECT_LE(net.inputs.size(), static_cast<size_t>(k));
    for (auto in : net.inputs) ASSERT_LT(in, m.nets.size());
  }

  // 2. The cover is acyclic over LUT edges (DFS).
  std::vector<int> state(m.nets.size(), 0);
  std::function<bool(MappedNetlist::NetId)> acyclic =
      [&](MappedNetlist::NetId id) {
        if (state[id] == 1) return false;
        if (state[id] == 2) return true;
        state[id] = 1;
        for (auto in : m.nets[id].inputs) {
          if (!acyclic(in)) return false;
        }
        state[id] = 2;
        return true;
      };
  for (MappedNetlist::NetId id = 0; id < m.nets.size(); ++id) {
    EXPECT_TRUE(acyclic(id)) << "combinational loop through net " << id;
  }

  // 3. Every register pin and output references a valid net.
  ASSERT_EQ(m.reg_nets.size(), m.reg_pins.size());
  for (const auto& pins : m.reg_pins) {
    ASSERT_LT(pins.d, m.nets.size());
    if (pins.enable != MappedNetlist::kNoNet) {
      ASSERT_LT(pins.enable, m.nets.size());
    }
  }
  for (const auto& out : m.outputs) ASSERT_LT(out.net, m.nets.size());

  // 4. Fan-out bookkeeping: each net's recorded fanout equals the number
  // of sink pins referencing it.
  std::vector<uint32_t> counted(m.nets.size(), 0);
  for (const auto& net : m.nets) {
    for (auto in : net.inputs) counted[in]++;
  }
  for (const auto& pins : m.reg_pins) {
    counted[pins.d]++;
    if (pins.enable != MappedNetlist::kNoNet) counted[pins.enable]++;
  }
  for (const auto& out : m.outputs) counted[out.net]++;
  for (MappedNetlist::NetId id = 0; id < m.nets.size(); ++id) {
    EXPECT_EQ(m.nets[id].fanout, counted[id]) << "net " << id;
  }

  // 5. Register count matches the source netlist's live registers at most.
  EXPECT_LE(m.NumFfs(), nl.ComputeStats().num_regs);
}

INSTANTIATE_TEST_SUITE_P(
    RandomDesigns, TechMapPropertyTest,
    ::testing::Combine(::testing::Range<uint64_t>(0, 15),
                       ::testing::Values(4, 6)));

}  // namespace
}  // namespace cfgtag::rtl
