// WorkerPool: every index runs exactly once regardless of pool size; and
// ShardSplitPoints: shard starts are delimiter-aligned, bounded, and
// degrade to {0} when the stream cannot be split.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/worker_pool.h"
#include "regex/char_class.h"

namespace cfgtag::core {
namespace {

TEST(WorkerPoolTest, RunIndexedCoversEveryIndexOnce) {
  for (int threads : {1, 4}) {
    WorkerPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    constexpr size_t kCount = 257;
    std::vector<std::atomic<int>> hits(kCount);
    pool.RunIndexed(kCount, [&](size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(WorkerPoolTest, RunIndexedZeroAndOne) {
  WorkerPool pool(2);
  pool.RunIndexed(0, [](size_t) { FAIL() << "no index to run"; });
  int runs = 0;
  pool.RunIndexed(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++runs;
  });
  EXPECT_EQ(runs, 1);
}

TEST(WorkerPoolTest, SubmitExecutes) {
  WorkerPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&] { ran.fetch_add(1); });
  }
  // RunIndexed's barrier also drains previously submitted work before
  // returning only if the same workers pick it up — so poll instead.
  while (ran.load() < 16) std::this_thread::yield();
  EXPECT_EQ(ran.load(), 16);
}

TEST(ShardSplitPointsTest, StartsAreDelimiterAligned) {
  std::string stream;
  for (int i = 0; i < 200; ++i) {
    stream += "line-" + std::to_string(i) + "-payload\n";
  }
  const auto starts =
      ShardSplitPoints(stream, regex::CharClass::Of('\n'), 4, 64);
  ASSERT_FALSE(starts.empty());
  EXPECT_EQ(starts.front(), 0u);
  EXPECT_LE(starts.size(), 4u);
  EXPECT_GT(starts.size(), 1u) << "stream is large enough to split";
  for (size_t i = 1; i < starts.size(); ++i) {
    EXPECT_GT(starts[i], starts[i - 1]);
    EXPECT_LT(starts[i], stream.size());
    EXPECT_EQ(stream[starts[i] - 1], '\n')
        << "shard must begin on the byte after a delimiter";
    EXPECT_GE(starts[i] - starts[i - 1], 64u) << "min_shard_bytes";
  }
}

TEST(ShardSplitPointsTest, SmallOrDelimiterFreeStreamsDoNotSplit) {
  const regex::CharClass nl = regex::CharClass::Of('\n');
  EXPECT_EQ(ShardSplitPoints("tiny\nstream\n", nl, 8, 1024),
            std::vector<size_t>{0});
  const std::string no_delims(8192, 'x');
  EXPECT_EQ(ShardSplitPoints(no_delims, nl, 8, 1024),
            std::vector<size_t>{0});
  EXPECT_EQ(ShardSplitPoints("", nl, 8, 1), std::vector<size_t>{0});
}

}  // namespace
}  // namespace cfgtag::core
