#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/events.h"

namespace cfgtag::obs {
namespace {

TEST(FlightRecorderTest, RecordsAndSnapshotsInOrder) {
  FlightRecorder rec(/*capacity=*/8);
  rec.Record(EventKind::kNidsAlert, /*correlation_id=*/7, /*a=*/100, /*b=*/2,
             "rule-a");
  rec.Record(EventKind::kDfaCacheFlush, 0, 1 << 20, 3, "flush");
  const std::vector<Event> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kNidsAlert);
  EXPECT_EQ(events[0].correlation_id, 7u);
  EXPECT_EQ(events[0].a, 100);
  EXPECT_EQ(events[0].b, 2);
  EXPECT_STREQ(events[0].detail, "rule-a");
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[1].kind, EventKind::kDfaCacheFlush);
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_LE(events[0].t_us, events[1].t_us);
}

TEST(FlightRecorderTest, RingOverwritesOldestAndCountsDrops) {
  FlightRecorder rec(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    rec.Record(EventKind::kCustom, 0, i, 0, "e");
  }
  const std::vector<Event> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The tail survives: events 7..10 (a = 6..9), oldest first.
  EXPECT_EQ(events[0].a, 6);
  EXPECT_EQ(events[3].a, 9);
  EXPECT_EQ(rec.total_recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder rec(/*capacity=*/5);
  EXPECT_EQ(rec.capacity(), 8u);
}

TEST(FlightRecorderTest, LongDetailIsTruncatedNotOverflowed) {
  FlightRecorder rec(/*capacity=*/2);
  const std::string long_detail(500, 'x');
  rec.Record(EventKind::kCustom, 0, 0, 0, long_detail);
  const std::vector<Event> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  const size_t len = std::string(events[0].detail).size();
  EXPECT_LT(len, sizeof(events[0].detail));
  EXPECT_GT(len, 0u);
}

TEST(FlightRecorderTest, WriteJsonCarriesKindNamesAndCounts) {
  FlightRecorder rec(/*capacity=*/8);
  rec.Record(EventKind::kSlowShard, 3, 4096, 1, "slow stream shard");
  std::ostringstream os;
  rec.WriteJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"recorded\": 1"), std::string::npos);
  EXPECT_NE(json.find("slow_shard"), std::string::npos);
  EXPECT_NE(json.find("\"correlation_id\": 3"), std::string::npos);
  EXPECT_NE(json.find("slow stream shard"), std::string::npos);
}

TEST(FlightRecorderTest, DumpToFdWritesOneLinePerEvent) {
  FlightRecorder rec(/*capacity=*/8);
  rec.Record(EventKind::kNidsAlert, 11, 42, 2, "sig-1");
  rec.Record(EventKind::kStatusError, 0, 0, 0, "grammar: bad");
  char path[] = "/tmp/cfgtag_events_test_XXXXXX";
  const int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  rec.DumpTo(fd);
  close(fd);
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  std::remove(path);
  // A JSON line per event (plus possible header/footer lines).
  size_t event_lines = 0;
  for (const std::string& l : lines) {
    if (l.find("nids_alert") != std::string::npos ||
        l.find("status_error") != std::string::npos) {
      ++event_lines;
    }
  }
  EXPECT_EQ(event_lines, 2u);
}

TEST(FlightRecorderTest, ConcurrentWritersLoseNothingWhenUnderCapacity) {
  FlightRecorder rec(/*capacity=*/4096);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 256;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        rec.Record(EventKind::kCustom, 0, t, i, "w");
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(rec.total_recorded(),
            static_cast<uint64_t>(kThreads * kPerThread));
  const std::vector<Event> events = rec.Snapshot();
  EXPECT_EQ(events.size(), static_cast<size_t>(kThreads * kPerThread));
  // Sequence numbers are unique and ascending in the snapshot.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
}

// Seqlock regression hammer: a small ring forces writers to overwrite
// slots that readers are copying, so every read races a write. Each event
// is self-describing (detail = "w<a>-<b>", correlation_id = 1000 + a), so
// a torn copy that slipped past the seqlock validation shows up as an
// internally inconsistent event. Before the payload moved into atomic
// words, this was the formal data race TSan flagged in Snapshot().
TEST(FlightRecorderTest, SeqlockHammerNeverYieldsTornEvents) {
  FlightRecorder rec(/*capacity=*/64);  // small ring: constant overwrites
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 4000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> validated{0};

  auto check = [&](const Event& e) {
    char want[sizeof(e.detail)];
    std::snprintf(want, sizeof(want), "w%lld-%lld",
                  static_cast<long long>(e.a), static_cast<long long>(e.b));
    const bool consistent =
        e.kind == EventKind::kCustom && e.a >= 0 && e.a < kWriters &&
        e.b >= 0 && e.b < kPerWriter &&
        e.correlation_id == 1000u + static_cast<uint64_t>(e.a) &&
        std::string(e.detail) == want;
    if (!consistent) torn.fetch_add(1, std::memory_order_relaxed);
    validated.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<Event> events = rec.Snapshot();
        uint64_t prev_seq = 0;
        for (const Event& e : events) {
          EXPECT_GT(e.seq, prev_seq);  // unique, ascending
          prev_seq = e.seq;
          check(e);
        }
      }
    });
  }
  // The async-signal-safe reader races the same writers through its own
  // ReadSlot path.
  readers.emplace_back([&] {
    const int devnull = ::open("/dev/null", O_WRONLY);
    ASSERT_GE(devnull, 0);
    while (!stop.load(std::memory_order_acquire)) {
      rec.DumpTo(devnull);
    }
    ::close(devnull);
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&rec, t] {
      char detail[32];
      for (int i = 0; i < kPerWriter; ++i) {
        std::snprintf(detail, sizeof(detail), "w%d-%d", t, i);
        rec.Record(EventKind::kCustom, 1000u + static_cast<uint64_t>(t), t,
                   i, detail);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& r : readers) r.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(validated.load(), 0u);
  EXPECT_EQ(rec.total_recorded(),
            static_cast<uint64_t>(kWriters * kPerWriter));
  // The quiesced ring holds exactly the last `capacity` events, all valid.
  const std::vector<Event> final_events = rec.Snapshot();
  EXPECT_EQ(final_events.size(), rec.capacity());
  for (const Event& e : final_events) check(e);
  EXPECT_EQ(torn.load(), 0u);
}

TEST(CorrelationTest, ScopesNestAndRestore) {
  EXPECT_EQ(CurrentCorrelationId(), 0u);
  const uint64_t outer_id = NextCorrelationId();
  {
    CorrelationScope outer(outer_id);
    EXPECT_EQ(CurrentCorrelationId(), outer_id);
    const uint64_t inner_id = NextCorrelationId();
    EXPECT_NE(inner_id, outer_id);
    {
      CorrelationScope inner(inner_id);
      EXPECT_EQ(CurrentCorrelationId(), inner_id);
    }
    EXPECT_EQ(CurrentCorrelationId(), outer_id);
  }
  EXPECT_EQ(CurrentCorrelationId(), 0u);
}

TEST(CorrelationTest, ScopeIsPerThread) {
  CorrelationScope scope(NextCorrelationId());
  uint64_t seen = 1;
  std::thread worker([&seen] { seen = CurrentCorrelationId(); });
  worker.join();
  EXPECT_EQ(seen, 0u);
}

TEST(CorrelationTest, RecordEventPicksUpTheCurrentScope) {
  FlightRecorder& rec = FlightRecorder::Default();
  rec.Clear();
  const uint64_t id = NextCorrelationId();
  {
    CorrelationScope scope(id);
    RecordEvent(EventKind::kCustom, 1, 2, "scoped");
  }
  RecordEvent(EventKind::kCustom, 3, 4, "unscoped");
  const std::vector<Event> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].correlation_id, id);
  EXPECT_EQ(events[1].correlation_id, 0u);
  rec.Clear();
}

TEST(EventKindTest, NamesAreStableIdentifiers) {
  EXPECT_STREQ(EventKindName(EventKind::kStatusError), "status_error");
  EXPECT_STREQ(EventKindName(EventKind::kNidsAlert), "nids_alert");
  EXPECT_STREQ(EventKindName(EventKind::kDfaCacheFlush), "dfa_cache_flush");
  EXPECT_STREQ(EventKindName(EventKind::kDfaCacheFallback),
               "dfa_cache_fallback");
  EXPECT_STREQ(EventKindName(EventKind::kSlowShard), "slow_shard");
  EXPECT_STREQ(EventKindName(EventKind::kSessionPoolDrop),
               "session_pool_drop");
}

}  // namespace
}  // namespace cfgtag::obs
