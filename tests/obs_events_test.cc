#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/events.h"

namespace cfgtag::obs {
namespace {

TEST(FlightRecorderTest, RecordsAndSnapshotsInOrder) {
  FlightRecorder rec(/*capacity=*/8);
  rec.Record(EventKind::kNidsAlert, /*correlation_id=*/7, /*a=*/100, /*b=*/2,
             "rule-a");
  rec.Record(EventKind::kDfaCacheFlush, 0, 1 << 20, 3, "flush");
  const std::vector<Event> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kNidsAlert);
  EXPECT_EQ(events[0].correlation_id, 7u);
  EXPECT_EQ(events[0].a, 100);
  EXPECT_EQ(events[0].b, 2);
  EXPECT_STREQ(events[0].detail, "rule-a");
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[1].kind, EventKind::kDfaCacheFlush);
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_LE(events[0].t_us, events[1].t_us);
}

TEST(FlightRecorderTest, RingOverwritesOldestAndCountsDrops) {
  FlightRecorder rec(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    rec.Record(EventKind::kCustom, 0, i, 0, "e");
  }
  const std::vector<Event> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The tail survives: events 7..10 (a = 6..9), oldest first.
  EXPECT_EQ(events[0].a, 6);
  EXPECT_EQ(events[3].a, 9);
  EXPECT_EQ(rec.total_recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder rec(/*capacity=*/5);
  EXPECT_EQ(rec.capacity(), 8u);
}

TEST(FlightRecorderTest, LongDetailIsTruncatedNotOverflowed) {
  FlightRecorder rec(/*capacity=*/2);
  const std::string long_detail(500, 'x');
  rec.Record(EventKind::kCustom, 0, 0, 0, long_detail);
  const std::vector<Event> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  const size_t len = std::string(events[0].detail).size();
  EXPECT_LT(len, sizeof(events[0].detail));
  EXPECT_GT(len, 0u);
}

TEST(FlightRecorderTest, WriteJsonCarriesKindNamesAndCounts) {
  FlightRecorder rec(/*capacity=*/8);
  rec.Record(EventKind::kSlowShard, 3, 4096, 1, "slow stream shard");
  std::ostringstream os;
  rec.WriteJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"recorded\": 1"), std::string::npos);
  EXPECT_NE(json.find("slow_shard"), std::string::npos);
  EXPECT_NE(json.find("\"correlation_id\": 3"), std::string::npos);
  EXPECT_NE(json.find("slow stream shard"), std::string::npos);
}

TEST(FlightRecorderTest, DumpToFdWritesOneLinePerEvent) {
  FlightRecorder rec(/*capacity=*/8);
  rec.Record(EventKind::kNidsAlert, 11, 42, 2, "sig-1");
  rec.Record(EventKind::kStatusError, 0, 0, 0, "grammar: bad");
  char path[] = "/tmp/cfgtag_events_test_XXXXXX";
  const int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  rec.DumpTo(fd);
  close(fd);
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  std::remove(path);
  // A JSON line per event (plus possible header/footer lines).
  size_t event_lines = 0;
  for (const std::string& l : lines) {
    if (l.find("nids_alert") != std::string::npos ||
        l.find("status_error") != std::string::npos) {
      ++event_lines;
    }
  }
  EXPECT_EQ(event_lines, 2u);
}

TEST(FlightRecorderTest, ConcurrentWritersLoseNothingWhenUnderCapacity) {
  FlightRecorder rec(/*capacity=*/4096);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 256;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        rec.Record(EventKind::kCustom, 0, t, i, "w");
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(rec.total_recorded(),
            static_cast<uint64_t>(kThreads * kPerThread));
  const std::vector<Event> events = rec.Snapshot();
  EXPECT_EQ(events.size(), static_cast<size_t>(kThreads * kPerThread));
  // Sequence numbers are unique and ascending in the snapshot.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
}

TEST(CorrelationTest, ScopesNestAndRestore) {
  EXPECT_EQ(CurrentCorrelationId(), 0u);
  const uint64_t outer_id = NextCorrelationId();
  {
    CorrelationScope outer(outer_id);
    EXPECT_EQ(CurrentCorrelationId(), outer_id);
    const uint64_t inner_id = NextCorrelationId();
    EXPECT_NE(inner_id, outer_id);
    {
      CorrelationScope inner(inner_id);
      EXPECT_EQ(CurrentCorrelationId(), inner_id);
    }
    EXPECT_EQ(CurrentCorrelationId(), outer_id);
  }
  EXPECT_EQ(CurrentCorrelationId(), 0u);
}

TEST(CorrelationTest, ScopeIsPerThread) {
  CorrelationScope scope(NextCorrelationId());
  uint64_t seen = 1;
  std::thread worker([&seen] { seen = CurrentCorrelationId(); });
  worker.join();
  EXPECT_EQ(seen, 0u);
}

TEST(CorrelationTest, RecordEventPicksUpTheCurrentScope) {
  FlightRecorder& rec = FlightRecorder::Default();
  rec.Clear();
  const uint64_t id = NextCorrelationId();
  {
    CorrelationScope scope(id);
    RecordEvent(EventKind::kCustom, 1, 2, "scoped");
  }
  RecordEvent(EventKind::kCustom, 3, 4, "unscoped");
  const std::vector<Event> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].correlation_id, id);
  EXPECT_EQ(events[1].correlation_id, 0u);
  rec.Clear();
}

TEST(EventKindTest, NamesAreStableIdentifiers) {
  EXPECT_STREQ(EventKindName(EventKind::kStatusError), "status_error");
  EXPECT_STREQ(EventKindName(EventKind::kNidsAlert), "nids_alert");
  EXPECT_STREQ(EventKindName(EventKind::kDfaCacheFlush), "dfa_cache_flush");
  EXPECT_STREQ(EventKindName(EventKind::kDfaCacheFallback),
               "dfa_cache_fallback");
  EXPECT_STREQ(EventKindName(EventKind::kSlowShard), "slow_shard");
  EXPECT_STREQ(EventKindName(EventKind::kSessionPoolDrop),
               "session_pool_drop");
}

}  // namespace
}  // namespace cfgtag::obs
