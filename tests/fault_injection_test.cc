// Fault injection: mutate the generated netlist (stuck-at faults, gate
// substitutions, dropped fan-ins) and assert that the verification
// machinery — random-vector equivalence and tag comparison — actually
// catches the corruption. A verifier that never fails on broken hardware
// is worthless; these tests measure its teeth.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/token_tagger.h"
#include "grammar/grammar_parser.h"
#include "rtl/optimize.h"
#include "rtl/serialize.h"
#include "rtl/simulator.h"
#include "xmlrpc/message_gen.h"
#include "xmlrpc/xmlrpc_grammar.h"

namespace cfgtag {
namespace {

using rtl::Netlist;
using rtl::Node;
using rtl::NodeId;
using rtl::NodeKind;

grammar::Grammar MustParse(const std::string& text) {
  auto g = grammar::ParseGrammar(text);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

// Clones a netlist via the serializer (exact ids), then applies `mutate`
// to the serialized text-level structure by re-parsing and patching nodes
// through a rebuilt Netlist. Returns nullopt if the mutation produced an
// invalid netlist (rejected by Validate) — callers then pick another site.
struct Mutator {
  // Kinds of single-site faults.
  enum class Fault { kStuckAt0, kStuckAt1, kAndToOr, kDropFanin, kFlipInit };

  // Applies the fault at gate/register index `site` (counted over eligible
  // nodes). Returns the mutated netlist or an error if inapplicable.
  static StatusOr<Netlist> Apply(const Netlist& input, Fault fault,
                                 size_t site) {
    // Round-trip through the serializer to get a private, editable copy.
    auto copy = rtl::ParseNetlist(rtl::SerializeNetlist(input));
    CFGTAG_RETURN_IF_ERROR(copy.status());

    // Serialize/parse again with a patch applied at text level is brittle;
    // instead rebuild node-by-node with the fault applied.
    const Netlist& src = *copy;
    Netlist out;
    size_t seen = 0;
    bool applied = false;
    std::vector<NodeId> map(src.NumNodes(), rtl::kInvalidNode);
    map[0] = 0;
    map[1] = 1;
    // Pass 1: registers as placeholders.
    for (NodeId id = 2; id < src.NumNodes(); ++id) {
      const Node& n = src.node(id);
      if (n.kind == NodeKind::kReg) {
        bool init = n.init;
        if (fault == Fault::kFlipInit && seen++ == site) {
          init = !init;
          applied = true;
        }
        map[id] = out.RegPlaceholder(rtl::kInvalidNode, init, n.name);
      }
    }
    // Pass 2: everything else in order.
    for (NodeId id = 2; id < src.NumNodes(); ++id) {
      const Node& n = src.node(id);
      if (n.kind == NodeKind::kReg) continue;
      if (n.kind == NodeKind::kInput) {
        map[id] = out.AddInput(n.name);
        continue;
      }
      std::vector<NodeId> fanin;
      for (NodeId f : n.fanin) fanin.push_back(map[f]);
      NodeKind kind = n.kind;
      const bool is_gate = kind == NodeKind::kAnd || kind == NodeKind::kOr;
      if (is_gate) {
        const size_t my_site = seen++;
        if (my_site == site) {
          applied = true;
          switch (fault) {
            case Fault::kStuckAt0:
              map[id] = out.Const0();
              continue;
            case Fault::kStuckAt1:
              map[id] = out.Const1();
              continue;
            case Fault::kAndToOr:
              kind = kind == NodeKind::kAnd ? NodeKind::kOr : NodeKind::kAnd;
              break;
            case Fault::kDropFanin:
              if (fanin.size() > 2) fanin.pop_back();
              break;
            case Fault::kFlipInit:
              break;  // handled in pass 1
          }
        }
      }
      switch (kind) {
        case NodeKind::kAnd: map[id] = out.And(fanin); break;
        case NodeKind::kOr: map[id] = out.Or(fanin); break;
        case NodeKind::kNot: map[id] = out.Not(fanin[0]); break;
        case NodeKind::kXor: map[id] = out.Xor(fanin[0], fanin[1]); break;
        case NodeKind::kBuf: map[id] = out.Buf(fanin[0], n.name); break;
        default: break;
      }
    }
    // Pass 3: register pins.
    for (NodeId id = 2; id < src.NumNodes(); ++id) {
      const Node& n = src.node(id);
      if (n.kind != NodeKind::kReg) continue;
      out.SetRegD(map[id], map[n.fanin[0]]);
      if (n.enable != rtl::kInvalidNode) {
        out.SetRegEnable(map[id], map[n.enable]);
      }
    }
    for (const rtl::OutputPort& port : src.outputs()) {
      out.MarkOutput(map[port.node], port.name);
    }
    if (!applied) return NotFoundError("site out of range");
    CFGTAG_RETURN_IF_ERROR(out.Validate());
    return out;
  }
};

// Drives both netlists with the same byte stream (inputs matched by name
// d0..d7) and reports whether any output ever diverges. Byte-level
// stimulus exercises the decoder/chain/arm logic far more densely than
// random bit vectors, which almost never spell valid tokens.
bool DivergesOnStream(const Netlist& a, const Netlist& b,
                      const std::string& bytes) {
  auto sim_a = rtl::Simulator::Create(&a);
  auto sim_b = rtl::Simulator::Create(&b);
  EXPECT_TRUE(sim_a.ok());
  EXPECT_TRUE(sim_b.ok());
  std::vector<std::pair<NodeId, NodeId>> ins;
  for (NodeId ia : a.inputs()) {
    const NodeId ib = b.FindByName(a.node(ia).name);
    EXPECT_NE(ib, rtl::kInvalidNode);
    ins.emplace_back(ia, ib);
  }
  // 8 inputs named d0..d7, LSB first — the generator's layout.
  const std::string padded = bytes + std::string(16, '\n');
  for (char ch : padded) {
    const unsigned char c = static_cast<unsigned char>(ch);
    for (const auto& [ia, ib] : ins) {
      const int bit = a.node(ia).name[1] - '0';
      sim_a->SetInput(ia, (c >> bit) & 1);
      sim_b->SetInput(ib, (c >> bit) & 1);
    }
    sim_a->Step();
    sim_b->Step();
    for (const rtl::OutputPort& oa : a.outputs()) {
      for (const rtl::OutputPort& ob : b.outputs()) {
        if (oa.name == ob.name &&
            sim_a->Get(oa.node) != sim_b->Get(ob.node)) {
          return true;
        }
      }
    }
  }
  return false;
}

TEST(FaultInjectionTest, EquivalenceCheckerCatchesGateFaults) {
  auto compiled = core::CompiledTagger::Compile(MustParse(R"(
NUM [0-9]+
%%
s: "<n>" NUM "</n>";
%%
)"));
  ASSERT_TRUE(compiled.ok());
  const Netlist& golden = compiled->hardware().netlist;

  // Conforming stimulus covering every byte the grammar decodes (all ten
  // digits, every tag character) plus near-miss variants.
  const std::string stimulus =
      "<n>1234567890</n> <n>7</n> <x>9</x> <n>45</n <nn>1</n> "
      "<n>05</n> <n>678</n>";

  Rng rng(42);
  int caught = 0, injected = 0;
  for (auto fault : {Mutator::Fault::kStuckAt0, Mutator::Fault::kStuckAt1,
                     Mutator::Fault::kAndToOr}) {
    for (int trial = 0; trial < 6; ++trial) {
      auto mutated = Mutator::Apply(golden, fault, rng.NextIndex(60));
      if (!mutated.ok()) continue;
      ++injected;
      caught += DivergesOnStream(golden, *mutated, stimulus);
    }
  }
  ASSERT_GE(injected, 10);
  // Some faults are logically masked (e.g. inside a never-armed path), but
  // the majority must be detected.
  EXPECT_GE(caught * 100 / injected, 60) << caught << "/" << injected;
}

TEST(FaultInjectionTest, TagStreamComparisonCatchesFaultsOnRealInput) {
  // Drive the mutated netlist with real conforming input via the
  // cycle-accurate harness and compare tags — this is the stronger oracle
  // because conforming bytes exercise the arm/chain logic densely.
  auto g = MustParse(R"(
NUM [0-9]+
%%
s: "<n>" NUM "</n>";
%%
)");
  auto compiled = core::CompiledTagger::Compile(g.Clone());
  ASSERT_TRUE(compiled.ok());
  const auto golden_tags = compiled->Tag("<n>123</n>");
  ASSERT_FALSE(golden_tags.empty());

  int caught = 0, injected = 0;
  for (size_t site = 0;; ++site) {
    auto mutated = Mutator::Apply(compiled->hardware().netlist,
                                  Mutator::Fault::kStuckAt0, site);
    if (!mutated.ok()) break;  // ran out of gate sites
    ++injected;
    caught += DivergesOnStream(compiled->hardware().netlist, *mutated,
                               "<n>1234567890</n> <n>9</n> <n>05</n>");
  }
  ASSERT_GE(injected, 20);
  EXPECT_GE(caught * 100 / injected, 50) << caught << "/" << injected;
}

TEST(FaultInjectionTest, FlippedRegisterInitIsDetected) {
  // Flipping the boot register's init kills the start pulse: the anchored
  // tagger then tags nothing — the equivalence checker must see outputs
  // diverge.
  auto compiled = core::CompiledTagger::Compile(MustParse(R"(
%%
s: "ab";
%%
)"));
  ASSERT_TRUE(compiled.ok());
  const Netlist& golden = compiled->hardware().netlist;
  int caught = 0, injected = 0;
  // Sweep every register; most init flips wash out in a cycle or two
  // (pipeline registers reload immediately), but the boot register's init
  // IS the start pulse — flipping it must kill the anchored match.
  for (size_t site = 0;; ++site) {
    auto mutated =
        Mutator::Apply(golden, Mutator::Fault::kFlipInit, site);
    if (!mutated.ok()) break;
    ++injected;
    caught += DivergesOnStream(golden, *mutated, "ab ab");
  }
  ASSERT_GE(injected, 4);
  EXPECT_GE(caught, 1);
}

}  // namespace
}  // namespace cfgtag
