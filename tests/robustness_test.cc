// Edge-case robustness: full 8-bit alphabets, binary delimiters, degenerate
// grammars, long tokens, empty inputs — each cross-checked between the
// functional model and the gate-level netlist.

#include <gtest/gtest.h>

#include "core/token_tagger.h"
#include "grammar/grammar_parser.h"

namespace cfgtag {
namespace {

using core::CompiledTagger;

grammar::Grammar MustParse(const std::string& text) {
  auto g = grammar::ParseGrammar(text);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

void ExpectEnginesAgree(const CompiledTagger& tagger,
                        const std::string& input) {
  auto hw = tagger.TagCycleAccurate(input);
  ASSERT_TRUE(hw.ok()) << hw.status();
  EXPECT_EQ(tagger.Tag(input), *hw) << "input size " << input.size();
}

TEST(RobustnessTest, HighBytesDecodeCorrectly) {
  // A token made of bytes with the top bit set: the Fig. 4 AND decoders
  // must handle all 8 bits.
  auto compiled = CompiledTagger::Compile(
      MustParse("HI [\\x80-\\xff]+\n%%\ns: \"<\" HI \">\";\n%%\n"));
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  std::string input = "<";
  input += '\x80';
  input += '\xAB';
  input += '\xFF';
  input += '>';
  auto tags = compiled->Tag(input);
  ASSERT_EQ(tags.size(), 3u);
  EXPECT_EQ(tags[1].end, 3u);  // HI covers bytes 1..3
  ExpectEnginesAgree(*compiled, input);
}

TEST(RobustnessTest, ExactHighByteLiteral) {
  auto compiled = CompiledTagger::Compile(
      MustParse("MAGIC \\xde\\xad\\xbe\\xef\n%%\ns: MAGIC;\n%%\n"));
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  const std::string magic = "\xde\xad\xbe\xef";
  auto tags = compiled->Tag(magic);
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0].end, 3u);
  EXPECT_TRUE(compiled->Tag("\xde\xad\xbe\xee").empty());
  ExpectEnginesAgree(*compiled, magic);
}

TEST(RobustnessTest, NulByteDelimiter) {
  hwgen::HwOptions opt;
  opt.tagger.delimiters = regex::CharClass::Of('\0');
  auto compiled = CompiledTagger::Compile(
      MustParse("%%\ns: \"ab\" \"cd\";\n%%\n"), opt);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  std::string input = "ab";
  input += '\0';
  input += '\0';
  input += "cd";
  EXPECT_EQ(compiled->Tag(input).size(), 2u);
  ExpectEnginesAgree(*compiled, input);
}

TEST(RobustnessTest, NoDelimitersAtAll) {
  hwgen::HwOptions opt;
  opt.tagger.delimiters = regex::CharClass();  // empty set
  auto compiled = CompiledTagger::Compile(
      MustParse("%%\ns: \"ab\" \"cd\";\n%%\n"), opt);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  // Only strictly adjacent tokens can chain.
  EXPECT_EQ(compiled->Tag("abcd").size(), 2u);
  EXPECT_EQ(compiled->Tag("ab cd").size(), 1u);
  ExpectEnginesAgree(*compiled, "abcd");
  ExpectEnginesAgree(*compiled, "ab cd");
}

TEST(RobustnessTest, SingleSingleByteToken) {
  auto compiled = CompiledTagger::Compile(MustParse("%%\ns: \"x\";\n%%\n"));
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  auto tags = compiled->Tag("x");
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0].end, 0u);
  ExpectEnginesAgree(*compiled, "x");
  ExpectEnginesAgree(*compiled, "y");
}

TEST(RobustnessTest, EmptyAndDelimiterOnlyInputs) {
  auto compiled = CompiledTagger::Compile(MustParse("%%\ns: \"x\";\n%%\n"));
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  EXPECT_TRUE(compiled->Tag("").empty());
  EXPECT_TRUE(compiled->Tag("   \t\n  ").empty());
  ExpectEnginesAgree(*compiled, "");
  ExpectEnginesAgree(*compiled, "   \t\n  ");
  // Arms survive the delimiters: the token still fires afterwards.
  auto tags = compiled->Tag("   \t x");
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0].end, 5u);
}

TEST(RobustnessTest, VeryLongLiteralToken) {
  std::string lit(64, 'q');
  auto compiled = CompiledTagger::Compile(
      MustParse("%%\ns: \"" + lit + "\";\n%%\n"));
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  auto tags = compiled->Tag(lit);
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0].end, 63u);
  EXPECT_TRUE(compiled->Tag(lit.substr(0, 63)).empty());
  ExpectEnginesAgree(*compiled, lit);
}

TEST(RobustnessTest, AnyByteClassToken) {
  // [^\n]+ spans 255 byte values: exercises the complement decoder.
  auto compiled = CompiledTagger::Compile(
      MustParse("LINE [^\\n]+\n%%\ns: LINE;\n%%\n"));
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  std::string input = "any\x01\x02\x80text";
  auto tags = compiled->Tag(input);
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0].end, input.size() - 1);
  ExpectEnginesAgree(*compiled, input);
}

TEST(RobustnessTest, RepeatedCompilationIsDeterministic) {
  auto a = CompiledTagger::Compile(
      MustParse("NUM [0-9]+\n%%\ns: \"<\" NUM \">\";\n%%\n"));
  auto b = CompiledTagger::Compile(
      MustParse("NUM [0-9]+\n%%\ns: \"<\" NUM \">\";\n%%\n"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->hardware().netlist.NumNodes(), b->hardware().netlist.NumNodes());
  auto va = a->ExportVhdl("t");
  auto vb = b->ExportVhdl("t");
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(vb.ok());
  EXPECT_EQ(*va, *vb);
}

TEST(RobustnessTest, GeneratedVhdlHasMatchPorts) {
  auto compiled = CompiledTagger::Compile(
      MustParse("%%\ns: \"ab\" \"cd\";\n%%\n"));
  ASSERT_TRUE(compiled.ok());
  auto vhdl = compiled->ExportVhdl("tagger");
  ASSERT_TRUE(vhdl.ok()) << vhdl.status();
  EXPECT_NE(vhdl->find("port_match_t0 : out std_logic"), std::string::npos);
  EXPECT_NE(vhdl->find("port_match_t1 : out std_logic"), std::string::npos);
  EXPECT_NE(vhdl->find("port_index_valid : out std_logic"), std::string::npos);
}

TEST(RobustnessTest, AreaBreakdownCoversAllLuts) {
  auto compiled = CompiledTagger::Compile(
      MustParse("NUM [0-9]+\n%%\ns: \"<\" NUM \">\";\n%%\n"));
  ASSERT_TRUE(compiled.ok());
  auto report = compiled->Implement(rtl::Virtex4LX200());
  ASSERT_TRUE(report.ok());
  size_t luts = 0, ffs = 0;
  for (const auto& bucket : report->area.breakdown) {
    luts += bucket.luts;
    ffs += bucket.ffs;
    EXPECT_FALSE(bucket.scope.empty())
        << "unattributed logic: " << bucket.luts << " LUTs";
  }
  EXPECT_EQ(luts, report->area.luts);
  EXPECT_EQ(ffs, report->area.ffs);
}

TEST(RobustnessTest, OverlappingLiteralsSamePrefix) {
  // "ab" and "abc" armed together: both must be considered, FSA-style.
  auto compiled = CompiledTagger::Compile(
      MustParse("%%\ns: a | b;\na: \"ab\" \"x\";\nb: \"abc\" \"y\";\n%%\n"));
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  // "abc y": "ab" fires at 1 (no extension logic for literals) and "abc"
  // fires at 2; only the "abc" path continues to "y".
  auto tags = compiled->Tag("abc y");
  int ab = 0, abc = 0, y = 0;
  for (const auto& t : tags) {
    const std::string& name = compiled->grammar().tokens()[t.token].name;
    ab += name == "\"ab\"";
    abc += name == "\"abc\"";
    y += name == "\"y\"";
  }
  EXPECT_EQ(ab, 1);
  EXPECT_EQ(abc, 1);
  EXPECT_EQ(y, 1);
  ExpectEnginesAgree(*compiled, "abc y");
  ExpectEnginesAgree(*compiled, "ab x");
}

}  // namespace
}  // namespace cfgtag
