#include <gtest/gtest.h>

#include "grammar/analysis.h"
#include "grammar/dtd.h"
#include "tagger/ll_parser.h"
#include "xmlrpc/xmlrpc_grammar.h"

namespace cfgtag::grammar {
namespace {

TEST(DtdParserTest, ParsesSimpleElements) {
  auto dtd = ParseDtd(R"(
<!ELEMENT root (a, b)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b EMPTY>
)");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  ASSERT_EQ(dtd->elements.size(), 3u);
  EXPECT_EQ(dtd->elements[0].name, "root");
  EXPECT_EQ(dtd->elements[0].content->kind, DtdContent::Kind::kSequence);
  EXPECT_EQ(dtd->elements[1].content->kind, DtdContent::Kind::kPcdata);
  EXPECT_EQ(dtd->elements[2].content->kind, DtdContent::Kind::kEmpty);
  EXPECT_NE(dtd->Find("a"), nullptr);
  EXPECT_EQ(dtd->Find("zzz"), nullptr);
}

TEST(DtdParserTest, OccurrenceOperators) {
  auto dtd = ParseDtd("<!ELEMENT r (a*, b+, c?)> <!ELEMENT a EMPTY>"
                      "<!ELEMENT b EMPTY> <!ELEMENT c EMPTY>");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  const auto& seq = dtd->elements[0].content;
  ASSERT_EQ(seq->children.size(), 3u);
  EXPECT_EQ(seq->children[0]->kind, DtdContent::Kind::kStar);
  EXPECT_EQ(seq->children[1]->kind, DtdContent::Kind::kPlus);
  EXPECT_EQ(seq->children[2]->kind, DtdContent::Kind::kOptional);
}

TEST(DtdParserTest, ChoiceGroups) {
  auto dtd = ParseDtd("<!ELEMENT r (a|b|c)> <!ELEMENT a EMPTY>"
                      "<!ELEMENT b EMPTY> <!ELEMENT c EMPTY>");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  EXPECT_EQ(dtd->elements[0].content->kind, DtdContent::Kind::kChoice);
  EXPECT_EQ(dtd->elements[0].content->children.size(), 3u);
}

TEST(DtdParserTest, CommentsSkipped) {
  auto dtd = ParseDtd(R"(
<!-- header comment -->
<!ELEMENT r (#PCDATA)>
<!-- trailing -->
)");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  EXPECT_EQ(dtd->elements.size(), 1u);
}

TEST(DtdParserTest, Rejections) {
  EXPECT_FALSE(ParseDtd("").ok());
  EXPECT_FALSE(ParseDtd("<!ATTLIST a b CDATA #REQUIRED>").ok());
  EXPECT_FALSE(ParseDtd("<!ELEMENT r (a, b | c)> <!ELEMENT a EMPTY>").ok())
      << "mixed separators";
  EXPECT_FALSE(ParseDtd("<!ELEMENT r (a >").ok()) << "missing paren";
  EXPECT_FALSE(ParseDtd("<!ELEMENT r ANY>").ok()) << "ANY unsupported";
  EXPECT_FALSE(ParseDtd("<!-- unterminated").ok());
}

TEST(DtdToGrammarTest, SimpleConversionValidates) {
  auto dtd = ParseDtd(R"(
<!ELEMENT msg (head, body*)>
<!ELEMENT head (#PCDATA)>
<!ELEMENT body (#PCDATA)>
)");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  auto g = DtdToGrammar(*dtd, "msg");
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_TRUE(g->Validate().ok());
  EXPECT_NE(g->FindToken("\"<msg>\""), -1);
  EXPECT_NE(g->FindToken("\"</msg>\""), -1);
  EXPECT_NE(g->FindToken("PCDATA"), -1);
  EXPECT_EQ(g->start(), g->FindNonterminal("elem_msg"));
}

TEST(DtdToGrammarTest, UnknownRootRejected) {
  auto dtd = ParseDtd("<!ELEMENT a (#PCDATA)>");
  ASSERT_TRUE(dtd.ok());
  EXPECT_FALSE(DtdToGrammar(*dtd, "nope").ok());
}

TEST(DtdToGrammarTest, DanglingReferenceRejected) {
  auto dtd = ParseDtd("<!ELEMENT a (ghost)>");
  ASSERT_TRUE(dtd.ok());
  EXPECT_FALSE(DtdToGrammar(*dtd, "a").ok());
}

TEST(DtdToGrammarTest, UnreachableElementsDropped) {
  auto dtd = ParseDtd(R"(
<!ELEMENT a (#PCDATA)>
<!ELEMENT island (#PCDATA)>
)");
  ASSERT_TRUE(dtd.ok());
  auto g = DtdToGrammar(*dtd, "a");
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->FindNonterminal("elem_island"), -1);
}

TEST(DtdToGrammarTest, GeneratedGrammarParsesDocuments) {
  auto dtd = ParseDtd(R"(
<!ELEMENT msg (head, item*)>
<!ELEMENT head (#PCDATA)>
<!ELEMENT item (key, val?)>
<!ELEMENT key (#PCDATA)>
<!ELEMENT val (#PCDATA)>
)");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  auto g = DtdToGrammar(*dtd, "msg");
  ASSERT_TRUE(g.ok()) << g.status();
  auto parser = tagger::PredictiveParser::Create(&g.value(), {});
  ASSERT_TRUE(parser.ok()) << parser.status();

  EXPECT_TRUE(parser->Accepts("<msg><head>hello</head></msg>"));
  EXPECT_TRUE(parser->Accepts(
      "<msg><head>h</head><item><key>k</key><val>v</val></item></msg>"));
  EXPECT_TRUE(parser->Accepts(
      "<msg><head>h</head><item><key>k</key></item>"
      "<item><key>k2</key><val>v</val></item></msg>"));
  EXPECT_FALSE(parser->Accepts("<msg></msg>"));
  EXPECT_FALSE(parser->Accepts("<msg><head>h</head>"));
  EXPECT_FALSE(parser->Accepts(
      "<msg><head>h</head><item><val>v</val></item></msg>"));
}

// The paper's §4.1 path: the Fig. 13 XML-RPC DTD converts into a working
// grammar whose parser accepts XML-RPC-shaped documents.
TEST(DtdToGrammarTest, XmlRpcDtdConverts) {
  auto dtd = ParseDtd(xmlrpc::XmlRpcDtdText());
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  auto g = DtdToGrammar(*dtd, "methodCall");
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_TRUE(g->Validate().ok());
  auto analysis = Analyze(*g);
  ASSERT_TRUE(analysis.ok()) << analysis.status();

  auto parser = tagger::PredictiveParser::Create(&g.value(), {});
  ASSERT_TRUE(parser.ok()) << parser.status();
  EXPECT_TRUE(parser->Accepts(
      "<methodCall><methodName>getPrice</methodName>"
      "<params><param><value><string>ibm</string></value></param></params>"
      "</methodCall>"));
  EXPECT_FALSE(parser->Accepts(
      "<methodCall><params></params></methodCall>"));
}

}  // namespace
}  // namespace cfgtag::grammar
