#include <gtest/gtest.h>

#include "grammar/analysis.h"
#include "grammar/grammar_parser.h"

namespace cfgtag::grammar {
namespace {

// The paper's running example (Fig. 9).
constexpr char kIfThenElse[] = R"(
%%
stmt: "if" cond "then" stmt "else" stmt | "go" | "stop";
cond: "true" | "false";
%%
)";

std::set<std::string> FollowNames(const Grammar& g, const Analysis& a,
                                  const std::string& token_name) {
  const int32_t t = g.FindToken(token_name);
  EXPECT_GE(t, 0) << token_name;
  std::set<std::string> out;
  for (int32_t f : a.follow_tok[t]) {
    out.insert(f == Analysis::kEndMarker ? "eps" : g.tokens()[f].name);
  }
  return out;
}

// Fig. 10: the Follow set for each terminal token, reproduced exactly.
TEST(AnalysisTest, Figure10FollowSets) {
  auto g = ParseGrammar(kIfThenElse);
  ASSERT_TRUE(g.ok()) << g.status();
  auto a = Analyze(*g);
  ASSERT_TRUE(a.ok()) << a.status();

  using Set = std::set<std::string>;
  EXPECT_EQ(FollowNames(*g, *a, "\"if\""), (Set{"\"true\"", "\"false\""}));
  EXPECT_EQ(FollowNames(*g, *a, "\"then\""),
            (Set{"\"if\"", "\"go\"", "\"stop\""}));
  EXPECT_EQ(FollowNames(*g, *a, "\"else\""),
            (Set{"\"if\"", "\"go\"", "\"stop\""}));
  EXPECT_EQ(FollowNames(*g, *a, "\"go\""), (Set{"\"else\"", "eps"}));
  EXPECT_EQ(FollowNames(*g, *a, "\"stop\""), (Set{"\"else\"", "eps"}));
  EXPECT_EQ(FollowNames(*g, *a, "\"true\""), (Set{"\"then\""}));
  EXPECT_EQ(FollowNames(*g, *a, "\"false\""), (Set{"\"then\""}));
}

TEST(AnalysisTest, StartTokensAreFirstOfStart) {
  auto g = ParseGrammar(kIfThenElse);
  ASSERT_TRUE(g.ok());
  auto a = Analyze(*g);
  ASSERT_TRUE(a.ok());
  std::set<std::string> names;
  for (int32_t t : a->start_tokens) names.insert(g->tokens()[t].name);
  EXPECT_EQ(names,
            (std::set<std::string>{"\"if\"", "\"go\"", "\"stop\""}));
  EXPECT_FALSE(a->start_nullable);
}

TEST(AnalysisTest, NullableComputation) {
  auto g = ParseGrammar(R"(
A x
B y
%%
s: opt B;
opt: | A;
%%
)");
  ASSERT_TRUE(g.ok()) << g.status();
  auto a = Analyze(*g);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->nullable[g->FindNonterminal("opt")]);
  EXPECT_FALSE(a->nullable[g->FindNonterminal("s")]);
  // First(s) sees through the nullable prefix.
  std::set<int32_t> expected = {g->FindToken("A"), g->FindToken("B")};
  EXPECT_EQ(a->first_nt[g->FindNonterminal("s")], expected);
}

TEST(AnalysisTest, NullableChainPropagates) {
  auto g = ParseGrammar(R"(
A x
%%
s: p q r;
p: | A;
q: | A;
r: | A;
%%
)");
  ASSERT_TRUE(g.ok()) << g.status();
  auto a = Analyze(*g);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->nullable[g->FindNonterminal("s")]);
  EXPECT_TRUE(a->start_nullable);
  // Follow(A) includes everything A can be followed by across p/q/r plus
  // end of input.
  auto follow = a->follow_tok[g->FindToken("A")];
  EXPECT_TRUE(follow.count(g->FindToken("A")) > 0);
  EXPECT_TRUE(follow.count(Analysis::kEndMarker) > 0);
}

TEST(AnalysisTest, RecursiveProductionFollow) {
  // param-style right recursion: Follow("x") must contain "x" (the next
  // element) and the end marker.
  auto g = ParseGrammar(R"(
%%
list: | "x" list;
%%
)");
  ASSERT_TRUE(g.ok()) << g.status();
  auto a = Analyze(*g);
  ASSERT_TRUE(a.ok());
  const int32_t x = g->FindToken("\"x\"");
  EXPECT_TRUE(a->follow_tok[x].count(x) > 0);
  EXPECT_TRUE(a->follow_tok[x].count(Analysis::kEndMarker) > 0);
}

TEST(AnalysisTest, FirstOfSequenceHandlesNullablePrefix) {
  auto g = ParseGrammar(R"(
A x
B y
%%
s: opt B;
opt: | A;
%%
)");
  ASSERT_TRUE(g.ok());
  auto a = Analyze(*g);
  ASSERT_TRUE(a.ok());
  const Production& p = g->productions()[0];  // s: opt B
  auto [first, nullable] = a->FirstOfSequence(p.rhs, 0);
  EXPECT_FALSE(nullable);
  EXPECT_EQ(first.size(), 2u);
  auto [first_tail, nullable_tail] = a->FirstOfSequence(p.rhs, 1);
  EXPECT_FALSE(nullable_tail);
  EXPECT_EQ(first_tail.size(), 1u);
  auto [first_end, nullable_end] = a->FirstOfSequence(p.rhs, 2);
  EXPECT_TRUE(nullable_end);
  EXPECT_TRUE(first_end.empty());
}

TEST(AnalysisTest, ToStringMentionsAllTokens) {
  auto g = ParseGrammar(kIfThenElse);
  ASSERT_TRUE(g.ok());
  auto a = Analyze(*g);
  ASSERT_TRUE(a.ok());
  const std::string dump = a->ToString(*g);
  EXPECT_NE(dump.find("Follow(\"if\")"), std::string::npos);
  EXPECT_NE(dump.find("start tokens"), std::string::npos);
  EXPECT_NE(dump.find("First(stmt)"), std::string::npos);
}

TEST(AnalysisTest, RejectsInvalidGrammar) {
  Grammar g;
  EXPECT_FALSE(Analyze(g).ok());
}

}  // namespace
}  // namespace cfgtag::grammar
