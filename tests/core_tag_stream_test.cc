#include <gtest/gtest.h>

#include "core/tag_stream.h"

namespace cfgtag::core {
namespace {

tagger::Tag T(int32_t token, uint64_t end) {
  tagger::Tag t;
  t.token = token;
  t.end = end;
  return t;
}

TEST(TokenCounterTest, CountsPerToken) {
  TokenCounter counter;
  counter.Add(T(1, 0));
  counter.Add(T(1, 5));
  counter.Add(T(2, 9));
  EXPECT_EQ(counter.Count(1), 2u);
  EXPECT_EQ(counter.Count(2), 1u);
  EXPECT_EQ(counter.Count(3), 0u);
  EXPECT_EQ(counter.Total(), 3u);
  EXPECT_EQ(counter.counts().size(), 2u);
}

TEST(TagRouterTest, FirstRoutingTokenWins) {
  TagRouter router(/*default_port=*/0);
  router.AddRoute(5, 1);
  router.AddRoute(7, 2);
  EXPECT_EQ(router.Route({T(3, 0), T(7, 4), T(5, 9)}), 2);
  EXPECT_EQ(router.Route({T(5, 1)}), 1);
}

TEST(TagRouterTest, DefaultPortWhenNoRouteMatches) {
  TagRouter router(9);
  router.AddRoute(1, 3);
  EXPECT_EQ(router.Route({}), 9);
  EXPECT_EQ(router.Route({T(2, 0), T(4, 2)}), 9);
  EXPECT_EQ(router.default_port(), 9);
}

TEST(TagRouterTest, RouteOverwrite) {
  TagRouter router(0);
  router.AddRoute(1, 3);
  router.AddRoute(1, 4);  // later registration wins
  EXPECT_EQ(router.Route({T(1, 0)}), 4);
}

TEST(TokenCounterTest, EmptyTagStream) {
  TokenCounter counter;
  EXPECT_EQ(counter.Total(), 0u);
  EXPECT_EQ(counter.Count(0), 0u);
  EXPECT_TRUE(counter.counts().empty());
}

TEST(TokenCounterTest, UnknownAndNegativeTokenIds) {
  TokenCounter counter;
  counter.Add(T(-1, 0));  // an unresolved tag still counts under its id
  counter.Add(T(1000000, 3));
  EXPECT_EQ(counter.Count(-1), 1u);
  EXPECT_EQ(counter.Count(1000000), 1u);
  EXPECT_EQ(counter.Count(0), 0u);
  EXPECT_EQ(counter.Total(), 2u);
}

TEST(TagRouterTest, FirstRouteWinsWithinSameEndOffset) {
  // Two routing tokens on the same cycle (same end): stream order decides.
  TagRouter router(0);
  router.AddRoute(5, 1);
  router.AddRoute(7, 2);
  EXPECT_EQ(router.Route({T(5, 4), T(7, 4)}), 1);
  EXPECT_EQ(router.Route({T(7, 4), T(5, 4)}), 2);
}

TEST(TagRouterTest, UnknownTokensNeverRoute) {
  TagRouter router(-1);
  router.AddRoute(1, 8);
  EXPECT_EQ(router.Route({T(-1, 0), T(99, 1)}), -1);
  EXPECT_EQ(router.Route({T(-1, 0), T(1, 1)}), 8);
}

}  // namespace
}  // namespace cfgtag::core
