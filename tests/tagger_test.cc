#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "grammar/grammar_parser.h"
#include "tagger/functional_model.h"
#include "tagger/ll_parser.h"
#include "tagger/naive_matcher.h"

namespace cfgtag::tagger {
namespace {

using grammar::ParseGrammar;

grammar::Grammar MustParse(const std::string& text) {
  auto g = ParseGrammar(text);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

std::vector<std::pair<std::string, uint64_t>> Render(
    const grammar::Grammar& g, const std::vector<Tag>& tags) {
  std::vector<std::pair<std::string, uint64_t>> out;
  for (const Tag& t : tags) out.emplace_back(g.tokens()[t.token].name, t.end);
  return out;
}

// --------------------------------------------------- FunctionalTagger

TEST(FunctionalTaggerTest, ArmSurvivesDelimiterRun) {
  grammar::Grammar g = MustParse("%%\ns: \"ab\" \"cd\";\n%%\n");
  auto t = FunctionalTagger::Create(&g, {});
  ASSERT_TRUE(t.ok()) << t.status();
  // Arms must survive an arbitrarily long run of delimiters.
  auto tags = t->TagAll("ab    \t\n  cd");
  ASSERT_EQ(tags.size(), 2u);
  EXPECT_EQ(tags[1].end, 11u);
}

TEST(FunctionalTaggerTest, AdjacentTokensChain) {
  grammar::Grammar g = MustParse("%%\ns: \"ab\" \"cd\";\n%%\n");
  auto t = FunctionalTagger::Create(&g, {});
  ASSERT_TRUE(t.ok());
  auto tags = t->TagAll("abcd");
  ASSERT_EQ(tags.size(), 2u);
  EXPECT_EQ(tags[0].end, 1u);
  EXPECT_EQ(tags[1].end, 3u);
}

TEST(FunctionalTaggerTest, ArmConsumedByGarbageByte) {
  grammar::Grammar g = MustParse("%%\ns: \"ab\" \"cd\";\n%%\n");
  auto t = FunctionalTagger::Create(&g, {});
  ASSERT_TRUE(t.ok());
  // 'x' consumes the arm for "cd"; the later "cd" is not armed anymore.
  auto tags = t->TagAll("ab x cd");
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0].end, 1u);
}

TEST(FunctionalTaggerTest, TokensNeverStartOnDelimiter) {
  // A token whose class includes space must still not *start* on one.
  grammar::Grammar g = MustParse("TXT [a-z ]+\n%%\ns: TXT;\n%%\n");
  auto t = FunctionalTagger::Create(&g, {});
  ASSERT_TRUE(t.ok());
  auto tags = t->TagAll("  ab cd");
  // One TXT covering "ab cd" (interior space consumed by the class).
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0].end, 6u);
}

TEST(FunctionalTaggerTest, AnchoredVsScanMode) {
  grammar::Grammar g = MustParse("%%\ns: \"ab\";\n%%\n");
  TaggerOptions anchored;
  TaggerOptions scan;
  scan.anchored = false;

  grammar::Grammar g2 = g.Clone();
  auto t_anchored = FunctionalTagger::Create(&g, anchored);
  auto t_scan = FunctionalTagger::Create(&g2, scan);
  ASSERT_TRUE(t_anchored.ok());
  ASSERT_TRUE(t_scan.ok());

  // "xx ab": anchored mode consumed its arm on 'x'; scan mode re-arms at
  // every byte and still finds "ab".
  EXPECT_TRUE(t_anchored->TagAll("xx ab").empty());
  auto tags = t_scan->TagAll("xx ab");
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0].end, 4u);
}

TEST(FunctionalTaggerTest, ScanModeFindsEveryAlignment) {
  grammar::Grammar g = MustParse("%%\ns: \"aa\";\n%%\n");
  TaggerOptions scan;
  scan.anchored = false;
  auto t = FunctionalTagger::Create(&g, scan);
  ASSERT_TRUE(t.ok());
  // "aaaa": matches end at offsets 1,2,3 (every alignment, §3.3).
  auto tags = t->TagAll("aaaa");
  ASSERT_EQ(tags.size(), 3u);
  EXPECT_EQ(tags[0].end, 1u);
  EXPECT_EQ(tags[1].end, 2u);
  EXPECT_EQ(tags[2].end, 3u);
}

TEST(FunctionalTaggerTest, LongestMatchSuppresssIntermediate) {
  grammar::Grammar g = MustParse("NUM [0-9]+\n%%\ns: NUM;\n%%\n");
  auto t = FunctionalTagger::Create(&g, {});
  ASSERT_TRUE(t.ok());
  auto tags = t->TagAll("1234 ");
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0].end, 3u);
}

TEST(FunctionalTaggerTest, LongestMatchOffReportsEveryDetection) {
  grammar::Grammar g = MustParse("NUM [0-9]+\n%%\ns: NUM;\n%%\n");
  TaggerOptions opt;
  opt.longest_match = false;
  auto t = FunctionalTagger::Create(&g, opt);
  ASSERT_TRUE(t.ok());
  // Fig. 6d without the Fig. 7 fix: detection at every cycle of the run.
  auto tags = t->TagAll("1234 ");
  ASSERT_EQ(tags.size(), 4u);
}

TEST(FunctionalTaggerTest, FollowArmingIsPerToken) {
  grammar::Grammar g = MustParse(R"(
%%
s: "a" "x" | "b" "y";
%%
)");
  auto t = FunctionalTagger::Create(&g, {});
  ASSERT_TRUE(t.ok());
  // After "a" only "x" is armed, not "y".
  EXPECT_EQ(t->TagAll("a y").size(), 1u);
  EXPECT_EQ(t->TagAll("a x").size(), 2u);
  EXPECT_EQ(t->TagAll("b y").size(), 2u);
}

TEST(FunctionalTaggerTest, SupersetBehaviourOnCollapsedRecursion) {
  // Balanced parentheses (paper Fig. 1/2): the collapsed FSA accepts
  // unbalanced strings a true parser rejects.
  grammar::Grammar g = MustParse(R"grm(
%%
e: "(" e ")" | "0";
%%
)grm");
  grammar::Grammar g2 = g.Clone();
  auto hw = FunctionalTagger::Create(&g, {});
  ASSERT_TRUE(hw.ok());
  auto parser = PredictiveParser::Create(&g2, {});
  ASSERT_TRUE(parser.ok()) << parser.status();

  // Balanced: both agree, tags match 1:1.
  const std::string balanced = "((0))";
  auto ll = parser->Parse(balanced);
  ASSERT_TRUE(ll.ok());
  auto fsa = hw->TagAll(balanced);
  ASSERT_EQ(fsa.size(), ll->size());

  // Unbalanced: the true parser rejects, the FSA happily tags every token
  // (state collapse, §3.1).
  const std::string unbalanced = "((0)";
  EXPECT_FALSE(parser->Accepts(unbalanced));
  EXPECT_EQ(hw->TagAll(unbalanced).size(), 4u);
}

TEST(FunctionalTaggerTest, SinkEarlyStop) {
  grammar::Grammar g = MustParse("%%\ns: \"a\" \"b\" \"c\";\n%%\n");
  auto t = FunctionalTagger::Create(&g, {});
  ASSERT_TRUE(t.ok());
  int count = 0;
  t->Run("a b c", [&](const Tag&) { return ++count < 2; });
  EXPECT_EQ(count, 2);
}

TEST(FunctionalTaggerTest, TotalPositionsMatchesPatternBytes) {
  grammar::Grammar g = MustParse("NUM [0-9]+\n%%\ns: \"<a>\" NUM;\n%%\n");
  auto t = FunctionalTagger::Create(&g, {});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->TotalPositions(), 4u);
  EXPECT_EQ(t->TotalPositions(), g.PatternBytes());
}

TEST(FunctionalTaggerTest, CustomDelimiters) {
  grammar::Grammar g = MustParse("%%\ns: \"ab\" \"cd\";\n%%\n");
  TaggerOptions opt;
  opt.delimiters = regex::CharClass::Of(',');
  auto t = FunctionalTagger::Create(&g, opt);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->TagAll("ab,,cd").size(), 2u);
  // Space is now a normal byte: it consumes the arm.
  EXPECT_EQ(t->TagAll("ab cd").size(), 1u);
}

// -------------------------------------------------------- NaiveMatcher

TEST(NaiveMatcherTest, FindsAllOccurrences) {
  NaiveMatcher m({"he", "she", "his", "hers"});
  auto tags = m.Matches("ushers");
  // Classic Aho-Corasick example: she@3, he@3, hers@5.
  ASSERT_EQ(tags.size(), 3u);
  EXPECT_EQ(tags[0].token, 1);  // she
  EXPECT_EQ(tags[0].end, 3u);
  EXPECT_EQ(tags[1].token, 0);  // he
  EXPECT_EQ(tags[1].end, 3u);
  EXPECT_EQ(tags[2].token, 3);  // hers
  EXPECT_EQ(tags[2].end, 5u);
}

TEST(NaiveMatcherTest, OverlappingAndRepeated) {
  NaiveMatcher m({"aa"});
  auto tags = m.Matches("aaaa");
  ASSERT_EQ(tags.size(), 3u);
}

TEST(NaiveMatcherTest, AgreesWithBruteForceOnRandomInput) {
  Rng rng(99);
  const std::vector<std::string> patterns = {"ab", "abc", "ba", "aaa", "cb"};
  NaiveMatcher m(patterns);
  for (int round = 0; round < 20; ++round) {
    const std::string s = rng.NextString(50, "abc");
    std::vector<Tag> expected;
    for (size_t i = 0; i < s.size(); ++i) {
      for (size_t p = 0; p < patterns.size(); ++p) {
        const std::string& pat = patterns[p];
        if (i + 1 >= pat.size() &&
            s.compare(i + 1 - pat.size(), pat.size(), pat) == 0) {
          Tag t;
          t.token = static_cast<int32_t>(p);
          t.end = i;
          expected.push_back(t);
        }
      }
    }
    auto got = m.Matches(s);
    // Same multiset of (token, end).
    auto key = [](const Tag& t) { return std::pair(t.end, t.token); };
    std::sort(got.begin(), got.end(),
              [&](auto& a, auto& b) { return key(a) < key(b); });
    std::sort(expected.begin(), expected.end(),
              [&](auto& a, auto& b) { return key(a) < key(b); });
    ASSERT_EQ(got.size(), expected.size()) << s;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_TRUE(got[i] == expected[i]) << s;
    }
  }
}

TEST(NaiveMatcherTest, EarlyStopScan) {
  NaiveMatcher m({"a"});
  int seen = 0;
  m.Scan("aaaa", [&](int32_t, uint64_t) { return ++seen < 2; });
  EXPECT_EQ(seen, 2);
}

// ----------------------------------------------------- PredictiveParser

TEST(PredictiveParserTest, TagsCarryLengths) {
  grammar::Grammar g = MustParse("NUM [0-9]+\n%%\ns: \"<n>\" NUM \"</n>\";\n%%\n");
  auto p = PredictiveParser::Create(&g, {});
  ASSERT_TRUE(p.ok()) << p.status();
  auto tags = p->Parse("<n>123</n>");
  ASSERT_TRUE(tags.ok()) << tags.status();
  ASSERT_EQ(tags->size(), 3u);
  EXPECT_EQ((*tags)[1].length, 3u);
  EXPECT_EQ((*tags)[1].end, 5u);
}

TEST(PredictiveParserTest, RejectsNonLl1Grammar) {
  // Classic left-factoring conflict: both alternatives start with "a".
  grammar::Grammar g = MustParse("%%\ns: \"a\" \"b\" | \"a\" \"c\";\n%%\n");
  auto p = PredictiveParser::Create(&g, {});
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PredictiveParserTest, ReportsParseErrors) {
  grammar::Grammar g = MustParse("%%\ns: \"a\" \"b\";\n%%\n");
  auto p = PredictiveParser::Create(&g, {});
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->Accepts("a"));
  EXPECT_FALSE(p->Accepts("b"));
  EXPECT_FALSE(p->Accepts("a b extra"));
  EXPECT_FALSE(p->Accepts(""));
  EXPECT_TRUE(p->Accepts(" a  b "));
}

TEST(PredictiveParserTest, EpsilonProductionsViaFollow) {
  grammar::Grammar g = MustParse(R"(
%%
list: | "x" list;
%%
)");
  auto p = PredictiveParser::Create(&g, {});
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_TRUE(p->Accepts(""));
  EXPECT_TRUE(p->Accepts("x"));
  EXPECT_TRUE(p->Accepts("x x x"));
}

TEST(PredictiveParserTest, MaximalMunchLexing) {
  grammar::Grammar g = MustParse(R"(
NUM [0-9]+
%%
s: NUM "+" NUM;
%%
)");
  auto p = PredictiveParser::Create(&g, {});
  ASSERT_TRUE(p.ok());
  auto tags = p->Parse("12+345");
  ASSERT_TRUE(tags.ok()) << tags.status();
  ASSERT_EQ(tags->size(), 3u);
  EXPECT_EQ((*tags)[0].length, 2u);
  EXPECT_EQ((*tags)[2].length, 3u);
}

TEST(PredictiveParserTest, KeywordVsIdentifierTieBreak) {
  // "if" (lower token id, declared first) wins a longest-match tie against
  // WORD; longer identifiers still lex as WORD.
  grammar::Grammar g = MustParse(R"(
KW_IF "if"
WORD [a-z]+
%%
s: stmt;
stmt: KW_IF WORD | WORD;
%%
)");
  auto p = PredictiveParser::Create(&g, {});
  ASSERT_TRUE(p.ok()) << p.status();
  auto tags = p->Parse("if x");
  ASSERT_TRUE(tags.ok()) << tags.status();
  EXPECT_EQ(Render(g, *tags)[0].first, "KW_IF");
  auto tags2 = p->Parse("iffy");
  ASSERT_TRUE(tags2.ok()) << tags2.status();
  EXPECT_EQ(Render(g, *tags2)[0].first, "WORD");
}

}  // namespace
}  // namespace cfgtag::tagger
