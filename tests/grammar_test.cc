#include <gtest/gtest.h>

#include "grammar/grammar.h"
#include "grammar/grammar_parser.h"

namespace cfgtag::grammar {
namespace {

TEST(GrammarTest, AddTokenAndLookup) {
  Grammar g;
  auto id = g.AddToken("WORD", "[a-z]+");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0);
  EXPECT_EQ(g.FindToken("WORD"), 0);
  EXPECT_EQ(g.FindToken("MISSING"), -1);
  EXPECT_FALSE(g.AddToken("WORD", "[0-9]").ok()) << "duplicate name";
  EXPECT_FALSE(g.AddToken("BAD", "[z-a").ok()) << "bad pattern";
}

TEST(GrammarTest, LiteralTokensDeduplicate) {
  Grammar g;
  auto a = g.AddLiteralToken("<x>");
  auto b = g.AddLiteralToken("<x>");
  auto c = g.AddLiteralToken("<y>");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_NE(*a, *c);
  EXPECT_TRUE(g.tokens()[*a].is_literal);
  EXPECT_EQ(g.tokens()[*a].literal_text, "<x>");
  EXPECT_FALSE(g.AddLiteralToken("").ok());
}

TEST(GrammarTest, StartDefaultsToFirstProduction) {
  Grammar g;
  int32_t a = g.AddNonterminal("a");
  int32_t b = g.AddNonterminal("b");
  auto tok = g.AddLiteralToken("t");
  ASSERT_TRUE(tok.ok());
  g.AddProduction(b, {Symbol::Terminal(*tok)});
  g.AddProduction(a, {Symbol::Terminal(*tok)});
  EXPECT_EQ(g.start(), b);
  g.SetStart(a);
  EXPECT_EQ(g.start(), a);
}

TEST(GrammarTest, ValidateRejectsMissingProduction) {
  Grammar g;
  int32_t a = g.AddNonterminal("a");
  int32_t b = g.AddNonterminal("orphan");
  auto tok = g.AddLiteralToken("t");
  ASSERT_TRUE(tok.ok());
  g.AddProduction(a, {Symbol::Nonterminal(b)});
  EXPECT_FALSE(g.Validate().ok());
}

TEST(GrammarTest, ValidateRejectsNullableToken) {
  Grammar g;
  auto tok = g.AddToken("MAYBE", "a*");
  ASSERT_TRUE(tok.ok());
  int32_t a = g.AddNonterminal("a");
  g.AddProduction(a, {Symbol::Terminal(*tok)});
  auto status = g.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("empty string"), std::string::npos);
}

TEST(GrammarTest, ValidateRejectsNoStart) {
  Grammar g;
  EXPECT_FALSE(g.Validate().ok());
}

TEST(GrammarTest, PatternBytesSumsLiteralPositions) {
  Grammar g;
  ASSERT_TRUE(g.AddToken("A", "abc").ok());       // 3
  ASSERT_TRUE(g.AddToken("B", "[0-9]+").ok());    // 1
  ASSERT_TRUE(g.AddLiteralToken("<tag>").ok());   // 5
  EXPECT_EQ(g.PatternBytes(), 9u);
}

TEST(GrammarTest, CloneIsIndependent) {
  Grammar g;
  ASSERT_TRUE(g.AddToken("A", "a").ok());
  int32_t nt = g.AddNonterminal("s");
  g.AddProduction(nt, {Symbol::Terminal(0)});
  Grammar copy = g.Clone();
  copy.AddNonterminal("extra");
  EXPECT_EQ(g.NumNonterminals(), 1u);
  EXPECT_EQ(copy.NumNonterminals(), 2u);
}

// -------------------------------------------------------- Grammar parser

TEST(GrammarParserTest, ParsesDefinitionsAndRules) {
  auto g = ParseGrammar(R"(
WORD   [a-z]+
NUM    [0-9]+
%%
s: WORD NUM | NUM;
%%
)");
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->NumTokens(), 2u);
  EXPECT_EQ(g->NumNonterminals(), 1u);
  EXPECT_EQ(g->productions().size(), 2u);
  EXPECT_EQ(g->start(), g->FindNonterminal("s"));
}

TEST(GrammarParserTest, CommaSeparatedTokenNames) {
  auto g = ParseGrammar(R"(
MONTH, DAY   [0-9][0-9]
%%
s: MONTH DAY;
%%
)");
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->NumTokens(), 2u);
  EXPECT_NE(g->FindToken("MONTH"), -1);
  EXPECT_NE(g->FindToken("DAY"), -1);
  // Same pattern, distinct tokens.
  EXPECT_EQ(g->tokens()[0].pattern, g->tokens()[1].pattern);
}

TEST(GrammarParserTest, LiteralAndCharTokens) {
  auto g = ParseGrammar(R"(
%%
s: "<a>" `:' 'x' "<a>";
%%
)");
  ASSERT_TRUE(g.ok()) << g.status();
  // "<a>" deduplicates; `:' and 'x' are one-char literals.
  EXPECT_EQ(g->NumTokens(), 3u);
  ASSERT_EQ(g->productions().size(), 1u);
  EXPECT_EQ(g->productions()[0].rhs.size(), 4u);
  EXPECT_EQ(g->productions()[0].rhs[0], g->productions()[0].rhs[3]);
}

TEST(GrammarParserTest, EmptyAlternativeIsEpsilon) {
  auto g = ParseGrammar(R"(
%%
s: | "x" s;
%%
)");
  ASSERT_TRUE(g.ok()) << g.status();
  ASSERT_EQ(g->productions().size(), 2u);
  EXPECT_TRUE(g->productions()[0].rhs.empty());
  EXPECT_EQ(g->productions()[1].rhs.size(), 2u);
}

TEST(GrammarParserTest, CommentsStripped) {
  auto g = ParseGrammar(R"(
WORD [a-z]+ // trailing comment
/* block
   comment */
%%
s: WORD; // another
%%
)");
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->NumTokens(), 1u);
}

TEST(GrammarParserTest, MultiLineRules) {
  auto g = ParseGrammar(R"(
A x
B y
%%
s: A
 | B
 ;
%%
)");
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->productions().size(), 2u);
}

TEST(GrammarParserTest, UndefinedSymbolRejected) {
  auto g = ParseGrammar("%%\ns: missing;\n%%\n");
  EXPECT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("missing"), std::string::npos);
}

TEST(GrammarParserTest, RuleTokenNameCollisionRejected) {
  auto g = ParseGrammar("A x\n%%\nA: \"y\";\n%%\n");
  EXPECT_FALSE(g.ok());
}

TEST(GrammarParserTest, MissingSectionsRejected) {
  EXPECT_FALSE(ParseGrammar("just some text").ok());
  EXPECT_FALSE(ParseGrammar("%%\n%%\n").ok()) << "no rules";
}

TEST(GrammarParserTest, BadDefinitionLineRejected) {
  EXPECT_FALSE(ParseGrammar("LONETOKEN\n%%\ns: \"x\";\n%%\n").ok());
}

TEST(GrammarParserTest, UnterminatedLiteralRejected) {
  EXPECT_FALSE(ParseGrammar("%%\ns: \"unterminated;\n%%\n").ok());
  EXPECT_FALSE(ParseGrammar("%%\ns: `x;\n%%\n").ok());
}

TEST(GrammarParserTest, ToStringReparses) {
  auto g = ParseGrammar(R"(
WORD [a-z]+
%%
s: WORD t | ;
t: "<x>" s;
%%
)");
  ASSERT_TRUE(g.ok()) << g.status();
  auto again = ParseGrammar(g->ToString());
  ASSERT_TRUE(again.ok()) << g->ToString() << "\n-> " << again.status();
  EXPECT_EQ(again->NumTokens(), g->NumTokens());
  EXPECT_EQ(again->productions().size(), g->productions().size());
}

}  // namespace
}  // namespace cfgtag::grammar
