#include <gtest/gtest.h>

#include <algorithm>

#include "core/token_tagger.h"
#include "grammar/grammar_parser.h"
#include "grammar/token_context.h"
#include "grammar/transforms.h"
#include "xmlrpc/xmlrpc_grammar.h"

namespace cfgtag::grammar {
namespace {

constexpr char kTiny[] = R"(
WORD [a-z]+
%%
s: "<" WORD ">";
%%
)";

// ------------------------------------------------------ DuplicateGrammar

TEST(DuplicateGrammarTest, ScalesCountsLinearly) {
  auto base = ParseGrammar(kTiny);
  ASSERT_TRUE(base.ok()) << base.status();
  auto dup = DuplicateGrammar(*base, 3);
  ASSERT_TRUE(dup.ok()) << dup.status();
  EXPECT_EQ(dup->NumTokens(), 3 * base->NumTokens());
  EXPECT_EQ(dup->PatternBytes(), 3 * base->PatternBytes());
  // +1 nonterminal for the fresh start, +3 start alternatives.
  EXPECT_EQ(dup->NumNonterminals(), 3 * base->NumNonterminals() + 1);
  EXPECT_EQ(dup->productions().size(), 3 * base->productions().size() + 3);
  EXPECT_TRUE(dup->Validate().ok());
}

TEST(DuplicateGrammarTest, OneCopyKeepsBehaviour) {
  auto base = ParseGrammar(kTiny);
  ASSERT_TRUE(base.ok());
  auto dup = DuplicateGrammar(*base, 1);
  ASSERT_TRUE(dup.ok()) << dup.status();

  auto t_base = core::CompiledTagger::Compile(base->Clone());
  auto t_dup = core::CompiledTagger::Compile(std::move(dup).value());
  ASSERT_TRUE(t_base.ok());
  ASSERT_TRUE(t_dup.ok());
  const std::string input = "<hello>";
  auto tags_base = t_base->Tag(input);
  auto tags_dup = t_dup->Tag(input);
  ASSERT_EQ(tags_base.size(), tags_dup.size());
  for (size_t i = 0; i < tags_base.size(); ++i) {
    EXPECT_EQ(tags_base[i].end, tags_dup[i].end);
  }
}

TEST(DuplicateGrammarTest, EveryCopyTagsInParallel) {
  auto base = ParseGrammar(kTiny);
  ASSERT_TRUE(base.ok());
  auto dup = DuplicateGrammar(*base, 4);
  ASSERT_TRUE(dup.ok());
  auto tagger = core::CompiledTagger::Compile(std::move(dup).value());
  ASSERT_TRUE(tagger.ok()) << tagger.status();
  // All four copies' start tokens are armed, so "<" is tagged 4x (one per
  // copy) — the duplicated engines run in parallel, as in the paper's
  // scaling experiment.
  auto tags = tagger->Tag("<abc>");
  int open_tags = 0;
  for (const auto& t : tags) open_tags += (t.end == 0);
  EXPECT_EQ(open_tags, 4);
}

TEST(DuplicateGrammarTest, RejectsBadArgs) {
  auto base = ParseGrammar(kTiny);
  ASSERT_TRUE(base.ok());
  EXPECT_FALSE(DuplicateGrammar(*base, 0).ok());
}

// -------------------------------------------------------- ExpandContexts

TEST(ExpandContextsTest, SingleSiteTokensUntouched) {
  auto g = ParseGrammar(kTiny);
  ASSERT_TRUE(g.ok());
  auto exp = ExpandContexts(*g);
  ASSERT_TRUE(exp.ok()) << exp.status();
  // "<", WORD, ">" each occur at exactly one site: nothing is split.
  EXPECT_EQ(exp->grammar.NumTokens(), g->NumTokens());
  for (const TokenContext& ctx : exp->contexts) {
    EXPECT_EQ(ctx.production, -1);
  }
}

TEST(ExpandContextsTest, MultiSiteTokenSplitPerSite) {
  auto g = ParseGrammar(R"(
NUM [0-9][0-9]
%%
time: NUM ":" NUM ":" NUM;
%%
)");
  ASSERT_TRUE(g.ok()) << g.status();
  auto exp = ExpandContexts(*g);
  ASSERT_TRUE(exp.ok()) << exp.status();
  // NUM (3 sites) and ":" (2 sites) both split: 5 tokens total.
  EXPECT_EQ(exp->grammar.NumTokens(), 5u);
  EXPECT_TRUE(exp->grammar.Validate().ok());

  int split_num = 0;
  for (const TokenContext& ctx : exp->contexts) {
    if (ctx.production >= 0 &&
        g->tokens()[ctx.base_token].name == "NUM") {
      ++split_num;
      EXPECT_EQ(ctx.production, 0);
      EXPECT_TRUE(ctx.position == 0 || ctx.position == 2 ||
                  ctx.position == 4);
    }
  }
  EXPECT_EQ(split_num, 3);
}

// The paper's §3.2 motivation: the same pattern in different grammar
// positions gets a distinct identity, so the tag stream reveals *which*
// occurrence matched (hour vs minute vs second).
TEST(ExpandContextsTest, ContextTagsDistinguishOccurrences) {
  auto g = ParseGrammar(R"(
NUM [0-9][0-9]
%%
time: NUM ":" NUM ":" NUM;
%%
)");
  ASSERT_TRUE(g.ok());
  auto exp = ExpandContexts(*g);
  ASSERT_TRUE(exp.ok());
  auto tagger = core::CompiledTagger::Compile(std::move(exp->grammar));
  ASSERT_TRUE(tagger.ok()) << tagger.status();

  auto tags = tagger->Tag("12:34:56");
  ASSERT_EQ(tags.size(), 5u);
  // The three NUM tags are three *different* token ids.
  std::vector<int32_t> num_tokens;
  for (const auto& t : tags) {
    const std::string& name = tagger->grammar().tokens()[t.token].name;
    if (name.find("NUM") != std::string::npos) num_tokens.push_back(t.token);
  }
  ASSERT_EQ(num_tokens.size(), 3u);
  std::sort(num_tokens.begin(), num_tokens.end());
  EXPECT_EQ(std::unique(num_tokens.begin(), num_tokens.end()),
            num_tokens.end());
}

TEST(ExpandContextsTest, ContextsIndexedByTokenId) {
  auto g = xmlrpc::XmlRpcGrammar();
  ASSERT_TRUE(g.ok());
  auto exp = ExpandContexts(*g);
  ASSERT_TRUE(exp.ok()) << exp.status();
  ASSERT_EQ(exp->contexts.size(), exp->grammar.NumTokens());
  for (size_t i = 0; i < exp->contexts.size(); ++i) {
    EXPECT_EQ(exp->contexts[i].token, static_cast<int32_t>(i));
    EXPECT_GE(exp->contexts[i].base_token, 0);
  }
  EXPECT_TRUE(exp->grammar.Validate().ok());
  EXPECT_GT(exp->grammar.NumTokens(), g->NumTokens());
}

}  // namespace
}  // namespace cfgtag::grammar
