// ScanEngine: the parallel paths must be byte-identical to the sequential
// ContextFilter::Scan — ScanBatch per stream, ScanStream across resync
// shard boundaries — and deterministic across repeated runs.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "grammar/grammar_parser.h"
#include "nids/context_filter.h"
#include "nids/scan_engine.h"
#include "obs/events.h"
#include "regex/char_class.h"

namespace cfgtag::nids {
namespace {

constexpr char kProtocol[] = R"grm(
PATH [a-zA-Z0-9/._-]+
WORD [a-zA-Z0-9/._-]+
%%
msg:  "REQ" path "HDR" hval "END";
path: PATH;
hval: WORD;
%%
)grm";

grammar::Grammar Protocol() {
  auto g = grammar::ParseGrammar(kProtocol);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

std::vector<Rule> WebRules() {
  return {
      {"TRAVERSAL", "../", "PATH", 3},
      {"PASSWD", "/etc/passwd", "PATH", 3},
      {"GLOBAL", "forbidden", "", 1},
  };
}

ContextFilter ResyncFilter() {
  hwgen::HwOptions opt;
  opt.tagger.arm_mode = tagger::ArmMode::kResync;
  auto filter = ContextFilter::Create(Protocol(), WebRules(), opt);
  EXPECT_TRUE(filter.ok()) << filter.status();
  return std::move(filter).value();
}

// Multi-message traffic with attacks in paths, decoys in headers, and the
// odd context-free hit.
std::string Traffic(int messages, uint64_t seed) {
  Rng rng(seed);
  std::string out;
  for (int i = 0; i < messages; ++i) {
    switch (rng.NextIndex(4)) {
      case 0:
        out += "REQ /a/../../etc/passwd HDR curl END\n";
        break;
      case 1:
        out += "REQ /index.html HDR decoy-/etc/passwd-x END\n";
        break;
      case 2:
        out += "REQ /ok HDR very-forbidden-agent END\n";
        break;
      default:
        out += "REQ /static/" + rng.NextString(8, "abcdefgh") +
               ".html HDR ua END\n";
    }
  }
  return out;
}

TEST(ScanEngineTest, BatchMatchesSequentialPerStream) {
  const ContextFilter filter = ResyncFilter();
  std::vector<std::string> storage;
  for (uint64_t s = 0; s < 8; ++s) storage.push_back(Traffic(20, s));
  storage.push_back("");  // empty stream rides along
  std::vector<std::string_view> streams(storage.begin(), storage.end());

  ScanEngineOptions opt;
  opt.num_threads = 4;
  const ScanEngine engine(&filter, opt);
  EXPECT_EQ(engine.num_threads(), 4);
  const auto results = engine.ScanBatch(streams);
  ASSERT_EQ(results.size(), streams.size());
  for (size_t i = 0; i < streams.size(); ++i) {
    ScanStats stats;
    EXPECT_EQ(results[i].alerts, filter.Scan(streams[i], &stats))
        << "stream " << i;
    EXPECT_EQ(results[i].stats.bytes, streams[i].size());
    EXPECT_EQ(results[i].stats.alerts, results[i].alerts.size());
  }
}

TEST(ScanEngineTest, EmptyBatch) {
  const ContextFilter filter = ResyncFilter();
  const ScanEngine engine(&filter);
  EXPECT_TRUE(engine.ScanBatch({}).empty());
}

TEST(ScanEngineTest, ShardedStreamMatchesSequential) {
  const ContextFilter filter = ResyncFilter();
  const std::string stream = Traffic(400, 42);
  ScanStats seq_stats;
  const auto sequential = filter.Scan(stream, &seq_stats);
  ASSERT_FALSE(sequential.empty());

  ScanEngineOptions opt;
  opt.num_threads = 4;
  opt.min_shard_bytes = 512;  // force many shards on a small stream
  const ScanEngine engine(&filter, opt);
  const StreamResult result = engine.ScanStream(stream);
  EXPECT_EQ(result.alerts, sequential);
  // Per-shard stats sum back to whole-stream figures — including tokens
  // and spans, which catch dropped tags near shard boundaries that the
  // alert comparison alone can miss (a cut mid-message loses the tail
  // tags of that message even when no alert pattern sits there).
  EXPECT_EQ(result.stats.bytes, stream.size());
  EXPECT_EQ(result.stats.alerts, sequential.size());
  EXPECT_EQ(result.stats.tokens, seq_stats.tokens);
  EXPECT_EQ(result.stats.spans_scanned, seq_stats.spans_scanned);
}

TEST(ScanEngineTest, ShardCutsOnlyAtRecordBoundaries) {
  // Regression: sharding used to cut at ANY tagger delimiter, including
  // the spaces inside a message. A fresh tagger at such a cut has only
  // the start tokens armed — the follow-set arms of the in-flight message
  // are lost, and every remaining token of that message goes untagged.
  // Tiny shards make almost every cut land mid-message unless the planner
  // restricts itself to the record separator.
  const ContextFilter filter = ResyncFilter();
  std::string stream;
  for (int i = 0; i < 64; ++i) {
    // Decoy in the LAST token of each message: if the cut drops tail
    // tags, the span handed to the matcher changes and alerts shift.
    stream += "REQ /a/../b HDR pre-/etc/passwd-";
    stream += std::to_string(i);
    stream += " END\n";
  }
  ScanStats seq_stats;
  const auto sequential = filter.Scan(stream, &seq_stats);

  ScanEngineOptions opt;
  opt.num_threads = 4;
  opt.min_shard_bytes = 16;
  opt.max_shards = 16;
  const ScanEngine engine(&filter, opt);
  const StreamResult result = engine.ScanStream(stream);
  EXPECT_EQ(result.alerts, sequential);
  EXPECT_EQ(result.stats.tokens, seq_stats.tokens);
  EXPECT_EQ(result.stats.spans_scanned, seq_stats.spans_scanned);
}

TEST(ScanEngineTest, NonDelimiterRecordSeparatorFallsBack) {
  // 'Q' appears in message bodies ("REQ"), so cutting on it would split
  // tokens; the engine must notice 'Q' is not a tagger delimiter and
  // refuse to shard rather than produce different alerts.
  const ContextFilter filter = ResyncFilter();
  const std::string stream = Traffic(100, 3);
  ScanEngineOptions opt;
  opt.num_threads = 4;
  opt.min_shard_bytes = 32;
  opt.record_delimiters = regex::CharClass::Of('Q');
  const ScanEngine engine(&filter, opt);
  EXPECT_EQ(engine.ScanStream(stream).alerts, filter.Scan(stream));
}

TEST(ScanEngineTest, ShardedStreamIsDeterministic) {
  const ContextFilter filter = ResyncFilter();
  const std::string stream = Traffic(200, 7);
  ScanEngineOptions opt;
  opt.num_threads = 4;
  opt.min_shard_bytes = 256;
  const ScanEngine engine(&filter, opt);
  const auto first = engine.ScanStream(stream).alerts;
  for (int run = 0; run < 3; ++run) {
    EXPECT_EQ(engine.ScanStream(stream).alerts, first) << "run " << run;
  }
}

TEST(ScanEngineTest, NonResyncFilterFallsBackToSequential) {
  // Anchored mode has no delimiter-boundary guarantee, so ScanStream must
  // not shard — it still has to return the sequential result.
  auto filter = ContextFilter::Create(Protocol(), WebRules());
  ASSERT_TRUE(filter.ok()) << filter.status();
  const std::string msg = "REQ /a/../../etc/passwd HDR curl END";
  ScanEngineOptions opt;
  opt.num_threads = 4;
  opt.min_shard_bytes = 1;
  const ScanEngine engine(&*filter, opt);
  EXPECT_EQ(engine.ScanStream(msg).alerts, filter->Scan(msg));
}

TEST(ScanEngineTest, SmallStreamsAndEmptyStream) {
  const ContextFilter filter = ResyncFilter();
  const ScanEngine engine(&filter);
  EXPECT_TRUE(engine.ScanStream("").alerts.empty());
  const std::string one = "REQ /x/../y HDR ua END\n";
  EXPECT_EQ(engine.ScanStream(one).alerts, filter.Scan(one));
}

// With the slow bound forced to "everything is slow" (any positive elapsed
// time crosses 0.0... but the option requires > 0 to arm, so use a
// denormal-small bound), each worker unit flight-records a kSlowShard
// event carrying its correlation id, and the NIDS alerts raised inside
// that unit carry the same id — a dump ties alert to shard.
TEST(ScanEngineTest, SlowShardEventsCarryTheShardsCorrelationId) {
  obs::FlightRecorder& rec = obs::FlightRecorder::Default();
  const uint64_t recorded_before = rec.total_recorded();

  const ContextFilter filter = ResyncFilter();
  ScanEngineOptions opt;
  opt.num_threads = 2;
  opt.slow_shard_seconds = 1e-12;  // everything is "slow"
  const ScanEngine engine(&filter, opt);
  const std::string attack = "REQ /a/../../etc/passwd HDR curl END\n";
  std::vector<std::string_view> streams{attack, attack};
  engine.ScanBatch(streams);

  std::vector<obs::Event> slow;
  std::vector<obs::Event> alerts;
  for (const obs::Event& e : rec.Snapshot()) {
    if (e.seq <= recorded_before) continue;
    if (e.kind == obs::EventKind::kSlowShard) slow.push_back(e);
    if (e.kind == obs::EventKind::kNidsAlert) alerts.push_back(e);
  }
  ASSERT_EQ(slow.size(), 2u);  // one per stream unit
  EXPECT_NE(slow[0].correlation_id, 0u);
  EXPECT_NE(slow[1].correlation_id, 0u);
  EXPECT_NE(slow[0].correlation_id, slow[1].correlation_id);
  ASSERT_FALSE(alerts.empty());
  for (const obs::Event& a : alerts) {
    EXPECT_TRUE(a.correlation_id == slow[0].correlation_id ||
                a.correlation_id == slow[1].correlation_id)
        << "alert correlation id " << a.correlation_id
        << " matches neither shard";
  }
}

TEST(ScanEngineTest, SlowShardDetectionIsOffByBoundZero) {
  obs::FlightRecorder& rec = obs::FlightRecorder::Default();
  const uint64_t recorded_before = rec.total_recorded();
  const ContextFilter filter = ResyncFilter();
  ScanEngineOptions opt;
  opt.slow_shard_seconds = 0.0;
  const ScanEngine engine(&filter, opt);
  engine.ScanBatch({Traffic(5, 1)});
  for (const obs::Event& e : rec.Snapshot()) {
    if (e.seq <= recorded_before) continue;
    EXPECT_NE(e.kind, obs::EventKind::kSlowShard);
  }
}

}  // namespace
}  // namespace cfgtag::nids
