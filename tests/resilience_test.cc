// The service-resilience layer: deadlines and cancellation must stop a
// scan mid-stream with a well-defined partial result, the resource budget
// must walk its degradation ladder in order (and back down with
// hysteresis), the fault injector must fire only when armed, and the
// hardened artifact loader must fail cleanly under injected I/O faults.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/resilience/budget.h"
#include "core/resilience/deadline.h"
#include "core/resilience/fault_injector.h"
#include "core/token_tagger.h"
#include "grammar/grammar_parser.h"
#include "nids/context_filter.h"
#include "nids/scan_engine.h"
#include "tagger/artifact/cache.h"

namespace cfgtag {
namespace {

namespace res = core::resilience;

constexpr char kProtocol[] = R"grm(
PATH [a-zA-Z0-9/._-]+
WORD [a-zA-Z0-9/._-]+
%%
msg:  "REQ" path "HDR" hval "END";
path: PATH;
hval: WORD;
%%
)grm";

grammar::Grammar Protocol() {
  auto g = grammar::ParseGrammar(kProtocol);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

core::CompiledTagger ResyncTagger() {
  hwgen::HwOptions opt;
  opt.tagger.arm_mode = tagger::ArmMode::kResync;
  auto t = core::CompiledTagger::Compile(Protocol(), opt);
  EXPECT_TRUE(t.ok()) << t.status();
  return std::move(t).value();
}

std::string Traffic(int messages) {
  std::string out;
  for (int i = 0; i < messages; ++i) {
    out += "REQ /a/../../etc/passwd HDR curl END\n";
  }
  return out;
}

nids::ContextFilter ResyncFilter() {
  hwgen::HwOptions opt;
  opt.tagger.arm_mode = tagger::ArmMode::kResync;
  std::vector<nids::Rule> rules = {
      {"TRAVERSAL", "../", "PATH", 3},
      {"GLOBAL", "forbidden", "", 1},
  };
  auto filter = nids::ContextFilter::Create(Protocol(), rules, opt);
  EXPECT_TRUE(filter.ok()) << filter.status();
  return std::move(filter).value();
}

// The injector and the budget are process-wide; every test starts and ends
// from the pristine state so suites cannot poison each other.
class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    res::FaultInjector::Instance().DisarmAll();
    res::ResourceBudget::Process().ResetForTest();
  }
  void TearDown() override {
    res::FaultInjector::Instance().DisarmAll();
    res::ResourceBudget::Process().ResetForTest();
  }
};

// --- Deadline / CancelToken basics ----------------------------------------

TEST_F(ResilienceTest, DefaultControlIsInert) {
  res::ScanControl control;
  EXPECT_TRUE(control.deadline.infinite());
  EXPECT_FALSE(control.cancel.cancelled());
  EXPECT_TRUE(control.Check().ok());
}

TEST_F(ResilienceTest, ExpiredDeadlineTripsCheck) {
  res::ScanControl control;
  control.deadline = res::Deadline::AfterMillis(-1);
  const Status s = control.Check();
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s;
}

TEST_F(ResilienceTest, CancelBeatsDeadline) {
  res::ScanControl control;
  control.deadline = res::Deadline::AfterMillis(-1);
  control.cancel = res::CancelToken();
  control.cancel.Cancel();
  // An explicit cancel wins over a timeout when both hold.
  EXPECT_EQ(control.Check().code(), StatusCode::kCancelled);
}

TEST_F(ResilienceTest, ChildTokenTripsOnParentCancel) {
  res::CancelToken parent;
  const res::CancelToken child = parent.Child();
  EXPECT_FALSE(child.cancelled());
  parent.Cancel();
  EXPECT_TRUE(child.cancelled());
  // ...but not the other way around.
  res::CancelToken parent2;
  const res::CancelToken child2 = parent2.Child();
  child2.Cancel();
  EXPECT_TRUE(child2.cancelled());
  EXPECT_FALSE(parent2.cancelled());
}

TEST_F(ResilienceTest, InertTokenNeverCancels) {
  const res::CancelToken none = res::CancelToken::None();
  none.Cancel();
  EXPECT_FALSE(none.cancelled());
}

// --- Fault injector -------------------------------------------------------

TEST_F(ResilienceTest, DisarmedHooksAreInert) {
  EXPECT_FALSE(res::FaultInjector::ShouldFail("artifact.mmap"));
  EXPECT_EQ(res::FaultInjector::ClockSkew("deadline.clock").count(), 0);
}

TEST_F(ResilienceTest, UnknownSiteIsRejected) {
  auto& fi = res::FaultInjector::Instance();
  EXPECT_FALSE(fi.Arm("no.such.site").ok());
  // A bad entry anywhere in a spec arms nothing at all.
  EXPECT_FALSE(fi.ArmFromSpec("artifact.mmap,no.such.site").ok());
  EXPECT_FALSE(res::FaultInjector::ShouldFail("artifact.mmap"));
}

TEST_F(ResilienceTest, PeriodFiresEveryNth) {
  auto& fi = res::FaultInjector::Instance();
  ASSERT_TRUE(fi.Arm("dfa.intern", /*period=*/3).ok());
  const uint64_t before = fi.injected_at("dfa.intern");
  int fired = 0;
  for (int i = 0; i < 9; ++i) {
    if (res::FaultInjector::ShouldFail("dfa.intern")) ++fired;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(fi.injected_at("dfa.intern") - before, 3u);
  fi.DisarmAll();
  EXPECT_FALSE(res::FaultInjector::ShouldFail("dfa.intern"));
}

TEST_F(ResilienceTest, SpecParsesPeriodAndArg) {
  auto& fi = res::FaultInjector::Instance();
  ASSERT_TRUE(fi.ArmFromSpec("deadline.clock:1:2000,artifact.open:2").ok());
  EXPECT_GE(res::FaultInjector::ClockSkew("deadline.clock"),
            std::chrono::milliseconds(2000));
  EXPECT_FALSE(res::FaultInjector::ShouldFail("artifact.open"));
  EXPECT_TRUE(res::FaultInjector::ShouldFail("artifact.open"));
}

// --- Controlled tagging ---------------------------------------------------

TEST_F(ResilienceTest, ControlledTagMatchesPlainTagWhenInert) {
  const core::CompiledTagger tagger = ResyncTagger();
  const std::string input = Traffic(200);
  const std::vector<tagger::Tag> plain = tagger.Tag(input);
  std::vector<tagger::Tag> controlled;
  uint64_t consumed = 0;
  const Status s = tagger.TagWithControl(
      input,
      [&](const tagger::Tag& t) {
        controlled.push_back(t);
        return true;
      },
      res::ScanControl{}, nullptr, &consumed);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(consumed, input.size());
  ASSERT_EQ(controlled.size(), plain.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(controlled[i].token, plain[i].token);
    EXPECT_EQ(controlled[i].end, plain[i].end);
  }
}

TEST_F(ResilienceTest, DeadlineMidStreamYieldsPartialTags) {
  const core::CompiledTagger tagger = ResyncTagger();
  const std::string input = Traffic(2000);
  // Deterministic expiry without wall-clock waiting: a one-minute deadline
  // plus an armed clock skew that jumps the observed clock two minutes
  // forward on the second check. The first chunk feeds; the second check
  // trips.
  ASSERT_TRUE(res::FaultInjector::Instance()
                  .Arm("deadline.clock", /*period=*/2, /*arg_ms=*/120000)
                  .ok());
  res::ScanControl control;
  control.deadline = res::Deadline::AfterMillis(60000);
  control.check_interval_bytes = 1024;
  std::vector<tagger::Tag> tags;
  std::atomic<uint64_t> progress{0};
  uint64_t consumed = 0;
  const Status s = tagger.TagWithControl(
      input,
      [&](const tagger::Tag& t) {
        tags.push_back(t);
        return true;
      },
      control, &progress, &consumed);
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s;
  EXPECT_GT(consumed, 0u);
  EXPECT_LT(consumed, input.size());
  EXPECT_EQ(progress.load(), consumed);
  // The partial tags describe exactly the consumed prefix.
  EXPECT_FALSE(tags.empty());
  for (const tagger::Tag& t : tags) EXPECT_LT(t.end, consumed);
}

TEST_F(ResilienceTest, CrossThreadCancellationStopsScan) {
  const core::CompiledTagger tagger = ResyncTagger();
  const std::string input = Traffic(2000);
  // Each 1 KiB chunk stalls 5 ms, so the full scan would take seconds;
  // the canceller fires after ~25 ms and must cut it short.
  ASSERT_TRUE(res::FaultInjector::Instance()
                  .Arm("scan.chunk", /*period=*/1, /*arg_ms=*/5)
                  .ok());
  res::ScanControl control;
  control.cancel = res::CancelToken();
  control.check_interval_bytes = 1024;
  std::thread canceller([&control] {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    control.cancel.Cancel();
  });
  std::vector<tagger::Tag> tags;
  uint64_t consumed = 0;
  const Status s = tagger.TagWithControl(
      input,
      [&](const tagger::Tag& t) {
        tags.push_back(t);
        return true;
      },
      control, nullptr, &consumed);
  canceller.join();
  EXPECT_EQ(s.code(), StatusCode::kCancelled) << s;
  EXPECT_GT(consumed, 0u);
  EXPECT_LT(consumed, input.size());
}

// --- Controlled ContextFilter / ScanEngine --------------------------------

TEST_F(ResilienceTest, ControlledFilterScanMatchesFastScan) {
  const nids::ContextFilter filter = ResyncFilter();
  const std::string stream = Traffic(100) + "REQ /ok HDR forbidden END\n";
  const std::vector<nids::Alert> fast = filter.Scan(stream);
  std::vector<nids::Alert> controlled;
  const Status s =
      filter.Scan(stream, res::ScanControl{}, &controlled);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(controlled, fast);
}

TEST_F(ResilienceTest, ControlledScanBatchReportsFailingShards) {
  const nids::ContextFilter filter = ResyncFilter();
  const nids::ScanEngine engine(&filter);
  const std::string stream = Traffic(50);
  std::vector<std::string_view> streams(4, stream);
  res::ScanControl control;
  control.cancel = res::CancelToken();
  control.cancel.Cancel();  // cancelled before it starts: every shard trips
  std::vector<nids::StreamResult> results;
  const Status s = engine.ScanBatch(streams, control, &results);
  EXPECT_EQ(s.code(), StatusCode::kCancelled) << s;
  EXPECT_NE(s.ToString().find("ScanBatch"), std::string::npos) << s;
  EXPECT_NE(s.ToString().find("shard"), std::string::npos) << s;
  ASSERT_EQ(results.size(), streams.size());
  for (const nids::StreamResult& r : results) EXPECT_TRUE(r.alerts.empty());
}

TEST_F(ResilienceTest, ControlledScanBatchMatchesUncontrolled) {
  const nids::ContextFilter filter = ResyncFilter();
  const nids::ScanEngine engine(&filter);
  std::vector<std::string> storage;
  for (int i = 1; i <= 6; ++i) storage.push_back(Traffic(10 * i));
  std::vector<std::string_view> streams(storage.begin(), storage.end());
  const std::vector<nids::StreamResult> plain = engine.ScanBatch(streams);
  std::vector<nids::StreamResult> controlled;
  const Status s =
      engine.ScanBatch(streams, res::ScanControl{}, &controlled);
  ASSERT_TRUE(s.ok()) << s;
  ASSERT_EQ(controlled.size(), plain.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(controlled[i].alerts, plain[i].alerts) << "stream " << i;
  }
}

TEST_F(ResilienceTest, WatchdogDeclaresStuckShard) {
  const nids::ContextFilter filter = ResyncFilter();
  nids::ScanEngineOptions opt;
  opt.stuck_shard_seconds = 0.05;
  const nids::ScanEngine engine(&filter, opt);
  // Every shard stalls 500 ms at its start — no byte progress for 10x the
  // stuck threshold, so the watchdog must fire, cancel the siblings, and
  // name the stuck shard instead of blocking on the join.
  ASSERT_TRUE(res::FaultInjector::Instance()
                  .Arm("engine.shard", /*period=*/1, /*arg_ms=*/500)
                  .ok());
  const std::string stream = Traffic(50);
  std::vector<std::string_view> streams(2, stream);
  res::ScanControl control;
  control.check_interval_bytes = 1024;
  std::vector<nids::StreamResult> results;
  const auto t0 = std::chrono::steady_clock::now();
  const Status s = engine.ScanBatch(streams, control, &results);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("stuck"), std::string::npos) << s;
  // The batch still completes promptly once the stall releases.
  EXPECT_LT(elapsed, std::chrono::seconds(30));
}

// --- Resource budget ladder -----------------------------------------------

TEST_F(ResilienceTest, LadderClimbsInOrderAndRecovers) {
  auto& budget = res::ResourceBudget::Process();
  budget.SetLimit(1000);
  EXPECT_EQ(budget.rung(), res::DegradationRung::kNone);

  budget.Charge(850, "test");  // 85%
  EXPECT_EQ(budget.rung(), res::DegradationRung::kShedDfa);
  EXPECT_TRUE(budget.ShouldShedDfa());
  EXPECT_FALSE(budget.ShouldTrimPools());

  budget.Charge(100, "test");  // 95%
  EXPECT_EQ(budget.rung(), res::DegradationRung::kTrimPools);
  EXPECT_TRUE(budget.ShouldShedDfa());
  EXPECT_TRUE(budget.ShouldTrimPools());
  EXPECT_FALSE(budget.ArtifactCacheReadOnly());

  budget.Charge(50, "test");  // 100%
  EXPECT_EQ(budget.rung(), res::DegradationRung::kArtifactReadOnly);
  EXPECT_TRUE(budget.ArtifactCacheReadOnly());

  // Hysteresis: dropping to 92% is not enough to leave kArtifactReadOnly's
  // neighborhood cleanly... 92% is below 95% - 5 = 90%? No: 92% >= 90%
  // keeps kTrimPools pinned once reached. Drop far below every band and
  // the ladder must fully release.
  budget.Release(920);  // 8%
  EXPECT_EQ(budget.rung(), res::DegradationRung::kNone);
  EXPECT_FALSE(budget.ShouldShedDfa());

  budget.Release(80);
  EXPECT_EQ(budget.used(), 0u);
}

TEST_F(ResilienceTest, LadderHoldsUnderHysteresis) {
  auto& budget = res::ResourceBudget::Process();
  budget.SetLimit(1000);
  budget.Charge(860, "test");  // 86% -> kShedDfa
  EXPECT_EQ(budget.rung(), res::DegradationRung::kShedDfa);
  budget.Release(30);  // 83% — above 80% (85 - 5): the rung must hold
  EXPECT_EQ(budget.rung(), res::DegradationRung::kShedDfa);
  budget.Release(50);  // 78% — below the hysteresis band: released
  EXPECT_EQ(budget.rung(), res::DegradationRung::kNone);
}

TEST_F(ResilienceTest, TryChargeDeniesOverLimit) {
  auto& budget = res::ResourceBudget::Process();
  budget.SetLimit(100);
  EXPECT_TRUE(budget.TryCharge(60, "test").ok());
  const Status denied = budget.TryCharge(60, "test");
  EXPECT_EQ(denied.code(), StatusCode::kResourceExhausted) << denied;
  // A denial means the pressure is real: the ladder pins at the top.
  EXPECT_TRUE(budget.ArtifactCacheReadOnly());
  EXPECT_EQ(budget.used(), 60u);  // the denied charge was not recorded
  budget.Release(60);
}

TEST_F(ResilienceTest, UnlimitedBudgetNeverDegrades) {
  auto& budget = res::ResourceBudget::Process();
  budget.Charge(1ull << 40, "test");
  EXPECT_EQ(budget.rung(), res::DegradationRung::kNone);
  EXPECT_TRUE(budget.TryCharge(1ull << 40, "test").ok());
}

TEST_F(ResilienceTest, ScopedChargeReleasesOnDestruction) {
  auto& budget = res::ResourceBudget::Process();
  budget.SetLimit(1000);
  {
    res::ScopedCharge charge("test");
    charge.Add(500);
    EXPECT_EQ(budget.used(), 500u);
    res::ScopedCharge moved = std::move(charge);
    EXPECT_EQ(moved.held(), 500u);
    EXPECT_EQ(charge.held(), 0u);  // NOLINT(bugprone-use-after-move)
  }
  EXPECT_EQ(budget.used(), 0u);
}

TEST_F(ResilienceTest, BudgetPressureShedsLazyDfa) {
  // A tiny budget forces kShedDfa before the lazy backend interns much;
  // the scan must still produce correct tags via the fused fallback.
  auto& budget = res::ResourceBudget::Process();
  hwgen::HwOptions opt;
  opt.tagger.arm_mode = tagger::ArmMode::kResync;
  opt.tagger.backend = tagger::TaggerBackend::kLazyDfa;
  auto t = core::CompiledTagger::Compile(Protocol(), opt);
  ASSERT_TRUE(t.ok()) << t.status();
  const std::string input = Traffic(50);
  const std::vector<tagger::Tag> expected = t->Tag(input);

  budget.SetLimit(100);
  budget.Charge(95, "test");  // pin the ladder at kTrimPools
  ASSERT_TRUE(budget.ShouldShedDfa());
  const std::vector<tagger::Tag> shed = t->Tag(input);
  ASSERT_EQ(shed.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(shed[i].token, expected[i].token);
    EXPECT_EQ(shed[i].end, expected[i].end);
  }
  budget.Release(95);
}

// --- Hardened artifact loading --------------------------------------------

class ArtifactFixture : public ResilienceTest {
 protected:
  void SetUp() override {
    ResilienceTest::SetUp();
    path_ = ::testing::TempDir() + "/resilience_artifact.cfgtag";
    hwgen::HwOptions opt;
    opt.tagger.arm_mode = tagger::ArmMode::kResync;
    opt.tagger.backend = tagger::TaggerBackend::kFused;
    auto t = core::CompiledTagger::Compile(Protocol(), opt);
    ASSERT_TRUE(t.ok()) << t.status();
    auto bytes = t->Serialize();
    ASSERT_TRUE(bytes.ok()) << bytes.status();
    ASSERT_TRUE(tagger::artifact::AtomicWriteFile(path_, *bytes).ok());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    ResilienceTest::TearDown();
  }
  std::string path_;
};

TEST_F(ArtifactFixture, CopiedLoadMatchesMappedLoad) {
  auto mapped = core::CompiledTagger::LoadArtifact(path_);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  auto copied = core::CompiledTagger::LoadArtifactCopied(path_);
  ASSERT_TRUE(copied.ok()) << copied.status();
  const std::string input = Traffic(20);
  const std::vector<tagger::Tag> a = mapped->Tag(input);
  const std::vector<tagger::Tag> b = copied->Tag(input);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].token, b[i].token);
    EXPECT_EQ(a[i].end, b[i].end);
  }
}

TEST_F(ArtifactFixture, InjectedIoFaultsFailCleanly) {
  auto& fi = res::FaultInjector::Instance();
  for (const char* site : {"artifact.open", "artifact.fstat"}) {
    ASSERT_TRUE(fi.Arm(site).ok()) << site;
    auto loaded = core::CompiledTagger::LoadArtifact(path_);
    EXPECT_FALSE(loaded.ok()) << "site " << site << " did not fire";
    fi.DisarmAll();
  }
  // An mmap failure is not fatal: the loader degrades to the aligned-copy
  // read path and the load still succeeds — but the fault must have fired.
  ASSERT_TRUE(fi.Arm("artifact.mmap").ok());
  const uint64_t before = fi.injected_at("artifact.mmap");
  EXPECT_TRUE(core::CompiledTagger::LoadArtifact(path_).ok());
  EXPECT_GT(fi.injected_at("artifact.mmap"), before);
  fi.DisarmAll();
  // The read()-based loader has its own fault site.
  ASSERT_TRUE(fi.Arm("artifact.read").ok());
  EXPECT_FALSE(core::CompiledTagger::LoadArtifactCopied(path_).ok());
  fi.DisarmAll();
  // Faults released: both loaders recover.
  EXPECT_TRUE(core::CompiledTagger::LoadArtifact(path_).ok());
  EXPECT_TRUE(core::CompiledTagger::LoadArtifactCopied(path_).ok());
}

TEST_F(ArtifactFixture, BudgetDenialRefusesLoad) {
  auto& budget = res::ResourceBudget::Process();
  budget.SetLimit(16);  // far below any artifact's size
  const auto loaded = core::CompiledTagger::LoadArtifact(path_);
  EXPECT_EQ(loaded.status().code(), StatusCode::kResourceExhausted)
      << loaded.status();
  budget.ResetForTest();
  EXPECT_TRUE(core::CompiledTagger::LoadArtifact(path_).ok());
}

}  // namespace
}  // namespace cfgtag
