// End-to-end CLI tests for cfgtagc: argument validation (strict --threads
// parsing) and the --backend switch. The binary path comes in through the
// CFGTAGC_BINARY compile definition; each case invokes the real tool.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#ifndef CFGTAGC_BINARY
#error "CFGTAGC_BINARY must be defined by the build"
#endif

namespace {

// Unique per test case: ctest runs the discovered cases of this binary as
// independent processes, possibly in parallel (-j), so a fixed temp path
// would race between them (one case's RunTool clobbering another's
// grammar/input/capture file mid-read).
std::string TempPath(const std::string& name) {
  const testing::TestInfo* info =
      testing::UnitTest::GetInstance()->current_test_info();
  const std::string test = info ? info->name() : "unknown";
  return testing::TempDir() + "/cfgtagc_cli_" + test + "_" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  ASSERT_TRUE(out.good()) << "cannot write " << path;
}

// Runs the tool with `args`, returns its exit code; stdout+stderr go to
// `capture_path` (always captured so failures print something useful).
int RunTool(const std::string& args, const std::string& capture_path) {
  const std::string cmd = std::string(CFGTAGC_BINARY) + " " + args + " > " +
                          capture_path + " 2>&1";
  const int rc = std::system(cmd.c_str());
  if (rc == -1) return -1;
  return WEXITSTATUS(rc);
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CfgtagcCliTest : public testing::Test {
 protected:
  void SetUp() override {
    grammar_ = TempPath("grammar.y");
    input_ = TempPath("input.txt");
    out_ = TempPath("out.txt");
    WriteFile(grammar_,
              "NUM [0-9]+\nWORD [a-z]+\n%%\ns: NUM WORD;\n%%\n");
    WriteFile(input_, "123 abc\n456 def\n");
  }

  std::string grammar_, input_, out_;
};

TEST_F(CfgtagcCliTest, TagsWithDefaultBackend) {
  ASSERT_EQ(RunTool(grammar_ + " --tag " + input_, out_), 0) << Slurp(out_);
  const std::string output = Slurp(out_);
  EXPECT_NE(output.find("functional engine"), std::string::npos) << output;
  EXPECT_NE(output.find("NUM"), std::string::npos) << output;
}

TEST_F(CfgtagcCliTest, BackendFusedTagsIdentically) {
  ASSERT_EQ(RunTool(grammar_ + " --tag " + input_, out_), 0) << Slurp(out_);
  const std::string functional = Slurp(out_);
  ASSERT_EQ(
      RunTool(grammar_ + " --backend fused --tag " + input_, out_), 0)
      << Slurp(out_);
  const std::string fused = Slurp(out_);
  EXPECT_NE(fused.find("fused engine"), std::string::npos) << fused;
  // Identical tag lines: everything after the "N tags from" banner.
  const auto tags_of = [](const std::string& s) {
    return s.substr(s.find(" tags from "));
  };
  EXPECT_EQ(tags_of(functional).substr(tags_of(functional).find(":")),
            tags_of(fused).substr(tags_of(fused).find(":")));
}

TEST_F(CfgtagcCliTest, BackendLazyTagsIdentically) {
  ASSERT_EQ(RunTool(grammar_ + " --tag " + input_, out_), 0) << Slurp(out_);
  const std::string functional = Slurp(out_);
  ASSERT_EQ(
      RunTool(grammar_ + " --backend lazy --tag " + input_, out_), 0)
      << Slurp(out_);
  const std::string lazy = Slurp(out_);
  EXPECT_NE(lazy.find("lazy-dfa engine"), std::string::npos) << lazy;
  const auto tags_of = [](const std::string& s) {
    return s.substr(s.find(" tags from "));
  };
  EXPECT_EQ(tags_of(functional).substr(tags_of(functional).find(":")),
            tags_of(lazy).substr(tags_of(lazy).find(":")));
}

TEST_F(CfgtagcCliTest, BackendAutoResolvesToConcreteEngine) {
  // kAuto never survives Compile: a tiny grammar resolves to the lazy DFA
  // (the byte-class x state-word product is far under the limit).
  ASSERT_EQ(RunTool(grammar_ + " --backend auto --tag " + input_, out_), 0)
      << Slurp(out_);
  EXPECT_NE(Slurp(out_).find("lazy-dfa engine"), std::string::npos)
      << Slurp(out_);
}

TEST_F(CfgtagcCliTest, BackendEqualsSyntaxAndMode) {
  EXPECT_EQ(RunTool(grammar_ + " --backend=fused --mode=resync --tag " +
                        input_,
                    out_),
            0)
      << Slurp(out_);
  EXPECT_EQ(RunTool(grammar_ + " --backend=lazy --mode=resync --tag " +
                        input_,
                    out_),
            0)
      << Slurp(out_);
}

TEST_F(CfgtagcCliTest, RejectsUnknownBackend) {
  EXPECT_EQ(RunTool(grammar_ + " --backend turbo --tag " + input_, out_), 2);
  EXPECT_NE(
      Slurp(out_).find("--backend must be functional, fused, lazy or auto"),
      std::string::npos)
      << Slurp(out_);
}

TEST_F(CfgtagcCliTest, ThreadsAcceptsPositiveCounts) {
  EXPECT_EQ(RunTool(grammar_ + " --mode resync --threads 2 --tag " + input_,
                    out_),
            0)
      << Slurp(out_);
  EXPECT_EQ(RunTool(grammar_ + " --mode resync --threads=4 --backend fused "
                    "--tag " + input_,
                    out_),
            0)
      << Slurp(out_);
}

TEST_F(CfgtagcCliTest, RejectsBadThreadCounts) {
  for (const char* bad : {"0", "-3", "abc", "12abc", "", "2.5",
                          "99999999999999999999"}) {
    EXPECT_EQ(RunTool(grammar_ + " --threads \"" + bad + "\" --tag " +
                          input_,
                      out_),
              2)
        << "--threads " << bad << " accepted: " << Slurp(out_);
    EXPECT_NE(Slurp(out_).find("--threads needs a positive count"),
              std::string::npos)
        << Slurp(out_);
  }
}

TEST_F(CfgtagcCliTest, StatsAttributionAndFlightRecorderFlags) {
  const std::string fr = TempPath("fr_ok.json");
  std::remove(fr.c_str());
  ASSERT_EQ(RunTool(grammar_ + " --stats-port=0 --attribution "
                    "--flight-recorder-out " + fr + " --tag " + input_,
                    out_),
            0)
      << Slurp(out_);
  const std::string output = Slurp(out_);
  // The server bound an ephemeral port and announced its endpoints.
  EXPECT_NE(output.find("stats server on http://127.0.0.1:"),
            std::string::npos)
      << output;
  EXPECT_NE(output.find("/metrics"), std::string::npos) << output;
  // The flight-recorder dump was written on exit and is parseable shape.
  const std::string dump = Slurp(fr);
  EXPECT_NE(dump.find("\"recorded\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"events\""), std::string::npos) << dump;
  std::remove(fr.c_str());
}

TEST_F(CfgtagcCliTest, RejectsBadStatsPorts) {
  for (const char* bad : {"65536", "-2", "abc", "1.5", "12abc", ""}) {
    EXPECT_EQ(RunTool(grammar_ + " --stats-port \"" + bad + "\" --tag " +
                          input_,
                      out_),
              2)
        << "--stats-port " << bad << " accepted: " << Slurp(out_);
    EXPECT_NE(Slurp(out_).find("--stats-port"), std::string::npos)
        << Slurp(out_);
  }
}

TEST_F(CfgtagcCliTest, RejectsUnwritableFlightRecorderPath) {
  // The dump path is validated up front like --threads/--stats-port: a
  // path that can only fail at exit (or inside the signal handler) would
  // silently lose the recording.
  const std::string bad = TempPath("no_such_dir") + "/sub/fr.json";
  EXPECT_EQ(RunTool(grammar_ + " --flight-recorder-out " + bad + " --tag " +
                        input_,
                    out_),
            2)
      << Slurp(out_);
  EXPECT_NE(Slurp(out_).find("--flight-recorder-out needs a writable path"),
            std::string::npos)
      << Slurp(out_);
  // An empty value is a usage error too.
  EXPECT_EQ(RunTool(grammar_ + " --flight-recorder-out \"\" --tag " + input_,
                    out_),
            2)
      << Slurp(out_);
  // The probe must not clobber an existing dump: probing opens for append.
  const std::string existing = TempPath("fr_existing.json");
  WriteFile(existing, "precious");
  EXPECT_EQ(RunTool(grammar_ + " --flight-recorder-out " + existing +
                        " --backend turbo",  // fails after validation
                    out_),
            2);
  EXPECT_EQ(Slurp(existing), "precious");
  std::remove(existing.c_str());
}

TEST_F(CfgtagcCliTest, SaveThenLoadArtifactTagsIdentically) {
  const std::string art = TempPath("tagger.cfgtag");
  std::remove(art.c_str());
  ASSERT_EQ(RunTool(grammar_ + " --backend lazy --save-artifact " + art +
                        " --tag " + input_,
                    out_),
            0)
      << Slurp(out_);
  const std::string direct = Slurp(out_);
  EXPECT_NE(direct.find("wrote "), std::string::npos) << direct;
  EXPECT_NE(direct.find("-byte artifact to "), std::string::npos) << direct;

  // With --load-artifact the grammar positional becomes the input to tag.
  ASSERT_EQ(RunTool("--load-artifact " + art + " " + input_, out_), 0)
      << Slurp(out_);
  const std::string loaded = Slurp(out_);
  EXPECT_NE(loaded.find("from artifact"), std::string::npos) << loaded;
  EXPECT_NE(loaded.find("software engine loaded from artifact (no netlist)"),
            std::string::npos)
      << loaded;
  const auto tags_of = [](const std::string& s) {
    const size_t at = s.find(" tags from ");
    return s.substr(s.find(":", at));
  };
  EXPECT_EQ(tags_of(direct), tags_of(loaded));
  std::remove(art.c_str());
}

TEST_F(CfgtagcCliTest, CacheDirMissesThenHits) {
  const std::string dir = TempPath("cache");
  const std::string cmd = "mkdir -p '" + dir + "'";
  ASSERT_EQ(std::system(cmd.c_str()), 0);

  ASSERT_EQ(RunTool(grammar_ + " --backend auto --cache-dir " + dir +
                        " --tag " + input_,
                    out_),
            0)
      << Slurp(out_);
  const std::string miss = Slurp(out_);
  // The miss compiled for real (netlist stats printed), and kAuto with AOT
  // enabled resolved to the lazy DFA.
  EXPECT_NE(miss.find("lazy-dfa engine"), std::string::npos) << miss;
  EXPECT_EQ(miss.find("loaded from artifact"), std::string::npos) << miss;

  ASSERT_EQ(RunTool(grammar_ + " --backend auto --cache-dir " + dir +
                        " --tag " + input_,
                    out_),
            0)
      << Slurp(out_);
  const std::string hit = Slurp(out_);
  EXPECT_NE(hit.find("software engine loaded from artifact (no netlist)"),
            std::string::npos)
      << hit;
  const auto tags_of = [](const std::string& s) {
    const size_t at = s.find(" tags from ");
    return s.substr(s.find(":", at));
  };
  EXPECT_EQ(tags_of(miss), tags_of(hit));

  const std::string rm = "rm -rf '" + dir + "'";
  ASSERT_EQ(std::system(rm.c_str()), 0);
}

TEST_F(CfgtagcCliTest, RejectsUnusableArtifactPaths) {
  // --save-artifact into a missing directory: probed up front, exit 2.
  const std::string bad_out = TempPath("no_such_dir") + "/sub/t.cfgtag";
  EXPECT_EQ(RunTool(grammar_ + " --save-artifact " + bad_out + " --tag " +
                        input_,
                    out_),
            2)
      << Slurp(out_);
  EXPECT_NE(Slurp(out_).find("--save-artifact needs a writable path"),
            std::string::npos)
      << Slurp(out_);

  // --load-artifact with a missing file: probed up front, exit 2.
  const std::string missing = TempPath("missing.cfgtag");
  std::remove(missing.c_str());
  EXPECT_EQ(RunTool("--load-artifact " + missing + " " + input_, out_), 2)
      << Slurp(out_);
  EXPECT_NE(Slurp(out_).find("--load-artifact needs a readable artifact"),
            std::string::npos)
      << Slurp(out_);

  // --cache-dir that does not exist: probed up front, exit 2.
  const std::string bad_dir = TempPath("no_such_cache_dir");
  EXPECT_EQ(RunTool(grammar_ + " --cache-dir " + bad_dir + " --tag " + input_,
                    out_),
            2)
      << Slurp(out_);
  EXPECT_NE(Slurp(out_).find("--cache-dir needs a writable directory"),
            std::string::npos)
      << Slurp(out_);

  // Empty values are usage errors for all three.
  EXPECT_EQ(RunTool(grammar_ + " --save-artifact \"\" --tag " + input_, out_),
            2);
  EXPECT_EQ(RunTool(grammar_ + " --load-artifact \"\" " + input_, out_), 2);
  EXPECT_EQ(RunTool(grammar_ + " --cache-dir \"\" --tag " + input_, out_), 2);
}

TEST_F(CfgtagcCliTest, LoadArtifactRejectsHardwareAndAnalysisOutputs) {
  const std::string art = TempPath("tagger.cfgtag");
  std::remove(art.c_str());
  ASSERT_EQ(RunTool(grammar_ + " --backend fused --save-artifact " + art +
                        " --tag " + input_,
                    out_),
            0)
      << Slurp(out_);

  // The functional backend keeps no flat tables: --save-artifact with it
  // is a status error (exit 1), reported before any tagging output.
  EXPECT_EQ(RunTool(grammar_ + " --save-artifact " + TempPath("f.cfgtag") +
                        " --tag " + input_,
                    out_),
            1);
  EXPECT_NE(Slurp(out_).find("no flat tables"), std::string::npos)
      << Slurp(out_);

  // Artifacts carry no netlist: every hardware output is a usage error.
  EXPECT_EQ(RunTool("--load-artifact " + art + " --report " + input_, out_),
            2);
  EXPECT_NE(Slurp(out_).find("software engine only"), std::string::npos)
      << Slurp(out_);
  EXPECT_EQ(RunTool("--load-artifact " + art + " --vhdl " +
                        TempPath("t.vhd") + " " + input_,
                    out_),
            2);

  // Analysis and lint need the grammar source.
  EXPECT_EQ(RunTool("--load-artifact " + art + " --analysis " + input_, out_),
            2);
  EXPECT_NE(Slurp(out_).find("need the grammar source"), std::string::npos)
      << Slurp(out_);

  // A corrupt artifact fails with a status error (exit 1, not a crash).
  const std::string corrupt = TempPath("corrupt.cfgtag");
  WriteFile(corrupt, "CFGTAGAF but not really an artifact");
  EXPECT_EQ(RunTool("--load-artifact " + corrupt + " " + input_, out_), 1)
      << Slurp(out_);
  EXPECT_NE(Slurp(out_).find("artifact"), std::string::npos) << Slurp(out_);
  std::remove(corrupt.c_str());
  std::remove(art.c_str());
}

TEST_F(CfgtagcCliTest, FlightRecorderDumpCarriesStatusFailures) {
  const std::string bad_grammar = TempPath("bad_grammar.y");
  const std::string fr = TempPath("fr_fail.json");
  WriteFile(bad_grammar, "NUM [0-9]+\n");  // no definitions section
  std::remove(fr.c_str());
  EXPECT_EQ(RunTool(bad_grammar + " --flight-recorder-out " + fr + " --tag " +
                        input_,
                    out_),
            1)
      << Slurp(out_);
  EXPECT_NE(Slurp(out_).find("grammar error:"), std::string::npos)
      << Slurp(out_);
  // The failure that ended the run is in the dump.
  const std::string dump = Slurp(fr);
  EXPECT_NE(dump.find("status_error"), std::string::npos) << dump;
  EXPECT_NE(dump.find("grammar"), std::string::npos) << dump;
  std::remove(fr.c_str());
  std::remove(bad_grammar.c_str());
}

}  // namespace
