#include <gtest/gtest.h>

#include <vector>

#include "rtl/netlist.h"
#include "rtl/simulator.h"

namespace cfgtag::rtl {
namespace {

// A one-bit counter (register fed by its own inverse): toggles every cycle.
Netlist TogglerNetlist() {
  Netlist nl;
  const NodeId reg = nl.RegPlaceholder(kInvalidNode, /*init=*/false, "tog");
  nl.SetRegD(reg, nl.Not(reg));
  nl.MarkOutput(reg, "q");
  return nl;
}

TEST(SimulatorProbeTest, CallbackFiresOncePerCycle) {
  const Netlist nl = TogglerNetlist();
  auto sim = Simulator::Create(&nl);
  ASSERT_TRUE(sim.ok()) << sim.status();

  const NodeId reg = nl.FindByName("tog");
  ASSERT_NE(reg, kInvalidNode);
  std::vector<std::pair<uint64_t, bool>> seen;
  sim->AddProbe(reg, [&seen](uint64_t cycle, bool value) {
    seen.emplace_back(cycle, value);
  });

  constexpr int kCycles = 6;
  for (int i = 0; i < kCycles; ++i) sim->Step();

  ASSERT_EQ(seen.size(), static_cast<size_t>(kCycles));
  for (int i = 0; i < kCycles; ++i) {
    EXPECT_EQ(seen[i].first, static_cast<uint64_t>(i));
    // Post-edge value: 1 after the first edge, alternating thereafter.
    EXPECT_EQ(seen[i].second, i % 2 == 0);
  }
}

TEST(SimulatorProbeTest, ProbesPersistAcrossReset) {
  const Netlist nl = TogglerNetlist();
  auto sim = Simulator::Create(&nl);
  ASSERT_TRUE(sim.ok()) << sim.status();
  int fires = 0;
  sim->AddProbe(nl.FindByName("tog"), [&fires](uint64_t, bool) { ++fires; });
  sim->Step();
  sim->Reset();
  sim->Step();
  sim->Step();
  EXPECT_EQ(fires, 3);
}

TEST(SimulatorActivityTest, CountsCyclesAndToggles) {
  const Netlist nl = TogglerNetlist();
  auto sim = Simulator::Create(&nl);
  ASSERT_TRUE(sim.ok()) << sim.status();
  sim->EnableActivityStats(true);
  for (int i = 0; i < 10; ++i) sim->Step();

  const ActivityStats& stats = sim->activity();
  EXPECT_EQ(stats.cycles, 10u);
  EXPECT_EQ(stats.reg_toggles, 10u);  // the toggler flips every cycle
  // The toggler has no clock-enable, so no enable accounting applies.
  EXPECT_EQ(stats.enabled_samples, 0u);
  EXPECT_EQ(stats.gated_samples, 0u);
}

TEST(SimulatorActivityTest, EnableGatedSamplesAreAttributed) {
  Netlist nl;
  const NodeId en = nl.AddInput("en");
  const NodeId reg = nl.RegPlaceholder(en, /*init=*/false, "gated");
  nl.SetRegD(reg, nl.Const1());
  nl.MarkOutput(reg, "q");

  auto sim = Simulator::Create(&nl);
  ASSERT_TRUE(sim.ok()) << sim.status();
  sim->EnableActivityStats(true);

  sim->SetInput(en, false);
  sim->Step();
  sim->Step();
  EXPECT_EQ(sim->activity().gated_samples, 2u);
  EXPECT_EQ(sim->activity().enabled_samples, 0u);
  EXPECT_EQ(sim->activity().reg_toggles, 0u);
  EXPECT_FALSE(sim->Get(reg));

  sim->SetInput(en, true);
  sim->Step();  // loads 1: one toggle
  sim->Step();  // stays 1: no toggle
  EXPECT_EQ(sim->activity().enabled_samples, 2u);
  EXPECT_EQ(sim->activity().reg_toggles, 1u);
  EXPECT_TRUE(sim->Get(reg));
}

TEST(SimulatorActivityTest, ToggleReportRanksHottestRegisters) {
  Netlist nl;
  // "hot" toggles every cycle; "cold" never changes.
  const NodeId hot = nl.RegPlaceholder(kInvalidNode, false, "hot");
  nl.SetRegD(hot, nl.Not(hot));
  const NodeId cold = nl.Reg(nl.Const0(), kInvalidNode, false, "cold");
  nl.MarkOutput(hot, "h");
  nl.MarkOutput(cold, "c");

  auto sim = Simulator::Create(&nl);
  ASSERT_TRUE(sim.ok()) << sim.status();
  sim->EnableActivityStats(true);
  for (int i = 0; i < 8; ++i) sim->Step();

  const ToggleRateReport report = sim->BuildToggleReport(/*top_n=*/5);
  EXPECT_EQ(report.cycles, 8u);
  EXPECT_EQ(report.total_toggles, 8u);
  // Only registers that actually toggled are listed.
  ASSERT_EQ(report.hottest.size(), 1u);
  EXPECT_EQ(report.hottest[0].name, "hot");
  EXPECT_EQ(report.hottest[0].toggles, 8u);
  EXPECT_DOUBLE_EQ(report.hottest[0].rate, 1.0);
  // Two registers, one at rate 1.0 and one at 0.0.
  EXPECT_DOUBLE_EQ(report.avg_rate, 0.5);
  EXPECT_NE(report.ToString().find("hot"), std::string::npos);
}

TEST(SimulatorActivityTest, DisabledByDefaultAndResetsOnEnable) {
  const Netlist nl = TogglerNetlist();
  auto sim = Simulator::Create(&nl);
  ASSERT_TRUE(sim.ok()) << sim.status();
  sim->Step();
  EXPECT_EQ(sim->activity().cycles, 0u);  // accounting was off
  sim->EnableActivityStats(true);
  sim->Step();
  EXPECT_EQ(sim->activity().cycles, 1u);
  sim->EnableActivityStats(true);  // re-enable clears the window
  EXPECT_EQ(sim->activity().cycles, 0u);
  EXPECT_TRUE(sim->BuildToggleReport().hottest.empty());
}

}  // namespace
}  // namespace cfgtag::rtl
