#include <gtest/gtest.h>

#include "grammar/grammar_parser.h"
#include "grammar/lint.h"
#include "xmlrpc/xmlrpc_grammar.h"

namespace cfgtag::grammar {
namespace {

grammar::Grammar MustParse(const std::string& text) {
  auto g = grammar::ParseGrammar(text);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

int Count(const std::vector<LintFinding>& findings, LintFinding::Kind kind) {
  int n = 0;
  for (const auto& f : findings) n += f.kind == kind;
  return n;
}

TEST(LintTest, CleanGrammarHasNoFindings) {
  auto findings = Lint(MustParse(R"(
%%
stmt: "if" cond "then" stmt "else" stmt | "go" | "stop";
cond: "true" | "false";
%%
)"));
  ASSERT_TRUE(findings.ok()) << findings.status();
  EXPECT_TRUE(findings->empty());
}

TEST(LintTest, DetectsUnreachableNonterminal) {
  auto findings = Lint(MustParse(R"(
%%
s: "a";
island: "b";
%%
)"));
  ASSERT_TRUE(findings.ok());
  EXPECT_EQ(Count(*findings, LintFinding::Kind::kUnreachableNonterminal), 1);
}

TEST(LintTest, DetectsUnusedToken) {
  auto findings = Lint(MustParse("GHOST [0-9]+\n%%\ns: \"a\";\n%%\n"));
  ASSERT_TRUE(findings.ok());
  ASSERT_EQ(Count(*findings, LintFinding::Kind::kUnusedToken), 1);
}

TEST(LintTest, DetectsNonproductiveNonterminal) {
  // loop only derives itself: reachable but nonproductive.
  auto findings = Lint(MustParse(R"(
%%
s: "a" loop;
loop: "x" loop;
%%
)"));
  ASSERT_TRUE(findings.ok());
  // Both `loop` and `s` (which needs loop) can never finish deriving.
  EXPECT_EQ(Count(*findings, LintFinding::Kind::kNonproductiveNonterminal), 2);
}

TEST(LintTest, DetectsIdenticalPatternArmConflict) {
  // MIN and SEC both follow the shared ':' token — identical patterns
  // armed together, the §3.2/§3.4 case.
  auto findings = Lint(MustParse(R"(
NUM1, NUM2 [0-9][0-9]
%%
t: NUM1 ":" NUM2 ":" NUM1;
%%
)"));
  ASSERT_TRUE(findings.ok());
  EXPECT_GE(Count(*findings, LintFinding::Kind::kArmConflict), 1);
}

TEST(LintTest, DetectsKeywordSubsumedByIdentifier) {
  // "go" is fully matched by WORD and both are armed at start.
  auto findings = Lint(MustParse(R"(
WORD [a-z]+
%%
s: "go" | WORD;
%%
)"));
  ASSERT_TRUE(findings.ok());
  ASSERT_EQ(Count(*findings, LintFinding::Kind::kArmConflict), 1);
}

TEST(LintTest, DetectsLiteralPrefixShadow) {
  auto findings = Lint(MustParse(R"(
%%
s: "ab" "x" | "abc" "y";
%%
)"));
  ASSERT_TRUE(findings.ok());
  EXPECT_EQ(Count(*findings, LintFinding::Kind::kPrefixShadow), 1);
}

TEST(LintTest, XmlRpcGrammarFindingsAreExpected) {
  auto g = xmlrpc::XmlRpcGrammar();
  ASSERT_TRUE(g.ok());
  auto findings = Lint(*g);
  ASSERT_TRUE(findings.ok()) << findings.status();
  // Known in the paper's grammar: MONTH/DAY and HOUR/MIN/SEC duplicates
  // share arm contexts via the duplicated ':' literal.
  EXPECT_GE(Count(*findings, LintFinding::Kind::kArmConflict), 1);
  // No dead symbols.
  EXPECT_EQ(Count(*findings, LintFinding::Kind::kUnreachableNonterminal), 0);
  EXPECT_EQ(Count(*findings, LintFinding::Kind::kUnusedToken), 0);
  EXPECT_EQ(Count(*findings, LintFinding::Kind::kNonproductiveNonterminal),
            0);
}

TEST(LintTest, KindNamesAreStable) {
  EXPECT_STREQ(LintKindName(LintFinding::Kind::kArmConflict),
               "arm-conflict");
  EXPECT_STREQ(LintKindName(LintFinding::Kind::kUnusedToken),
               "unused-token");
}

}  // namespace
}  // namespace cfgtag::grammar
