#include <gtest/gtest.h>

#include "rtl/netlist.h"

namespace cfgtag::rtl {
namespace {

TEST(NetlistTest, ConstantsPreallocated) {
  Netlist nl;
  EXPECT_EQ(nl.Const0(), 0u);
  EXPECT_EQ(nl.Const1(), 1u);
  EXPECT_EQ(nl.NumNodes(), 2u);
}

TEST(NetlistTest, AndFoldsConstants) {
  Netlist nl;
  NodeId a = nl.AddInput("a");
  EXPECT_EQ(nl.And({a, nl.Const0()}), nl.Const0());
  EXPECT_EQ(nl.And({a, nl.Const1()}), a);  // neutral element removed
  EXPECT_EQ(nl.And({}), nl.Const1());
  EXPECT_EQ(nl.And({a}), a);
}

TEST(NetlistTest, OrFoldsConstants) {
  Netlist nl;
  NodeId a = nl.AddInput("a");
  EXPECT_EQ(nl.Or({a, nl.Const1()}), nl.Const1());
  EXPECT_EQ(nl.Or({a, nl.Const0()}), a);
  EXPECT_EQ(nl.Or({}), nl.Const0());
}

TEST(NetlistTest, NotFolds) {
  Netlist nl;
  NodeId a = nl.AddInput("a");
  EXPECT_EQ(nl.Not(nl.Const0()), nl.Const1());
  EXPECT_EQ(nl.Not(nl.Const1()), nl.Const0());
  NodeId na = nl.Not(a);
  EXPECT_EQ(nl.Not(na), a);  // double negation
}

TEST(NetlistTest, XorFolds) {
  Netlist nl;
  NodeId a = nl.AddInput("a");
  EXPECT_EQ(nl.Xor(a, nl.Const0()), a);
  EXPECT_EQ(nl.Xor(nl.Const0(), a), a);
  // Xor with 1 becomes a NOT node.
  NodeId x = nl.Xor(a, nl.Const1());
  EXPECT_EQ(nl.node(x).kind, NodeKind::kNot);
}

TEST(NetlistTest, GateArityRecorded) {
  Netlist nl;
  NodeId a = nl.AddInput("a");
  NodeId b = nl.AddInput("b");
  NodeId c = nl.AddInput("c");
  NodeId g = nl.And({a, b, c});
  EXPECT_EQ(nl.node(g).kind, NodeKind::kAnd);
  EXPECT_EQ(nl.node(g).fanin.size(), 3u);
}

TEST(NetlistTest, DelayLineDepth) {
  Netlist nl;
  NodeId a = nl.AddInput("a");
  NodeId d = nl.DelayLine(a, 3);
  int regs = 0;
  NodeId cur = d;
  while (nl.node(cur).kind == NodeKind::kReg) {
    ++regs;
    cur = nl.node(cur).fanin[0];
  }
  EXPECT_EQ(regs, 3);
  EXPECT_EQ(cur, a);
  EXPECT_EQ(nl.DelayLine(a, 0), a);
}

TEST(NetlistTest, RegPlaceholderPatching) {
  Netlist nl;
  NodeId r = nl.RegPlaceholder(kInvalidNode, true, "state");
  NodeId d = nl.Or2(r, nl.AddInput("in"));
  nl.SetRegD(r, d);
  EXPECT_EQ(nl.node(r).fanin[0], d);
  EXPECT_TRUE(nl.node(r).init);
  EXPECT_TRUE(nl.Validate().ok());
}

TEST(NetlistTest, ValidateCatchesDuplicateOutputs) {
  Netlist nl;
  NodeId a = nl.AddInput("a");
  nl.MarkOutput(a, "out");
  nl.MarkOutput(a, "out");
  EXPECT_FALSE(nl.Validate().ok());
}

TEST(NetlistTest, ValidateCatchesDuplicateInputNames) {
  Netlist nl;
  nl.AddInput("a");
  nl.AddInput("a");
  EXPECT_FALSE(nl.Validate().ok());
}

TEST(NetlistTest, FindByName) {
  Netlist nl;
  NodeId a = nl.AddInput("alpha");
  EXPECT_EQ(nl.FindByName("alpha"), a);
  EXPECT_EQ(nl.FindByName("missing"), kInvalidNode);
}

TEST(NetlistTest, StatsCountKindsAndDepth) {
  Netlist nl;
  NodeId a = nl.AddInput("a");
  NodeId b = nl.AddInput("b");
  NodeId g1 = nl.And2(a, b);
  NodeId g2 = nl.Or2(g1, a);
  NodeId g3 = nl.Not(g2);
  nl.Reg(g3);
  Netlist::Stats s = nl.ComputeStats();
  EXPECT_EQ(s.num_inputs, 2u);
  EXPECT_EQ(s.num_and, 1u);
  EXPECT_EQ(s.num_or, 1u);
  EXPECT_EQ(s.num_not, 1u);
  EXPECT_EQ(s.num_regs, 1u);
  EXPECT_EQ(s.comb_depth, 3u);
}

TEST(NetlistTest, PipelinedOrDepthAndFolding) {
  Netlist nl;
  std::vector<NodeId> ins;
  for (int i = 0; i < 62; ++i) ins.push_back(nl.AddInput("i" + std::to_string(i)));
  auto [root, depth] = nl.PipelinedOr(ins, 4);
  EXPECT_EQ(depth, 3);  // 62 -> 16 -> 4 -> 1
  EXPECT_EQ(nl.node(root).kind, NodeKind::kReg);

  auto [single, d1] = nl.PipelinedOr({ins[0]}, 4);
  EXPECT_EQ(single, ins[0]);
  EXPECT_EQ(d1, 0);

  auto [none, d0] = nl.PipelinedOr({}, 4);
  EXPECT_EQ(none, nl.Const0());
  EXPECT_EQ(d0, 0);
}

}  // namespace
}  // namespace cfgtag::rtl
