#include <gtest/gtest.h>

#include "core/token_tagger.h"
#include "grammar/grammar_parser.h"
#include "hwgen/tagger_gen.h"
#include "rtl/techmap.h"
#include "xmlrpc/xmlrpc_grammar.h"

namespace cfgtag::hwgen {
namespace {

grammar::Grammar MustParse(const std::string& text) {
  auto g = grammar::ParseGrammar(text);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

constexpr char kSmall[] = R"(
NUM [0-9]+
%%
s: "<n>" NUM "</n>";
%%
)";

TEST(TaggerGeneratorTest, StructureBasics) {
  auto gen = TaggerGenerator::Generate(MustParse(kSmall), {});
  ASSERT_TRUE(gen.ok()) << gen.status();
  EXPECT_EQ(gen->data_in.size(), 8u);
  EXPECT_EQ(gen->num_tokens, 3u);
  EXPECT_EQ(gen->match_regs.size(), 3u);
  EXPECT_EQ(gen->pattern_bytes, 8u);  // "<n>"(3) + NUM(1) + "</n>"(4)
  EXPECT_GT(gen->match_latency, 0);
  EXPECT_GE(gen->index_latency, gen->match_latency);
  EXPECT_TRUE(gen->netlist.Validate().ok());
}

TEST(TaggerGeneratorTest, PatternBytesMatchesGrammar) {
  grammar::Grammar g = MustParse(kSmall);
  const size_t expected = g.PatternBytes();
  auto gen = TaggerGenerator::Generate(g, {});
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(gen->pattern_bytes, expected);
}

TEST(TaggerGeneratorTest, NoEncoderOption) {
  HwOptions opt;
  opt.emit_index_encoder = false;
  auto gen = TaggerGenerator::Generate(MustParse(kSmall), opt);
  ASSERT_TRUE(gen.ok()) << gen.status();
  EXPECT_EQ(gen->index_valid, rtl::kInvalidNode);
  EXPECT_TRUE(gen->index_bits.empty());
}

TEST(TaggerGeneratorTest, NaiveEncoderShortensLatency) {
  HwOptions pipelined;
  HwOptions naive;
  naive.pipelined_encoder = false;
  auto g1 = TaggerGenerator::Generate(MustParse(kSmall), pipelined);
  auto g2 = TaggerGenerator::Generate(MustParse(kSmall), naive);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  EXPECT_LT(g2->index_latency, g1->index_latency);
}

TEST(TaggerGeneratorTest, DecoderReplicationBoundsFanout) {
  // Build a grammar big enough that some decoded class exceeds the
  // replication threshold, then check the mapped fan-outs.
  auto base = xmlrpc::XmlRpcGrammar();
  ASSERT_TRUE(base.ok());

  HwOptions plain;
  HwOptions replicated;
  replicated.decoder_replication = true;
  replicated.replication_threshold = 16;

  auto gen_plain = TaggerGenerator::Generate(*base, plain);
  auto gen_repl = TaggerGenerator::Generate(*base, replicated);
  ASSERT_TRUE(gen_plain.ok());
  ASSERT_TRUE(gen_repl.ok());

  rtl::TechMapper mapper(4);
  auto m_plain = mapper.Map(gen_plain->netlist);
  auto m_repl = mapper.Map(gen_repl->netlist);
  ASSERT_TRUE(m_plain.ok());
  ASSERT_TRUE(m_repl.ok());

  auto max_decreg_fanout = [](const rtl::MappedNetlist& m) {
    uint32_t worst = 0;
    for (const auto& net : m.nets) {
      if (net.kind == rtl::MappedNetlist::NetKind::kReg &&
          net.name.rfind("decreg_", 0) == 0) {
        worst = std::max(worst, net.fanout);
      }
    }
    return worst;
  };
  EXPECT_GT(max_decreg_fanout(*m_plain), 16u);
  EXPECT_LE(max_decreg_fanout(*m_repl), 16u);
  // Replication costs extra registers but must not change behaviour.
  EXPECT_GT(m_repl->NumFfs(), m_plain->NumFfs());
}

TEST(TaggerGeneratorTest, ReplicationPreservesTags) {
  auto base = xmlrpc::XmlRpcGrammar();
  ASSERT_TRUE(base.ok());
  HwOptions replicated;
  replicated.decoder_replication = true;
  replicated.replication_threshold = 8;

  auto plain = core::CompiledTagger::Compile(base->Clone());
  auto repl = core::CompiledTagger::Compile(std::move(base).value(),
                                            replicated);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(repl.ok());

  const std::string msg =
      "<methodCall><methodName>buy</methodName><params>"
      "<param><int>42</int></param></params></methodCall>";
  auto t_plain = plain->TagCycleAccurate(msg);
  auto t_repl = repl->TagCycleAccurate(msg);
  ASSERT_TRUE(t_plain.ok());
  ASSERT_TRUE(t_repl.ok());
  EXPECT_EQ(*t_plain, *t_repl);
  EXPECT_EQ(plain->Tag(msg), *t_repl);
}

TEST(TaggerGeneratorTest, RejectsBadBytesPerCycle) {
  HwOptions opt;
  opt.bytes_per_cycle = 3;
  EXPECT_FALSE(TaggerGenerator::Generate(MustParse(kSmall), opt).ok());
}

TEST(TaggerGeneratorTest, RejectsInvalidGrammar) {
  grammar::Grammar g;  // empty
  EXPECT_FALSE(TaggerGenerator::Generate(g, {}).ok());
}

TEST(TaggerGeneratorTest, GrammarScalingSharesDecoders) {
  // LUTs per pattern byte must *fall* as the grammar grows (Table 1's
  // LUTs/Byte column): decoders and encoder amortize.
  auto small = core::CompiledTagger::Compile(MustParse(kSmall));
  ASSERT_TRUE(small.ok());
  auto big_grammar = MustParse(R"(
NUM [0-9]+
ALT [a-f]+
%%
s: "<n>" NUM "</n>" | "<m>" NUM "</m>" | "<o>" ALT "</o>"
 | "<p>" ALT "</p>" | "<q>" NUM "</q>";
%%
)");
  auto big = core::CompiledTagger::Compile(std::move(big_grammar));
  ASSERT_TRUE(big.ok());
  auto r_small = small->Implement(rtl::Virtex4LX200());
  auto r_big = big->Implement(rtl::Virtex4LX200());
  ASSERT_TRUE(r_small.ok());
  ASSERT_TRUE(r_big.ok());
  EXPECT_LT(r_big->area.luts_per_byte, r_small->area.luts_per_byte);
}

}  // namespace
}  // namespace cfgtag::hwgen
