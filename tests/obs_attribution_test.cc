// AttributionTable semantics plus the end-to-end contract: with the
// process-wide switch on, the fused and lazy-DFA engines merge per-token
// match counts (and the fused live-bitmap activity) into the default table
// when their sessions finish, and the table mirrors rows into the default
// MetricsRegistry as labeled counters.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "grammar/grammar.h"
#include "grammar/grammar_parser.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "tagger/fused_model.h"
#include "tagger/lazy_dfa.h"

namespace cfgtag::obs {
namespace {

grammar::Grammar MustParse(const std::string& text) {
  auto g = grammar::ParseGrammar(text);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

const char kCalcGrammar[] =
    "NUM [0-9]+\nWORD [a-z]+\nOP [-+*/]\n%%\ns: NUM OP NUM | WORD;\n%%\n";

// The switch is process-global; every test here restores the off default
// and clears the shared table so tests compose in any order.
class AttributionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AttributionTable::set_enabled(false);
    AttributionTable::Default().Clear();
  }
  void TearDown() override {
    AttributionTable::set_enabled(false);
    AttributionTable::Default().Clear();
  }
};

TEST_F(AttributionTest, RowsAccumulateAndRankByHits) {
  AttributionTable table;
  table.AddToken("NUM", 3, 10);
  table.AddToken("WORD", 5, 2);
  table.AddToken("NUM", 4, 1);
  const std::vector<AttributionTable::Row> ranked = table.RankedTokens();
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].name, "NUM");
  EXPECT_EQ(ranked[0].hits, 7u);
  EXPECT_EQ(ranked[0].live_words, 11u);
  EXPECT_EQ(ranked[1].name, "WORD");
}

TEST_F(AttributionTest, ZeroDeltasCreateNoRows) {
  AttributionTable table;
  table.AddToken("NUM", 0, 0);
  table.AddRule("r1", 0);
  EXPECT_TRUE(table.RankedTokens().empty());
  EXPECT_TRUE(table.RankedRules().empty());
}

TEST_F(AttributionTest, DfaCacheTotalsAccumulate) {
  AttributionTable table;
  table.AddDfaCache(10, 2);
  table.AddDfaCache(5, 1);
  EXPECT_EQ(table.dfa_cache_hits(), 15u);
  EXPECT_EQ(table.dfa_cache_misses(), 3u);
}

TEST_F(AttributionTest, ToJsonRanksAllSections) {
  AttributionTable table;
  table.AddToken("NUM", 7, 3);
  table.AddRule("sql-injection", 2);
  table.AddService("deposit", 9);
  table.AddDfaCache(4, 1);
  const std::string json = table.ToJson();
  EXPECT_NE(json.find("\"tokens\""), std::string::npos);
  EXPECT_NE(json.find("\"NUM\""), std::string::npos);
  EXPECT_NE(json.find("\"rules\""), std::string::npos);
  EXPECT_NE(json.find("\"sql-injection\""), std::string::npos);
  EXPECT_NE(json.find("\"services\""), std::string::npos);
  EXPECT_NE(json.find("\"deposit\""), std::string::npos);
  EXPECT_NE(json.find("\"dfa_cache\""), std::string::npos);
  EXPECT_NE(json.find("\"enabled\""), std::string::npos);
}

TEST_F(AttributionTest, DefaultTableMirrorsIntoTheMetricsRegistry) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  Counter* matches = reg.GetCounter(
      "cfgtag_attr_token_matches_total{token=\"MIRROR_TOKEN\"}");
  const uint64_t before = matches->Value();
  AttributionTable::Default().AddToken("MIRROR_TOKEN", 6, 13);
  EXPECT_EQ(matches->Value(), before + 6);
  EXPECT_GE(reg.GetCounter(
                   "cfgtag_attr_token_live_words_total{token=\"MIRROR_TOKEN\"}")
                ->Value(),
            13u);
}

TEST_F(AttributionTest, FusedEngineAttributesMatchesPerToken) {
  const grammar::Grammar g = MustParse(kCalcGrammar);
  auto fused = tagger::FusedTagger::Create(&g, {});
  ASSERT_TRUE(fused.ok()) << fused.status();

  AttributionTable::set_enabled(true);
  const std::vector<tagger::Tag> tags = fused->TagAll("12+34");
  EXPECT_FALSE(tags.empty());

  const std::vector<AttributionTable::Row> ranked =
      AttributionTable::Default().RankedTokens();
  uint64_t num_hits = 0;
  uint64_t num_live = 0;
  for (const AttributionTable::Row& row : ranked) {
    if (row.name == "NUM") {
      num_hits = row.hits;
      num_live = row.live_words;
    }
  }
  // "12+34" matches NUM at offsets 2 (12), 5 (34) plus the longest-match
  // prefixes the engine reports; at least one NUM match must have been
  // attributed, and its positions were live for several bytes.
  EXPECT_GT(num_hits, 0u);
  EXPECT_GT(num_live, 0u);
}

TEST_F(AttributionTest, FusedEngineCountsNothingWhenDisabled) {
  const grammar::Grammar g = MustParse(kCalcGrammar);
  auto fused = tagger::FusedTagger::Create(&g, {});
  ASSERT_TRUE(fused.ok()) << fused.status();
  fused->TagAll("12+34");
  EXPECT_TRUE(AttributionTable::Default().RankedTokens().empty());
}

TEST_F(AttributionTest, LazyDfaEngineAttributesMatchesAndCacheTraffic) {
  const grammar::Grammar g = MustParse(kCalcGrammar);
  auto lazy = tagger::LazyDfaTagger::Create(&g, {});
  ASSERT_TRUE(lazy.ok()) << lazy.status();

  AttributionTable::set_enabled(true);
  // Two passes over the same input: the first builds DFA transitions
  // (misses), the second replays them (hits).
  lazy->TagAll("12+34");
  lazy->TagAll("12+34");

  AttributionTable& table = AttributionTable::Default();
  uint64_t num_hits = 0;
  for (const AttributionTable::Row& row : table.RankedTokens()) {
    if (row.name == "NUM") num_hits = row.hits;
  }
  EXPECT_GT(num_hits, 0u);
  EXPECT_GT(table.dfa_cache_misses(), 0u);
  EXPECT_GT(table.dfa_cache_hits(), 0u);
}

TEST_F(AttributionTest, EnableTakesEffectAtNextSessionReset) {
  const grammar::Grammar g = MustParse(kCalcGrammar);
  auto fused = tagger::FusedTagger::Create(&g, {});
  ASSERT_TRUE(fused.ok()) << fused.status();

  // Run once disabled, then enable: only the post-enable run counts.
  fused->TagAll("12+34");
  AttributionTable::set_enabled(true);
  fused->TagAll("56*78");
  std::vector<AttributionTable::Row> ranked =
      AttributionTable::Default().RankedTokens();
  uint64_t total_hits = 0;
  for (const AttributionTable::Row& row : ranked) total_hits += row.hits;
  EXPECT_GT(total_hits, 0u);
}

}  // namespace
}  // namespace cfgtag::obs
