// LazyDfaTagger — the lazily built DFA memoizing the fused engine — must
// be tag-for-tag identical to the FunctionalTagger reference on every
// option combination, including streaming, early-stop sinks, the idle
// skip paths, cache flushes under a starvation-sized budget, and the
// sticky fused fallback after repeated flush thrash.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "grammar/grammar.h"
#include "grammar/grammar_parser.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "tagger/functional_model.h"
#include "tagger/fused_model.h"
#include "tagger/lazy_dfa.h"

namespace cfgtag::tagger {
namespace {

grammar::Grammar MustParse(const std::string& text) {
  auto g = grammar::ParseGrammar(text);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

std::vector<Tag> Functional(const grammar::Grammar& g,
                            const TaggerOptions& opt,
                            std::string_view input) {
  auto t = FunctionalTagger::Create(&g, opt);
  EXPECT_TRUE(t.ok()) << t.status();
  return t->TagAll(input);
}

std::vector<Tag> Lazy(const grammar::Grammar& g, const TaggerOptions& opt,
                      std::string_view input) {
  auto t = LazyDfaTagger::Create(&g, opt);
  EXPECT_TRUE(t.ok()) << t.status();
  return t->TagAll(input);
}

void ExpectSameTags(const std::vector<Tag>& a, const std::vector<Tag>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].token, b[i].token) << "tag " << i;
    EXPECT_EQ(a[i].end, b[i].end) << "tag " << i;
  }
}

const char kCalcGrammar[] =
    "NUM [0-9]+\nWORD [a-z]+\nOP [-+*/]\n%%\ns: NUM OP NUM | WORD;\n%%\n";

TEST(LazyDfaTaggerTest, MatchesFunctionalAllArmModes) {
  grammar::Grammar g = MustParse(kCalcGrammar);
  for (ArmMode mode : {ArmMode::kAnchored, ArmMode::kScan, ArmMode::kResync}) {
    for (bool longest : {true, false}) {
      TaggerOptions opt;
      opt.arm_mode = mode;
      opt.longest_match = longest;
      for (std::string_view input :
           {"12+34", "12 + 34", "hello", "12x", "", "   ", "??12+34??",
            "a1b2c3", "garbage 12+34 more", "###\n42/7\n###",
            "9*8 trailing", "12+34 56-78"}) {
        ExpectSameTags(Functional(g, opt, input), Lazy(g, opt, input));
      }
    }
  }
}

TEST(LazyDfaTaggerTest, ChunkedFeedMatchesWholeBuffer) {
  grammar::Grammar g = MustParse(kCalcGrammar);
  TaggerOptions opt;
  opt.arm_mode = ArmMode::kResync;
  auto t = LazyDfaTagger::Create(&g, opt);
  ASSERT_TRUE(t.ok()) << t.status();
  const std::string input = "  12+34 junk 99*1   abc 5-5 ";
  const std::vector<Tag> whole = t->TagAll(input);
  for (size_t chunk : {1u, 2u, 3u, 5u, 7u, 11u}) {
    std::vector<Tag> streamed;
    LazyDfaSession session = t->NewSession();
    const TagSink sink = [&](const Tag& tag) {
      streamed.push_back(tag);
      return true;
    };
    for (size_t i = 0; i < input.size(); i += chunk) {
      session.Feed(std::string_view(input).substr(i, chunk), sink);
    }
    session.Finish(sink);
    ExpectSameTags(whole, streamed);
    EXPECT_EQ(session.bytes_consumed(), input.size());
  }
}

TEST(LazyDfaTaggerTest, EarlyStopMatchesFunctional) {
  grammar::Grammar g = MustParse(kCalcGrammar);
  TaggerOptions opt;
  opt.arm_mode = ArmMode::kScan;
  const std::string input = "12+34 abc 9*9 def";
  for (size_t limit = 1; limit <= 4; ++limit) {
    auto collect = [&](auto& tagger) {
      std::vector<Tag> tags;
      tagger.Run(input, [&](const Tag& tag) {
        tags.push_back(tag);
        return tags.size() < limit;
      });
      return tags;
    };
    auto functional = FunctionalTagger::Create(&g, opt);
    auto lazy = LazyDfaTagger::Create(&g, opt);
    ASSERT_TRUE(functional.ok() && lazy.ok());
    ExpectSameTags(collect(*functional), collect(*lazy));
  }
}

TEST(LazyDfaTaggerTest, SkipPathsStayExact) {
  grammar::Grammar g = MustParse(kCalcGrammar);
  // Delimiter-run skip (resync): mostly-space stream with islands.
  {
    TaggerOptions opt;
    opt.arm_mode = ArmMode::kResync;
    std::string input(10000, ' ');
    input.replace(5000, 5, "12+34");
    input.replace(9990, 3, "abc");
    ExpectSameTags(Functional(g, opt, input), Lazy(g, opt, input));
  }
  // Anchored-dead skip: nothing can match after the stream dies.
  {
    TaggerOptions opt;  // anchored
    std::string input = "12+34 ";
    input += std::string(5000, 'z');
    input += " 9*9";
    ExpectSameTags(Functional(g, opt, input), Lazy(g, opt, input));
  }
  // Resync garbage skip: a dead non-delimiter run is inert until the next
  // delimiter rearms the machine.
  {
    TaggerOptions opt;
    opt.arm_mode = ArmMode::kResync;
    std::string input(8000, '?');
    input += " 12+34";
    const auto want = Functional(g, opt, input);
    auto t = LazyDfaTagger::Create(&g, opt);
    ASSERT_TRUE(t.ok());
    std::vector<Tag> got;
    LazyDfaSession session = t->NewSession();
    const TagSink sink = [&](const Tag& tag) {
      got.push_back(tag);
      return true;
    };
    session.Feed(input, sink);
    session.Finish(sink);
    ExpectSameTags(want, got);
    // The skip paths must keep the byte ledger exact, not just the tags.
    EXPECT_EQ(session.bytes_consumed(), input.size());
  }
}

TEST(LazyDfaTaggerTest, TinyCacheFlushesButStaysExact) {
  grammar::Grammar g = MustParse(kCalcGrammar);
  TaggerOptions opt;
  opt.arm_mode = ArmMode::kResync;
  // Budget below the cost of even a few interned states: every stretch of
  // input churns the cache through Flush().
  opt.dfa_cache_bytes = 1 << 9;
  opt.dfa_flush_fallback = 1u << 30;  // never give up caching
  auto t = LazyDfaTagger::Create(&g, opt);
  ASSERT_TRUE(t.ok()) << t.status();
  const std::string input = "  12+34 junk 99*1   abc 5-5 12 34 xyzzy 7/8 ";
  const auto want = Functional(g, opt, input);
  std::vector<Tag> got;
  LazyDfaSession session = t->NewSession();
  const TagSink sink = [&](const Tag& tag) {
    got.push_back(tag);
    return true;
  };
  session.Feed(input, sink);
  session.Finish(sink);
  ExpectSameTags(want, got);
  EXPECT_GT(session.cache_flushes(), 0u);
  EXPECT_FALSE(session.fallback_active());
  EXPECT_LE(session.cache_bytes(), opt.dfa_cache_bytes * 2);
}

TEST(LazyDfaTaggerTest, FlushThrashFallsBackToFused) {
  grammar::Grammar g = MustParse(kCalcGrammar);
  TaggerOptions opt;
  opt.arm_mode = ArmMode::kResync;
  opt.dfa_cache_bytes = 1 << 9;
  opt.dfa_flush_fallback = 2;
  auto t = LazyDfaTagger::Create(&g, opt);
  ASSERT_TRUE(t.ok()) << t.status();
  const std::string input = "  12+34 junk 99*1   abc 5-5 12 34 xyzzy 7/8 ";
  const auto want = Functional(g, opt, input);
  std::vector<Tag> got;
  LazyDfaSession session = t->NewSession();
  const TagSink sink = [&](const Tag& tag) {
    got.push_back(tag);
    return true;
  };
  session.Feed(input, sink);
  session.Finish(sink);
  ExpectSameTags(want, got);
  EXPECT_TRUE(session.fallback_active());
  EXPECT_GE(session.cache_flushes(), 2u);
  // The verdict is sticky across Reset(): the session stays fused.
  session.Reset();
  EXPECT_TRUE(session.fallback_active());
  got.clear();
  session.Feed(input, sink);
  session.Finish(sink);
  ExpectSameTags(want, got);
  // Rebinding to a different tagger clears the verdict with the cache.
  auto t2 = LazyDfaTagger::Create(&g, opt);
  ASSERT_TRUE(t2.ok());
  session.Rebind(&*t2);
  EXPECT_FALSE(session.fallback_active());
  EXPECT_EQ(session.cache_flushes(), 0u);
}

TEST(LazyDfaTaggerTest, ResetKeepsWarmCache) {
  grammar::Grammar g = MustParse(kCalcGrammar);
  TaggerOptions opt;
  opt.arm_mode = ArmMode::kResync;
  auto t = LazyDfaTagger::Create(&g, opt);
  ASSERT_TRUE(t.ok()) << t.status();
  const std::string input = "  12+34 junk 99*1   abc 5-5 ";
  const auto want = Functional(g, opt, input);
  LazyDfaSession session = t->NewSession();
  std::vector<Tag> got;
  const TagSink sink = [&](const Tag& tag) {
    got.push_back(tag);
    return true;
  };
  session.Feed(input, sink);
  session.Finish(sink);
  ExpectSameTags(want, got);
  const size_t warm_states = session.cache_states();
  EXPECT_GT(warm_states, 0u);
  // A second pass over the same stream runs out of cached transitions:
  // identical output and not a single new state interned.
  session.Reset();
  got.clear();
  session.Feed(input, sink);
  session.Finish(sink);
  ExpectSameTags(want, got);
  EXPECT_EQ(session.cache_states(), warm_states);
}

TEST(LazyDfaTaggerTest, SessionPoolReusesSessions) {
  grammar::Grammar g = MustParse(kCalcGrammar);
  auto t = LazyDfaTagger::Create(&g, {});
  ASSERT_TRUE(t.ok());
  (void)t->TagAll("12+34");
  (void)t->TagAll("56-7");
  EXPECT_EQ(t->session_pool().IdleCount(), 1u);
  EXPECT_GE(t->session_pool().sessions_reused(), 1u);
  // Pool survives a tagger move (shared_ptr semantics).
  LazyDfaTagger moved = std::move(t).value();
  ASSERT_EQ(moved.TagAll("1+1").size(), 3u);  // NUM OP NUM
}

TEST(LazyDfaTaggerTest, AutoHeuristicPrefersLazyForSmallGrammars) {
  grammar::Grammar g = MustParse(kCalcGrammar);
  auto fused = FusedTagger::Create(&g, {});
  ASSERT_TRUE(fused.ok());
  // A handful of byte classes over a few state words is far under the
  // product limit — exactly the shape `--backend auto` routes to the DFA.
  EXPECT_TRUE(LazyDfaTagger::AutoPrefers(*fused));
  EXPECT_LE(static_cast<size_t>(fused->NumByteClasses()) *
                fused->NumStateWords(),
            LazyDfaTagger::kAutoProductLimit);
}

TEST(LazyDfaTaggerTest, CacheMetricsAreRegistered) {
  const DfaCacheMetrics& m = DfaCacheMetrics::Get();
  ASSERT_NE(m.states, nullptr);
  ASSERT_NE(m.flushes, nullptr);
  ASSERT_NE(m.fallbacks, nullptr);
  const uint64_t states_before = m.states->Value();
  grammar::Grammar g = MustParse(kCalcGrammar);
  auto t = LazyDfaTagger::Create(&g, {});
  ASSERT_TRUE(t.ok());
  (void)t->TagAll("12+34 77*1");
  EXPECT_GT(m.states->Value(), states_before);
}

// Under cache pressure every registry-side cache counter must move: a
// starvation-sized budget forces flushes, and a tiny flush-fallback bound
// forces the fused fallback — both visible at /metrics, not just through
// the session accessors.
TEST(LazyDfaTaggerTest, CachePressureMovesRegistryCounters) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::Counter* states = reg.GetCounter("cfgtag_dfa_cache_states");
  obs::Counter* flushes = reg.GetCounter("cfgtag_dfa_cache_flushes");
  obs::Counter* fallbacks = reg.GetCounter("cfgtag_dfa_cache_fallbacks");
  const uint64_t states_before = states->Value();
  const uint64_t flushes_before = flushes->Value();
  const uint64_t fallbacks_before = fallbacks->Value();

  grammar::Grammar g = MustParse(kCalcGrammar);
  TaggerOptions opt;
  opt.arm_mode = ArmMode::kResync;
  opt.dfa_cache_bytes = 1 << 9;
  opt.dfa_flush_fallback = 2;
  auto t = LazyDfaTagger::Create(&g, opt);
  ASSERT_TRUE(t.ok()) << t.status();
  const std::string input = "  12+34 junk 99*1   abc 5-5 12 34 xyzzy 7/8 ";
  const auto want = Functional(g, opt, input);
  const auto got = t->TagAll(input);
  ExpectSameTags(want, got);

  EXPECT_GT(states->Value(), states_before);
  EXPECT_GT(flushes->Value(), flushes_before);
  EXPECT_GT(fallbacks->Value(), fallbacks_before);
}

// Flushes and fallbacks also land in the flight recorder, so a crash dump
// shows whether the cache was thrashing in the run-up.
TEST(LazyDfaTaggerTest, CachePressureRecordsFlightEvents) {
  obs::FlightRecorder& rec = obs::FlightRecorder::Default();
  const uint64_t recorded_before = rec.total_recorded();

  grammar::Grammar g = MustParse(kCalcGrammar);
  TaggerOptions opt;
  opt.arm_mode = ArmMode::kResync;
  opt.dfa_cache_bytes = 1 << 9;
  opt.dfa_flush_fallback = 2;
  auto t = LazyDfaTagger::Create(&g, opt);
  ASSERT_TRUE(t.ok()) << t.status();
  (void)t->TagAll("  12+34 junk 99*1   abc 5-5 12 34 xyzzy 7/8 ");

  ASSERT_GT(rec.total_recorded(), recorded_before);
  bool saw_flush = false;
  bool saw_fallback = false;
  for (const obs::Event& e : rec.Snapshot()) {
    if (e.seq <= recorded_before) continue;
    if (e.kind == obs::EventKind::kDfaCacheFlush) saw_flush = true;
    if (e.kind == obs::EventKind::kDfaCacheFallback) saw_fallback = true;
  }
  EXPECT_TRUE(saw_flush);
  EXPECT_TRUE(saw_fallback);
}

}  // namespace
}  // namespace cfgtag::tagger
