// FusedTagger — the byte-class-compressed bit-parallel backend — must be
// tag-for-tag identical to the FunctionalTagger reference on every option
// combination, including streaming (chunked Feed) and early-stop sinks.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "grammar/grammar.h"
#include "grammar/grammar_parser.h"
#include "tagger/byte_classes.h"
#include "tagger/functional_model.h"
#include "tagger/fused_model.h"

namespace cfgtag::tagger {
namespace {

grammar::Grammar MustParse(const std::string& text) {
  auto g = grammar::ParseGrammar(text);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

std::vector<Tag> Functional(const grammar::Grammar& g,
                            const TaggerOptions& opt,
                            std::string_view input) {
  auto t = FunctionalTagger::Create(&g, opt);
  EXPECT_TRUE(t.ok()) << t.status();
  return t->TagAll(input);
}

std::vector<Tag> Fused(const grammar::Grammar& g, const TaggerOptions& opt,
                       std::string_view input) {
  auto t = FusedTagger::Create(&g, opt);
  EXPECT_TRUE(t.ok()) << t.status();
  return t->TagAll(input);
}

void ExpectSameTags(const std::vector<Tag>& a, const std::vector<Tag>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].token, b[i].token) << "tag " << i;
    EXPECT_EQ(a[i].end, b[i].end) << "tag " << i;
  }
}

const char kCalcGrammar[] =
    "NUM [0-9]+\nWORD [a-z]+\nOP [-+*/]\n%%\ns: NUM OP NUM | WORD;\n%%\n";

TEST(ByteClassifierTest, PartitionsByMembership) {
  std::vector<regex::CharClass> classes;
  classes.push_back(regex::CharClass::Range('0', '9'));
  classes.push_back(regex::CharClass::Range('a', 'z'));
  ByteClassifier bc = ByteClassifier::Build(classes);
  // digits | lowercase | everything else = 3 classes.
  EXPECT_EQ(bc.NumClasses(), 3);
  EXPECT_EQ(bc.ClassOf('0'), bc.ClassOf('9'));
  EXPECT_EQ(bc.ClassOf('a'), bc.ClassOf('q'));
  EXPECT_NE(bc.ClassOf('0'), bc.ClassOf('a'));
  EXPECT_NE(bc.ClassOf('0'), bc.ClassOf(' '));
  EXPECT_EQ(bc.ClassOf(' '), bc.ClassOf('\xff'));
  // Representatives round-trip through ClassOf.
  for (uint16_t c = 0; c < bc.NumClasses(); ++c) {
    EXPECT_EQ(bc.ClassOf(bc.Representative(c)), c);
  }
}

TEST(ByteClassifierTest, EmptyInputIsOneClass) {
  ByteClassifier bc = ByteClassifier::Build({});
  EXPECT_EQ(bc.NumClasses(), 1);
  EXPECT_EQ(bc.ClassOf('x'), 0);
}

TEST(FusedTaggerTest, ReportsCompressionStats) {
  grammar::Grammar g = MustParse(kCalcGrammar);
  auto t = FusedTagger::Create(&g, {});
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_GT(t->TotalPositions(), 0u);
  EXPECT_GE(t->NumStateWords(), 3u);  // one word per token here
  // digits, lowercase, operators, whitespace, rest — far fewer than 256.
  EXPECT_GE(t->NumByteClasses(), 4u);
  EXPECT_LE(t->NumByteClasses(), 16u);
}

TEST(FusedTaggerTest, MatchesFunctionalAnchored) {
  grammar::Grammar g = MustParse(kCalcGrammar);
  TaggerOptions opt;
  for (std::string_view input :
       {"12+34", "12 + 34", "hello", "12x", "", "   ", "9*8 trailing",
        "12+34 56-78"}) {
    ExpectSameTags(Functional(g, opt, input), Fused(g, opt, input));
  }
}

TEST(FusedTaggerTest, MatchesFunctionalScanAndResync) {
  grammar::Grammar g = MustParse(kCalcGrammar);
  for (ArmMode mode : {ArmMode::kScan, ArmMode::kResync}) {
    TaggerOptions opt;
    opt.arm_mode = mode;
    for (std::string_view input :
         {"12+34", "??12+34??", "a1b2c3", "  12 + 34  99*1",
          "garbage 12+34 more", "###\n42/7\n###"}) {
      ExpectSameTags(Functional(g, opt, input), Fused(g, opt, input));
    }
  }
}

TEST(FusedTaggerTest, MatchesFunctionalWithoutLongestMatch) {
  grammar::Grammar g = MustParse(kCalcGrammar);
  TaggerOptions opt;
  opt.arm_mode = ArmMode::kScan;
  opt.longest_match = false;
  for (std::string_view input : {"1234", "abc de", "12+34"}) {
    ExpectSameTags(Functional(g, opt, input), Fused(g, opt, input));
  }
}

TEST(FusedTaggerTest, MultiWordTokenState) {
  // A 70-position literal token spans two state words, exercising the
  // multi-word follow rows and the meta-checked accept/suppression loops.
  grammar::Grammar g;
  std::string long_lit(70, 'a');
  auto lit = g.AddLiteralToken(long_lit);
  ASSERT_TRUE(lit.ok()) << lit.status();
  auto num = g.AddToken("NUM", "[0-9]+");
  ASSERT_TRUE(num.ok()) << num.status();
  const int32_t nt = g.AddNonterminal("s");
  g.AddProduction(nt, {grammar::Symbol::Terminal(*lit),
                       grammar::Symbol::Terminal(*num)});
  g.SetStart(nt);

  auto fused = FusedTagger::Create(&g, {});
  ASSERT_TRUE(fused.ok()) << fused.status();
  EXPECT_GE(fused->NumStateWords(), 3u);  // 2 for the literal, 1 for NUM

  TaggerOptions opt;
  for (ArmMode mode : {ArmMode::kAnchored, ArmMode::kScan, ArmMode::kResync}) {
    opt.arm_mode = mode;
    for (const std::string& input :
         {long_lit + " 123", long_lit.substr(0, 69) + "b 5",
          "x" + long_lit + " 7", long_lit}) {
      ExpectSameTags(Functional(g, opt, input), Fused(g, opt, input));
    }
  }
}

TEST(FusedTaggerTest, ChunkedFeedMatchesWholeBuffer) {
  grammar::Grammar g = MustParse(kCalcGrammar);
  TaggerOptions opt;
  opt.arm_mode = ArmMode::kResync;
  auto t = FusedTagger::Create(&g, opt);
  ASSERT_TRUE(t.ok());
  const std::string input = "  12+34 junk 99*1   abc 5-5 ";
  const std::vector<Tag> whole = t->TagAll(input);
  for (size_t chunk : {1u, 2u, 3u, 5u, 7u, 11u}) {
    std::vector<Tag> streamed;
    FusedSession session = t->NewSession();
    const TagSink sink = [&](const Tag& tag) {
      streamed.push_back(tag);
      return true;
    };
    for (size_t i = 0; i < input.size(); i += chunk) {
      session.Feed(std::string_view(input).substr(i, chunk), sink);
    }
    session.Finish(sink);
    ExpectSameTags(whole, streamed);
    EXPECT_EQ(session.bytes_consumed(), input.size());
  }
}

TEST(FusedTaggerTest, EarlyStopMatchesFunctional) {
  grammar::Grammar g = MustParse(kCalcGrammar);
  TaggerOptions opt;
  opt.arm_mode = ArmMode::kScan;
  const std::string input = "12+34 abc 9*9 def";
  for (size_t limit = 1; limit <= 4; ++limit) {
    auto collect = [&](auto& tagger) {
      std::vector<Tag> tags;
      tagger.Run(input, [&](const Tag& tag) {
        tags.push_back(tag);
        return tags.size() < limit;
      });
      return tags;
    };
    auto functional = FunctionalTagger::Create(&g, opt);
    auto fused = FusedTagger::Create(&g, opt);
    ASSERT_TRUE(functional.ok() && fused.ok());
    ExpectSameTags(collect(*functional), collect(*fused));
  }
}

TEST(FusedTaggerTest, IdleSkipOverLongDelimiterRuns) {
  grammar::Grammar g = MustParse(kCalcGrammar);
  TaggerOptions opt;
  opt.arm_mode = ArmMode::kResync;
  // Mostly-delimiter stream: the fast path must not lose arms or offsets.
  std::string input(10000, ' ');
  input.replace(5000, 5, "12+34");
  input.replace(9990, 3, "abc");
  ExpectSameTags(Functional(g, opt, input), Fused(g, opt, input));
}

TEST(FusedTaggerTest, AnchoredDeadStreamSkips) {
  grammar::Grammar g = MustParse(kCalcGrammar);
  TaggerOptions opt;  // anchored
  // After the first token run dies, anchored mode can never match again.
  std::string input = "12+34 ";
  input += std::string(5000, 'z');
  input += " 9*9";
  ExpectSameTags(Functional(g, opt, input), Fused(g, opt, input));
}

TEST(FusedTaggerTest, SessionPoolReusesAndRebinds) {
  grammar::Grammar g = MustParse(kCalcGrammar);
  auto t = FusedTagger::Create(&g, {});
  ASSERT_TRUE(t.ok());
  (void)t->TagAll("12+34");
  (void)t->TagAll("56-7");
  EXPECT_EQ(t->session_pool().IdleCount(), 1u);
  EXPECT_GE(t->session_pool().sessions_reused(), 1u);
  // Pool survives a tagger move (shared_ptr semantics).
  FusedTagger moved = std::move(t).value();
  ASSERT_EQ(moved.TagAll("1+1").size(), 3u);  // NUM OP NUM
}

}  // namespace
}  // namespace cfgtag::tagger
