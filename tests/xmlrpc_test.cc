#include <gtest/gtest.h>

#include <algorithm>

#include "core/token_tagger.h"
#include "grammar/analysis.h"
#include "tagger/ll_parser.h"
#include "tagger/naive_matcher.h"
#include "xmlrpc/message_gen.h"
#include "xmlrpc/router.h"
#include "xmlrpc/xmlrpc_grammar.h"

namespace cfgtag::xmlrpc {
namespace {

TEST(XmlRpcGrammarTest, ParsesWithExpectedShape) {
  auto g = XmlRpcGrammar();
  ASSERT_TRUE(g.ok()) << g.status();
  // Fig. 14 defines 9 named tokens (STRING INT DOUBLE YEAR MONTH DAY HOUR
  // MIN SEC BASE64 = 10) plus the tag literals.
  EXPECT_GE(g->NumTokens(), 35u);
  EXPECT_LE(g->NumTokens(), 50u);
  // "approximately 300 bytes of pattern data" (§4.3).
  EXPECT_GE(g->PatternBytes(), 250u);
  EXPECT_LE(g->PatternBytes(), 330u);
  EXPECT_EQ(g->start(), g->FindNonterminal("methodCall"));
  EXPECT_TRUE(g->Validate().ok());
}

TEST(XmlRpcGrammarTest, IsLl1) {
  auto g = XmlRpcGrammar();
  ASSERT_TRUE(g.ok());
  auto p = tagger::PredictiveParser::Create(&g.value(), {});
  EXPECT_TRUE(p.ok()) << p.status();
}

TEST(XmlRpcGrammarTest, FindTokensLocatesMethodName) {
  auto g = XmlRpcGrammar();
  ASSERT_TRUE(g.ok());
  auto toks = FindXmlRpcTokens(*g);
  ASSERT_TRUE(toks.ok()) << toks.status();
  EXPECT_TRUE(g->tokens()[toks->open_method].is_literal);
  EXPECT_EQ(g->tokens()[toks->open_method].literal_text, "<methodName>");
}

TEST(XmlRpcGrammarTest, StartTokenIsMethodCall) {
  auto g = XmlRpcGrammar();
  ASSERT_TRUE(g.ok());
  auto a = grammar::Analyze(*g);
  ASSERT_TRUE(a.ok());
  ASSERT_EQ(a->start_tokens.size(), 1u);
  EXPECT_EQ(g->tokens()[*a->start_tokens.begin()].literal_text,
            "<methodCall>");
}

class MessageGenTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MessageGenTest, GeneratedMessagesAreValid) {
  auto g = XmlRpcGrammar();
  ASSERT_TRUE(g.ok());
  auto p = tagger::PredictiveParser::Create(&g.value(), {});
  ASSERT_TRUE(p.ok());

  MessageGenOptions opt;
  opt.max_depth = 3;
  MessageGenerator gen(opt, GetParam());
  for (int i = 0; i < 10; ++i) {
    const std::string msg = gen.Generate();
    EXPECT_TRUE(p->Accepts(msg)) << msg;
  }
}

TEST_P(MessageGenTest, AdversarialMessagesStillValid) {
  auto g = XmlRpcGrammar();
  ASSERT_TRUE(g.ok());
  auto p = tagger::PredictiveParser::Create(&g.value(), {});
  ASSERT_TRUE(p.ok());

  MessageGenOptions opt;
  opt.adversarial = true;
  MessageGenerator gen(opt, GetParam());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(p->Accepts(gen.Generate()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageGenTest,
                         ::testing::Range<uint64_t>(0, 8));

TEST(MessageGenTest, DeterministicPerSeed) {
  MessageGenerator a({}, 5);
  MessageGenerator b({}, 5);
  EXPECT_EQ(a.Generate(), b.Generate());
  MessageGenerator c({}, 6);
  EXPECT_NE(a.Generate(), c.Generate());
}

TEST(MessageGenTest, FixedMethodAppearsInMessage) {
  MessageGenerator gen({}, 1);
  const std::string msg = gen.GenerateWithMethod("myService");
  EXPECT_NE(msg.find("<methodName>myService</methodName>"),
            std::string::npos);
}

TEST(MessageGenTest, StreamHonoursBothBounds) {
  MessageGenerator gen({}, 2);
  const std::string s = gen.GenerateStream(3, 4096);
  EXPECT_GE(s.size(), 4096u);
  size_t count = 0, pos = 0;
  while ((pos = s.find("<methodCall>", pos)) != std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_GE(count, 3u);
}

TEST(RouterTest, EveryServiceRoutesToItsPort) {
  RouterConfig config;
  config.services = {{"deposit", 1}, {"withdraw", 1}, {"acctinfo", 1},
                     {"buy", 2},     {"sell", 2},     {"price", 2}};
  config.default_port = 0;
  auto router = XmlRpcRouter::Create(config);
  ASSERT_TRUE(router.ok()) << router.status();

  MessageGenerator gen({}, 11);
  for (const auto& svc : config.services) {
    EXPECT_EQ(router->Route(gen.GenerateWithMethod(svc.name)), svc.port)
        << svc.name;
  }
}

TEST(RouterTest, ServiceTokenLookup) {
  RouterConfig config;
  config.services = {{"deposit", 1}, {"buy", 2}};
  config.default_port = 0;
  auto router = XmlRpcRouter::Create(config);
  ASSERT_TRUE(router.ok());
  EXPECT_EQ(router->ServiceToken("deposit"), 0);
  EXPECT_EQ(router->ServiceToken("buy"), 1);
  EXPECT_EQ(router->ServiceToken("nope"), -1);
}

TEST(RouterTest, CycleAccurateAgreesWithFunctional) {
  RouterConfig config;
  config.services = {{"deposit", 1}, {"buy", 2}};
  config.default_port = 0;
  auto router = XmlRpcRouter::Create(config);
  ASSERT_TRUE(router.ok());

  MessageGenerator gen({}, 21);
  for (const std::string method : {"deposit", "buy", "unknown"}) {
    const std::string msg = gen.GenerateWithMethod(method);
    auto hw = router->RouteCycleAccurate(msg);
    ASSERT_TRUE(hw.ok()) << hw.status();
    EXPECT_EQ(*hw, router->Route(msg)) << method;
  }
}

TEST(RouterTest, PrefixServiceNamesDisambiguate) {
  // "buy" vs "buyback": longest match must pick the right keyword, and a
  // strictly longer non-service name must fall through to STRING.
  RouterConfig config;
  config.services = {{"buy", 1}, {"buyback", 2}};
  config.default_port = 0;
  auto router = XmlRpcRouter::Create(config);
  ASSERT_TRUE(router.ok()) << router.status();
  MessageGenerator gen({}, 31);
  EXPECT_EQ(router->Route(gen.GenerateWithMethod("buy")), 1);
  EXPECT_EQ(router->Route(gen.GenerateWithMethod("buyback")), 2);
  EXPECT_EQ(router->Route(gen.GenerateWithMethod("buybacks")), 0);
}

TEST(RouterTest, RejectsBadConfig) {
  RouterConfig empty;
  EXPECT_FALSE(XmlRpcRouter::Create(empty).ok());
  RouterConfig bad;
  bad.services = {{"has space", 1}};
  EXPECT_FALSE(XmlRpcRouter::Create(bad).ok());
}

// The false-positive experiment in miniature: a context-free matcher flags
// service names hidden in payloads; the context-aware tagger does not.
TEST(RouterTest, NaiveMatcherFalsePositivesContextTaggerClean) {
  RouterConfig config;
  config.services = {{"deposit", 1}, {"buy", 2}};
  config.default_port = 0;
  auto router = XmlRpcRouter::Create(config);
  ASSERT_TRUE(router.ok());

  tagger::NaiveMatcher naive({"deposit", "buy"});

  MessageGenOptions opt;
  opt.adversarial = true;
  opt.method_names = {"deposit", "buy"};
  MessageGenerator gen(opt, 77);

  int naive_hits = 0;
  int tagger_service_tags = 0;
  int messages_with_payload_hit = 0;
  for (int i = 0; i < 30; ++i) {
    // A method name outside the service set, with adversarial payloads.
    const std::string msg = gen.GenerateWithMethod("somethingneutral");
    const size_t naive_count = naive.Matches(msg).size();
    naive_hits += static_cast<int>(naive_count);
    messages_with_payload_hit += naive_count > 0;
    for (const auto& t : router->tagger().Tag(msg)) {
      tagger_service_tags +=
          t.token < static_cast<int32_t>(config.services.size());
    }
    EXPECT_EQ(router->Route(msg), 0);
  }
  EXPECT_GT(messages_with_payload_hit, 0) << "workload produced no decoys";
  EXPECT_GT(naive_hits, 0);
  EXPECT_EQ(tagger_service_tags, 0);
}

}  // namespace
}  // namespace cfgtag::xmlrpc
