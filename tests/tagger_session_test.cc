// TaggerSession: chunked streaming must be byte-for-byte identical to
// whole-input tagging, for every chunking of the input.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "grammar/grammar_parser.h"
#include "tagger/functional_model.h"
#include "xmlrpc/message_gen.h"
#include "xmlrpc/xmlrpc_grammar.h"

namespace cfgtag::tagger {
namespace {

grammar::Grammar MustParse(const std::string& text) {
  auto g = grammar::ParseGrammar(text);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

std::vector<Tag> Collect(TaggerSession& session, std::string_view input,
                         size_t chunk_size) {
  std::vector<Tag> tags;
  const TagSink sink = [&tags](const Tag& t) {
    tags.push_back(t);
    return true;
  };
  for (size_t at = 0; at < input.size(); at += chunk_size) {
    session.Feed(input.substr(at, chunk_size), sink);
  }
  session.Finish(sink);
  return tags;
}

TEST(TaggerSessionTest, ChunkedEqualsWhole) {
  grammar::Grammar g = MustParse("NUM [0-9]+\n%%\ns: \"<n>\" NUM \"</n>\";\n%%\n");
  auto t = FunctionalTagger::Create(&g, {});
  ASSERT_TRUE(t.ok());
  const std::string input = "<n>12345</n>";
  const auto whole = t->TagAll(input);
  for (size_t chunk : {1u, 2u, 3u, 5u, 7u, 100u}) {
    TaggerSession session = t->NewSession();
    EXPECT_EQ(Collect(session, input, chunk), whole) << "chunk=" << chunk;
  }
}

TEST(TaggerSessionTest, LookaheadDeferredAcrossChunkBoundary) {
  // NUM's longest-match decision for "12" depends on the next chunk's
  // first byte: "3" extends it, "x" does not.
  grammar::Grammar g = MustParse("NUM [0-9]+\n%%\ns: NUM;\n%%\n");
  auto t = FunctionalTagger::Create(&g, {});
  ASSERT_TRUE(t.ok());

  std::vector<Tag> tags;
  const TagSink sink = [&tags](const Tag& tag) {
    tags.push_back(tag);
    return true;
  };
  TaggerSession session = t->NewSession();
  session.Feed("12", sink);
  EXPECT_TRUE(tags.empty()) << "decision must wait for the next byte";
  session.Feed("3", sink);
  EXPECT_TRUE(tags.empty());
  session.Finish(sink);
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0].end, 2u);  // "123" as one token
}

TEST(TaggerSessionTest, FinishEmitsFinalByteMatch) {
  grammar::Grammar g = MustParse("%%\ns: \"ab\";\n%%\n");
  auto t = FunctionalTagger::Create(&g, {});
  ASSERT_TRUE(t.ok());
  TaggerSession session = t->NewSession();
  std::vector<Tag> tags;
  const TagSink sink = [&tags](const Tag& tag) {
    tags.push_back(tag);
    return true;
  };
  session.Feed("ab", sink);
  EXPECT_TRUE(tags.empty());
  session.Finish(sink);
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0].end, 1u);
  // Finish is idempotent; Feed after Finish is ignored.
  session.Finish(sink);
  session.Feed("ab", sink);
  EXPECT_EQ(tags.size(), 1u);
}

TEST(TaggerSessionTest, ResetStartsOver) {
  grammar::Grammar g = MustParse("%%\ns: \"ab\";\n%%\n");
  auto t = FunctionalTagger::Create(&g, {});
  ASSERT_TRUE(t.ok());
  TaggerSession session = t->NewSession();
  std::vector<Tag> tags;
  const TagSink sink = [&tags](const Tag& tag) {
    tags.push_back(tag);
    return true;
  };
  session.Feed("ab", sink);
  session.Finish(sink);
  EXPECT_EQ(session.bytes_consumed(), 2u);
  session.Reset();
  EXPECT_EQ(session.bytes_consumed(), 0u);
  session.Feed("ab", sink);
  session.Finish(sink);
  ASSERT_EQ(tags.size(), 2u);
  EXPECT_EQ(tags[1].end, 1u);  // offsets restart after Reset
}

TEST(TaggerSessionTest, TagEndingOnChunkFinalByteWaitsOneByte) {
  // A tag whose last byte is the final byte of a Feed() chunk cannot be
  // emitted inside that Feed(): the longest-match decision needs the next
  // byte (the one-byte lag of the Fig. 7 look-ahead). It must arrive at
  // the start of the next chunk, not be dropped and not wait for Finish.
  grammar::Grammar g = MustParse("NUM [0-9]+\n%%\ns: NUM \"x\";\n%%\n");
  auto t = FunctionalTagger::Create(&g, {});
  ASSERT_TRUE(t.ok());
  TaggerSession session = t->NewSession();
  std::vector<Tag> tags;
  const TagSink sink = [&tags](const Tag& tag) {
    tags.push_back(tag);
    return true;
  };
  session.Feed("12", sink);
  EXPECT_TRUE(tags.empty()) << "decision lags one byte";
  session.Feed("x", sink);  // non-digit settles NUM without Finish
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0].end, 1u);
  session.Finish(sink);
  EXPECT_EQ(tags.size(), 2u) << "then the literal \"x\" tag";
}

TEST(TaggerSessionTest, EarlyStopMidChunkThenResetAndReuse) {
  grammar::Grammar g = MustParse("%%\ns: \"a\" \"b\" \"c\";\n%%\n");
  auto t = FunctionalTagger::Create(&g, {});
  ASSERT_TRUE(t.ok());
  TaggerSession session = t->NewSession();
  int seen = 0;
  const TagSink stopper = [&seen](const Tag&) { return ++seen < 1; };
  session.Feed("a b c", stopper);
  EXPECT_EQ(seen, 1) << "halted mid-chunk after the first tag";

  // The same session object, Reset() and re-fed, must behave like new.
  session.Reset();
  EXPECT_EQ(session.bytes_consumed(), 0u);
  std::vector<Tag> tags;
  const TagSink sink = [&tags](const Tag& tag) {
    tags.push_back(tag);
    return true;
  };
  session.Feed("a b c", sink);
  session.Finish(sink);
  EXPECT_EQ(tags, t->TagAll("a b c"));
  EXPECT_EQ(tags.size(), 3u);
}

TEST(TaggerSessionTest, EarlyStopHalts) {
  grammar::Grammar g = MustParse("%%\ns: \"a\" \"b\" \"c\";\n%%\n");
  auto t = FunctionalTagger::Create(&g, {});
  ASSERT_TRUE(t.ok());
  TaggerSession session = t->NewSession();
  int seen = 0;
  const TagSink sink = [&seen](const Tag&) { return ++seen < 2; };
  session.Feed("a b c", sink);
  session.Finish(sink);
  EXPECT_EQ(seen, 2);
}

class ChunkFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChunkFuzzTest, RandomChunkingMatchesWholeOnXmlRpc) {
  auto g = xmlrpc::XmlRpcGrammar();
  ASSERT_TRUE(g.ok());
  TaggerOptions opt;
  opt.arm_mode = ArmMode::kResync;
  auto t = FunctionalTagger::Create(&g.value(), opt);
  ASSERT_TRUE(t.ok());

  Rng rng(GetParam() * 31 + 5);
  xmlrpc::MessageGenerator gen({}, GetParam());
  const std::string stream = gen.GenerateStream(3);
  const auto whole = t->TagAll(stream);

  TaggerSession session = t->NewSession();
  std::vector<Tag> tags;
  const TagSink sink = [&tags](const Tag& tag) {
    tags.push_back(tag);
    return true;
  };
  size_t at = 0;
  while (at < stream.size()) {
    const size_t len = 1 + rng.NextIndex(17);
    session.Feed(std::string_view(stream).substr(at, len), sink);
    at += len;
  }
  session.Finish(sink);
  EXPECT_EQ(tags, whole);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChunkFuzzTest,
                         ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace cfgtag::tagger
