// The canonical grammar serialization is the artifact cache's identity
// notion: two grammars that differ only in the order tokens, nonterminals
// or productions were written must serialize — and therefore hash —
// identically, while any *content* change must move the hash. These are
// the regression tests behind the cache-key claim in
// docs/artifact_cache.md.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "grammar/canonical.h"
#include "grammar/grammar.h"

namespace cfgtag {
namespace {

using grammar::CanonicalHash;
using grammar::CanonicalSerialization;
using grammar::Grammar;
using grammar::Symbol;

// The Fig. 14 expression grammar, assembled with its pieces in the order
// given by `perm` (a permutation of {0,1,2} over token-add order) and with
// nonterminals/productions optionally reversed. All variants describe the
// same grammar *content* with different internal ids.
Grammar BuildGrammar(const std::vector<int>& token_order, bool reverse_nts,
                     bool reverse_prods) {
  Grammar g;
  int32_t ids[3] = {-1, -1, -1};
  for (int which : token_order) {
    switch (which) {
      case 0:
        ids[0] = *g.AddToken("NUM", "[0-9]+");
        break;
      case 1:
        ids[1] = *g.AddToken("WORD", "[a-z]+");
        break;
      default:
        ids[2] = *g.AddLiteralToken("begin");
        break;
    }
  }
  int32_t s, item;
  if (reverse_nts) {
    item = g.AddNonterminal("item");
    s = g.AddNonterminal("s");
  } else {
    s = g.AddNonterminal("s");
    item = g.AddNonterminal("item");
  }
  std::vector<std::vector<Symbol>> s_prods = {
      {Symbol::Terminal(ids[2]), Symbol::Nonterminal(item)},
      {Symbol::Nonterminal(item), Symbol::Nonterminal(s)},
  };
  std::vector<std::vector<Symbol>> item_prods = {
      {Symbol::Terminal(ids[0])},
      {Symbol::Terminal(ids[1])},
  };
  if (reverse_prods) {
    std::swap(s_prods[0], s_prods[1]);
    std::swap(item_prods[0], item_prods[1]);
  }
  // Interleave the two nonterminals' rules when reversing, so production
  // *record* order differs too, not just per-nonterminal alternative order.
  if (reverse_prods) {
    g.AddProduction(item, std::move(item_prods[0]));
    g.AddProduction(s, std::move(s_prods[0]));
    g.AddProduction(item, std::move(item_prods[1]));
    g.AddProduction(s, std::move(s_prods[1]));
  } else {
    g.AddProduction(s, std::move(s_prods[0]));
    g.AddProduction(s, std::move(s_prods[1]));
    g.AddProduction(item, std::move(item_prods[0]));
    g.AddProduction(item, std::move(item_prods[1]));
  }
  g.SetStart(s);
  return g;
}

TEST(GrammarCanonicalTest, ReorderedEquivalentGrammarsHashEqual) {
  const Grammar base = BuildGrammar({0, 1, 2}, false, false);
  const std::string want = CanonicalSerialization(base);
  const uint64_t want_hash = CanonicalHash(base);
  EXPECT_FALSE(want.empty());

  const std::vector<std::vector<int>> token_orders = {
      {0, 1, 2}, {2, 1, 0}, {1, 2, 0}};
  for (const auto& order : token_orders) {
    for (bool rev_nts : {false, true}) {
      for (bool rev_prods : {false, true}) {
        const Grammar v = BuildGrammar(order, rev_nts, rev_prods);
        EXPECT_EQ(CanonicalSerialization(v), want)
            << "token order " << order[0] << order[1] << order[2]
            << " rev_nts=" << rev_nts << " rev_prods=" << rev_prods;
        EXPECT_EQ(CanonicalHash(v), want_hash);
      }
    }
  }
}

TEST(GrammarCanonicalTest, CloneHashesEqual) {
  const Grammar g = BuildGrammar({1, 0, 2}, true, true);
  EXPECT_EQ(CanonicalHash(g), CanonicalHash(g.Clone()));
}

TEST(GrammarCanonicalTest, ContentChangesMoveTheHash) {
  const uint64_t base = CanonicalHash(BuildGrammar({0, 1, 2}, false, false));

  // A changed pattern.
  {
    Grammar g = BuildGrammar({0, 1, 2}, false, false);
    Grammar h;
    (void)h.AddToken("NUM", "[0-9][0-9]*");  // same language, different text
    (void)h.AddToken("WORD", "[a-z]+");
    (void)h.AddLiteralToken("begin");
    // Content hashing is textual, not semantic: the hash must move.
    EXPECT_NE(CanonicalHash(g), CanonicalHash(h));
  }

  // An extra token.
  {
    Grammar g = BuildGrammar({0, 1, 2}, false, false);
    (void)g.AddToken("HEX", "[a-f0-9]+");
    EXPECT_NE(CanonicalHash(g), base);
  }

  // A renamed token (same pattern).
  {
    Grammar g;
    (void)g.AddToken("NUMBER", "[0-9]+");
    Grammar h;
    (void)h.AddToken("NUM", "[0-9]+");
    EXPECT_NE(CanonicalHash(g), CanonicalHash(h));
  }

  // An extra production alternative.
  {
    Grammar g = BuildGrammar({0, 1, 2}, false, false);
    const uint64_t before = CanonicalHash(g);
    g.AddProduction(g.FindNonterminal("s"),
                    {Symbol::Terminal(g.FindToken("NUM"))});
    EXPECT_NE(CanonicalHash(g), before);
  }

  // A different start symbol.
  {
    Grammar g = BuildGrammar({0, 1, 2}, false, false);
    g.SetStart(g.FindNonterminal("item"));
    EXPECT_NE(CanonicalHash(g), base);
  }
}

}  // namespace
}  // namespace cfgtag
