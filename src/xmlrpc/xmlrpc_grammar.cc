#include "xmlrpc/xmlrpc_grammar.h"

#include <cctype>

#include "grammar/grammar_parser.h"

namespace cfgtag::xmlrpc {

namespace {

// Paper Fig. 14, with the following fixes (each is the obviously intended
// reading; see DESIGN.md §6):
//   * `member_list` is referenced but never defined — defined here as
//     member+ (right-recursive, matching the DTD's (member+)).
//   * `data` is generalized from the paper's single optional value to
//     value* (value_list), matching the DTD's (value*).
//   * DOUBLE's '.' is escaped (the paper text relies on Lex context).
//   * BASE64 is a repetition ([+/A-Za-z0-9]+); the paper shows the class
//     for a single character.
constexpr char kXmlRpcGrammar[] = R"grm(
STRING            [a-zA-Z0-9]+
INT               [+-]?[0-9]+
DOUBLE            [+-]?[0-9]+\.[0-9]+
YEAR              [0-9][0-9][0-9][0-9]
MONTH, DAY        [0-9][0-9]
HOUR, MIN, SEC    [0-9][0-9]
BASE64            [+/A-Za-z0-9]+
%%
methodCall: "<methodCall>" methodName params "</methodCall>";
methodName: "<methodName>" STRING "</methodName>";
params:     "<params>" param "</params>";
param:      | "<param>" value "</param>" param;
value:      i4 | int | string | dateTime | double
            | base64 | struct | array;
i4:         "<i4>" INT "</i4>";
int:        "<int>" INT "</int>";
string:     "<string>" STRING "</string>";
dateTime:   "<dateTime.iso8601>" YEAR MONTH DAY
            `T' HOUR `:' MIN `:' SEC "</dateTime.iso8601>";
double:     "<double>" DOUBLE "</double>";
base64:     "<base64>" BASE64 "</base64>";
struct:     "<struct>" member_list "</struct>";
member_list: member member_rest;
member_rest: | member member_rest;
member:     "<member>" name value "</member>";
name:       "<name>" STRING "</name>";
array:      "<array>" data "</array>";
data:       "<data>" value_list "</data>";
value_list: | value value_list;
%%
)grm";

// Paper Fig. 13 verbatim (module name normalized: the figure's
// dataTime/dateTime typo is resolved to dateTime.iso8601 throughout).
constexpr char kXmlRpcDtd[] = R"dtd(
<!ELEMENT methodCall       (methodName, params)>
<!ELEMENT methodName       (#PCDATA)>
<!ELEMENT params           (param*)>
<!ELEMENT param            (value)>
<!ELEMENT value            (i4|int|string|
   dateTime.iso8601|double|base64|struct|array)>
<!ELEMENT i4               (#PCDATA)>
<!ELEMENT int              (#PCDATA)>
<!ELEMENT string           (#PCDATA)>
<!ELEMENT dateTime.iso8601 (#PCDATA)>
<!ELEMENT double           (#PCDATA)>
<!ELEMENT base64           (#PCDATA)>
<!ELEMENT array            (data)>
<!ELEMENT data             (value*)>
<!ELEMENT struct           (member+)>
<!ELEMENT member           (name, value)>
<!ELEMENT name             (#PCDATA)>
)dtd";

}  // namespace

const std::string& XmlRpcGrammarText() {
  static const std::string* const kText = new std::string(kXmlRpcGrammar);
  return *kText;
}

const std::string& XmlRpcDtdText() {
  static const std::string* const kText = new std::string(kXmlRpcDtd);
  return *kText;
}

StatusOr<grammar::Grammar> XmlRpcGrammar() {
  return grammar::ParseGrammar(XmlRpcGrammarText());
}

StatusOr<XmlRpcTokens> FindXmlRpcTokens(const grammar::Grammar& g) {
  XmlRpcTokens t;
  t.string = g.FindToken("STRING");
  t.open_method = g.FindToken("\"<methodName>\"");
  t.close_method = g.FindToken("\"</methodName>\"");
  if (t.string < 0 || t.open_method < 0 || t.close_method < 0) {
    return NotFoundError("grammar lacks the XML-RPC methodName tokens");
  }
  return t;
}

StatusOr<grammar::Grammar> XmlRpcRouterGrammar(
    const std::vector<std::string>& services) {
  if (services.empty()) {
    return InvalidArgumentError("router needs at least one service");
  }
  // Service keywords are declared in the definitions section *before*
  // STRING so they get lower token ids: the reference lexer breaks
  // longest-match ties toward the earliest token (flex semantics), and the
  // back-end gets one dedicated match wire per service (Fig. 12).
  std::string text;
  for (size_t i = 0; i < services.size(); ++i) {
    for (char c : services[i]) {
      if (!std::isalnum(static_cast<unsigned char>(c))) {
        return InvalidArgumentError("service names must be alphanumeric: " +
                                    services[i]);
      }
    }
    text += "SVC_" + std::to_string(i) + " \"" + services[i] + "\"\n";
  }
  text += R"grm(
STRING            [a-zA-Z0-9]+
INT               [+-]?[0-9]+
DOUBLE            [+-]?[0-9]+\.[0-9]+
YEAR              [0-9][0-9][0-9][0-9]
MONTH, DAY        [0-9][0-9]
HOUR, MIN, SEC    [0-9][0-9]
BASE64            [+/A-Za-z0-9]+
%%
methodCall: "<methodCall>" methodName params "</methodCall>";
methodName: "<methodName>" service "</methodName>";
service:    )grm";
  for (size_t i = 0; i < services.size(); ++i) {
    text += "SVC_" + std::to_string(i) + " | ";
  }
  text += R"grm(STRING;
params:     "<params>" param "</params>";
param:      | "<param>" value "</param>" param;
value:      i4 | int | string | dateTime | double
            | base64 | struct | array;
i4:         "<i4>" INT "</i4>";
int:        "<int>" INT "</int>";
string:     "<string>" STRING "</string>";
dateTime:   "<dateTime.iso8601>" YEAR MONTH DAY
            `T' HOUR `:' MIN `:' SEC "</dateTime.iso8601>";
double:     "<double>" DOUBLE "</double>";
base64:     "<base64>" BASE64 "</base64>";
struct:     "<struct>" member_list "</struct>";
member_list: member member_rest;
member_rest: | member member_rest;
member:     "<member>" name value "</member>";
name:       "<name>" STRING "</name>";
array:      "<array>" data "</array>";
data:       "<data>" value_list "</data>";
value_list: | value value_list;
%%
)grm";
  return grammar::ParseGrammar(text);
}

}  // namespace cfgtag::xmlrpc
