#ifndef CFGTAG_XMLRPC_XMLRPC_GRAMMAR_H_
#define CFGTAG_XMLRPC_XMLRPC_GRAMMAR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "grammar/grammar.h"

namespace cfgtag::xmlrpc {

// The Yacc-style XML-RPC grammar of paper Fig. 14, with the obviously
// intended fixes documented in the .cc file (member_list defined, data
// generalized to value*, escaped '.' in DOUBLE, repeated BASE64).
const std::string& XmlRpcGrammarText();

// The XML-RPC DTD of paper Fig. 13 (used to exercise the §4.1 DTD->BNF
// path; the hand-written Fig. 14 grammar drives the main experiments).
const std::string& XmlRpcDtdText();

// Parses XmlRpcGrammarText().
StatusOr<grammar::Grammar> XmlRpcGrammar();

// Ids of the tokens a test or back-end usually cares about.
struct XmlRpcTokens {
  int32_t string = -1;       // STRING
  int32_t open_method = -1;  // "<methodName>"
  int32_t close_method = -1; // "</methodName>"
};
StatusOr<XmlRpcTokens> FindXmlRpcTokens(const grammar::Grammar& g);

// The router grammar of Fig. 12: XML-RPC where <methodName> content is one
// of the literal `services` (each its own token, so the hardware raises a
// dedicated service wire) or a generic STRING fallback. Service literals
// get lower token ids than STRING so longest-match ties resolve to the
// service keyword (flex "earliest rule wins" behaviour).
StatusOr<grammar::Grammar> XmlRpcRouterGrammar(
    const std::vector<std::string>& services);

}  // namespace cfgtag::xmlrpc

#endif  // CFGTAG_XMLRPC_XMLRPC_GRAMMAR_H_
