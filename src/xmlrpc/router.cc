#include "xmlrpc/router.h"

#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "xmlrpc/xmlrpc_grammar.h"

namespace cfgtag::xmlrpc {

namespace {

struct RouteMetrics {
  obs::Counter* messages;
  obs::Counter* defaulted;
  obs::Histogram* latency;

  static const RouteMetrics& Get() {
    static const RouteMetrics* const kMetrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      auto* m = new RouteMetrics;
      m->messages = reg.GetCounter("cfgtag_xmlrpc_messages_total",
                                   "Messages routed by XmlRpcRouter");
      m->defaulted = reg.GetCounter(
          "cfgtag_xmlrpc_routed_default_total",
          "Messages that fell through to the default port");
      m->latency = reg.GetHistogram("cfgtag_xmlrpc_route_seconds",
                                    "Per-message Route() wall time");
      return m;
    }();
    return *kMetrics;
  }
};

}  // namespace

StatusOr<XmlRpcRouter> XmlRpcRouter::Create(const RouterConfig& config) {
  std::vector<std::string> names;
  names.reserve(config.services.size());
  for (const RouterConfig::Service& s : config.services) {
    names.push_back(s.name);
  }
  CFGTAG_ASSIGN_OR_RETURN(auto grammar, XmlRpcRouterGrammar(names));

  // Service keyword tokens are SVC_i = token id i (they are declared
  // first); STRING can fire on the same cycle as a keyword, so the encoder
  // gets an eq. 5 priority group with STRING lowest.
  hwgen::HwOptions options;
  const int32_t string_token = grammar.FindToken("STRING");
  if (string_token < 0) return InternalError("router grammar lacks STRING");
  std::vector<int32_t> group;
  group.push_back(string_token);
  for (size_t i = 0; i < config.services.size(); ++i) {
    group.push_back(static_cast<int32_t>(i));
  }
  options.priority_groups.push_back(std::move(group));

  CFGTAG_ASSIGN_OR_RETURN(auto tagger,
                          core::CompiledTagger::Compile(std::move(grammar),
                                                        options));

  core::TagRouter switch_fabric(config.default_port);
  for (size_t i = 0; i < config.services.size(); ++i) {
    switch_fabric.AddRoute(static_cast<int32_t>(i), config.services[i].port);
  }
  return XmlRpcRouter(config, std::move(tagger), std::move(switch_fabric),
                      string_token);
}

int32_t XmlRpcRouter::ServiceToken(const std::string& name) const {
  for (size_t i = 0; i < config_.services.size(); ++i) {
    if (config_.services[i].name == name) return static_cast<int32_t>(i);
  }
  return -1;
}

int XmlRpcRouter::RouteTags(const std::vector<tagger::Tag>& tags) const {
  const int32_t num_services = static_cast<int32_t>(config_.services.size());
  for (const tagger::Tag& t : tags) {
    if (t.token >= num_services) continue;
    // A keyword counts only when the STRING fallback fires on the same
    // cycle (same end offset), which under longest-match happens exactly at
    // the full method-name boundary.
    for (const tagger::Tag& u : tags) {
      if (u.token == string_token_ && u.end == t.end) {
        return switch_.Route({t});
      }
    }
  }
  return switch_.default_port();
}

int XmlRpcRouter::Route(std::string_view message) const {
  const RouteMetrics& metrics = RouteMetrics::Get();
  obs::ScopedTimer timer(metrics.latency);
  const int port = RouteTags(tagger_.Tag(message));
  metrics.messages->Increment();
  if (port == switch_.default_port()) metrics.defaulted->Increment();
  if (obs::AttributionTable::enabled()) {
    // Reverse-map the routed port to its service name (linear: routers
    // hold a handful of services). The default port may also be a
    // service's port, in which case that service gets the credit.
    const char* service = "(default)";
    for (const RouterConfig::Service& s : config_.services) {
      if (s.port == port) {
        service = s.name.c_str();
        break;
      }
    }
    obs::AttributionTable::Default().AddService(service, 1);
  }
  return port;
}

StatusOr<int> XmlRpcRouter::RouteCycleAccurate(
    std::string_view message) const {
  CFGTAG_ASSIGN_OR_RETURN(auto tags, tagger_.TagCycleAccurate(message));
  return RouteTags(tags);
}

}  // namespace cfgtag::xmlrpc
