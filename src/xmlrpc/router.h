#ifndef CFGTAG_XMLRPC_ROUTER_H_
#define CFGTAG_XMLRPC_ROUTER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/tag_stream.h"
#include "core/token_tagger.h"

namespace cfgtag::xmlrpc {

// The content-based XML-RPC message router of paper Fig. 12: the tagger
// raises a dedicated wire per known service when it appears as the
// <methodName> content, and a switch steers the message to that service's
// output port. Unknown services go to `default_port`.
struct RouterConfig {
  struct Service {
    std::string name;  // alphanumeric method name, e.g. "deposit"
    int port = 0;      // output port it routes to
  };
  std::vector<Service> services;
  int default_port = -1;
};

class XmlRpcRouter {
 public:
  static StatusOr<XmlRpcRouter> Create(const RouterConfig& config);

  // Routes one message using the fast functional model.
  int Route(std::string_view message) const;

  // Routes via the cycle-accurate netlist simulation — the match wire of
  // the service token is observed exactly as the Fig. 12 switch would.
  StatusOr<int> RouteCycleAccurate(std::string_view message) const;

  // Token id of a service's dedicated wire (-1 if unknown).
  int32_t ServiceToken(const std::string& name) const;

  const core::CompiledTagger& tagger() const { return tagger_; }
  const RouterConfig& config() const { return config_; }

  // Routing decision over a tag stream. A service keyword identifies the
  // method name only when it matches on the same cycle as the STRING
  // fallback token: under longest-match, STRING fires exactly once at the
  // true end of the method name, so a keyword that is merely a *prefix* of
  // a longer name fires alone and is ignored — the §3.4 simultaneous-
  // detection discipline applied at the back-end.
  int RouteTags(const std::vector<tagger::Tag>& tags) const;

 private:
  XmlRpcRouter(RouterConfig config, core::CompiledTagger tagger,
               core::TagRouter switch_fabric, int32_t string_token)
      : config_(std::move(config)),
        tagger_(std::move(tagger)),
        switch_(std::move(switch_fabric)),
        string_token_(string_token) {}

  RouterConfig config_;
  core::CompiledTagger tagger_;
  core::TagRouter switch_;
  int32_t string_token_;
};

}  // namespace cfgtag::xmlrpc

#endif  // CFGTAG_XMLRPC_ROUTER_H_
