#include "xmlrpc/extractor.h"

#include "common/strings.h"
#include "xmlrpc/xmlrpc_grammar.h"

namespace cfgtag::xmlrpc {

namespace {

// Scalar value types: open-tag literal -> reported type name.
struct ScalarKind {
  const char* open;
  const char* close;
  const char* type;
};
constexpr ScalarKind kScalars[] = {
    {"<i4>", "</i4>", "i4"},
    {"<int>", "</int>", "int"},
    {"<string>", "</string>", "string"},
    {"<double>", "</double>", "double"},
    {"<dateTime.iso8601>", "</dateTime.iso8601>", "dateTime.iso8601"},
    {"<base64>", "</base64>", "base64"},
};

}  // namespace

StatusOr<CallExtractor> CallExtractor::Create() {
  CFGTAG_ASSIGN_OR_RETURN(auto grammar, XmlRpcGrammar());
  CFGTAG_ASSIGN_OR_RETURN(auto tagger,
                          core::CompiledTagger::Compile(std::move(grammar)));
  return CallExtractor(std::move(tagger));
}

StatusOr<ExtractedCall> CallExtractor::Extract(
    std::string_view message) const {
  const grammar::Grammar& g = tagger_.grammar();

  auto literal_token = [&](const std::string& text) {
    return g.FindToken("\"" + CEscape(text) + "\"");
  };
  const int32_t open_method = literal_token("<methodName>");
  const int32_t close_method = literal_token("</methodName>");
  const int32_t open_call = literal_token("<methodCall>");
  const int32_t open_struct = literal_token("<struct>");
  const int32_t close_struct = literal_token("</struct>");
  const int32_t open_array = literal_token("<array>");
  const int32_t close_array = literal_token("</array>");
  const int32_t open_param = literal_token("<param>");

  struct Scalar {
    int32_t open_tok;
    int32_t close_tok;
    const char* type;
    size_t close_len;
  };
  std::vector<Scalar> scalars;
  for (const ScalarKind& s : kScalars) {
    scalars.push_back(Scalar{literal_token(s.open), literal_token(s.close),
                             s.type, std::string(s.close).size()});
  }

  ExtractedCall call;
  bool saw_call = false;
  bool in_method = false;
  int depth = 0;  // struct/array nesting inside the current param
  uint64_t method_start = 0;
  // Open scalar at top level of the current param, pending its close tag.
  int pending_scalar = -1;
  uint64_t pending_start = 0;

  for (const tagger::Tag& t : tagger_.Tag(message)) {
    if (t.end >= message.size()) continue;  // ends inside flush padding
    if (t.token == open_call) saw_call = true;
    if (t.token == open_method) {
      in_method = true;
      method_start = t.end + 1;
      continue;
    }
    if (t.token == close_method && in_method) {
      // Method text: between the tags, trimmed of delimiters.
      const uint64_t close_start = t.end + 1 - 13;  // "</methodName>"
      call.method = std::string(StripWhitespace(
          message.substr(method_start, close_start - method_start)));
      in_method = false;
      continue;
    }
    if (t.token == open_param) {
      depth = 0;
      pending_scalar = -1;
      continue;
    }
    if (t.token == open_struct || t.token == open_array) {
      if (depth == 0) {
        call.params.push_back(
            {t.token == open_struct ? "struct" : "array", ""});
      }
      ++depth;
      continue;
    }
    if (t.token == close_struct || t.token == close_array) {
      if (depth > 0) --depth;
      continue;
    }
    if (depth != 0) continue;  // nested values are summarized by container
    for (size_t si = 0; si < scalars.size(); ++si) {
      if (t.token == scalars[si].open_tok) {
        pending_scalar = static_cast<int>(si);
        pending_start = t.end + 1;
      } else if (t.token == scalars[si].close_tok &&
                 pending_scalar == static_cast<int>(si)) {
        const uint64_t close_start = t.end + 1 - scalars[si].close_len;
        call.params.push_back(
            {scalars[si].type,
             std::string(StripWhitespace(message.substr(
                 pending_start, close_start - pending_start)))});
        pending_scalar = -1;
      }
    }
  }

  if (!saw_call || call.method.empty()) {
    return InvalidArgumentError(
        "tag stream lacks methodCall/methodName framing");
  }
  return call;
}

}  // namespace cfgtag::xmlrpc
