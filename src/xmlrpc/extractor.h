#ifndef CFGTAG_XMLRPC_EXTRACTOR_H_
#define CFGTAG_XMLRPC_EXTRACTOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/token_tagger.h"

namespace cfgtag::xmlrpc {

// A decoded XML-RPC call, recovered purely from the hardware tag stream
// plus the raw bytes — the §3.5 "back-end processor" doing application
// work on (token index, data) pairs, no software XML parser involved.
struct ExtractedCall {
  struct Param {
    std::string type;  // "i4", "int", "string", "double", "dateTime.iso8601",
                       // "base64", "struct", "array"
    std::string text;  // raw text between the tags; empty for containers
  };

  std::string method;
  std::vector<Param> params;  // top-level parameters, in order
};

// Tags messages with the Fig. 14 grammar and folds the tag stream into
// ExtractedCall records.
class CallExtractor {
 public:
  static StatusOr<CallExtractor> Create();

  // Extracts the call from one message. Fails if the tag stream lacks the
  // methodCall framing (malformed input).
  StatusOr<ExtractedCall> Extract(std::string_view message) const;

  const core::CompiledTagger& tagger() const { return tagger_; }

 private:
  explicit CallExtractor(core::CompiledTagger tagger)
      : tagger_(std::move(tagger)) {}

  core::CompiledTagger tagger_;
};

}  // namespace cfgtag::xmlrpc

#endif  // CFGTAG_XMLRPC_EXTRACTOR_H_
