#ifndef CFGTAG_XMLRPC_MESSAGE_GEN_H_
#define CFGTAG_XMLRPC_MESSAGE_GEN_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace cfgtag::xmlrpc {

// Workload generator: seeded random XML-RPC messages conforming to the
// Fig. 14 grammar. Substitutes for the network traffic of the paper's
// testbed — the tagger only ever sees a byte stream, and the generator
// covers every value type, nesting through struct/array, and optional
// whitespace between tokens.
struct MessageGenOptions {
  std::vector<std::string> method_names = {"deposit",  "withdraw", "acctinfo",
                                           "buy",      "sell",     "price"};
  int max_depth = 3;          // struct/array nesting budget
  int max_params = 3;         // parameters per call
  int max_members = 3;        // members per struct / values per array
  double whitespace_prob = 0.4;  // chance of whitespace between tokens
  // Whitespace run length bounds (uniform in [min, max]). The defaults
  // match the historical 1-3 behavior; raise them for delimiter-heavy
  // pretty-printed streams (the SIMD skip-scan benchmark workload).
  int ws_run_min = 1;
  int ws_run_max = 3;
  // Adversarial mode: string values deliberately contain service names, so
  // a context-free matcher reports them as service requests (the
  // false-positive experiment of the intro).
  bool adversarial = false;
};

class MessageGenerator {
 public:
  MessageGenerator(MessageGenOptions options, uint64_t seed);

  // One random message; the method name is drawn from the option list.
  std::string Generate();

  // One random message with a fixed method name.
  std::string GenerateWithMethod(const std::string& method);

  // A stream of `count` messages separated by newlines, at least
  // `min_bytes` long (whichever bound is hit last).
  std::string GenerateStream(size_t count, size_t min_bytes = 0);

 private:
  void EmitWs(std::string* out);
  void EmitValue(std::string* out, int depth);
  void EmitMessage(std::string* out, const std::string& method);
  std::string RandomString(size_t min_len, size_t max_len);

  MessageGenOptions options_;
  Rng rng_;
};

}  // namespace cfgtag::xmlrpc

#endif  // CFGTAG_XMLRPC_MESSAGE_GEN_H_
