#include "xmlrpc/message_gen.h"

#include <cstdio>

namespace cfgtag::xmlrpc {

namespace {
constexpr char kAlnum[] =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
constexpr char kBase64[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
}  // namespace

MessageGenerator::MessageGenerator(MessageGenOptions options, uint64_t seed)
    : options_(std::move(options)), rng_(seed) {}

void MessageGenerator::EmitWs(std::string* out) {
  if (!rng_.NextBool(options_.whitespace_prob)) return;
  static constexpr char kWs[] = {' ', '\n', '\t'};
  const size_t n =
      static_cast<size_t>(options_.ws_run_min) +
      rng_.NextIndex(
          static_cast<size_t>(options_.ws_run_max - options_.ws_run_min) + 1);
  for (size_t i = 0; i < n; ++i) out->push_back(kWs[rng_.NextIndex(3)]);
}

std::string MessageGenerator::RandomString(size_t min_len, size_t max_len) {
  const size_t len =
      min_len + rng_.NextIndex(max_len - min_len + 1);
  std::string s = rng_.NextString(len, std::string(kAlnum, 62));
  if (options_.adversarial && rng_.NextBool(0.7) &&
      !options_.method_names.empty()) {
    // Smuggle a service name into the payload.
    const std::string& svc =
        options_.method_names[rng_.NextIndex(options_.method_names.size())];
    const size_t at = rng_.NextIndex(s.size() + 1);
    s.insert(at, svc);
  }
  return s;
}

void MessageGenerator::EmitValue(std::string* out, int depth) {
  // Leaf kinds 0..5; container kinds 6..7 only while depth remains.
  const int num_kinds = depth > 0 ? 8 : 6;
  const int kind = static_cast<int>(rng_.NextIndex(num_kinds));
  EmitWs(out);
  char buf[64];
  switch (kind) {
    case 0:
      std::snprintf(buf, sizeof(buf), "<i4>%+d</i4>",
                    static_cast<int>(rng_.NextInRange(-99999, 99999)));
      *out += buf;
      break;
    case 1:
      std::snprintf(buf, sizeof(buf), "<int>%d</int>",
                    static_cast<int>(rng_.NextInRange(0, 1 << 30)));
      *out += buf;
      break;
    case 2:
      *out += "<string>" + RandomString(1, 24) + "</string>";
      break;
    case 3: {
      std::snprintf(
          buf, sizeof(buf),
          "<dateTime.iso8601>%04d%02d%02dT%02d:%02d:%02d</dateTime.iso8601>",
          static_cast<int>(rng_.NextInRange(1970, 2038)),
          static_cast<int>(rng_.NextInRange(1, 12)),
          static_cast<int>(rng_.NextInRange(1, 28)),
          static_cast<int>(rng_.NextInRange(0, 23)),
          static_cast<int>(rng_.NextInRange(0, 59)),
          static_cast<int>(rng_.NextInRange(0, 59)));
      *out += buf;
      break;
    }
    case 4:
      std::snprintf(buf, sizeof(buf), "<double>%d.%02d</double>",
                    static_cast<int>(rng_.NextInRange(-999, 999)),
                    static_cast<int>(rng_.NextInRange(0, 99)));
      *out += buf;
      break;
    case 5:
      *out += "<base64>" + rng_.NextString(4 + rng_.NextIndex(16),
                                           std::string(kBase64, 64)) +
              "</base64>";
      break;
    case 6: {
      *out += "<struct>";
      const size_t members = 1 + rng_.NextIndex(options_.max_members);
      for (size_t m = 0; m < members; ++m) {
        EmitWs(out);
        *out += "<member><name>" + RandomString(1, 12) + "</name>";
        EmitValue(out, depth - 1);
        EmitWs(out);
        *out += "</member>";
      }
      EmitWs(out);
      *out += "</struct>";
      break;
    }
    case 7: {
      *out += "<array><data>";
      const size_t values = rng_.NextIndex(options_.max_members + 1);
      for (size_t v = 0; v < values; ++v) EmitValue(out, depth - 1);
      EmitWs(out);
      *out += "</data></array>";
      break;
    }
  }
  EmitWs(out);
}

void MessageGenerator::EmitMessage(std::string* out,
                                   const std::string& method) {
  *out += "<methodCall>";
  EmitWs(out);
  *out += "<methodName>" + method + "</methodName>";
  EmitWs(out);
  *out += "<params>";
  const size_t params = rng_.NextIndex(options_.max_params + 1);
  for (size_t p = 0; p < params; ++p) {
    EmitWs(out);
    *out += "<param>";
    EmitValue(out, options_.max_depth);
    *out += "</param>";
  }
  EmitWs(out);
  *out += "</params>";
  EmitWs(out);
  *out += "</methodCall>";
}

std::string MessageGenerator::Generate() {
  const std::string& method =
      options_.method_names[rng_.NextIndex(options_.method_names.size())];
  return GenerateWithMethod(method);
}

std::string MessageGenerator::GenerateWithMethod(const std::string& method) {
  std::string out;
  EmitMessage(&out, method);
  return out;
}

std::string MessageGenerator::GenerateStream(size_t count, size_t min_bytes) {
  std::string out;
  size_t emitted = 0;
  while (emitted < count || out.size() < min_bytes) {
    EmitMessage(&out, options_.method_names[rng_.NextIndex(
                          options_.method_names.size())]);
    out.push_back('\n');
    ++emitted;
  }
  return out;
}

}  // namespace cfgtag::xmlrpc
