#include "grammar/token_context.h"

namespace cfgtag::grammar {

StatusOr<ContextExpansion> ExpandContexts(const Grammar& g) {
  CFGTAG_RETURN_IF_ERROR(g.Validate());

  // Count occurrence sites of each token.
  std::vector<int> site_count(g.NumTokens(), 0);
  for (const Production& p : g.productions()) {
    for (const Symbol& s : p.rhs) {
      if (s.IsTerminal()) site_count[s.index]++;
    }
  }

  ContextExpansion out;

  // Single-site and unused tokens carry over 1:1 (in original order, so
  // their ids shift only by the splits inserted before them — we rebuild
  // ids from scratch and record the mapping).
  std::vector<int32_t> carried_id(g.NumTokens(), -1);
  for (size_t t = 0; t < g.NumTokens(); ++t) {
    if (site_count[t] > 1) continue;
    carried_id[t] = out.grammar.AddTokenDef(g.tokens()[t]);
    out.contexts.push_back(TokenContext{carried_id[t],
                                        static_cast<int32_t>(t), -1, -1});
  }

  for (const std::string& nt : g.nonterminals()) {
    out.grammar.AddNonterminal(nt);
  }

  for (size_t pi = 0; pi < g.productions().size(); ++pi) {
    const Production& p = g.productions()[pi];
    std::vector<Symbol> rhs;
    rhs.reserve(p.rhs.size());
    for (size_t pos = 0; pos < p.rhs.size(); ++pos) {
      const Symbol& s = p.rhs[pos];
      if (!s.IsTerminal()) {
        rhs.push_back(s);
        continue;
      }
      if (carried_id[s.index] >= 0) {
        rhs.push_back(Symbol::Terminal(carried_id[s.index]));
        continue;
      }
      // Multi-site token: mint a per-site copy.
      TokenDef def = g.tokens()[s.index];
      def.name += "@p" + std::to_string(pi) + "." + std::to_string(pos);
      // A split literal is no longer deduplicatable by content.
      const int32_t id = out.grammar.AddTokenDef(std::move(def));
      out.contexts.push_back(TokenContext{id, s.index,
                                          static_cast<int32_t>(pi),
                                          static_cast<int32_t>(pos)});
      rhs.push_back(Symbol::Terminal(id));
    }
    out.grammar.AddProduction(p.lhs, std::move(rhs));
  }
  out.grammar.SetStart(g.start());
  return out;
}

}  // namespace cfgtag::grammar
