#include "grammar/canonical.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <tuple>
#include <vector>

namespace cfgtag::grammar {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendStr(std::string* out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

}  // namespace

std::string CanonicalSerialization(const Grammar& g) {
  const auto& tokens = g.tokens();
  const auto& nts = g.nonterminals();

  // Sort permutations of both id spaces; map[old] = canonical id.
  std::vector<uint32_t> tok_order(tokens.size());
  std::iota(tok_order.begin(), tok_order.end(), 0);
  std::sort(tok_order.begin(), tok_order.end(), [&](uint32_t a, uint32_t b) {
    const TokenDef& ta = tokens[a];
    const TokenDef& tb = tokens[b];
    return std::tie(ta.name, ta.pattern, ta.is_literal, ta.literal_text) <
           std::tie(tb.name, tb.pattern, tb.is_literal, tb.literal_text);
  });
  std::vector<uint32_t> tok_map(tokens.size());
  for (uint32_t i = 0; i < tok_order.size(); ++i) tok_map[tok_order[i]] = i;

  std::vector<uint32_t> nt_order(nts.size());
  std::iota(nt_order.begin(), nt_order.end(), 0);
  std::sort(nt_order.begin(), nt_order.end(),
            [&](uint32_t a, uint32_t b) { return nts[a] < nts[b]; });
  std::vector<uint32_t> nt_map(nts.size());
  for (uint32_t i = 0; i < nt_order.size(); ++i) nt_map[nt_order[i]] = i;

  std::string out;
  out.append("CFGTAGGR", 8);
  AppendU32(&out, static_cast<uint32_t>(tokens.size()));
  for (uint32_t idx : tok_order) {
    const TokenDef& t = tokens[idx];
    AppendStr(&out, t.name);
    AppendStr(&out, t.pattern);
    AppendU32(&out, t.is_literal ? 1 : 0);
    AppendStr(&out, t.literal_text);
  }
  AppendU32(&out, static_cast<uint32_t>(nts.size()));
  for (uint32_t idx : nt_order) AppendStr(&out, nts[idx]);

  // Productions serialized with remapped ids, then sorted as byte strings
  // — production order in the source never matters to the tagger (only
  // Analyze()'s start/Follow sets, which are order-insensitive sets).
  std::vector<std::string> prods;
  prods.reserve(g.productions().size());
  for (const Production& p : g.productions()) {
    std::string ps;
    AppendU32(&ps, p.lhs >= 0 ? nt_map[static_cast<uint32_t>(p.lhs)] : ~0u);
    AppendU32(&ps, static_cast<uint32_t>(p.rhs.size()));
    for (const Symbol& s : p.rhs) {
      AppendU32(&ps, s.IsTerminal() ? 0 : 1);
      const auto& map = s.IsTerminal() ? tok_map : nt_map;
      AppendU32(&ps, s.index >= 0 && static_cast<size_t>(s.index) < map.size()
                         ? map[static_cast<uint32_t>(s.index)]
                         : ~0u);
    }
    prods.push_back(std::move(ps));
  }
  std::sort(prods.begin(), prods.end());
  AppendU32(&out, static_cast<uint32_t>(prods.size()));
  for (const std::string& ps : prods) out.append(ps);

  AppendU32(&out, g.start() >= 0 && static_cast<size_t>(g.start()) < nt_map.size()
                      ? nt_map[static_cast<uint32_t>(g.start())]
                      : ~0u);
  return out;
}

uint64_t CanonicalHash(const Grammar& g) {
  const std::string bytes = CanonicalSerialization(g);
  return HashBytes64(bytes.data(), bytes.size(), 0x43464754414747ULL);
}

}  // namespace cfgtag::grammar
