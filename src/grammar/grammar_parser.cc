#include "grammar/grammar_parser.h"

#include <cctype>

#include "common/strings.h"

namespace cfgtag::grammar {

namespace {

// Removes // and /* */ comments, preserving newlines so that the
// definitions section stays line-oriented.
std::string StripComments(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  bool in_string = false;
  char string_quote = '"';
  while (i < text.size()) {
    const char c = text[i];
    if (in_string) {
      out.push_back(c);
      if (c == '\\' && i + 1 < text.size()) {
        out.push_back(text[i + 1]);
        i += 2;
        continue;
      }
      if (c == string_quote) in_string = false;
      ++i;
      continue;
    }
    if (c == '"') {
      in_string = true;
      string_quote = '"';
      out.push_back(c);
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < text.size() && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') out.push_back('\n');
        ++i;
      }
      i = (i + 1 < text.size()) ? i + 2 : text.size();
      continue;
    }
    out.push_back(c);
    ++i;
  }
  return out;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

// Token stream over the rules section.
class RuleLexer {
 public:
  struct Token {
    enum class Kind { kIdent, kLiteral, kColon, kPipe, kSemi, kEnd };
    Kind kind = Kind::kEnd;
    std::string text;  // identifier name or literal contents
    size_t offset = 0;
  };

  explicit RuleLexer(std::string_view s) : s_(s) {}

  StatusOr<Token> Next() {
    SkipWs();
    Token t;
    t.offset = pos_;
    if (pos_ >= s_.size()) {
      t.kind = Token::Kind::kEnd;
      return t;
    }
    const char c = s_[pos_];
    if (c == ':') {
      ++pos_;
      t.kind = Token::Kind::kColon;
      return t;
    }
    if (c == '|') {
      ++pos_;
      t.kind = Token::Kind::kPipe;
      return t;
    }
    if (c == ';') {
      ++pos_;
      t.kind = Token::Kind::kSemi;
      return t;
    }
    if (c == '"') {
      ++pos_;
      std::string lit;
      while (pos_ < s_.size() && s_[pos_] != '"') {
        char lc = s_[pos_++];
        if (lc == '\\' && pos_ < s_.size()) {
          const char e = s_[pos_++];
          switch (e) {
            case 'n': lc = '\n'; break;
            case 't': lc = '\t'; break;
            case 'r': lc = '\r'; break;
            default: lc = e; break;
          }
        }
        lit.push_back(lc);
      }
      if (pos_ >= s_.size()) {
        return InvalidArgumentError("unterminated string literal in rules");
      }
      ++pos_;  // closing quote
      t.kind = Token::Kind::kLiteral;
      t.text = lit;
      return t;
    }
    // `c' or 'c' single-character literal (Fig. 14 uses the backquote form).
    if (c == '`' || c == '\'') {
      if (pos_ + 2 >= s_.size()) {
        return InvalidArgumentError("unterminated character literal");
      }
      const char lit = s_[pos_ + 1];
      const char close = s_[pos_ + 2];
      if (close != '\'') {
        return InvalidArgumentError(
            "bad character literal (expected closing ')");
      }
      pos_ += 3;
      t.kind = Token::Kind::kLiteral;
      t.text = std::string(1, lit);
      return t;
    }
    if (IsIdentStart(c)) {
      size_t start = pos_;
      while (pos_ < s_.size() && IsIdentChar(s_[pos_])) ++pos_;
      t.kind = Token::Kind::kIdent;
      t.text = std::string(s_.substr(start, pos_ - start));
      return t;
    }
    return InvalidArgumentError("unexpected character '" + std::string(1, c) +
                                "' in rules section at offset " +
                                std::to_string(pos_));
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view s_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Grammar> ParseGrammar(const std::string& raw_text) {
  const std::string text = StripComments(raw_text);

  // Split into definitions / rules (/ trailer) on %% lines.
  std::vector<std::string> sections;
  {
    std::string cur;
    for (const std::string& line : StrSplit(text, '\n')) {
      if (StripWhitespace(line) == "%%") {
        sections.push_back(cur);
        cur.clear();
      } else {
        cur += line;
        cur += '\n';
      }
    }
    sections.push_back(cur);
  }
  if (sections.size() < 2) {
    return InvalidArgumentError(
        "grammar must have a definitions section, '%%', and a rules section");
  }
  const std::string& defs = sections[0];
  const std::string& rules = sections[1];

  Grammar g;

  // ---- Definitions: "NAME[, NAME...]  pattern-to-eol" ------------------
  for (const std::string& line : StrSplit(defs, '\n')) {
    std::string_view body = StripWhitespace(line);
    if (body.empty()) continue;
    // Find the end of the name list: the first whitespace not preceded by a
    // comma-continuation.
    size_t i = 0;
    std::vector<std::string> names;
    std::string cur_name;
    bool in_names = true;
    while (i < body.size() && in_names) {
      const char c = body[i];
      if (IsIdentChar(c) || IsIdentStart(c)) {
        cur_name.push_back(c);
        ++i;
      } else if (c == ',') {
        if (cur_name.empty()) {
          return InvalidArgumentError("bad token definition line: " +
                                      std::string(body));
        }
        names.push_back(cur_name);
        cur_name.clear();
        ++i;
        while (i < body.size() &&
               std::isspace(static_cast<unsigned char>(body[i]))) {
          ++i;
        }
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        in_names = false;
      } else {
        return InvalidArgumentError("bad token definition line: " +
                                    std::string(body));
      }
    }
    if (!cur_name.empty()) names.push_back(cur_name);
    std::string_view pattern = StripWhitespace(body.substr(i));
    if (names.empty() || pattern.empty()) {
      return InvalidArgumentError("bad token definition line: " +
                                  std::string(body));
    }
    for (const std::string& name : names) {
      CFGTAG_RETURN_IF_ERROR(g.AddToken(name, std::string(pattern)).status());
    }
  }

  // ---- Rules ------------------------------------------------------------
  // First pass: collect rule LHS names so identifiers can be classified.
  {
    RuleLexer scan(rules);
    bool expect_lhs = true;
    std::string pending;
    while (true) {
      CFGTAG_ASSIGN_OR_RETURN(auto tok, scan.Next());
      if (tok.kind == RuleLexer::Token::Kind::kEnd) break;
      if (expect_lhs && tok.kind == RuleLexer::Token::Kind::kIdent) {
        pending = tok.text;
        expect_lhs = false;
      } else if (tok.kind == RuleLexer::Token::Kind::kColon &&
                 !pending.empty()) {
        if (g.FindToken(pending) >= 0) {
          return InvalidArgumentError("rule name '" + pending +
                                      "' collides with a token name");
        }
        g.AddNonterminal(pending);
        pending.clear();
      } else if (tok.kind == RuleLexer::Token::Kind::kSemi) {
        expect_lhs = true;
        pending.clear();
      }
    }
  }

  RuleLexer lex(rules);
  CFGTAG_ASSIGN_OR_RETURN(auto tok, lex.Next());
  bool any_rule = false;
  while (tok.kind != RuleLexer::Token::Kind::kEnd) {
    if (tok.kind != RuleLexer::Token::Kind::kIdent) {
      return InvalidArgumentError("expected rule name in rules section");
    }
    const int32_t lhs = g.FindNonterminal(tok.text);
    if (lhs < 0) {
      return InternalError("rule name not interned: " + tok.text);
    }
    CFGTAG_ASSIGN_OR_RETURN(tok, lex.Next());
    if (tok.kind != RuleLexer::Token::Kind::kColon) {
      return InvalidArgumentError("expected ':' after rule name");
    }
    // Alternatives.
    std::vector<Symbol> rhs;
    CFGTAG_ASSIGN_OR_RETURN(tok, lex.Next());
    while (true) {
      if (tok.kind == RuleLexer::Token::Kind::kIdent) {
        const int32_t t = g.FindToken(tok.text);
        if (t >= 0) {
          rhs.push_back(Symbol::Terminal(t));
        } else {
          const int32_t nt = g.FindNonterminal(tok.text);
          if (nt < 0) {
            return InvalidArgumentError("undefined symbol '" + tok.text +
                                        "' in rule");
          }
          rhs.push_back(Symbol::Nonterminal(nt));
        }
        CFGTAG_ASSIGN_OR_RETURN(tok, lex.Next());
      } else if (tok.kind == RuleLexer::Token::Kind::kLiteral) {
        CFGTAG_ASSIGN_OR_RETURN(int32_t t, g.AddLiteralToken(tok.text));
        rhs.push_back(Symbol::Terminal(t));
        CFGTAG_ASSIGN_OR_RETURN(tok, lex.Next());
      } else if (tok.kind == RuleLexer::Token::Kind::kPipe) {
        g.AddProduction(lhs, std::move(rhs));
        rhs.clear();
        any_rule = true;
        CFGTAG_ASSIGN_OR_RETURN(tok, lex.Next());
      } else if (tok.kind == RuleLexer::Token::Kind::kSemi) {
        g.AddProduction(lhs, std::move(rhs));
        rhs.clear();
        any_rule = true;
        CFGTAG_ASSIGN_OR_RETURN(tok, lex.Next());
        break;
      } else {
        return InvalidArgumentError("unexpected token in rule body");
      }
    }
  }
  if (!any_rule) {
    return InvalidArgumentError("rules section defines no productions");
  }
  return g;
}

}  // namespace cfgtag::grammar
