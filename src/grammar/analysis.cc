#include "grammar/analysis.h"

#include <algorithm>

namespace cfgtag::grammar {

namespace {

// Inserts `src` into `dst`; returns true if `dst` grew.
bool UnionInto(std::set<int32_t>& dst, const std::set<int32_t>& src) {
  const size_t before = dst.size();
  dst.insert(src.begin(), src.end());
  return dst.size() != before;
}

}  // namespace

std::pair<std::set<int32_t>, bool> Analysis::FirstOfSequence(
    const std::vector<Symbol>& seq, size_t from) const {
  std::set<int32_t> first;
  for (size_t i = from; i < seq.size(); ++i) {
    const Symbol& s = seq[i];
    if (s.IsTerminal()) {
      first.insert(s.index);
      return {first, false};
    }
    first.insert(first_nt[s.index].begin(), first_nt[s.index].end());
    if (!nullable[s.index]) return {first, false};
  }
  return {first, true};
}

std::string Analysis::ToString(const Grammar& g) const {
  std::string out;
  auto render_set = [&](const std::set<int32_t>& set) {
    std::string s = "{";
    bool first = true;
    for (int32_t t : set) {
      if (!first) s += ", ";
      first = false;
      s += t == kEndMarker ? "eps" : g.tokens()[t].name;
    }
    s += "}";
    return s;
  };
  out += "start tokens: " + render_set(start_tokens) + "\n";
  for (size_t t = 0; t < g.NumTokens(); ++t) {
    out += "Follow(" + g.tokens()[t].name +
           ") = " + render_set(follow_tok[t]) + "\n";
  }
  for (size_t nt = 0; nt < g.NumNonterminals(); ++nt) {
    out += "First(" + g.nonterminals()[nt] +
           ") = " + render_set(first_nt[nt]) +
           (nullable[nt] ? " nullable" : "") + "\n";
  }
  return out;
}

StatusOr<Analysis> Analyze(const Grammar& g) {
  CFGTAG_RETURN_IF_ERROR(g.Validate());

  Analysis a;
  const size_t num_nt = g.NumNonterminals();
  const size_t num_tok = g.NumTokens();
  a.nullable.assign(num_nt, false);
  a.first_nt.assign(num_nt, {});
  a.follow_nt.assign(num_nt, {});
  a.follow_tok.assign(num_tok, {});

  // The start symbol can be followed by end-of-input (the ε of Fig. 10).
  a.follow_nt[g.start()].insert(Analysis::kEndMarker);

  auto first_of = [&](const Symbol& s) -> std::set<int32_t> {
    if (s.IsTerminal()) return {s.index};
    return a.first_nt[s.index];
  };
  auto nullable_of = [&](const Symbol& s) {
    return !s.IsTerminal() && a.nullable[s.index];
  };
  auto follow_of = [&](const Symbol& s) -> std::set<int32_t>& {
    return s.IsTerminal() ? a.follow_tok[s.index] : a.follow_nt[s.index];
  };

  // Fig. 8: repeat until FIRST, FOLLOW and nullable no longer change.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Production& p : g.productions()) {
      const std::vector<Symbol>& y = p.rhs;
      const size_t k = y.size();

      // if Y1...Yk are all nullable (or if k = 0) then nullable[X] = true
      bool all_nullable = true;
      for (const Symbol& s : y) all_nullable &= nullable_of(s);
      if (all_nullable && !a.nullable[p.lhs]) {
        a.nullable[p.lhs] = true;
        changed = true;
      }

      for (size_t i = 0; i < k; ++i) {
        // if Y1...Yi-1 are all nullable (or i = 1)
        //   then FIRST[X] <- FIRST[X] u FIRST[Yi]
        bool prefix_nullable = true;
        for (size_t q = 0; q < i; ++q) prefix_nullable &= nullable_of(y[q]);
        if (prefix_nullable) {
          changed |= UnionInto(a.first_nt[p.lhs], first_of(y[i]));
        }

        // if Yi+1...Yk are all nullable (or i = k)
        //   then FOLLOW[Yi] <- FOLLOW[Yi] u FOLLOW[X]
        bool suffix_nullable = true;
        for (size_t q = i + 1; q < k; ++q) suffix_nullable &= nullable_of(y[q]);
        if (suffix_nullable) {
          changed |= UnionInto(follow_of(y[i]), a.follow_nt[p.lhs]);
        }

        // for each j from i+1 to k:
        //   if Yi+1...Yj-1 are all nullable (or i+1 = j)
        //     then FOLLOW[Yi] <- FOLLOW[Yi] u FIRST[Yj]
        bool middle_nullable = true;
        for (size_t j = i + 1; j < k; ++j) {
          if (middle_nullable) {
            changed |= UnionInto(follow_of(y[i]), first_of(y[j]));
          }
          middle_nullable &= nullable_of(y[j]);
        }
      }
    }
  }

  a.start_tokens = a.first_nt[g.start()];
  a.start_nullable = a.nullable[g.start()];
  return a;
}

}  // namespace cfgtag::grammar
