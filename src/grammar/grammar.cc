#include "grammar/grammar.h"

#include "common/strings.h"
#include "regex/regex_parser.h"

namespace cfgtag::grammar {

Grammar Grammar::Clone() const {
  Grammar g;
  g.tokens_ = tokens_;
  g.nonterminals_ = nonterminals_;
  g.productions_ = productions_;
  g.start_ = start_;
  return g;
}

StatusOr<int32_t> Grammar::AddToken(const std::string& name,
                                    const std::string& pattern) {
  if (FindToken(name) >= 0) {
    return InvalidArgumentError("duplicate token name: " + name);
  }
  CFGTAG_ASSIGN_OR_RETURN(auto regex, regex::ParseRegex(pattern));
  TokenDef def;
  def.name = name;
  def.pattern = pattern;
  def.regex = std::shared_ptr<const regex::RegexNode>(std::move(regex));
  tokens_.push_back(std::move(def));
  return static_cast<int32_t>(tokens_.size() - 1);
}

StatusOr<int32_t> Grammar::AddLiteralToken(const std::string& text) {
  if (text.empty()) {
    return InvalidArgumentError("empty literal token");
  }
  for (size_t i = 0; i < tokens_.size(); ++i) {
    if (tokens_[i].is_literal && tokens_[i].literal_text == text) {
      return static_cast<int32_t>(i);
    }
  }
  TokenDef def;
  def.name = "\"" + CEscape(text) + "\"";
  def.pattern = def.name;
  def.regex = std::shared_ptr<const regex::RegexNode>(
      regex::RegexNode::FromString(text));
  def.is_literal = true;
  def.literal_text = text;
  tokens_.push_back(std::move(def));
  return static_cast<int32_t>(tokens_.size() - 1);
}

int32_t Grammar::AddTokenDef(TokenDef def) {
  tokens_.push_back(std::move(def));
  return static_cast<int32_t>(tokens_.size() - 1);
}

int32_t Grammar::AddNonterminal(const std::string& name) {
  const int32_t existing = FindNonterminal(name);
  if (existing >= 0) return existing;
  nonterminals_.push_back(name);
  return static_cast<int32_t>(nonterminals_.size() - 1);
}

void Grammar::AddProduction(int32_t lhs, std::vector<Symbol> rhs) {
  productions_.push_back(Production{lhs, std::move(rhs)});
  if (start_ < 0) start_ = lhs;
}

int32_t Grammar::FindToken(const std::string& name) const {
  for (size_t i = 0; i < tokens_.size(); ++i) {
    if (tokens_[i].name == name) return static_cast<int32_t>(i);
  }
  return -1;
}

int32_t Grammar::FindNonterminal(const std::string& name) const {
  for (size_t i = 0; i < nonterminals_.size(); ++i) {
    if (nonterminals_[i] == name) return static_cast<int32_t>(i);
  }
  return -1;
}

std::string Grammar::SymbolName(Symbol s) const {
  if (s.IsTerminal()) {
    if (s.index >= 0 && static_cast<size_t>(s.index) < tokens_.size()) {
      return tokens_[s.index].name;
    }
    return "<bad-token-" + std::to_string(s.index) + ">";
  }
  if (s.index >= 0 && static_cast<size_t>(s.index) < nonterminals_.size()) {
    return nonterminals_[s.index];
  }
  return "<bad-nonterminal-" + std::to_string(s.index) + ">";
}

size_t Grammar::PatternBytes() const {
  size_t total = 0;
  for (const TokenDef& t : tokens_) total += t.regex->LiteralCount();
  return total;
}

Status Grammar::Validate() const {
  if (start_ < 0) return FailedPreconditionError("grammar has no start symbol");
  if (static_cast<size_t>(start_) >= nonterminals_.size()) {
    return InternalError("start symbol out of range");
  }
  std::vector<bool> has_production(nonterminals_.size(), false);
  for (const Production& p : productions_) {
    if (p.lhs < 0 || static_cast<size_t>(p.lhs) >= nonterminals_.size()) {
      return InternalError("production lhs out of range");
    }
    has_production[p.lhs] = true;
    for (const Symbol& s : p.rhs) {
      const size_t limit =
          s.IsTerminal() ? tokens_.size() : nonterminals_.size();
      if (s.index < 0 || static_cast<size_t>(s.index) >= limit) {
        return InternalError("production references undefined symbol in rule " +
                             nonterminals_[p.lhs]);
      }
    }
  }
  for (size_t i = 0; i < nonterminals_.size(); ++i) {
    if (!has_production[i]) {
      return FailedPreconditionError("nonterminal '" + nonterminals_[i] +
                                     "' has no production");
    }
  }
  for (const TokenDef& t : tokens_) {
    if (t.regex->Nullable()) {
      return FailedPreconditionError(
          "token '" + t.name +
          "' can match the empty string; hardware tokenizers need >= 1 byte");
    }
  }
  return Status::Ok();
}

std::string Grammar::ToString() const {
  std::string out;
  for (const TokenDef& t : tokens_) {
    if (t.is_literal) continue;
    out += t.name + " " + t.pattern + "\n";
  }
  out += "%%\n";
  // Group productions by lhs, preserving first-appearance order.
  std::vector<bool> emitted(nonterminals_.size(), false);
  for (const Production& p : productions_) {
    if (emitted[p.lhs]) continue;
    emitted[p.lhs] = true;
    out += nonterminals_[p.lhs] + ":";
    bool first_alt = true;
    for (const Production& q : productions_) {
      if (q.lhs != p.lhs) continue;
      if (!first_alt) out += " |";
      first_alt = false;
      for (const Symbol& s : q.rhs) out += " " + SymbolName(s);
      if (q.rhs.empty()) out += " /*empty*/";
    }
    out += " ;\n";
  }
  out += "%%\n";
  return out;
}

}  // namespace cfgtag::grammar
