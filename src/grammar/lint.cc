#include "grammar/lint.h"

#include <algorithm>
#include <set>

#include "grammar/analysis.h"
#include "regex/nfa.h"

namespace cfgtag::grammar {

const char* LintKindName(LintFinding::Kind kind) {
  switch (kind) {
    case LintFinding::Kind::kUnreachableNonterminal:
      return "unreachable-nonterminal";
    case LintFinding::Kind::kUnusedToken:
      return "unused-token";
    case LintFinding::Kind::kArmConflict:
      return "arm-conflict";
    case LintFinding::Kind::kPrefixShadow:
      return "prefix-shadow";
    case LintFinding::Kind::kNonproductiveNonterminal:
      return "nonproductive-nonterminal";
  }
  return "?";
}

StatusOr<std::vector<LintFinding>> Lint(const Grammar& g) {
  CFGTAG_RETURN_IF_ERROR(g.Validate());
  CFGTAG_ASSIGN_OR_RETURN(auto analysis, Analyze(g));
  std::vector<LintFinding> findings;

  // ---- Reachability from the start symbol -----------------------------
  std::vector<uint8_t> reachable(g.NumNonterminals(), 0);
  std::vector<uint8_t> token_used(g.NumTokens(), 0);
  std::vector<int32_t> work = {g.start()};
  reachable[g.start()] = 1;
  while (!work.empty()) {
    const int32_t nt = work.back();
    work.pop_back();
    for (const Production& p : g.productions()) {
      if (p.lhs != nt) continue;
      for (const Symbol& s : p.rhs) {
        if (s.IsTerminal()) {
          token_used[s.index] = 1;
        } else if (!reachable[s.index]) {
          reachable[s.index] = 1;
          work.push_back(s.index);
        }
      }
    }
  }
  for (size_t nt = 0; nt < g.NumNonterminals(); ++nt) {
    if (!reachable[nt]) {
      findings.push_back(
          {LintFinding::Kind::kUnreachableNonterminal,
           {g.nonterminals()[nt]},
           "nonterminal '" + g.nonterminals()[nt] +
               "' is unreachable from the start symbol"});
    }
  }
  for (size_t t = 0; t < g.NumTokens(); ++t) {
    // Count every use, not just reachable ones, as "used".
    for (const Production& p : g.productions()) {
      for (const Symbol& s : p.rhs) {
        if (s.IsTerminal() && static_cast<size_t>(s.index) == t) {
          token_used[t] = 1;
        }
      }
    }
    if (!token_used[t]) {
      findings.push_back({LintFinding::Kind::kUnusedToken,
                          {g.tokens()[t].name},
                          "token " + g.tokens()[t].name +
                              " is defined but never used; its tokenizer "
                              "would be dead logic"});
    }
  }

  // ---- Productivity ----------------------------------------------------
  std::vector<uint8_t> productive(g.NumNonterminals(), 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Production& p : g.productions()) {
      if (productive[p.lhs]) continue;
      bool all = true;
      for (const Symbol& s : p.rhs) {
        all &= s.IsTerminal() || productive[s.index] != 0;
      }
      if (all) {
        productive[p.lhs] = 1;
        changed = true;
      }
    }
  }
  for (size_t nt = 0; nt < g.NumNonterminals(); ++nt) {
    if (reachable[nt] && !productive[nt]) {
      findings.push_back({LintFinding::Kind::kNonproductiveNonterminal,
                          {g.nonterminals()[nt]},
                          "nonterminal '" + g.nonterminals()[nt] +
                              "' can never derive a terminal string"});
    }
  }

  // ---- Same-cycle conflicts within each arm set ------------------------
  // Arm sets: the start tokens, and Follow(u) for every token u. Two
  // tokens armed together conflict when one's full pattern is also matched
  // by the other (identical match ending the same cycle) — the paper's
  // §3.4 simultaneous-detection case, needing set partitioning or eq. 5
  // priorities.
  std::vector<regex::Nfa> nfas;
  nfas.reserve(g.NumTokens());
  for (const TokenDef& def : g.tokens()) {
    nfas.push_back(regex::Nfa::Build(*def.regex));
  }

  std::set<std::pair<int32_t, int32_t>> reported_conflicts;
  std::set<std::pair<int32_t, int32_t>> reported_shadows;
  auto check_pair = [&](int32_t a, int32_t b) {
    if (a == b) return;
    if (a > b) std::swap(a, b);
    const TokenDef& ta = g.tokens()[a];
    const TokenDef& tb = g.tokens()[b];
    // Definite same-cycle match: a literal accepted in full by the other
    // token, or two identical patterns.
    bool conflict = ta.pattern == tb.pattern;
    if (!conflict && ta.is_literal) conflict = nfas[b].FullMatch(ta.literal_text);
    if (!conflict && tb.is_literal) conflict = nfas[a].FullMatch(tb.literal_text);
    if (conflict && reported_conflicts.emplace(a, b).second) {
      findings.push_back(
          {LintFinding::Kind::kArmConflict,
           {ta.name, tb.name},
           "tokens " + ta.name + " and " + tb.name +
               " are armed together and can match on the same cycle; "
               "partition the encoder or assign eq. 5 priorities"});
    }
    // Literal prefix shadowing: the shorter fires mid-way into the longer.
    if (ta.is_literal && tb.is_literal && !conflict) {
      const std::string& sa = ta.literal_text;
      const std::string& sb = tb.literal_text;
      const bool a_pref = sb.size() > sa.size() &&
                          sb.compare(0, sa.size(), sa) == 0;
      const bool b_pref = sa.size() > sb.size() &&
                          sa.compare(0, sb.size(), sb) == 0;
      if ((a_pref || b_pref) && reported_shadows.emplace(a, b).second) {
        findings.push_back(
            {LintFinding::Kind::kPrefixShadow,
             {ta.name, tb.name},
             "token " + (a_pref ? ta.name : tb.name) + " is a prefix of " +
                 (a_pref ? tb.name : ta.name) +
                 " in the same arm context; the short match fires early"});
      }
    }
  };

  auto check_set = [&](const std::set<int32_t>& arm_set) {
    std::vector<int32_t> tokens;
    for (int32_t t : arm_set) {
      if (t != Analysis::kEndMarker) tokens.push_back(t);
    }
    for (size_t i = 0; i < tokens.size(); ++i) {
      for (size_t j = i + 1; j < tokens.size(); ++j) {
        check_pair(tokens[i], tokens[j]);
      }
    }
  };

  check_set(analysis.start_tokens);
  for (size_t u = 0; u < g.NumTokens(); ++u) {
    check_set(analysis.follow_tok[u]);
  }
  return findings;
}

}  // namespace cfgtag::grammar
