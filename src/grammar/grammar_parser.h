#ifndef CFGTAG_GRAMMAR_GRAMMAR_PARSER_H_
#define CFGTAG_GRAMMAR_GRAMMAR_PARSER_H_

#include <string>

#include "common/status.h"
#include "grammar/grammar.h"

namespace cfgtag::grammar {

// Parses the Yacc/Lex-style grammar format of paper Fig. 14:
//
//   NAME[, NAME...]   <pattern to end of line>     (definitions section)
//   %%
//   rule: elem elem ... | elem ... ;               (rules section)
//   %%                                             (optional trailer)
//
// Rule elements are:
//   "literal"   — a fixed-string token (deduplicated across the grammar),
//   `c' or 'c'  — a single-character literal token,
//   identifier  — a token if declared in the definitions section,
//                 otherwise a nonterminal.
// An empty alternative (e.g. "param: | ... ;") is an epsilon production.
// `//` and `/* */` comments are allowed everywhere. The LHS of the first
// rule becomes the start symbol.
StatusOr<Grammar> ParseGrammar(const std::string& text);

}  // namespace cfgtag::grammar

#endif  // CFGTAG_GRAMMAR_GRAMMAR_PARSER_H_
