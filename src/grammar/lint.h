#ifndef CFGTAG_GRAMMAR_LINT_H_
#define CFGTAG_GRAMMAR_LINT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "grammar/grammar.h"

namespace cfgtag::grammar {

// Static diagnostics over a grammar, predicting hardware-level surprises
// before generation. None of these block compilation — the architecture
// tolerates them (parallel paths, superset acceptance) — but each one is a
// condition the paper calls out as needing thought (§3.3 simultaneous
// transitions, §3.4 encoder conflicts).
struct LintFinding {
  enum class Kind {
    // A nonterminal that can never be reached from the start symbol.
    kUnreachableNonterminal,
    // A token defined but never used in any production.
    kUnusedToken,
    // Two tokens armed in the same context whose first-byte classes
    // overlap: they can run in parallel and may match at the same cycle —
    // the §3.4 simultaneous-detection case. Lists both tokens.
    kArmConflict,
    // A token whose pattern is a prefix of another token armed in the same
    // context: the shorter one fires mid-way through the longer one
    // (resolve with eq. 5 priorities at the back-end).
    kPrefixShadow,
    // A nonterminal that can derive no terminal string (useless recursion).
    kNonproductiveNonterminal,
  };

  Kind kind;
  // Symbols involved (token or nonterminal names).
  std::vector<std::string> symbols;
  std::string message;
};

// Runs all checks. Requires a valid grammar.
StatusOr<std::vector<LintFinding>> Lint(const Grammar& g);

const char* LintKindName(LintFinding::Kind kind);

}  // namespace cfgtag::grammar

#endif  // CFGTAG_GRAMMAR_LINT_H_
