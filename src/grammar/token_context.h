#ifndef CFGTAG_GRAMMAR_TOKEN_CONTEXT_H_
#define CFGTAG_GRAMMAR_TOKEN_CONTEXT_H_

#include <vector>

#include "common/status.h"
#include "grammar/grammar.h"

namespace cfgtag::grammar {

// Where an expanded token came from in the original grammar.
struct TokenContext {
  int32_t token = 0;       // token id in the expanded grammar
  int32_t base_token = 0;  // token id in the original grammar
  int32_t production = -1; // production index in the original grammar
  int32_t position = -1;   // RHS position; -1 for tokens kept as-is
};

struct ContextExpansion {
  Grammar grammar;                     // the rewritten grammar
  std::vector<TokenContext> contexts;  // indexed by expanded token id
};

// Implements the token-duplication step of paper §3.2: a token that occurs
// at more than one (production, position) site is split into one fresh
// token per site — same regex, distinct identity — so the hardware can
// report *which grammatical context* matched, not just which pattern.
// Tokens occurring at a single site (or none) keep their original identity.
//
// The expanded tokens are named "<base>@p<production>.<position>".
StatusOr<ContextExpansion> ExpandContexts(const Grammar& g);

}  // namespace cfgtag::grammar

#endif  // CFGTAG_GRAMMAR_TOKEN_CONTEXT_H_
