#ifndef CFGTAG_GRAMMAR_ANALYSIS_H_
#define CFGTAG_GRAMMAR_ANALYSIS_H_

#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "grammar/grammar.h"

namespace cfgtag::grammar {

// nullable / First / Follow computed with the fixpoint algorithm of paper
// Fig. 8 — the standard predictive-parser-generator algorithm — applied to
// nonterminals *and* terminals. The terminal Follow sets are what the
// hardware generator wires (Fig. 10/11): the match output of token t
// enables exactly the tokenizers in follow_tok[t].
struct Analysis {
  // Stands for ε / end-of-input in Follow sets (the ε entries of Fig. 10).
  static constexpr int32_t kEndMarker = -1;

  std::vector<bool> nullable;                // per nonterminal
  std::vector<std::set<int32_t>> first_nt;   // per nonterminal: token ids
  std::vector<std::set<int32_t>> follow_nt;  // token ids and/or kEndMarker
  std::vector<std::set<int32_t>> follow_tok; // per token
  std::set<int32_t> start_tokens;            // First(start symbol)
  bool start_nullable = false;

  // First set of a symbol sequence plus whether the whole sequence is
  // nullable (used by the LL parser's table construction).
  std::pair<std::set<int32_t>, bool> FirstOfSequence(
      const std::vector<Symbol>& seq, size_t from) const;

  // Human-readable dump in the style of Fig. 10.
  std::string ToString(const Grammar& g) const;
};

// Runs the Fig. 8 fixpoint over a validated grammar.
StatusOr<Analysis> Analyze(const Grammar& g);

}  // namespace cfgtag::grammar

#endif  // CFGTAG_GRAMMAR_ANALYSIS_H_
