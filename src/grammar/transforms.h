#ifndef CFGTAG_GRAMMAR_TRANSFORMS_H_
#define CFGTAG_GRAMMAR_TRANSFORMS_H_

#include "common/status.h"
#include "grammar/grammar.h"

namespace cfgtag::grammar {

// Builds a grammar containing `copies` independent renamed copies of `g`,
// under a fresh start symbol with one alternative per copy. This is the
// paper's §4.3 scaling methodology ("larger XML grammars were created by
// repeatedly duplicating the 300 byte grammar"): every copy gets its own
// tokens (so tokenizer logic scales linearly) while the character decoders
// are shared, which is why LUTs/byte falls as the grammar grows.
StatusOr<Grammar> DuplicateGrammar(const Grammar& g, int copies);

}  // namespace cfgtag::grammar

#endif  // CFGTAG_GRAMMAR_TRANSFORMS_H_
