#ifndef CFGTAG_GRAMMAR_GRAMMAR_H_
#define CFGTAG_GRAMMAR_GRAMMAR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "regex/regex_ast.h"

namespace cfgtag::grammar {

// A grammar symbol: either a terminal (token) or a nonterminal, each in its
// own id space.
struct Symbol {
  enum class Kind : uint8_t { kTerminal, kNonterminal };
  Kind kind = Kind::kTerminal;
  int32_t index = 0;

  static Symbol Terminal(int32_t i) { return {Kind::kTerminal, i}; }
  static Symbol Nonterminal(int32_t i) { return {Kind::kNonterminal, i}; }
  bool IsTerminal() const { return kind == Kind::kTerminal; }

  friend bool operator==(const Symbol& a, const Symbol& b) {
    return a.kind == b.kind && a.index == b.index;
  }
};

// A token (terminal) definition: a name plus the regex that recognizes it.
struct TokenDef {
  std::string name;
  std::string pattern;  // source text of the regex
  std::shared_ptr<const regex::RegexNode> regex;
  // True when the token came from a quoted literal inside a production
  // (e.g. "<methodCall>") rather than the definitions section.
  bool is_literal = false;
  std::string literal_text;  // the raw bytes when is_literal
};

struct Production {
  int32_t lhs = 0;          // nonterminal index
  std::vector<Symbol> rhs;  // empty = epsilon production
};

// A context-free grammar in the paper's input form (Fig. 14): a token list
// (terminals with regex patterns) plus a production list over tokens and
// nonterminals. The first-added nonterminal with a production is the start
// symbol unless overridden.
class Grammar {
 public:
  Grammar() = default;
  Grammar(Grammar&&) = default;
  Grammar& operator=(Grammar&&) = default;
  Grammar(const Grammar&) = delete;
  Grammar& operator=(const Grammar&) = delete;

  // Deep copy (token regexes are shared, which is safe: they are immutable).
  Grammar Clone() const;

  // Defines a named token with a regex pattern. Fails on duplicate names or
  // unparsable patterns.
  StatusOr<int32_t> AddToken(const std::string& name,
                             const std::string& pattern);

  // Defines (or returns the existing) literal-string token. Literal tokens
  // are deduplicated by content.
  StatusOr<int32_t> AddLiteralToken(const std::string& text);

  // Appends a fully-formed token definition verbatim (no deduplication).
  // Used by grammar transforms such as context expansion, which create
  // several distinct tokens sharing one regex.
  int32_t AddTokenDef(TokenDef def);

  // Declares (or returns the existing) nonterminal with this name.
  int32_t AddNonterminal(const std::string& name);

  void AddProduction(int32_t lhs, std::vector<Symbol> rhs);

  void SetStart(int32_t nonterminal) { start_ = nonterminal; }
  int32_t start() const { return start_; }

  int32_t FindToken(const std::string& name) const;        // -1 if absent
  int32_t FindNonterminal(const std::string& name) const;  // -1 if absent

  const std::vector<TokenDef>& tokens() const { return tokens_; }
  const std::vector<std::string>& nonterminals() const { return nonterminals_; }
  const std::vector<Production>& productions() const { return productions_; }

  size_t NumTokens() const { return tokens_.size(); }
  size_t NumNonterminals() const { return nonterminals_.size(); }

  std::string SymbolName(Symbol s) const;

  // Total "pattern bytes": the sum of literal positions over all token
  // regexes — the grammar-size metric of Table 1 ("300 bytes of pattern
  // data" for XML-RPC).
  size_t PatternBytes() const;

  // Checks: a start symbol exists, every nonterminal has a production,
  // every symbol reference is in range, and no token matches the empty
  // string (a hardware tokenizer needs at least one byte).
  Status Validate() const;

  // Renders the grammar back to the Fig. 14 textual form.
  std::string ToString() const;

 private:
  std::vector<TokenDef> tokens_;
  std::vector<std::string> nonterminals_;
  std::vector<Production> productions_;
  int32_t start_ = -1;
};

}  // namespace cfgtag::grammar

#endif  // CFGTAG_GRAMMAR_GRAMMAR_H_
