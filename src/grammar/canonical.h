#ifndef CFGTAG_GRAMMAR_CANONICAL_H_
#define CFGTAG_GRAMMAR_CANONICAL_H_

#include <cstdint>
#include <string>

#include "common/hash.h"
#include "grammar/grammar.h"

namespace cfgtag::grammar {

// Order-normalized byte serialization of a grammar: tokens are sorted by
// (name, pattern, is_literal, literal_text), nonterminals by name, and
// productions — with their symbol indices remapped into the sorted id
// spaces — lexicographically, so two grammars that differ only in the
// order rules and tokens were written serialize identically. All fields
// are length-prefixed; the result is a pure function of grammar *content*.
//
// This is the artifact cache's identity notion (docs/artifact_cache.md):
// CanonicalHash(g) keys the compile cache, so reordering a grammar file
// still hits. Note the id spaces of the *original* grammars may differ —
// a cache hit hands back the artifact's token numbering, names unchanged.
std::string CanonicalSerialization(const Grammar& g);

// 64-bit hash of CanonicalSerialization(g) (common/hash.h primitives).
uint64_t CanonicalHash(const Grammar& g);

}  // namespace cfgtag::grammar

#endif  // CFGTAG_GRAMMAR_CANONICAL_H_
