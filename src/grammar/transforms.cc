#include "grammar/transforms.h"

namespace cfgtag::grammar {

StatusOr<Grammar> DuplicateGrammar(const Grammar& g, int copies) {
  CFGTAG_RETURN_IF_ERROR(g.Validate());
  if (copies < 1) return InvalidArgumentError("copies must be >= 1");

  Grammar out;
  const int32_t super_start = out.AddNonterminal("dup_start");

  for (int k = 0; k < copies; ++k) {
    const std::string suffix = "#" + std::to_string(k);
    std::vector<int32_t> token_map(g.NumTokens());
    for (size_t t = 0; t < g.NumTokens(); ++t) {
      TokenDef def = g.tokens()[t];
      def.name += suffix;
      token_map[t] = out.AddTokenDef(std::move(def));
    }
    std::vector<int32_t> nt_map(g.NumNonterminals());
    for (size_t n = 0; n < g.NumNonterminals(); ++n) {
      nt_map[n] = out.AddNonterminal(g.nonterminals()[n] + suffix);
    }
    for (const Production& p : g.productions()) {
      std::vector<Symbol> rhs;
      rhs.reserve(p.rhs.size());
      for (const Symbol& s : p.rhs) {
        rhs.push_back(s.IsTerminal() ? Symbol::Terminal(token_map[s.index])
                                     : Symbol::Nonterminal(nt_map[s.index]));
      }
      out.AddProduction(p.lhs >= 0 ? nt_map[p.lhs] : p.lhs, std::move(rhs));
    }
    out.AddProduction(super_start, {Symbol::Nonterminal(nt_map[g.start()])});
  }
  out.SetStart(super_start);
  CFGTAG_RETURN_IF_ERROR(out.Validate());
  return out;
}

}  // namespace cfgtag::grammar
