#ifndef CFGTAG_GRAMMAR_DTD_H_
#define CFGTAG_GRAMMAR_DTD_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "grammar/grammar.h"

namespace cfgtag::grammar {

// Content model of one <!ELEMENT ...> declaration. Covers the subset used
// by the XML-RPC DTD (paper Fig. 13): #PCDATA, element references,
// sequences, choices and the ?/*/+ occurrence operators, plus EMPTY.
struct DtdContent {
  enum class Kind {
    kPcdata,
    kEmpty,
    kElementRef,
    kSequence,  // (a, b, c)
    kChoice,    // (a | b | c)
    kOptional,  // x?
    kStar,      // x*
    kPlus,      // x+
  };

  Kind kind = Kind::kEmpty;
  std::string name;  // kElementRef only
  std::vector<std::unique_ptr<DtdContent>> children;
};

struct DtdElement {
  std::string name;
  std::unique_ptr<DtdContent> content;
};

struct Dtd {
  std::vector<DtdElement> elements;

  const DtdElement* Find(const std::string& name) const;
};

// Parses a sequence of <!ELEMENT name (content)> declarations. XML comments
// (<!-- -->) are skipped; other declaration types (<!ATTLIST, <!ENTITY) are
// rejected with kUnimplemented since the paper's grammar needs none.
StatusOr<Dtd> ParseDtd(const std::string& text);

// Converts a DTD into a BNF grammar (paper §4.1): every element X becomes
//
//   x: "<X>" <content> "</X>" ;
//
// with #PCDATA mapped to a PCDATA token ([^<>]+) and the occurrence
// operators lowered through helper nonterminals (x_opt / x_rep). The
// `root_element` becomes the start symbol; elements unreachable from it are
// dropped.
StatusOr<Grammar> DtdToGrammar(const Dtd& dtd, const std::string& root_element);

}  // namespace cfgtag::grammar

#endif  // CFGTAG_GRAMMAR_DTD_H_
