#include "grammar/dtd.h"

#include <cctype>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"

namespace cfgtag::grammar {

namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '_' ||
         c == '-';
}

class DtdParser {
 public:
  explicit DtdParser(const std::string& text) : s_(text) {}

  StatusOr<Dtd> Parse() {
    Dtd dtd;
    while (true) {
      SkipWs();
      if (pos_ >= s_.size()) break;
      if (!Consume("<!")) {
        return InvalidArgumentError("expected '<!' at offset " +
                                    std::to_string(pos_));
      }
      if (Consume("--")) {  // comment
        const size_t end = s_.find("-->", pos_);
        if (end == std::string::npos) {
          return InvalidArgumentError("unterminated XML comment");
        }
        pos_ = end + 3;
        continue;
      }
      if (!Consume("ELEMENT")) {
        return UnimplementedError(
            "only <!ELEMENT ...> declarations are supported");
      }
      SkipWs();
      std::string name = TakeName();
      if (name.empty()) {
        return InvalidArgumentError("missing element name in <!ELEMENT>");
      }
      SkipWs();
      CFGTAG_ASSIGN_OR_RETURN(auto content, ParseContent());
      SkipWs();
      if (!Consume(">")) {
        return InvalidArgumentError("missing '>' after <!ELEMENT " + name);
      }
      dtd.elements.push_back(DtdElement{std::move(name), std::move(content)});
    }
    if (dtd.elements.empty()) {
      return InvalidArgumentError("DTD declares no elements");
    }
    return dtd;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(std::string_view lit) {
    if (s_.compare(pos_, lit.size(), lit) == 0) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  std::string TakeName() {
    std::string out;
    while (pos_ < s_.size() && IsNameChar(s_[pos_])) out.push_back(s_[pos_++]);
    return out;
  }

  std::unique_ptr<DtdContent> MakeNode(DtdContent::Kind kind) {
    auto n = std::make_unique<DtdContent>();
    n->kind = kind;
    return n;
  }

  StatusOr<std::unique_ptr<DtdContent>> ParseContent() {
    SkipWs();
    if (Consume("EMPTY")) return MakeNode(DtdContent::Kind::kEmpty);
    if (Consume("ANY")) {
      return UnimplementedError("ANY content model not supported");
    }
    return ParseCp();
  }

  // cp := (group | name | #PCDATA) ('?' | '*' | '+')?
  StatusOr<std::unique_ptr<DtdContent>> ParseCp() {
    SkipWs();
    std::unique_ptr<DtdContent> node;
    if (Consume("#PCDATA")) {
      node = MakeNode(DtdContent::Kind::kPcdata);
    } else if (Consume("(")) {
      CFGTAG_ASSIGN_OR_RETURN(node, ParseGroup());
    } else {
      std::string name = TakeName();
      if (name.empty()) {
        return InvalidArgumentError("expected name, '(' or #PCDATA at offset " +
                                    std::to_string(pos_));
      }
      node = MakeNode(DtdContent::Kind::kElementRef);
      node->name = std::move(name);
    }
    if (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '?' || c == '*' || c == '+') {
        ++pos_;
        auto wrapper = MakeNode(c == '?'   ? DtdContent::Kind::kOptional
                                : c == '*' ? DtdContent::Kind::kStar
                                           : DtdContent::Kind::kPlus);
        wrapper->children.push_back(std::move(node));
        node = std::move(wrapper);
      }
    }
    return node;
  }

  // Called after '('. group := cp ((',' cp)* | ('|' cp)*) ')'
  StatusOr<std::unique_ptr<DtdContent>> ParseGroup() {
    std::vector<std::unique_ptr<DtdContent>> parts;
    CFGTAG_ASSIGN_OR_RETURN(auto first, ParseCp());
    parts.push_back(std::move(first));
    SkipWs();
    char sep = 0;
    while (pos_ < s_.size() && (s_[pos_] == ',' || s_[pos_] == '|')) {
      if (sep == 0) {
        sep = s_[pos_];
      } else if (s_[pos_] != sep) {
        return InvalidArgumentError(
            "mixed ',' and '|' at one level of a content model");
      }
      ++pos_;
      CFGTAG_ASSIGN_OR_RETURN(auto next, ParseCp());
      parts.push_back(std::move(next));
      SkipWs();
    }
    if (!Consume(")")) {
      return InvalidArgumentError("missing ')' in content model");
    }
    if (parts.size() == 1) return std::move(parts[0]);
    auto group = MakeNode(sep == '|' ? DtdContent::Kind::kChoice
                                     : DtdContent::Kind::kSequence);
    group->children = std::move(parts);
    return group;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// Lowers DTD content models into grammar productions.
class Lowerer {
 public:
  Lowerer(const Dtd& dtd, Grammar* g) : dtd_(dtd), g_(g) {}

  Status Run(const std::string& root) {
    const DtdElement* root_elem = dtd_.Find(root);
    if (root_elem == nullptr) {
      return NotFoundError("root element '" + root + "' not declared in DTD");
    }
    CFGTAG_ASSIGN_OR_RETURN(pcdata_token_, g_->AddToken("PCDATA", "[^<>]+"));
    CFGTAG_RETURN_IF_ERROR(LowerElement(*root_elem).status());
    g_->SetStart(g_->FindNonterminal(NtName(root)));
    return Status::Ok();
  }

 private:
  static std::string NtName(const std::string& element) {
    return "elem_" + element;
  }

  // Returns the nonterminal id for an element, lowering it on first use.
  StatusOr<int32_t> LowerElement(const DtdElement& elem) {
    const std::string nt_name = NtName(elem.name);
    const int32_t existing = g_->FindNonterminal(nt_name);
    if (existing >= 0) return existing;
    const int32_t nt = g_->AddNonterminal(nt_name);

    CFGTAG_ASSIGN_OR_RETURN(int32_t open,
                            g_->AddLiteralToken("<" + elem.name + ">"));
    CFGTAG_ASSIGN_OR_RETURN(int32_t close,
                            g_->AddLiteralToken("</" + elem.name + ">"));

    std::vector<Symbol> rhs;
    rhs.push_back(Symbol::Terminal(open));
    CFGTAG_RETURN_IF_ERROR(
        LowerContent(*elem.content, elem.name, &rhs));
    rhs.push_back(Symbol::Terminal(close));
    g_->AddProduction(nt, std::move(rhs));
    return nt;
  }

  // Appends the symbols for `content` to `rhs`, creating helper
  // nonterminals for choice/repetition.
  Status LowerContent(const DtdContent& content, const std::string& scope,
                      std::vector<Symbol>* rhs) {
    switch (content.kind) {
      case DtdContent::Kind::kEmpty:
        return Status::Ok();
      case DtdContent::Kind::kPcdata:
        rhs->push_back(Symbol::Terminal(pcdata_token_));
        return Status::Ok();
      case DtdContent::Kind::kElementRef: {
        const DtdElement* elem = dtd_.Find(content.name);
        if (elem == nullptr) {
          return NotFoundError("element '" + content.name +
                               "' referenced but not declared");
        }
        CFGTAG_ASSIGN_OR_RETURN(int32_t nt, LowerElement(*elem));
        rhs->push_back(Symbol::Nonterminal(nt));
        return Status::Ok();
      }
      case DtdContent::Kind::kSequence:
        for (const auto& child : content.children) {
          CFGTAG_RETURN_IF_ERROR(LowerContent(*child, scope, rhs));
        }
        return Status::Ok();
      case DtdContent::Kind::kChoice: {
        const int32_t nt = FreshNt(scope + "_choice");
        for (const auto& child : content.children) {
          std::vector<Symbol> alt;
          CFGTAG_RETURN_IF_ERROR(LowerContent(*child, scope, &alt));
          g_->AddProduction(nt, std::move(alt));
        }
        rhs->push_back(Symbol::Nonterminal(nt));
        return Status::Ok();
      }
      case DtdContent::Kind::kOptional: {
        const int32_t nt = FreshNt(scope + "_opt");
        g_->AddProduction(nt, {});
        std::vector<Symbol> alt;
        CFGTAG_RETURN_IF_ERROR(LowerContent(*content.children[0], scope, &alt));
        g_->AddProduction(nt, std::move(alt));
        rhs->push_back(Symbol::Nonterminal(nt));
        return Status::Ok();
      }
      case DtdContent::Kind::kStar:
      case DtdContent::Kind::kPlus: {
        // rep: eps | item rep   — and Plus emits one mandatory item first.
        const int32_t rep = FreshNt(scope + "_rep");
        g_->AddProduction(rep, {});
        std::vector<Symbol> again;
        CFGTAG_RETURN_IF_ERROR(
            LowerContent(*content.children[0], scope, &again));
        again.push_back(Symbol::Nonterminal(rep));
        g_->AddProduction(rep, std::move(again));
        if (content.kind == DtdContent::Kind::kPlus) {
          CFGTAG_RETURN_IF_ERROR(
              LowerContent(*content.children[0], scope, rhs));
        }
        rhs->push_back(Symbol::Nonterminal(rep));
        return Status::Ok();
      }
    }
    return InternalError("unhandled DTD content kind");
  }

  int32_t FreshNt(const std::string& base) {
    std::string name = base;
    int suffix = 0;
    while (g_->FindNonterminal(name) >= 0) {
      name = base + std::to_string(++suffix);
    }
    return g_->AddNonterminal(name);
  }

  const Dtd& dtd_;
  Grammar* g_;
  int32_t pcdata_token_ = -1;
};

}  // namespace

const DtdElement* Dtd::Find(const std::string& name) const {
  for (const DtdElement& e : elements) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

StatusOr<Dtd> ParseDtd(const std::string& text) {
  return DtdParser(text).Parse();
}

StatusOr<Grammar> DtdToGrammar(const Dtd& dtd,
                               const std::string& root_element) {
  Grammar g;
  Lowerer lower(dtd, &g);
  CFGTAG_RETURN_IF_ERROR(lower.Run(root_element));
  CFGTAG_RETURN_IF_ERROR(g.Validate());
  return g;
}

}  // namespace cfgtag::grammar
