#ifndef CFGTAG_HWGEN_ENCODER_GEN_H_
#define CFGTAG_HWGEN_ENCODER_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "rtl/netlist.h"

namespace cfgtag::hwgen {

struct EncoderPorts {
  rtl::NodeId valid = rtl::kInvalidNode;     // any input asserted
  std::vector<rtl::NodeId> index_bits;       // LSB first
  int latency = 0;                           // pipeline stages added
};

// Token-index encoders (paper §3.4). `inputs[i]` is the (registered) match
// wire of the token assigned to index i; the reported index is the binary
// position of the asserted input. When several inputs assert at once the
// output is the bitwise OR of their indices — which the eq. 5 priority
// assignment (below) turns into "the highest-priority index wins".
class EncoderGenerator {
 public:
  // The pipelined binary OR-tree encoder of eqs. 1–4: index bit k collects
  // the odd nodes of tree level k. Built as a merge tree that carries
  // (any, index-so-far) pairs with a register after every 2-input merge, so
  // there is exactly one gate level between registers and the latency is
  // ceil(log2(n)) cycles.
  static EncoderPorts BuildPipelined(rtl::Netlist* netlist,
                                     const std::vector<rtl::NodeId>& inputs,
                                     const std::string& prefix);

  // The naive encoder the paper warns about (§3.4: "an encoder with CASE
  // statements does not translate efficiently ... almost always the
  // critical path"): a priority chain of 2:1 muxes, exactly what a VHDL
  // if/elsif (CASE) cascade synthesizes to. One output register (latency
  // 1), but the combinational depth grows *linearly* with the input count,
  // so it dominates the clock for large token sets — the encoder-ablation
  // baseline. On simultaneous inputs the highest index wins.
  static EncoderPorts BuildNaive(rtl::Netlist* netlist,
                                 const std::vector<rtl::NodeId>& inputs,
                                 const std::string& prefix);
};

// Assigns encoder leaf indices to tokens such that tokens that can match
// simultaneously still encode correctly (paper eq. 5): within each
// `priority_groups` entry (token ids in ascending priority), indices are
// nested bit masks, so the OR of any subset equals the index of its
// highest-priority member. Tokens outside any group get the remaining
// index values. Fails if a group needs more bits than `num_index_bits`
// provides or if tokens do not fit in 2^num_index_bits indices.
//
// Returns a vector of size 2^num_index_bits mapping leaf index -> token id
// (-1 for unused leaves).
StatusOr<std::vector<int32_t>> AssignPriorityIndices(
    size_t num_tokens, const std::vector<std::vector<int32_t>>& priority_groups,
    int num_index_bits);

}  // namespace cfgtag::hwgen

#endif  // CFGTAG_HWGEN_ENCODER_GEN_H_
