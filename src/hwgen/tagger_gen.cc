#include "hwgen/tagger_gen.h"

#include <cassert>
#include <memory>

#include "hwgen/decoder_gen.h"
#include "hwgen/tokenizer_gen.h"
#include "obs/trace.h"
#include "regex/position_automaton.h"

namespace cfgtag::hwgen {

namespace {

// Generates the W-lane datapath. W == 1 is exactly the paper's design; for
// W > 1 (paper §5.2 future work: "scaling the design to process 32-bits or
// 64-bits per clock cycle") the state registers advance W bytes per cycle
// through a combinational ladder of per-lane transition stages, and token
// matches are reported per lane. Lanes 0..W-2 compute their Fig. 7
// look-ahead against the next lane of the same cycle; the last lane's
// look-ahead byte arrives with the *next* cycle, so its match pulse is
// computed from the state registers one cycle later (for W == 1 that is
// the only lane, which reproduces the single-byte pipeline exactly).
StatusOr<GeneratedTagger> GenerateLanes(const grammar::Grammar& g,
                                        const grammar::Analysis& analysis,
                                        const HwOptions& opt) {
  const int lanes = opt.bytes_per_cycle;
  GeneratedTagger out;
  rtl::Netlist& nl = out.netlist;
  const size_t num_tokens = g.NumTokens();
  out.num_tokens = num_tokens;
  out.lanes = lanes;

  for (int k = 0; k < lanes; ++k) {
    for (int b = 0; b < 8; ++b) {
      const std::string name =
          lanes == 1 ? "d" + std::to_string(b)
                     : "l" + std::to_string(k) + "_d" + std::to_string(b);
      out.data_in.push_back(nl.AddInput(name));
    }
  }

  // Token automata and the class universe (identical for every lane).
  std::vector<regex::PositionAutomaton> automata;
  automata.reserve(num_tokens);
  std::vector<regex::CharClass> classes;
  classes.push_back(opt.tagger.delimiters);
  for (const grammar::TokenDef& def : g.tokens()) {
    automata.push_back(regex::PositionAutomaton::Build(*def.regex));
    out.pattern_bytes += automata.back().NumPositions();
    for (const regex::CharClass& cls : automata.back().positions) {
      classes.push_back(cls);
    }
  }

  // One decoder bank per lane.
  std::vector<std::unique_ptr<DecoderGenerator>> decoder(lanes);
  for (int k = 0; k < lanes; ++k) {
    std::vector<rtl::NodeId> slice(out.data_in.begin() + k * 8,
                                   out.data_in.begin() + (k + 1) * 8);
    decoder[k] = std::make_unique<DecoderGenerator>(
        &nl, slice, classes, opt.decoder_replication,
        opt.replication_threshold);
    assert(decoder[k]->depth() == decoder[0]->depth() &&
           "lanes share the class universe, so depths must agree");
  }
  const int depth = decoder[0]->depth();
  const bool no_delims = opt.tagger.delimiters.Empty();
  auto delim_at = [&](int k) {
    return no_delims ? nl.Const0()
                     : decoder[k]->GetDecoded(opt.tagger.delimiters);
  };

  TokenizerGenerator tokgen(&nl);
  std::vector<TokenizerPorts> ports(num_tokens);
  for (size_t t = 0; t < num_tokens; ++t) {
    ports[t] = tokgen.Allocate(automata[t], "t" + std::to_string(t));
  }

  // The last lane's (delayed) match pulses: computed from the state
  // registers with look-ahead against lane 0's current decode. These are
  // also the pulses the syntactic wiring feeds into lane 0's arms.
  std::vector<rtl::NodeId> pulse_last(num_tokens);
  for (size_t t = 0; t < num_tokens; ++t) {
    pulse_last[t] = tokgen.MatchPulse(
        automata[t], ports[t].state_regs, decoder[0].get(),
        opt.tagger.longest_match, "pulse_t" + std::to_string(t));
  }

  const tagger::ArmMode mode = opt.tagger.EffectiveArmMode();

  rtl::ScopedNetlistScope syntax_scope(&nl, "syntax");

  // Start-of-stream pulse, aligned with byte 0 reaching lane 0's decoder.
  rtl::NodeId start_pulse = rtl::kInvalidNode;
  if (mode != tagger::ArmMode::kScan) {
    const rtl::NodeId boot =
        nl.Reg(nl.Const0(), rtl::kInvalidNode, /*init=*/true, "boot");
    start_pulse = nl.DelayLine(boot, depth);
    nl.SetName(start_pulse, "start_pulse");
  }

  // Resync mode (§5.2 error recovery): start tokens also arm at every byte
  // that follows a delimiter. Lane 0's "previous byte" is the last lane of
  // the previous cycle, held in a register.
  rtl::NodeId prev_cycle_delim = rtl::kInvalidNode;
  if (mode == tagger::ArmMode::kResync && !no_delims) {
    prev_cycle_delim =
        nl.Reg(delim_at(lanes - 1), rtl::kInvalidNode, false, "delim_prev");
  }
  // Start-arm term for lane k (kInvalidNode when none applies).
  auto start_term_for_lane = [&](int k) -> rtl::NodeId {
    switch (mode) {
      case tagger::ArmMode::kScan:
        return nl.Const1();
      case tagger::ArmMode::kAnchored:
        return k == 0 ? start_pulse : rtl::kInvalidNode;
      case tagger::ArmMode::kResync: {
        if (no_delims) return k == 0 ? start_pulse : rtl::kInvalidNode;
        const rtl::NodeId boundary =
            k == 0 ? prev_cycle_delim : delim_at(k - 1);
        return k == 0 ? nl.Or2(start_pulse, boundary) : boundary;
      }
    }
    return rtl::kInvalidNode;
  };

  std::vector<uint8_t> is_start(num_tokens, 0);
  for (int32_t s : analysis.start_tokens) is_start[s] = 1;

  // armed[t]: the arm for the byte the current lane consumes (Fig. 11
  // syntactic control flow, per lane).
  std::vector<rtl::NodeId> armed(num_tokens);
  for (size_t t = 0; t < num_tokens; ++t) {
    std::vector<rtl::NodeId> terms;
    terms.push_back(ports[t].arm_held);
    for (size_t u = 0; u < num_tokens; ++u) {
      if (analysis.follow_tok[u].count(static_cast<int32_t>(t)) > 0) {
        terms.push_back(pulse_last[u]);
      }
    }
    if (is_start[t]) {
      const rtl::NodeId st = start_term_for_lane(0);
      if (st != rtl::kInvalidNode) terms.push_back(st);
    }
    armed[t] = nl.Or(std::move(terms));
    nl.SetName(armed[t], "inject_t" + std::to_string(t));
  }

  out.match_regs.assign(static_cast<size_t>(lanes) * num_tokens,
                        rtl::kInvalidNode);
  out.lane_match_latency.assign(lanes, depth);
  out.lane_match_latency[lanes - 1] = depth + 1;

  // Per-token ladder state (starts at the registers).
  std::vector<std::vector<rtl::NodeId>> state(num_tokens);
  for (size_t t = 0; t < num_tokens; ++t) state[t] = ports[t].state_regs;

  for (int k = 0; k < lanes; ++k) {
    // Advance every token one byte.
    for (size_t t = 0; t < num_tokens; ++t) {
      const rtl::NodeId inject_gated =
          no_delims ? armed[t] : nl.AndNot(armed[t], delim_at(k));
      state[t] =
          tokgen.StepLane(automata[t], state[t], decoder[k].get(),
                          inject_gated);
    }
    if (k < lanes - 1) {
      // Same-cycle match pulses (look-ahead = next lane) and the armed
      // ladder for the next lane: new arms from this lane's matches, plus
      // surviving arms when this lane's byte was a delimiter.
      std::vector<rtl::NodeId> pulse_k(num_tokens);
      for (size_t t = 0; t < num_tokens; ++t) {
        pulse_k[t] = tokgen.MatchPulse(
            automata[t], state[t], decoder[k + 1].get(),
            opt.tagger.longest_match,
            "pulse_l" + std::to_string(k) + "_t" + std::to_string(t));
        const std::string match_name =
            "match_l" + std::to_string(k) + "_t" + std::to_string(t);
        const rtl::NodeId match_reg =
            nl.Reg(pulse_k[t], rtl::kInvalidNode, false, match_name);
        out.match_regs[static_cast<size_t>(k) * num_tokens + t] = match_reg;
        nl.MarkOutput(match_reg, match_name);
      }
      std::vector<rtl::NodeId> next_armed(num_tokens);
      for (size_t t = 0; t < num_tokens; ++t) {
        std::vector<rtl::NodeId> terms;
        if (!no_delims) terms.push_back(nl.And({armed[t], delim_at(k)}));
        for (size_t u = 0; u < num_tokens; ++u) {
          if (analysis.follow_tok[u].count(static_cast<int32_t>(t)) > 0) {
            terms.push_back(pulse_k[u]);
          }
        }
        if (is_start[t]) {
          const rtl::NodeId st = start_term_for_lane(k + 1);
          if (st != rtl::kInvalidNode) terms.push_back(st);
        }
        next_armed[t] = nl.Or(std::move(terms));
      }
      armed = std::move(next_armed);
    } else {
      // Close the cycle: commit the ladder into the state registers, hold
      // arms across a trailing delimiter, register the delayed pulses.
      for (size_t t = 0; t < num_tokens; ++t) {
        for (size_t q = 0; q < automata[t].NumPositions(); ++q) {
          nl.SetRegD(ports[t].state_regs[q], state[t][q]);
        }
        nl.SetRegD(ports[t].arm_held,
                   no_delims ? nl.Const0()
                             : nl.And({armed[t], delim_at(k)}));
        const std::string match_name =
            lanes == 1 ? "match_t" + std::to_string(t)
                       : "match_l" + std::to_string(k) + "_t" +
                             std::to_string(t);
        const rtl::NodeId match_reg =
            nl.Reg(pulse_last[t], rtl::kInvalidNode, false, match_name);
        out.match_regs[static_cast<size_t>(k) * num_tokens + t] = match_reg;
        nl.MarkOutput(match_reg, match_name);
      }
    }
  }
  out.match_latency = out.lane_match_latency[lanes - 1];

  nl.SetScope("encoder");
  // Index encoder over the registered match bits (single-lane only).
  if (opt.emit_index_encoder && lanes == 1) {
    if (opt.priority_groups.empty()) {
      out.leaf_token.resize(num_tokens);
      for (size_t t = 0; t < num_tokens; ++t) {
        out.leaf_token[t] = static_cast<int32_t>(t);
      }
    } else {
      int bits = 1;
      while ((static_cast<size_t>(1) << bits) < num_tokens) ++bits;
      Status last_error = InternalError("unreachable");
      bool assigned = false;
      for (; bits <= 16 && !assigned; ++bits) {
        auto leaves_or =
            AssignPriorityIndices(num_tokens, opt.priority_groups, bits);
        if (leaves_or.ok()) {
          out.leaf_token = std::move(leaves_or).value();
          assigned = true;
        } else {
          last_error = leaves_or.status();
        }
      }
      if (!assigned) return last_error;
      while (out.leaf_token.size() > 1 && out.leaf_token.back() == -1) {
        out.leaf_token.pop_back();
      }
    }
    std::vector<rtl::NodeId> leaves(out.leaf_token.size());
    for (size_t i = 0; i < out.leaf_token.size(); ++i) {
      leaves[i] = out.leaf_token[i] < 0
                      ? nl.Const0()
                      : out.match_regs[out.leaf_token[i]];
    }
    const EncoderPorts enc =
        opt.pipelined_encoder
            ? EncoderGenerator::BuildPipelined(&nl, leaves, "enc")
            : EncoderGenerator::BuildNaive(&nl, leaves, "enc");
    out.index_bits = enc.index_bits;
    out.index_valid = enc.valid;
    out.index_latency = out.match_latency + enc.latency;
    nl.MarkOutput(enc.valid, "index_valid");
    for (size_t k = 0; k < enc.index_bits.size(); ++k) {
      nl.MarkOutput(enc.index_bits[k], "index" + std::to_string(k));
    }
  }

  CFGTAG_RETURN_IF_ERROR(nl.Validate());
  return out;
}

}  // namespace

StatusOr<GeneratedTagger> TaggerGenerator::Generate(
    const grammar::Grammar& grammar, const HwOptions& options) {
  CFGTAG_RETURN_IF_ERROR(grammar.Validate().WithContext("grammar validate"));
  auto analysis = [&] {
    obs::ScopedSpan span("grammar.Analyze");
    return grammar::Analyze(grammar);
  }();
  if (!analysis.ok()) return analysis.status().WithContext("analysis");
  if (options.bytes_per_cycle != 1 && options.bytes_per_cycle != 2 &&
      options.bytes_per_cycle != 4) {
    return InvalidArgumentError("bytes_per_cycle must be 1, 2 or 4");
  }
  obs::ScopedSpan span("hwgen.GenerateLanes");
  return GenerateLanes(grammar, *analysis, options);
}

}  // namespace cfgtag::hwgen
