#include "hwgen/decoder_gen.h"

#include <algorithm>
#include <cassert>

#include "common/strings.h"

namespace cfgtag::hwgen {

rtl::NodeId DecoderGenerator::CharReg(unsigned char c) {
  auto it = char_regs_.find(c);
  if (it != char_regs_.end()) return it->second;
  // Fig. 4: an 8-input AND with inversions where the byte has 0 bits,
  // pipelined as two 4-input ANDs feeding a 2-input AND (one LUT level per
  // register stage).
  std::vector<rtl::NodeId> half[2];
  for (int bit = 0; bit < 8; ++bit) {
    const rtl::NodeId wire = data_bits_[bit];
    half[bit / 4].push_back((c >> bit) & 1 ? wire : netlist_->Not(wire));
  }
  const rtl::NodeId lo = netlist_->Reg(netlist_->And(std::move(half[0])));
  const rtl::NodeId hi = netlist_->Reg(netlist_->And(std::move(half[1])));
  const rtl::NodeId dec = netlist_->Reg(netlist_->And2(lo, hi));
  netlist_->SetName(dec, "dec_" + ByteName(c));
  char_regs_.emplace(c, dec);
  return dec;
}

DecoderGenerator::DecoderGenerator(
    rtl::Netlist* netlist, const std::vector<rtl::NodeId>& data_bits,
    const std::vector<regex::CharClass>& classes, bool replicate,
    uint32_t replication_threshold)
    : netlist_(netlist),
      data_bits_(data_bits),
      replicate_(replicate),
      replication_threshold_(replication_threshold) {
  rtl::ScopedNetlistScope scope(netlist_, "decoder");
  // Build every class's pre-final signal and record its pipeline depth
  // (char decoders are depth 2).
  struct Pending {
    regex::CharClass cls;
    rtl::NodeId node;
    int depth;
  };
  std::vector<Pending> pending;
  int max_depth = 2;
  for (const regex::CharClass& cls : classes) {
    if (cls.Empty()) continue;
    bool seen = false;
    for (const Pending& p : pending) {
      if (p.cls == cls) {
        seen = true;
        break;
      }
    }
    if (seen) continue;

    rtl::NodeId node;
    int depth = 2;
    if (cls.Count() == 1) {
      node = CharReg(cls.Members()[0]);
    } else if (cls.Count() > 128) {
      // Wide class: decode the complement and invert (e.g. [^<>]); the NOT
      // folds into the final OR level's LUT.
      std::vector<rtl::NodeId> terms;
      for (unsigned char c : cls.Complement().Members()) {
        terms.push_back(CharReg(c));
      }
      auto [or_node, or_depth] = netlist_->PipelinedOr(std::move(terms));
      // PipelinedOr registers its last level, so invert *after* it and
      // absorb the inversion in the final class register's LUT.
      node = netlist_->Not(or_node);
      depth += or_depth;
    } else {
      std::vector<rtl::NodeId> terms;
      for (unsigned char c : cls.Members()) terms.push_back(CharReg(c));
      auto [or_node, or_depth] = netlist_->PipelinedOr(std::move(terms));
      node = or_node;
      depth += or_depth;
    }
    max_depth = std::max(max_depth, depth);
    pending.push_back(Pending{cls, node, depth});
  }

  // Pad every class to the common depth, then one final register — the
  // high-fan-out decoded wire of the paper's timing analysis.
  depth_ = max_depth + 1;
  for (Pending& p : pending) {
    const rtl::NodeId padded =
        netlist_->DelayLine(p.node, max_depth - p.depth);
    ClassState state;
    state.prefinal = padded;
    state.replicas.push_back(Replica{
        netlist_->Reg(padded, rtl::kInvalidNode, false,
                      "decreg_" + p.cls.ToString()),
        0});
    class_replicas_.emplace(p.cls, std::move(state));
  }
}

rtl::NodeId DecoderGenerator::GetDecoded(const regex::CharClass& cls) {
  auto it = class_replicas_.find(cls);
  if (it == class_replicas_.end()) {
    // Callers must pre-declare classes; failing loudly here would need a
    // Status return on a hot builder path, so make it a programming error.
    assert(false && "class not pre-declared to DecoderGenerator");
    return netlist_->Const0();
  }
  ClassState& state = it->second;
  Replica* r = &state.replicas.back();
  if (replicate_ && r->uses >= replication_threshold_) {
    rtl::ScopedNetlistScope scope(netlist_, "decoder");
    state.replicas.push_back(Replica{
        netlist_->Reg(state.prefinal, rtl::kInvalidNode, false,
                      "decreg_" + cls.ToString() + "_r" +
                          std::to_string(state.replicas.size())),
        0});
    r = &state.replicas.back();
  }
  r->uses++;
  return r->reg;
}

size_t DecoderGenerator::NumReplicaRegs() const {
  size_t n = 0;
  for (const auto& [cls, state] : class_replicas_) n += state.replicas.size();
  return n;
}

}  // namespace cfgtag::hwgen
