#include "hwgen/encoder_gen.h"

#include <algorithm>

namespace cfgtag::hwgen {

namespace {

// One node of the merge tree: match-any plus the index bits accumulated so
// far (bit k decided at tree level k).
struct TreeNode {
  rtl::NodeId any;
  std::vector<rtl::NodeId> idx;  // LSB first
};

}  // namespace

EncoderPorts EncoderGenerator::BuildPipelined(
    rtl::Netlist* netlist, const std::vector<rtl::NodeId>& inputs,
    const std::string& prefix) {
  EncoderPorts ports;
  if (inputs.empty()) {
    ports.valid = netlist->Const0();
    return ports;
  }

  std::vector<TreeNode> level;
  level.reserve(inputs.size());
  for (rtl::NodeId in : inputs) level.push_back(TreeNode{in, {}});

  int depth = 0;
  if (level.size() == 1) {
    // Degenerate tree: still register the output ("registers at the output
    // encoded address bits", §3.4) so the latency contract is uniform.
    level[0].any = netlist->Reg(level[0].any);
    depth = 1;
  }
  while (level.size() > 1) {
    std::vector<TreeNode> next;
    next.reserve((level.size() + 1) / 2);
    for (size_t j = 0; j + 1 < level.size(); j += 2) {
      TreeNode& l = level[j];
      TreeNode& r = level[j + 1];
      TreeNode merged;
      merged.any = netlist->Reg(netlist->Or2(l.any, r.any));
      // Carried index bits OR together (one asserted input assumption /
      // eq. 5 priority masks make the OR correct).
      for (size_t k = 0; k < l.idx.size(); ++k) {
        merged.idx.push_back(netlist->Reg(netlist->Or2(l.idx[k], r.idx[k])));
      }
      // The new bit for this level: "the odd node is asserted" (eqs. 1-4).
      merged.idx.push_back(netlist->Reg(r.any));
      next.push_back(std::move(merged));
    }
    if (level.size() % 2 == 1) {
      // Odd node promotes one level with a 0 bit appended.
      TreeNode& o = level.back();
      TreeNode promoted;
      promoted.any = netlist->Reg(o.any);
      for (rtl::NodeId b : o.idx) promoted.idx.push_back(netlist->Reg(b));
      promoted.idx.push_back(netlist->Const0());
      next.push_back(std::move(promoted));
    }
    level = std::move(next);
    ++depth;
  }

  ports.valid = level[0].any;
  ports.index_bits = std::move(level[0].idx);
  ports.latency = depth;
  netlist->SetName(ports.valid, prefix + "_valid");
  for (size_t k = 0; k < ports.index_bits.size(); ++k) {
    if (ports.index_bits[k] != netlist->Const0()) {
      netlist->SetName(ports.index_bits[k],
                       prefix + "_idx" + std::to_string(k));
    }
  }
  return ports;
}

EncoderPorts EncoderGenerator::BuildNaive(rtl::Netlist* netlist,
                                          const std::vector<rtl::NodeId>& inputs,
                                          const std::string& prefix) {
  EncoderPorts ports;
  if (inputs.empty()) {
    ports.valid = netlist->Const0();
    return ports;
  }
  size_t bits = 0;
  while ((static_cast<size_t>(1) << bits) < inputs.size()) ++bits;

  // Priority cascade, lowest index first: each stage muxes its own index
  // over the accumulated result when its input asserts.
  std::vector<rtl::NodeId> idx(bits, netlist->Const0());
  rtl::NodeId valid = netlist->Const0();
  for (size_t i = 0; i < inputs.size(); ++i) {
    const rtl::NodeId sel = inputs[i];
    const rtl::NodeId not_sel = netlist->Not(sel);
    for (size_t k = 0; k < bits; ++k) {
      const bool bit_set = (i >> k) & 1;
      // idx_k' = sel ? bit : idx_k  ==  (sel & bit) | (!sel & idx_k)
      idx[k] = netlist->Or2(bit_set ? sel : netlist->Const0(),
                            netlist->And2(not_sel, idx[k]));
    }
    valid = netlist->Or2(valid, sel);
  }
  for (size_t k = 0; k < bits; ++k) {
    const rtl::NodeId bit = netlist->Reg(idx[k]);
    netlist->SetName(bit, prefix + "_idx" + std::to_string(k));
    ports.index_bits.push_back(bit);
  }
  ports.valid = netlist->Reg(valid);
  netlist->SetName(ports.valid, prefix + "_valid");
  ports.latency = 1;
  return ports;
}

StatusOr<std::vector<int32_t>> AssignPriorityIndices(
    size_t num_tokens,
    const std::vector<std::vector<int32_t>>& priority_groups,
    int num_index_bits) {
  if (num_index_bits <= 0 || num_index_bits > 30) {
    return InvalidArgumentError("num_index_bits out of range");
  }
  const size_t num_leaves = static_cast<size_t>(1) << num_index_bits;
  if (num_tokens > num_leaves) {
    return InvalidArgumentError("too many tokens for the index width");
  }

  std::vector<int32_t> leaf_token(num_leaves, -1);
  std::vector<uint8_t> token_placed(num_tokens, 0);
  std::vector<uint8_t> bit_used(num_index_bits, 0);
  bool zero_used = false;

  for (const std::vector<int32_t>& group : priority_groups) {
    if (group.empty()) continue;
    for (int32_t t : group) {
      if (t < 0 || static_cast<size_t>(t) >= num_tokens) {
        return InvalidArgumentError("priority group references bad token id");
      }
      if (token_placed[t]) {
        return InvalidArgumentError("token appears in two priority groups");
      }
    }
    // A group of size k needs a chain of k nested masks. The all-zero mask
    // can seed one chain (if leaf 0 is free); every further mask consumes a
    // dedicated fresh bit.
    size_t need_bits = group.size() - (zero_used || leaf_token[0] != -1 ? 0 : 1);
    std::vector<int> bits;
    for (int b = 0; b < num_index_bits && bits.size() < need_bits; ++b) {
      if (!bit_used[b]) bits.push_back(b);
    }
    if (bits.size() < need_bits) {
      return InvalidArgumentError(
          "not enough index bits for a priority group of size " +
          std::to_string(group.size()));
    }
    uint32_t mask = 0;
    size_t bi = 0;
    for (size_t j = 0; j < group.size(); ++j) {
      if (j > 0 || zero_used || leaf_token[0] != -1) {
        mask |= 1u << bits[bi];
        bit_used[bits[bi]] = 1;
        ++bi;
      } else {
        zero_used = true;  // lowest priority sits at index 0
      }
      if (leaf_token[mask] != -1) {
        return InternalError("priority mask collision");
      }
      leaf_token[mask] = group[j];
      token_placed[group[j]] = 1;
    }
  }

  // Remaining tokens take the remaining leaves in order.
  size_t next_leaf = 0;
  for (size_t t = 0; t < num_tokens; ++t) {
    if (token_placed[t]) continue;
    while (next_leaf < num_leaves && leaf_token[next_leaf] != -1) ++next_leaf;
    if (next_leaf >= num_leaves) {
      return InternalError("ran out of encoder leaves");
    }
    leaf_token[next_leaf] = static_cast<int32_t>(t);
    token_placed[t] = 1;
  }
  return leaf_token;
}

}  // namespace cfgtag::hwgen
