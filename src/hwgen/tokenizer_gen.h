#ifndef CFGTAG_HWGEN_TOKENIZER_GEN_H_
#define CFGTAG_HWGEN_TOKENIZER_GEN_H_

#include <string>
#include <vector>

#include "hwgen/decoder_gen.h"
#include "regex/position_automaton.h"
#include "rtl/netlist.h"

namespace cfgtag::hwgen {

// Hardware handles of one token's detection chain.
struct TokenizerPorts {
  // One pipeline register per Glushkov position — the "one register per
  // pattern byte" structure of paper §3.2 (string detectors are chains of
  // pipelined AND gates; +/*/? fold into the follow edges). For a W-byte
  // datapath these registers capture the state after the *last* lane; the
  // intermediate lanes are combinational ladder stages.
  std::vector<rtl::NodeId> state_regs;
  // Arm-hold register: keeps a pending arm alive across delimiter bytes
  // (the Fig. 6 first-register stall). D is patched by the syntax wiring.
  rtl::NodeId arm_held = rtl::kInvalidNode;
};

// Emits tokenizer building blocks into a netlist. The top-level generator
// (TaggerGenerator) owns lane sequencing and the syntactic arm wiring;
// this class provides the per-token primitives:
//   * Allocate()   — the state/arm registers,
//   * StepLane()   — one byte's worth of Glushkov transitions, as
//                    combinational logic from arbitrary state bits,
//   * MatchPulse() — accept-OR plus the Fig. 7 longest-match look-ahead
//                    against the decoder of the *next* byte.
class TokenizerGenerator {
 public:
  explicit TokenizerGenerator(rtl::Netlist* netlist);

  TokenizerPorts Allocate(const regex::PositionAutomaton& pa,
                          const std::string& token_name);

  // Combinational state after consuming one byte decoded by `lane_decoder`,
  // starting from `prev` (register outputs or an earlier ladder stage).
  // `inject_start` arms the first positions (already gated by NOT-delim).
  std::vector<rtl::NodeId> StepLane(const regex::PositionAutomaton& pa,
                                    const std::vector<rtl::NodeId>& prev,
                                    DecoderGenerator* lane_decoder,
                                    rtl::NodeId inject_start);

  // Match signal for the state in `state`; when `longest_match` is set the
  // detection is suppressed while an accepting position can consume the
  // byte decoded by `next_decoder` (Fig. 7).
  rtl::NodeId MatchPulse(const regex::PositionAutomaton& pa,
                         const std::vector<rtl::NodeId>& state,
                         DecoderGenerator* next_decoder, bool longest_match,
                         const std::string& name);

 private:
  rtl::Netlist* netlist_;
};

}  // namespace cfgtag::hwgen

#endif  // CFGTAG_HWGEN_TOKENIZER_GEN_H_
