#ifndef CFGTAG_HWGEN_TAGGER_GEN_H_
#define CFGTAG_HWGEN_TAGGER_GEN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "grammar/analysis.h"
#include "grammar/grammar.h"
#include "hwgen/encoder_gen.h"
#include "rtl/netlist.h"
#include "tagger/tag.h"

namespace cfgtag::hwgen {

// Hardware-generation knobs on top of the shared tagging semantics.
struct HwOptions {
  tagger::TaggerOptions tagger;

  // Emit the §3.4 token-index encoder (match bits are always emitted).
  bool emit_index_encoder = true;
  // true: pipelined OR-tree encoder (eqs. 1-4); false: the naive
  // single-stage encoder (ablation baseline).
  bool pipelined_encoder = true;
  // Replicate decoded-character registers once their fan-out exceeds the
  // threshold (§5.2 future-work fix for the routing-delay wall).
  bool decoder_replication = false;
  uint32_t replication_threshold = 64;
  // Bytes consumed per clock (1, 2 or 4; §5.2 future work). Lane k of a
  // cycle carries byte (cycle*W + k).
  int bytes_per_cycle = 1;

  // Tokens that can assert simultaneously, in ascending priority (paper
  // eq. 5). Within a group, encoder indices are nested bit masks so the OR
  // of simultaneous indices equals the highest-priority one. Tokens outside
  // any group keep arbitrary unique indices.
  std::vector<std::vector<int32_t>> priority_groups;
};

// A generated tagger netlist plus everything a testbench needs to drive it.
struct GeneratedTagger {
  rtl::Netlist netlist;

  // 8*W input port bits; bit b of lane k is data_in[k*8 + b] (LSB first).
  std::vector<rtl::NodeId> data_in;

  // match_regs[k*num_tokens + t]: registered match of token t on lane k.
  // For W == 1 this is simply one register per token.
  std::vector<rtl::NodeId> match_regs;
  size_t num_tokens = 0;
  int lanes = 1;

  // Pipeline latency (in cycles) of each lane's match registers: the match
  // register for the byte at stream offset c*W + k, presented before
  // Step(c), is readable after Step(c + lane_match_latency[k]). The last
  // lane runs one cycle behind the others (its look-ahead byte is the next
  // cycle's lane 0).
  std::vector<int> lane_match_latency;

  // Index encoder outputs, if enabled (single-lane designs only; a W-byte
  // datapath reports per-lane match bits and leaves index encoding to the
  // back-end).
  std::vector<rtl::NodeId> index_bits;
  rtl::NodeId index_valid = rtl::kInvalidNode;
  // Encoder leaf -> token id (identity unless priority assignment is used).
  std::vector<int32_t> leaf_token;

  // Latency bookkeeping: the match register for the byte presented before
  // Step(i) is readable after Step(i + match_latency); likewise for the
  // encoder outputs. (Byte j of cycle c on lane k has stream offset
  // c*W + k.)
  int match_latency = 0;
  int index_latency = 0;

  // Grammar-size metric used by Table 1 (total Glushkov positions).
  size_t pattern_bytes = 0;
};

// The paper's automatic hardware generator (§3, Fig. 3): grammar in,
// netlist out. Character decoders and tokenizers come from the token list;
// the syntactic control flow is the terminal Follow-set wiring (Fig. 11);
// matches are reported per token and through the index encoder.
class TaggerGenerator {
 public:
  static StatusOr<GeneratedTagger> Generate(const grammar::Grammar& grammar,
                                            const HwOptions& options);
};

}  // namespace cfgtag::hwgen

#endif  // CFGTAG_HWGEN_TAGGER_GEN_H_
