#ifndef CFGTAG_HWGEN_DECODER_GEN_H_
#define CFGTAG_HWGEN_DECODER_GEN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "regex/char_class.h"
#include "rtl/netlist.h"

namespace cfgtag::hwgen {

// Builds the character-decoder stage of the tagger (paper Fig. 4–5):
//
//   * one 8-input AND decoder per distinct byte value used by any token
//     (inputs inverted per the byte's bit pattern, Fig. 4), pipelined as
//     two 4-input ANDs followed by a 2-input AND,
//   * one pre-decoded wire per distinct character *class* (case-insensitive
//     letters, [a-zA-Z0-9], delimiters, ...): a pipelined OR tree over the
//     member bytes' decoders — or, for classes covering more than half the
//     alphabet, a NOT over the complement's OR (Fig. 5),
//   * delay padding so every decoded class emerges after the same number of
//     register stages (depth()), keeping the whole datapath aligned, and a
//     final per-class register.
//
// There is exactly one gate level between registers — the paper's "fine
// grain pipelined" property — so the decoder never bounds the clock; what
// does is the *fan-out* of the final class registers, which grows linearly
// with grammar size (the paper's §4.3 critical path). GetDecoded()
// optionally replicates that final register (the §5.2 "replicating decoders
// and balancing the fanout" future-work fix) once a replica exceeds
// `replication_threshold` sinks.
class DecoderGenerator {
 public:
  // `netlist` must outlive the generator. `data_bits` are the 8 input-port
  // nets, LSB first. `classes` must list every class GetDecoded() will be
  // asked for (duplicates are fine).
  DecoderGenerator(rtl::Netlist* netlist,
                   const std::vector<rtl::NodeId>& data_bits,
                   const std::vector<regex::CharClass>& classes,
                   bool replicate = false,
                   uint32_t replication_threshold = 64);

  // Register stages from the input port to a decoded class wire.
  int depth() const { return depth_; }

  // The registered decoded wire for a character class. Each call counts one
  // sink; with replication enabled, sinks are spread across replicas.
  rtl::NodeId GetDecoded(const regex::CharClass& cls);

  size_t NumCharDecoders() const { return char_regs_.size(); }
  size_t NumClassDecoders() const { return class_replicas_.size(); }
  size_t NumReplicaRegs() const;

 private:
  struct Replica {
    rtl::NodeId reg;
    uint32_t uses = 0;
  };
  struct ClassState {
    rtl::NodeId prefinal;  // signal one stage before the final register
    std::vector<Replica> replicas;
  };

  // Pipelined per-byte decoder (two stages); memoized.
  rtl::NodeId CharReg(unsigned char c);

  rtl::Netlist* netlist_;
  std::vector<rtl::NodeId> data_bits_;
  bool replicate_;
  uint32_t replication_threshold_;
  int depth_ = 0;
  std::unordered_map<unsigned char, rtl::NodeId> char_regs_;
  std::unordered_map<regex::CharClass, ClassState, regex::CharClassHash>
      class_replicas_;
};

}  // namespace cfgtag::hwgen

#endif  // CFGTAG_HWGEN_DECODER_GEN_H_
