#include "hwgen/tokenizer_gen.h"

namespace cfgtag::hwgen {

TokenizerGenerator::TokenizerGenerator(rtl::Netlist* netlist)
    : netlist_(netlist) {}

TokenizerPorts TokenizerGenerator::Allocate(const regex::PositionAutomaton& pa,
                                            const std::string& token_name) {
  rtl::ScopedNetlistScope scope(netlist_, "tokenizer");
  TokenizerPorts ports;
  ports.state_regs.reserve(pa.NumPositions());
  for (size_t p = 0; p < pa.NumPositions(); ++p) {
    ports.state_regs.push_back(netlist_->RegPlaceholder(
        rtl::kInvalidNode, false,
        "s_" + token_name + "_" + std::to_string(p)));
  }
  ports.arm_held = netlist_->RegPlaceholder(rtl::kInvalidNode, false,
                                            "arm_" + token_name);
  return ports;
}

std::vector<rtl::NodeId> TokenizerGenerator::StepLane(
    const regex::PositionAutomaton& pa, const std::vector<rtl::NodeId>& prev,
    DecoderGenerator* lane_decoder, rtl::NodeId inject_start) {
  rtl::ScopedNetlistScope scope(netlist_, "tokenizer");
  std::vector<uint8_t> is_first(pa.NumPositions(), 0);
  for (uint32_t p : pa.first) is_first[p] = 1;

  std::vector<rtl::NodeId> next(pa.NumPositions());
  for (size_t q = 0; q < pa.NumPositions(); ++q) {
    std::vector<rtl::NodeId> sources;
    if (is_first[q]) sources.push_back(inject_start);
    for (size_t p = 0; p < pa.NumPositions(); ++p) {
      for (uint32_t f : pa.follow[p]) {
        if (f == q) sources.push_back(prev[p]);
      }
    }
    next[q] = netlist_->And({lane_decoder->GetDecoded(pa.positions[q]),
                             netlist_->Or(std::move(sources))});
  }
  return next;
}

rtl::NodeId TokenizerGenerator::MatchPulse(
    const regex::PositionAutomaton& pa, const std::vector<rtl::NodeId>& state,
    DecoderGenerator* next_decoder, bool longest_match,
    const std::string& name) {
  rtl::ScopedNetlistScope scope(netlist_, "tokenizer");
  std::vector<rtl::NodeId> accepting;
  for (size_t p = 0; p < pa.NumPositions(); ++p) {
    if (pa.is_last[p]) accepting.push_back(state[p]);
  }
  rtl::NodeId accept = netlist_->Or(std::move(accepting));

  rtl::NodeId pulse = accept;
  if (longest_match) {
    // Fig. 7: suppress the detection while the accepted run can consume the
    // next byte: some *accepting* live position has a follow edge whose
    // class matches the next byte's decode. Fixed-length tokens get no
    // extend logic (their accepting positions have no follow edges),
    // matching the paper's application of the look-ahead to +/* patterns.
    std::vector<rtl::NodeId> extend_terms;
    for (size_t q = 0; q < pa.NumPositions(); ++q) {
      std::vector<rtl::NodeId> preds;
      for (size_t p = 0; p < pa.NumPositions(); ++p) {
        if (!pa.is_last[p]) continue;
        for (uint32_t f : pa.follow[p]) {
          if (f == q) preds.push_back(state[p]);
        }
      }
      if (preds.empty()) continue;
      extend_terms.push_back(
          netlist_->And({next_decoder->GetDecoded(pa.positions[q]),
                         netlist_->Or(std::move(preds))}));
    }
    if (!extend_terms.empty()) {
      pulse = netlist_->AndNot(accept, netlist_->Or(std::move(extend_terms)));
    }
  }
  if (!name.empty()) netlist_->SetName(pulse, name);
  return pulse;
}

}  // namespace cfgtag::hwgen
