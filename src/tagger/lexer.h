#ifndef CFGTAG_TAGGER_LEXER_H_
#define CFGTAG_TAGGER_LEXER_H_

#include <array>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "grammar/grammar.h"
#include "tagger/tag.h"

namespace cfgtag::tagger {

// A classic context-free lexer (what flex generates): one combined DFA over
// *all* token patterns, maximal munch, earliest-token priority on ties.
// This is the "traditional software" baseline: it has no grammatical
// context, so the same byte sequence always lexes to the same token
// regardless of position — precisely the limitation the paper's
// follow-wired tokenizers remove.
class Lexer {
 public:
  // Builds the combined DFA from the grammar's token list (subset
  // construction over the union of the tokens' automata; each DFA state
  // remembers the highest-priority accepting token).
  static StatusOr<Lexer> Create(const grammar::Grammar* grammar);

  // Greedy tokenization: at each position skip delimiters, take the
  // longest match among all tokens (earliest token id wins ties), emit a
  // tag, continue after it. A byte that starts no token is skipped
  // silently (flex's default ECHO-and-continue, minus the echo).
  std::vector<Tag> Lex(std::string_view input) const;

  // Like Lex, but reports the number of bytes that were skipped because
  // they started no token (a cheap malformedness signal).
  std::vector<Tag> Lex(std::string_view input, uint64_t* skipped_bytes) const;

  size_t NumDfaStates() const { return accept_.size(); }

  const TaggerOptions& options() const { return options_; }

 private:
  Lexer() = default;

  static constexpr int32_t kDead = -1;

  std::vector<std::array<int32_t, 256>> trans_;
  // accept_[state] = token id accepted in this state, or -1.
  std::vector<int32_t> accept_;
  uint32_t start_ = 0;
  TaggerOptions options_;
};

}  // namespace cfgtag::tagger

#endif  // CFGTAG_TAGGER_LEXER_H_
