#include "tagger/lexer.h"

#include <algorithm>
#include <map>

#include "regex/position_automaton.h"

namespace cfgtag::tagger {

StatusOr<Lexer> Lexer::Create(const grammar::Grammar* grammar) {
  CFGTAG_RETURN_IF_ERROR(grammar->Validate());

  // Union automaton over global Glushkov positions.
  std::vector<regex::PositionAutomaton> automata;
  std::vector<size_t> offset = {0};
  for (const grammar::TokenDef& def : grammar->tokens()) {
    automata.push_back(regex::PositionAutomaton::Build(*def.regex));
    offset.push_back(offset.back() + automata.back().NumPositions());
  }
  const size_t total = offset.back();

  struct GlobalPos {
    const regex::CharClass* cls;
    int32_t token;
    bool is_last;
    const std::vector<uint32_t>* follow;  // local ids within the token
    size_t base;                          // global id of local position 0
  };
  std::vector<GlobalPos> pos(total);
  for (size_t t = 0; t < automata.size(); ++t) {
    const regex::PositionAutomaton& pa = automata[t];
    for (size_t p = 0; p < pa.NumPositions(); ++p) {
      GlobalPos& g = pos[offset[t] + p];
      g.cls = &pa.positions[p];
      g.token = static_cast<int32_t>(t);
      g.is_last = pa.is_last[p] != 0;
      g.follow = &pa.follow[p];
      g.base = offset[t];
    }
  }
  // The initial move: all first positions of all tokens.
  std::vector<uint32_t> initial;
  for (size_t t = 0; t < automata.size(); ++t) {
    for (uint32_t p : automata[t].first) {
      initial.push_back(static_cast<uint32_t>(offset[t] + p));
    }
  }
  std::sort(initial.begin(), initial.end());

  Lexer lexer;
  std::map<std::vector<uint32_t>, uint32_t> subset_id;
  std::vector<std::vector<uint32_t>> worklist;

  auto intern = [&](std::vector<uint32_t> set) {
    auto [it, inserted] =
        subset_id.emplace(std::move(set),
                          static_cast<uint32_t>(subset_id.size()));
    if (inserted) {
      worklist.push_back(it->first);
      lexer.trans_.emplace_back();
      lexer.trans_.back().fill(kDead);
      // Earliest accepting token wins (flex tie-break).
      int32_t acc = -1;
      for (uint32_t g : it->first) {
        if (pos[g].is_last && (acc == -1 || pos[g].token < acc)) {
          acc = pos[g].token;
        }
      }
      lexer.accept_.push_back(acc);
    }
    return it->second;
  };

  // State 0: the start state, reached before consuming any byte. Its
  // outgoing transitions inject `initial`.
  lexer.start_ = intern({});  // empty set marks "at token start"
  for (size_t w = 0; w < worklist.size(); ++w) {
    const std::vector<uint32_t> current = worklist[w];
    const uint32_t cur_id = subset_id.at(current);
    const bool is_start = current.empty();
    const std::vector<uint32_t>& sources = is_start ? initial : current;
    for (int c = 0; c < 256; ++c) {
      std::vector<uint32_t> next;
      if (is_start) {
        for (uint32_t g : sources) {
          if (pos[g].cls->Test(static_cast<unsigned char>(c))) {
            next.push_back(g);
          }
        }
      } else {
        for (uint32_t g : sources) {
          for (uint32_t f : *pos[g].follow) {
            const uint32_t gf = static_cast<uint32_t>(pos[g].base + f);
            if (pos[gf].cls->Test(static_cast<unsigned char>(c))) {
              next.push_back(gf);
            }
          }
        }
      }
      if (next.empty()) continue;
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
      lexer.trans_[cur_id][c] = static_cast<int32_t>(intern(std::move(next)));
    }
  }
  return lexer;
}

std::vector<Tag> Lexer::Lex(std::string_view input) const {
  uint64_t skipped = 0;
  return Lex(input, &skipped);
}

std::vector<Tag> Lexer::Lex(std::string_view input,
                            uint64_t* skipped_bytes) const {
  std::vector<Tag> tags;
  *skipped_bytes = 0;
  size_t at = 0;
  while (at < input.size()) {
    const unsigned char c = static_cast<unsigned char>(input[at]);
    if (options_.delimiters.Test(c)) {
      ++at;
      continue;
    }
    // Maximal munch from `at`.
    int32_t state = static_cast<int32_t>(start_);
    int32_t best_token = -1;
    size_t best_len = 0;
    for (size_t i = at; i < input.size(); ++i) {
      state = trans_[state][static_cast<unsigned char>(input[i])];
      if (state == kDead) break;
      if (accept_[state] >= 0) {
        best_token = accept_[state];
        best_len = i - at + 1;
      }
    }
    if (best_token < 0) {
      ++*skipped_bytes;
      ++at;
      continue;
    }
    Tag tag;
    tag.token = best_token;
    tag.end = at + best_len - 1;
    tag.length = static_cast<uint32_t>(best_len);
    tags.push_back(tag);
    at += best_len;
  }
  return tags;
}

}  // namespace cfgtag::tagger
