#ifndef CFGTAG_TAGGER_TAG_H_
#define CFGTAG_TAGGER_TAG_H_

#include <cstdint>
#include <functional>
#include <string>

#include "regex/char_class.h"

namespace cfgtag::tagger {

// One token detection. The hardware reports a token at the cycle its last
// byte is consumed (paper §3.4), so the primary coordinate is the *end*
// offset. `length` is filled by software reference parsers; engines that
// merge overlapping runs (the hardware and its functional model) report
// kUnknownLength.
struct Tag {
  static constexpr uint32_t kUnknownLength = 0;

  int32_t token = -1;   // token id in the tagger's grammar
  uint64_t end = 0;     // byte offset of the last byte of the match
  uint32_t length = kUnknownLength;

  friend bool operator==(const Tag& a, const Tag& b) {
    return a.token == b.token && a.end == b.end;
  }
  friend bool operator<(const Tag& a, const Tag& b) {
    return a.end != b.end ? a.end < b.end : a.token < b.token;
  }
};

// Streaming consumer of tags — the "back-end processor" interface of paper
// §3.5. Returning false stops the scan early.
using TagSink = std::function<bool(const Tag&)>;

// How the grammar's start tokens get armed (§3.3 offers the first two; the
// third implements the §5.2 "error recovery" future work).
enum class ArmMode {
  // Start tokens armed only at stream start: strict parse mode ("if the
  // beginning of the text is known, the starting tokenizers can be enabled
  // once at the beginning of the data").
  kAnchored,
  // Start tokens armed at every byte: scan mode ("look for all sequences
  // of tokens starting at every byte alignment of the data").
  kScan,
  // Start tokens additionally armed at every byte that follows a delimiter
  // (and at stream start): the parser re-synchronizes at token boundaries,
  // so it "continues processing from the point of the error" — and tags
  // streams of back-to-back messages without external framing.
  kResync,
};

// Which software execution engine serves the tagging hot path. All
// implement identical semantics (the differential fuzz and equivalence
// suites enforce tag-for-tag identity); they differ only in speed and
// memory shape.
enum class TaggerBackend {
  // One Glushkov automaton stepped per candidate token (sparse active-set
  // bookkeeping; the reference software model).
  kFunctional,
  // Every token's positions fused into one contiguous bitmap stepped with
  // branch-free word ops over byte-class-compressed masks.
  kFused,
  // The fused engine memoized as a lazily built DFA: reachable machine
  // configurations are interned and each (configuration, byte class)
  // transition is cached with its precomputed tag emissions, so the
  // steady-state step is one table lookup. Unseen transitions take one
  // real fused step; a memory cap flushes the cache RE2-style, and
  // flush-thrash falls back to pure fused execution for the session.
  kLazyDfa,
  // Resolved at compile time: lazy-DFA when the grammar's byte-class x
  // state-word product is small enough for the transition cache to stay
  // effective, fused otherwise. CompiledTagger::backend() reports the
  // resolved choice; kAuto never reaches a running engine.
  kAuto,
};

// Knobs shared by the functional model and the hardware generator. The two
// engines implement identical semantics for any given options value; the
// equivalence tests sweep these.
struct TaggerOptions {
  // Bytes that separate tokens. Arms survive a run of delimiters and are
  // consumed by the first non-delimiter byte (the Fig. 6 first-register
  // stall). Tokens never start on a delimiter byte.
  regex::CharClass delimiters = regex::CharClass::Whitespace();

  ArmMode arm_mode = ArmMode::kAnchored;

  // Deprecated alias used by older call sites; true = kAnchored, false =
  // kScan. Kept as a helper for terse construction.
  bool anchored = true;

  // Fig. 7 longest-match look-ahead: suppress a match whose token run can
  // consume the next byte. Disable to see every intermediate detection.
  bool longest_match = true;

  // Software engine for CompiledTagger::Tag and the nids scan paths. Has
  // no effect on the generated hardware.
  TaggerBackend backend = TaggerBackend::kFunctional;

  // Lazy-DFA backend only: per-session budget for the transition cache
  // (interned states, transition rows, emission lists). Crossing it drops
  // the whole cache and rebuilds from the current configuration (RE2's
  // flush discipline); sessions whose cache flushes dfa_flush_fallback
  // times stop caching and run the fused engine directly for the rest of
  // their life.
  size_t dfa_cache_bytes = 16u << 20;
  uint32_t dfa_flush_fallback = 4;

  // Artifact serialization only (lazy-DFA backend): cap on the machine
  // configurations the ahead-of-time determinizer interns into the saved
  // transition table. The reachable (configuration x byte class) product
  // is walked breadth-first until the cap; whatever is left over is built
  // lazily at run time exactly as before. 0 disables AOT entirely.
  uint32_t aot_state_budget = 4096;

  // The effective arming mode: `anchored == false` (legacy scan request)
  // overrides the default-constructed arm_mode.
  ArmMode EffectiveArmMode() const {
    if (!anchored && arm_mode == ArmMode::kAnchored) return ArmMode::kScan;
    return arm_mode;
  }
};

}  // namespace cfgtag::tagger

#endif  // CFGTAG_TAGGER_TAG_H_
