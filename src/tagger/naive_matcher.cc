#include "tagger/naive_matcher.h"

#include <algorithm>
#include <deque>

namespace cfgtag::tagger {

NaiveMatcher::NaiveMatcher(std::vector<std::string> patterns)
    : patterns_(std::move(patterns)) {
  nodes_.emplace_back();  // root
  // Trie construction.
  for (size_t pi = 0; pi < patterns_.size(); ++pi) {
    int32_t cur = 0;
    for (char ch : patterns_[pi]) {
      const unsigned char c = static_cast<unsigned char>(ch);
      if (nodes_[cur].next[c] == -1) {
        nodes_[cur].next[c] = static_cast<int32_t>(nodes_.size());
        nodes_.emplace_back();
      }
      cur = nodes_[cur].next[c];
    }
    nodes_[cur].output.push_back(static_cast<int32_t>(pi));
  }
  // Failure links by BFS; convert goto to a complete transition function.
  std::deque<int32_t> queue;
  for (int c = 0; c < 256; ++c) {
    const int32_t t = nodes_[0].next[c];
    if (t == -1) {
      nodes_[0].next[c] = 0;
    } else {
      nodes_[t].fail = 0;
      queue.push_back(t);
    }
  }
  while (!queue.empty()) {
    const int32_t u = queue.front();
    queue.pop_front();
    // Merge outputs of the failure target.
    const auto& fo = nodes_[nodes_[u].fail].output;
    nodes_[u].output.insert(nodes_[u].output.end(), fo.begin(), fo.end());
    for (int c = 0; c < 256; ++c) {
      const int32_t t = nodes_[u].next[c];
      if (t == -1) {
        nodes_[u].next[c] = nodes_[nodes_[u].fail].next[c];
      } else {
        nodes_[t].fail = nodes_[nodes_[u].fail].next[c];
        queue.push_back(t);
      }
    }
  }
}

void NaiveMatcher::Scan(
    std::string_view input,
    const std::function<bool(int32_t, uint64_t)>& cb) const {
  ScanWith(input, cb);
}

std::vector<Tag> NaiveMatcher::Matches(std::string_view input) const {
  std::vector<Tag> out;
  Scan(input, [&](int32_t p, uint64_t end) {
    Tag t;
    t.token = p;
    t.end = end;
    t.length = static_cast<uint32_t>(patterns_[p].size());
    out.push_back(t);
    return true;
  });
  return out;
}

}  // namespace cfgtag::tagger
