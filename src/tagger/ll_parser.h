#ifndef CFGTAG_TAGGER_LL_PARSER_H_
#define CFGTAG_TAGGER_LL_PARSER_H_

#include <string_view>
#include <vector>

#include "common/status.h"
#include "grammar/analysis.h"
#include "grammar/grammar.h"
#include "regex/position_automaton.h"
#include "tagger/tag.h"

namespace cfgtag::tagger {

// Table-driven predictive (LL(1)) parser built from the same First/Follow
// sets as the hardware. This is the "true parser" of paper §3.1/§3.3: it
// keeps the recursion state the hardware deliberately drops, so
//
//   * it rejects inputs that do not conform to the grammar, and
//   * its tag stream on conforming inputs is the ground truth that the
//     hardware's tag stream must be a superset of.
//
// Lexing is context-directed: at each step only the tokens the parse stack
// can accept are tried (longest match), mirroring how the hardware's
// follow-wiring restricts which tokenizers are armed.
class PredictiveParser {
 public:
  // Fails with kFailedPrecondition if the grammar is not LL(1).
  static StatusOr<PredictiveParser> Create(const grammar::Grammar* grammar,
                                           const TaggerOptions& options);

  // Parses the whole input; returns the token tags in stream order, or an
  // error describing the first point where the input leaves the language.
  StatusOr<std::vector<Tag>> Parse(std::string_view input) const;

  // True iff the input is a sentence of the grammar.
  bool Accepts(std::string_view input) const { return Parse(input).ok(); }

  const grammar::Analysis& analysis() const { return analysis_; }

 private:
  PredictiveParser(const grammar::Grammar* grammar, TaggerOptions options);

  const grammar::Grammar* grammar_;
  TaggerOptions options_;
  grammar::Analysis analysis_;
  std::vector<regex::PositionAutomaton> automata_;  // per token
  // table_[nt * stride + (token+1)]: production index, -1 = error.
  // Column 0 is the end-of-input marker.
  std::vector<int32_t> table_;
  size_t stride_ = 0;

  int32_t Lookup(int32_t nt, int32_t token) const {
    return table_[static_cast<size_t>(nt) * stride_ +
                  static_cast<size_t>(token + 1)];
  }

  // Longest match of token t's automaton at input[pos..]; kNoMatch if none.
  size_t MatchTokenAt(int32_t t, std::string_view input, size_t pos) const;
};

}  // namespace cfgtag::tagger

#endif  // CFGTAG_TAGGER_LL_PARSER_H_
