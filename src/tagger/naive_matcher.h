#ifndef CFGTAG_TAGGER_NAIVE_MATCHER_H_
#define CFGTAG_TAGGER_NAIVE_MATCHER_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "tagger/tag.h"

namespace cfgtag::tagger {

// Context-free multi-pattern scanner (Aho–Corasick): the "naive pattern
// search" of the paper's introduction. It reports every occurrence of every
// pattern anywhere in the stream — which is exactly why it produces false
// positives that the context-aware tagger avoids (the bench_false_positive
// experiment).
class NaiveMatcher {
 public:
  explicit NaiveMatcher(std::vector<std::string> patterns);

  // Calls `cb(pattern_index, end_offset)` for every occurrence, in stream
  // order; return false from the callback to stop.
  void Scan(std::string_view input,
            const std::function<bool(int32_t, uint64_t)>& cb) const;

  // Convenience: all matches as tags (token = pattern index).
  std::vector<Tag> Matches(std::string_view input) const;

  size_t NumPatterns() const { return patterns_.size(); }
  const std::string& pattern(size_t i) const { return patterns_[i]; }

 private:
  struct Node {
    int32_t next[256];   // goto function (dense)
    int32_t fail = 0;
    std::vector<int32_t> output;  // pattern indices ending here
    Node() { std::fill(std::begin(next), std::end(next), -1); }
  };

  std::vector<std::string> patterns_;
  std::vector<Node> nodes_;
};

}  // namespace cfgtag::tagger

#endif  // CFGTAG_TAGGER_NAIVE_MATCHER_H_
