#ifndef CFGTAG_TAGGER_NAIVE_MATCHER_H_
#define CFGTAG_TAGGER_NAIVE_MATCHER_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "tagger/tag.h"

namespace cfgtag::tagger {

// Context-free multi-pattern scanner (Aho–Corasick): the "naive pattern
// search" of the paper's introduction. It reports every occurrence of every
// pattern anywhere in the stream — which is exactly why it produces false
// positives that the context-aware tagger avoids (the bench_false_positive
// experiment).
class NaiveMatcher {
 public:
  explicit NaiveMatcher(std::vector<std::string> patterns);

  // Calls `cb(pattern_index, end_offset)` for every occurrence, in stream
  // order; return false from the callback to stop.
  void Scan(std::string_view input,
            const std::function<bool(int32_t, uint64_t)>& cb) const;

  // Same contract with a statically-dispatched callback — the form hot
  // loops use (one automaton step per byte, no std::function call per
  // match). Scan() above is this with a std::function callback.
  template <typename Callback>
  void ScanWith(std::string_view input, Callback&& cb) const {
    int32_t state = 0;
    for (size_t i = 0; i < input.size(); ++i) {
      state = nodes_[state].next[static_cast<unsigned char>(input[i])];
      for (int32_t p : nodes_[state].output) {
        if (!cb(p, static_cast<uint64_t>(i))) return;
      }
    }
  }

  // Convenience: all matches as tags (token = pattern index).
  std::vector<Tag> Matches(std::string_view input) const;

  size_t NumPatterns() const { return patterns_.size(); }
  const std::string& pattern(size_t i) const { return patterns_[i]; }

 private:
  struct Node {
    int32_t next[256];   // goto function (dense)
    int32_t fail = 0;
    std::vector<int32_t> output;  // pattern indices ending here
    Node() { std::fill(std::begin(next), std::end(next), -1); }
  };

  std::vector<std::string> patterns_;
  std::vector<Node> nodes_;
};

}  // namespace cfgtag::tagger

#endif  // CFGTAG_TAGGER_NAIVE_MATCHER_H_
