#ifndef CFGTAG_TAGGER_SESSION_POOL_H_
#define CFGTAG_TAGGER_SESSION_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "tagger/functional_model.h"

namespace cfgtag::tagger {

// Thread-safe pool of reusable TaggerSession scratch state. A session owns
// eight vectors sized to the tagger's token count; allocating them per
// scan dominates the cost of tagging short messages, so the hot paths
// (FunctionalTagger::Run, core::CompiledTagger::Tag, the nids scan engine
// workers) check sessions out of a pool instead. Checked-in sessions keep
// their buffers; Acquire() rebinds and resets them, so a returned session
// carries no state into its next use — early-stopped and half-fed sessions
// are safe to return as-is.
class SessionPool {
 public:
  // RAII checkout: returns the session to the pool on destruction.
  class Handle {
   public:
    Handle() = default;
    Handle(SessionPool* pool, std::unique_ptr<TaggerSession> session)
        : pool_(pool), session_(std::move(session)) {}
    ~Handle() { Release(); }
    Handle(Handle&& other) noexcept
        : pool_(other.pool_), session_(std::move(other.session_)) {
      other.pool_ = nullptr;
    }
    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = other.pool_;
        session_ = std::move(other.session_);
        other.pool_ = nullptr;
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    TaggerSession* operator->() const { return session_.get(); }
    TaggerSession& operator*() const { return *session_; }
    TaggerSession* get() const { return session_.get(); }

   private:
    void Release() {
      if (pool_ != nullptr && session_ != nullptr) {
        pool_->Return(std::move(session_));
      }
      pool_ = nullptr;
      session_.reset();
    }

    SessionPool* pool_ = nullptr;
    std::unique_ptr<TaggerSession> session_;
  };

  SessionPool() = default;
  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  // Checks out a session bound to `tagger`, reset to stream start. Reuses
  // an idle session when one exists (rebinding it if it was built for a
  // since-moved tagger — buffer shapes are preserved across moves, so the
  // rebind is allocation-free); otherwise constructs a fresh one.
  Handle Acquire(const FunctionalTagger* tagger) {
    std::unique_ptr<TaggerSession> session;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!idle_.empty()) {
        session = std::move(idle_.back());
        idle_.pop_back();
      }
    }
    if (session == nullptr) {
      created_.fetch_add(1, std::memory_order_relaxed);
      session = std::make_unique<TaggerSession>(tagger);
    } else {
      reused_.fetch_add(1, std::memory_order_relaxed);
      session->Rebind(tagger);
    }
    return Handle(this, std::move(session));
  }

  size_t IdleCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return idle_.size();
  }
  uint64_t sessions_created() const {
    return created_.load(std::memory_order_relaxed);
  }
  uint64_t sessions_reused() const {
    return reused_.load(std::memory_order_relaxed);
  }

 private:
  friend class Handle;

  void Return(std::unique_ptr<TaggerSession> session) {
    std::lock_guard<std::mutex> lock(mu_);
    idle_.push_back(std::move(session));
  }

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<TaggerSession>> idle_;
  std::atomic<uint64_t> created_{0};
  std::atomic<uint64_t> reused_{0};
};

}  // namespace cfgtag::tagger

#endif  // CFGTAG_TAGGER_SESSION_POOL_H_
