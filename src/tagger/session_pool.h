#ifndef CFGTAG_TAGGER_SESSION_POOL_H_
#define CFGTAG_TAGGER_SESSION_POOL_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/resilience/budget.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "tagger/functional_model.h"

namespace cfgtag::tagger {

// Thread-safe pool of reusable tagging-session scratch state, generic over
// the (tagger, session) pair — SessionPool pools TaggerSessions for the
// functional backend, FusedSessionPool pools FusedSessions for the fused
// backend. A session owns several vectors sized to the tagger; allocating
// them per scan dominates the cost of tagging short messages, so the hot
// paths (FunctionalTagger::Run, FusedTagger::Run, core::CompiledTagger::
// Tag, the nids scan engine workers) check sessions out of a pool instead.
// Checked-in sessions keep their buffers; Acquire() rebinds and resets
// them, so a returned session carries no state into its next use —
// early-stopped and half-fed sessions are safe to return as-is.
//
// Retention is bounded so a one-off burst of concurrent checkouts cannot
// pin scratch memory forever. The idle list never exceeds max_idle (a hard
// cap, adjustable per pool), and whenever the pool drains back to zero
// outstanding sessions it is trimmed to the high-water mark of the burst
// that just ended — so after a 100-way burst, the first steady
// single-threaded scan shrinks the pool to one retained session. Dropped
// sessions are freed on the spot and counted in sessions_dropped().
//
// Session requirements: constructible from `const Tagger*` and
// `Rebind(const Tagger*)` re-targeting it without reallocating when the
// buffer shapes match.
template <typename Tagger, typename Session>
class BasicSessionPool {
 public:
  static constexpr size_t kDefaultMaxIdle = 64;

  // RAII checkout: returns the session to the pool on destruction.
  class Handle {
   public:
    Handle() = default;
    Handle(BasicSessionPool* pool, std::unique_ptr<Session> session)
        : pool_(pool), session_(std::move(session)) {}
    ~Handle() { Release(); }
    Handle(Handle&& other) noexcept
        : pool_(other.pool_), session_(std::move(other.session_)) {
      other.pool_ = nullptr;
    }
    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = other.pool_;
        session_ = std::move(other.session_);
        other.pool_ = nullptr;
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    Session* operator->() const { return session_.get(); }
    Session& operator*() const { return *session_; }
    Session* get() const { return session_.get(); }

   private:
    void Release() {
      if (pool_ != nullptr && session_ != nullptr) {
        pool_->Return(std::move(session_));
      }
      pool_ = nullptr;
      session_.reset();
    }

    BasicSessionPool* pool_ = nullptr;
    std::unique_ptr<Session> session_;
  };

  BasicSessionPool() = default;
  BasicSessionPool(const BasicSessionPool&) = delete;
  BasicSessionPool& operator=(const BasicSessionPool&) = delete;

  // Checks out a session bound to `tagger`, reset to stream start. Reuses
  // an idle session when one exists (rebinding it if it was built for a
  // since-moved tagger — buffer shapes are preserved across moves, so the
  // rebind is allocation-free); otherwise constructs a fresh one.
  Handle Acquire(const Tagger* tagger) {
    std::unique_ptr<Session> session;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++outstanding_;
      high_water_ = std::max(high_water_, outstanding_);
      burst_high_ = std::max(burst_high_, outstanding_);
      if (!idle_.empty()) {
        session = std::move(idle_.back());
        idle_.pop_back();
      }
      PoolMetrics().idle->Set(static_cast<double>(idle_.size()));
    }
    if (session == nullptr) {
      created_.fetch_add(1, std::memory_order_relaxed);
      session = std::make_unique<Session>(tagger);
    } else {
      reused_.fetch_add(1, std::memory_order_relaxed);
      session->Rebind(tagger);
    }
    return Handle(this, std::move(session));
  }

  // Idle sessions retained will not exceed max(1, n) from the next Return.
  void set_max_idle(size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    max_idle_ = std::max<size_t>(1, n);
  }

  // One-shot trim: drops idle sessions until at most `keep` remain, right
  // now, counting them in sessions_dropped(). Unlike set_max_idle this is
  // not a standing cap — the pool may grow past `keep` again afterwards.
  // Safe concurrently with Acquire/Return; the freed sessions are
  // destroyed outside the pool lock.
  void TrimIdle(size_t keep) {
    std::vector<std::unique_ptr<Session>> victims;
    {
      std::lock_guard<std::mutex> lock(mu_);
      while (idle_.size() > keep) {
        victims.push_back(std::move(idle_.back()));
        idle_.pop_back();
      }
      PoolMetrics().idle->Set(static_cast<double>(idle_.size()));
    }
    if (!victims.empty()) {
      dropped_.fetch_add(victims.size(), std::memory_order_relaxed);
      PoolMetrics().dropped->Increment(victims.size());
      obs::RecordEvent(obs::EventKind::kSessionPoolDrop,
                       static_cast<int64_t>(victims.size()),
                       static_cast<int64_t>(keep), "session pool TrimIdle");
    }
  }

  size_t IdleCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return idle_.size();
  }
  // Peak number of concurrently checked-out sessions.
  size_t HighWater() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }
  uint64_t sessions_created() const {
    return created_.load(std::memory_order_relaxed);
  }
  uint64_t sessions_reused() const {
    return reused_.load(std::memory_order_relaxed);
  }
  uint64_t sessions_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  friend class Handle;

  // Process-wide pool accounting. Pools are per-tagger, so the gauge holds
  // the last-updated pool's reading; the counter aggregates across pools.
  struct Metrics {
    obs::Gauge* idle;
    obs::Counter* dropped;
  };
  static const Metrics& PoolMetrics() {
    static const Metrics kMetrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      return Metrics{
          reg.GetGauge("cfgtag_session_pool_idle_sessions",
                       "Idle sessions retained by the last-touched pool"),
          reg.GetCounter("cfgtag_session_pool_dropped_total",
                         "Sessions freed by the pool retention cap")};
    }();
    return kMetrics;
  }

  void Return(std::unique_ptr<Session> session) {
    // Budget pressure (kTrimPools rung): read the flag before taking the
    // pool lock and trim after releasing it — TrimIdle relocks, and the
    // trim is a best-effort shed, not part of the return itself.
    const bool trim_for_pressure =
        core::resilience::ResourceBudget::Process().ShouldTrimPools();
    ReturnToIdle(std::move(session));
    if (trim_for_pressure) TrimIdle(1);
  }

  void ReturnToIdle(std::unique_ptr<Session> session) {
    std::lock_guard<std::mutex> lock(mu_);
    if (outstanding_ > 0) --outstanding_;
    size_t freed = 0;
    if (idle_.size() < max_idle_) {
      idle_.push_back(std::move(session));
    } else {
      session.reset();
      ++freed;
    }
    // High-water-mark trim: once the burst that grew the pool has fully
    // drained, keep only as much idle scratch as that burst's peak
    // concurrency — the next burst's peak starts being tracked afresh, so
    // a later, smaller workload shrinks the pool further.
    if (outstanding_ == 0) {
      const size_t bound = std::max<size_t>(1, burst_high_);
      while (idle_.size() > bound) {
        idle_.pop_back();
        ++freed;
      }
      burst_high_ = 0;
    }
    if (freed > 0) {
      dropped_.fetch_add(freed, std::memory_order_relaxed);
      PoolMetrics().dropped->Increment(freed);
      obs::RecordEvent(obs::EventKind::kSessionPoolDrop,
                       static_cast<int64_t>(freed),
                       static_cast<int64_t>(idle_.size()),
                       "session pool retention cap");
    }
    PoolMetrics().idle->Set(static_cast<double>(idle_.size()));
  }

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Session>> idle_;
  size_t outstanding_ = 0;
  size_t high_water_ = 0;  // lifetime peak (accessor/observability)
  size_t burst_high_ = 0;  // peak of the burst in flight; reset on drain
  size_t max_idle_ = kDefaultMaxIdle;
  std::atomic<uint64_t> created_{0};
  std::atomic<uint64_t> reused_{0};
  std::atomic<uint64_t> dropped_{0};
};

// The functional backend's pool (the original SessionPool name — call
// sites and the FunctionalTagger forward declaration predate the
// template).
class SessionPool final
    : public BasicSessionPool<FunctionalTagger, TaggerSession> {};

}  // namespace cfgtag::tagger

#endif  // CFGTAG_TAGGER_SESSION_POOL_H_
