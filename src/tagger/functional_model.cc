#include "tagger/functional_model.h"

#include <algorithm>

#include "tagger/session_pool.h"

namespace cfgtag::tagger {

FunctionalTagger::FunctionalTagger(const grammar::Grammar* grammar,
                                   TaggerOptions options)
    : grammar_(grammar), options_(options) {}

StatusOr<FunctionalTagger> FunctionalTagger::Create(
    const grammar::Grammar* grammar, const TaggerOptions& options) {
  CFGTAG_ASSIGN_OR_RETURN(auto analysis, grammar::Analyze(*grammar));
  FunctionalTagger t(grammar, options);
  t.analysis_ = std::move(analysis);
  const size_t num_tokens = grammar->NumTokens();
  t.automata_.reserve(num_tokens);
  for (const grammar::TokenDef& def : grammar->tokens()) {
    t.automata_.push_back(regex::PositionAutomaton::Build(*def.regex));
  }
  t.follow_tokens_.resize(num_tokens);
  for (size_t tok = 0; tok < num_tokens; ++tok) {
    for (int32_t f : t.analysis_.follow_tok[tok]) {
      if (f != grammar::Analysis::kEndMarker) {
        t.follow_tokens_[tok].push_back(f);
      }
    }
  }
  t.start_tokens_.assign(t.analysis_.start_tokens.begin(),
                         t.analysis_.start_tokens.end());
  t.is_start_.assign(num_tokens, 0);
  for (int32_t s : t.start_tokens_) t.is_start_[s] = 1;
  t.word_offset_.assign(num_tokens + 1, 0);
  for (size_t tok = 0; tok < num_tokens; ++tok) {
    t.word_offset_[tok + 1] = t.word_offset_[tok] +
                              t.automata_[tok].NumWords();
  }
  t.session_pool_ = std::make_shared<SessionPool>();
  return t;
}

size_t FunctionalTagger::TotalPositions() const {
  size_t total = 0;
  for (const auto& a : automata_) total += a.NumPositions();
  return total;
}

void FunctionalTagger::Run(std::string_view input, const TagSink& sink) const {
  SessionPool::Handle session = session_pool_->Acquire(this);
  session->Feed(input, sink);
  session->Finish(sink);
}

std::vector<Tag> FunctionalTagger::TagAll(std::string_view input) const {
  std::vector<Tag> tags;
  Run(input, [&tags](const Tag& t) {
    tags.push_back(t);
    return true;
  });
  return tags;
}

// ----------------------------------------------------------- TaggerSession

TaggerSession::TaggerSession(const FunctionalTagger* tagger)
    : tagger_(nullptr) {
  Rebind(tagger);
}

void TaggerSession::Rebind(const FunctionalTagger* tagger) {
  if (tagger != tagger_) {
    tagger_ = tagger;
    const size_t total_words = tagger_->word_offset_.back();
    state_.assign(total_words, 0);
    size_t max_words = 1;
    for (const auto& pa : tagger_->automata_) {
      max_words = std::max(max_words, pa.NumWords());
    }
    scratch_.assign(max_words, 0);
    const size_t num_tokens = tagger_->automata_.size();
    armed_.assign(num_tokens, 0);
    new_arms_.assign(num_tokens, 0);
    is_live_.assign(num_tokens, 0);
    is_candidate_.assign(num_tokens, 0);
  }
  Reset();
}

void TaggerSession::Reset() {
  std::fill(state_.begin(), state_.end(), 0);
  std::fill(armed_.begin(), armed_.end(), 0);
  std::fill(is_live_.begin(), is_live_.end(), 0);
  std::fill(new_arms_.begin(), new_arms_.end(), 0);
  std::fill(is_candidate_.begin(), is_candidate_.end(), 0);
  live_.clear();
  armed_list_.clear();
  new_arm_list_.clear();
  candidate_reset_.clear();
  if (tagger_->options_.EffectiveArmMode() != ArmMode::kScan) {
    for (int32_t t : tagger_->start_tokens_) {
      armed_[t] = 1;
      armed_list_.push_back(t);
    }
  }
  prev_was_delim_ = false;
  has_pending_ = false;
  finished_ = false;
  stopped_ = false;
  pending_ = 0;
  pos_ = 0;
}

void TaggerSession::AddCandidate(int32_t token) {
  if (!is_candidate_[token]) {
    is_candidate_[token] = 1;
    candidates_.push_back(token);
  }
}

void TaggerSession::ProcessByte(unsigned char c, bool has_next,
                                unsigned char next_c, const TagSink& sink) {
  const TaggerOptions& options = tagger_->options_;
  const ArmMode mode = options.EffectiveArmMode();
  const size_t num_tokens = tagger_->automata_.size();
  const bool delim = options.delimiters.Test(c);

  (void)num_tokens;
  // Step only tokens that can change: those with live state, plus — on a
  // non-delimiter byte — those with a reason to inject. Cold tokens have
  // all-zero state and no injection, so skipping them is exact.
  candidates_.clear();
  for (int32_t t : candidate_reset_) is_candidate_[t] = 0;
  candidate_reset_.clear();
  for (int32_t t : live_) AddCandidate(t);
  if (!delim) {
    for (int32_t t : armed_list_) AddCandidate(t);
    if (mode == ArmMode::kScan ||
        (mode == ArmMode::kResync && prev_was_delim_)) {
      for (int32_t t : tagger_->start_tokens_) AddCandidate(t);
    }
  }
  // Keep token order: emissions at the same byte must come out in token-id
  // order (the contract shared with the cycle-accurate harness).
  std::sort(candidates_.begin(), candidates_.end());
  candidate_reset_ = candidates_;

  new_arm_list_.clear();
  live_.clear();
  for (int32_t t : candidates_) {
    const regex::PositionAutomaton& pa = tagger_->automata_[t];
    const bool start_armed =
        tagger_->is_start_[t] &&
        (mode == ArmMode::kScan ||
         (mode == ArmMode::kResync && prev_was_delim_));
    const bool inject = !delim && (armed_[t] || start_armed);
    uint64_t* cur = &state_[tagger_->word_offset_[t]];
    const size_t nw = pa.NumWords();
    pa.StepState(cur, inject, c, scratch_.data());
    // Emission with Fig. 7 look-ahead suppression.
    if (pa.Accepts(scratch_.data())) {
      const bool suppressed = options.longest_match && has_next &&
                              pa.CanExtend(scratch_.data(), next_c);
      if (!suppressed) {
        Tag tag;
        tag.token = t;
        tag.end = pos_;
        if (!stopped_ && !sink(tag)) stopped_ = true;
        for (int32_t f : tagger_->follow_tokens_[t]) {
          if (!new_arms_[f]) {
            new_arms_[f] = 1;
            new_arm_list_.push_back(f);
          }
        }
      }
    }
    // Commit and track liveness.
    bool nonzero = false;
    for (size_t w = 0; w < nw; ++w) {
      cur[w] = scratch_[w];
      nonzero |= scratch_[w] != 0;
    }
    if (nonzero) {
      live_.push_back(t);
      is_live_[t] = 1;
    } else {
      is_live_[t] = 0;
    }
  }

  // Arms are consumed by a non-delimiter byte, survive delimiters, and
  // matches ending at this byte arm their Follow sets for the next byte.
  if (!delim) {
    for (int32_t t : armed_list_) armed_[t] = 0;
    armed_list_.clear();
  }
  for (int32_t t : new_arm_list_) {
    new_arms_[t] = 0;  // reset the dedupe flag for the next byte
    if (!armed_[t]) {
      armed_[t] = 1;
      armed_list_.push_back(t);
    }
  }
  prev_was_delim_ = delim;
  ++pos_;
}

void TaggerSession::Feed(std::string_view chunk, const TagSink& sink) {
  if (finished_ || stopped_) return;
  for (const char ch : chunk) {
    const unsigned char c = static_cast<unsigned char>(ch);
    if (has_pending_) {
      ProcessByte(pending_, /*has_next=*/true, c, sink);
      if (stopped_) return;
    }
    pending_ = c;
    has_pending_ = true;
  }
}

void TaggerSession::Finish(const TagSink& sink) {
  if (finished_) return;
  finished_ = true;
  if (stopped_ || !has_pending_) return;
  ProcessByte(pending_, /*has_next=*/false, 0, sink);
  has_pending_ = false;
}

}  // namespace cfgtag::tagger
