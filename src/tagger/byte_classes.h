#ifndef CFGTAG_TAGGER_BYTE_CLASSES_H_
#define CFGTAG_TAGGER_BYTE_CLASSES_H_

#include <cstdint>
#include <vector>

#include "regex/char_class.h"

namespace cfgtag::tagger {

// Partition of the 256 byte values into equivalence classes over a set of
// CharClasses: two bytes land in the same class iff every given CharClass
// either contains both or neither. Transition tables indexed by byte class
// instead of raw byte shrink by the compression ratio (the same trick
// XGrammar uses to collapse context-independent token masks): a typical
// grammar uses a dozen-odd distinct character classes, so 256 byte rows
// collapse to that many class rows and the whole table stays cache
// resident.
//
// Class ids are assigned in first-encounter order over ascending byte
// values, so id 0 always contains byte 0 and ids are deterministic for a
// given input set.
class ByteClassifier {
 public:
  // An empty classifier puts every byte in class 0.
  ByteClassifier();

  // Builds the coarsest partition refining every class in `classes`.
  static ByteClassifier Build(const std::vector<regex::CharClass>& classes);

  // Rebuilds a classifier from a stored byte -> class map (the artifact
  // load path). Every id in [0, num_classes) must appear in `map`;
  // representatives are recomputed as the smallest member byte, matching
  // Build()'s first-encounter assignment.
  static ByteClassifier FromMap(const uint8_t map[256], uint16_t num_classes);

  uint16_t NumClasses() const { return num_classes_; }
  uint8_t ClassOf(unsigned char c) const { return class_of_[c]; }

  // One member byte per class (the smallest): any per-class predicate over
  // the generating CharClasses can be evaluated on the representative.
  unsigned char Representative(uint16_t cls) const {
    return representative_[cls];
  }

  const uint8_t* class_map() const { return class_of_; }

 private:
  uint8_t class_of_[256];
  std::vector<unsigned char> representative_;
  uint16_t num_classes_ = 1;
};

}  // namespace cfgtag::tagger

#endif  // CFGTAG_TAGGER_BYTE_CLASSES_H_
