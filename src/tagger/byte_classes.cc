#include "tagger/byte_classes.h"

namespace cfgtag::tagger {

ByteClassifier::ByteClassifier() {
  for (int c = 0; c < 256; ++c) class_of_[c] = 0;
  representative_.assign(1, 0);
}

ByteClassifier ByteClassifier::Build(
    const std::vector<regex::CharClass>& classes) {
  ByteClassifier out;
  // Iterative refinement: split every current class against each
  // CharClass. A (old class, membership) pair maps to one new id; ids are
  // handed out in ascending-byte first-encounter order each round, which
  // keeps the result independent of the order of `classes`... up to
  // relabeling, and fully deterministic for a fixed input vector.
  for (const regex::CharClass& cc : classes) {
    // new_id[old * 2 + in] = refined class id, assigned lazily.
    std::vector<int> new_id(static_cast<size_t>(out.num_classes_) * 2, -1);
    uint16_t next = 0;
    uint8_t refined[256];
    for (int c = 0; c < 256; ++c) {
      const unsigned char b = static_cast<unsigned char>(c);
      const size_t key = static_cast<size_t>(out.class_of_[b]) * 2 +
                         (cc.Test(b) ? 1 : 0);
      if (new_id[key] < 0) new_id[key] = next++;
      refined[c] = static_cast<uint8_t>(new_id[key]);
    }
    for (int c = 0; c < 256; ++c) out.class_of_[c] = refined[c];
    out.num_classes_ = next;
  }
  out.representative_.assign(out.num_classes_, 0);
  std::vector<bool> seen(out.num_classes_, false);
  for (int c = 0; c < 256; ++c) {
    const uint8_t cls = out.class_of_[c];
    if (!seen[cls]) {
      seen[cls] = true;
      out.representative_[cls] = static_cast<unsigned char>(c);
    }
  }
  return out;
}

ByteClassifier ByteClassifier::FromMap(const uint8_t map[256],
                                       uint16_t num_classes) {
  ByteClassifier out;
  for (int c = 0; c < 256; ++c) out.class_of_[c] = map[c];
  out.num_classes_ = num_classes;
  out.representative_.assign(num_classes, 0);
  std::vector<bool> seen(num_classes, false);
  for (int c = 0; c < 256; ++c) {
    const uint8_t cls = out.class_of_[c];
    if (!seen[cls]) {
      seen[cls] = true;
      out.representative_[cls] = static_cast<unsigned char>(c);
    }
  }
  return out;
}

}  // namespace cfgtag::tagger
