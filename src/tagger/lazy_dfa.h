#ifndef CFGTAG_TAGGER_LAZY_DFA_H_
#define CFGTAG_TAGGER_LAZY_DFA_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/resilience/budget.h"
#include "grammar/grammar.h"
#include "obs/metrics.h"
#include "tagger/dfa_state.h"
#include "tagger/fused_model.h"
#include "tagger/session_pool.h"
#include "tagger/table_view.h"
#include "tagger/tag.h"

namespace cfgtag::tagger {

class LazyDfaTagger;
class LazyDfaSessionPool;

// An ahead-of-time determinized transition table, baked into an artifact
// at serialize time and shared read-only by every session of the tagger
// that loaded it. Baked state ids are [0, states.size()); sessions place
// their own lazily interned states above that range and never mutate the
// baked rows, so one table serves any number of threads. Transitions the
// AOT walk left unbuilt (outside the state budget) have next = -1 and are
// built at run time into the session's private overlay.
struct AotDfaTable {
  TableView<DfaStateInfo> states;
  TableView<DfaTrans> trans;  // row-major [state * num_classes + cls]
  TableView<WordBits> snap_pool;
  TableView<int32_t> emit_pool;
  size_t num_classes = 0;

  // hash -> baked state id, rebuilt once at load from the stored hashes
  // (cheap relative to the compile it replaces; the artifact stays pure
  // position-independent data).
  std::unordered_multimap<uint64_t, int32_t> index;

  // Keeps the mapped (or copied) artifact bytes alive.
  std::shared_ptr<const void> backing;

  void BuildIndex() {
    index.clear();
    for (size_t i = 0; i < states.size(); ++i) {
      index.emplace(states[i].hash, static_cast<int32_t>(i));
    }
  }
};

// Process-wide accounting for the lazy-DFA transition cache, shared by all
// sessions: states interned, RE2-style cache flushes, and sessions that
// gave up caching and fell back to pure fused execution.
struct DfaCacheMetrics {
  obs::Counter* states;
  obs::Counter* flushes;
  obs::Counter* fallbacks;

  static const DfaCacheMetrics& Get();
};

// Streaming session over a LazyDfaTagger: the fused engine memoized as a
// lazily built DFA. An interned DFA state is a full machine configuration
// — the sparse live words of the fused state bitmap, the sparse armed
// words, the delimiter flag, and the *class* of the pending look-ahead
// byte (the Fig. 7 one-byte lag; emissions and post-emission arming both
// depend on the look-ahead's class, so it must live in the state for
// transitions to be a function of (state, input class) alone). The
// alphabet is the tagger's ByteClassifier classes: every machine decision
// factors through the byte class, so stepping the fused engine on a class
// representative builds a transition that is exact for every byte of the
// class.
//
// Steady state, the inner loop is one table lookup — `trans[state][
// class_of[byte]]` — plus an emission-replay branch. A miss takes one real
// fused step (LoadConfig, ProcessByte, SnapshotConfig) and interns the
// result. When the cache grows past TaggerOptions::dfa_cache_bytes it is
// dropped wholesale and rebuilt from the current configuration (RE2's
// flush discipline); after dfa_flush_fallback flushes the session stops
// caching and runs its scratch FusedSession directly for the rest of its
// life (Rebind to a different tagger clears the verdict).
//
// Tag streams are byte-identical, order included, to the functional and
// fused engines — enforced by the differential and fuzz suites.
class LazyDfaSession {
 public:
  // The tagger must outlive the session.
  explicit LazyDfaSession(const LazyDfaTagger* tagger);

  // Consumes a chunk, emitting tags in stream order.
  void Feed(std::string_view chunk, const TagSink& sink);

  // Ends the stream: processes the lagging pending byte with no look-ahead
  // suppression. Further Feed() calls are ignored until Reset().
  void Finish(const TagSink& sink);

  // Returns to the stream-start state. The transition cache (and a
  // standing fused-fallback verdict) survives — pooled sessions get warm
  // caches across scans of the same tagger.
  void Reset();

  // Re-targets the session at `tagger` and resets it. A different tagger
  // invalidates the cache and clears any fallback verdict.
  void Rebind(const LazyDfaTagger* tagger);

  // Bytes fully processed so far (excludes the pending look-ahead byte).
  uint64_t bytes_consumed() const { return consumed_; }

  const LazyDfaTagger* tagger() const { return tagger_; }

  // Cache introspection (tests and metrics surfacing). cache_states()
  // counts only the session's own interned states, not the shared baked
  // table (aot_states() reports that).
  size_t cache_states() const { return states_.size(); }
  size_t aot_states() const { return static_cast<size_t>(num_aot_); }
  size_t cache_bytes() const { return cache_bytes_; }
  uint64_t cache_flushes() const { return flushes_; }
  bool fallback_active() const { return fallback_; }

 private:
  // Resolves a state id across the two regions: baked AOT states occupy
  // [0, num_aot_), session-interned states live above.
  const DfaStateInfo& Info(int32_t id) const {
    return id < num_aot_ ? aot_->states[static_cast<size_t>(id)]
                         : states_[static_cast<size_t>(id - num_aot_)];
  }
  // First snapshot word of `info`, resolved into the owning pool.
  const WordBits* Snap(const DfaStateInfo& info, int32_t id) const {
    return (id < num_aot_ ? aot_->snap_pool.data() : snap_pool_.data()) +
           info.snap_begin;
  }

  int32_t InternState(const std::vector<WordBits>& state,
                      const std::vector<WordBits>& armed, bool prev_delim,
                      int16_t pending_cls);
  // Builds (and caches) the transition out of the current state on input
  // class `cls`, flushing first if the cache is over budget. May enter
  // fallback mode — the caller must check fallback_active() after a build.
  DfaTrans BuildTransition(uint8_t cls);
  void Flush();
  void EnterFallback();
  // Loads the current interned configuration into scratch_, restoring the
  // stream position, stop flag, and pending byte (as its class
  // representative) so the fused engine can continue the stream exactly.
  void MaterializeScratch();
  void ClearCache();
  void SyncFromScratch();

  // Merges the per-token match counts and DFA hit/miss tallies into
  // obs::AttributionTable::Default() and zeroes them (see the fused
  // session's equivalent). In fallback mode scratch_ counts for itself.
  void FlushAttribution();

  const LazyDfaTagger* tagger_;
  FusedSession scratch_;

  // The shared baked table (may be null) and the size of its id region.
  const AotDfaTable* aot_ = nullptr;
  int32_t num_aot_ = 0;

  // Session-private cache. states_[k] has global id num_aot_ + k; trans_
  // holds only the session states' rows. Runtime-built transitions out of
  // *baked* states go into overlay_ (keyed by state * num_classes + cls)
  // — the baked rows themselves are immutable and shared across threads.
  std::vector<DfaStateInfo> states_;
  std::vector<DfaTrans> trans_;  // row-major [(id - num_aot_) * num_classes + cls]
  std::unordered_map<uint64_t, DfaTrans> overlay_;
  std::vector<WordBits> snap_pool_;
  std::vector<int32_t> emit_pool_;
  std::unordered_multimap<uint64_t, int32_t> index_;
  size_t cache_bytes_ = 0;
  size_t num_classes_ = 0;
  // Mirrors cache_bytes_ into the process resource budget so a fleet of
  // sessions shows up as one "dfa_cache" footprint; under budget pressure
  // the kShedDfa rung stops further growth (see BuildTransition).
  core::resilience::ScopedCharge budget_{"dfa_cache"};

  // Scratch for intern/build, kept allocated across steps.
  std::vector<WordBits> tmp_state_, tmp_armed_;
  std::vector<int32_t> tmp_emit_;

  int32_t state_ = 0;
  uint64_t consumed_ = 0;
  uint64_t flushes_ = 0;
  bool fallback_ = false;
  bool finished_ = false;
  bool stopped_ = false;

  // Hot-path attribution (see obs::AttributionTable), sampled at Reset().
  // Matches are counted at emission replay; scratch_ never counts its own
  // build steps (they would double every replayed emission).
  bool attr_on_ = false;
  bool attr_dirty_ = false;
  std::vector<uint64_t> attr_matches_;
  uint64_t attr_dfa_hits_ = 0;
  uint64_t attr_dfa_misses_ = 0;
};

// The lazy-DFA backend: owns the fused engine it memoizes and hands out
// pooled LazyDfaSessions. See LazyDfaSession for the execution model.
class LazyDfaTagger {
 public:
  // The grammar must outlive the tagger.
  static StatusOr<LazyDfaTagger> Create(const grammar::Grammar* grammar,
                                        const TaggerOptions& options);

  // Wraps an already-built fused engine (the kAuto path compiles the
  // fused tables once, then decides which backend fronts them). With a
  // non-null `aot`, sessions start warm out of the baked transition table
  // (the artifact load path).
  static LazyDfaTagger Wrap(FusedTagger fused,
                            std::shared_ptr<const AotDfaTable> aot = nullptr);

  // Scans `input`, calling `sink` for every detected token in stream
  // order (token-id order within a byte).
  void Run(std::string_view input, const TagSink& sink) const;

  // Convenience: collect all tags.
  std::vector<Tag> TagAll(std::string_view input) const;

  // Streaming interface: feed the input in arbitrary chunks.
  LazyDfaSession NewSession() const { return LazyDfaSession(this); }

  // Shared scratch pool behind Run(); see SessionPool. Thread-safe.
  LazyDfaSessionPool& session_pool() const { return *session_pool_; }

  const FusedTagger& fused() const { return fused_; }
  const grammar::Grammar& grammar() const { return fused_.grammar(); }
  const TaggerOptions& options() const { return fused_.options(); }

  // The baked AOT transition table, or null when compiled in-process.
  const AotDfaTable* aot() const { return aot_.get(); }

  // The `--backend auto` heuristic: prefer the lazy DFA when the
  // byte-class x state-word product is small enough that the reachable
  // configuration set plausibly fits the transition cache; wide grammars
  // keep the fused engine, whose cost is already proportional to live
  // words.
  static constexpr size_t kAutoProductLimit = 8192;
  static bool AutoPrefers(const FusedTagger& fused) {
    return static_cast<size_t>(fused.NumByteClasses()) *
               fused.NumStateWords() <=
           kAutoProductLimit;
  }

 private:
  LazyDfaTagger(FusedTagger fused, std::shared_ptr<const AotDfaTable> aot);

  FusedTagger fused_;
  std::shared_ptr<const AotDfaTable> aot_;
  std::shared_ptr<LazyDfaSessionPool> session_pool_;
};

// Pool of reusable LazyDfaSession scratch (see BasicSessionPool). Reused
// sessions keep their transition cache when re-acquired for the same
// tagger — repeated scans run almost entirely out of cached transitions.
class LazyDfaSessionPool final
    : public BasicSessionPool<LazyDfaTagger, LazyDfaSession> {};

}  // namespace cfgtag::tagger

#endif  // CFGTAG_TAGGER_LAZY_DFA_H_
