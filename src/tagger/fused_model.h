#ifndef CFGTAG_TAGGER_FUSED_MODEL_H_
#define CFGTAG_TAGGER_FUSED_MODEL_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "grammar/grammar.h"
#include "tagger/byte_classes.h"
#include "tagger/session_pool.h"
#include "tagger/skip_scan.h"
#include "tagger/table_view.h"
#include "tagger/tag.h"

namespace cfgtag::tagger {

class FusedTagger;
class FusedSessionPool;
class LazyDfaSession;

namespace artifact {
class Loader;
class Writer;
class AotBuilder;
}  // namespace artifact

// One (word, bits) entry of a sparse bitmap pattern — the unit of the
// fused tagger's injection patterns and of the lazy-DFA backend's interned
// machine-configuration snapshots.
struct WordBits {
  uint32_t word = 0;
  uint64_t bits = 0;
};

// Streaming session over a FusedTagger: same chunked-feed contract as
// TaggerSession (one-byte lag for the Fig. 7 look-ahead, absolute stream
// offsets, Finish() flushes the lagging byte). The machine state is one
// contiguous word vector plus a word-occupancy meta bitmap, so the
// per-byte cost scales with *live* words, not grammar size — and an idle
// fast path skips whole delimiter runs (and, in anchored mode, the dead
// tail of the stream) without stepping at all.
class FusedSession {
 public:
  // The tagger must outlive the session.
  explicit FusedSession(const FusedTagger* tagger);

  // Consumes a chunk, emitting tags in stream order.
  void Feed(std::string_view chunk, const TagSink& sink);

  // Ends the stream: processes the lagging final byte with no look-ahead
  // suppression. Further Feed() calls are ignored until Reset().
  void Finish(const TagSink& sink);

  // Returns to the stream-start state.
  void Reset();

  // Re-targets the session at `tagger` and resets it; buffers are only
  // reallocated when the fused state shape differs.
  void Rebind(const FusedTagger* tagger);

  // Bytes fully processed so far (excludes the lagging byte).
  uint64_t bytes_consumed() const { return pos_; }

  const FusedTagger* tagger() const { return tagger_; }

 private:
  // The lazy-DFA backend drives a scratch FusedSession directly: it loads
  // an interned configuration, takes one ProcessByte step, and snapshots
  // the result (see src/tagger/lazy_dfa.cc). The AOT determinizer does the
  // same at artifact-build time (src/tagger/artifact/aot.cc).
  friend class LazyDfaSession;
  friend class artifact::AotBuilder;

  void ProcessByte(unsigned char c, bool has_next, unsigned char next_c,
                   const TagSink& sink);

  // The per-byte step after classification: everything ProcessByte does,
  // taking the byte's class id (and the look-ahead byte's) directly.
  // Feed's chunked pipeline classifies a whole block up front and calls
  // this against the dense class-id stream.
  void ProcessClass(uint8_t cls, bool has_next, uint8_t next_cls,
                    const TagSink& sink);

  // Merges the per-token attribution scratch into
  // obs::AttributionTable::Default() and zeroes it. Called from Finish()
  // and Reset() so pooled sessions merge on release/recheckout; a no-op
  // unless a ProcessByte ran with attribution on since the last flush.
  void FlushAttribution();

  // Replaces the machine configuration with an externally captured one:
  // sparse (word, bits) lists for the state and armed bitmaps, plus the
  // delimiter flag. Every listed bits value must be nonzero. Clears the
  // pending byte, stop and finish flags; leaves pos_ untouched (set it
  // separately when stream offsets matter).
  void LoadConfig(const WordBits* state, size_t num_state,
                  const WordBits* armed, size_t num_armed, bool prev_delim);

  // Appends the live (word, bits) pairs of the state and armed bitmaps in
  // ascending word order. Round-trips through LoadConfig.
  void SnapshotConfig(std::vector<WordBits>* state,
                      std::vector<WordBits>* armed) const;

  const FusedTagger* tagger_;
  // Fused state bitmaps, double-buffered. Only words whose meta bit is set
  // hold valid data; unmarked words are stale and must never be read.
  std::vector<uint64_t> state_, next_;
  std::vector<uint64_t> state_meta_, next_meta_;
  // Union of the first-position masks of all armed tokens (the pending
  // injection), with its own occupancy meta. Unmarked words are zero.
  std::vector<uint64_t> armed_first_, armed_meta_;
  std::vector<int32_t> emitted_;  // scratch: tokens emitted this byte
  // Reusable class-id scratch for Feed's chunked pipeline: each input
  // block is translated byte -> class id in one vectorized classify call,
  // and the state loop consumes the dense uint8_t stream.
  std::vector<uint8_t> cls_buf_;
  bool armed_any_ = false;
  bool any_live_ = false;
  bool prev_was_delim_ = false;
  bool has_pending_ = false;
  bool finished_ = false;
  bool stopped_ = false;  // sink requested early stop
  unsigned char pending_ = 0;
  uint64_t pos_ = 0;

  // Hot-path attribution (see obs::AttributionTable). attr_on_ samples the
  // process-wide switch at Reset() time; when off, the per-byte cost is a
  // single predicted branch. attr_matches_ is indexed by token id and is
  // exact. attr_live_ is indexed by state *word* — pass 3 already has the
  // word index in hand, so counting per word keeps the tagger's
  // word_token_ lookup out of the inner loop — and holds a *sampled*
  // activity estimate: every 64th byte counts with weight 64.
  // FlushAttribution() folds words back onto tokens (cold path) and
  // merges both into the process table.
  bool attr_on_ = false;
  bool attr_dirty_ = false;
  std::vector<uint64_t> attr_matches_;
  std::vector<uint64_t> attr_live_;
};

// Bit-parallel tagger with every token's Glushkov positions fused into one
// word-aligned global bitmap — the software mirror of the paper's §3.2
// hardware, which is literally one wide pipeline register stepped once per
// byte. Token t's positions occupy words [word_offset_[t], word_offset_
// [t+1]) of the fused state (the FunctionalTagger layout), so any word
// belongs to exactly one token and match extraction is a masked AND plus a
// word->token lookup. All transition tables are indexed by *byte class*
// (ByteClassifier over the union of position classes and the delimiter
// set), not raw byte, keeping them cache resident.
//
// Semantically identical to FunctionalTagger for every TaggerOptions value
// — enforced by the differential fuzz and equivalence tests — but the
// per-byte step is a handful of branch-free word passes, with no per-token
// dispatch, candidate sorting, or scratch copying.
class FusedTagger {
 public:
  // The grammar must outlive the tagger.
  static StatusOr<FusedTagger> Create(const grammar::Grammar* grammar,
                                      const TaggerOptions& options);

  // Scans `input`, calling `sink` for every detected token in stream
  // order (token-id order within a byte, as the hardware reports them).
  void Run(std::string_view input, const TagSink& sink) const;

  // Convenience: collect all tags.
  std::vector<Tag> TagAll(std::string_view input) const;

  // Streaming interface: feed the input in arbitrary chunks.
  FusedSession NewSession() const { return FusedSession(this); }

  // Shared scratch pool behind Run(); see SessionPool. Thread-safe.
  FusedSessionPool& session_pool() const { return *session_pool_; }

  const grammar::Grammar& grammar() const { return *grammar_; }
  const TaggerOptions& options() const { return options_; }

  // Total Glushkov positions over all tokens = the pattern-byte metric.
  size_t TotalPositions() const { return total_positions_; }
  // Words of the fused global state bitmap.
  size_t NumStateWords() const { return num_words_; }
  // Words of the occupancy meta bitmap (one bit per state word).
  size_t NumMetaWords() const { return meta_words_; }
  // Byte-class compression: distinct transition classes out of 256 bytes.
  size_t NumByteClasses() const { return classifier_.NumClasses(); }

  const ByteClassifier& classifier() const { return classifier_; }
  bool ClassIsDelim(uint8_t cls) const { return class_is_delim_[cls] != 0; }
  // Whether a byte of class `cls` can inject start positions in scan mode:
  // non-delimiter and intersecting some start token's first positions.
  // Bytes of classes that cannot arm are inert when the machine is fully
  // idle, which is what the armed-byte prefilter skips over.
  bool ClassCanArm(uint8_t cls) const { return class_can_arm_[cls] != 0; }
  // Multi-byte scanner over the delimiter set (the idle fast-skip engine,
  // shared with the lazy-DFA backend).
  const RunScanner& delimiter_scanner() const { return delim_scanner_; }
  // Multi-byte scanner over the bytes that CAN arm (the scan-mode idle
  // prefilter: skip to the next byte able to start any token).
  const RunScanner& arm_scanner() const { return arm_scanner_; }
  // Vectorized byte -> class-id translation tables.
  const simd::ClassTables& class_tables() const { return class_tables_; }

 private:
  friend class FusedSession;
  friend class LazyDfaSession;
  // The artifact writer snapshots these tables into a flat file; the loader
  // builds a FusedTagger whose table views point into the mmap'd file
  // instead of heap Storage (src/tagger/artifact/).
  friend class artifact::Loader;
  friend class artifact::Writer;
  friend class artifact::AotBuilder;

  FusedTagger(const grammar::Grammar* grammar, TaggerOptions options)
      : grammar_(grammar), options_(options) {}

  // Heap home of the tables Create() builds. The table-view members below
  // point either into one of these (compile path) or straight into an
  // mmap'd artifact (load path); backing_ keeps whichever alive. Hot-path
  // code only ever sees the views, so both paths run identical code.
  struct Storage {
    std::vector<uint32_t> word_offset;
    std::vector<int32_t> word_token;
    std::vector<uint8_t> class_is_delim;
    std::vector<uint8_t> class_can_arm;
    std::vector<uint64_t> class_mask;
    std::vector<uint64_t> ext_mask;
    std::vector<uint64_t> accept_mask;
    std::vector<uint32_t> row_offset;
    std::vector<uint64_t> row_data;
    std::vector<WordBits> start_first;
    std::vector<WordBits> arm_pattern;
    std::vector<uint32_t> arm_offset;
  };

  // Points every table view at the vectors of `s` (which must already be
  // owned by backing_).
  void BindStorage(const Storage& s);

  const grammar::Grammar* grammar_;
  TaggerOptions options_;

  size_t num_tokens_ = 0;
  size_t num_words_ = 0;   // fused state words
  size_t meta_words_ = 0;  // words of the occupancy meta bitmap
  size_t total_positions_ = 0;

  // word_offset_[t] = first fused-state word of token t; back() = total.
  TableView<uint32_t> word_offset_;
  // word_token_[w] = the token owning word w (words are never shared).
  TableView<int32_t> word_token_;

  // Byte-class machinery. class_of_[byte] -> class id; class_is_delim_
  // folds the delimiter test into the same lookup.
  ByteClassifier classifier_;
  TableView<uint8_t> class_is_delim_;
  // class_can_arm_[cls]: the class is not a delimiter and its bytes hit
  // some start token's first positions (see ClassCanArm()).
  TableView<uint8_t> class_can_arm_;
  RunScanner delim_scanner_;
  RunScanner arm_scanner_;
  simd::ClassTables class_tables_;

  // Per-class global masks, row-major [cls * num_words_ + w]:
  // class_mask_: positions whose character class contains the class;
  // ext_mask_: *accepting* positions with a successor consuming the class
  // (the Fig. 7 look-ahead as a mask: a match is suppressed iff
  // state & accept & ext[class(next byte)] is nonzero in its token words).
  TableView<uint64_t> class_mask_;
  TableView<uint64_t> ext_mask_;

  // Global accept mask (all tokens' last positions).
  TableView<uint64_t> accept_mask_;

  // Follow rows: row_offset_[global_bit] indexes into row_data_; the row
  // spans the owning token's words (width word_offset_[t+1] -
  // word_offset_[t], usually 1), holding the bitmap of follow(position).
  TableView<uint32_t> row_offset_;
  TableView<uint64_t> row_data_;

  // Sparse OR patterns. start_first_: the first positions of all start
  // tokens (scan/resync injection). arm_pattern_[arm_offset_[t] ..
  // arm_offset_[t+1]): the first positions of every token in t's Follow
  // set — arming a whole Follow set is |follow words| ORs.
  TableView<WordBits> start_first_;
  TableView<WordBits> arm_pattern_;
  TableView<uint32_t> arm_offset_;

  // Owns whatever memory the views point into: a Storage block on the
  // compile path, the mapped (or copied) artifact bytes on the load path.
  std::shared_ptr<const void> backing_;

  // Shared (internally synchronized) so copies stay cheap; sessions
  // rebind to whichever tagger acquires them.
  std::shared_ptr<FusedSessionPool> session_pool_;
};

// Pool of reusable FusedSession scratch (see BasicSessionPool).
class FusedSessionPool final
    : public BasicSessionPool<FusedTagger, FusedSession> {};

}  // namespace cfgtag::tagger

#endif  // CFGTAG_TAGGER_FUSED_MODEL_H_
