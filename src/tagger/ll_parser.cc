#include "tagger/ll_parser.h"

#include <algorithm>

#include "common/strings.h"
#include "regex/nfa.h"

namespace cfgtag::tagger {

PredictiveParser::PredictiveParser(const grammar::Grammar* grammar,
                                   TaggerOptions options)
    : grammar_(grammar), options_(options) {}

StatusOr<PredictiveParser> PredictiveParser::Create(
    const grammar::Grammar* grammar, const TaggerOptions& options) {
  CFGTAG_ASSIGN_OR_RETURN(auto analysis, grammar::Analyze(*grammar));
  PredictiveParser p(grammar, options);
  p.analysis_ = std::move(analysis);
  for (const grammar::TokenDef& def : grammar->tokens()) {
    p.automata_.push_back(regex::PositionAutomaton::Build(*def.regex));
  }

  // Build the LL(1) table: for production X -> alpha, every token in
  // First(alpha) selects it; if alpha is nullable, every token in
  // Follow(X) (including end-of-input) selects it too.
  p.stride_ = grammar->NumTokens() + 1;
  p.table_.assign(grammar->NumNonterminals() * p.stride_, -1);
  auto set_entry = [&](int32_t nt, int32_t token, int32_t prod) -> Status {
    int32_t& cell = p.table_[static_cast<size_t>(nt) * p.stride_ +
                             static_cast<size_t>(token + 1)];
    if (cell != -1 && cell != prod) {
      return FailedPreconditionError(
          "grammar is not LL(1): conflict on (" +
          grammar->nonterminals()[nt] + ", " +
          (token == grammar::Analysis::kEndMarker
               ? std::string("$end")
               : grammar->tokens()[token].name) +
          ")");
    }
    cell = prod;
    return Status::Ok();
  };
  for (size_t pi = 0; pi < grammar->productions().size(); ++pi) {
    const grammar::Production& prod = grammar->productions()[pi];
    auto [first, nullable] = p.analysis_.FirstOfSequence(prod.rhs, 0);
    for (int32_t t : first) {
      CFGTAG_RETURN_IF_ERROR(
          set_entry(prod.lhs, t, static_cast<int32_t>(pi)));
    }
    if (nullable) {
      for (int32_t t : p.analysis_.follow_nt[prod.lhs]) {
        CFGTAG_RETURN_IF_ERROR(
            set_entry(prod.lhs, t, static_cast<int32_t>(pi)));
      }
    }
  }
  return p;
}

size_t PredictiveParser::MatchTokenAt(int32_t t, std::string_view input,
                                      size_t pos) const {
  const regex::PositionAutomaton& pa = automata_[t];
  const size_t nw = pa.NumWords();
  std::vector<uint64_t> state(nw, 0), next(nw, 0);
  size_t best = regex::Nfa::kNoMatch;
  bool first_step = true;
  for (size_t i = pos; i < input.size(); ++i) {
    pa.StepState(state.data(), first_step, static_cast<unsigned char>(input[i]),
                 next.data());
    first_step = false;
    bool dead = true;
    for (size_t w = 0; w < nw; ++w) dead &= next[w] == 0;
    if (dead) break;
    if (pa.Accepts(next.data())) best = i - pos + 1;
    state.swap(next);
  }
  return best;
}

StatusOr<std::vector<Tag>> PredictiveParser::Parse(
    std::string_view input) const {
  std::vector<Tag> tags;
  std::vector<grammar::Symbol> stack;
  stack.push_back(grammar::Symbol::Nonterminal(grammar_->start()));

  size_t pos = 0;
  auto skip_delims = [&] {
    while (pos < input.size() &&
           options_.delimiters.Test(static_cast<unsigned char>(input[pos]))) {
      ++pos;
    }
  };

  // Resolves the lookahead token at `pos` among `candidates` (token ids);
  // returns {token, length} or {-1, 0}.
  auto lex = [&](const std::vector<int32_t>& candidates)
      -> std::pair<int32_t, size_t> {
    int32_t best_tok = -1;
    size_t best_len = 0;
    for (int32_t t : candidates) {
      const size_t len = MatchTokenAt(t, input, pos);
      if (len != regex::Nfa::kNoMatch && len > best_len) {
        best_len = len;
        best_tok = t;
      }
    }
    return {best_tok, best_len};
  };

  while (!stack.empty()) {
    skip_delims();
    const grammar::Symbol top = stack.back();
    if (top.IsTerminal()) {
      const size_t len = MatchTokenAt(top.index, input, pos);
      if (len == regex::Nfa::kNoMatch || len == 0) {
        return InvalidArgumentError(
            "parse error at offset " + std::to_string(pos) + ": expected " +
            grammar_->tokens()[top.index].name);
      }
      stack.pop_back();
      Tag tag;
      tag.token = top.index;
      tag.end = pos + len - 1;
      tag.length = static_cast<uint32_t>(len);
      tags.push_back(tag);
      pos += len;
      continue;
    }
    // Nonterminal: find the lookahead among the tokens this nonterminal can
    // accept, then expand via the LL(1) table.
    std::vector<int32_t> candidates;
    for (size_t t = 0; t < grammar_->NumTokens(); ++t) {
      if (Lookup(top.index, static_cast<int32_t>(t)) != -1) {
        candidates.push_back(static_cast<int32_t>(t));
      }
    }
    int32_t lookahead = grammar::Analysis::kEndMarker;
    if (pos < input.size()) {
      auto [tok, len] = lex(candidates);
      if (tok >= 0) {
        lookahead = tok;
      } else if (Lookup(top.index, grammar::Analysis::kEndMarker) == -1) {
        return InvalidArgumentError(
            "parse error at offset " + std::to_string(pos) +
            ": no viable token for " + grammar_->nonterminals()[top.index]);
      }
    }
    const int32_t prod = Lookup(top.index, lookahead);
    if (prod == -1) {
      return InvalidArgumentError(
          "parse error at offset " + std::to_string(pos) + ": " +
          grammar_->nonterminals()[top.index] + " cannot derive the input");
    }
    stack.pop_back();
    const grammar::Production& production = grammar_->productions()[prod];
    for (auto it = production.rhs.rbegin(); it != production.rhs.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  skip_delims();
  if (pos != input.size()) {
    return InvalidArgumentError("trailing input at offset " +
                                std::to_string(pos));
  }
  return tags;
}

}  // namespace cfgtag::tagger
