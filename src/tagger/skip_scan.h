#ifndef CFGTAG_TAGGER_SKIP_SCAN_H_
#define CFGTAG_TAGGER_SKIP_SCAN_H_

#include <cstddef>
#include <cstdint>

#include "obs/metrics.h"
#include "regex/char_class.h"
#include "tagger/simd/dispatch.h"

namespace cfgtag::tagger {

// Which engine a RunScanner call runs through — exported as the `strategy`
// label on cfgtag_skip_bytes_total so a deployment can confirm the vector
// kernels are live.
enum class SkipStrategy : uint8_t {
  kNone = 0,  // nothing scanned (empty set, or a purely positional skip)
  kMemchr,    // single-member set: libc memchr
  kSwar,      // <= 8 members, scalar dispatch: 8-lane SWAR word loop
  kTable,     // scalar dispatch, large set: table loop
  kSimd,      // vector dispatch: shuffle membership, 16/32 bytes per step
};

inline constexpr int kNumSkipStrategies = 5;

const char* SkipStrategyName(SkipStrategy s);

// Multi-byte run scanner over a fixed byte set — the engine behind the
// idle fast-skips shared by the fused and lazy-DFA backends. Both "skip
// while in the set" (delimiter runs) and "skip until the set" (resync
// garbage, armed-byte prefilter) reduce to finding the first byte on the
// other side of a membership test, so the scanner exposes exactly those
// two primitives.
//
// Calls dispatch through simd::Active(): under vector dispatch, arbitrary
// byte sets — not just the <= 8-member SWAR sets — skip 16/32 bytes per
// step via the exact truffle shuffle kernels; under scalar dispatch the
// strategy falls back per set population (memchr / SWAR / table, see
// SkipStrategy). Every tier returns identical indices.
class RunScanner {
 public:
  // An empty scanner: nothing is in the set.
  RunScanner();

  static RunScanner ForSet(const regex::CharClass& set);

  // Index of the first byte of data[0, n) NOT in the set; n if every byte
  // is a member.
  size_t FindFirstNotIn(const char* data, size_t n) const {
    return simd::Active().find_first_not_in(set_, data, n);
  }

  // Index of the first byte of data[0, n) in the set; n if none is.
  size_t FindFirstIn(const char* data, size_t n) const {
    return simd::Active().find_first_in(set_, data, n);
  }

  bool Test(unsigned char c) const { return set_.in_set[c] != 0; }

  int num_values() const { return set_.num_values; }

  // The strategy the *current* dispatch would use (metrics labelling; the
  // kernels re-decide per call, so a dispatch override mid-stream is safe).
  SkipStrategy strategy() const;

 private:
  simd::ByteSet set_;
};

// Process-wide accounting for the idle fast-skips (bytes that advanced the
// stream without stepping the machine), labelled by which skip fired
// (kind) and which scan engine found the run boundary (strategy). Shared
// between FusedSession and LazyDfaSession so a deployment sees one family
// regardless of backend.
struct SkipMetrics {
  enum Kind : int {
    kDelimiter = 0,  // delimiter runs with no live state
    kAnchored,       // dead anchored-mode stream tails (positional, no scan)
    kResync,         // unarmed non-delimiter runs in resync mode
    kArmed,          // scan-mode idle runs of bytes that cannot arm anything
    kNumKinds,
  };

  obs::Counter* counters[kNumKinds][kNumSkipStrategies];

  obs::Counter* Of(Kind kind, SkipStrategy strategy) const {
    return counters[kind][static_cast<int>(strategy)];
  }

  static const SkipMetrics& Get();
};

}  // namespace cfgtag::tagger

#endif  // CFGTAG_TAGGER_SKIP_SCAN_H_
