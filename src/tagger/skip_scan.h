#ifndef CFGTAG_TAGGER_SKIP_SCAN_H_
#define CFGTAG_TAGGER_SKIP_SCAN_H_

#include <cstddef>
#include <cstdint>

#include "obs/metrics.h"
#include "regex/char_class.h"

namespace cfgtag::tagger {

// Multi-byte run scanner over a fixed byte set — the engine behind the
// idle fast-skips shared by the fused and lazy-DFA backends. Both "skip
// while in the set" (delimiter runs) and "skip until the set" (resync
// garbage runs) reduce to finding the first byte on the other side of a
// membership test, so the scanner exposes exactly those two primitives.
//
// Strategy is picked at build time from the set's population:
//   * 1 member        — std::memchr for find-first-in, SWAR for the rest;
//   * <= 8 members    — branch-free SWAR: 8 input bytes per 64-bit word,
//                       one exact zero-lane test per member value
//                       (whitespace, the default delimiter set, has 6);
//   * anything larger — table-driven byte loop (still one load per byte,
//                       no per-byte branch beyond the test itself).
// The SWAR paths assume little-endian lane order and fall back to the
// table on big-endian targets.
class RunScanner {
 public:
  // An empty scanner: nothing is in the set.
  RunScanner();

  static RunScanner ForSet(const regex::CharClass& set);

  // Index of the first byte of data[0, n) NOT in the set; n if every byte
  // is a member.
  size_t FindFirstNotIn(const char* data, size_t n) const;

  // Index of the first byte of data[0, n) in the set; n if none is.
  size_t FindFirstIn(const char* data, size_t n) const;

  bool Test(unsigned char c) const { return in_set_[c] != 0; }

 private:
  static constexpr int kMaxSwarValues = 8;

  uint8_t in_set_[256];
  // Broadcast patterns (value repeated in every lane) for the SWAR path.
  uint64_t broadcast_[kMaxSwarValues];
  int num_values_ = 0;
  bool swar_ = false;
  unsigned char single_ = 0;  // the member byte when num_values_ == 1
};

// Process-wide accounting for the idle fast-skips (bytes that advanced the
// stream without stepping the machine), labelled by which skip fired.
// Shared between FusedSession and LazyDfaSession so a deployment sees one
// family regardless of backend.
struct SkipMetrics {
  obs::Counter* delimiter;  // delimiter runs with no live state
  obs::Counter* anchored;   // dead anchored-mode stream tails
  obs::Counter* resync;     // unarmed non-delimiter runs in resync mode

  static const SkipMetrics& Get();
};

}  // namespace cfgtag::tagger

#endif  // CFGTAG_TAGGER_SKIP_SCAN_H_
