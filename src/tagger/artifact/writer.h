#ifndef CFGTAG_TAGGER_ARTIFACT_WRITER_H_
#define CFGTAG_TAGGER_ARTIFACT_WRITER_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "tagger/artifact/format.h"
#include "tagger/fused_model.h"
#include "tagger/tag.h"

namespace cfgtag::tagger::artifact {

// What to stamp into the artifact header alongside the tables. The hashes
// are the cache key: the writer stores them verbatim so a cache lookup can
// validate a candidate file without recompiling anything.
struct SerializeRequest {
  ArtifactBackend backend = kArtifactFused;
  uint64_t grammar_hash = 0;
  uint64_t options_hash = 0;
  // Lazy-DFA backend only: AOT determinizer state budget (0 = no AOT
  // region). Ignored for kArtifactFused.
  uint32_t aot_state_budget = 0;
};

// Deterministic hash of the TaggerOptions fields that shape an artifact's
// tables (delimiter set, effective arm mode, longest-match, requested
// backend, lazy-DFA cache knobs, AOT budget). Two options values that hash
// equal produce byte-identical artifacts for the same grammar — the other
// half of the content-addressed cache key next to grammar::CanonicalHash.
uint64_t OptionsHash(const TaggerOptions& options);

// Serializes the tagger's tables (plus, for the lazy backend, a freshly
// built AOT DFA region) into the flat artifact format. The result is
// self-contained: Loader rebuilds a working tagger from these bytes alone.
StatusOr<std::string> SerializeTagger(const FusedTagger& fused,
                                      const SerializeRequest& req);

}  // namespace cfgtag::tagger::artifact

#endif  // CFGTAG_TAGGER_ARTIFACT_WRITER_H_
