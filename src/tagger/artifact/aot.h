#ifndef CFGTAG_TAGGER_ARTIFACT_AOT_H_
#define CFGTAG_TAGGER_ARTIFACT_AOT_H_

#include <cstdint>
#include <vector>

#include "tagger/dfa_state.h"
#include "tagger/fused_model.h"

namespace cfgtag::tagger::artifact {

// The ahead-of-time determinized DFA in build form (vectors, not views):
// exactly the four pools AotDfaTable serves at run time. State 0 is the
// stream-start configuration.
struct AotDfa {
  std::vector<DfaStateInfo> states;
  std::vector<DfaTrans> trans;  // row-major [state * num_classes + cls]
  std::vector<WordBits> snap_pool;
  std::vector<int32_t> emit_pool;
};

// Walks the reachable (machine configuration x byte class) product of the
// fused engine breadth-first, interning states and baking transitions —
// the same step (and the same hashing, dfa_state.h) a LazyDfaSession runs
// on a cache miss, done once at serialize time. `max_states` bounds the
// interned set: transitions whose successor would exceed the budget are
// left unbuilt (next = -1) for the runtime overlay to fill. With
// max_states == 0 the result is empty (AOT disabled).
//
// The walk is deterministic, so equal (grammar, options) pairs produce
// byte-identical AOT regions — part of the artifact's cacheability.
AotDfa BuildAotDfa(const FusedTagger& fused, uint32_t max_states);

}  // namespace cfgtag::tagger::artifact

#endif  // CFGTAG_TAGGER_ARTIFACT_AOT_H_
