#include "tagger/artifact/aot.h"

#include <algorithm>
#include <unordered_map>

namespace cfgtag::tagger::artifact {

// Friend of FusedSession/FusedTagger: drives a scratch fused session one
// (configuration, class) step at a time, exactly like LazyDfaSession::
// BuildTransition, but breadth-first over the whole reachable set.
class AotBuilder {
 public:
  AotBuilder(const FusedTagger& fused, uint32_t max_states)
      : fused_(fused),
        max_states_(max_states),
        scratch_(&fused),
        num_classes_(fused.NumByteClasses()) {
    // Build steps must never count toward hot-path attribution: every
    // emission they produce is replayed (and counted) at run time.
    scratch_.attr_on_ = false;
  }

  AotDfa Build() {
    if (max_states_ == 0) return std::move(out_);
    // State 0: the stream-start configuration — no live positions, start
    // tokens armed unless in scan mode, no pending byte (the construction
    // LazyDfaSession::Reset interns, so a fresh session resolves to it).
    tmp_state_.clear();
    tmp_armed_.clear();
    if (fused_.options().EffectiveArmMode() != ArmMode::kScan) {
      tmp_armed_.assign(fused_.start_first_.begin(), fused_.start_first_.end());
      std::sort(tmp_armed_.begin(), tmp_armed_.end(),
                [](const WordBits& a, const WordBits& b) {
                  return a.word < b.word;
                });
    }
    InternOrReject(tmp_state_, tmp_armed_, false, -1);

    // The states vector doubles as the BFS queue: ids are appended in
    // discovery order and every id's full class row is expanded once.
    for (size_t id = 0; id < out_.states.size(); ++id) {
      for (size_t cls = 0; cls < num_classes_; ++cls) {
        Expand(static_cast<int32_t>(id), static_cast<uint8_t>(cls));
      }
    }
    return std::move(out_);
  }

 private:
  void Expand(int32_t id, uint8_t cls) {
    const DfaStateInfo info = out_.states[static_cast<size_t>(id)];
    const WordBits* snap = out_.snap_pool.data() + info.snap_begin;
    tmp_state_.clear();
    tmp_armed_.clear();
    tmp_emit_.clear();
    bool next_prev_delim;
    if (info.pending_cls < 0) {
      // Absorb: the input byte becomes the pending look-ahead; the
      // machine configuration is untouched and nothing emits.
      tmp_state_.assign(snap, snap + info.num_state);
      tmp_armed_.assign(snap + info.num_state,
                        snap + info.num_state + info.num_armed);
      next_prev_delim = info.prev_delim != 0;
    } else {
      const ByteClassifier& classifier = fused_.classifier();
      scratch_.LoadConfig(snap, info.num_state, snap + info.num_state,
                          info.num_armed, info.prev_delim != 0);
      scratch_.pos_ = 0;
      scratch_.ProcessByte(
          classifier.Representative(static_cast<uint16_t>(info.pending_cls)),
          /*has_next=*/true, classifier.Representative(cls),
          [this](const Tag& t) {
            tmp_emit_.push_back(t.token);
            return true;
          });
      scratch_.SnapshotConfig(&tmp_state_, &tmp_armed_);
      next_prev_delim = scratch_.prev_was_delim_;
    }
    const int32_t next = InternOrReject(tmp_state_, tmp_armed_,
                                        next_prev_delim,
                                        static_cast<int16_t>(cls));
    if (next < 0) return;  // over budget: runtime overlay will build it
    DfaTrans tr;
    tr.next = next;
    tr.emit_begin = static_cast<uint32_t>(out_.emit_pool.size());
    tr.emit_count = static_cast<uint32_t>(tmp_emit_.size());
    out_.emit_pool.insert(out_.emit_pool.end(), tmp_emit_.begin(),
                          tmp_emit_.end());
    out_.trans[static_cast<size_t>(id) * num_classes_ + cls] = tr;
  }

  // Returns the id of an existing equal state, or interns a new one —
  // unless that would exceed the budget, in which case -1.
  int32_t InternOrReject(const std::vector<WordBits>& state,
                         const std::vector<WordBits>& armed, bool prev_delim,
                         int16_t pending_cls) {
    const uint8_t pd = prev_delim ? 1 : 0;
    const uint64_t h = HashDfaConfig(state.data(), state.size(), armed.data(),
                                     armed.size(), prev_delim, pending_cls);
    auto range = index_.equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      const DfaStateInfo& cand = out_.states[static_cast<size_t>(it->second)];
      if (cand.pending_cls == pending_cls && cand.prev_delim == pd &&
          cand.num_state == state.size() && cand.num_armed == armed.size() &&
          SameWordRun(out_.snap_pool.data() + cand.snap_begin, state.data(),
                      state.size()) &&
          SameWordRun(
              out_.snap_pool.data() + cand.snap_begin + cand.num_state,
              armed.data(), armed.size())) {
        return it->second;
      }
    }
    if (out_.states.size() >= max_states_) return -1;
    DfaStateInfo info;
    info.hash = h;
    info.snap_begin = static_cast<uint32_t>(out_.snap_pool.size());
    info.num_state = static_cast<uint32_t>(state.size());
    info.num_armed = static_cast<uint32_t>(armed.size());
    info.pending_cls = pending_cls;
    info.prev_delim = pd;
    out_.snap_pool.insert(out_.snap_pool.end(), state.begin(), state.end());
    out_.snap_pool.insert(out_.snap_pool.end(), armed.begin(), armed.end());
    const int32_t id = static_cast<int32_t>(out_.states.size());
    out_.states.push_back(info);
    out_.trans.resize(out_.trans.size() + num_classes_);
    index_.emplace(h, id);
    return id;
  }

  const FusedTagger& fused_;
  const uint32_t max_states_;
  FusedSession scratch_;
  const size_t num_classes_;
  AotDfa out_;
  std::unordered_multimap<uint64_t, int32_t> index_;
  std::vector<WordBits> tmp_state_, tmp_armed_;
  std::vector<int32_t> tmp_emit_;
};

AotDfa BuildAotDfa(const FusedTagger& fused, uint32_t max_states) {
  return AotBuilder(fused, max_states).Build();
}

}  // namespace cfgtag::tagger::artifact
