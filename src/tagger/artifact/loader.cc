#include "tagger/artifact/loader.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/resilience/budget.h"
#include "core/resilience/fault_injector.h"
#include "regex/regex_parser.h"
#include "tagger/dfa_state.h"

namespace cfgtag::tagger::artifact {
namespace {

// Owns everything a loaded tagger's views point into: the artifact bytes
// (mapping or aligned copy) and the grammar rebuilt from the blob. Shared
// as the taggers' backing_, so moving an engine out of LoadedTagger keeps
// both alive for its whole life.
struct Backing {
  std::shared_ptr<const void> bytes;
  std::unique_ptr<grammar::Grammar> grammar;
};

// Bounds-checked cursor over the grammar blob.
class BlobReader {
 public:
  BlobReader(const char* p, size_t n) : p_(p), n_(n) {}

  bool ReadU8(uint8_t* v) {
    if (n_ - off_ < 1) return false;
    *v = static_cast<uint8_t>(p_[off_++]);
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (n_ - off_ < 4) return false;
    std::memcpy(v, p_ + off_, 4);
    off_ += 4;
    return true;
  }
  bool ReadStr(std::string* s) {
    uint32_t len;
    if (!ReadU32(&len) || n_ - off_ < len) return false;
    s->assign(p_ + off_, len);
    off_ += len;
    return true;
  }
  bool AtEnd() const { return off_ == n_; }

 private:
  const char* p_;
  size_t n_;
  size_t off_ = 0;
};

StatusOr<std::unique_ptr<grammar::Grammar>> ParseGrammarBlob(const char* data,
                                                             size_t size) {
  auto fail = [] {
    return InvalidArgumentError("artifact: malformed grammar section");
  };
  BlobReader r(data, size);
  auto g = std::make_unique<grammar::Grammar>();
  uint32_t num_tokens;
  if (!r.ReadU32(&num_tokens)) return fail();
  for (uint32_t i = 0; i < num_tokens; ++i) {
    grammar::TokenDef def;
    uint8_t is_literal;
    if (!r.ReadStr(&def.name) || !r.ReadStr(&def.pattern) ||
        !r.ReadU8(&is_literal) || !r.ReadStr(&def.literal_text) ||
        is_literal > 1) {
      return fail();
    }
    def.is_literal = is_literal != 0;
    // The blob carries no AST: regexes are re-derived exactly the way
    // Grammar::AddToken / AddLiteralToken derive them at parse time.
    if (def.is_literal) {
      if (def.literal_text.empty()) return fail();
      def.regex = regex::RegexNode::FromString(def.literal_text);
    } else {
      CFGTAG_ASSIGN_OR_RETURN(auto re, regex::ParseRegex(def.pattern));
      def.regex = std::move(re);
    }
    g->AddTokenDef(std::move(def));
  }
  uint32_t num_nts;
  if (!r.ReadU32(&num_nts)) return fail();
  for (uint32_t i = 0; i < num_nts; ++i) {
    std::string name;
    if (!r.ReadStr(&name)) return fail();
    // AddNonterminal dedups by name; a blob with duplicate names would
    // shift indices and then fail Validate() below.
    g->AddNonterminal(name);
  }
  uint32_t num_prods;
  if (!r.ReadU32(&num_prods)) return fail();
  for (uint32_t i = 0; i < num_prods; ++i) {
    uint32_t lhs, rhs_len;
    if (!r.ReadU32(&lhs) || lhs >= num_nts || !r.ReadU32(&rhs_len) ||
        rhs_len > size) {
      return fail();
    }
    std::vector<grammar::Symbol> rhs;
    rhs.reserve(rhs_len);
    for (uint32_t k = 0; k < rhs_len; ++k) {
      uint8_t kind;
      uint32_t index;
      if (!r.ReadU8(&kind) || kind > 1 || !r.ReadU32(&index)) return fail();
      if (kind == 0 ? index >= num_tokens : index >= num_nts) return fail();
      rhs.push_back(kind == 0
                        ? grammar::Symbol::Terminal(static_cast<int32_t>(index))
                        : grammar::Symbol::Nonterminal(
                              static_cast<int32_t>(index)));
    }
    g->AddProduction(static_cast<int32_t>(lhs), std::move(rhs));
  }
  uint32_t start;
  if (!r.ReadU32(&start) || start >= num_nts || !r.AtEnd()) return fail();
  g->SetStart(static_cast<int32_t>(start));
  CFGTAG_RETURN_IF_ERROR(g->Validate());
  return g;
}

// The section directory after structural validation: one entry per kind,
// payload pointer already bounds-checked against the file.
struct Sections {
  struct View {
    const char* data = nullptr;
    uint64_t count = 0;
  };
  std::unordered_map<uint32_t, View> by_kind;

  const View* Find(uint32_t kind) const {
    auto it = by_kind.find(kind);
    return it == by_kind.end() ? nullptr : &it->second;
  }
};

uint32_t ExpectedElemSize(uint32_t kind) {
  switch (kind) {
    case kSecClassIsDelim:
    case kSecClassCanArm:
    case kSecGrammar:
      return 1;
    case kSecWordOffset:
    case kSecWordToken:
    case kSecRowOffset:
    case kSecArmOffset:
    case kSecAotEmit:
      return 4;
    case kSecClassMask:
    case kSecExtMask:
    case kSecAcceptMask:
    case kSecRowData:
      return 8;
    case kSecStartFirst:
    case kSecArmPattern:
    case kSecAotSnap:
      return sizeof(WordBits);
    case kSecAotStates:
      return sizeof(DfaStateInfo);
    case kSecAotTrans:
      return sizeof(DfaTrans);
    default:
      return 0;
  }
}

Status ValidateDirectory(const char* data, size_t size,
                         const ArtifactHeader& hdr, Sections* out) {
  const uint64_t dir_end = sizeof(ArtifactHeader) +
                           uint64_t{hdr.num_sections} * sizeof(SectionEntry);
  if (hdr.num_sections > 64 || dir_end > size) {
    return InvalidArgumentError("artifact: section directory out of bounds");
  }
  for (uint32_t i = 0; i < hdr.num_sections; ++i) {
    SectionEntry e;
    std::memcpy(&e, data + sizeof(ArtifactHeader) + i * sizeof(SectionEntry),
                sizeof(e));
    const uint32_t elem = ExpectedElemSize(e.kind);
    if (elem == 0 || e.elem_size != elem) {
      return InvalidArgumentError("artifact: unknown section kind or size");
    }
    if ((e.offset & 7) != 0) {
      return InvalidArgumentError("artifact: misaligned section payload");
    }
    // Overflow-safe bounds: divide, never multiply.
    if (e.offset > size || e.count > (size - e.offset) / elem) {
      return OutOfRangeError("artifact: section payload out of bounds");
    }
    if (!out->by_kind.emplace(e.kind, Sections::View{data + e.offset, e.count})
             .second) {
      return InvalidArgumentError("artifact: duplicate section");
    }
  }
  return Status::Ok();
}

template <typename T>
TableView<T> AsView(const Sections::View& v) {
  return {reinterpret_cast<const T*>(v.data), static_cast<size_t>(v.count)};
}

}  // namespace

// Friend of FusedTagger (and, via Wrap, feeder of LazyDfaTagger): performs
// all cross-table validation, then binds a tagger's views into the mapped
// bytes without copying any table.
class Loader {
 public:
  static StatusOr<LoadedTagger> Load(std::shared_ptr<const void> owner,
                                     const char* data, size_t size) {
    // --- Header ---------------------------------------------------------
    if (size < sizeof(ArtifactHeader)) {
      return InvalidArgumentError("artifact: file shorter than header");
    }
    ArtifactHeader hdr;
    std::memcpy(&hdr, data, sizeof(hdr));
    if (std::memcmp(hdr.magic, kArtifactMagic, sizeof(kArtifactMagic)) != 0) {
      return InvalidArgumentError("artifact: bad magic");
    }
    if (hdr.version != kFormatVersion) {
      return InvalidArgumentError("artifact: unsupported format version");
    }
    if (hdr.endian_tag != kEndianTag) {
      return InvalidArgumentError("artifact: endianness mismatch");
    }
    if (hdr.file_bytes != size) {
      return InvalidArgumentError("artifact: truncated or padded file");
    }
    if (ArtifactChecksum(data, size) != hdr.checksum) {
      return InvalidArgumentError("artifact: checksum mismatch");
    }
    if (hdr.backend != kArtifactFused && hdr.backend != kArtifactLazyDfa) {
      return InvalidArgumentError("artifact: unknown backend");
    }
    if (hdr.arm_mode > static_cast<uint8_t>(ArmMode::kResync) ||
        hdr.longest_match > 1) {
      return InvalidArgumentError("artifact: bad option byte");
    }
    if (hdr.num_classes == 0 || hdr.num_classes > 256 ||
        hdr.num_tokens == 0 || hdr.num_words == 0) {
      return InvalidArgumentError("artifact: degenerate table shape");
    }
    for (int b = 0; b < 256; ++b) {
      if (hdr.class_of[b] >= hdr.num_classes) {
        return OutOfRangeError("artifact: byte class out of range");
      }
    }
    // Every class must actually occur so Representative() is defined.
    {
      std::vector<uint8_t> seen(hdr.num_classes, 0);
      for (int b = 0; b < 256; ++b) seen[hdr.class_of[b]] = 1;
      for (uint32_t c = 0; c < hdr.num_classes; ++c) {
        if (!seen[c]) {
          return InvalidArgumentError("artifact: empty byte class");
        }
      }
    }

    Sections secs;
    CFGTAG_RETURN_IF_ERROR(ValidateDirectory(data, size, hdr, &secs));

    // --- Required sections, shape cross-checks --------------------------
    auto need = [&](uint32_t kind, uint64_t count,
                    const char* what) -> StatusOr<Sections::View> {
      const Sections::View* v = secs.Find(kind);
      if (v == nullptr) {
        return InvalidArgumentError(std::string("artifact: missing section: ") +
                                    what);
      }
      if (v->count != count) {
        return InvalidArgumentError(
            std::string("artifact: wrong element count: ") + what);
      }
      return *v;
    };
    const uint64_t nt = hdr.num_tokens, nw = hdr.num_words,
                   nc = hdr.num_classes;
    CFGTAG_ASSIGN_OR_RETURN(auto sec_word_offset,
                            need(kSecWordOffset, nt + 1, "word_offset"));
    CFGTAG_ASSIGN_OR_RETURN(auto sec_word_token,
                            need(kSecWordToken, nw, "word_token"));
    CFGTAG_ASSIGN_OR_RETURN(auto sec_is_delim,
                            need(kSecClassIsDelim, nc, "class_is_delim"));
    CFGTAG_ASSIGN_OR_RETURN(auto sec_can_arm,
                            need(kSecClassCanArm, nc, "class_can_arm"));
    CFGTAG_ASSIGN_OR_RETURN(auto sec_class_mask,
                            need(kSecClassMask, nc * nw, "class_mask"));
    CFGTAG_ASSIGN_OR_RETURN(auto sec_ext_mask,
                            need(kSecExtMask, nc * nw, "ext_mask"));
    CFGTAG_ASSIGN_OR_RETURN(auto sec_accept,
                            need(kSecAcceptMask, nw, "accept_mask"));
    CFGTAG_ASSIGN_OR_RETURN(auto sec_row_offset,
                            need(kSecRowOffset, nw * 64, "row_offset"));
    const Sections::View* sec_row_data = secs.Find(kSecRowData);
    const Sections::View* sec_start_first = secs.Find(kSecStartFirst);
    const Sections::View* sec_arm_pattern = secs.Find(kSecArmPattern);
    const Sections::View* sec_grammar = secs.Find(kSecGrammar);
    if (sec_row_data == nullptr || sec_start_first == nullptr ||
        sec_arm_pattern == nullptr || sec_grammar == nullptr) {
      return InvalidArgumentError("artifact: missing section");
    }
    CFGTAG_ASSIGN_OR_RETURN(auto sec_arm_offset,
                            need(kSecArmOffset, nt + 1, "arm_offset"));

    const auto word_offset = AsView<uint32_t>(sec_word_offset);
    if (word_offset[0] != 0 || word_offset.back() != nw) {
      return OutOfRangeError("artifact: word_offset endpoints");
    }
    for (size_t t = 0; t < nt; ++t) {
      if (word_offset[t] > word_offset[t + 1]) {
        return OutOfRangeError("artifact: word_offset not monotonic");
      }
    }
    const auto word_token = AsView<int32_t>(sec_word_token);
    for (size_t w = 0; w < nw; ++w) {
      const int32_t t = word_token[w];
      if (t < 0 || static_cast<uint64_t>(t) >= nt ||
          w < word_offset[t] || w >= word_offset[t + 1]) {
        return OutOfRangeError("artifact: word_token inconsistent");
      }
    }
    // Every possible follow-row access stays inside row_data: for any
    // global bit of token t, the row spans t's word width.
    const auto row_offset = AsView<uint32_t>(sec_row_offset);
    for (size_t t = 0; t < nt; ++t) {
      const uint64_t width = word_offset[t + 1] - word_offset[t];
      for (uint64_t gb = uint64_t{word_offset[t]} * 64;
           gb < uint64_t{word_offset[t + 1]} * 64; ++gb) {
        if (uint64_t{row_offset[gb]} + width > sec_row_data->count) {
          return OutOfRangeError("artifact: follow row out of bounds");
        }
      }
    }
    const auto start_first = AsView<WordBits>(*sec_start_first);
    for (const WordBits& wb : start_first) {
      if (wb.word >= nw) {
        return OutOfRangeError("artifact: start_first word out of range");
      }
    }
    const auto arm_offset = AsView<uint32_t>(sec_arm_offset);
    if (arm_offset[0] != 0 || arm_offset.back() != sec_arm_pattern->count) {
      return OutOfRangeError("artifact: arm_offset endpoints");
    }
    for (size_t t = 0; t < nt; ++t) {
      if (arm_offset[t] > arm_offset[t + 1]) {
        return OutOfRangeError("artifact: arm_offset not monotonic");
      }
    }
    const auto arm_pattern = AsView<WordBits>(*sec_arm_pattern);
    for (const WordBits& wb : arm_pattern) {
      if (wb.word >= nw) {
        return OutOfRangeError("artifact: arm_pattern word out of range");
      }
    }

    // --- Grammar --------------------------------------------------------
    CFGTAG_ASSIGN_OR_RETURN(
        auto grammar,
        ParseGrammarBlob(sec_grammar->data,
                         static_cast<size_t>(sec_grammar->count)));
    if (grammar->NumTokens() != nt) {
      return InvalidArgumentError("artifact: grammar/table token mismatch");
    }

    // --- AOT region -----------------------------------------------------
    const Sections::View* sec_aot_states = secs.Find(kSecAotStates);
    std::shared_ptr<AotDfaTable> aot;
    if (hdr.aot_states > 0) {
      if (hdr.backend != kArtifactLazyDfa) {
        return InvalidArgumentError("artifact: AOT region on fused backend");
      }
      CFGTAG_ASSIGN_OR_RETURN(
          auto sec_states, need(kSecAotStates, hdr.aot_states, "aot_states"));
      CFGTAG_ASSIGN_OR_RETURN(
          auto sec_trans,
          need(kSecAotTrans, uint64_t{hdr.aot_states} * nc, "aot_trans"));
      const Sections::View* sec_snap = secs.Find(kSecAotSnap);
      const Sections::View* sec_emit = secs.Find(kSecAotEmit);
      if (sec_snap == nullptr || sec_emit == nullptr) {
        return InvalidArgumentError("artifact: missing AOT pool section");
      }
      const auto states = AsView<DfaStateInfo>(sec_states);
      const auto trans = AsView<DfaTrans>(sec_trans);
      const auto snap = AsView<WordBits>(*sec_snap);
      const auto emit = AsView<int32_t>(*sec_emit);
      for (const DfaStateInfo& s : states) {
        if (uint64_t{s.snap_begin} + s.num_state + s.num_armed > snap.size() ||
            s.pending_cls < -1 ||
            static_cast<int32_t>(s.pending_cls) >= static_cast<int32_t>(nc) ||
            s.prev_delim > 1) {
          return OutOfRangeError("artifact: AOT state out of bounds");
        }
      }
      for (const WordBits& wb : snap) {
        if (wb.word >= nw) {
          return OutOfRangeError("artifact: AOT snapshot word out of range");
        }
      }
      for (const DfaTrans& tr : trans) {
        if (tr.next < -1 ||
            static_cast<int64_t>(tr.next) >=
                static_cast<int64_t>(hdr.aot_states) ||
            uint64_t{tr.emit_begin} + tr.emit_count > emit.size()) {
          return OutOfRangeError("artifact: AOT transition out of bounds");
        }
      }
      for (const int32_t tok : emit) {
        if (tok < 0 || static_cast<uint64_t>(tok) >= nt) {
          return OutOfRangeError("artifact: AOT emission token out of range");
        }
      }
      aot = std::make_shared<AotDfaTable>();
      aot->states = states;
      aot->trans = trans;
      aot->snap_pool = snap;
      aot->emit_pool = emit;
      aot->num_classes = nc;
      aot->BuildIndex();
    } else if (sec_aot_states != nullptr || secs.Find(kSecAotTrans) ||
               secs.Find(kSecAotSnap) || secs.Find(kSecAotEmit)) {
      return InvalidArgumentError("artifact: unexpected AOT section");
    }

    // --- Reconstruct options and bind the tagger ------------------------
    TaggerOptions options;
    options.delimiters = regex::CharClass();
    for (int b = 0; b < 256; ++b) {
      if (hdr.delim_set[b >> 3] & (1u << (b & 7))) {
        options.delimiters.Set(static_cast<unsigned char>(b));
      }
    }
    options.arm_mode = static_cast<ArmMode>(hdr.arm_mode);
    options.anchored = true;  // arm_mode already holds the effective mode
    options.longest_match = hdr.longest_match != 0;
    options.backend = hdr.backend == kArtifactLazyDfa
                          ? TaggerBackend::kLazyDfa
                          : TaggerBackend::kFused;
    options.dfa_cache_bytes = hdr.dfa_cache_bytes;
    options.dfa_flush_fallback = hdr.dfa_flush_fallback;
    options.aot_state_budget = hdr.aot_states;

    auto backing = std::make_shared<Backing>();
    backing->bytes = std::move(owner);
    backing->grammar = std::move(grammar);

    FusedTagger t(backing->grammar.get(), options);
    t.num_tokens_ = static_cast<size_t>(nt);
    t.num_words_ = static_cast<size_t>(nw);
    t.meta_words_ = (t.num_words_ + 63) / 64;
    t.total_positions_ = hdr.total_positions;
    t.classifier_ =
        ByteClassifier::FromMap(hdr.class_of,
                                static_cast<uint16_t>(hdr.num_classes));
    t.word_offset_ = word_offset;
    t.word_token_ = word_token;
    t.class_is_delim_ = AsView<uint8_t>(sec_is_delim);
    t.class_can_arm_ = AsView<uint8_t>(sec_can_arm);
    t.class_mask_ = AsView<uint64_t>(sec_class_mask);
    t.ext_mask_ = AsView<uint64_t>(sec_ext_mask);
    t.accept_mask_ = AsView<uint64_t>(sec_accept);
    t.row_offset_ = row_offset;
    t.row_data_ = AsView<uint64_t>(*sec_row_data);
    t.start_first_ = start_first;
    t.arm_pattern_ = arm_pattern;
    t.arm_offset_ = arm_offset;
    t.delim_scanner_ = RunScanner::ForSet(options.delimiters);
    regex::CharClass arm_set;
    for (int b = 0; b < 256; ++b) {
      if (t.class_can_arm_[hdr.class_of[b]]) {
        arm_set.Set(static_cast<unsigned char>(b));
      }
    }
    t.arm_scanner_ = RunScanner::ForSet(arm_set);
    t.class_tables_ =
        simd::BuildClassTables(hdr.class_of, hdr.num_classes);
    t.session_pool_ = std::make_shared<FusedSessionPool>();
    t.backing_ = backing;

    LoadedTagger out;
    out.options = options;
    out.grammar_hash = hdr.grammar_hash;
    out.options_hash = hdr.options_hash;
    out.artifact_bytes = size;
    out.aot_states = hdr.aot_states;
    out.grammar = backing->grammar.get();
    if (hdr.backend == kArtifactLazyDfa) {
      if (aot != nullptr) aot->backing = backing;
      out.lazy = std::make_unique<LazyDfaTagger>(
          LazyDfaTagger::Wrap(std::move(t), std::move(aot)));
    } else {
      out.fused = std::make_unique<FusedTagger>(std::move(t));
    }
    return out;
  }
};

StatusOr<LoadedTagger> LoadFromMemory(std::string_view bytes) {
  // Copy into 8-aligned owned storage: string_view data carries no
  // alignment guarantee and the table views require natural alignment.
  auto copy = std::make_shared<std::vector<uint64_t>>((bytes.size() + 7) / 8);
  std::memcpy(copy->data(), bytes.data(), bytes.size());
  const char* data = reinterpret_cast<const char*>(copy->data());
  return Loader::Load(std::shared_ptr<const void>(copy, copy->data()), data,
                      bytes.size());
}

namespace {

namespace res = cfgtag::core::resilience;

// Opens `path` and charges its size against the process budget. On success
// *fd_out is an open descriptor (with a best-effort shared flock for the
// mmap path) and *size_out the fstat'd size; the caller owns releasing the
// budget charge and closing the descriptor.
Status OpenAndCharge(const std::string& path, bool lock, int* fd_out,
                     size_t* size_out) {
  if (res::FaultInjector::ShouldFail("artifact.open")) {
    return InternalError("artifact: open failed (fault injected) " + path);
  }
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return NotFoundError("artifact: cannot open " + path);
  }
  struct stat st;
  if (res::FaultInjector::ShouldFail("artifact.fstat") ||
      ::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return InternalError("artifact: cannot stat " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return InvalidArgumentError("artifact: empty file " + path);
  }
  if (lock) {
    // Best-effort shared lock, held for the mapping's lifetime: a
    // cooperating writer that takes LOCK_EX before truncating in place
    // cannot pull pages out from under a live mapping. Non-blocking and
    // advisory — failure (NFS, contention) just means no extra guard.
    (void)::flock(fd, LOCK_SH | LOCK_NB);
  }
  const Status charged =
      res::ResourceBudget::Process().TryCharge(size, "artifact");
  if (!charged.ok()) {
    ::close(fd);
    return charged.WithContext("artifact: load " + path);
  }
  *fd_out = fd;
  *size_out = size;
  return Status::Ok();
}

// Reads the whole artifact into 8-aligned owned storage via pread(2) and
// binds from the copy. The caller has already charged `size`; the returned
// tagger's backing releases it. Closes `fd` before returning either way.
StatusOr<LoadedTagger> LoadCopiedFromFd(int fd, size_t size,
                                        const std::string& path) {
  auto copy = std::make_shared<std::vector<uint64_t>>((size + 7) / 8);
  char* dst = reinterpret_cast<char*>(copy->data());
  size_t got = 0;
  while (got < size) {
    if (res::FaultInjector::ShouldFail("artifact.read")) {
      ::close(fd);
      res::ResourceBudget::Process().Release(size);
      return InternalError("artifact: read failed (fault injected) " + path);
    }
    const ssize_t n = ::pread(fd, dst + got, size - got,
                              static_cast<off_t>(got));
    if (n <= 0) {
      // A shrunken file surfaces here as a short read — a clean typed
      // error, never a SIGBUS, which is the whole point of this path.
      ::close(fd);
      res::ResourceBudget::Process().Release(size);
      return InternalError("artifact: short read on " + path);
    }
    got += static_cast<size_t>(n);
  }
  ::close(fd);
  std::shared_ptr<const void> owner(
      static_cast<const void*>(copy->data()),
      [copy, size](const void*) mutable {
        res::ResourceBudget::Process().Release(size);
        copy.reset();
      });
  return Loader::Load(std::move(owner), dst, size);
}

}  // namespace

StatusOr<LoadedTagger> LoadFromFile(const std::string& path) {
  int fd = -1;
  size_t size = 0;
  CFGTAG_RETURN_IF_ERROR(OpenAndCharge(path, /*lock=*/true, &fd, &size));
  void* map = MAP_FAILED;
  if (!res::FaultInjector::ShouldFail("artifact.mmap")) {
    map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  }
  if (map != MAP_FAILED) {
    // Re-verify the size on the same fd after mapping: a file truncated
    // between open and mmap would pass every header check (the early pages
    // may still be resident) and SIGBUS only later, on first fault-in of
    // the missing tail. Rejecting the shrink here turns that crash into a
    // typed error. A shrink after this point is covered by the advisory
    // flock for cooperating writers; see the SIGBUS contract in loader.h.
    struct stat st2;
    if (res::FaultInjector::ShouldFail("artifact.fstat") ||
        ::fstat(fd, &st2) != 0 ||
        static_cast<uint64_t>(st2.st_size) < size) {
      ::munmap(map, size);
      ::close(fd);
      res::ResourceBudget::Process().Release(size);
      return FailedPreconditionError(
          "artifact: file shrank after open (concurrent truncation?): " +
          path);
    }
    // The deleter owns the mapping, the budget charge, and the locked fd —
    // closing the fd last drops the flock only once no view can fault.
    std::shared_ptr<const void> owner(map, [size, fd](void* p) {
      ::munmap(p, size);
      res::ResourceBudget::Process().Release(size);
      ::close(fd);
    });
    const char* data = static_cast<const char*>(map);
    return Loader::Load(std::move(owner), data, size);
  }
  // mmap unavailable (exotic filesystem) or fault-forced: aligned copy.
  return LoadCopiedFromFd(fd, size, path);
}

StatusOr<LoadedTagger> LoadFromFileCopied(const std::string& path) {
  int fd = -1;
  size_t size = 0;
  CFGTAG_RETURN_IF_ERROR(OpenAndCharge(path, /*lock=*/false, &fd, &size));
  return LoadCopiedFromFd(fd, size, path);
}

}  // namespace cfgtag::tagger::artifact
