#include "tagger/artifact/format.h"

#include <cstring>

namespace cfgtag::tagger::artifact {

uint64_t ArtifactChecksum(const void* data, size_t size) {
  // Hash the prefix before the checksum field, a zero word in its place,
  // then the rest — equivalent to hashing a copy with the field zeroed,
  // without making the copy.
  const unsigned char* p = static_cast<const unsigned char*>(data);
  const size_t field = offsetof(ArtifactHeader, checksum);
  uint64_t h = kChecksumSeed;
  // The pre-field region (24 bytes) and the zeroed field are both 8-byte
  // multiples, so the word stream matches HashBytes64's chunking exactly.
  for (size_t i = 0; i < field; i += 8) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    h = HashMix64(h, w);
  }
  h = HashMix64(h, 0);
  size_t i = field + 8;
  for (; i + 8 <= size; i += 8) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    h = HashMix64(h, w);
  }
  if (i < size) {
    uint64_t w = 0;
    std::memcpy(&w, p + i, size - i);
    h = HashMix64(h, w);
  }
  return HashMix64(h, static_cast<uint64_t>(size));
}

}  // namespace cfgtag::tagger::artifact
