#include "tagger/artifact/writer.h"

#include <cstring>
#include <utility>
#include <vector>

#include "tagger/artifact/aot.h"
#include "tagger/dfa_state.h"

namespace cfgtag::tagger::artifact {
namespace {

void AppendBytes(std::string* out, const void* p, size_t n) {
  out->append(static_cast<const char*>(p), n);
}

template <typename T>
void AppendPod(std::string* out, const T& v) {
  AppendBytes(out, &v, sizeof(T));
}

void AppendStr(std::string* out, const std::string& s) {
  AppendPod(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

struct Section {
  uint32_t kind = 0;
  uint32_t elem_size = 0;
  uint64_t count = 0;
  std::string payload;
};

template <typename T>
void AddPodSection(std::vector<Section>* secs, uint32_t kind, const T* data,
                   size_t count) {
  Section s;
  s.kind = kind;
  s.elem_size = sizeof(T);
  s.count = count;
  s.payload.assign(reinterpret_cast<const char*>(data), count * sizeof(T));
  secs->push_back(std::move(s));
}

// WordBits has 4 bytes of internal padding after `word`; write the fields
// element-wise with an explicit zero pad so the file bytes are
// deterministic regardless of what the heap copy's padding held.
void AddWordBitsSection(std::vector<Section>* secs, uint32_t kind,
                        const WordBits* data, size_t count) {
  Section s;
  s.kind = kind;
  s.elem_size = sizeof(WordBits);
  s.count = count;
  s.payload.reserve(count * sizeof(WordBits));
  const char zero[4] = {0, 0, 0, 0};
  for (size_t i = 0; i < count; ++i) {
    AppendPod(&s.payload, data[i].word);
    AppendBytes(&s.payload, zero, 4);
    AppendPod(&s.payload, data[i].bits);
  }
  secs->push_back(std::move(s));
}

// Structural grammar snapshot in *original* token/nonterminal order (the
// table indices in every other section refer to it). Rebuilt — not
// pointer-fixed — by the loader: regexes are re-derived from pattern /
// literal_text, so the blob holds no AST.
std::string GrammarBlob(const grammar::Grammar& g) {
  std::string out;
  AppendPod(&out, static_cast<uint32_t>(g.NumTokens()));
  for (const auto& t : g.tokens()) {
    AppendStr(&out, t.name);
    AppendStr(&out, t.pattern);
    AppendPod(&out, static_cast<uint8_t>(t.is_literal ? 1 : 0));
    AppendStr(&out, t.literal_text);
  }
  AppendPod(&out, static_cast<uint32_t>(g.NumNonterminals()));
  for (const auto& n : g.nonterminals()) AppendStr(&out, n);
  AppendPod(&out, static_cast<uint32_t>(g.productions().size()));
  for (const auto& p : g.productions()) {
    AppendPod(&out, static_cast<uint32_t>(p.lhs));
    AppendPod(&out, static_cast<uint32_t>(p.rhs.size()));
    for (const auto& s : p.rhs) {
      AppendPod(&out, static_cast<uint8_t>(s.IsTerminal() ? 0 : 1));
      AppendPod(&out, static_cast<uint32_t>(s.index));
    }
  }
  AppendPod(&out, static_cast<uint32_t>(g.start()));
  return out;
}

}  // namespace

uint64_t OptionsHash(const TaggerOptions& options) {
  uint64_t h = 0x4346475441474f50ULL;  // "CFGTAGOP"
  for (int base = 0; base < 256; base += 64) {
    uint64_t w = 0;
    for (int b = 0; b < 64; ++b) {
      if (options.delimiters.Test(static_cast<unsigned char>(base + b))) {
        w |= uint64_t{1} << b;
      }
    }
    h = HashMix64(h, w);
  }
  h = HashMix64(h, static_cast<uint64_t>(options.EffectiveArmMode()));
  h = HashMix64(h, options.longest_match ? 1 : 0);
  h = HashMix64(h, static_cast<uint64_t>(options.backend));
  h = HashMix64(h, options.dfa_cache_bytes);
  h = HashMix64(h, options.dfa_flush_fallback);
  h = HashMix64(h, options.aot_state_budget);
  return h;
}

// Friend of FusedTagger: snapshots the private table views.
class Writer {
 public:
  static StatusOr<std::string> Run(const FusedTagger& f,
                                   const SerializeRequest& req) {
    if (req.backend != kArtifactFused && req.backend != kArtifactLazyDfa) {
      return InvalidArgumentError("artifact: unknown backend for serialize");
    }
    std::vector<Section> secs;
    AddPodSection(&secs, kSecWordOffset, f.word_offset_.data(),
                  f.word_offset_.size());
    AddPodSection(&secs, kSecWordToken, f.word_token_.data(),
                  f.word_token_.size());
    AddPodSection(&secs, kSecClassIsDelim, f.class_is_delim_.data(),
                  f.class_is_delim_.size());
    AddPodSection(&secs, kSecClassCanArm, f.class_can_arm_.data(),
                  f.class_can_arm_.size());
    AddPodSection(&secs, kSecClassMask, f.class_mask_.data(),
                  f.class_mask_.size());
    AddPodSection(&secs, kSecExtMask, f.ext_mask_.data(), f.ext_mask_.size());
    AddPodSection(&secs, kSecAcceptMask, f.accept_mask_.data(),
                  f.accept_mask_.size());
    AddPodSection(&secs, kSecRowOffset, f.row_offset_.data(),
                  f.row_offset_.size());
    AddPodSection(&secs, kSecRowData, f.row_data_.data(), f.row_data_.size());
    AddWordBitsSection(&secs, kSecStartFirst, f.start_first_.data(),
                       f.start_first_.size());
    AddPodSection(&secs, kSecArmOffset, f.arm_offset_.data(),
                  f.arm_offset_.size());
    AddWordBitsSection(&secs, kSecArmPattern, f.arm_pattern_.data(),
                       f.arm_pattern_.size());
    const std::string grammar_blob = GrammarBlob(f.grammar());
    AddPodSection(&secs, kSecGrammar,
                  reinterpret_cast<const uint8_t*>(grammar_blob.data()),
                  grammar_blob.size());

    AotDfa aot;
    if (req.backend == kArtifactLazyDfa && req.aot_state_budget > 0) {
      aot = BuildAotDfa(f, req.aot_state_budget);
    }
    if (!aot.states.empty()) {
      // DfaStateInfo / DfaTrans have no internal padding holes (the one
      // pad byte is an explicit zero-initialized field), so the in-memory
      // arrays are already the serialized form.
      AddPodSection(&secs, kSecAotStates, aot.states.data(),
                    aot.states.size());
      AddPodSection(&secs, kSecAotTrans, aot.trans.data(), aot.trans.size());
      AddWordBitsSection(&secs, kSecAotSnap, aot.snap_pool.data(),
                         aot.snap_pool.size());
      AddPodSection(&secs, kSecAotEmit, aot.emit_pool.data(),
                    aot.emit_pool.size());
    }

    ArtifactHeader hdr;
    std::memset(&hdr, 0, sizeof(hdr));
    std::memcpy(hdr.magic, kArtifactMagic, sizeof(kArtifactMagic));
    hdr.version = kFormatVersion;
    hdr.endian_tag = kEndianTag;
    hdr.grammar_hash = req.grammar_hash;
    hdr.options_hash = req.options_hash;
    hdr.backend = static_cast<uint8_t>(req.backend);
    hdr.arm_mode = static_cast<uint8_t>(f.options().EffectiveArmMode());
    hdr.longest_match = f.options().longest_match ? 1 : 0;
    hdr.num_classes = static_cast<uint32_t>(f.NumByteClasses());
    hdr.num_tokens = static_cast<uint32_t>(f.num_tokens_);
    hdr.num_words = static_cast<uint32_t>(f.num_words_);
    hdr.total_positions = static_cast<uint32_t>(f.total_positions_);
    hdr.dfa_flush_fallback = f.options().dfa_flush_fallback;
    hdr.dfa_cache_bytes = f.options().dfa_cache_bytes;
    hdr.aot_states = static_cast<uint32_t>(aot.states.size());
    hdr.num_sections = static_cast<uint32_t>(secs.size());
    std::memcpy(hdr.class_of, f.classifier().class_map(), 256);
    for (int b = 0; b < 256; ++b) {
      if (f.options().delimiters.Test(static_cast<unsigned char>(b))) {
        hdr.delim_set[b >> 3] |= static_cast<uint8_t>(1u << (b & 7));
      }
    }

    // Lay out: header, directory, then 8-aligned payloads.
    uint64_t offset = sizeof(ArtifactHeader) + secs.size() * sizeof(SectionEntry);
    std::vector<SectionEntry> dir(secs.size());
    for (size_t i = 0; i < secs.size(); ++i) {
      offset = (offset + 7) & ~uint64_t{7};
      dir[i].kind = secs[i].kind;
      dir[i].elem_size = secs[i].elem_size;
      dir[i].offset = offset;
      dir[i].count = secs[i].count;
      offset += secs[i].payload.size();
    }
    const uint64_t total = (offset + 7) & ~uint64_t{7};
    hdr.file_bytes = total;

    std::string out;
    out.reserve(total);
    AppendBytes(&out, &hdr, sizeof(hdr));
    for (const auto& e : dir) AppendBytes(&out, &e, sizeof(e));
    for (size_t i = 0; i < secs.size(); ++i) {
      out.resize(dir[i].offset, '\0');  // alignment padding
      out.append(secs[i].payload);
    }
    out.resize(total, '\0');

    const uint64_t checksum = ArtifactChecksum(out.data(), out.size());
    std::memcpy(out.data() + offsetof(ArtifactHeader, checksum), &checksum,
                sizeof(checksum));
    return out;
  }
};

StatusOr<std::string> SerializeTagger(const FusedTagger& fused,
                                      const SerializeRequest& req) {
  return Writer::Run(fused, req);
}

}  // namespace cfgtag::tagger::artifact
