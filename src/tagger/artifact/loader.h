#ifndef CFGTAG_TAGGER_ARTIFACT_LOADER_H_
#define CFGTAG_TAGGER_ARTIFACT_LOADER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "grammar/grammar.h"
#include "tagger/artifact/format.h"
#include "tagger/fused_model.h"
#include "tagger/lazy_dfa.h"

namespace cfgtag::tagger::artifact {

// A tagger reconstructed from an artifact. Exactly one of `fused` / `lazy`
// is set, per the backend the artifact was serialized for. The tagger's
// backing keeps both the mapped bytes and the rebuilt grammar alive, so
// the engines can be moved out and used on their own; `grammar` is an
// observer into that backing.
struct LoadedTagger {
  TaggerOptions options;  // reconstructed; backend = the artifact's engine
  uint64_t grammar_hash = 0;
  uint64_t options_hash = 0;
  size_t artifact_bytes = 0;
  uint32_t aot_states = 0;
  const grammar::Grammar* grammar = nullptr;
  std::unique_ptr<FusedTagger> fused;
  std::unique_ptr<LazyDfaTagger> lazy;
};

// Validates and binds an artifact already in memory. The bytes are copied
// once into 8-aligned owned storage (a string_view carries no alignment
// guarantee); every table view then points into that copy.
StatusOr<LoadedTagger> LoadFromMemory(std::string_view bytes);

// mmap(2)s the file read-only and binds the tagger's tables straight into
// the mapping — the zero-copy path: no table is deserialized, allocated,
// or touched until the engine reads it, and the page cache shares one copy
// across processes. Falls back to a plain read when mmap is unavailable.
//
// Every load fully validates the header (magic, version, endianness,
// size, checksum) and the section directory (kinds, element sizes,
// alignment, overflow-checked bounds), then cross-checks the tables
// against each other, so a truncated, corrupt, or crafted file is
// rejected with a typed error — InvalidArgument for malformed structure,
// OutOfRange for out-of-bounds offsets — never loaded.
//
// SIGBUS contract. A mapping over a file that later *shrinks* faults on
// access to the vanished tail — no userspace check can fully prevent it.
// The load narrows the window to near zero: the size is re-fstat'd on the
// same descriptor after mmap (a shrink between open and map is rejected
// as FailedPrecondition), and a shared flock(2) is held for the mapping's
// lifetime so cooperating writers (anything taking LOCK_EX before an
// in-place truncate) block until the last view is gone. Writers that
// replace artifacts atomically (write temp + rename, as AtomicWriteFile
// does) never trigger the hazard at all — the mapping keeps the old
// inode. Against a hostile or non-cooperating in-place truncator, use
// LoadFromFileCopied. The artifact's size is charged against
// core::resilience::ResourceBudget::Process() for the backing's lifetime;
// a load that would exceed the configured ceiling fails with
// ResourceExhausted instead of mapping.
StatusOr<LoadedTagger> LoadFromFile(const std::string& path);

// Like LoadFromFile but never maps: the artifact is pread(2) into owned
// aligned memory and validated from the copy. Immune to SIGBUS from
// concurrent truncation by construction (a shrink mid-read surfaces as a
// short-read error), at the cost of one up-front copy and no page-cache
// sharing across processes. The escape hatch for artifacts on media that
// other processes may truncate in place.
StatusOr<LoadedTagger> LoadFromFileCopied(const std::string& path);

}  // namespace cfgtag::tagger::artifact

#endif  // CFGTAG_TAGGER_ARTIFACT_LOADER_H_
