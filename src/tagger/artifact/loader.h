#ifndef CFGTAG_TAGGER_ARTIFACT_LOADER_H_
#define CFGTAG_TAGGER_ARTIFACT_LOADER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "grammar/grammar.h"
#include "tagger/artifact/format.h"
#include "tagger/fused_model.h"
#include "tagger/lazy_dfa.h"

namespace cfgtag::tagger::artifact {

// A tagger reconstructed from an artifact. Exactly one of `fused` / `lazy`
// is set, per the backend the artifact was serialized for. The tagger's
// backing keeps both the mapped bytes and the rebuilt grammar alive, so
// the engines can be moved out and used on their own; `grammar` is an
// observer into that backing.
struct LoadedTagger {
  TaggerOptions options;  // reconstructed; backend = the artifact's engine
  uint64_t grammar_hash = 0;
  uint64_t options_hash = 0;
  size_t artifact_bytes = 0;
  uint32_t aot_states = 0;
  const grammar::Grammar* grammar = nullptr;
  std::unique_ptr<FusedTagger> fused;
  std::unique_ptr<LazyDfaTagger> lazy;
};

// Validates and binds an artifact already in memory. The bytes are copied
// once into 8-aligned owned storage (a string_view carries no alignment
// guarantee); every table view then points into that copy.
StatusOr<LoadedTagger> LoadFromMemory(std::string_view bytes);

// mmap(2)s the file read-only and binds the tagger's tables straight into
// the mapping — the zero-copy path: no table is deserialized, allocated,
// or touched until the engine reads it, and the page cache shares one copy
// across processes. Falls back to a plain read when mmap is unavailable.
//
// Every load fully validates the header (magic, version, endianness,
// size, checksum) and the section directory (kinds, element sizes,
// alignment, overflow-checked bounds), then cross-checks the tables
// against each other, so a truncated, corrupt, or crafted file is
// rejected with a typed error — InvalidArgument for malformed structure,
// OutOfRange for out-of-bounds offsets — never loaded.
StatusOr<LoadedTagger> LoadFromFile(const std::string& path);

}  // namespace cfgtag::tagger::artifact

#endif  // CFGTAG_TAGGER_ARTIFACT_LOADER_H_
