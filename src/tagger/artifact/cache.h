#ifndef CFGTAG_TAGGER_ARTIFACT_CACHE_H_
#define CFGTAG_TAGGER_ARTIFACT_CACHE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "obs/metrics.h"

namespace cfgtag::tagger::artifact {

// Content-addressed compile cache: one artifact file per (canonical
// grammar hash, options hash) pair under a user-chosen directory. The key
// is pure content — grammar::CanonicalHash is invariant under token /
// production reordering, so textually shuffled but equivalent grammars
// share an entry (note: a hit returns the *cached* grammar's token-id
// order; see docs/artifact_cache.md).

// "<dir>/<grammar_hash>-<options_hash>.cfgtag" with zero-padded hex hashes.
std::string CachePath(const std::string& dir, uint64_t grammar_hash,
                      uint64_t options_hash);

// Writes atomically: a unique temp file in `dir` then rename(2), so a
// concurrent reader either sees a complete artifact or none, and a crash
// never leaves a half-written entry under the final name.
Status AtomicWriteFile(const std::string& path, std::string_view bytes);

// Process-wide artifact metrics (cfgtag_artifact_* family).
struct ArtifactMetrics {
  obs::Counter* cache_hits;       // cfgtag_artifact_cache_hits_total
  obs::Counter* cache_misses;     // cfgtag_artifact_cache_misses_total
  obs::Histogram* load_seconds;   // cfgtag_artifact_load_seconds
  obs::Gauge* bytes;              // cfgtag_artifact_bytes
  obs::Gauge* aot_states;         // cfgtag_artifact_aot_states

  static const ArtifactMetrics& Get();
};

}  // namespace cfgtag::tagger::artifact

#endif  // CFGTAG_TAGGER_ARTIFACT_CACHE_H_
