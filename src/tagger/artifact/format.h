#ifndef CFGTAG_TAGGER_ARTIFACT_FORMAT_H_
#define CFGTAG_TAGGER_ARTIFACT_FORMAT_H_

#include <cstddef>
#include <cstdint>

#include "common/hash.h"

namespace cfgtag::tagger::artifact {

// ---------------------------------------------------------------------------
// Compiled-tagger artifact: a versioned, checksummed, relocatable flat
// binary holding every table a FusedTagger / LazyDfaTagger reads at run
// time, plus (for the lazy backend) an ahead-of-time determinized DFA
// region. All cross-references are *offsets from the start of the file*,
// never pointers, and every section payload is 8-byte aligned, so the file
// can be mmap'd read-only and the engine's table views bound straight into
// the mapping — no fix-ups, no per-load allocation of the hot tables, and
// one mapping shared by any number of processes.
//
// Layout:
//   ArtifactHeader                  (fixed size, holds the two 256-entry
//                                    byte tables inline)
//   SectionEntry[num_sections]      (the section directory)
//   ...payloads, 8-aligned...
//
// Versioning policy (docs/artifact_cache.md): the format carries a single
// monotonically increasing version; loaders accept exactly their own
// version (no forward/backward compat shims — an artifact is a cache
// entry, and the compiler that produced it is always available to rebuild
// it). Anything that changes table layout, the hash/mix primitive, the
// DFA state hashing, or byte-class assignment MUST bump kFormatVersion.
// ---------------------------------------------------------------------------

inline constexpr char kArtifactMagic[8] = {'C', 'F', 'G', 'T',
                                           'A', 'G', 'A', 'F'};
inline constexpr uint32_t kFormatVersion = 1;
// Written as a native uint32; a loader on the other endianness reads it
// permuted and rejects the file (the tables are native-endian throughout,
// so cross-endian loading is deliberately not supported).
inline constexpr uint32_t kEndianTag = 0x01020304;
inline constexpr uint64_t kChecksumSeed = 0x4346475441474353ULL;

// Section payload kinds. elem_size in the directory entry is the
// serialized element size and must match what the loader expects for the
// kind — a cheap structural check before any offset math.
enum SectionKind : uint32_t {
  kSecWordOffset = 1,    // uint32[num_tokens + 1]
  kSecWordToken = 2,     // int32[num_words]
  kSecClassIsDelim = 3,  // uint8[num_classes]
  kSecClassCanArm = 4,   // uint8[num_classes]
  kSecClassMask = 5,     // uint64[num_classes * num_words]
  kSecExtMask = 6,       // uint64[num_classes * num_words]
  kSecAcceptMask = 7,    // uint64[num_words]
  kSecRowOffset = 8,     // uint32[num_words * 64]
  kSecRowData = 9,       // uint64[]
  kSecStartFirst = 10,   // WordBits[]
  kSecArmOffset = 11,    // uint32[num_tokens + 1]
  kSecArmPattern = 12,   // WordBits[]
  kSecGrammar = 13,      // structural grammar blob, uint8[]
  kSecAotStates = 14,    // DfaStateInfo[aot_states]
  kSecAotTrans = 15,     // DfaTrans[aot_states * num_classes]
  kSecAotSnap = 16,      // WordBits[]
  kSecAotEmit = 17,      // int32[]
};

// Backend the artifact was serialized for (the engine its tables feed).
enum ArtifactBackend : uint8_t {
  kArtifactFused = 1,
  kArtifactLazyDfa = 2,
};

struct SectionEntry {
  uint32_t kind = 0;
  uint32_t elem_size = 0;
  uint64_t offset = 0;  // absolute byte offset from the start of the file
  uint64_t count = 0;   // number of elements
};
static_assert(sizeof(SectionEntry) == 24, "section directory is serialized");

struct ArtifactHeader {
  char magic[8];
  uint32_t version;
  uint32_t endian_tag;
  uint64_t file_bytes;  // total file size; must match exactly
  uint64_t checksum;    // HashBytes64 of the whole file with this field 0
  uint64_t grammar_hash;  // grammar::CanonicalHash of the source grammar
  uint64_t options_hash;  // hash of the TaggerOptions that shaped the tables
  uint8_t backend;        // ArtifactBackend
  uint8_t arm_mode;       // tagger::ArmMode
  uint8_t longest_match;
  uint8_t reserved0;
  uint32_t num_classes;
  uint32_t num_tokens;
  uint32_t num_words;
  uint32_t total_positions;
  uint32_t dfa_flush_fallback;
  uint64_t dfa_cache_bytes;
  uint32_t aot_states;  // baked DFA states (0 = no AOT region)
  uint32_t num_sections;
  uint8_t class_of[256];  // byte -> class id
  uint8_t delim_set[32];  // delimiter byte set, bit b of word b/8
};
static_assert(sizeof(ArtifactHeader) == 376, "header layout is the format");
static_assert(offsetof(ArtifactHeader, checksum) == 24,
              "checksum field offset is baked into Checksum()");

// Whole-buffer checksum with the header's checksum field treated as zero.
// `data` must hold at least sizeof(ArtifactHeader) bytes.
uint64_t ArtifactChecksum(const void* data, size_t size);

}  // namespace cfgtag::tagger::artifact

#endif  // CFGTAG_TAGGER_ARTIFACT_FORMAT_H_
