#include "tagger/artifact/cache.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "core/resilience/fault_injector.h"

namespace cfgtag::tagger::artifact {
namespace {

std::string Hex16(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string CachePath(const std::string& dir, uint64_t grammar_hash,
                      uint64_t options_hash) {
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += Hex16(grammar_hash);
  path += '-';
  path += Hex16(options_hash);
  path += ".cfgtag";
  return path;
}

Status AtomicWriteFile(const std::string& path, std::string_view bytes) {
  if (core::resilience::FaultInjector::ShouldFail("artifact.store")) {
    return InternalError("artifact: store failed (fault injected) " + path);
  }
  // Temp file in the same directory so the rename stays within one
  // filesystem (rename across devices is a copy, not atomic).
  std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return InternalError("artifact: cannot create " + tmp);
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return InternalError("artifact: short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return InternalError("artifact: cannot rename into " + path);
  }
  return Status::Ok();
}

const ArtifactMetrics& ArtifactMetrics::Get() {
  static const ArtifactMetrics* m = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    auto* out = new ArtifactMetrics;
    out->cache_hits =
        reg.GetCounter("cfgtag_artifact_cache_hits_total",
                       "Compile-cache lookups served from an artifact");
    out->cache_misses =
        reg.GetCounter("cfgtag_artifact_cache_misses_total",
                       "Compile-cache lookups that fell back to a compile");
    out->load_seconds =
        reg.GetHistogram("cfgtag_artifact_load_seconds",
                         "Wall time to map and validate an artifact");
    out->bytes = reg.GetGauge("cfgtag_artifact_bytes",
                              "Size of the last loaded artifact");
    out->aot_states = reg.GetGauge(
        "cfgtag_artifact_aot_states",
        "Baked DFA states in the last loaded artifact (0 = no AOT)");
    return out;
  }();
  return *m;
}

}  // namespace cfgtag::tagger::artifact
