#include "tagger/skip_scan.h"

#include <cstring>

namespace cfgtag::tagger {

namespace {

constexpr uint64_t kLow7 = 0x7f7f7f7f7f7f7f7fULL;
constexpr uint64_t kHigh = 0x8080808080808080ULL;

// 0x80 in exactly the lanes of `v` that are zero. Unlike the classic
// (v - 0x01..) & ~v & 0x80.. haszero trick, this form is exact per lane
// (no borrow propagation across lanes), which find-first semantics need.
inline uint64_t ZeroLanes(uint64_t v) {
  return ~(((v & kLow7) + kLow7) | v | kLow7);
}

inline uint64_t Broadcast(unsigned char c) {
  return 0x0101010101010101ULL * static_cast<uint64_t>(c);
}

inline uint64_t LoadWord(const char* p) {
  uint64_t w;
  std::memcpy(&w, p, sizeof(w));
  return w;
}

constexpr bool LittleEndian() {
#if defined(__BYTE_ORDER__) && defined(__ORDER_LITTLE_ENDIAN__)
  return __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__;
#else
  return false;
#endif
}

}  // namespace

RunScanner::RunScanner() {
  std::memset(in_set_, 0, sizeof(in_set_));
  std::memset(broadcast_, 0, sizeof(broadcast_));
}

RunScanner RunScanner::ForSet(const regex::CharClass& set) {
  RunScanner s;
  for (int b = 0; b < 256; ++b) {
    if (!set.Test(static_cast<unsigned char>(b))) continue;
    s.in_set_[b] = 1;
    if (s.num_values_ < kMaxSwarValues) {
      s.broadcast_[s.num_values_] = Broadcast(static_cast<unsigned char>(b));
      if (s.num_values_ == 0) s.single_ = static_cast<unsigned char>(b);
    }
    ++s.num_values_;
  }
  s.swar_ = LittleEndian() && s.num_values_ >= 1 &&
            s.num_values_ <= kMaxSwarValues;
  return s;
}

size_t RunScanner::FindFirstNotIn(const char* data, size_t n) const {
  size_t i = 0;
  if (swar_) {
    while (i + 8 <= n) {
      const uint64_t w = LoadWord(data + i);
      uint64_t in = 0;
      for (int k = 0; k < num_values_; ++k) {
        in |= ZeroLanes(w ^ broadcast_[k]);
      }
      const uint64_t out = ~in & kHigh;
      if (out) {
        return i + (static_cast<size_t>(__builtin_ctzll(out)) >> 3);
      }
      i += 8;
    }
  }
  while (i < n && in_set_[static_cast<unsigned char>(data[i])]) ++i;
  return i;
}

size_t RunScanner::FindFirstIn(const char* data, size_t n) const {
  if (num_values_ == 0) return n;
  if (num_values_ == 1) {
    const void* hit = std::memchr(data, single_, n);
    return hit == nullptr
               ? n
               : static_cast<size_t>(static_cast<const char*>(hit) - data);
  }
  size_t i = 0;
  if (swar_) {
    while (i + 8 <= n) {
      const uint64_t w = LoadWord(data + i);
      uint64_t in = 0;
      for (int k = 0; k < num_values_; ++k) {
        in |= ZeroLanes(w ^ broadcast_[k]);
      }
      if (in) {
        return i + (static_cast<size_t>(__builtin_ctzll(in)) >> 3);
      }
      i += 8;
    }
  }
  while (i < n && !in_set_[static_cast<unsigned char>(data[i])]) ++i;
  return i;
}

const SkipMetrics& SkipMetrics::Get() {
  static const SkipMetrics kMetrics = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    auto counter = [&reg](const char* kind) {
      return reg.GetCounter(
          std::string("cfgtag_skip_bytes_total{kind=\"") + kind + "\"}",
          "Bytes advanced by an idle fast-skip instead of stepping");
    };
    return SkipMetrics{counter("delimiter"), counter("anchored"),
                       counter("resync")};
  }();
  return kMetrics;
}

}  // namespace cfgtag::tagger
