#include "tagger/skip_scan.h"

#include <cstring>
#include <string>

namespace cfgtag::tagger {

const char* SkipStrategyName(SkipStrategy s) {
  switch (s) {
    case SkipStrategy::kNone:
      return "none";
    case SkipStrategy::kMemchr:
      return "memchr";
    case SkipStrategy::kSwar:
      return "swar";
    case SkipStrategy::kTable:
      return "table";
    case SkipStrategy::kSimd:
      return "simd";
  }
  return "unknown";
}

namespace {

constexpr bool LittleEndian() {
#if defined(__BYTE_ORDER__) && defined(__ORDER_LITTLE_ENDIAN__)
  return __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__;
#else
  return false;
#endif
}

}  // namespace

RunScanner::RunScanner() {
  static const bool kEmpty[256] = {};
  set_ = simd::BuildByteSet(kEmpty);
}

RunScanner RunScanner::ForSet(const regex::CharClass& set) {
  bool members[256];
  for (int b = 0; b < 256; ++b) {
    members[b] = set.Test(static_cast<unsigned char>(b));
  }
  RunScanner s;
  s.set_ = simd::BuildByteSet(members);
  return s;
}

SkipStrategy RunScanner::strategy() const {
  if (set_.num_values == 0) return SkipStrategy::kNone;
  if (set_.num_values == 1) return SkipStrategy::kMemchr;
  if (simd::Active().isa != simd::Isa::kScalar) return SkipStrategy::kSimd;
  if (LittleEndian() && set_.num_values <= 8) return SkipStrategy::kSwar;
  return SkipStrategy::kTable;
}

const SkipMetrics& SkipMetrics::Get() {
  static const SkipMetrics kMetrics = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    static const char* const kKindNames[SkipMetrics::kNumKinds] = {
        "delimiter", "anchored", "resync", "armed"};
    SkipMetrics m;
    for (int k = 0; k < SkipMetrics::kNumKinds; ++k) {
      for (int s = 0; s < kNumSkipStrategies; ++s) {
        m.counters[k][s] = reg.GetCounter(
            std::string("cfgtag_skip_bytes_total{kind=\"") + kKindNames[k] +
                "\",strategy=\"" +
                SkipStrategyName(static_cast<SkipStrategy>(s)) + "\"}",
            "Bytes advanced by an idle fast-skip instead of stepping");
      }
    }
    return m;
  }();
  return kMetrics;
}

}  // namespace cfgtag::tagger
