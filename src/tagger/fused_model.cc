#include "tagger/fused_model.h"

#include <algorithm>

#include "grammar/analysis.h"
#include "obs/attribution.h"
#include "regex/position_automaton.h"
#include "tagger/simd/dispatch.h"

namespace cfgtag::tagger {

namespace {

// Bytes classified per chunked-Feed block: small enough that the class-id
// scratch stays L1-resident alongside the fused state, large enough to
// amortize the vector classify's setup over the state loop.
constexpr size_t kClassifyBlock = 512;

inline size_t MetaWords(size_t words) { return (words + 63) / 64; }

inline bool MetaTest(const uint64_t* meta, size_t w) {
  return (meta[w >> 6] >> (w & 63)) & 1;
}

}  // namespace

StatusOr<FusedTagger> FusedTagger::Create(const grammar::Grammar* grammar,
                                          const TaggerOptions& options) {
  CFGTAG_ASSIGN_OR_RETURN(auto analysis, grammar::Analyze(*grammar));
  FusedTagger t(grammar, options);
  const size_t num_tokens = grammar->NumTokens();
  t.num_tokens_ = num_tokens;

  // All tables are built into a heap Storage block; the tagger's views are
  // bound to it at the end (the artifact loader binds the same views into
  // an mmap'd file instead).
  auto store = std::make_shared<Storage>();
  Storage& s = *store;

  // Per-token position automata are only needed at build time; everything
  // the per-byte step reads is baked into the fused tables below.
  std::vector<regex::PositionAutomaton> automata;
  automata.reserve(num_tokens);
  for (const grammar::TokenDef& def : grammar->tokens()) {
    automata.push_back(regex::PositionAutomaton::Build(*def.regex));
  }

  // Word-aligned fused layout (the FunctionalTagger word_offset_ scheme):
  // token t owns words [word_offset_[t], word_offset_[t+1]) exclusively.
  s.word_offset.assign(num_tokens + 1, 0);
  for (size_t tok = 0; tok < num_tokens; ++tok) {
    s.word_offset[tok + 1] =
        s.word_offset[tok] + static_cast<uint32_t>(automata[tok].NumWords());
    t.total_positions_ += automata[tok].NumPositions();
  }
  t.num_words_ = s.word_offset[num_tokens];
  t.meta_words_ = MetaWords(t.num_words_);
  s.word_token.assign(t.num_words_, 0);
  for (size_t tok = 0; tok < num_tokens; ++tok) {
    for (uint32_t w = s.word_offset[tok]; w < s.word_offset[tok + 1]; ++w) {
      s.word_token[w] = static_cast<int32_t>(tok);
    }
  }

  // Byte classes over every distinct character class the machine tests:
  // all position classes plus the delimiter set. Any two bytes in one
  // class take identical transitions everywhere, so per-class tables are
  // exact.
  std::vector<regex::CharClass> classes;
  classes.push_back(options.delimiters);
  for (const auto& pa : automata) {
    for (const regex::CharClass& cc : pa.positions) classes.push_back(cc);
  }
  t.classifier_ = ByteClassifier::Build(classes);
  const size_t num_classes = t.classifier_.NumClasses();
  s.class_is_delim.assign(num_classes, 0);
  for (size_t cls = 0; cls < num_classes; ++cls) {
    s.class_is_delim[cls] =
        options.delimiters.Test(
            t.classifier_.Representative(static_cast<uint16_t>(cls)))
            ? 1
            : 0;
  }

  const size_t nw = t.num_words_;
  auto set_global_bit = [&](std::vector<uint64_t>& v, size_t tok, uint32_t q) {
    const size_t gb = static_cast<size_t>(s.word_offset[tok]) * 64 + q;
    v[gb >> 6] |= 1ULL << (gb & 63);
  };

  // Per-class position masks and the global accept mask.
  s.class_mask.assign(num_classes * nw, 0);
  s.accept_mask.assign(nw, 0);
  for (size_t tok = 0; tok < num_tokens; ++tok) {
    const regex::PositionAutomaton& pa = automata[tok];
    for (uint32_t q = 0; q < pa.NumPositions(); ++q) {
      for (size_t cls = 0; cls < num_classes; ++cls) {
        if (pa.positions[q].Test(
                t.classifier_.Representative(static_cast<uint16_t>(cls)))) {
          const size_t gb = static_cast<size_t>(s.word_offset[tok]) * 64 + q;
          s.class_mask[cls * nw + (gb >> 6)] |= 1ULL << (gb & 63);
        }
      }
      if (pa.is_last[q]) set_global_bit(s.accept_mask, tok, q);
    }
  }

  // Follow rows, token-width wide, flattened. Global bit index of token
  // t's local position q is word_offset_[t]*64 + q (the layout is
  // word-aligned), so row_offset_ is indexed densely by global bit.
  s.row_offset.assign(nw * 64, 0);
  for (size_t tok = 0; tok < num_tokens; ++tok) {
    const regex::PositionAutomaton& pa = automata[tok];
    const size_t width = s.word_offset[tok + 1] - s.word_offset[tok];
    for (uint32_t q = 0; q < pa.NumPositions(); ++q) {
      const size_t gb = static_cast<size_t>(s.word_offset[tok]) * 64 + q;
      s.row_offset[gb] = static_cast<uint32_t>(s.row_data.size());
      const size_t base = s.row_data.size();
      s.row_data.resize(base + width, 0);
      for (uint32_t succ : pa.follow[q]) {
        s.row_data[base + succ / 64] |= 1ULL << (succ % 64);
      }
    }
  }

  // Look-ahead extension masks: accepting position p is set in
  // ext_mask_[cls] iff some follow(p) position consumes a byte of cls —
  // so the Fig. 7 suppression test per token collapses to
  // (state & accept & ext[next_cls]) != 0 over the token's words.
  s.ext_mask.assign(num_classes * nw, 0);
  for (size_t tok = 0; tok < num_tokens; ++tok) {
    const regex::PositionAutomaton& pa = automata[tok];
    const uint32_t ws = s.word_offset[tok];
    const size_t width = s.word_offset[tok + 1] - ws;
    for (uint32_t q = 0; q < pa.NumPositions(); ++q) {
      if (!pa.is_last[q]) continue;
      const size_t gb = static_cast<size_t>(ws) * 64 + q;
      const uint64_t* row = s.row_data.data() + s.row_offset[gb];
      for (size_t cls = 0; cls < num_classes; ++cls) {
        const uint64_t* cm = s.class_mask.data() + cls * nw + ws;
        bool extends = false;
        for (size_t v = 0; v < width; ++v) {
          if (row[v] & cm[v]) {
            extends = true;
            break;
          }
        }
        if (extends) s.ext_mask[cls * nw + (gb >> 6)] |= 1ULL << (gb & 63);
      }
    }
  }

  // Sparse injection patterns. A token's pattern is its first positions
  // placed at its global offset; start_first_ unions the start tokens',
  // arm_pattern_[t] unions t's Follow set's.
  auto append_first = [&](std::vector<WordBits>* out, int32_t tok) {
    const regex::PositionAutomaton& pa = automata[tok];
    const uint32_t ws = s.word_offset[tok];
    const size_t width = s.word_offset[tok + 1] - ws;
    std::vector<uint64_t> local(width, 0);
    for (uint32_t q : pa.first) local[q / 64] |= 1ULL << (q % 64);
    for (size_t v = 0; v < width; ++v) {
      if (local[v] == 0) continue;
      const uint32_t w = ws + static_cast<uint32_t>(v);
      // Merge with an existing entry for the same word if present (two
      // follow tokens can share... they cannot share words, but one call
      // site may append the same token twice via duplicate Follow sets;
      // Analyze dedups, so a linear check on the tail is enough).
      bool merged = false;
      for (WordBits& wb : *out) {
        if (wb.word == w) {
          wb.bits |= local[v];
          merged = true;
          break;
        }
      }
      if (!merged) out->push_back(WordBits{w, local[v]});
    }
  };

  for (int32_t start_tok : analysis.start_tokens) {
    append_first(&s.start_first, start_tok);
  }
  s.arm_offset.assign(num_tokens + 1, 0);
  for (size_t tok = 0; tok < num_tokens; ++tok) {
    std::vector<WordBits> pattern;
    for (int32_t f : analysis.follow_tok[tok]) {
      if (f != grammar::Analysis::kEndMarker) append_first(&pattern, f);
    }
    s.arm_pattern.insert(s.arm_pattern.end(), pattern.begin(),
                          pattern.end());
    s.arm_offset[tok + 1] = static_cast<uint32_t>(s.arm_pattern.size());
  }

  // Armed-byte prefilter tables: a class can arm iff it is not a delimiter
  // and its bytes hit some start token's first positions. When the machine
  // is fully idle in scan mode, bytes of non-arming classes change nothing
  // but the position and the delimiter flag, so whole runs of them are
  // skipped with a vector scan over the arming byte set.
  s.class_can_arm.assign(num_classes, 0);
  for (size_t cls = 0; cls < num_classes; ++cls) {
    if (s.class_is_delim[cls]) continue;
    const uint64_t* cm = s.class_mask.data() + cls * nw;
    for (const WordBits& wb : s.start_first) {
      if (cm[wb.word] & wb.bits) {
        s.class_can_arm[cls] = 1;
        break;
      }
    }
  }
  regex::CharClass arm_set;
  for (int b = 0; b < 256; ++b) {
    if (s.class_can_arm[t.classifier_.ClassOf(static_cast<unsigned char>(
            b))]) {
      arm_set.Set(static_cast<unsigned char>(b));
    }
  }

  t.delim_scanner_ = RunScanner::ForSet(options.delimiters);
  t.arm_scanner_ = RunScanner::ForSet(arm_set);
  t.class_tables_ =
      simd::BuildClassTables(t.classifier_.class_map(), num_classes);
  t.session_pool_ = std::make_shared<FusedSessionPool>();
  t.BindStorage(s);
  t.backing_ = std::move(store);
  return t;
}

void FusedTagger::BindStorage(const Storage& s) {
  auto bind = [](auto& view, const auto& vec) {
    view = {vec.data(), vec.size()};
  };
  bind(word_offset_, s.word_offset);
  bind(word_token_, s.word_token);
  bind(class_is_delim_, s.class_is_delim);
  bind(class_can_arm_, s.class_can_arm);
  bind(class_mask_, s.class_mask);
  bind(ext_mask_, s.ext_mask);
  bind(accept_mask_, s.accept_mask);
  bind(row_offset_, s.row_offset);
  bind(row_data_, s.row_data);
  bind(start_first_, s.start_first);
  bind(arm_pattern_, s.arm_pattern);
  bind(arm_offset_, s.arm_offset);
}

void FusedTagger::Run(std::string_view input, const TagSink& sink) const {
  FusedSessionPool::Handle session = session_pool_->Acquire(this);
  session->Feed(input, sink);
  session->Finish(sink);
}

std::vector<Tag> FusedTagger::TagAll(std::string_view input) const {
  std::vector<Tag> tags;
  Run(input, [&tags](const Tag& t) {
    tags.push_back(t);
    return true;
  });
  return tags;
}

// ------------------------------------------------------------ FusedSession

FusedSession::FusedSession(const FusedTagger* tagger) : tagger_(nullptr) {
  Rebind(tagger);
}

void FusedSession::Rebind(const FusedTagger* tagger) {
  if (tagger != tagger_) {
    // The old tagger may already be gone (pooled sessions outlive the
    // tagger that last used them), so unmerged attribution cannot be
    // resolved to token names any more — drop it rather than chase a
    // possibly dangling pointer.
    attr_dirty_ = false;
    std::fill(attr_matches_.begin(), attr_matches_.end(), 0);
    std::fill(attr_live_.begin(), attr_live_.end(), 0);
    tagger_ = tagger;
    if (state_.size() != tagger_->num_words_) {
      state_.assign(tagger_->num_words_, 0);
      next_.assign(tagger_->num_words_, 0);
      armed_first_.assign(tagger_->num_words_, 0);
    }
    if (state_meta_.size() != tagger_->meta_words_) {
      state_meta_.assign(tagger_->meta_words_, 0);
      next_meta_.assign(tagger_->meta_words_, 0);
      armed_meta_.assign(tagger_->meta_words_, 0);
    }
  }
  Reset();
}

void FusedSession::Reset() {
  FlushAttribution();
  attr_on_ = obs::AttributionTable::enabled();
  if (attr_on_ && (attr_matches_.size() != tagger_->num_tokens_ ||
                   attr_live_.size() != tagger_->num_words_)) {
    attr_matches_.assign(tagger_->num_tokens_, 0);
    attr_live_.assign(tagger_->num_words_, 0);
  }
  // Unmarked state/next words are never read, but armed_first_ words must
  // be zero wherever unmarked (the OR-accumulate invariant), and a full
  // zero of everything is the cheapest way to restore all invariants.
  std::fill(state_.begin(), state_.end(), 0);
  std::fill(next_.begin(), next_.end(), 0);
  std::fill(armed_first_.begin(), armed_first_.end(), 0);
  std::fill(state_meta_.begin(), state_meta_.end(), 0);
  std::fill(next_meta_.begin(), next_meta_.end(), 0);
  std::fill(armed_meta_.begin(), armed_meta_.end(), 0);
  armed_any_ = false;
  any_live_ = false;
  if (tagger_->options_.EffectiveArmMode() != ArmMode::kScan) {
    for (const WordBits& wb : tagger_->start_first_) {
      armed_first_[wb.word] |= wb.bits;
      armed_meta_[wb.word >> 6] |= 1ULL << (wb.word & 63);
      armed_any_ = true;
    }
  }
  prev_was_delim_ = false;
  has_pending_ = false;
  finished_ = false;
  stopped_ = false;
  pending_ = 0;
  pos_ = 0;
}

void FusedSession::ProcessByte(unsigned char c, bool has_next,
                               unsigned char next_c, const TagSink& sink) {
  const ByteClassifier& classifier = tagger_->classifier_;
  ProcessClass(classifier.ClassOf(c), has_next,
               has_next ? classifier.ClassOf(next_c) : uint8_t{0}, sink);
}

void FusedSession::ProcessClass(uint8_t cls, bool has_next, uint8_t next_cls,
                                const TagSink& sink) {
  const FusedTagger& t = *tagger_;
  const size_t nw = t.num_words_;
  const ArmMode mode = t.options_.EffectiveArmMode();
  const bool delim = t.class_is_delim_[cls] != 0;
  if (attr_on_) attr_dirty_ = true;

  uint64_t* next = next_.data();
  uint64_t* next_meta = next_meta_.data();
  std::fill(next_meta_.begin(), next_meta_.end(), 0);

  // OR `bits` into next[w], zeroing the word on first touch.
  auto touch_or = [&](size_t w, uint64_t bits) {
    const size_t mi = w >> 6;
    const uint64_t mb = 1ULL << (w & 63);
    if (next_meta[mi] & mb) {
      next[w] |= bits;
    } else {
      next_meta[mi] |= mb;
      next[w] = bits;
    }
  };

  // 1. Successors of live positions — word ops over marked words only.
  //    Every bit of word w belongs to word_token_[w], and its follow row
  //    spans just that token's words (width 1 for most tokens, making the
  //    inner loop a pure accumulate-and-OR on a single word).
  for (size_t mi = 0; mi < state_meta_.size(); ++mi) {
    uint64_t mbits = state_meta_[mi];
    while (mbits) {
      const size_t w = mi * 64 + static_cast<size_t>(__builtin_ctzll(mbits));
      mbits &= mbits - 1;
      uint64_t bits = state_[w];
      const int32_t tok = t.word_token_[w];
      const uint32_t ws = t.word_offset_[tok];
      const uint32_t we = t.word_offset_[tok + 1];
      if (we - ws == 1) {
        uint64_t acc = 0;
        const size_t base = w * 64;
        while (bits) {
          acc |= t.row_data_[t.row_offset_[base + static_cast<size_t>(
                                                     __builtin_ctzll(bits))]];
          bits &= bits - 1;
        }
        if (acc) touch_or(w, acc);
      } else {
        while (bits) {
          const size_t gb =
              w * 64 + static_cast<size_t>(__builtin_ctzll(bits));
          bits &= bits - 1;
          const uint64_t* row = t.row_data_.data() + t.row_offset_[gb];
          for (uint32_t v = ws; v < we; ++v) {
            if (row[v - ws]) touch_or(v, row[v - ws]);
          }
        }
      }
    }
  }

  // 2. Injection: pending arms, plus start tokens in scan/resync arming.
  if (!delim) {
    if (armed_any_) {
      for (size_t mi = 0; mi < armed_meta_.size(); ++mi) {
        uint64_t mbits = armed_meta_[mi];
        while (mbits) {
          const size_t w =
              mi * 64 + static_cast<size_t>(__builtin_ctzll(mbits));
          mbits &= mbits - 1;
          touch_or(w, armed_first_[w]);
        }
      }
    }
    if (mode == ArmMode::kScan ||
        (mode == ArmMode::kResync && prev_was_delim_)) {
      for (const WordBits& wb : t.start_first_) {
        touch_or(wb.word, wb.bits);
      }
    }
  }

  // 3. Single-pass class filter over the touched words; words filtered to
  //    zero drop out of the meta so later passes skip them.
  const uint64_t* cm = t.class_mask_.data() + static_cast<size_t>(cls) * nw;
  // Local copies keep the loop-invariant flag and array bases in registers
  // (member loads would re-read through `this` after the next[w] store).
  uint64_t any = 0;
  for (size_t mi = 0; mi < next_meta_.size(); ++mi) {
    uint64_t mbits = next_meta[mi];
    uint64_t kept = 0;
    while (mbits) {
      const uint64_t low = mbits & (~mbits + 1);
      const size_t w = mi * 64 + static_cast<size_t>(__builtin_ctzll(mbits));
      mbits ^= low;
      next[w] &= cm[w];
      if (next[w]) kept |= low;
      any |= next[w];
    }
    next_meta[mi] = kept;
  }

  // Live-word attribution is *sampled*: every 64th byte credits its kept
  // words with weight 64, in a separate rescan of the kept meta bits. A
  // post-pass (instead of instrumenting the filter loop above) keeps the
  // filter loop's codegen byte-identical whether attribution is on or
  // off, and testing pos_ before the flag gives both configurations the
  // same 63-in-64-not-taken branch here. The estimate stays unbiased over
  // runs longer than the stride, and byte 0 is always sampled, so short
  // streams still register.
  if ((pos_ & 63) == 0 && attr_on_) {
    uint64_t* const attr_live = attr_live_.data();
    for (size_t mi = 0; mi < next_meta_.size(); ++mi) {
      uint64_t mbits = next_meta[mi];
      while (mbits) {
        const size_t w = mi * 64 + static_cast<size_t>(__builtin_ctzll(mbits));
        mbits &= mbits - 1;
        attr_live[w] += 64;
      }
    }
  }

  // 4. Match extraction: accept-mask AND over live words, one emission per
  //    token (ascending word order == ascending token id, the contract
  //    shared with the cycle-accurate harness), Fig. 7 look-ahead folded
  //    in as the ext-mask AND.
  emitted_.clear();
  if (any) {
    const uint64_t* ext =
        (t.options_.longest_match && has_next)
            ? t.ext_mask_.data() + static_cast<size_t>(next_cls) * nw
            : nullptr;
    size_t skip_until = 0;
    for (size_t mi = 0; mi < next_meta_.size(); ++mi) {
      uint64_t mbits = next_meta[mi];
      while (mbits) {
        const size_t w =
            mi * 64 + static_cast<size_t>(__builtin_ctzll(mbits));
        mbits &= mbits - 1;
        if (w < skip_until) continue;
        if ((next[w] & t.accept_mask_[w]) == 0) continue;
        const int32_t tok = t.word_token_[w];
        const uint32_t ws = t.word_offset_[tok];
        const uint32_t we = t.word_offset_[tok + 1];
        skip_until = we;
        bool suppressed = false;
        if (ext != nullptr) {
          for (uint32_t v = ws; v < we && !suppressed; ++v) {
            if (MetaTest(next_meta, v) &&
                (next[v] & t.accept_mask_[v] & ext[v])) {
              suppressed = true;
            }
          }
        }
        if (!suppressed) {
          Tag tag;
          tag.token = tok;
          tag.end = pos_;
          if (!stopped_ && !sink(tag)) stopped_ = true;
          if (attr_on_) ++attr_matches_[static_cast<size_t>(tok)];
          emitted_.push_back(tok);
        }
      }
    }
  }

  // 5. Arms: consumed by a non-delimiter byte, survive delimiters; this
  //    byte's matches arm their Follow sets for the next byte — one OR of
  //    a precomputed word pattern per match.
  if (!delim && armed_any_) {
    for (size_t mi = 0; mi < armed_meta_.size(); ++mi) {
      uint64_t mbits = armed_meta_[mi];
      while (mbits) {
        const size_t w = mi * 64 + static_cast<size_t>(__builtin_ctzll(mbits));
        mbits &= mbits - 1;
        armed_first_[w] = 0;
      }
      armed_meta_[mi] = 0;
    }
    armed_any_ = false;
  }
  for (int32_t tok : emitted_) {
    const uint32_t begin = t.arm_offset_[tok];
    const uint32_t end = t.arm_offset_[tok + 1];
    for (uint32_t i = begin; i < end; ++i) {
      const WordBits& wb = t.arm_pattern_[i];
      armed_first_[wb.word] |= wb.bits;
      armed_meta_[wb.word >> 6] |= 1ULL << (wb.word & 63);
      armed_any_ = true;
    }
  }

  state_.swap(next_);
  state_meta_.swap(next_meta_);
  any_live_ = any != 0;
  prev_was_delim_ = delim;
  ++pos_;
}

void FusedSession::LoadConfig(const WordBits* state, size_t num_state,
                              const WordBits* armed, size_t num_armed,
                              bool prev_delim) {
  // Zero the currently marked armed words (the OR-accumulate invariant
  // requires unmarked words to be zero); state words are only read where
  // marked, so clearing their meta suffices.
  for (size_t mi = 0; mi < armed_meta_.size(); ++mi) {
    uint64_t mbits = armed_meta_[mi];
    while (mbits) {
      const size_t w = mi * 64 + static_cast<size_t>(__builtin_ctzll(mbits));
      mbits &= mbits - 1;
      armed_first_[w] = 0;
    }
    armed_meta_[mi] = 0;
  }
  std::fill(state_meta_.begin(), state_meta_.end(), 0);
  for (size_t k = 0; k < num_state; ++k) {
    state_[state[k].word] = state[k].bits;
    state_meta_[state[k].word >> 6] |= 1ULL << (state[k].word & 63);
  }
  for (size_t k = 0; k < num_armed; ++k) {
    armed_first_[armed[k].word] = armed[k].bits;
    armed_meta_[armed[k].word >> 6] |= 1ULL << (armed[k].word & 63);
  }
  any_live_ = num_state != 0;
  armed_any_ = num_armed != 0;
  prev_was_delim_ = prev_delim;
  has_pending_ = false;
  finished_ = false;
  stopped_ = false;
  pending_ = 0;
}

void FusedSession::SnapshotConfig(std::vector<WordBits>* state,
                                  std::vector<WordBits>* armed) const {
  for (size_t mi = 0; mi < state_meta_.size(); ++mi) {
    uint64_t mbits = state_meta_[mi];
    while (mbits) {
      const size_t w = mi * 64 + static_cast<size_t>(__builtin_ctzll(mbits));
      mbits &= mbits - 1;
      if (state_[w]) {
        state->push_back(WordBits{static_cast<uint32_t>(w), state_[w]});
      }
    }
  }
  for (size_t mi = 0; mi < armed_meta_.size(); ++mi) {
    uint64_t mbits = armed_meta_[mi];
    while (mbits) {
      const size_t w = mi * 64 + static_cast<size_t>(__builtin_ctzll(mbits));
      mbits &= mbits - 1;
      if (armed_first_[w]) {
        armed->push_back(WordBits{static_cast<uint32_t>(w), armed_first_[w]});
      }
    }
  }
}

void FusedSession::Feed(std::string_view chunk, const TagSink& sink) {
  if (finished_ || stopped_ || chunk.empty()) return;
  const char* data = chunk.data();
  const size_t n = chunk.size();
  const FusedTagger& t = *tagger_;
  const ArmMode mode = t.options_.EffectiveArmMode();
  const RunScanner& delim = t.delim_scanner_;
  const RunScanner& arm = t.arm_scanner_;
  const SkipMetrics& skips = SkipMetrics::Get();

  if (has_pending_) {
    ProcessByte(pending_, /*has_next=*/true,
                static_cast<unsigned char>(data[0]), sink);
    has_pending_ = false;
    if (stopped_) return;
  }

  size_t i = 0;
  while (i < n) {
    if (!any_live_) {
      // Idle fast paths: with an all-zero fused state, bytes that cannot
      // inject change nothing but the position and the delimiter flag, so
      // whole runs are skipped without stepping — and the run boundary is
      // found with a multi-byte vector/SWAR/memchr scan, not a per-byte
      // test.
      if (delim.Test(static_cast<unsigned char>(data[i]))) {
        // Delimiter run: no injection on delimiters, arms survive.
        const size_t j = i + 1 + delim.FindFirstNotIn(data + i + 1, n - i - 1);
        skips.Of(SkipMetrics::kDelimiter, delim.strategy())
            ->Increment(j - i);
        pos_ += j - i;
        prev_was_delim_ = true;
        i = j;
        continue;
      }
      if (!armed_any_ && mode == ArmMode::kAnchored) {
        // Dead stream: anchored arming can never re-inject. Positional, no
        // scan runs — strategy "none".
        skips.Of(SkipMetrics::kAnchored, SkipStrategy::kNone)
            ->Increment(n - i);
        pos_ += n - i;
        prev_was_delim_ = delim.Test(static_cast<unsigned char>(data[n - 1]));
        return;
      }
      if (!armed_any_ && mode == ArmMode::kResync && !prev_was_delim_) {
        // Mid-garbage in resync mode: start injection waits for the next
        // delimiter, so non-delimiter bytes are inert.
        const size_t j = i + 1 + delim.FindFirstIn(data + i + 1, n - i - 1);
        skips.Of(SkipMetrics::kResync, delim.strategy())->Increment(j - i);
        pos_ += j - i;
        prev_was_delim_ = false;
        i = j;
        continue;
      }
      if (!armed_any_ && mode == ArmMode::kScan &&
          !arm.Test(static_cast<unsigned char>(data[i]))) {
        // Armed-byte prefilter: fully idle in scan mode, bytes that cannot
        // start any token (the arming set is the non-delimiter bytes
        // intersecting some start token's first positions) only advance
        // the position and the delimiter flag. Delimiters never arm, so
        // the skipped run may mix garbage and delimiters; the flag is
        // recovered from the last skipped byte.
        const size_t j = i + 1 + arm.FindFirstIn(data + i + 1, n - i - 1);
        skips.Of(SkipMetrics::kArmed, arm.strategy())->Increment(j - i);
        pos_ += j - i;
        prev_was_delim_ = delim.Test(static_cast<unsigned char>(data[j - 1]));
        i = j;
        continue;
      }
    }
    const size_t avail = n - i;
    if (avail < 2) break;  // only the lagging look-ahead byte remains
    // Chunked translate-then-step: classify a block of raw bytes into a
    // dense class-id stream with one vectorized call, then run the state
    // loop over class ids only. The block loop hands control back to the
    // idle skips above exactly when one would fire (machine fully idle AND
    // the upcoming byte is skippable), so dead stretches are never
    // re-classified byte by byte, and live stretches never bounce back
    // out.
    const size_t block = std::min(avail, kClassifyBlock);
    if (cls_buf_.size() < block) cls_buf_.assign(kClassifyBlock, 0);
    simd::Active().classify(t.class_tables_, data + i, block,
                            cls_buf_.data());
    const uint8_t* cls = cls_buf_.data();
    size_t j = 0;
    while (j + 1 < block) {
      ProcessClass(cls[j], /*has_next=*/true, cls[j + 1], sink);
      if (stopped_) return;
      ++j;
      if (!any_live_) {
        const uint8_t nc = cls[j];
        if (t.class_is_delim_[nc] != 0) break;
        if (!armed_any_ &&
            (mode == ArmMode::kAnchored ||
             (mode == ArmMode::kResync && !prev_was_delim_) ||
             (mode == ArmMode::kScan && t.class_can_arm_[nc] == 0))) {
          break;
        }
      }
    }
    i += j;
  }
  if (i < n) {
    pending_ = static_cast<unsigned char>(data[i]);
    has_pending_ = true;
  }
}

void FusedSession::Finish(const TagSink& sink) {
  if (finished_) return;
  finished_ = true;
  if (!stopped_ && has_pending_) {
    ProcessByte(pending_, /*has_next=*/false, 0, sink);
    has_pending_ = false;
  }
  FlushAttribution();
}

void FusedSession::FlushAttribution() {
  if (!attr_dirty_) return;
  attr_dirty_ = false;
  const std::vector<grammar::TokenDef>& tokens = tagger_->grammar().tokens();
  obs::AttributionTable& table = obs::AttributionTable::Default();
  // Fold the per-word live counts onto their owning tokens (words are
  // never shared between tokens), then merge token rows in one pass.
  std::vector<uint64_t> live(attr_matches_.size(), 0);
  for (size_t w = 0; w < attr_live_.size(); ++w) {
    if (attr_live_[w] != 0) {
      live[static_cast<size_t>(tagger_->word_token_[w])] += attr_live_[w];
      attr_live_[w] = 0;
    }
  }
  for (size_t tok = 0; tok < attr_matches_.size(); ++tok) {
    if (attr_matches_[tok] == 0 && live[tok] == 0) continue;
    table.AddToken(tokens[tok].name, attr_matches_[tok], live[tok]);
    attr_matches_[tok] = 0;
  }
}

}  // namespace cfgtag::tagger
