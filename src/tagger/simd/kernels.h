#ifndef CFGTAG_TAGGER_SIMD_KERNELS_H_
#define CFGTAG_TAGGER_SIMD_KERNELS_H_

#include "tagger/simd/dispatch.h"

// Internal: the per-tier kernel tables. Declared extern here (and included
// by every definition TU) so the namespace-scope const objects get external
// linkage. Only the tiers the target architecture compiles are defined.

namespace cfgtag::tagger::simd {

extern const Kernels kScalarKernels;
#if defined(__x86_64__) || defined(__i386__)
extern const Kernels kSse2Kernels;
extern const Kernels kAvx2Kernels;
#endif
#if defined(__aarch64__)
extern const Kernels kNeonKernels;
#endif

}  // namespace cfgtag::tagger::simd

#endif  // CFGTAG_TAGGER_SIMD_KERNELS_H_
