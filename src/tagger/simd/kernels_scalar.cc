// Scalar kernel tier: the portable fallback every vector tier also calls
// for sub-vector buffers and loop tails. Strategy is picked per call from
// the set's population — memchr for one member, branch-free SWAR (8 input
// bytes per 64-bit word, exact per-lane zero test) for <= 8 members on
// little-endian hosts, a table loop otherwise.

#include <cstring>

#include "tagger/simd/kernels.h"

namespace cfgtag::tagger::simd {

namespace {

constexpr uint64_t kLow7 = 0x7f7f7f7f7f7f7f7fULL;
constexpr uint64_t kHigh = 0x8080808080808080ULL;

// 0x80 in exactly the lanes of `v` that are zero. Unlike the classic
// (v - 0x01..) & ~v & 0x80.. haszero trick, this form is exact per lane
// (no borrow propagation across lanes), which find-first semantics need.
inline uint64_t ZeroLanes(uint64_t v) {
  return ~(((v & kLow7) + kLow7) | v | kLow7);
}

inline uint64_t LoadWord(const char* p) {
  uint64_t w;
  std::memcpy(&w, p, sizeof(w));
  return w;
}

constexpr bool LittleEndian() {
#if defined(__BYTE_ORDER__) && defined(__ORDER_LITTLE_ENDIAN__)
  return __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__;
#else
  return false;
#endif
}

size_t ScalarFindFirstIn(const ByteSet& s, const char* data, size_t n) {
  if (s.num_values == 0) return n;
  if (s.num_values == 1) {
    const void* hit = std::memchr(data, s.single, n);
    return hit == nullptr
               ? n
               : static_cast<size_t>(static_cast<const char*>(hit) - data);
  }
  size_t i = 0;
  if (LittleEndian() && s.num_values <= 8) {
    while (i + 8 <= n) {
      const uint64_t w = LoadWord(data + i);
      uint64_t in = 0;
      for (int k = 0; k < s.num_values; ++k) {
        in |= ZeroLanes(w ^ s.broadcast[k]);
      }
      if (in) {
        return i + (static_cast<size_t>(__builtin_ctzll(in)) >> 3);
      }
      i += 8;
    }
  }
  while (i < n && !s.in_set[static_cast<unsigned char>(data[i])]) ++i;
  return i;
}

size_t ScalarFindFirstNotIn(const ByteSet& s, const char* data, size_t n) {
  size_t i = 0;
  if (LittleEndian() && s.num_values >= 1 && s.num_values <= 8) {
    while (i + 8 <= n) {
      const uint64_t w = LoadWord(data + i);
      uint64_t in = 0;
      for (int k = 0; k < s.num_values; ++k) {
        in |= ZeroLanes(w ^ s.broadcast[k]);
      }
      const uint64_t out = ~in & kHigh;
      if (out) {
        return i + (static_cast<size_t>(__builtin_ctzll(out)) >> 3);
      }
      i += 8;
    }
  }
  while (i < n && s.in_set[static_cast<unsigned char>(data[i])]) ++i;
  return i;
}

void ScalarClassify(const ClassTables& t, const char* data, size_t n,
                    uint8_t* out) {
  if (t.num_planes == 0) {
    std::memset(out, 0, n);
    return;
  }
  const uint8_t* map = t.map;
  size_t i = 0;
  // Unrolled by 8 to break the one-load-per-iteration dependence chain.
  for (; i + 8 <= n; i += 8) {
    out[i + 0] = map[static_cast<unsigned char>(data[i + 0])];
    out[i + 1] = map[static_cast<unsigned char>(data[i + 1])];
    out[i + 2] = map[static_cast<unsigned char>(data[i + 2])];
    out[i + 3] = map[static_cast<unsigned char>(data[i + 3])];
    out[i + 4] = map[static_cast<unsigned char>(data[i + 4])];
    out[i + 5] = map[static_cast<unsigned char>(data[i + 5])];
    out[i + 6] = map[static_cast<unsigned char>(data[i + 6])];
    out[i + 7] = map[static_cast<unsigned char>(data[i + 7])];
  }
  for (; i < n; ++i) out[i] = map[static_cast<unsigned char>(data[i])];
}

}  // namespace

const Kernels kScalarKernels = {Isa::kScalar, &ScalarFindFirstIn,
                                &ScalarFindFirstNotIn, &ScalarClassify};

}  // namespace cfgtag::tagger::simd
