#ifndef CFGTAG_TAGGER_SIMD_DISPATCH_H_
#define CFGTAG_TAGGER_SIMD_DISPATCH_H_

#include <cstddef>
#include <cstdint>

namespace cfgtag::tagger::simd {

// Runtime-dispatched vector kernels behind the tagger's byte-level hot
// paths: run scanning over arbitrary byte sets (the idle fast-skips) and
// chunked byte -> class-id translation (the fused engine's per-byte
// classifier, hoisted out of the state loop). The paper's hardware
// evaluates every character decoder in parallel each clock (§3.2); these
// kernels are the software analogue — one membership/classification
// evaluated across 16 or 32 input lanes per step.
//
// One kernel set is selected per process (CFGTAG_FORCE_SCALAR=1 pins the
// scalar tier, otherwise the best tier the CPU reports), and every tier
// produces byte-identical results — the differential fuzzer runs the full
// grammar x backend matrix under both scalar and vectorized dispatch.
enum class Isa : uint8_t {
  kScalar = 0,  // portable: memchr / SWAR word loop / table loop
  kSse2,        // 128-bit x86 tier (shuffle kernels use SSSE3 pshufb)
  kAvx2,        // 256-bit x86 tier
  kNeon,        // 128-bit aarch64 tier
};

inline constexpr int kNumIsas = 4;

const char* IsaName(Isa isa);

// Membership tables for one byte set, in every representation a kernel
// tier needs. Built once per RunScanner; all tables describe the same set.
struct ByteSet {
  // Truffle-style nibble decomposition (the Hyperscan "truffle" kernel,
  // which is exact for arbitrary sets, unlike the bucketed shufti
  // prefilter): shuf_clear[lo] holds bit (hi & 7) for every member byte
  // hi:lo with bit 7 clear, shuf_set[lo] the same for bytes with bit 7
  // set. A pshufb against each table — the second on input XOR 0x80, so
  // each lane picks exactly one half — ORs to a candidate mask that is
  // ANDed with 1 << (hi & 7) to decide membership per lane.
  alignas(16) uint8_t shuf_clear[16];
  alignas(16) uint8_t shuf_set[16];
  // Plain membership table: the scalar tier's table loop and every vector
  // tail read this.
  uint8_t in_set[256];
  // Broadcast patterns (member value repeated in every lane) for the
  // scalar tier's SWAR path, usable when num_values <= 8.
  uint64_t broadcast[8];
  int num_values = 0;
  unsigned char single = 0;  // the member byte when num_values == 1
};

// Builds every table from a 256-entry membership predicate.
ByteSet BuildByteSet(const bool members[256]);

// Byte -> class-id translation tables for the chunked classify kernel.
// The vector path decomposes the class id into bit-planes: plane k is the
// byte set { b : (map[b] >> k) & 1 } as truffle nibble tables, so a
// classify step evaluates num_planes exact memberships per lane and ORs
// (1 << k) for each hit — shuffle-based whenever the class count permits
// the nibble decomposition (<= 64 classes), the 256-entry table loop
// otherwise.
struct ClassTables {
  struct Plane {
    alignas(16) uint8_t shuf_clear[16];
    alignas(16) uint8_t shuf_set[16];
  };
  static constexpr int kMaxPlanes = 6;  // up to 64 classes vectorize

  uint8_t map[256];  // the scalar path and vector tails
  Plane planes[kMaxPlanes];
  // Bit-planes in use; 0 when one class covers every byte (classify is a
  // memset), -1 when the class count exceeds the vector budget (kernels
  // fall back to the scalar table loop).
  int num_planes = 0;
};

ClassTables BuildClassTables(const uint8_t map[256], size_t num_classes);

struct Kernels {
  Isa isa;
  // Index of the first byte of data[0, n) in / not in the set; n if none.
  size_t (*find_first_in)(const ByteSet& set, const char* data, size_t n);
  size_t (*find_first_not_in)(const ByteSet& set, const char* data, size_t n);
  // out[i] = map[data[i]] for i in [0, n).
  void (*classify)(const ClassTables& tables, const char* data, size_t n,
                   uint8_t* out);
};

// The kernel set every hot path dispatches through. Selected once at first
// use — CFGTAG_FORCE_SCALAR=1 (any value but "0" or empty) pins the scalar
// tier, otherwise the best ISA the CPU supports — then overridable
// programmatically (tests, the scalar-vs-SIMD bench legs). The selection
// is exported as the cfgtag_simd_dispatch{isa=...} info gauge.
const Kernels& Active();

// Programmatic override for testing/benching; `isa` must be available.
// ClearForcedIsa() returns to the startup selection (env included).
void ForceIsa(Isa isa);
void ClearForcedIsa();

bool IsaAvailable(Isa isa);
// The kernel table of an available tier (equivalence sweeps call tiers
// side by side without touching the process-wide selection).
const Kernels& KernelsFor(Isa isa);
Isa BestAvailable();

}  // namespace cfgtag::tagger::simd

#endif  // CFGTAG_TAGGER_SIMD_DISPATCH_H_
