// aarch64 NEON kernel tier (128-bit). Same exact truffle membership as the
// x86 tiers, built from vqtbl1q_u8 lookups: tbl indexes the whole byte (not
// pshufb's low-nibble-plus-bit-7 rule), so the low nibble is masked
// explicitly and the clear/set halves are blended on the high-nibble bit.
// Lane masks are reduced to a scalar with the vshrn-by-4 narrowing trick
// (4 mask bits per lane in a uint64_t) since NEON has no movemask.

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cstring>

#include "tagger/simd/kernels.h"

namespace cfgtag::tagger::simd {

namespace {

alignas(16) constexpr uint8_t kHiBitTable[16] = {
    1, 2, 4, 8, 16, 32, 64, 128, 1, 2, 4, 8, 16, 32, 64, 128};

// 0xFF in exactly the member lanes.
inline uint8x16_t MemberLanes(const uint8_t* shuf_clear,
                              const uint8_t* shuf_set, uint8x16_t v) {
  const uint8x16_t lo = vandq_u8(v, vdupq_n_u8(0x0f));
  const uint8x16_t hi = vshrq_n_u8(v, 4);
  const uint8x16_t t_clear = vqtbl1q_u8(vld1q_u8(shuf_clear), lo);
  const uint8x16_t t_set = vqtbl1q_u8(vld1q_u8(shuf_set), lo);
  const uint8x16_t upper = vcgeq_u8(hi, vdupq_n_u8(8));
  const uint8x16_t cand = vbslq_u8(upper, t_set, t_clear);
  const uint8x16_t bit = vqtbl1q_u8(vld1q_u8(kHiBitTable), hi);
  return vtstq_u8(cand, bit);  // 0xFF where (cand & bit) != 0
}

// 4 bits per lane, lane 0 in the low nibble: nonzero iff any lane is 0xFF.
inline uint64_t LaneMask(uint8x16_t m) {
  const uint8x8_t narrowed = vshrn_n_u16(vreinterpretq_u16_u8(m), 4);
  return vget_lane_u64(vreinterpret_u64_u8(narrowed), 0);
}

size_t NeonFindFirstIn(const ByteSet& s, const char* data, size_t n) {
  if (s.num_values == 0) return n;
  if (s.num_values == 1) return kScalarKernels.find_first_in(s, data, n);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t v =
        vld1q_u8(reinterpret_cast<const uint8_t*>(data + i));
    const uint64_t in = LaneMask(MemberLanes(s.shuf_clear, s.shuf_set, v));
    if (in) {
      return i + (static_cast<size_t>(__builtin_ctzll(in)) >> 2);
    }
  }
  return i + kScalarKernels.find_first_in(s, data + i, n - i);
}

size_t NeonFindFirstNotIn(const ByteSet& s, const char* data, size_t n) {
  if (s.num_values == 0) return 0;
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t v =
        vld1q_u8(reinterpret_cast<const uint8_t*>(data + i));
    const uint64_t out =
        ~LaneMask(MemberLanes(s.shuf_clear, s.shuf_set, v));
    if (out) {
      return i + (static_cast<size_t>(__builtin_ctzll(out)) >> 2);
    }
  }
  return i + kScalarKernels.find_first_not_in(s, data + i, n - i);
}

void NeonClassify(const ClassTables& t, const char* data, size_t n,
                  uint8_t* out) {
  if (t.num_planes <= 0) {
    kScalarKernels.classify(t, data, n, out);
    return;
  }
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t v =
        vld1q_u8(reinterpret_cast<const uint8_t*>(data + i));
    uint8x16_t acc = vdupq_n_u8(0);
    for (int k = 0; k < t.num_planes; ++k) {
      const ClassTables::Plane& p = t.planes[k];
      const uint8x16_t member = MemberLanes(p.shuf_clear, p.shuf_set, v);
      acc = vorrq_u8(acc,
                     vandq_u8(member, vdupq_n_u8(static_cast<uint8_t>(1 << k))));
    }
    vst1q_u8(out + i, acc);
  }
  if (i < n) kScalarKernels.classify(t, data + i, n - i, out + i);
}

}  // namespace

const Kernels kNeonKernels = {Isa::kNeon, &NeonFindFirstIn,
                              &NeonFindFirstNotIn, &NeonClassify};

}  // namespace cfgtag::tagger::simd

#endif  // __aarch64__
