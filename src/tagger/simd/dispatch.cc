#include "tagger/simd/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"
#include "tagger/simd/kernels.h"

namespace cfgtag::tagger::simd {

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

ByteSet BuildByteSet(const bool members[256]) {
  ByteSet s{};
  for (int b = 0; b < 256; ++b) {
    if (!members[b]) continue;
    s.in_set[b] = 1;
    const int lo = b & 0x0f;
    const int hi = b >> 4;
    if (hi < 8) {
      s.shuf_clear[lo] |= static_cast<uint8_t>(1u << hi);
    } else {
      s.shuf_set[lo] |= static_cast<uint8_t>(1u << (hi - 8));
    }
    if (s.num_values < 8) {
      s.broadcast[s.num_values] =
          0x0101010101010101ULL * static_cast<uint64_t>(b);
      if (s.num_values == 0) s.single = static_cast<unsigned char>(b);
    }
    ++s.num_values;
  }
  return s;
}

ClassTables BuildClassTables(const uint8_t map[256], size_t num_classes) {
  ClassTables t{};
  std::memcpy(t.map, map, 256);
  if (num_classes <= 1) {
    t.num_planes = 0;  // id 0 everywhere: classify is a memset
    return t;
  }
  int planes = 0;
  while ((size_t{1} << planes) < num_classes) ++planes;
  if (planes > ClassTables::kMaxPlanes) {
    t.num_planes = -1;  // too many classes: scalar table loop only
    return t;
  }
  t.num_planes = planes;
  for (int b = 0; b < 256; ++b) {
    const uint8_t id = map[b];
    const int lo = b & 0x0f;
    const int hi = b >> 4;
    for (int k = 0; k < planes; ++k) {
      if (!((id >> k) & 1)) continue;
      if (hi < 8) {
        t.planes[k].shuf_clear[lo] |= static_cast<uint8_t>(1u << hi);
      } else {
        t.planes[k].shuf_set[lo] |= static_cast<uint8_t>(1u << (hi - 8));
      }
    }
  }
  return t;
}

bool IsaAvailable(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case Isa::kSse2:
      // The 128-bit tier's shuffle kernels need pshufb; hosts predating
      // SSSE3 (2006) dispatch scalar instead.
      return __builtin_cpu_supports("ssse3");
    case Isa::kAvx2:
      return __builtin_cpu_supports("avx2");
#endif
#if defined(__aarch64__)
    case Isa::kNeon:
      return true;  // NEON is architectural on aarch64
#endif
    default:
      return false;
  }
}

const Kernels& KernelsFor(Isa isa) {
  switch (isa) {
#if defined(__x86_64__) || defined(__i386__)
    case Isa::kSse2:
      return kSse2Kernels;
    case Isa::kAvx2:
      return kAvx2Kernels;
#endif
#if defined(__aarch64__)
    case Isa::kNeon:
      return kNeonKernels;
#endif
    default:
      return kScalarKernels;
  }
}

Isa BestAvailable() {
#if defined(__aarch64__)
  return Isa::kNeon;
#else
  if (IsaAvailable(Isa::kAvx2)) return Isa::kAvx2;
  if (IsaAvailable(Isa::kSse2)) return Isa::kSse2;
  return Isa::kScalar;
#endif
}

namespace {

// Info gauge: cfgtag_simd_dispatch{isa=...} is 1 for the live tier, 0 for
// the rest, so a deployment (or the CI scrape) can confirm which kernels
// actually run.
void ExportDispatch(Isa active) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  for (int i = 0; i < kNumIsas; ++i) {
    const Isa isa = static_cast<Isa>(i);
    reg.GetGauge(std::string("cfgtag_simd_dispatch{isa=\"") + IsaName(isa) +
                     "\"}",
                 "Selected SIMD kernel tier (1 = active)")
        ->Set(isa == active ? 1 : 0);
  }
}

Isa StartupIsa() {
  const char* force = std::getenv("CFGTAG_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0' && std::strcmp(force, "0") != 0) {
    return Isa::kScalar;
  }
  return BestAvailable();
}

std::atomic<const Kernels*> g_active{nullptr};

const Kernels* SelectStartup() {
  const Kernels* chosen = &KernelsFor(StartupIsa());
  const Kernels* expected = nullptr;
  // First caller wins; a concurrent ForceIsa that already published an
  // override is left in place.
  if (g_active.compare_exchange_strong(expected, chosen,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
    ExportDispatch(chosen->isa);
    return chosen;
  }
  return expected;
}

}  // namespace

const Kernels& Active() {
  const Kernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) k = SelectStartup();
  return *k;
}

void ForceIsa(Isa isa) {
  const Kernels& k = KernelsFor(IsaAvailable(isa) ? isa : Isa::kScalar);
  g_active.store(&k, std::memory_order_release);
  ExportDispatch(k.isa);
}

void ClearForcedIsa() { ForceIsa(StartupIsa()); }

}  // namespace cfgtag::tagger::simd
