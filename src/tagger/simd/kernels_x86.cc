// x86 kernel tiers: 128-bit (SSE2 loads/compares + SSSE3 pshufb for the
// shuffle kernels) and 256-bit AVX2. Compiled in the default target and
// gated per function with GCC/Clang target attributes, so the TU builds on
// any x86-64 baseline and the dispatcher only calls what CPUID reports.
//
// Membership is the exact truffle decomposition (see ByteSet in
// dispatch.h): two pshufb table lookups — the second on input XOR 0x80, so
// pshufb's bit-7 zeroing picks exactly one half per lane — OR to a
// candidate bitmask over the high-nibble bits, ANDed with 1 << (hi & 7).
// No false positives for any 256-member set, unlike the bucketed shufti
// prefilter.

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstring>

#include "tagger/simd/kernels.h"

namespace cfgtag::tagger::simd {

namespace {

#define CFGTAG_TGT_SSSE3 __attribute__((target("ssse3")))
#define CFGTAG_TGT_AVX2 __attribute__((target("avx2")))

alignas(16) constexpr uint8_t kHiBitTable[16] = {
    1, 2, 4, 8, 16, 32, 64, 128, 1, 2, 4, 8, 16, 32, 64, 128};

// ------------------------------------------------------------ 128-bit tier

// Movemask with bit i set iff lane i's byte is a member of the set
// described by (shuf_clear, shuf_set).
CFGTAG_TGT_SSSE3 inline int MemberMask128(const uint8_t* shuf_clear,
                                          const uint8_t* shuf_set,
                                          __m128i v) {
  const __m128i lo_clear =
      _mm_load_si128(reinterpret_cast<const __m128i*>(shuf_clear));
  const __m128i lo_set =
      _mm_load_si128(reinterpret_cast<const __m128i*>(shuf_set));
  const __m128i bit_tbl =
      _mm_load_si128(reinterpret_cast<const __m128i*>(kHiBitTable));
  const __m128i t1 = _mm_shuffle_epi8(lo_clear, v);
  const __m128i t2 = _mm_shuffle_epi8(
      lo_set, _mm_xor_si128(v, _mm_set1_epi8(static_cast<char>(0x80))));
  const __m128i hi =
      _mm_and_si128(_mm_srli_epi16(v, 4), _mm_set1_epi8(0x0f));
  const __m128i hit =
      _mm_and_si128(_mm_or_si128(t1, t2), _mm_shuffle_epi8(bit_tbl, hi));
  const __m128i miss = _mm_cmpeq_epi8(hit, _mm_setzero_si128());
  return ~_mm_movemask_epi8(miss) & 0xffff;
}

CFGTAG_TGT_SSSE3 size_t Sse2FindFirstIn(const ByteSet& s, const char* data,
                                        size_t n) {
  if (s.num_values == 0) return n;
  if (s.num_values == 1) return kScalarKernels.find_first_in(s, data, n);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const int in = MemberMask128(s.shuf_clear, s.shuf_set, v);
    if (in) return i + static_cast<size_t>(__builtin_ctz(in));
  }
  return i + kScalarKernels.find_first_in(s, data + i, n - i);
}

CFGTAG_TGT_SSSE3 size_t Sse2FindFirstNotIn(const ByteSet& s,
                                           const char* data, size_t n) {
  if (s.num_values == 0) return 0;
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const int out = ~MemberMask128(s.shuf_clear, s.shuf_set, v) & 0xffff;
    if (out) return i + static_cast<size_t>(__builtin_ctz(out));
  }
  return i + kScalarKernels.find_first_not_in(s, data + i, n - i);
}

CFGTAG_TGT_SSSE3 void Sse2Classify(const ClassTables& t, const char* data,
                                   size_t n, uint8_t* out) {
  if (t.num_planes <= 0) {
    kScalarKernels.classify(t, data, n, out);
    return;
  }
  const __m128i bit_tbl =
      _mm_load_si128(reinterpret_cast<const __m128i*>(kHiBitTable));
  const __m128i x80 = _mm_set1_epi8(static_cast<char>(0x80));
  const __m128i x0f = _mm_set1_epi8(0x0f);
  const __m128i zero = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const __m128i v_hi = _mm_xor_si128(v, x80);
    const __m128i bit =
        _mm_shuffle_epi8(bit_tbl, _mm_and_si128(_mm_srli_epi16(v, 4), x0f));
    __m128i acc = zero;
    for (int k = 0; k < t.num_planes; ++k) {
      const ClassTables::Plane& p = t.planes[k];
      const __m128i t1 = _mm_shuffle_epi8(
          _mm_load_si128(reinterpret_cast<const __m128i*>(p.shuf_clear)), v);
      const __m128i t2 = _mm_shuffle_epi8(
          _mm_load_si128(reinterpret_cast<const __m128i*>(p.shuf_set)),
          v_hi);
      const __m128i hit = _mm_and_si128(_mm_or_si128(t1, t2), bit);
      // (1 << k) in exactly the member lanes: andnot of the miss mask.
      acc = _mm_or_si128(
          acc, _mm_andnot_si128(_mm_cmpeq_epi8(hit, zero),
                                _mm_set1_epi8(static_cast<char>(1 << k))));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), acc);
  }
  if (i < n) kScalarKernels.classify(t, data + i, n - i, out + i);
}

// ------------------------------------------------------------ 256-bit tier

CFGTAG_TGT_AVX2 inline uint32_t MemberMask256(const uint8_t* shuf_clear,
                                              const uint8_t* shuf_set,
                                              __m256i v) {
  const __m256i lo_clear = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(shuf_clear)));
  const __m256i lo_set = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(shuf_set)));
  const __m256i bit_tbl = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(kHiBitTable)));
  const __m256i t1 = _mm256_shuffle_epi8(lo_clear, v);
  const __m256i t2 = _mm256_shuffle_epi8(
      lo_set, _mm256_xor_si256(v, _mm256_set1_epi8(static_cast<char>(0x80))));
  const __m256i hi =
      _mm256_and_si256(_mm256_srli_epi16(v, 4), _mm256_set1_epi8(0x0f));
  const __m256i hit = _mm256_and_si256(_mm256_or_si256(t1, t2),
                                       _mm256_shuffle_epi8(bit_tbl, hi));
  const __m256i miss = _mm256_cmpeq_epi8(hit, _mm256_setzero_si256());
  return ~static_cast<uint32_t>(_mm256_movemask_epi8(miss));
}

CFGTAG_TGT_AVX2 size_t Avx2FindFirstIn(const ByteSet& s, const char* data,
                                       size_t n) {
  if (s.num_values == 0) return n;
  if (s.num_values == 1) return kScalarKernels.find_first_in(s, data, n);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const uint32_t in = MemberMask256(s.shuf_clear, s.shuf_set, v);
    if (in) return i + static_cast<size_t>(__builtin_ctz(in));
  }
  return i + kScalarKernels.find_first_in(s, data + i, n - i);
}

CFGTAG_TGT_AVX2 size_t Avx2FindFirstNotIn(const ByteSet& s, const char* data,
                                          size_t n) {
  if (s.num_values == 0) return 0;
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const uint32_t out = ~MemberMask256(s.shuf_clear, s.shuf_set, v);
    if (out) return i + static_cast<size_t>(__builtin_ctz(out));
  }
  return i + kScalarKernels.find_first_not_in(s, data + i, n - i);
}

CFGTAG_TGT_AVX2 void Avx2Classify(const ClassTables& t, const char* data,
                                  size_t n, uint8_t* out) {
  if (t.num_planes <= 0) {
    kScalarKernels.classify(t, data, n, out);
    return;
  }
  const __m256i bit_tbl = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(kHiBitTable)));
  const __m256i x80 = _mm256_set1_epi8(static_cast<char>(0x80));
  const __m256i x0f = _mm256_set1_epi8(0x0f);
  const __m256i zero = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const __m256i v_hi = _mm256_xor_si256(v, x80);
    const __m256i bit = _mm256_shuffle_epi8(
        bit_tbl, _mm256_and_si256(_mm256_srli_epi16(v, 4), x0f));
    __m256i acc = zero;
    for (int k = 0; k < t.num_planes; ++k) {
      const ClassTables::Plane& p = t.planes[k];
      const __m256i t1 = _mm256_shuffle_epi8(
          _mm256_broadcastsi128_si256(_mm_load_si128(
              reinterpret_cast<const __m128i*>(p.shuf_clear))),
          v);
      const __m256i t2 = _mm256_shuffle_epi8(
          _mm256_broadcastsi128_si256(
              _mm_load_si128(reinterpret_cast<const __m128i*>(p.shuf_set))),
          v_hi);
      const __m256i hit = _mm256_and_si256(_mm256_or_si256(t1, t2), bit);
      acc = _mm256_or_si256(
          acc,
          _mm256_andnot_si256(_mm256_cmpeq_epi8(hit, zero),
                              _mm256_set1_epi8(static_cast<char>(1 << k))));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), acc);
  }
  if (i < n) kScalarKernels.classify(t, data + i, n - i, out + i);
}

#undef CFGTAG_TGT_SSSE3
#undef CFGTAG_TGT_AVX2

}  // namespace

const Kernels kSse2Kernels = {Isa::kSse2, &Sse2FindFirstIn,
                              &Sse2FindFirstNotIn, &Sse2Classify};
const Kernels kAvx2Kernels = {Isa::kAvx2, &Avx2FindFirstIn,
                              &Avx2FindFirstNotIn, &Avx2Classify};

}  // namespace cfgtag::tagger::simd

#endif  // x86
