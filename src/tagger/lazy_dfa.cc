#include "tagger/lazy_dfa.h"

#include <algorithm>

#include "core/resilience/fault_injector.h"
#include "obs/attribution.h"
#include "obs/events.h"

namespace cfgtag::tagger {

namespace {

// Approximate per-state index cost (one unordered_multimap node plus
// bucket share) folded into the cache budget accounting. Also charged per
// overlay transition (same node shape).
constexpr size_t kIndexNodeBytes = 48;

// The configuration hash/equality primitives live in tagger/dfa_state.h,
// shared with the AOT determinizer so baked and runtime states always
// agree.

}  // namespace

const DfaCacheMetrics& DfaCacheMetrics::Get() {
  static const DfaCacheMetrics kMetrics = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    return DfaCacheMetrics{
        reg.GetCounter("cfgtag_dfa_cache_states",
                       "DFA configurations interned by lazy-DFA sessions"),
        reg.GetCounter("cfgtag_dfa_cache_flushes",
                       "Lazy-DFA transition caches dropped at the byte cap"),
        reg.GetCounter("cfgtag_dfa_cache_fallbacks",
                       "Lazy-DFA sessions that fell back to fused execution "
                       "after repeated cache flushes")};
  }();
  return kMetrics;
}

// --------------------------------------------------------- LazyDfaTagger

LazyDfaTagger::LazyDfaTagger(FusedTagger fused,
                             std::shared_ptr<const AotDfaTable> aot)
    : fused_(std::move(fused)),
      aot_(std::move(aot)),
      session_pool_(std::make_shared<LazyDfaSessionPool>()) {}

StatusOr<LazyDfaTagger> LazyDfaTagger::Create(const grammar::Grammar* grammar,
                                              const TaggerOptions& options) {
  CFGTAG_ASSIGN_OR_RETURN(FusedTagger fused,
                          FusedTagger::Create(grammar, options));
  return Wrap(std::move(fused));
}

LazyDfaTagger LazyDfaTagger::Wrap(FusedTagger fused,
                                  std::shared_ptr<const AotDfaTable> aot) {
  return LazyDfaTagger(std::move(fused), std::move(aot));
}

void LazyDfaTagger::Run(std::string_view input, const TagSink& sink) const {
  LazyDfaSessionPool::Handle session = session_pool_->Acquire(this);
  session->Feed(input, sink);
  session->Finish(sink);
}

std::vector<Tag> LazyDfaTagger::TagAll(std::string_view input) const {
  std::vector<Tag> tags;
  Run(input, [&tags](const Tag& t) {
    tags.push_back(t);
    return true;
  });
  return tags;
}

// -------------------------------------------------------- LazyDfaSession

LazyDfaSession::LazyDfaSession(const LazyDfaTagger* tagger)
    : tagger_(nullptr), scratch_(&tagger->fused()) {
  Rebind(tagger);
}

void LazyDfaSession::Rebind(const LazyDfaTagger* tagger) {
  if (tagger != tagger_) {
    // As with FusedSession::Rebind: the old tagger may be gone, so drop
    // (not merge) any unflushed attribution.
    attr_dirty_ = false;
    std::fill(attr_matches_.begin(), attr_matches_.end(), 0);
    attr_dfa_hits_ = attr_dfa_misses_ = 0;
    tagger_ = tagger;
    scratch_.Rebind(&tagger_->fused());
    ClearCache();
    num_classes_ = tagger_->fused().NumByteClasses();
    aot_ = tagger_->aot();
    num_aot_ = aot_ ? static_cast<int32_t>(aot_->states.size()) : 0;
    flushes_ = 0;
    fallback_ = false;
  }
  Reset();
}

void LazyDfaSession::ClearCache() {
  states_.clear();
  trans_.clear();
  overlay_.clear();
  snap_pool_.clear();
  emit_pool_.clear();
  index_.clear();
  cache_bytes_ = 0;
  budget_.ReleaseAll();
}

void LazyDfaSession::Reset() {
  FlushAttribution();
  attr_on_ = obs::AttributionTable::enabled();
  if (attr_on_ &&
      attr_matches_.size() != tagger_->grammar().NumTokens()) {
    attr_matches_.assign(tagger_->grammar().NumTokens(), 0);
  }
  consumed_ = 0;
  finished_ = false;
  stopped_ = false;
  if (fallback_) {
    // In fallback the scratch session runs the real stream, so it counts
    // for itself (its Reset() resamples the attribution switch).
    scratch_.Reset();
    return;
  }
  // Build steps must never count: every emission they produce is replayed
  // (and counted) from the cache.
  scratch_.attr_on_ = false;
  // Intern (or find) the stream-start configuration: no live positions,
  // start tokens armed unless in scan mode, no pending byte.
  const FusedTagger& f = tagger_->fused();
  tmp_state_.clear();
  tmp_armed_.clear();
  if (f.options().EffectiveArmMode() != ArmMode::kScan) {
    tmp_armed_.assign(f.start_first_.begin(), f.start_first_.end());
    std::sort(tmp_armed_.begin(), tmp_armed_.end(),
              [](const WordBits& a, const WordBits& b) {
                return a.word < b.word;
              });
  }
  state_ = InternState(tmp_state_, tmp_armed_, /*prev_delim=*/false,
                       /*pending_cls=*/-1);
}

int32_t LazyDfaSession::InternState(const std::vector<WordBits>& state,
                                    const std::vector<WordBits>& armed,
                                    bool prev_delim, int16_t pending_cls) {
  const uint8_t pd = prev_delim ? 1 : 0;
  const uint64_t h = HashDfaConfig(state.data(), state.size(), armed.data(),
                                   armed.size(), prev_delim, pending_cls);
  // Baked states first: they can never be evicted, so a hit here costs the
  // session nothing and keeps its transitions shared.
  if (aot_ != nullptr) {
    auto range = aot_->index.equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      const DfaStateInfo& cand = aot_->states[static_cast<size_t>(it->second)];
      if (cand.pending_cls == pending_cls && cand.prev_delim == pd &&
          cand.num_state == state.size() && cand.num_armed == armed.size() &&
          SameWordRun(aot_->snap_pool.data() + cand.snap_begin, state.data(),
                      state.size()) &&
          SameWordRun(aot_->snap_pool.data() + cand.snap_begin + cand.num_state,
                      armed.data(), armed.size())) {
        return it->second;
      }
    }
  }
  auto range = index_.equal_range(h);
  for (auto it = range.first; it != range.second; ++it) {
    const DfaStateInfo& cand = states_[static_cast<size_t>(it->second)];
    if (cand.pending_cls == pending_cls && cand.prev_delim == pd &&
        cand.num_state == state.size() && cand.num_armed == armed.size() &&
        SameWordRun(snap_pool_.data() + cand.snap_begin, state.data(),
                    state.size()) &&
        SameWordRun(snap_pool_.data() + cand.snap_begin + cand.num_state,
                    armed.data(), armed.size())) {
      return num_aot_ + it->second;
    }
  }
  DfaStateInfo info;
  info.hash = h;
  info.snap_begin = static_cast<uint32_t>(snap_pool_.size());
  info.num_state = static_cast<uint32_t>(state.size());
  info.num_armed = static_cast<uint32_t>(armed.size());
  info.pending_cls = pending_cls;
  info.prev_delim = pd;
  snap_pool_.insert(snap_pool_.end(), state.begin(), state.end());
  snap_pool_.insert(snap_pool_.end(), armed.begin(), armed.end());
  const int32_t local = static_cast<int32_t>(states_.size());
  states_.push_back(info);
  trans_.resize(trans_.size() + num_classes_);
  index_.emplace(h, local);
  const size_t charged = sizeof(DfaStateInfo) +
                         num_classes_ * sizeof(DfaTrans) +
                         (state.size() + armed.size()) * sizeof(WordBits) +
                         kIndexNodeBytes;
  cache_bytes_ += charged;
  budget_.Add(charged);
  DfaCacheMetrics::Get().states->Increment();
  return num_aot_ + local;
}

void LazyDfaSession::MaterializeScratch() {
  const FusedTagger& f = tagger_->fused();
  const DfaStateInfo info = Info(state_);
  const WordBits* snap = Snap(info, state_);
  scratch_.LoadConfig(snap, info.num_state, snap + info.num_state,
                      info.num_armed, info.prev_delim != 0);
  scratch_.pos_ = consumed_;
  scratch_.stopped_ = stopped_;
  if (info.pending_cls >= 0) {
    scratch_.has_pending_ = true;
    scratch_.pending_ =
        f.classifier().Representative(static_cast<uint16_t>(info.pending_cls));
  }
}

void LazyDfaSession::SyncFromScratch() {
  consumed_ = scratch_.pos_;
  stopped_ = scratch_.stopped_;
}

void LazyDfaSession::EnterFallback() {
  // Order matters: the scratch session must absorb the current interned
  // configuration before the pools holding it are freed.
  MaterializeScratch();
  ClearCache();
  fallback_ = true;
  // From here the scratch session runs the real stream, so it takes over
  // attribution counting (LoadConfig does not resample the switch).
  scratch_.attr_on_ = attr_on_;
  if (attr_on_ &&
      scratch_.attr_matches_.size() != tagger_->grammar().NumTokens()) {
    scratch_.attr_matches_.assign(tagger_->grammar().NumTokens(), 0);
    // Live-word counts are per fused state word, not per token.
    scratch_.attr_live_.assign(tagger_->fused().NumStateWords(), 0);
  }
  DfaCacheMetrics::Get().fallbacks->Increment();
  obs::RecordEvent(obs::EventKind::kDfaCacheFallback,
                   static_cast<int64_t>(flushes_),
                   static_cast<int64_t>(consumed_),
                   "lazy-dfa session fell back to fused");
}

void LazyDfaSession::FlushAttribution() {
  if (!attr_dirty_) return;
  attr_dirty_ = false;
  obs::AttributionTable& table = obs::AttributionTable::Default();
  const std::vector<grammar::TokenDef>& tokens = tagger_->grammar().tokens();
  for (size_t tok = 0; tok < attr_matches_.size(); ++tok) {
    if (attr_matches_[tok] == 0) continue;
    table.AddToken(tokens[tok].name, attr_matches_[tok], /*live_words=*/0);
    attr_matches_[tok] = 0;
  }
  table.AddDfaCache(attr_dfa_hits_, attr_dfa_misses_);
  attr_dfa_hits_ = attr_dfa_misses_ = 0;
}

void LazyDfaSession::Flush() {
  ++flushes_;
  DfaCacheMetrics::Get().flushes->Increment();
  obs::RecordEvent(obs::EventKind::kDfaCacheFlush,
                   static_cast<int64_t>(cache_bytes_),
                   static_cast<int64_t>(flushes_), "dfa transition cache flush");
  if (flushes_ >= tagger_->options().dfa_flush_fallback) {
    EnterFallback();
    return;
  }
  if (state_ < num_aot_) {
    // The current state is baked: it (and every baked row) survives the
    // flush by construction — only the session's private cache drops.
    ClearCache();
    return;
  }
  // Copy the current configuration out of the pools, drop everything,
  // re-intern it as the sole survivor.
  const DfaStateInfo info = Info(state_);
  tmp_state_.assign(snap_pool_.begin() + info.snap_begin,
                    snap_pool_.begin() + info.snap_begin + info.num_state);
  tmp_armed_.assign(
      snap_pool_.begin() + info.snap_begin + info.num_state,
      snap_pool_.begin() + info.snap_begin + info.num_state + info.num_armed);
  ClearCache();
  state_ = InternState(tmp_state_, tmp_armed_, info.prev_delim != 0,
                       info.pending_cls);
}

DfaTrans LazyDfaSession::BuildTransition(uint8_t cls) {
  // The miss path is the only place the cache grows, so it is where
  // budget pressure (and the dfa.intern fault site) sheds the session to
  // fused stepping. The steady-state hit path never reaches here.
  if (core::resilience::ResourceBudget::Process().ShouldShedDfa() ||
      core::resilience::FaultInjector::ShouldFail("dfa.intern")) {
    EnterFallback();
    return DfaTrans{};
  }
  if (cache_bytes_ > tagger_->options().dfa_cache_bytes) {
    Flush();
    if (fallback_) return DfaTrans{};
  }
  const FusedTagger& f = tagger_->fused();
  const DfaStateInfo info = Info(state_);
  const WordBits* snap = Snap(info, state_);
  tmp_state_.clear();
  tmp_armed_.clear();
  tmp_emit_.clear();
  int32_t next_id;
  bool next_prev_delim;
  if (info.pending_cls < 0) {
    // Absorb: the input byte becomes the pending look-ahead; the machine
    // configuration is untouched and nothing emits.
    tmp_state_.assign(snap, snap + info.num_state);
    tmp_armed_.assign(snap + info.num_state,
                      snap + info.num_state + info.num_armed);
    next_prev_delim = info.prev_delim != 0;
  } else {
    // One real fused step on the class representatives — exact for every
    // byte of the class, since the engine only reads byte classes.
    scratch_.LoadConfig(snap, info.num_state, snap + info.num_state,
                        info.num_armed, info.prev_delim != 0);
    scratch_.pos_ = 0;
    scratch_.ProcessByte(
        f.classifier().Representative(static_cast<uint16_t>(info.pending_cls)),
        /*has_next=*/true, f.classifier().Representative(cls),
        [this](const Tag& t) {
          tmp_emit_.push_back(t.token);
          return true;
        });
    scratch_.SnapshotConfig(&tmp_state_, &tmp_armed_);
    next_prev_delim = scratch_.prev_was_delim_;
  }
  next_id = InternState(tmp_state_, tmp_armed_, next_prev_delim,
                        static_cast<int16_t>(cls));
  DfaTrans tr;
  tr.next = next_id;
  tr.emit_begin = static_cast<uint32_t>(emit_pool_.size());
  tr.emit_count = static_cast<uint32_t>(tmp_emit_.size());
  emit_pool_.insert(emit_pool_.end(), tmp_emit_.begin(), tmp_emit_.end());
  cache_bytes_ += tmp_emit_.size() * sizeof(int32_t);
  budget_.Add(tmp_emit_.size() * sizeof(int32_t));
  if (state_ < num_aot_) {
    // Baked rows are shared and immutable; runtime-built overflow out of a
    // baked state lives in the session's private overlay.
    overlay_[static_cast<uint64_t>(state_) * num_classes_ + cls] = tr;
    cache_bytes_ += kIndexNodeBytes + sizeof(DfaTrans);
    budget_.Add(kIndexNodeBytes + sizeof(DfaTrans));
  } else {
    trans_[static_cast<size_t>(state_ - num_aot_) * num_classes_ + cls] = tr;
  }
  return tr;
}

void LazyDfaSession::Feed(std::string_view chunk, const TagSink& sink) {
  if (finished_ || stopped_ || chunk.empty()) return;
  if (fallback_) {
    scratch_.Feed(chunk, sink);
    SyncFromScratch();
    return;
  }
  const char* data = chunk.data();
  const size_t n = chunk.size();
  const FusedTagger& f = tagger_->fused();
  const ByteClassifier& classes = f.classifier();
  const ArmMode mode = f.options().EffectiveArmMode();
  const RunScanner& delim = f.delimiter_scanner();
  const RunScanner& arm = f.arm_scanner();
  const SkipMetrics& skips = SkipMetrics::Get();
  if (attr_on_) attr_dirty_ = true;

  size_t i = 0;
  while (i < n) {
    // Copy what the skip checks need before any build can grow states_.
    const DfaStateInfo cur = Info(state_);
    const int16_t pending = cur.pending_cls;
    if (cur.num_state == 0 && pending >= 0) {
      // Idle fast paths, the DFA rendition: a dead configuration cycles
      // through states differing only in pending class and delimiter
      // flag, so a whole inert run collapses to position arithmetic plus
      // ONE real transition on the run's last byte — which re-derives the
      // exact successor, because it is invariant across the run.
      const bool pending_delim = f.ClassIsDelim(static_cast<uint8_t>(pending));
      const bool armed = cur.num_armed != 0;
      if (pending_delim && delim.Test(static_cast<unsigned char>(data[i]))) {
        // Delimiter run: dead + delimiter pending emits nothing and
        // preserves arms whatever the input, so jump to the run's end.
        const size_t j = i + delim.FindFirstNotIn(data + i, n - i);
        if (j > i + 1) {
          skips.Of(SkipMetrics::kDelimiter, delim.strategy())
              ->Increment(j - 1 - i);
          consumed_ += j - 1 - i;
          i = j - 1;
        }
      } else if (!armed && mode == ArmMode::kAnchored) {
        // Dead stream: anchored arming can never re-inject; only the last
        // byte is fed (keeping the pending machinery consistent).
        if (n - i > 1) {
          skips.Of(SkipMetrics::kAnchored, SkipStrategy::kNone)
              ->Increment(n - 1 - i);
          consumed_ += n - 1 - i;
          i = n - 1;
        }
      } else if (!armed && mode == ArmMode::kResync && !cur.prev_delim &&
                 !pending_delim &&
                 !delim.Test(static_cast<unsigned char>(data[i]))) {
        // Mid-garbage in resync mode: start injection waits for the next
        // delimiter, so non-delimiter bytes are inert.
        const size_t j = i + delim.FindFirstIn(data + i, n - i);
        if (j > i + 1) {
          skips.Of(SkipMetrics::kResync, delim.strategy())
              ->Increment(j - 1 - i);
          consumed_ += j - 1 - i;
          i = j - 1;
        }
      } else if (!armed && mode == ArmMode::kScan &&
                 !f.ClassCanArm(static_cast<uint8_t>(pending)) &&
                 !arm.Test(static_cast<unsigned char>(data[i]))) {
        // Armed-byte prefilter, DFA rendition: fully idle in scan mode,
        // bytes that cannot start any token are inert, so jump to the
        // last such byte and take one real transition there. The run may
        // mix garbage and delimiters (delimiters never arm); the
        // intermediate states differ only in pending class and delimiter
        // flag, neither of which scan mode's injection reads, so the tags
        // are exact.
        const size_t j = i + arm.FindFirstIn(data + i, n - i);
        if (j > i + 1) {
          skips.Of(SkipMetrics::kArmed, arm.strategy())
              ->Increment(j - 1 - i);
          consumed_ += j - 1 - i;
          i = j - 1;
        }
      }
    }
    const uint8_t cls = classes.ClassOf(static_cast<unsigned char>(data[i]));
    // Fetch the transition from whichever region owns the current state:
    // baked row, then the session overlay for baked-row misses, then the
    // session's own rows. The emission pool follows the row's origin.
    DfaTrans tr;
    const int32_t* emit_base = emit_pool_.data();
    if (state_ < num_aot_) {
      tr = aot_->trans[static_cast<size_t>(state_) * num_classes_ + cls];
      if (tr.next >= 0) {
        emit_base = aot_->emit_pool.data();
      } else if (!overlay_.empty()) {
        const auto it = overlay_.find(
            static_cast<uint64_t>(state_) * num_classes_ + cls);
        if (it != overlay_.end()) tr = it->second;
      }
    } else {
      tr = trans_[static_cast<size_t>(state_ - num_aot_) * num_classes_ + cls];
    }
    if (tr.next < 0) {
      if (attr_on_) ++attr_dfa_misses_;
      tr = BuildTransition(cls);
      emit_base = emit_pool_.data();  // insertions may have reallocated
      if (fallback_) {
        // The scratch session holds the exact current configuration and
        // stream position; the rest of the stream runs pure fused.
        scratch_.Feed(std::string_view(data + i, n - i), sink);
        SyncFromScratch();
        return;
      }
    } else if (attr_on_) {
      ++attr_dfa_hits_;
    }
    if (tr.emit_count != 0) {
      const int32_t* toks = emit_base + tr.emit_begin;
      for (uint32_t k = 0; k < tr.emit_count; ++k) {
        Tag tag;
        tag.token = toks[k];
        tag.end = consumed_;
        if (!stopped_ && !sink(tag)) stopped_ = true;
        if (attr_on_) {
          ++attr_matches_[static_cast<size_t>(toks[k])];
        }
      }
    }
    if (pending >= 0) ++consumed_;
    state_ = tr.next;
    ++i;
    if (stopped_) return;
  }
}

void LazyDfaSession::Finish(const TagSink& sink) {
  if (finished_) return;
  finished_ = true;
  if (fallback_) {
    scratch_.Finish(sink);  // scratch merges its own attribution
    SyncFromScratch();
    FlushAttribution();
    return;
  }
  if (!stopped_ && Info(state_).pending_cls >= 0) {
    // One real fused step with no look-ahead; not worth caching (once per
    // stream), and the class representative is again exact. The scratch
    // step does not count attribution, so the wrapper tallies the final
    // byte's emissions here.
    MaterializeScratch();
    if (attr_on_) {
      scratch_.Finish([this, &sink](const Tag& tag) {
        ++attr_matches_[static_cast<size_t>(tag.token)];
        return sink(tag);
      });
    } else {
      scratch_.Finish(sink);
    }
    SyncFromScratch();
  }
  FlushAttribution();
}

}  // namespace cfgtag::tagger
