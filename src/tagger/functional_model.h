#ifndef CFGTAG_TAGGER_FUNCTIONAL_MODEL_H_
#define CFGTAG_TAGGER_FUNCTIONAL_MODEL_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "grammar/analysis.h"
#include "grammar/grammar.h"
#include "regex/position_automaton.h"
#include "tagger/tag.h"

namespace cfgtag::tagger {

class FunctionalTagger;
class SessionPool;

// Incremental tagging over a byte stream delivered in chunks (e.g. network
// packets). Holds the machine state between Feed() calls; offsets in
// emitted tags are absolute stream positions. Because the Fig. 7
// longest-match look-ahead needs one byte beyond a match, the session lags
// the input by exactly one byte: the decision for a chunk's final byte is
// emitted when the next chunk (or Finish()) arrives.
class TaggerSession {
 public:
  // The tagger must outlive the session.
  explicit TaggerSession(const FunctionalTagger* tagger);

  // Consumes a chunk, emitting tags in stream order.
  void Feed(std::string_view chunk, const TagSink& sink);

  // Ends the stream: processes the lagging final byte (with no successor,
  // so no look-ahead suppression). Further Feed() calls are ignored until
  // Reset().
  void Finish(const TagSink& sink);

  // Returns to the stream-start state.
  void Reset();

  // Re-targets the session at `tagger` and resets it. When the new tagger
  // has the same buffer shape as the old one (always the case for a moved
  // FunctionalTagger — the SessionPool's rebind-after-move path), no
  // allocation happens; otherwise the buffers are resized.
  void Rebind(const FunctionalTagger* tagger);

  // Bytes fully processed so far (excludes the lagging byte).
  uint64_t bytes_consumed() const { return pos_; }

  // The tagger this session currently feeds.
  const FunctionalTagger* tagger() const { return tagger_; }

 private:
  void ProcessByte(unsigned char c, bool has_next, unsigned char next_c,
                   const TagSink& sink);

  // Adds a token to the step candidates of the current byte (idempotent).
  void AddCandidate(int32_t token);

  const FunctionalTagger* tagger_;
  std::vector<uint64_t> state_;
  std::vector<uint64_t> scratch_;  // one token's next state
  std::vector<uint8_t> armed_;
  std::vector<uint8_t> new_arms_;
  // Sparse active-set machinery: only tokens with live state or a reason
  // to inject are stepped each byte — the big win over ticking every
  // token (most tokens are cold on real streams).
  std::vector<int32_t> live_;            // tokens with nonzero state
  std::vector<uint8_t> is_live_;
  std::vector<int32_t> candidates_;      // tokens to step this byte
  std::vector<uint8_t> is_candidate_;
  std::vector<int32_t> candidate_reset_; // flags to clear next byte
  std::vector<int32_t> armed_list_;      // tokens with armed_[t] == 1
  std::vector<int32_t> new_arm_list_;    // arms raised this byte
  bool prev_was_delim_ = false;
  bool has_pending_ = false;
  bool finished_ = false;
  bool stopped_ = false;  // sink requested early stop
  unsigned char pending_ = 0;
  uint64_t pos_ = 0;
};

// Bit-parallel software model of the generated hardware tagger. It executes
// the same machine the netlist implements — one Glushkov position automaton
// per token, arm registers wired through the terminal Follow sets — but as
// word-level operations, so it is the fast path for tagging in software.
// The cycle-accurate netlist simulation is cross-checked against this model
// in the equivalence tests.
class FunctionalTagger {
 public:
  // The grammar must outlive the tagger.
  static StatusOr<FunctionalTagger> Create(const grammar::Grammar* grammar,
                                           const TaggerOptions& options);

  // Scans `input` and calls `sink` for every detected token, in stream
  // order. Offsets index into `input`.
  void Run(std::string_view input, const TagSink& sink) const;

  // Convenience: collect all tags.
  std::vector<Tag> TagAll(std::string_view input) const;

  // Streaming interface: feed the input in arbitrary chunks.
  TaggerSession NewSession() const { return TaggerSession(this); }

  // The shared scratch pool behind Run(): callers that tag many messages
  // (or do so from several threads) check sessions out of it instead of
  // paying the eight-vector TaggerSession construction per call —
  // `session_pool().Acquire(&tagger)` returns an RAII handle. Thread-safe.
  SessionPool& session_pool() const { return *session_pool_; }

  const grammar::Grammar& grammar() const { return *grammar_; }
  const grammar::Analysis& analysis() const { return analysis_; }
  const TaggerOptions& options() const { return options_; }

  // Total Glushkov positions over all tokens = the pattern-byte metric.
  size_t TotalPositions() const;

 private:
  friend class TaggerSession;

  FunctionalTagger(const grammar::Grammar* grammar, TaggerOptions options);

  const grammar::Grammar* grammar_;
  TaggerOptions options_;
  grammar::Analysis analysis_;
  std::vector<regex::PositionAutomaton> automata_;  // per token
  // follow_tokens_[t]: token ids armed when t matches (end marker dropped).
  std::vector<std::vector<int32_t>> follow_tokens_;
  std::vector<int32_t> start_tokens_;
  std::vector<uint8_t> is_start_;  // indexed by token id
  // word_offset_[t] = first word of token t's state bitmap; back() = total.
  std::vector<size_t> word_offset_;
  // Shared (internally synchronized) so copies of the tagger stay cheap
  // and copyable; sessions rebind to whichever tagger acquires them.
  std::shared_ptr<SessionPool> session_pool_;
};

}  // namespace cfgtag::tagger

#endif  // CFGTAG_TAGGER_FUNCTIONAL_MODEL_H_
