#ifndef CFGTAG_TAGGER_TABLE_VIEW_H_
#define CFGTAG_TAGGER_TABLE_VIEW_H_

#include <cstddef>

namespace cfgtag::tagger {

// Non-owning view of a contiguous read-only table. The compiled-tagger hot
// paths index these exactly like the std::vectors they replaced; what
// changed is ownership: the bytes live either in a heap Storage block built
// by Create() or inside an mmap'd artifact, both kept alive by the owning
// tagger's shared backing handle. Views are trivially copyable, so tagger
// copies stay cheap and never duplicate the tables.
template <typename T>
class TableView {
 public:
  TableView() = default;
  TableView(const T* data, size_t size) : data_(data), size_(size) {}

  const T& operator[](size_t i) const { return data_[i]; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  const T& back() const { return data_[size_ - 1]; }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace cfgtag::tagger

#endif  // CFGTAG_TAGGER_TABLE_VIEW_H_
