#ifndef CFGTAG_TAGGER_DFA_STATE_H_
#define CFGTAG_TAGGER_DFA_STATE_H_

#include <cstddef>
#include <cstdint>

#include "common/hash.h"
#include "tagger/fused_model.h"

namespace cfgtag::tagger {

// An interned lazy-DFA configuration, shared between the runtime session
// cache (src/tagger/lazy_dfa.cc) and the ahead-of-time determinizer that
// bakes states into saved artifacts (src/tagger/artifact/). Snapshot words
// live in the owning pool at [snap_begin, snap_begin + num_state +
// num_armed): state words first, both runs in ascending word order with
// nonzero bits — the canonical form FusedSession::SnapshotConfig produces,
// making equality a field-wise compare.
//
// The layout is fixed-width, padding explicit, and serialized verbatim
// into artifacts; any change is an artifact format break.
struct DfaStateInfo {
  uint64_t hash = 0;
  uint32_t snap_begin = 0;
  uint32_t num_state = 0;
  uint32_t num_armed = 0;
  int16_t pending_cls = -1;  // byte class of the pending byte; -1 = none
  uint8_t prev_delim = 0;
  uint8_t pad = 0;
};
static_assert(sizeof(DfaStateInfo) == 24, "DfaStateInfo is serialized");

// A cached transition: successor state plus the tags the step emits, as
// token ids into the owning emission pool (the end offset is the stream
// position at replay time, so only the ids are interned). next = -1 means
// not yet built (runtime) or outside the AOT budget (baked tables).
struct DfaTrans {
  int32_t next = -1;
  uint32_t emit_begin = 0;
  uint32_t emit_count = 0;
};
static_assert(sizeof(DfaTrans) == 12, "DfaTrans is serialized");

// Configuration hash over the canonical sparse runs. Baked AOT states
// store this value, and the runtime probes them with hashes computed by
// this same function — the two must never diverge (artifact format break).
inline uint64_t HashDfaConfig(const WordBits* state, size_t num_state,
                              const WordBits* armed, size_t num_armed,
                              bool prev_delim, int16_t pending_cls) {
  uint64_t h = 0x243f6a8885a308d3ULL;
  h = HashMix64(h, (static_cast<uint64_t>(num_state) << 32) ^
                       static_cast<uint64_t>(num_armed));
  for (size_t i = 0; i < num_state; ++i) {
    h = HashMix64(h, state[i].bits);
    h = HashMix64(h, state[i].word);
  }
  for (size_t i = 0; i < num_armed; ++i) {
    h = HashMix64(h, ~armed[i].bits);
    h = HashMix64(h, armed[i].word);
  }
  h = HashMix64(h, (static_cast<uint64_t>(prev_delim) << 16) ^
                       static_cast<uint64_t>(static_cast<uint16_t>(pending_cls)));
  return h;
}

inline bool SameWordRun(const WordBits* a, const WordBits* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (a[i].word != b[i].word || a[i].bits != b[i].bits) return false;
  }
  return true;
}

}  // namespace cfgtag::tagger

#endif  // CFGTAG_TAGGER_DFA_STATE_H_
