#include "obs/attribution.h"

#include <algorithm>

#include "obs/metrics.h"

namespace cfgtag::obs {

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Resolves the labeled registry mirror for a row. Called once per row
// (the handle is cached in the Row afterwards): session releases merge
// every token every time, and rebuilding the labeled name plus the
// registry lookup per token per release is measurable on short streams.
Counter* ResolveCounter(const char* family, const char* label,
                        std::string_view key, const char* help) {
  std::string name = family;
  name += '{';
  name += label;
  name += "=\"";
  name += key;
  name += "\"}";
  return MetricsRegistry::Default().GetCounter(name, help);
}

void AppendRows(std::string* out, const char* key,
                const std::vector<AttributionTable::Row>& rows,
                bool with_live) {
  *out += "  \"";
  *out += key;
  *out += "\": [";
  for (size_t i = 0; i < rows.size(); ++i) {
    *out += i == 0 ? "\n" : ",\n";
    *out += "    {\"name\": \"" + JsonEscape(rows[i].name) +
            "\", \"hits\": " + std::to_string(rows[i].hits);
    if (with_live) {
      *out += ", \"live_words\": " + std::to_string(rows[i].live_words);
    }
    *out += "}";
  }
  *out += rows.empty() ? "]" : "\n  ]";
}

}  // namespace

std::atomic<bool> AttributionTable::enabled_{false};

void AttributionTable::AddToken(std::string_view name, uint64_t matches,
                                uint64_t live_words) {
  if (matches == 0 && live_words == 0) return;
  Counter* hits_counter;
  Counter* live_counter;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tokens_.find(name);
    if (it == tokens_.end()) {
      it = tokens_.emplace(std::string(name), Row{std::string(name), 0, 0})
               .first;
      it->second.hits_counter = ResolveCounter(
          "cfgtag_attr_token_matches_total", "token", name,
          "Tag emissions attributed per token (attribution on)");
      it->second.live_counter = ResolveCounter(
          "cfgtag_attr_token_live_words_total", "token", name,
          "Fused live-bitmap word visits attributed per token");
    }
    it->second.hits += matches;
    it->second.live_words += live_words;
    hits_counter = it->second.hits_counter;
    live_counter = it->second.live_counter;
  }
  if (matches != 0) hits_counter->Increment(matches);
  if (live_words != 0) live_counter->Increment(live_words);
}

void AttributionTable::AddRule(std::string_view id, uint64_t alerts) {
  if (alerts == 0) return;
  Counter* hits_counter;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = rules_.find(id);
    if (it == rules_.end()) {
      it = rules_.emplace(std::string(id), Row{std::string(id), 0, 0}).first;
      it->second.hits_counter = ResolveCounter(
          "cfgtag_attr_rule_alerts_total", "rule", id,
          "NIDS alerts attributed per rule (attribution on)");
    }
    it->second.hits += alerts;
    hits_counter = it->second.hits_counter;
  }
  hits_counter->Increment(alerts);
}

void AttributionTable::AddService(std::string_view name, uint64_t messages) {
  if (messages == 0) return;
  Counter* hits_counter;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = services_.find(name);
    if (it == services_.end()) {
      it = services_.emplace(std::string(name), Row{std::string(name), 0, 0})
               .first;
      it->second.hits_counter = ResolveCounter(
          "cfgtag_attr_service_routed_total", "service", name,
          "XML-RPC messages attributed per routed service");
    }
    it->second.hits += messages;
    hits_counter = it->second.hits_counter;
  }
  hits_counter->Increment(messages);
}

void AttributionTable::AddDfaCache(uint64_t hits, uint64_t misses) {
  if (hits == 0 && misses == 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dfa_hits_ += hits;
    dfa_misses_ += misses;
  }
  MetricsRegistry& reg = MetricsRegistry::Default();
  if (hits != 0) {
    reg.GetCounter("cfgtag_dfa_cache_hits_total",
                   "Lazy-DFA cached-transition hits (attribution on)")
        ->Increment(hits);
  }
  if (misses != 0) {
    reg.GetCounter("cfgtag_dfa_cache_misses_total",
                   "Lazy-DFA transition builds (attribution on)")
        ->Increment(misses);
  }
}

namespace {

std::vector<AttributionTable::Row> Ranked(
    const std::map<std::string, AttributionTable::Row, std::less<>>& rows) {
  std::vector<AttributionTable::Row> out;
  out.reserve(rows.size());
  for (const auto& [name, row] : rows) out.push_back(row);
  std::sort(out.begin(), out.end(),
            [](const AttributionTable::Row& a,
               const AttributionTable::Row& b) {
              if (a.hits != b.hits) return a.hits > b.hits;
              return a.name < b.name;
            });
  return out;
}

}  // namespace

std::vector<AttributionTable::Row> AttributionTable::RankedTokens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Ranked(tokens_);
}

std::vector<AttributionTable::Row> AttributionTable::RankedRules() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Ranked(rules_);
}

std::vector<AttributionTable::Row> AttributionTable::RankedServices() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Ranked(services_);
}

uint64_t AttributionTable::dfa_cache_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dfa_hits_;
}

uint64_t AttributionTable::dfa_cache_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dfa_misses_;
}

std::string AttributionTable::ToJson() const {
  const std::vector<Row> tokens = RankedTokens();
  const std::vector<Row> rules = RankedRules();
  const std::vector<Row> services = RankedServices();
  uint64_t hits, misses;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hits = dfa_hits_;
    misses = dfa_misses_;
  }
  std::string out = "{\n";
  out += std::string("  \"enabled\": ") + (enabled() ? "true" : "false") +
         ",\n";
  AppendRows(&out, "tokens", tokens, /*with_live=*/true);
  out += ",\n";
  AppendRows(&out, "rules", rules, /*with_live=*/false);
  out += ",\n";
  AppendRows(&out, "services", services, /*with_live=*/false);
  out += ",\n  \"dfa_cache\": {\"hits\": " + std::to_string(hits) +
         ", \"misses\": " + std::to_string(misses) + "}\n}\n";
  return out;
}

void AttributionTable::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  tokens_.clear();
  rules_.clear();
  services_.clear();
  dfa_hits_ = 0;
  dfa_misses_ = 0;
}

AttributionTable& AttributionTable::Default() {
  static AttributionTable* const kTable = new AttributionTable();
  return *kTable;
}

}  // namespace cfgtag::obs
