#ifndef CFGTAG_OBS_TRACE_H_
#define CFGTAG_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace cfgtag::obs {

// A completed span, as recorded by ScopedSpan. Timestamps are microseconds
// since the tracer was constructed; `tid` is a small dense id assigned per
// observed thread, matching what the Chrome trace export emits.
struct SpanRecord {
  std::string name;
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
  int depth = 0;  // nesting depth at record time (0 = top-level)
  uint32_t tid = 0;
};

// Collects spans and exports them as Chrome `trace_event` JSON — load the
// file via chrome://tracing or https://ui.perfetto.dev. Span begin/end is
// driven by ScopedSpan; spans nest per thread (a span opened while another
// is live on the same thread becomes its child).
//
// The buffer is a bounded ring: once `capacity` spans are stored, each new
// span overwrites the oldest one, so a long-lived service always holds the
// most recent window at O(capacity) memory. Overwrites are counted in
// dropped_spans() and mirrored into the default MetricsRegistry as
// `cfgtag_trace_spans_dropped_total`.
class Tracer {
 public:
  explicit Tracer(size_t capacity = 1 << 16);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Slash-joined path of the most recently *entered* span on any thread,
  // e.g. "core.Compile/hwgen.Generate" — still meaningful after the span
  // ends. Benches use it to say where a fatal Status came from.
  std::string LastSpanPath() const;

  // Completed spans in completion order (a parent therefore follows its
  // children), oldest retained span first.
  std::vector<SpanRecord> Snapshot() const;

  // Spans overwritten (oldest-first) because the ring was full.
  uint64_t dropped_spans() const;

  size_t capacity() const;

  // Resizes the ring, keeping the most recent min(n, size) spans. A
  // capacity of 0 drops every future span (still counted).
  void set_capacity(size_t n);

  // Writes the Chrome trace_event JSON ({"traceEvents": [...]}, "X" phase
  // complete events).
  void WriteChromeTrace(std::ostream& os) const;

  // Forgets all recorded spans (open ScopedSpans still record on exit).
  void Clear();

  // The process-wide tracer all built-in instrumentation writes to.
  static Tracer& Default();

 private:
  friend class ScopedSpan;

  uint64_t NowUs() const;
  void Record(SpanRecord record);
  void SetLastPath(std::string path);
  uint32_t ThreadId();

  size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;  // ring once full; spans_[ring_next_]
                                   // is the oldest retained span
  size_t ring_next_ = 0;
  uint64_t dropped_ = 0;
  std::string last_path_;
  uint32_t next_tid_ = 0;
};

// RAII span: records [construction, destruction) into a tracer. Spans on
// the same thread nest; the span path (for Tracer::LastSpanPath) is the
// slash-joined names of the enclosing ScopedSpans plus this one.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name, Tracer* tracer = &Tracer::Default());
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  const std::string& name() const { return name_; }

 private:
  Tracer* tracer_;
  std::string name_;
  uint64_t start_us_;
  int depth_;
  ScopedSpan* parent_;  // enclosing span on this thread (any tracer)
};

}  // namespace cfgtag::obs

#endif  // CFGTAG_OBS_TRACE_H_
