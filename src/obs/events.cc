#include "obs/events.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ostream>

namespace cfgtag::obs {

namespace {

thread_local uint64_t g_correlation_id = 0;

std::atomic<uint64_t> g_next_correlation{1};

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Signal-dump state. The handler only reads g_dump_path and calls
// async-signal-safe functions.
char g_dump_path[512] = {0};

void SignalDumpHandler(int sig) {
  if (g_dump_path[0] != '\0') {
    const int fd =
        ::open(g_dump_path, O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd >= 0) {
      FlightRecorder::Default().DumpTo(fd);
      ::close(fd);
    }
  }
  // Restore the default disposition and re-raise so the process still dies
  // with the conventional signal exit status.
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kStatusError:
      return "status_error";
    case EventKind::kNidsAlert:
      return "nids_alert";
    case EventKind::kDfaCacheFlush:
      return "dfa_cache_flush";
    case EventKind::kDfaCacheFallback:
      return "dfa_cache_fallback";
    case EventKind::kSlowShard:
      return "slow_shard";
    case EventKind::kSessionPoolDrop:
      return "session_pool_drop";
    case EventKind::kCustom:
      return "custom";
    case EventKind::kDeadlineExceeded:
      return "deadline_exceeded";
    case EventKind::kScanCancelled:
      return "scan_cancelled";
    case EventKind::kBudgetPressure:
      return "budget_pressure";
    case EventKind::kDegradedMode:
      return "degraded_mode";
    case EventKind::kFaultInjected:
      return "fault_injected";
    case EventKind::kStuckShard:
      return "stuck_shard";
    case EventKind::kShardFailed:
      return "shard_failed";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(RoundUpPow2(std::max<size_t>(capacity, 2))),
      slots_(new Slot[RoundUpPow2(std::max<size_t>(capacity, 2))]),
      epoch_(std::chrono::steady_clock::now()) {}

FlightRecorder::~FlightRecorder() { delete[] slots_; }

void FlightRecorder::Record(EventKind kind, uint64_t correlation_id,
                            int64_t a, int64_t b, std::string_view detail) {
  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = slots_[(seq - 1) & (capacity_ - 1)];
  // Claim: readers that see kBusy (or a seq that changed under them) skip
  // the slot. A writer lapped mid-write by another writer is not possible
  // short of capacity_ concurrent recorders, which the ring size makes
  // unreachable in practice; even then the loser only publishes a stale
  // seq that readers reject.
  //
  // Seqlock write protocol (Boehm, "Can seqlocks get along with
  // programming language memory models?"): the kBusy claim must become
  // visible before any payload word changes, and the payload words before
  // the committing seq — relaxed claim, release fence, relaxed payload
  // stores, release commit.
  slot.ready.store(kBusy, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  Event e;
  e.seq = seq;
  e.t_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  e.correlation_id = correlation_id;
  e.a = a;
  e.b = b;
  e.kind = kind;
  const size_t n = std::min(detail.size(), sizeof(e.detail) - 1);
  std::memcpy(e.detail, detail.data(), n);
  e.detail[n] = '\0';
  uint64_t words[kEventWords] = {0};
  std::memcpy(words, &e, sizeof(e));
  for (size_t w = 0; w < kEventWords; ++w) {
    slot.words[w].store(words[w], std::memory_order_relaxed);
  }
  slot.ready.store(seq, std::memory_order_release);
}

bool FlightRecorder::ReadSlot(size_t i, Event* out) const {
  const Slot& slot = slots_[i];
  const uint64_t before = slot.ready.load(std::memory_order_acquire);
  if (before == 0 || before == kBusy) return false;
  uint64_t words[kEventWords];
  for (size_t w = 0; w < kEventWords; ++w) {
    words[w] = slot.words[w].load(std::memory_order_relaxed);
  }
  // The fence orders the payload loads before the re-read of the stamp:
  // an unchanged stamp therefore proves no writer touched the words while
  // they were being copied.
  std::atomic_thread_fence(std::memory_order_acquire);
  const uint64_t after = slot.ready.load(std::memory_order_relaxed);
  if (after != before) return false;
  std::memcpy(out, words, sizeof(Event));
  // The seq check rejects the one remaining hole: a writer that claimed,
  // wrote, and committed a *different* seq entirely between the two loads.
  return out->seq == before;
}

std::vector<Event> FlightRecorder::Snapshot() const {
  std::vector<Event> out;
  out.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    Event copy;
    if (ReadSlot(i, &copy)) out.push_back(copy);
  }
  std::sort(out.begin(), out.end(),
            [](const Event& x, const Event& y) { return x.seq < y.seq; });
  return out;
}

uint64_t FlightRecorder::dropped() const {
  const uint64_t total = next_.load(std::memory_order_relaxed);
  return total > capacity_ ? total - capacity_ : 0;
}

void FlightRecorder::WriteJson(std::ostream& os) const {
  const std::vector<Event> events = Snapshot();
  os << "{\n  \"recorded\": " << total_recorded()
     << ",\n  \"dropped\": " << dropped() << ",\n  \"events\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"seq\": " << e.seq << ", \"t_us\": " << e.t_us
       << ", \"kind\": \"" << EventKindName(e.kind)
       << "\", \"correlation_id\": " << e.correlation_id
       << ", \"a\": " << e.a << ", \"b\": " << e.b << ", \"detail\": \""
       << JsonEscape(e.detail) << "\"}";
  }
  os << (events.empty() ? "]\n}\n" : "\n  ]\n}\n");
}

void FlightRecorder::DumpTo(int fd) const {
  // Async-signal-safe: fixed stack buffers, snprintf, write. The detail
  // string is emitted raw minus quotes/backslashes/control bytes rather
  // than escaped — recorder details are plain identifiers by convention.
  char buf[256];
  for (size_t i = 0; i < capacity_; ++i) {
    Event e;
    if (!ReadSlot(i, &e)) continue;
    char detail[sizeof(e.detail)];
    size_t n = 0;
    for (size_t k = 0; k < sizeof(e.detail) && e.detail[k] != '\0'; ++k) {
      const unsigned char c = static_cast<unsigned char>(e.detail[k]);
      if (c >= 0x20 && c != '"' && c != '\\') detail[n++] = e.detail[k];
    }
    detail[n] = '\0';
    const int len = ::snprintf(
        buf, sizeof(buf),
        "{\"seq\": %llu, \"t_us\": %llu, \"kind\": \"%s\", "
        "\"correlation_id\": %llu, \"a\": %lld, \"b\": %lld, "
        "\"detail\": \"%s\"}\n",
        static_cast<unsigned long long>(e.seq),
        static_cast<unsigned long long>(e.t_us), EventKindName(e.kind),
        static_cast<unsigned long long>(e.correlation_id),
        static_cast<long long>(e.a), static_cast<long long>(e.b), detail);
    if (len > 0) {
      ssize_t ignored =
          ::write(fd, buf, std::min(static_cast<size_t>(len), sizeof(buf)));
      (void)ignored;
    }
  }
}

void FlightRecorder::InstallSignalDump(const char* path) {
  if (path == nullptr) path = "";
  std::strncpy(g_dump_path, path, sizeof(g_dump_path) - 1);
  g_dump_path[sizeof(g_dump_path) - 1] = '\0';
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &SignalDumpHandler;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

void FlightRecorder::Clear() {
  next_.store(0, std::memory_order_relaxed);
  for (size_t i = 0; i < capacity_; ++i) {
    slots_[i].ready.store(0, std::memory_order_relaxed);
  }
}

FlightRecorder& FlightRecorder::Default() {
  static FlightRecorder* const kRecorder = new FlightRecorder();
  return *kRecorder;
}

uint64_t NextCorrelationId() {
  return g_next_correlation.fetch_add(1, std::memory_order_relaxed);
}

uint64_t CurrentCorrelationId() { return g_correlation_id; }

CorrelationScope::CorrelationScope(uint64_t id) : prev_(g_correlation_id) {
  g_correlation_id = id;
}

CorrelationScope::~CorrelationScope() { g_correlation_id = prev_; }

void RecordEvent(EventKind kind, int64_t a, int64_t b,
                 std::string_view detail) {
  FlightRecorder::Default().Record(kind, CurrentCorrelationId(), a, b,
                                   detail);
}

}  // namespace cfgtag::obs
