#ifndef CFGTAG_OBS_STATS_SERVER_H_
#define CFGTAG_OBS_STATS_SERVER_H_

#include <atomic>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"

namespace cfgtag::obs {

// Dependency-free embedded HTTP stats server: a loopback-only listening
// socket with a blocking accept loop on one dedicated thread, serving the
// process's observability surfaces live:
//
//   /healthz       "ok" liveness probe
//   /metrics       Prometheus text exposition of the default registry
//   /metrics.json  the same registry as JSON
//   /trace.json    Chrome trace_event JSON of the default tracer
//   /events        the flight recorder's event ring as JSON
//   /rules         the attribution table's ranked hot-rule/token JSON
//   /              a plain-text index of the endpoints above
//
// Connections are handled serially (scrapers poll every few seconds; a
// second connection simply queues in the accept backlog), HTTP/1.0 style:
// read one request, write one Content-Length response, close. The server
// binds 127.0.0.1 only — it exposes internals and has no auth.
class StatsServer {
 public:
  StatsServer() = default;
  ~StatsServer() { Stop(); }
  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  // Binds 127.0.0.1:port (port 0 = kernel-assigned, see port()) and starts
  // the accept thread. Fails if already running or the bind fails. A
  // stopped server can be started again (same or different port).
  Status Start(int port);

  // Shuts the listener down, joins the accept thread, and closes the
  // listen fd — in that order, exactly once. Idempotent, and safe to call
  // from several threads concurrently (Start/Stop serialize on an
  // internal lifecycle mutex; only the call that observes the thread
  // joinable joins it).
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // The bound port (meaningful after a successful Start()).
  int port() const { return port_; }

  // Total requests served (any endpoint, 404s included).
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void Serve();
  void HandleConnection(int fd);

  // Serializes Start()/Stop() (and the destructor's Stop()): without it,
  // two concurrent Stop() calls could both join thread_ (UB) or close the
  // listen fd twice — racing a close() against an unrelated open() that
  // reused the descriptor number. The accept thread never takes it.
  std::mutex lifecycle_mu_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace cfgtag::obs

#endif  // CFGTAG_OBS_STATS_SERVER_H_
