#ifndef CFGTAG_OBS_METRICS_H_
#define CFGTAG_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cfgtag::obs {

// Process-wide observability primitives. Everything here is thread-safe:
// counters and gauges are lock-free atomics, histograms take one atomic
// add per bucket observation, and the registry locks only on first lookup
// of a metric name (instrumented call sites cache the returned pointer).
//
// Naming follows Prometheus conventions: `cfgtag_<area>_<what>_<unit>`,
// optional labels inline in the metric name, e.g.
// `cfgtag_compile_stage_seconds{stage="hwgen"}`. The registry treats the
// full string (labels included) as the key and splits it only for
// exposition, so a labelled family is simply several registered metrics
// sharing a base name.

// A monotonically increasing counter.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// A value that can go up and down (sizes, ratios, last-seen readings).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram with Prometheus `le` (less-or-equal) semantics:
// an observation v lands in the first bucket whose upper bound satisfies
// v <= bound; observations above every bound land only in the implicit
// +Inf bucket. Bounds must be strictly increasing.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t TotalCount() const {
    return count_.load(std::memory_order_relaxed);
  }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  // Non-cumulative count of bucket i (bounds().size() + 1 buckets; the
  // last is +Inf). Exposition applies the cumulative sum.
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Default buckets for operation latencies, in seconds: 1us .. 10s,
// decade-stepped with a 1-2.5-5 subdivision. Wide enough to cover both a
// sub-millisecond Tag() call and a multi-second Implement() flow.
const std::vector<double>& DefaultLatencyBuckets();

// Default buckets for byte/size distributions: 64 B .. 16 MiB.
const std::vector<double>& DefaultSizeBuckets();

// Default buckets for small-count distributions (batch sizes, shard
// counts, queue depths): 1 .. 4096, power-of-two stepped.
const std::vector<double>& DefaultCountBuckets();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Finds or creates a metric. Pointers are stable for the registry's
  // lifetime; `help` is recorded on first creation only. It is a fatal
  // logic error to register the same name as two different metric kinds.
  Counter* GetCounter(const std::string& name, std::string_view help = "");
  Gauge* GetGauge(const std::string& name, std::string_view help = "");
  Histogram* GetHistogram(const std::string& name, std::string_view help = "",
                          const std::vector<double>& bounds =
                              DefaultLatencyBuckets());

  // Prometheus text exposition format (version 0.0.4): # HELP / # TYPE
  // lines followed by samples; histograms expand to cumulative
  // `_bucket{le=...}` series plus `_sum` and `_count`.
  std::string ExpositionText() const;

  // The same content as JSON — the machine-readable trail benches append
  // to their BENCH_*.json outputs.
  std::string ToJson() const;

  // Drops every registered metric. Outstanding pointers become dangling;
  // only tests that own the registry should call this.
  void Clear();

  // The process-wide registry all built-in instrumentation writes to.
  static MetricsRegistry& Default();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::string> help_;
};

// RAII latency timer: observes the elapsed wall time, in seconds, into a
// histogram at scope exit. A null histogram disables the timer.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    if (histogram_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->Observe(
        std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
            .count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cfgtag::obs

#endif  // CFGTAG_OBS_METRICS_H_
