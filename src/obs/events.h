#ifndef CFGTAG_OBS_EVENTS_H_
#define CFGTAG_OBS_EVENTS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

namespace cfgtag::obs {

// What happened. The set is deliberately small: the flight recorder is a
// crash-dump aid, not a general event bus, and every kind corresponds to
// one instrumented site in the engine.
enum class EventKind : uint16_t {
  kStatusError = 0,     // a Status failure surfaced to a dump point
  kNidsAlert = 1,       // nids::ContextFilter raised an alert
  kDfaCacheFlush = 2,   // lazy-DFA transition cache dropped at the byte cap
  kDfaCacheFallback = 3,// lazy-DFA session gave up caching (fused fallback)
  kSlowShard = 4,       // a ScanEngine shard/stream exceeded the slow bound
  kSessionPoolDrop = 5, // session pool freed scratch at the retention cap
  kCustom = 6,
  kDeadlineExceeded = 7,  // a controlled scan aborted at its deadline
  kScanCancelled = 8,     // a controlled scan observed its CancelToken
  kBudgetPressure = 9,    // process budget climbed a degradation rung
  kDegradedMode = 10,     // a component entered/left a degraded rung
  kFaultInjected = 11,    // FaultInjector fired at an armed site
  kStuckShard = 12,       // watchdog: a running shard stopped progressing
  kShardFailed = 13,      // a ScanEngine shard finished with an error
};

const char* EventKindName(EventKind kind);

// One recorded event. `a` and `b` are kind-specific payload words (stream
// offsets, byte counts, shard indices...); `detail` is a short free-form
// tail (rule id, token name), truncated to fit.
struct Event {
  uint64_t seq = 0;             // 1-based global sequence number
  uint64_t t_us = 0;            // microseconds since recorder construction
  uint64_t correlation_id = 0;  // 0 = none (see CorrelationScope)
  int64_t a = 0;
  int64_t b = 0;
  EventKind kind = EventKind::kCustom;
  char detail[64] = {0};
};

// Crash-safe flight recorder: a fixed-capacity lock-free ring of the last
// N structured events. Record() is wait-free for writers (one fetch_add
// plus relaxed atomic word stores into an owned slot); readers snapshot
// without blocking writers and simply skip slots that are mid-write. Each
// slot is a seqlock: the payload lives in atomic words (never plain
// memory), so a reader racing a writer reads stale or mixed *values*,
// never a formal data race, and the before/after stamp check rejects any
// mixed copy. The ring overwrites oldest-first, so after any crash the
// tail holds the seconds leading up to it — DumpTo(fd) is
// async-signal-safe and is what the SIGINT/SIGTERM hook calls.
class FlightRecorder {
 public:
  // Capacity is rounded up to a power of two; default keeps the ring a few
  // hundred KB.
  explicit FlightRecorder(size_t capacity = 4096);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  ~FlightRecorder();

  void Record(EventKind kind, uint64_t correlation_id, int64_t a, int64_t b,
              std::string_view detail);

  // Committed events, oldest first. Slots being overwritten concurrently
  // are skipped — the snapshot is a consistent sample, not a barrier.
  std::vector<Event> Snapshot() const;

  // {"events": [...], "recorded": N, "dropped": M} — the /events payload.
  void WriteJson(std::ostream& os) const;

  // Async-signal-safe dump (snprintf + write only): one JSON line per
  // event. Safe to call from a SIGINT/SIGTERM handler.
  void DumpTo(int fd) const;

  // Installs a SIGINT/SIGTERM handler that dumps Default() to `path`,
  // then re-raises the default disposition. The path is copied into a
  // static buffer (truncated if very long); passing an empty path
  // uninstalls nothing but disables the dump.
  static void InstallSignalDump(const char* path);

  uint64_t total_recorded() const {
    return next_.load(std::memory_order_relaxed);
  }
  // Events overwritten before anyone read them (approximate: total minus
  // capacity, floored at zero).
  uint64_t dropped() const;
  size_t capacity() const { return capacity_; }

  // Forgets everything (tests). Not safe concurrently with Record().
  void Clear();

  // The process-wide recorder all built-in instrumentation writes to.
  static FlightRecorder& Default();

 private:
  // The event payload is stored as whole atomic words (an Event image laid
  // down with memcpy) rather than an Event member: every byte a reader can
  // observe mid-write is then reached only through an atomic access, which
  // is what makes the seqlock formally race-free (and TSan-clean) instead
  // of merely "torn copies get rejected".
  static constexpr size_t kEventWords = (sizeof(Event) + 7) / 8;
  struct Slot {
    // 0 = empty, kBusy = mid-write, otherwise the committed Event::seq.
    std::atomic<uint64_t> ready{0};
    std::atomic<uint64_t> words[kEventWords];
  };
  static constexpr uint64_t kBusy = ~0ULL;

  // Seqlock read of slot i into *out. Returns false for empty, mid-write,
  // or overwritten-during-copy slots. Async-signal-safe (lock-free atomic
  // loads and memcpy only).
  bool ReadSlot(size_t i, Event* out) const;

  size_t capacity_;  // power of two
  Slot* slots_;
  std::atomic<uint64_t> next_{0};
  std::chrono::steady_clock::time_point epoch_;
};

// Fresh process-unique correlation id (starts at 1; 0 means "none").
uint64_t NextCorrelationId();

// The current thread's correlation id, 0 when no scope is open. Events
// recorded through RecordEvent() pick it up automatically, so an alert
// raised inside a ScanEngine shard carries the shard's id.
uint64_t CurrentCorrelationId();

// RAII: sets the calling thread's correlation id for the scope's lifetime,
// restoring the previous one on exit (scopes nest).
class CorrelationScope {
 public:
  explicit CorrelationScope(uint64_t id);
  ~CorrelationScope();
  CorrelationScope(const CorrelationScope&) = delete;
  CorrelationScope& operator=(const CorrelationScope&) = delete;

 private:
  uint64_t prev_;
};

// Records into FlightRecorder::Default() with the current thread's
// correlation id.
void RecordEvent(EventKind kind, int64_t a, int64_t b,
                 std::string_view detail);

}  // namespace cfgtag::obs

#endif  // CFGTAG_OBS_EVENTS_H_
