#include "obs/trace.h"

#include <algorithm>
#include <ostream>
#include <utility>

#include "obs/metrics.h"

namespace cfgtag::obs {

namespace {

// Innermost live span of the current thread, across all tracers — spans
// nest lexically regardless of which tracer they record into.
thread_local ScopedSpan* g_current_span = nullptr;

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

Tracer::Tracer(size_t capacity)
    : capacity_(capacity), epoch_(std::chrono::steady_clock::now()) {}

uint64_t Tracer::NowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::Record(SpanRecord record) {
  bool overwrote = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (capacity_ == 0) {
      ++dropped_;
      overwrote = true;
    } else if (spans_.size() < capacity_) {
      spans_.push_back(std::move(record));
    } else {
      spans_[ring_next_] = std::move(record);
      ring_next_ = (ring_next_ + 1) % capacity_;
      ++dropped_;
      overwrote = true;
    }
  }
  // Counter fetched per drop, not cached: drops are already the slow path
  // and tests may Clear() the registry, which would dangle a cached
  // pointer.
  if (overwrote) {
    MetricsRegistry::Default()
        .GetCounter("cfgtag_trace_spans_dropped_total",
                    "Trace spans overwritten because the span ring was full")
        ->Increment();
  }
}

void Tracer::SetLastPath(std::string path) {
  std::lock_guard<std::mutex> lock(mu_);
  last_path_ = std::move(path);
}

uint32_t Tracer::ThreadId() {
  // Dense per-tracer thread ids, assigned on first use by each thread.
  thread_local std::vector<std::pair<Tracer*, uint32_t>> cache;
  for (const auto& [tracer, id] : cache) {
    if (tracer == this) return id;
  }
  uint32_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_tid_++;
  }
  cache.emplace_back(this, id);
  return id;
}

std::string Tracer::LastSpanPath() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_path_;
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out = spans_;
  if (ring_next_ != 0) {
    std::rotate(out.begin(),
                out.begin() + static_cast<ptrdiff_t>(ring_next_), out.end());
  }
  return out;
}

uint64_t Tracer::dropped_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

size_t Tracer::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void Tracer::set_capacity(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  // Linearize oldest-first before resizing so truncation drops from the
  // old end.
  if (ring_next_ != 0) {
    std::rotate(spans_.begin(),
                spans_.begin() + static_cast<ptrdiff_t>(ring_next_),
                spans_.end());
    ring_next_ = 0;
  }
  capacity_ = n;
  if (spans_.size() > n) {
    spans_.erase(spans_.begin(),
                 spans_.end() - static_cast<ptrdiff_t>(n));
  }
}

void Tracer::WriteChromeTrace(std::ostream& os) const {
  std::vector<SpanRecord> spans = Snapshot();
  os << "{\"traceEvents\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) os << ",";
    os << "\n  {\"name\": \"" << JsonEscape(spans[i].name)
       << "\", \"cat\": \"cfgtag\", \"ph\": \"X\", \"ts\": "
       << spans[i].start_us << ", \"dur\": " << spans[i].dur_us
       << ", \"pid\": 0, \"tid\": " << spans[i].tid << "}";
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  ring_next_ = 0;
  dropped_ = 0;
  last_path_.clear();
}

Tracer& Tracer::Default() {
  static Tracer* const kTracer = new Tracer();
  return *kTracer;
}

ScopedSpan::ScopedSpan(std::string name, Tracer* tracer)
    : tracer_(tracer),
      name_(std::move(name)),
      start_us_(tracer->NowUs()),
      depth_(g_current_span == nullptr ? 0 : g_current_span->depth_ + 1),
      parent_(g_current_span) {
  g_current_span = this;
  std::string path;
  for (const ScopedSpan* s = this; s != nullptr; s = s->parent_) {
    path = path.empty() ? s->name_ : s->name_ + "/" + path;
  }
  tracer_->SetLastPath(std::move(path));
}

ScopedSpan::~ScopedSpan() {
  g_current_span = parent_;
  SpanRecord record;
  record.name = std::move(name_);
  record.start_us = start_us_;
  const uint64_t end = tracer_->NowUs();
  record.dur_us = end > start_us_ ? end - start_us_ : 0;
  record.depth = depth_;
  record.tid = tracer_->ThreadId();
  tracer_->Record(std::move(record));
}

}  // namespace cfgtag::obs
