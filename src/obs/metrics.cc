#include "obs/metrics.h"

#include <cassert>
#include <cstdio>
#include <set>

namespace cfgtag::obs {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// Splits "base{labels}" into its parts; labels comes back empty when the
// name carries none.
void SplitName(const std::string& name, std::string* base,
               std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  // Keep the label body without the surrounding braces.
  size_t end = name.rfind('}');
  if (end == std::string::npos || end <= brace) end = name.size();
  *labels = name.substr(brace + 1, end - brace - 1);
}

// Prometheus text-format escaping for a HELP line: backslash and newline
// only (the spec leaves everything else literal).
std::string EscapeHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

// Escapes the label *values* inside a `key="value",key2="value2"` body per
// the text-format spec: backslash -> \\, quote -> \", newline -> \n.
// Values arrive raw (callers build names by splicing strings between `="`
// and `"`), so a quote inside a value is only treated as the closing quote
// when the body ends or a ',' follows — the one ambiguous case, `",` as
// literal value content, is misread, which is the price of carrying labels
// inline in the metric name.
std::string EscapeLabelBody(const std::string& body) {
  std::string out;
  out.reserve(body.size() + 8);
  bool in_value = false;
  for (size_t i = 0; i < body.size(); ++i) {
    const char c = body[i];
    if (!in_value) {
      out += c;
      if (c == '"') in_value = true;
      continue;
    }
    if (c == '"') {
      if (i + 1 == body.size() || body[i + 1] == ',') {
        out += '"';
        in_value = false;
      } else {
        out += "\\\"";
      }
    } else if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    assert(bounds_[i - 1] < bounds_[i] && "bucket bounds must increase");
  }
}

void Histogram::Observe(double value) {
  size_t lo = 0, hi = bounds_.size();
  while (lo < hi) {  // first bound with value <= bound
    const size_t mid = (lo + hi) / 2;
    if (value <= bounds_[mid]) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  buckets_[lo].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

const std::vector<double>& DefaultLatencyBuckets() {
  static const std::vector<double>* const kBuckets = new std::vector<double>{
      1e-6,   2.5e-6, 5e-6,   1e-5,   2.5e-5, 5e-5,   1e-4,   2.5e-4,
      5e-4,   1e-3,   2.5e-3, 5e-3,   1e-2,   2.5e-2, 5e-2,   1e-1,
      2.5e-1, 5e-1,   1.0,    2.5,    5.0,    10.0};
  return *kBuckets;
}

const std::vector<double>& DefaultSizeBuckets() {
  static const std::vector<double>* const kBuckets = new std::vector<double>{
      64,      256,     1024,    4096,     16384,    65536,
      262144,  1048576, 4194304, 16777216};
  return *kBuckets;
}

const std::vector<double>& DefaultCountBuckets() {
  static const std::vector<double>* const kBuckets = new std::vector<double>{
      1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096};
  return *kBuckets;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(gauges_.find(name) == gauges_.end() &&
         histograms_.find(name) == histograms_.end() &&
         "metric registered with a different kind");
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
    if (!help.empty()) help_.emplace(name, std::string(help));
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(counters_.find(name) == counters_.end() &&
         histograms_.find(name) == histograms_.end() &&
         "metric registered with a different kind");
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
    if (!help.empty()) help_.emplace(name, std::string(help));
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::string_view help,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(counters_.find(name) == counters_.end() &&
         gauges_.find(name) == gauges_.end() &&
         "metric registered with a different kind");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<Histogram>(bounds)).first;
    if (!help.empty()) help_.emplace(name, std::string(help));
  }
  return it->second.get();
}

std::string MetricsRegistry::ExpositionText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  std::set<std::string> headered;

  auto emit_header = [&](const std::string& name, const std::string& base,
                         const char* type) {
    if (!headered.insert(base).second) return;
    auto help = help_.find(name);
    if (help != help_.end()) {
      out += "# HELP " + base + " " + EscapeHelp(help->second) + "\n";
    }
    out += "# TYPE " + base + " " + type + "\n";
  };
  auto series_name = [](const std::string& base, const std::string& labels) {
    return labels.empty() ? base
                          : base + "{" + EscapeLabelBody(labels) + "}";
  };

  std::string base, labels;
  for (const auto& [name, counter] : counters_) {
    SplitName(name, &base, &labels);
    emit_header(name, base, "counter");
    out += series_name(base, labels) + " " +
           std::to_string(counter->Value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    SplitName(name, &base, &labels);
    emit_header(name, base, "gauge");
    out += series_name(base, labels) + " " + FormatDouble(gauge->Value()) +
           "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    SplitName(name, &base, &labels);
    emit_header(name, base, "histogram");
    if (!labels.empty()) labels = EscapeLabelBody(labels);
    const std::string prefix = labels.empty() ? "" : labels + ",";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < hist->bounds().size(); ++i) {
      cumulative += hist->BucketCount(i);
      out += base + "_bucket{" + prefix + "le=\"" +
             FormatDouble(hist->bounds()[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    cumulative += hist->BucketCount(hist->bounds().size());
    out += base + "_bucket{" + prefix + "le=\"+Inf\"} " +
           std::to_string(cumulative) + "\n";
    const std::string suffix = labels.empty() ? "" : "{" + labels + "}";
    out += base + "_sum" + suffix + " " + FormatDouble(hist->Sum()) + "\n";
    out += base + "_count" + suffix + " " +
           std::to_string(hist->TotalCount()) + "\n";
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) +
           "\": " + std::to_string(counter->Value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) +
           "\": " + FormatDouble(gauge->Value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) + "\": {\"count\": " +
           std::to_string(hist->TotalCount()) +
           ", \"sum\": " + FormatDouble(hist->Sum()) + ", \"buckets\": [";
    uint64_t cumulative = 0;
    for (size_t i = 0; i <= hist->bounds().size(); ++i) {
      cumulative += hist->BucketCount(i);
      if (i > 0) out += ", ";
      out += "{\"le\": ";
      out += i < hist->bounds().size()
                 ? FormatDouble(hist->bounds()[i])
                 : std::string("\"+Inf\"");
      out += ", \"count\": " + std::to_string(cumulative) + "}";
    }
    out += "]}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  help_.clear();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* const kRegistry = new MetricsRegistry();
  return *kRegistry;
}

}  // namespace cfgtag::obs
