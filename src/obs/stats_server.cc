#include "obs/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "obs/attribution.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cfgtag::obs {

namespace {

struct Response {
  int code = 200;
  const char* reason = "OK";
  const char* content_type = "text/plain; charset=utf-8";
  std::string body;
};

Response BuildResponse(const std::string& path) {
  Response r;
  if (path == "/healthz") {
    r.body = "ok\n";
  } else if (path == "/metrics") {
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = MetricsRegistry::Default().ExpositionText();
  } else if (path == "/metrics.json") {
    r.content_type = "application/json";
    r.body = MetricsRegistry::Default().ToJson();
  } else if (path == "/trace.json") {
    r.content_type = "application/json";
    std::ostringstream os;
    Tracer::Default().WriteChromeTrace(os);
    r.body = os.str();
  } else if (path == "/events") {
    r.content_type = "application/json";
    std::ostringstream os;
    FlightRecorder::Default().WriteJson(os);
    r.body = os.str();
  } else if (path == "/rules") {
    r.content_type = "application/json";
    r.body = AttributionTable::Default().ToJson();
  } else if (path == "/") {
    r.body =
        "cfgtag stats server\n"
        "  /healthz       liveness probe\n"
        "  /metrics       Prometheus text exposition\n"
        "  /metrics.json  metrics registry as JSON\n"
        "  /trace.json    Chrome trace_event JSON\n"
        "  /events        flight-recorder event ring\n"
        "  /rules         ranked hot-rule/token attribution\n";
  } else {
    r.code = 404;
    r.reason = "Not Found";
    r.body = "not found\n";
  }
  return r;
}

// First line of "GET /path HTTP/1.x" -> "/path" ("" on anything else).
std::string ParseRequestPath(const char* buf, size_t n) {
  const std::string_view req(buf, n);
  if (req.rfind("GET ", 0) != 0) return "";
  const size_t start = 4;
  const size_t end = req.find(' ', start);
  if (end == std::string_view::npos) return "";
  std::string path(req.substr(start, end - start));
  // Strip a query string; the endpoints take no parameters.
  const size_t q = path.find('?');
  if (q != std::string::npos) path.resize(q);
  return path;
}

void WriteAll(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w <= 0) return;
    off += static_cast<size_t>(w);
  }
}

}  // namespace

Status StatsServer::Start(int port) {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (running()) return InternalError("stats server already running");
  // A previous run that was never Stop()ped to completion (it cannot
  // happen through the public API, but keep the invariant local): the
  // thread must be joined before being reassigned.
  if (thread_.joinable()) thread_.join();
  if (port < 0 || port > 65535) {
    return InvalidArgumentError("stats port out of range: " +
                                std::to_string(port));
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return InternalError("bind(127.0.0.1:" + std::to_string(port) +
                         "): " + err);
  }
  if (::listen(fd, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return InternalError("listen(): " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return Status::Ok();
}

void StatsServer::Stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  running_.store(false, std::memory_order_release);
  // shutdown() wakes the blocking accept(); the fd itself is closed only
  // after the accept thread has exited, so the descriptor number cannot
  // be recycled by a concurrent open() while accept() still references
  // it. The lifecycle mutex makes this a single join path: a second
  // concurrent Stop() blocks until the first finished and then sees a
  // non-joinable thread and listen_fd_ == -1, making every step —
  // shutdown, join, close — happen exactly once per Start().
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void StatsServer::Serve() {
  while (running_.load(std::memory_order_acquire)) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      // shutdown() or a fatal socket error: exit the loop. Stop() owns
      // the fd teardown.
      return;
    }
    HandleConnection(conn);
    ::close(conn);
  }
}

void StatsServer::HandleConnection(int fd) {
  // One read covers any realistic request line + headers from a scraper;
  // a truncated request simply 404s.
  char buf[4096];
  const ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
  if (n <= 0) return;
  const std::string path = ParseRequestPath(buf, static_cast<size_t>(n));
  const Response r = BuildResponse(path.empty() ? "\x01" : path);
  requests_.fetch_add(1, std::memory_order_relaxed);
  MetricsRegistry::Default()
      .GetCounter("cfgtag_stats_requests_total",
                  "HTTP requests served by the stats server")
      ->Increment();

  std::string head = "HTTP/1.0 " + std::to_string(r.code) + " " + r.reason +
                     "\r\nContent-Type: " + r.content_type +
                     "\r\nContent-Length: " + std::to_string(r.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  WriteAll(fd, head.data(), head.size());
  WriteAll(fd, r.body.data(), r.body.size());
}

}  // namespace cfgtag::obs
