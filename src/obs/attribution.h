#ifndef CFGTAG_OBS_ATTRIBUTION_H_
#define CFGTAG_OBS_ATTRIBUTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cfgtag::obs {

class Counter;

// Per-rule / per-token hot-path attribution. The tagging engines keep
// cheap per-session arrays (one uint64 per token, bumped with plain
// stores on the per-byte path) and merge them here on session release —
// so the hot loop never takes this mutex, and the table still converges
// to process-wide totals. Rows also mirror into the default
// MetricsRegistry as labeled counters, so /metrics carries the same
// attribution the /rules ranking shows.
//
// Attribution is OFF by default: enabled() is a process-wide flag the
// engines sample at session Reset() time. When off, the per-byte cost is
// a single predicted-not-taken branch.
class AttributionTable {
 public:
  struct Row {
    std::string name;
    uint64_t hits = 0;        // matches (tokens) / alerts (rules) /
                              // messages (services)
    uint64_t live_words = 0;  // fused live-bitmap word visits (tokens only)
    // Registry mirrors, resolved once per row: the registry never deletes
    // counters, and Clear() drops the rows (and these handles) wholesale,
    // so a cached pointer can never dangle. Building the labeled metric
    // name on every merge was the dominant cost of a session release.
    Counter* hits_counter = nullptr;
    Counter* live_counter = nullptr;
  };

  AttributionTable() = default;
  AttributionTable(const AttributionTable&) = delete;
  AttributionTable& operator=(const AttributionTable&) = delete;

  // Process-wide switch. The enable/disable protocol:
  //
  //  * Engines sample enabled() exactly once per session, at Reset() (the
  //    pool-checkout point), into a per-session attr_on_ flag — never
  //    mid-stream. A toggle therefore changes what *future* checkouts
  //    count; sessions already scanning finish under the value they
  //    sampled, so their per-session arrays are merged or skipped as one
  //    consistent unit.
  //  * set_enabled() is a release store and enabled() an acquire load:
  //    everything the enabling thread published before flipping the
  //    switch (rule tables, config, pre-seeded rows in this table) is
  //    visible to any session whose Reset() observes the new value. A
  //    relaxed load would let a session act on `true` while the rows it
  //    is about to merge into were not yet visible.
  //  * Merges themselves (AddToken/AddRule/...) serialize on mu_, so a
  //    toggle never tears a row: readers (RankedTokens, ToJson) always
  //    see fully-published rows regardless of the switch.
  static bool enabled() {
    return enabled_.load(std::memory_order_acquire);
  }
  static void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_release);
  }

  // Merge one session's (or scan's) deltas. Zero deltas are dropped.
  void AddToken(std::string_view name, uint64_t matches,
                uint64_t live_words);
  void AddRule(std::string_view id, uint64_t alerts);
  void AddService(std::string_view name, uint64_t messages);
  void AddDfaCache(uint64_t hits, uint64_t misses);

  // Rows sorted by hits descending (ties by name).
  std::vector<Row> RankedTokens() const;
  std::vector<Row> RankedRules() const;
  std::vector<Row> RankedServices() const;

  uint64_t dfa_cache_hits() const;
  uint64_t dfa_cache_misses() const;

  // The /rules payload: {"enabled": ..., "tokens": [...], "rules": [...],
  // "services": [...], "dfa_cache": {...}}, each list ranked.
  std::string ToJson() const;

  void Clear();

  // The process-wide table all built-in instrumentation merges into.
  static AttributionTable& Default();

 private:
  static std::atomic<bool> enabled_;

  mutable std::mutex mu_;
  std::map<std::string, Row, std::less<>> tokens_;
  std::map<std::string, Row, std::less<>> rules_;
  std::map<std::string, Row, std::less<>> services_;
  uint64_t dfa_hits_ = 0;
  uint64_t dfa_misses_ = 0;
};

}  // namespace cfgtag::obs

#endif  // CFGTAG_OBS_ATTRIBUTION_H_
