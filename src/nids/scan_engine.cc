#include "nids/scan_engine.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "core/resilience/fault_injector.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tagger/tag.h"

namespace cfgtag::nids {

namespace {

struct EngineMetrics {
  obs::Counter* batches;
  obs::Counter* streams;
  obs::Counter* sharded_scans;
  obs::Counter* shards;
  obs::Counter* bytes;
  obs::Histogram* batch_streams;
  obs::Histogram* batch_seconds;

  static const EngineMetrics& Get() {
    static const EngineMetrics* const kMetrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      auto* m = new EngineMetrics;
      m->batches = reg.GetCounter("cfgtag_engine_batches_total",
                                  "ScanEngine::ScanBatch invocations");
      m->streams = reg.GetCounter("cfgtag_engine_streams_total",
                                  "Streams scanned through the engine");
      m->sharded_scans =
          reg.GetCounter("cfgtag_engine_sharded_scans_total",
                         "ScanEngine::ScanStream invocations");
      m->shards = reg.GetCounter("cfgtag_engine_shards_total",
                                 "Shards cut by ScanStream");
      m->bytes = reg.GetCounter("cfgtag_engine_bytes_total",
                                "Bytes scanned through the engine");
      m->batch_streams = reg.GetHistogram(
          "cfgtag_engine_batch_streams", "Streams per ScanBatch call",
          obs::DefaultCountBuckets());
      m->batch_seconds = reg.GetHistogram(
          "cfgtag_engine_batch_seconds",
          "Wall time of one ScanBatch/ScanStream call");
      return m;
    }();
    return *kMetrics;
  }
};

}  // namespace

ScanEngine::ScanEngine(const ContextFilter* filter,
                       const ScanEngineOptions& options)
    : filter_(filter), options_(options), pool_(options.num_threads) {}

std::vector<StreamResult> ScanEngine::ScanBatch(
    const std::vector<std::string_view>& streams) const {
  const EngineMetrics& metrics = EngineMetrics::Get();
  obs::ScopedSpan span("nids.ScanBatch");
  obs::ScopedTimer timer(metrics.batch_seconds);
  std::vector<StreamResult> results(streams.size());
  pool_.RunIndexed(streams.size(), [&](size_t i) {
    // Each stream gets its own correlation id: alerts it raises inherit
    // the id via the thread-local scope, and a slow unit's event carries
    // the same id — so a dump ties alert to shard.
    obs::CorrelationScope cscope(obs::NextCorrelationId());
    const auto t0 = std::chrono::steady_clock::now();
    results[i].alerts = filter_->Scan(streams[i], &results[i].stats);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (options_.slow_shard_seconds > 0 &&
        secs >= options_.slow_shard_seconds) {
      obs::RecordEvent(obs::EventKind::kSlowShard,
                       static_cast<int64_t>(streams[i].size()),
                       static_cast<int64_t>(i), "slow batch stream");
    }
  });
  uint64_t bytes = 0;
  for (const StreamResult& r : results) bytes += r.stats.bytes;
  metrics.batches->Increment();
  metrics.streams->Increment(streams.size());
  metrics.bytes->Increment(bytes);
  metrics.batch_streams->Observe(static_cast<double>(streams.size()));
  return results;
}

StreamResult ScanEngine::ScanStream(std::string_view stream) const {
  const EngineMetrics& metrics = EngineMetrics::Get();
  obs::ScopedSpan span("nids.ScanStream");
  obs::ScopedTimer timer(metrics.batch_seconds);
  metrics.sharded_scans->Increment();
  metrics.bytes->Increment(stream.size());

  const tagger::TaggerOptions& topt = filter_->tagger().options().tagger;
  std::vector<size_t> starts{0};
  // Shard only when a cut is provably invisible: resync arm mode, at a
  // record separator that the tagger also treats as a delimiter (a record
  // byte that could be token content would make the cut itself lossy).
  if (topt.EffectiveArmMode() == tagger::ArmMode::kResync &&
      !options_.record_delimiters.Empty() &&
      options_.record_delimiters.Minus(topt.delimiters).Empty()) {
    const size_t max_shards =
        options_.max_shards != 0
            ? options_.max_shards
            : 2 * static_cast<size_t>(pool_.num_threads());
    starts = core::ShardSplitPoints(stream, options_.record_delimiters,
                                    max_shards, options_.min_shard_bytes);
  }
  metrics.shards->Increment(starts.size());
  if (starts.size() == 1) {
    StreamResult result;
    result.alerts = filter_->Scan(stream, &result.stats);
    return result;
  }

  std::vector<StreamResult> shard(starts.size());
  pool_.RunIndexed(starts.size(), [&](size_t i) {
    obs::CorrelationScope cscope(obs::NextCorrelationId());
    const auto t0 = std::chrono::steady_clock::now();
    const size_t begin = starts[i];
    const size_t end = i + 1 < starts.size() ? starts[i + 1] : stream.size();
    shard[i].alerts =
        filter_->Scan(stream.substr(begin, end - begin), &shard[i].stats);
    for (Alert& a : shard[i].alerts) a.end += begin;
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (options_.slow_shard_seconds > 0 &&
        secs >= options_.slow_shard_seconds) {
      obs::RecordEvent(obs::EventKind::kSlowShard,
                       static_cast<int64_t>(end - begin),
                       static_cast<int64_t>(i), "slow stream shard");
    }
  });

  // Shards cover disjoint increasing ranges and each shard's alerts are
  // already in stream order, so concatenation in shard order is the
  // sequential alert order.
  StreamResult merged;
  size_t total_alerts = 0;
  for (const StreamResult& s : shard) total_alerts += s.alerts.size();
  merged.alerts.reserve(total_alerts);
  for (StreamResult& s : shard) {
    merged.alerts.insert(merged.alerts.end(), s.alerts.begin(),
                         s.alerts.end());
    merged.stats.bytes += s.stats.bytes;
    merged.stats.tokens += s.stats.tokens;
    merged.stats.spans_scanned += s.stats.spans_scanned;
    merged.stats.alerts += s.stats.alerts;
  }
  return merged;
}

namespace {

namespace res = cfgtag::core::resilience;

// Per-unit lifecycle for the watchdog: only kRunning units can be stuck —
// a unit still queued behind a full pool makes no progress by design.
enum UnitState : int { kPending = 0, kRunning = 1, kDone = 2 };

}  // namespace

Status ScanEngine::RunControlled(size_t n,
                                 const res::ScanControl& control,
                                 const ControlledUnit& unit,
                                 const char* what) const {
  // The engine's own cancellations (watchdog) go through a child token so
  // the caller's token is never touched; units observe both.
  res::ScanControl eff = control;
  eff.cancel = control.cancel.Child();

  std::vector<Status> statuses(n);
  std::vector<std::atomic<uint64_t>> progress(n);
  std::vector<std::atomic<int>> state(n);
  std::vector<std::atomic<bool>> stuck(n);

  std::mutex wd_mu;
  std::condition_variable wd_cv;
  bool wd_done = false;
  std::thread watchdog;
  if (options_.stuck_shard_seconds > 0) {
    watchdog = std::thread([&] {
      using Clock = std::chrono::steady_clock;
      std::vector<uint64_t> last_prog(n, 0);
      std::vector<Clock::time_point> last_change(n, Clock::now());
      const double poll_s =
          std::clamp(options_.stuck_shard_seconds / 8, 0.01, 1.0);
      const auto poll = std::chrono::duration<double>(poll_s);
      std::unique_lock<std::mutex> lock(wd_mu);
      while (!wd_cv.wait_for(lock, poll, [&] { return wd_done; })) {
        const Clock::time_point now = Clock::now();
        for (size_t i = 0; i < n; ++i) {
          if (state[i].load(std::memory_order_relaxed) != kRunning) {
            last_change[i] = now;
            continue;
          }
          const uint64_t p = progress[i].load(std::memory_order_relaxed);
          if (p != last_prog[i]) {
            last_prog[i] = p;
            last_change[i] = now;
            continue;
          }
          if (std::chrono::duration<double>(now - last_change[i]).count() >=
                  options_.stuck_shard_seconds &&
              !stuck[i].exchange(true, std::memory_order_relaxed)) {
            obs::RecordEvent(obs::EventKind::kStuckShard,
                             static_cast<int64_t>(i),
                             static_cast<int64_t>(p), what);
            // Cooperative: cancelling the internal token makes every
            // shard (the stuck one included, once it reaches its next
            // chunk boundary) abort instead of the join hanging forever.
            eff.cancel.Cancel();
          }
        }
      }
    });
  }

  pool_.RunIndexed(n, [&](size_t i) {
    state[i].store(kRunning, std::memory_order_relaxed);
    res::FaultInjector::MaybeStall("engine.shard");
    statuses[i] = unit(i, eff, &progress[i]);
    state[i].store(kDone, std::memory_order_relaxed);
  });

  if (watchdog.joinable()) {
    {
      std::lock_guard<std::mutex> lock(wd_mu);
      wd_done = true;
    }
    wd_cv.notify_all();
    watchdog.join();
  }

  // Aggregate: name every failing unit, not just the first — a batch
  // where shards 1 and 3 failed for different reasons should say so.
  Status primary = Status::Ok();
  std::string failures;
  for (size_t i = 0; i < n; ++i) {
    if (stuck[i].load(std::memory_order_relaxed)) {
      // The watchdog's verdict outranks whatever the cancelled unit
      // reported: the interesting fact is the stall, not the abort.
      statuses[i] = InternalError(
          "shard " + std::to_string(i) + " stuck: no progress for " +
          std::to_string(options_.stuck_shard_seconds) + "s at byte " +
          std::to_string(progress[i].load(std::memory_order_relaxed)));
    }
    if (statuses[i].ok()) continue;
    obs::RecordEvent(obs::EventKind::kShardFailed, static_cast<int64_t>(i),
                     static_cast<int64_t>(statuses[i].code()), what);
    if (!failures.empty()) failures += "; ";
    failures += "shard " + std::to_string(i) + " " +
                StatusCodeName(statuses[i].code());
    // A stuck shard's InternalError is the root cause; the sibling
    // cancellations it triggered are fallout. Prefer the former.
    if (primary.ok() ||
        (stuck[i].load(std::memory_order_relaxed) &&
         primary.code() == StatusCode::kCancelled)) {
      primary = statuses[i];
    }
  }
  if (primary.ok()) return primary;
  return primary.WithContext(std::string(what) + ": " + failures);
}

Status ScanEngine::ScanBatch(const std::vector<std::string_view>& streams,
                             const res::ScanControl& control,
                             std::vector<StreamResult>* results) const {
  const EngineMetrics& metrics = EngineMetrics::Get();
  obs::ScopedSpan span("nids.ScanBatch");
  obs::ScopedTimer timer(metrics.batch_seconds);
  results->assign(streams.size(), StreamResult{});
  const Status status = RunControlled(
      streams.size(), control,
      [&](size_t i, const res::ScanControl& eff,
          std::atomic<uint64_t>* progress) {
        obs::CorrelationScope cscope(obs::NextCorrelationId());
        const auto t0 = std::chrono::steady_clock::now();
        StreamResult& r = (*results)[i];
        const Status s =
            filter_->Scan(streams[i], eff, &r.alerts, &r.stats, progress);
        const double secs = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        if (options_.slow_shard_seconds > 0 &&
            secs >= options_.slow_shard_seconds) {
          obs::RecordEvent(obs::EventKind::kSlowShard,
                           static_cast<int64_t>(streams[i].size()),
                           static_cast<int64_t>(i), "slow batch stream");
        }
        return s;
      },
      "ScanBatch");
  uint64_t bytes = 0;
  for (const StreamResult& r : *results) bytes += r.stats.bytes;
  metrics.batches->Increment();
  metrics.streams->Increment(streams.size());
  metrics.bytes->Increment(bytes);
  metrics.batch_streams->Observe(static_cast<double>(streams.size()));
  return status;
}

Status ScanEngine::ScanStream(std::string_view stream,
                              const res::ScanControl& control,
                              StreamResult* result) const {
  const EngineMetrics& metrics = EngineMetrics::Get();
  obs::ScopedSpan span("nids.ScanStream");
  obs::ScopedTimer timer(metrics.batch_seconds);
  metrics.sharded_scans->Increment();
  *result = StreamResult{};

  // Same sharding rules as the uncontrolled path: cut only where a fresh
  // tagger provably equals the streaming one.
  const tagger::TaggerOptions& topt = filter_->tagger().options().tagger;
  std::vector<size_t> starts{0};
  if (topt.EffectiveArmMode() == tagger::ArmMode::kResync &&
      !options_.record_delimiters.Empty() &&
      options_.record_delimiters.Minus(topt.delimiters).Empty()) {
    const size_t max_shards =
        options_.max_shards != 0
            ? options_.max_shards
            : 2 * static_cast<size_t>(pool_.num_threads());
    starts = core::ShardSplitPoints(stream, options_.record_delimiters,
                                    max_shards, options_.min_shard_bytes);
  }
  metrics.shards->Increment(starts.size());
  if (starts.size() == 1) {
    const Status s =
        filter_->Scan(stream, control, &result->alerts, &result->stats);
    metrics.bytes->Increment(result->stats.bytes);
    if (s.ok()) return s;
    return s.WithContext("ScanStream");
  }

  std::vector<StreamResult> shard(starts.size());
  const Status status = RunControlled(
      starts.size(), control,
      [&](size_t i, const res::ScanControl& eff,
          std::atomic<uint64_t>* progress) {
        obs::CorrelationScope cscope(obs::NextCorrelationId());
        const auto t0 = std::chrono::steady_clock::now();
        const size_t begin = starts[i];
        const size_t end =
            i + 1 < starts.size() ? starts[i + 1] : stream.size();
        const Status s =
            filter_->Scan(stream.substr(begin, end - begin), eff,
                          &shard[i].alerts, &shard[i].stats, progress);
        for (Alert& a : shard[i].alerts) a.end += begin;
        const double secs = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        if (options_.slow_shard_seconds > 0 &&
            secs >= options_.slow_shard_seconds) {
          obs::RecordEvent(obs::EventKind::kSlowShard,
                           static_cast<int64_t>(end - begin),
                           static_cast<int64_t>(i), "slow stream shard");
        }
        return s;
      },
      "ScanStream");

  // Merge whatever each shard produced — on error this is the partial
  // result the controlled API promises (each shard's consumed prefix,
  // already rebased to absolute offsets).
  size_t total_alerts = 0;
  for (const StreamResult& s : shard) total_alerts += s.alerts.size();
  result->alerts.reserve(total_alerts);
  for (StreamResult& s : shard) {
    result->alerts.insert(result->alerts.end(), s.alerts.begin(),
                          s.alerts.end());
    result->stats.bytes += s.stats.bytes;
    result->stats.tokens += s.stats.tokens;
    result->stats.spans_scanned += s.stats.spans_scanned;
    result->stats.alerts += s.stats.alerts;
  }
  metrics.bytes->Increment(result->stats.bytes);
  return status;
}

}  // namespace cfgtag::nids
