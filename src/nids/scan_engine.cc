#include "nids/scan_engine.h"

#include <algorithm>
#include <chrono>

#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tagger/tag.h"

namespace cfgtag::nids {

namespace {

struct EngineMetrics {
  obs::Counter* batches;
  obs::Counter* streams;
  obs::Counter* sharded_scans;
  obs::Counter* shards;
  obs::Counter* bytes;
  obs::Histogram* batch_streams;
  obs::Histogram* batch_seconds;

  static const EngineMetrics& Get() {
    static const EngineMetrics* const kMetrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      auto* m = new EngineMetrics;
      m->batches = reg.GetCounter("cfgtag_engine_batches_total",
                                  "ScanEngine::ScanBatch invocations");
      m->streams = reg.GetCounter("cfgtag_engine_streams_total",
                                  "Streams scanned through the engine");
      m->sharded_scans =
          reg.GetCounter("cfgtag_engine_sharded_scans_total",
                         "ScanEngine::ScanStream invocations");
      m->shards = reg.GetCounter("cfgtag_engine_shards_total",
                                 "Shards cut by ScanStream");
      m->bytes = reg.GetCounter("cfgtag_engine_bytes_total",
                                "Bytes scanned through the engine");
      m->batch_streams = reg.GetHistogram(
          "cfgtag_engine_batch_streams", "Streams per ScanBatch call",
          obs::DefaultCountBuckets());
      m->batch_seconds = reg.GetHistogram(
          "cfgtag_engine_batch_seconds",
          "Wall time of one ScanBatch/ScanStream call");
      return m;
    }();
    return *kMetrics;
  }
};

}  // namespace

ScanEngine::ScanEngine(const ContextFilter* filter,
                       const ScanEngineOptions& options)
    : filter_(filter), options_(options), pool_(options.num_threads) {}

std::vector<StreamResult> ScanEngine::ScanBatch(
    const std::vector<std::string_view>& streams) const {
  const EngineMetrics& metrics = EngineMetrics::Get();
  obs::ScopedSpan span("nids.ScanBatch");
  obs::ScopedTimer timer(metrics.batch_seconds);
  std::vector<StreamResult> results(streams.size());
  pool_.RunIndexed(streams.size(), [&](size_t i) {
    // Each stream gets its own correlation id: alerts it raises inherit
    // the id via the thread-local scope, and a slow unit's event carries
    // the same id — so a dump ties alert to shard.
    obs::CorrelationScope cscope(obs::NextCorrelationId());
    const auto t0 = std::chrono::steady_clock::now();
    results[i].alerts = filter_->Scan(streams[i], &results[i].stats);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (options_.slow_shard_seconds > 0 &&
        secs >= options_.slow_shard_seconds) {
      obs::RecordEvent(obs::EventKind::kSlowShard,
                       static_cast<int64_t>(streams[i].size()),
                       static_cast<int64_t>(i), "slow batch stream");
    }
  });
  uint64_t bytes = 0;
  for (const StreamResult& r : results) bytes += r.stats.bytes;
  metrics.batches->Increment();
  metrics.streams->Increment(streams.size());
  metrics.bytes->Increment(bytes);
  metrics.batch_streams->Observe(static_cast<double>(streams.size()));
  return results;
}

StreamResult ScanEngine::ScanStream(std::string_view stream) const {
  const EngineMetrics& metrics = EngineMetrics::Get();
  obs::ScopedSpan span("nids.ScanStream");
  obs::ScopedTimer timer(metrics.batch_seconds);
  metrics.sharded_scans->Increment();
  metrics.bytes->Increment(stream.size());

  const tagger::TaggerOptions& topt = filter_->tagger().options().tagger;
  std::vector<size_t> starts{0};
  // Shard only when a cut is provably invisible: resync arm mode, at a
  // record separator that the tagger also treats as a delimiter (a record
  // byte that could be token content would make the cut itself lossy).
  if (topt.EffectiveArmMode() == tagger::ArmMode::kResync &&
      !options_.record_delimiters.Empty() &&
      options_.record_delimiters.Minus(topt.delimiters).Empty()) {
    const size_t max_shards =
        options_.max_shards != 0
            ? options_.max_shards
            : 2 * static_cast<size_t>(pool_.num_threads());
    starts = core::ShardSplitPoints(stream, options_.record_delimiters,
                                    max_shards, options_.min_shard_bytes);
  }
  metrics.shards->Increment(starts.size());
  if (starts.size() == 1) {
    StreamResult result;
    result.alerts = filter_->Scan(stream, &result.stats);
    return result;
  }

  std::vector<StreamResult> shard(starts.size());
  pool_.RunIndexed(starts.size(), [&](size_t i) {
    obs::CorrelationScope cscope(obs::NextCorrelationId());
    const auto t0 = std::chrono::steady_clock::now();
    const size_t begin = starts[i];
    const size_t end = i + 1 < starts.size() ? starts[i + 1] : stream.size();
    shard[i].alerts =
        filter_->Scan(stream.substr(begin, end - begin), &shard[i].stats);
    for (Alert& a : shard[i].alerts) a.end += begin;
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (options_.slow_shard_seconds > 0 &&
        secs >= options_.slow_shard_seconds) {
      obs::RecordEvent(obs::EventKind::kSlowShard,
                       static_cast<int64_t>(end - begin),
                       static_cast<int64_t>(i), "slow stream shard");
    }
  });

  // Shards cover disjoint increasing ranges and each shard's alerts are
  // already in stream order, so concatenation in shard order is the
  // sequential alert order.
  StreamResult merged;
  size_t total_alerts = 0;
  for (const StreamResult& s : shard) total_alerts += s.alerts.size();
  merged.alerts.reserve(total_alerts);
  for (StreamResult& s : shard) {
    merged.alerts.insert(merged.alerts.end(), s.alerts.begin(),
                         s.alerts.end());
    merged.stats.bytes += s.stats.bytes;
    merged.stats.tokens += s.stats.tokens;
    merged.stats.spans_scanned += s.stats.spans_scanned;
    merged.stats.alerts += s.stats.alerts;
  }
  return merged;
}

}  // namespace cfgtag::nids
