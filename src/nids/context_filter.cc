#include "nids/context_filter.h"

#include <algorithm>

#include "obs/attribution.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cfgtag::nids {

namespace {

// The registry is the system of record for scan accounting; the ScanStats
// out-parameter is a per-call delta of the same counters.
struct ScanMetrics {
  obs::Counter* scans;
  obs::Counter* bytes;
  obs::Counter* tokens;
  obs::Counter* spans;
  obs::Counter* alerts;
  obs::Histogram* latency;

  static const ScanMetrics& Get() {
    static const ScanMetrics* const kMetrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      auto* m = new ScanMetrics;
      m->scans = reg.GetCounter("cfgtag_nids_scans_total",
                                "ContextFilter::Scan invocations");
      m->bytes = reg.GetCounter("cfgtag_nids_bytes_total",
                                "Stream bytes scanned by ContextFilter");
      m->tokens = reg.GetCounter("cfgtag_nids_tokens_total",
                                 "Tags seen while scanning");
      m->spans = reg.GetCounter(
          "cfgtag_nids_spans_scanned_total",
          "Context spans handed to the pattern matcher");
      m->alerts = reg.GetCounter("cfgtag_nids_alerts_total",
                                 "Alerts raised by ContextFilter");
      m->latency = reg.GetHistogram("cfgtag_nids_scan_seconds",
                                    "Per-message Scan() wall time");
      return m;
    }();
    return *kMetrics;
  }
};

}  // namespace

StatusOr<ContextFilter> ContextFilter::Create(grammar::Grammar grammar,
                                              std::vector<Rule> rules,
                                              const hwgen::HwOptions& options) {
  if (rules.empty()) {
    return InvalidArgumentError("a filter needs at least one rule");
  }
  std::vector<std::string> patterns;
  patterns.reserve(rules.size());
  for (const Rule& r : rules) {
    if (r.pattern.empty()) {
      return InvalidArgumentError("rule '" + r.id + "' has an empty pattern");
    }
    patterns.push_back(r.pattern);
  }

  const size_t num_tokens = grammar.NumTokens();
  std::vector<std::vector<size_t>> by_token(num_tokens);
  std::vector<uint8_t> is_global(rules.size(), 0);
  std::vector<size_t> global_rules;
  for (size_t i = 0; i < rules.size(); ++i) {
    if (rules[i].context_token.empty()) {
      is_global[i] = 1;
      global_rules.push_back(i);
      continue;
    }
    const int32_t t = grammar.FindToken(rules[i].context_token);
    if (t < 0) {
      return NotFoundError("rule '" + rules[i].id + "' binds to token '" +
                           rules[i].context_token +
                           "' which the grammar does not define");
    }
    by_token[t].push_back(i);
  }
  // Flatten the binding into the forms Scan() reads per tag: a gate byte
  // per token and a (token, rule) bitmap, so the hot loop does no
  // std::find over rule index vectors.
  std::vector<uint8_t> token_has_rules(num_tokens, 0);
  std::vector<uint8_t> bound_bitmap(num_tokens * rules.size(), 0);
  for (size_t t = 0; t < num_tokens; ++t) {
    token_has_rules[t] = by_token[t].empty() ? 0 : 1;
    for (size_t rule : by_token[t]) {
      bound_bitmap[t * rules.size() + rule] = 1;
    }
  }

  CFGTAG_ASSIGN_OR_RETURN(
      auto tagger, core::CompiledTagger::Compile(std::move(grammar), options));
  return ContextFilter(std::move(rules), std::move(tagger),
                       tagger::NaiveMatcher(std::move(patterns)),
                       std::move(by_token), std::move(bound_bitmap),
                       std::move(token_has_rules), std::move(is_global),
                       std::move(global_rules));
}

void ContextFilter::OnTag(std::string_view stream, const tagger::Tag& tag,
                          TagScanState* st, std::vector<Alert>* alerts,
                          ScanStats* local) const {
  // Context spans from the tag stream, matched as the tags arrive: a
  // target token's span is (previous tag end, its own tag end]. When
  // consecutive tags share an end offset (two tokens detected at the same
  // byte), they share the same span — advancing past the shared offset
  // would silently drop the later tags' spans.
  local->tokens++;
  const uint64_t begin = !st->any_tag              ? 0
                         : tag.end == st->prev_end ? st->prev_begin
                                                   : st->prev_end + 1;
  // Tags arrive with nondecreasing ends, so begin <= tag.end always
  // holds; a trailing open-class token can report an end inside the
  // flush padding, which substr's count clamp absorbs.
  if (tag.token >= 0 &&
      static_cast<size_t>(tag.token) < token_has_rules_.size() &&
      token_has_rules_[tag.token] && begin < stream.size()) {
    local->spans_scanned++;
    const std::string_view ctx = stream.substr(begin, tag.end - begin + 1);
    const uint8_t* bound =
        bound_bitmap_.data() + static_cast<size_t>(tag.token) * rules_.size();
    matcher_.ScanWith(ctx, [&](int32_t pattern, uint64_t end) {
      if (bound[pattern]) {
        alerts->push_back(Alert{static_cast<size_t>(pattern), begin + end});
      }
      return true;
    });
  }
  st->prev_begin = begin;
  st->prev_end = tag.end;
  st->any_tag = true;
}

void ContextFilter::FinalizeAlerts(std::string_view global_view,
                                   std::vector<Alert>* alerts,
                                   ScanStats* local, ScanStats* stats) const {
  const ScanMetrics& metrics = ScanMetrics::Get();
  // Context-free rules run over the whole (consumed) stream.
  if (!global_rules_.empty()) {
    matcher_.ScanWith(global_view, [&](int32_t pattern, uint64_t end) {
      if (is_global_[pattern]) {
        alerts->push_back(Alert{static_cast<size_t>(pattern), end});
      }
      return true;
    });
  }

  std::stable_sort(
      alerts->begin(), alerts->end(),
      [](const Alert& a, const Alert& b) { return a.end < b.end; });
  local->alerts = alerts->size();
  if (!alerts->empty()) {
    // Flight-record every alert (rare; correlation id inherited from the
    // enclosing ScanEngine shard, if any) and fold per-rule counts into
    // the attribution table when the switch is on.
    for (const Alert& a : *alerts) {
      const Rule& rule = rules_[a.rule_index];
      obs::RecordEvent(obs::EventKind::kNidsAlert,
                       static_cast<int64_t>(a.end), rule.severity, rule.id);
    }
    if (obs::AttributionTable::enabled()) {
      std::vector<uint64_t> per_rule(rules_.size(), 0);
      for (const Alert& a : *alerts) ++per_rule[a.rule_index];
      for (size_t i = 0; i < per_rule.size(); ++i) {
        if (per_rule[i] != 0) {
          obs::AttributionTable::Default().AddRule(rules_[i].id, per_rule[i]);
        }
      }
    }
  }
  metrics.scans->Increment();
  metrics.bytes->Increment(local->bytes);
  metrics.tokens->Increment(local->tokens);
  metrics.spans->Increment(local->spans_scanned);
  metrics.alerts->Increment(local->alerts);
  if (stats != nullptr) *stats = *local;
}

std::vector<Alert> ContextFilter::Scan(std::string_view stream,
                                       ScanStats* stats) const {
  const ScanMetrics& metrics = ScanMetrics::Get();
  obs::ScopedSpan span("nids.Scan");
  obs::ScopedTimer timer(metrics.latency);
  ScanStats local;
  local.bytes = stream.size();
  std::vector<Alert> alerts;
  TagScanState st;
  tagger_.Tag(stream, [&](const tagger::Tag& tag) {
    OnTag(stream, tag, &st, &alerts, &local);
    return true;
  });
  FinalizeAlerts(stream, &alerts, &local, stats);
  return alerts;
}

Status ContextFilter::Scan(std::string_view stream,
                           const core::resilience::ScanControl& control,
                           std::vector<Alert>* alerts, ScanStats* stats,
                           std::atomic<uint64_t>* progress) const {
  const ScanMetrics& metrics = ScanMetrics::Get();
  obs::ScopedSpan span("nids.Scan");
  obs::ScopedTimer timer(metrics.latency);
  alerts->clear();
  ScanStats local;
  TagScanState st;
  uint64_t consumed = 0;
  const Status status = tagger_.TagWithControl(
      stream,
      [&](const tagger::Tag& tag) {
        OnTag(stream, tag, &st, alerts, &local);
        return true;
      },
      control, progress, &consumed);
  // On a trip the scan stopped at `consumed`: account only those bytes
  // and run the context-free pass over exactly that prefix, so the
  // partial result is precisely "the alerts for stream[0, consumed)".
  local.bytes = consumed;
  FinalizeAlerts(stream.substr(0, consumed), alerts, &local, stats);
  return status;
}

std::vector<Alert> ContextFilter::ScanContextFree(
    std::string_view stream) const {
  std::vector<Alert> alerts;
  if (global_rules_.empty()) return alerts;
  matcher_.ScanWith(stream, [&](int32_t pattern, uint64_t end) {
    if (is_global_[pattern]) {
      alerts.push_back(Alert{static_cast<size_t>(pattern), end});
    }
    return true;
  });
  return alerts;
}

std::vector<Alert> ContextFilter::ScanUngated(std::string_view stream) const {
  std::vector<Alert> alerts;
  matcher_.ScanWith(stream, [&](int32_t pattern, uint64_t end) {
    alerts.push_back(Alert{static_cast<size_t>(pattern), end});
    return true;
  });
  return alerts;
}

}  // namespace cfgtag::nids
