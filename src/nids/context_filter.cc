#include "nids/context_filter.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cfgtag::nids {

namespace {

// The registry is the system of record for scan accounting; the ScanStats
// out-parameter is a per-call delta of the same counters.
struct ScanMetrics {
  obs::Counter* scans;
  obs::Counter* bytes;
  obs::Counter* tokens;
  obs::Counter* spans;
  obs::Counter* alerts;
  obs::Histogram* latency;

  static const ScanMetrics& Get() {
    static const ScanMetrics* const kMetrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      auto* m = new ScanMetrics;
      m->scans = reg.GetCounter("cfgtag_nids_scans_total",
                                "ContextFilter::Scan invocations");
      m->bytes = reg.GetCounter("cfgtag_nids_bytes_total",
                                "Stream bytes scanned by ContextFilter");
      m->tokens = reg.GetCounter("cfgtag_nids_tokens_total",
                                 "Tags seen while scanning");
      m->spans = reg.GetCounter(
          "cfgtag_nids_spans_scanned_total",
          "Context spans handed to the pattern matcher");
      m->alerts = reg.GetCounter("cfgtag_nids_alerts_total",
                                 "Alerts raised by ContextFilter");
      m->latency = reg.GetHistogram("cfgtag_nids_scan_seconds",
                                    "Per-message Scan() wall time");
      return m;
    }();
    return *kMetrics;
  }
};

}  // namespace

StatusOr<ContextFilter> ContextFilter::Create(grammar::Grammar grammar,
                                              std::vector<Rule> rules,
                                              const hwgen::HwOptions& options) {
  if (rules.empty()) {
    return InvalidArgumentError("a filter needs at least one rule");
  }
  std::vector<std::string> patterns;
  patterns.reserve(rules.size());
  for (const Rule& r : rules) {
    if (r.pattern.empty()) {
      return InvalidArgumentError("rule '" + r.id + "' has an empty pattern");
    }
    patterns.push_back(r.pattern);
  }

  std::vector<std::vector<size_t>> by_token(grammar.NumTokens());
  bool any_context_free = false;
  for (size_t i = 0; i < rules.size(); ++i) {
    if (rules[i].context_token.empty()) {
      any_context_free = true;
      continue;
    }
    const int32_t t = grammar.FindToken(rules[i].context_token);
    if (t < 0) {
      return NotFoundError("rule '" + rules[i].id + "' binds to token '" +
                           rules[i].context_token +
                           "' which the grammar does not define");
    }
    by_token[t].push_back(i);
  }
  (void)any_context_free;  // context-free rules are matched globally below

  CFGTAG_ASSIGN_OR_RETURN(
      auto tagger, core::CompiledTagger::Compile(std::move(grammar), options));
  return ContextFilter(std::move(rules), std::move(tagger),
                       tagger::NaiveMatcher(std::move(patterns)),
                       std::move(by_token));
}

std::vector<Alert> ContextFilter::Scan(std::string_view stream,
                                       ScanStats* stats) const {
  const ScanMetrics& metrics = ScanMetrics::Get();
  obs::ScopedSpan span("nids.Scan");
  obs::ScopedTimer timer(metrics.latency);
  ScanStats local;
  local.bytes = stream.size();
  std::vector<Alert> alerts;

  // Context spans from the tag stream: a target token's span is
  // (previous tag end, its own tag end].
  uint64_t prev_end = 0;
  bool any_tag = false;
  for (const tagger::Tag& tag : tagger_.Tag(stream)) {
    local.tokens++;
    const uint64_t begin = any_tag ? prev_end + 1 : 0;
    if (tag.token >= 0 &&
        static_cast<size_t>(tag.token) < rules_by_token_.size() &&
        !rules_by_token_[tag.token].empty() && tag.end < stream.size() &&
        begin <= tag.end) {
      local.spans_scanned++;
      const std::string_view span =
          stream.substr(begin, tag.end - begin + 1);
      matcher_.Scan(span, [&](int32_t pattern, uint64_t end) {
        const auto& bound = rules_by_token_[tag.token];
        if (std::find(bound.begin(), bound.end(),
                      static_cast<size_t>(pattern)) != bound.end()) {
          alerts.push_back(Alert{static_cast<size_t>(pattern), begin + end});
        }
        return true;
      });
    }
    prev_end = tag.end;
    any_tag = true;
  }

  // Context-free rules run over the whole stream.
  bool has_global = false;
  for (const Rule& r : rules_) has_global |= r.context_token.empty();
  if (has_global) {
    matcher_.Scan(stream, [&](int32_t pattern, uint64_t end) {
      if (rules_[pattern].context_token.empty()) {
        alerts.push_back(Alert{static_cast<size_t>(pattern), end});
      }
      return true;
    });
  }

  std::stable_sort(alerts.begin(), alerts.end(),
                   [](const Alert& a, const Alert& b) { return a.end < b.end; });
  local.alerts = alerts.size();
  metrics.scans->Increment();
  metrics.bytes->Increment(local.bytes);
  metrics.tokens->Increment(local.tokens);
  metrics.spans->Increment(local.spans_scanned);
  metrics.alerts->Increment(local.alerts);
  if (stats != nullptr) *stats = local;
  return alerts;
}

std::vector<Alert> ContextFilter::ScanContextFree(
    std::string_view stream) const {
  std::vector<Alert> alerts;
  matcher_.Scan(stream, [&](int32_t pattern, uint64_t end) {
    alerts.push_back(Alert{static_cast<size_t>(pattern), end});
    return true;
  });
  return alerts;
}

}  // namespace cfgtag::nids
