#ifndef CFGTAG_NIDS_CONTEXT_FILTER_H_
#define CFGTAG_NIDS_CONTEXT_FILTER_H_

#include <string>
#include <string_view>
#include <vector>

#include <atomic>

#include "common/status.h"
#include "core/resilience/deadline.h"
#include "core/token_tagger.h"
#include "tagger/naive_matcher.h"

namespace cfgtag::nids {

// A detection signature bound to a grammatical context — the paper's §1/§3.5
// thesis turned into an engine: "by performing high-level analysis of
// content, the accuracy of network traffic analyzers can be improved".
struct Rule {
  std::string id;        // e.g. "TRAVERSAL-001"
  std::string pattern;   // raw byte pattern, matched as a substring
  // Name of the token whose spans the pattern applies to, e.g. "PATH".
  // Empty = context-free (matches anywhere — a naive Snort-style rule).
  std::string context_token;
  int severity = 1;      // 1 (info) .. 3 (critical)
};

struct Alert {
  size_t rule_index = 0;   // into rules()
  uint64_t end = 0;        // stream offset of the pattern's last byte

  friend bool operator==(const Alert& a, const Alert& b) {
    return a.rule_index == b.rule_index && a.end == b.end;
  }
};

// Per-call snapshot of one Scan(). The cumulative system of record is the
// default obs::MetricsRegistry (cfgtag_nids_* counters), which Scan()
// advances by exactly these deltas — this struct exists for callers that
// want the numbers for a single message without diffing the registry.
struct ScanStats {
  uint64_t bytes = 0;
  uint64_t tokens = 0;        // tags seen
  uint64_t spans_scanned = 0; // context spans handed to the matcher
  uint64_t alerts = 0;
};

// Streams bytes through the grammar tagger and applies each rule only
// inside the byte spans of its context token. Span recovery uses the tag
// stream: a context token's span ends at its tag offset and starts right
// after the previous tag in stream order (leading delimiter bytes are part
// of the span but cannot match, since patterns contain none). Tags that
// share an end offset — two tokens detected at the same byte — share the
// same span.
//
// The pattern matcher is an Aho–Corasick automaton compiled once at
// Create() time; Scan() streams tags out of a pooled TaggerSession and
// matches each span as its tag arrives, so no tag vector is materialized.
// Scan() is const and thread-safe: the scan engine calls it concurrently
// from many workers against one filter.
class ContextFilter {
 public:
  static StatusOr<ContextFilter> Create(grammar::Grammar grammar,
                                        std::vector<Rule> rules,
                                        const hwgen::HwOptions& options = {});

  // Scans one message/stream; alerts are reported in stream order.
  std::vector<Alert> Scan(std::string_view stream,
                          ScanStats* stats = nullptr) const;

  // Controlled scan: identical alerts to Scan() when the control never
  // trips; on kDeadlineExceeded / kCancelled, *alerts holds every alert
  // for the consumed prefix (context-bound alerts from the tags seen so
  // far, plus the context-free rules run over exactly that prefix), still
  // in stream order — a partial result with a precise meaning, not a
  // truncated one. `progress` is advanced past every fed chunk (the scan
  // engine watchdog's heartbeat).
  Status Scan(std::string_view stream,
              const core::resilience::ScanControl& control,
              std::vector<Alert>* alerts, ScanStats* stats = nullptr,
              std::atomic<uint64_t>* progress = nullptr) const;

  // Only the context-free rules (empty context_token), applied over the
  // whole stream — the same set Scan()'s global pass raises, without the
  // tagger running.
  std::vector<Alert> ScanContextFree(std::string_view stream) const;

  // Every rule applied context-free over the whole stream, bound ones
  // included (the naive baseline of the paper's introduction) — for
  // measuring what the context gating suppresses.
  std::vector<Alert> ScanUngated(std::string_view stream) const;

  const std::vector<Rule>& rules() const { return rules_; }
  const core::CompiledTagger& tagger() const { return tagger_; }

 private:
  ContextFilter(std::vector<Rule> rules, core::CompiledTagger tagger,
                tagger::NaiveMatcher matcher,
                std::vector<std::vector<size_t>> rules_by_token,
                std::vector<uint8_t> bound_bitmap,
                std::vector<uint8_t> token_has_rules,
                std::vector<uint8_t> is_global,
                std::vector<size_t> global_rules)
      : rules_(std::move(rules)),
        tagger_(std::move(tagger)),
        matcher_(std::move(matcher)),
        rules_by_token_(std::move(rules_by_token)),
        bound_bitmap_(std::move(bound_bitmap)),
        token_has_rules_(std::move(token_has_rules)),
        is_global_(std::move(is_global)),
        global_rules_(std::move(global_rules)) {}

  // Span-recovery state threaded through the tag stream (see Scan()).
  struct TagScanState {
    uint64_t prev_end = 0;
    uint64_t prev_begin = 0;
    bool any_tag = false;
  };
  // Handles one arriving tag: recovers its context span and matches the
  // bound rules over it. Shared verbatim by the fast and controlled scan
  // paths so their alert streams cannot drift apart.
  void OnTag(std::string_view stream, const tagger::Tag& tag,
             TagScanState* st, std::vector<Alert>* alerts,
             ScanStats* local) const;
  // Context-free pass over `global_view`, stream-order sort, alert
  // events/attribution, and the registry/stats accounting epilogue.
  void FinalizeAlerts(std::string_view global_view,
                      std::vector<Alert>* alerts, ScanStats* local,
                      ScanStats* stats) const;

  std::vector<Rule> rules_;
  core::CompiledTagger tagger_;
  // One pattern per rule, in rule order (Aho–Corasick, built at Create).
  tagger::NaiveMatcher matcher_;
  // rules_by_token_[token_id] = indices of rules bound to that token.
  std::vector<std::vector<size_t>> rules_by_token_;
  // Everything below is precomputed at Create() so Scan() does no rule
  // table walking: bound_bitmap_[token * rules_.size() + rule] = 1 iff
  // `rule` is bound to `token`; token_has_rules_[token] gates the span
  // scan; is_global_/global_rules_ are the context-free rule set.
  std::vector<uint8_t> bound_bitmap_;
  std::vector<uint8_t> token_has_rules_;
  std::vector<uint8_t> is_global_;
  std::vector<size_t> global_rules_;
};

}  // namespace cfgtag::nids

#endif  // CFGTAG_NIDS_CONTEXT_FILTER_H_
