#ifndef CFGTAG_NIDS_CONTEXT_FILTER_H_
#define CFGTAG_NIDS_CONTEXT_FILTER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/token_tagger.h"
#include "tagger/naive_matcher.h"

namespace cfgtag::nids {

// A detection signature bound to a grammatical context — the paper's §1/§3.5
// thesis turned into an engine: "by performing high-level analysis of
// content, the accuracy of network traffic analyzers can be improved".
struct Rule {
  std::string id;        // e.g. "TRAVERSAL-001"
  std::string pattern;   // raw byte pattern, matched as a substring
  // Name of the token whose spans the pattern applies to, e.g. "PATH".
  // Empty = context-free (matches anywhere — a naive Snort-style rule).
  std::string context_token;
  int severity = 1;      // 1 (info) .. 3 (critical)
};

struct Alert {
  size_t rule_index = 0;   // into rules()
  uint64_t end = 0;        // stream offset of the pattern's last byte
};

// Per-call snapshot of one Scan(). The cumulative system of record is the
// default obs::MetricsRegistry (cfgtag_nids_* counters), which Scan()
// advances by exactly these deltas — this struct exists for callers that
// want the numbers for a single message without diffing the registry.
struct ScanStats {
  uint64_t bytes = 0;
  uint64_t tokens = 0;        // tags seen
  uint64_t spans_scanned = 0; // context spans handed to the matcher
  uint64_t alerts = 0;
};

// Streams bytes through the grammar tagger and applies each rule only
// inside the byte spans of its context token. Span recovery uses the tag
// stream: a context token's span ends at its tag offset and starts right
// after the previous tag in stream order (leading delimiter bytes are part
// of the span but cannot match, since patterns contain none).
class ContextFilter {
 public:
  static StatusOr<ContextFilter> Create(grammar::Grammar grammar,
                                        std::vector<Rule> rules,
                                        const hwgen::HwOptions& options = {});

  // Scans one message/stream; alerts are reported in stream order.
  std::vector<Alert> Scan(std::string_view stream,
                          ScanStats* stats = nullptr) const;

  // The same rules applied context-free over the whole stream (the naive
  // baseline of the paper's introduction) — for measuring what the
  // context gating suppresses.
  std::vector<Alert> ScanContextFree(std::string_view stream) const;

  const std::vector<Rule>& rules() const { return rules_; }
  const core::CompiledTagger& tagger() const { return tagger_; }

 private:
  ContextFilter(std::vector<Rule> rules, core::CompiledTagger tagger,
                tagger::NaiveMatcher matcher,
                std::vector<std::vector<size_t>> rules_by_token)
      : rules_(std::move(rules)),
        tagger_(std::move(tagger)),
        matcher_(std::move(matcher)),
        rules_by_token_(std::move(rules_by_token)) {}

  std::vector<Rule> rules_;
  core::CompiledTagger tagger_;
  // One pattern per rule, in rule order.
  tagger::NaiveMatcher matcher_;
  // rules_by_token_[token_id] = indices of rules bound to that token.
  std::vector<std::vector<size_t>> rules_by_token_;
};

}  // namespace cfgtag::nids

#endif  // CFGTAG_NIDS_CONTEXT_FILTER_H_
