#ifndef CFGTAG_NIDS_SCAN_ENGINE_H_
#define CFGTAG_NIDS_SCAN_ENGINE_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <string_view>
#include <vector>

#include "core/resilience/deadline.h"
#include "core/worker_pool.h"
#include "nids/context_filter.h"

namespace cfgtag::nids {

struct ScanEngineOptions {
  // Worker threads in the engine's pool; <= 0 picks one per hardware
  // thread.
  int num_threads = 0;
  // ScanStream() will not cut shards smaller than this — below it the
  // per-shard session/merge overhead outweighs the parallelism.
  size_t min_shard_bytes = 1 << 16;
  // Upper bound on shards per ScanStream() call; 0 = 2x the worker count
  // (some slack over the thread count smooths out uneven shard costs).
  size_t max_shards = 0;
  // The stream's RECORD separator: the byte class that appears only
  // between complete, independent messages. ScanStream() cuts shards only
  // after one of these bytes. This must not be confused with the tagger's
  // token-delimiter set: at a mid-message token delimiter the streaming
  // tagger still carries the follow-set arms of the message in flight, so
  // cutting there would drop the rest of that message's tags. Every
  // record byte must also be a tagger delimiter; otherwise ScanStream()
  // refuses to shard and falls back to one sequential Scan().
  regex::CharClass record_delimiters = regex::CharClass::Of('\n');
  // A worker unit (one batch stream or one stream shard) slower than this
  // is flight-recorded as a kSlowShard event, tagged with the unit's
  // correlation id so its alerts can be tied back to it. <= 0 disables.
  double slow_shard_seconds = 0.25;
  // Controlled scans only: a *running* unit that makes no byte progress
  // for this long is declared stuck by the engine watchdog — the event is
  // recorded, every sibling shard is cancelled (via an internal child
  // token, never the caller's), and the batch fails with context naming
  // the shard, instead of the join blocking forever. Queued-but-unstarted
  // units are never flagged. Detection is cooperative: a shard wedged
  // *inside* one chunk is detected on time but the batch only completes
  // once that shard's thread yields back to a chunk boundary (or its
  // stall ends). <= 0 disables the watchdog. The uncontrolled ScanBatch/
  // ScanStream never run one.
  double stuck_shard_seconds = 5.0;
};

// One stream's scan outcome: its alerts (stream-order, offsets absolute
// within that stream) and its ScanStats delta.
struct StreamResult {
  std::vector<Alert> alerts;
  ScanStats stats;
};

// Parallel batch-scan engine over one ContextFilter: a fixed worker pool
// (core::WorkerPool) fans independent streams — or delimiter-aligned
// shards of one large stream — out to workers, each of which runs the
// filter's streaming Scan() with a pooled TaggerSession, and the results
// are merged back in deterministic stream order. Alerts are byte-identical
// to the sequential path: ScanBatch() by construction (results are keyed
// by stream index), ScanStream() because shards are cut only at resync
// record boundaries, where a fresh tagger state is exactly the streaming
// state.
//
// The filter must outlive the engine. All methods are thread-safe with
// respect to the filter (Scan() is const), but the engine itself expects
// one caller at a time per method invocation's result vectors.
class ScanEngine {
 public:
  explicit ScanEngine(const ContextFilter* filter,
                      const ScanEngineOptions& options = {});

  // Scans a batch of independent streams; result i belongs to stream i.
  std::vector<StreamResult> ScanBatch(
      const std::vector<std::string_view>& streams) const;

  // Controlled batch scan: the deadline/cancel bundle is threaded into
  // every worker's filter scan (checked at chunk boundaries), and the
  // stuck-shard watchdog runs when enabled. On error, *results still
  // holds each stream's partial result (alerts valid for that stream's
  // consumed prefix) and the status context names every failing shard,
  // e.g. "ScanBatch: shard 1 DEADLINE_EXCEEDED; shard 3 INTERNAL"; one
  // kShardFailed flight-recorder event is recorded per failing shard.
  Status ScanBatch(const std::vector<std::string_view>& streams,
                   const core::resilience::ScanControl& control,
                   std::vector<StreamResult>* results) const;

  // Scans one large stream, sharding it at record boundaries (see
  // ScanEngineOptions::record_delimiters) when the filter's tagger runs
  // in resync arm mode — the mode in which a fresh tagger after a record
  // separator equals the streaming tagger. Non-resync filters, streams
  // too small to cut, and record separators that are not tagger
  // delimiters all fall back to one sequential Scan().
  StreamResult ScanStream(std::string_view stream) const;

  // Controlled single-stream scan, sharded under the same rules. On error
  // *result holds the merged partial alerts of every shard's consumed
  // prefix (offsets rebased to the full stream) and the status context
  // names the failing shards.
  Status ScanStream(std::string_view stream,
                    const core::resilience::ScanControl& control,
                    StreamResult* result) const;

  int num_threads() const { return pool_.num_threads(); }
  const ContextFilter& filter() const { return *filter_; }

 private:
  // One controlled work unit: scan index i under the effective control,
  // heart-beating the progress atomic. Returns the unit's scan status.
  using ControlledUnit = std::function<Status(
      size_t, const core::resilience::ScanControl&, std::atomic<uint64_t>*)>;

  // Fans n units across the pool under `control` plus an internal child
  // cancel token, runs the stuck-shard watchdog when configured, and
  // aggregates per-unit statuses into one error naming every failing
  // unit. `what` labels the operation in statuses and events.
  Status RunControlled(size_t n, const core::resilience::ScanControl& control,
                       const ControlledUnit& unit, const char* what) const;

  const ContextFilter* filter_;
  ScanEngineOptions options_;
  mutable core::WorkerPool pool_;
};

}  // namespace cfgtag::nids

#endif  // CFGTAG_NIDS_SCAN_ENGINE_H_
