#ifndef CFGTAG_REGEX_CHAR_CLASS_H_
#define CFGTAG_REGEX_CHAR_CLASS_H_

#include <bitset>
#include <cstdint>
#include <string>
#include <vector>

namespace cfgtag::regex {

// A set of byte values. This is the alphabet unit of the whole system: the
// regex engine matches one CharClass per input byte, and the hardware
// decoder (paper Fig. 4–5) emits one decoded wire per distinct CharClass.
class CharClass {
 public:
  CharClass() = default;

  static CharClass Of(unsigned char c);
  static CharClass Range(unsigned char lo, unsigned char hi);
  // Both cases of a letter; non-letters behave like Of().
  static CharClass NoCase(unsigned char c);
  static CharClass Any();        // all 256 byte values
  static CharClass Digit();      // [0-9]
  static CharClass Alpha();      // [a-zA-Z]  (paper Fig. 5 "alphabet")
  static CharClass AlphaNum();   // [a-zA-Z0-9] (paper Fig. 5)
  static CharClass Whitespace(); // space, \t, \n, \r, \f, \v

  bool Test(unsigned char c) const { return bits_.test(c); }
  void Set(unsigned char c) { bits_.set(c); }
  void SetRange(unsigned char lo, unsigned char hi);

  CharClass Union(const CharClass& other) const;
  CharClass Intersect(const CharClass& other) const;
  CharClass Complement() const;
  // Set difference: bytes in this class but not in `other`.
  CharClass Minus(const CharClass& other) const;

  bool Empty() const { return bits_.none(); }
  size_t Count() const { return bits_.count(); }
  bool Intersects(const CharClass& other) const {
    return (bits_ & other.bits_).any();
  }

  // All member bytes in ascending order.
  std::vector<unsigned char> Members() const;

  // Compact debug rendering, e.g. "[a-z0-9_]" or "'x'".
  std::string ToString() const;

  friend bool operator==(const CharClass& a, const CharClass& b) {
    return a.bits_ == b.bits_;
  }

  // Stable hash for use as a map key (decoder sharing).
  size_t Hash() const;

 private:
  std::bitset<256> bits_;
};

struct CharClassHash {
  size_t operator()(const CharClass& c) const { return c.Hash(); }
};

}  // namespace cfgtag::regex

#endif  // CFGTAG_REGEX_CHAR_CLASS_H_
