#ifndef CFGTAG_REGEX_REGEX_AST_H_
#define CFGTAG_REGEX_REGEX_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "regex/char_class.h"

namespace cfgtag::regex {

// Abstract syntax of the Lex-style token patterns used by the paper's
// grammars (Fig. 14): single-character classes, concatenation, alternation
// and the postfix operators `?`, `+`, `*` (Fig. 6 templates). Negation is
// expressed at the character level ([^...]), matching the hardware `!a`
// template (Fig. 6b).
struct RegexNode {
  enum class Kind {
    kEpsilon,    // matches the empty string
    kLiteral,    // matches one byte from char_class
    kConcat,     // children in sequence
    kAlternate,  // any one child
    kStar,       // zero or more of children[0]
    kPlus,       // one or more of children[0]
    kOptional,   // zero or one of children[0]
  };

  Kind kind = Kind::kEpsilon;
  CharClass char_class;  // kLiteral only
  std::vector<std::unique_ptr<RegexNode>> children;

  static std::unique_ptr<RegexNode> Epsilon();
  static std::unique_ptr<RegexNode> Literal(CharClass c);
  static std::unique_ptr<RegexNode> Concat(
      std::vector<std::unique_ptr<RegexNode>> parts);
  static std::unique_ptr<RegexNode> Alternate(
      std::vector<std::unique_ptr<RegexNode>> parts);
  static std::unique_ptr<RegexNode> Star(std::unique_ptr<RegexNode> inner);
  static std::unique_ptr<RegexNode> Plus(std::unique_ptr<RegexNode> inner);
  static std::unique_ptr<RegexNode> Optional(std::unique_ptr<RegexNode> inner);

  // A literal-per-byte chain for a fixed string; `nocase` folds letters.
  static std::unique_ptr<RegexNode> FromString(const std::string& s,
                                               bool nocase = false);

  std::unique_ptr<RegexNode> Clone() const;

  // True if the regex can match the empty string.
  bool Nullable() const;

  // Number of kLiteral nodes — the "pattern bytes" metric of Table 1 for
  // fixed strings, and the pipeline-stage count of the hardware tokenizer.
  size_t LiteralCount() const;

  // Minimum / maximum match length in bytes; max is SIZE_MAX for unbounded
  // (star/plus) patterns.
  size_t MinLength() const;
  size_t MaxLength() const;

  // Canonical text form for debugging, e.g. "(ab)|c[0-9]+".
  std::string ToString() const;
};

}  // namespace cfgtag::regex

#endif  // CFGTAG_REGEX_REGEX_AST_H_
