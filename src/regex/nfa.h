#ifndef CFGTAG_REGEX_NFA_H_
#define CFGTAG_REGEX_NFA_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "regex/regex_ast.h"

namespace cfgtag::regex {

// Thompson-construction NFA. Serves as the software matching oracle: tests
// cross-check both the DFA lexer and the generated hardware against it.
class Nfa {
 public:
  static constexpr size_t kNoMatch = static_cast<size_t>(-1);

  struct Transition {
    CharClass on;
    uint32_t to;
  };
  struct State {
    std::vector<Transition> arcs;
    std::vector<uint32_t> eps;
  };

  static Nfa Build(const RegexNode& re);

  bool FullMatch(std::string_view input) const;

  // Length of the longest prefix of input[pos..] this NFA matches, or
  // kNoMatch if no prefix (including the empty one) matches.
  size_t LongestPrefixMatch(std::string_view input, size_t pos) const;

  size_t NumStates() const { return states_.size(); }

 private:
  friend class Dfa;

  // Adds eps-reachable states of `from` into `set` (a membership bitmap +
  // worklist pattern).
  void EpsClosure(std::vector<uint32_t>& worklist,
                  std::vector<uint8_t>& member) const;

  std::vector<State> states_;
  uint32_t start_ = 0;
  uint32_t accept_ = 0;
};

}  // namespace cfgtag::regex

#endif  // CFGTAG_REGEX_NFA_H_
