#ifndef CFGTAG_REGEX_REGEX_PARSER_H_
#define CFGTAG_REGEX_REGEX_PARSER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "regex/regex_ast.h"

namespace cfgtag::regex {

// Parses the Lex-style pattern subset the paper's grammars use:
//
//   atom     := char | '\' escape | '.' | '[' class ']' | '(' regex ')'
//             | '"' literal-chars '"'
//   postfix  := atom ('*' | '+' | '?' | '{' m (',' n?)? '}')*
//   concat   := postfix+
//   regex    := concat ('|' concat)*
//
// Character classes support ranges ([a-zA-Z0-9]), leading '^' negation and
// escapes. '.' matches any byte except newline (Lex behaviour). Inside
// double quotes all characters are literal. Bounded repetition expands
// structurally: e{3} = eee, e{1,3} = e(e(e)?)?, e{2,} = ee e* — each copy
// becomes its own hardware pipeline stage, exactly as Lex-era generators
// did.
StatusOr<std::unique_ptr<RegexNode>> ParseRegex(const std::string& pattern);

}  // namespace cfgtag::regex

#endif  // CFGTAG_REGEX_REGEX_PARSER_H_
