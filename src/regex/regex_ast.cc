#include "regex/regex_ast.h"

#include <algorithm>
#include <cctype>
#include <climits>
#include <cstdio>
#include <cstring>

namespace cfgtag::regex {

namespace {

// Renders one byte for use inside (or outside) a regex character class,
// escaping metacharacters and non-printables so the output re-parses.
std::string RegexByte(unsigned char c, bool in_class) {
  const char* meta = in_class ? "]^-\\" : "()[]|*+?.\"\\`'";
  if (std::isprint(c) && std::strchr(meta, c) == nullptr) {
    return std::string(1, static_cast<char>(c));
  }
  switch (c) {
    case '\n': return "\\n";
    case '\t': return "\\t";
    case '\r': return "\\r";
    default: break;
  }
  if (std::isprint(c)) return std::string("\\") + static_cast<char>(c);
  char buf[8];
  std::snprintf(buf, sizeof(buf), "\\x%02x", c);
  return buf;
}

// Renders a CharClass as parseable regex syntax: a bare (escaped) char for
// singletons, otherwise a [...] (or [^...]) range expression.
std::string RegexClass(const CharClass& cls) {
  if (cls.Count() == 1) return RegexByte(cls.Members()[0], /*in_class=*/false);
  const bool negate = cls.Count() > 128;
  const CharClass body = negate ? cls.Complement() : cls;
  std::string out = negate ? "[^" : "[";
  int c = 0;
  while (c < 256) {
    if (!body.Test(static_cast<unsigned char>(c))) {
      ++c;
      continue;
    }
    int end = c;
    while (end + 1 < 256 && body.Test(static_cast<unsigned char>(end + 1))) {
      ++end;
    }
    out += RegexByte(static_cast<unsigned char>(c), /*in_class=*/true);
    if (end == c + 1) {
      out += RegexByte(static_cast<unsigned char>(end), true);
    } else if (end > c) {
      out += "-";
      out += RegexByte(static_cast<unsigned char>(end), true);
    }
    c = end + 1;
  }
  out += "]";
  return out;
}

}  // namespace

std::unique_ptr<RegexNode> RegexNode::Epsilon() {
  auto n = std::make_unique<RegexNode>();
  n->kind = Kind::kEpsilon;
  return n;
}

std::unique_ptr<RegexNode> RegexNode::Literal(CharClass c) {
  auto n = std::make_unique<RegexNode>();
  n->kind = Kind::kLiteral;
  n->char_class = c;
  return n;
}

std::unique_ptr<RegexNode> RegexNode::Concat(
    std::vector<std::unique_ptr<RegexNode>> parts) {
  if (parts.empty()) return Epsilon();
  if (parts.size() == 1) return std::move(parts[0]);
  auto n = std::make_unique<RegexNode>();
  n->kind = Kind::kConcat;
  n->children = std::move(parts);
  return n;
}

std::unique_ptr<RegexNode> RegexNode::Alternate(
    std::vector<std::unique_ptr<RegexNode>> parts) {
  if (parts.empty()) return Epsilon();
  if (parts.size() == 1) return std::move(parts[0]);
  auto n = std::make_unique<RegexNode>();
  n->kind = Kind::kAlternate;
  n->children = std::move(parts);
  return n;
}

std::unique_ptr<RegexNode> RegexNode::Star(std::unique_ptr<RegexNode> inner) {
  auto n = std::make_unique<RegexNode>();
  n->kind = Kind::kStar;
  n->children.push_back(std::move(inner));
  return n;
}

std::unique_ptr<RegexNode> RegexNode::Plus(std::unique_ptr<RegexNode> inner) {
  auto n = std::make_unique<RegexNode>();
  n->kind = Kind::kPlus;
  n->children.push_back(std::move(inner));
  return n;
}

std::unique_ptr<RegexNode> RegexNode::Optional(
    std::unique_ptr<RegexNode> inner) {
  auto n = std::make_unique<RegexNode>();
  n->kind = Kind::kOptional;
  n->children.push_back(std::move(inner));
  return n;
}

std::unique_ptr<RegexNode> RegexNode::FromString(const std::string& s,
                                                 bool nocase) {
  std::vector<std::unique_ptr<RegexNode>> parts;
  parts.reserve(s.size());
  for (char c : s) {
    const unsigned char b = static_cast<unsigned char>(c);
    parts.push_back(Literal(nocase ? CharClass::NoCase(b) : CharClass::Of(b)));
  }
  return Concat(std::move(parts));
}

std::unique_ptr<RegexNode> RegexNode::Clone() const {
  auto n = std::make_unique<RegexNode>();
  n->kind = kind;
  n->char_class = char_class;
  n->children.reserve(children.size());
  for (const auto& c : children) n->children.push_back(c->Clone());
  return n;
}

bool RegexNode::Nullable() const {
  switch (kind) {
    case Kind::kEpsilon:
    case Kind::kStar:
    case Kind::kOptional:
      return true;
    case Kind::kLiteral:
      return false;
    case Kind::kPlus:
      return children[0]->Nullable();
    case Kind::kConcat:
      return std::all_of(children.begin(), children.end(),
                         [](const auto& c) { return c->Nullable(); });
    case Kind::kAlternate:
      return std::any_of(children.begin(), children.end(),
                         [](const auto& c) { return c->Nullable(); });
  }
  return false;
}

size_t RegexNode::LiteralCount() const {
  switch (kind) {
    case Kind::kEpsilon:
      return 0;
    case Kind::kLiteral:
      return 1;
    default: {
      size_t n = 0;
      for (const auto& c : children) n += c->LiteralCount();
      return n;
    }
  }
}

size_t RegexNode::MinLength() const {
  switch (kind) {
    case Kind::kEpsilon:
    case Kind::kStar:
    case Kind::kOptional:
      return 0;
    case Kind::kLiteral:
      return 1;
    case Kind::kPlus:
      return children[0]->MinLength();
    case Kind::kConcat: {
      size_t n = 0;
      for (const auto& c : children) n += c->MinLength();
      return n;
    }
    case Kind::kAlternate: {
      size_t n = SIZE_MAX;
      for (const auto& c : children) n = std::min(n, c->MinLength());
      return n;
    }
  }
  return 0;
}

size_t RegexNode::MaxLength() const {
  switch (kind) {
    case Kind::kEpsilon:
      return 0;
    case Kind::kLiteral:
      return 1;
    case Kind::kStar:
    case Kind::kPlus:
      return SIZE_MAX;
    case Kind::kOptional:
      return children[0]->MaxLength();
    case Kind::kConcat: {
      size_t n = 0;
      for (const auto& c : children) {
        const size_t m = c->MaxLength();
        if (m == SIZE_MAX) return SIZE_MAX;
        n += m;
      }
      return n;
    }
    case Kind::kAlternate: {
      size_t n = 0;
      for (const auto& c : children) n = std::max(n, c->MaxLength());
      return n;
    }
  }
  return 0;
}

std::string RegexNode::ToString() const {
  switch (kind) {
    case Kind::kEpsilon:
      return "()";
    case Kind::kLiteral:
      return RegexClass(char_class);
    case Kind::kConcat: {
      std::string out;
      for (const auto& c : children) {
        const bool paren = c->kind == Kind::kAlternate;
        if (paren) out += "(";
        out += c->ToString();
        if (paren) out += ")";
      }
      return out;
    }
    case Kind::kAlternate: {
      std::string out;
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += "|";
        out += children[i]->ToString();
      }
      return out;
    }
    case Kind::kStar:
    case Kind::kPlus:
    case Kind::kOptional: {
      const char suffix =
          kind == Kind::kStar ? '*' : (kind == Kind::kPlus ? '+' : '?');
      const RegexNode& inner = *children[0];
      const bool paren =
          inner.kind != Kind::kLiteral && inner.kind != Kind::kEpsilon;
      std::string out;
      if (paren) out += "(";
      out += inner.ToString();
      if (paren) out += ")";
      out += suffix;
      return out;
    }
  }
  return "?";
}

}  // namespace cfgtag::regex
