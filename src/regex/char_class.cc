#include "regex/char_class.h"

#include <cctype>

#include "common/strings.h"

namespace cfgtag::regex {

CharClass CharClass::Of(unsigned char c) {
  CharClass cc;
  cc.Set(c);
  return cc;
}

CharClass CharClass::Range(unsigned char lo, unsigned char hi) {
  CharClass cc;
  cc.SetRange(lo, hi);
  return cc;
}

CharClass CharClass::NoCase(unsigned char c) {
  CharClass cc;
  cc.Set(static_cast<unsigned char>(std::tolower(c)));
  cc.Set(static_cast<unsigned char>(std::toupper(c)));
  return cc;
}

CharClass CharClass::Any() {
  CharClass cc;
  cc.SetRange(0, 255);
  return cc;
}

CharClass CharClass::Digit() { return Range('0', '9'); }

CharClass CharClass::Alpha() {
  return Range('a', 'z').Union(Range('A', 'Z'));
}

CharClass CharClass::AlphaNum() { return Alpha().Union(Digit()); }

CharClass CharClass::Whitespace() {
  CharClass cc;
  for (unsigned char c : {' ', '\t', '\n', '\r', '\f', '\v'}) cc.Set(c);
  return cc;
}

void CharClass::SetRange(unsigned char lo, unsigned char hi) {
  for (int c = lo; c <= hi; ++c) bits_.set(static_cast<size_t>(c));
}

CharClass CharClass::Union(const CharClass& other) const {
  CharClass out;
  out.bits_ = bits_ | other.bits_;
  return out;
}

CharClass CharClass::Intersect(const CharClass& other) const {
  CharClass out;
  out.bits_ = bits_ & other.bits_;
  return out;
}

CharClass CharClass::Complement() const {
  CharClass out;
  out.bits_ = ~bits_;
  return out;
}

CharClass CharClass::Minus(const CharClass& other) const {
  CharClass out;
  out.bits_ = bits_ & ~other.bits_;
  return out;
}

std::vector<unsigned char> CharClass::Members() const {
  std::vector<unsigned char> out;
  for (int c = 0; c < 256; ++c) {
    if (bits_.test(static_cast<size_t>(c))) {
      out.push_back(static_cast<unsigned char>(c));
    }
  }
  return out;
}

std::string CharClass::ToString() const {
  const size_t n = Count();
  if (n == 0) return "[]";
  if (n == 1) return ByteName(Members()[0]);
  if (n == 256) return ".";
  std::string out = "[";
  int c = 0;
  while (c < 256) {
    if (!bits_.test(static_cast<size_t>(c))) {
      ++c;
      continue;
    }
    int end = c;
    while (end + 1 < 256 && bits_.test(static_cast<size_t>(end + 1))) ++end;
    out += ByteName(static_cast<unsigned char>(c));
    if (end > c) {
      out += "-";
      out += ByteName(static_cast<unsigned char>(end));
    }
    c = end + 1;
  }
  out += "]";
  return out;
}

size_t CharClass::Hash() const {
  // FNV-1a over the four 64-bit words.
  size_t h = 1469598103934665603ULL;
  for (int word = 0; word < 4; ++word) {
    uint64_t w = 0;
    for (int bit = 0; bit < 64; ++bit) {
      if (bits_.test(static_cast<size_t>(word * 64 + bit))) w |= 1ULL << bit;
    }
    h ^= w;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace cfgtag::regex
