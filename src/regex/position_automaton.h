#ifndef CFGTAG_REGEX_POSITION_AUTOMATON_H_
#define CFGTAG_REGEX_POSITION_AUTOMATON_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "regex/regex_ast.h"

namespace cfgtag::regex {

// Glushkov position automaton of a regex: one state per kLiteral position,
// no epsilon transitions. This is precisely the hardware structure of the
// paper's tokenizers (§3.2): one pipeline register per pattern byte, with
// an AND gate combining the decoded character and the predecessor
// registers. The generator emits one register per `positions` entry, wires
// `follow` edges as its OR/AND network, injects the arm signal into
// `first` positions, and takes the match output from `last` positions.
struct PositionAutomaton {
  // Character class consumed when *entering* each position.
  std::vector<CharClass> positions;
  // follow[p] = positions reachable immediately after p.
  std::vector<std::vector<uint32_t>> follow;
  // Positions that can start a match.
  std::vector<uint32_t> first;
  // is_last[p] != 0 iff a match can end at p.
  std::vector<uint8_t> is_last;
  // Whether the regex matches the empty string (rejected for tokens).
  bool nullable = false;

  static PositionAutomaton Build(const RegexNode& re);

  size_t NumPositions() const { return positions.size(); }

  // --- Bit-parallel software execution (used by the functional model) ---
  // States are bitmaps over positions, stored in 64-bit words.
  size_t NumWords() const { return (positions.size() + 63) / 64; }

  // state' = { q in follow(p) : p in state, c in class(q) }
  //          u { q in first : inject, c in class(q) }
  void StepState(const uint64_t* state, bool inject, unsigned char c,
                 uint64_t* next_state) const;

  // True if any position in `state` is accepting.
  bool Accepts(const uint64_t* state) const;

  // True if some transition out of an *accepting* live position consumes
  // `c` — the Fig. 7 longest-match look-ahead condition ("this detection is
  // not the longest: the accepted run keeps going").
  bool CanExtend(const uint64_t* state, unsigned char c) const;

 private:
  // Lazily-built dense helper tables for the bit-parallel stepper.
  void EnsureTables() const;

  // reach_[p] = bitmap of follow(p); first_mask_ = bitmap of first;
  // last_mask_ = bitmap of accepting positions;
  // class_mask_[c] = bitmap of positions whose class contains byte c.
  mutable std::vector<std::vector<uint64_t>> reach_;
  mutable std::vector<uint64_t> first_mask_;
  mutable std::vector<uint64_t> last_mask_;
  mutable std::vector<std::vector<uint64_t>> class_mask_;
  mutable bool tables_built_ = false;
};

}  // namespace cfgtag::regex

#endif  // CFGTAG_REGEX_POSITION_AUTOMATON_H_
