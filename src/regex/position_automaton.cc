#include "regex/position_automaton.h"

#include <algorithm>

namespace cfgtag::regex {

namespace {

// Per-subexpression summary used during construction.
struct Frag {
  std::vector<uint32_t> first;
  std::vector<uint32_t> last;
  bool nullable = false;
};

std::vector<uint32_t> UnionSorted(const std::vector<uint32_t>& a,
                                  const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

struct Builder {
  PositionAutomaton* out;

  void AddFollow(const std::vector<uint32_t>& from,
                 const std::vector<uint32_t>& to) {
    for (uint32_t p : from) {
      auto& f = out->follow[p];
      for (uint32_t q : to) f.push_back(q);
    }
  }

  Frag Build(const RegexNode& re) {
    switch (re.kind) {
      case RegexNode::Kind::kEpsilon:
        return Frag{{}, {}, true};
      case RegexNode::Kind::kLiteral: {
        const uint32_t p = static_cast<uint32_t>(out->positions.size());
        out->positions.push_back(re.char_class);
        out->follow.emplace_back();
        return Frag{{p}, {p}, false};
      }
      case RegexNode::Kind::kConcat: {
        Frag acc{{}, {}, true};
        for (const auto& child : re.children) {
          Frag f = Build(*child);
          AddFollow(acc.last, f.first);
          if (acc.nullable) acc.first = UnionSorted(acc.first, f.first);
          acc.last =
              f.nullable ? UnionSorted(acc.last, f.last) : std::move(f.last);
          acc.nullable = acc.nullable && f.nullable;
        }
        return acc;
      }
      case RegexNode::Kind::kAlternate: {
        Frag acc{{}, {}, false};
        for (const auto& child : re.children) {
          Frag f = Build(*child);
          acc.first = UnionSorted(acc.first, f.first);
          acc.last = UnionSorted(acc.last, f.last);
          acc.nullable = acc.nullable || f.nullable;
        }
        return acc;
      }
      case RegexNode::Kind::kStar:
      case RegexNode::Kind::kPlus: {
        Frag f = Build(*re.children[0]);
        AddFollow(f.last, f.first);
        f.nullable = f.nullable || re.kind == RegexNode::Kind::kStar;
        return f;
      }
      case RegexNode::Kind::kOptional: {
        Frag f = Build(*re.children[0]);
        f.nullable = true;
        return f;
      }
    }
    return Frag{{}, {}, true};
  }
};

}  // namespace

PositionAutomaton PositionAutomaton::Build(const RegexNode& re) {
  PositionAutomaton pa;
  Builder b{&pa};
  Frag root = b.Build(re);
  pa.first = std::move(root.first);
  pa.is_last.assign(pa.positions.size(), 0);
  for (uint32_t p : root.last) pa.is_last[p] = 1;
  pa.nullable = root.nullable;
  // Dedup follow lists (Plus/Star can insert duplicates).
  for (auto& f : pa.follow) {
    std::sort(f.begin(), f.end());
    f.erase(std::unique(f.begin(), f.end()), f.end());
  }
  return pa;
}

void PositionAutomaton::EnsureTables() const {
  if (tables_built_) return;
  const size_t nw = NumWords();
  const size_t np = positions.size();
  auto set_bit = [](std::vector<uint64_t>& v, uint32_t p) {
    v[p / 64] |= 1ULL << (p % 64);
  };
  reach_.assign(np, std::vector<uint64_t>(nw, 0));
  for (size_t p = 0; p < np; ++p) {
    for (uint32_t q : follow[p]) set_bit(reach_[p], q);
  }
  first_mask_.assign(nw, 0);
  for (uint32_t p : first) set_bit(first_mask_, p);
  last_mask_.assign(nw, 0);
  for (uint32_t p = 0; p < np; ++p) {
    if (is_last[p]) set_bit(last_mask_, static_cast<uint32_t>(p));
  }
  class_mask_.assign(256, std::vector<uint64_t>(nw, 0));
  for (uint32_t p = 0; p < np; ++p) {
    for (int c = 0; c < 256; ++c) {
      if (positions[p].Test(static_cast<unsigned char>(c))) {
        set_bit(class_mask_[c], p);
      }
    }
  }
  tables_built_ = true;
}

void PositionAutomaton::StepState(const uint64_t* state, bool inject,
                                  unsigned char c,
                                  uint64_t* next_state) const {
  EnsureTables();
  const size_t nw = NumWords();
  const size_t np = positions.size();
  for (size_t w = 0; w < nw; ++w) next_state[w] = 0;
  // Successors of live positions.
  for (size_t w = 0; w < nw; ++w) {
    uint64_t bits = state[w];
    while (bits) {
      const uint32_t p = static_cast<uint32_t>(w * 64 + __builtin_ctzll(bits));
      bits &= bits - 1;
      if (p >= np) break;
      const std::vector<uint64_t>& r = reach_[p];
      for (size_t v = 0; v < nw; ++v) next_state[v] |= r[v];
    }
  }
  if (inject) {
    for (size_t v = 0; v < nw; ++v) next_state[v] |= first_mask_[v];
  }
  const std::vector<uint64_t>& cm = class_mask_[c];
  for (size_t v = 0; v < nw; ++v) next_state[v] &= cm[v];
}

bool PositionAutomaton::Accepts(const uint64_t* state) const {
  EnsureTables();
  for (size_t w = 0; w < NumWords(); ++w) {
    if (state[w] & last_mask_[w]) return true;
  }
  return false;
}

bool PositionAutomaton::CanExtend(const uint64_t* state,
                                  unsigned char c) const {
  EnsureTables();
  const size_t nw = NumWords();
  const size_t np = positions.size();
  const std::vector<uint64_t>& cm = class_mask_[c];
  for (size_t w = 0; w < nw; ++w) {
    uint64_t bits = state[w] & last_mask_[w];
    while (bits) {
      const uint32_t p = static_cast<uint32_t>(w * 64 + __builtin_ctzll(bits));
      bits &= bits - 1;
      if (p >= np) break;
      const std::vector<uint64_t>& r = reach_[p];
      for (size_t v = 0; v < nw; ++v) {
        if (r[v] & cm[v]) return true;
      }
    }
  }
  return false;
}

}  // namespace cfgtag::regex
