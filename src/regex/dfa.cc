#include "regex/dfa.h"

#include <algorithm>
#include <map>

namespace cfgtag::regex {

Dfa Dfa::Build(const Nfa& nfa) {
  Dfa dfa;
  const size_t n = nfa.states_.size();

  // Subset construction keyed on sorted state-id vectors.
  std::map<std::vector<uint32_t>, uint32_t> subset_id;
  std::vector<std::vector<uint32_t>> worklist;

  auto closure_of = [&](std::vector<uint32_t> seed) {
    std::vector<uint8_t> member(n, 0);
    for (uint32_t s : seed) member[s] = 1;
    nfa.EpsClosure(seed, member);
    std::vector<uint32_t> sorted;
    for (uint32_t s = 0; s < n; ++s) {
      if (member[s]) sorted.push_back(s);
    }
    return sorted;
  };

  auto intern = [&](std::vector<uint32_t> set) {
    auto [it, inserted] =
        subset_id.emplace(std::move(set), static_cast<uint32_t>(subset_id.size()));
    if (inserted) {
      worklist.push_back(it->first);
      dfa.trans_.emplace_back();
      dfa.trans_.back().fill(kDead);
      bool acc = false;
      for (uint32_t s : it->first) acc |= (s == nfa.accept_);
      dfa.accept_.push_back(acc ? 1 : 0);
    }
    return it->second;
  };

  dfa.start_ = intern(closure_of({nfa.start_}));

  for (size_t w = 0; w < worklist.size(); ++w) {
    const std::vector<uint32_t> current = worklist[w];
    const uint32_t cur_id = subset_id.at(current);
    // For each input byte, collect successor NFA states.
    for (int c = 0; c < 256; ++c) {
      std::vector<uint32_t> next;
      for (uint32_t s : current) {
        for (const auto& t : nfa.states_[s].arcs) {
          if (t.on.Test(static_cast<unsigned char>(c))) next.push_back(t.to);
        }
      }
      if (next.empty()) continue;
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
      const uint32_t next_id = intern(closure_of(std::move(next)));
      dfa.trans_[cur_id][c] = static_cast<int32_t>(next_id);
    }
  }
  return dfa;
}

Dfa Dfa::Minimize() const {
  const size_t n = NumStates();
  // Moore partition refinement with an explicit dead class (-1 handled as
  // its own implicit partition).
  std::vector<uint32_t> part(n);
  for (size_t s = 0; s < n; ++s) part[s] = accept_[s] ? 1 : 0;
  uint32_t num_parts = 2;

  bool changed = true;
  while (changed) {
    changed = false;
    // Signature: (current partition, partition of each byte successor).
    std::map<std::vector<int64_t>, uint32_t> sig_to_new;
    std::vector<uint32_t> new_part(n);
    for (size_t s = 0; s < n; ++s) {
      std::vector<int64_t> sig;
      sig.reserve(257);
      sig.push_back(part[s]);
      for (int c = 0; c < 256; ++c) {
        const int32_t t = trans_[s][c];
        sig.push_back(t == kDead ? -1 : static_cast<int64_t>(part[t]));
      }
      auto [it, inserted] = sig_to_new.emplace(
          std::move(sig), static_cast<uint32_t>(sig_to_new.size()));
      new_part[s] = it->second;
    }
    if (sig_to_new.size() != num_parts) {
      changed = true;
      num_parts = static_cast<uint32_t>(sig_to_new.size());
    }
    part = std::move(new_part);
  }

  Dfa out;
  out.trans_.resize(num_parts);
  for (auto& row : out.trans_) row.fill(kDead);
  out.accept_.assign(num_parts, 0);
  for (size_t s = 0; s < n; ++s) {
    const uint32_t p = part[s];
    out.accept_[p] = accept_[s];
    for (int c = 0; c < 256; ++c) {
      const int32_t t = trans_[s][c];
      out.trans_[p][c] = t == kDead ? kDead : static_cast<int32_t>(part[t]);
    }
  }
  out.start_ = part[start_];
  return out;
}

bool Dfa::FullMatch(std::string_view input) const {
  int32_t s = static_cast<int32_t>(start_);
  for (char ch : input) {
    s = trans_[s][static_cast<unsigned char>(ch)];
    if (s == kDead) return false;
  }
  return accept_[s];
}

size_t Dfa::LongestPrefixMatch(std::string_view input, size_t pos) const {
  int32_t s = static_cast<int32_t>(start_);
  size_t best = accept_[s] ? 0 : kNoMatch;
  for (size_t i = pos; i < input.size(); ++i) {
    s = trans_[s][static_cast<unsigned char>(input[i])];
    if (s == kDead) break;
    if (accept_[s]) best = i - pos + 1;
  }
  return best;
}

}  // namespace cfgtag::regex
