#ifndef CFGTAG_REGEX_DFA_H_
#define CFGTAG_REGEX_DFA_H_

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "regex/nfa.h"

namespace cfgtag::regex {

// Deterministic automaton produced by subset construction from an Nfa.
// Drives the software baseline lexer; also used in property tests as an
// independently-derived matcher to cross-check the NFA oracle.
class Dfa {
 public:
  static constexpr size_t kNoMatch = static_cast<size_t>(-1);
  static constexpr int32_t kDead = -1;

  static Dfa Build(const Nfa& nfa);

  // Hopcroft-style state minimization (Moore partition refinement).
  Dfa Minimize() const;

  bool FullMatch(std::string_view input) const;

  // Length of the longest prefix of input[pos..] accepted, or kNoMatch.
  size_t LongestPrefixMatch(std::string_view input, size_t pos) const;

  size_t NumStates() const { return accept_.size(); }
  bool IsAccept(uint32_t state) const { return accept_[state]; }
  int32_t Transition(uint32_t state, unsigned char c) const {
    return trans_[state][c];
  }
  uint32_t start() const { return start_; }

 private:
  std::vector<std::array<int32_t, 256>> trans_;
  std::vector<uint8_t> accept_;
  uint32_t start_ = 0;
};

}  // namespace cfgtag::regex

#endif  // CFGTAG_REGEX_DFA_H_
