#include "regex/regex_parser.h"

#include <cctype>

#include "common/strings.h"

namespace cfgtag::regex {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& pattern) : s_(pattern) {}

  StatusOr<std::unique_ptr<RegexNode>> Parse() {
    CFGTAG_ASSIGN_OR_RETURN(auto node, ParseAlternation());
    if (!AtEnd()) {
      return InvalidArgumentError("unexpected '" + std::string(1, Peek()) +
                                  "' at offset " + std::to_string(pos_) +
                                  " in pattern: " + s_);
    }
    return node;
  }

 private:
  bool AtEnd() const { return pos_ >= s_.size(); }
  char Peek() const { return s_[pos_]; }
  char Take() { return s_[pos_++]; }

  StatusOr<std::unique_ptr<RegexNode>> ParseAlternation() {
    std::vector<std::unique_ptr<RegexNode>> alts;
    CFGTAG_ASSIGN_OR_RETURN(auto first, ParseConcat());
    alts.push_back(std::move(first));
    while (!AtEnd() && Peek() == '|') {
      Take();
      CFGTAG_ASSIGN_OR_RETURN(auto next, ParseConcat());
      alts.push_back(std::move(next));
    }
    return RegexNode::Alternate(std::move(alts));
  }

  StatusOr<std::unique_ptr<RegexNode>> ParseConcat() {
    std::vector<std::unique_ptr<RegexNode>> parts;
    while (!AtEnd() && Peek() != '|' && Peek() != ')') {
      CFGTAG_ASSIGN_OR_RETURN(auto part, ParsePostfix());
      parts.push_back(std::move(part));
    }
    return RegexNode::Concat(std::move(parts));
  }

  StatusOr<std::unique_ptr<RegexNode>> ParsePostfix() {
    CFGTAG_ASSIGN_OR_RETURN(auto node, ParseAtom());
    while (!AtEnd()) {
      const char c = Peek();
      if (c == '*') {
        Take();
        node = RegexNode::Star(std::move(node));
      } else if (c == '+') {
        Take();
        node = RegexNode::Plus(std::move(node));
      } else if (c == '?') {
        Take();
        node = RegexNode::Optional(std::move(node));
      } else if (c == '{') {
        Take();
        CFGTAG_ASSIGN_OR_RETURN(node, ParseBound(std::move(node)));
      } else {
        break;
      }
    }
    return node;
  }

  // Called after '{'. Parses {m}, {m,} or {m,n} and expands structurally.
  StatusOr<std::unique_ptr<RegexNode>> ParseBound(
      std::unique_ptr<RegexNode> inner) {
    auto take_number = [&]() -> StatusOr<int> {
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return InvalidArgumentError("expected number in {m,n}: " + s_);
      }
      int v = 0;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        v = v * 10 + (Take() - '0');
        if (v > 256) {
          return InvalidArgumentError("repetition bound too large: " + s_);
        }
      }
      return v;
    };
    CFGTAG_ASSIGN_OR_RETURN(int lo, take_number());
    int hi = lo;
    bool unbounded = false;
    if (!AtEnd() && Peek() == ',') {
      Take();
      if (!AtEnd() && Peek() == '}') {
        unbounded = true;
      } else {
        CFGTAG_ASSIGN_OR_RETURN(hi, take_number());
      }
    }
    if (AtEnd() || Take() != '}') {
      return InvalidArgumentError("missing '}' in repetition: " + s_);
    }
    if (!unbounded && hi < lo) {
      return InvalidArgumentError("inverted repetition bound: " + s_);
    }
    // Mandatory part: lo copies.
    std::vector<std::unique_ptr<RegexNode>> parts;
    for (int i = 0; i < lo; ++i) parts.push_back(inner->Clone());
    if (unbounded) {
      parts.push_back(RegexNode::Star(inner->Clone()));
    } else {
      // Optional tail: nested (e(e(...)?)?)? so each copy is one stage.
      std::unique_ptr<RegexNode> tail;
      for (int i = 0; i < hi - lo; ++i) {
        std::vector<std::unique_ptr<RegexNode>> seq;
        seq.push_back(inner->Clone());
        if (tail) seq.push_back(std::move(tail));
        tail = RegexNode::Optional(RegexNode::Concat(std::move(seq)));
      }
      if (tail) parts.push_back(std::move(tail));
    }
    return RegexNode::Concat(std::move(parts));
  }

  StatusOr<std::unique_ptr<RegexNode>> ParseAtom() {
    if (AtEnd()) return InvalidArgumentError("pattern ends unexpectedly: " + s_);
    const char c = Take();
    switch (c) {
      case '(': {
        CFGTAG_ASSIGN_OR_RETURN(auto inner, ParseAlternation());
        if (AtEnd() || Take() != ')') {
          return InvalidArgumentError("missing ')' in pattern: " + s_);
        }
        return inner;
      }
      case '[':
        return ParseClass();
      case '"': {
        std::vector<std::unique_ptr<RegexNode>> parts;
        while (!AtEnd() && Peek() != '"') {
          char lit = Take();
          if (lit == '\\' && !AtEnd()) {
            CFGTAG_ASSIGN_OR_RETURN(unsigned char e, TakeEscape());
            lit = static_cast<char>(e);
          }
          parts.push_back(RegexNode::Literal(
              CharClass::Of(static_cast<unsigned char>(lit))));
        }
        if (AtEnd()) {
          return InvalidArgumentError("missing closing '\"' in pattern: " + s_);
        }
        Take();  // closing quote
        return RegexNode::Concat(std::move(parts));
      }
      case '.': {
        // Lex behaviour: any byte except newline.
        CharClass any = CharClass::Any();
        any = any.Minus(CharClass::Of('\n'));
        return RegexNode::Literal(any);
      }
      case '\\': {
        CFGTAG_ASSIGN_OR_RETURN(unsigned char e, TakeEscape());
        return RegexNode::Literal(CharClass::Of(e));
      }
      case '*':
      case '+':
      case '?':
        return InvalidArgumentError(
            std::string("postfix operator '") + c +
            "' with nothing to repeat in pattern: " + s_);
      default:
        return RegexNode::Literal(CharClass::Of(static_cast<unsigned char>(c)));
    }
  }

  // Called after the backslash has been consumed.
  StatusOr<unsigned char> TakeEscape() {
    if (AtEnd()) return InvalidArgumentError("dangling '\\' in pattern: " + s_);
    const char c = Take();
    switch (c) {
      case 'n': return static_cast<unsigned char>('\n');
      case 't': return static_cast<unsigned char>('\t');
      case 'r': return static_cast<unsigned char>('\r');
      case 'f': return static_cast<unsigned char>('\f');
      case 'v': return static_cast<unsigned char>('\v');
      case '0': return static_cast<unsigned char>('\0');
      case 'x': {
        if (pos_ + 1 >= s_.size() ||
            !std::isxdigit(static_cast<unsigned char>(s_[pos_])) ||
            !std::isxdigit(static_cast<unsigned char>(s_[pos_ + 1]))) {
          return InvalidArgumentError("bad \\x escape in pattern: " + s_);
        }
        auto hex = [](char h) {
          if (h >= '0' && h <= '9') return h - '0';
          return std::tolower(h) - 'a' + 10;
        };
        const int v = hex(Take()) * 16;
        return static_cast<unsigned char>(v + hex(Take()));
      }
      default:
        // Escaped metacharacter or any other byte: itself.
        return static_cast<unsigned char>(c);
    }
  }

  // Called after '[' has been consumed.
  StatusOr<std::unique_ptr<RegexNode>> ParseClass() {
    CharClass cc;
    bool negate = false;
    if (!AtEnd() && Peek() == '^') {
      Take();
      negate = true;
    }
    bool first = true;
    while (true) {
      if (AtEnd()) {
        return InvalidArgumentError("missing ']' in pattern: " + s_);
      }
      char c = Take();
      if (c == ']' && !first) break;
      first = false;
      unsigned char lo;
      if (c == '\\') {
        CFGTAG_ASSIGN_OR_RETURN(lo, TakeEscape());
      } else {
        lo = static_cast<unsigned char>(c);
      }
      // Range?
      if (!AtEnd() && Peek() == '-' && pos_ + 1 < s_.size() &&
          s_[pos_ + 1] != ']') {
        Take();  // '-'
        char hc = Take();
        unsigned char hi;
        if (hc == '\\') {
          CFGTAG_ASSIGN_OR_RETURN(hi, TakeEscape());
        } else {
          hi = static_cast<unsigned char>(hc);
        }
        if (hi < lo) {
          return InvalidArgumentError("inverted range in pattern: " + s_);
        }
        cc.SetRange(lo, hi);
      } else {
        cc.Set(lo);
      }
    }
    if (negate) cc = cc.Complement();
    if (cc.Empty()) {
      return InvalidArgumentError("empty character class in pattern: " + s_);
    }
    return RegexNode::Literal(cc);
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<std::unique_ptr<RegexNode>> ParseRegex(const std::string& pattern) {
  return Parser(pattern).Parse();
}

}  // namespace cfgtag::regex
