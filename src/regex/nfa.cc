#include "regex/nfa.h"

#include <algorithm>
#include <utility>

namespace cfgtag::regex {

namespace {

// Recursive Thompson construction helper operating on a state vector.
struct Builder {
  std::vector<Nfa::State>* states;

  uint32_t NewState() {
    states->emplace_back();
    return static_cast<uint32_t>(states->size() - 1);
  }

  // Returns {entry, exit} for the fragment.
  std::pair<uint32_t, uint32_t> Build(const RegexNode& re) {
    switch (re.kind) {
      case RegexNode::Kind::kEpsilon: {
        const uint32_t s = NewState();
        return {s, s};
      }
      case RegexNode::Kind::kLiteral: {
        const uint32_t in = NewState();
        const uint32_t out = NewState();
        (*states)[in].arcs.push_back({re.char_class, out});
        return {in, out};
      }
      case RegexNode::Kind::kConcat: {
        uint32_t entry = 0, exit = 0;
        bool first = true;
        for (const auto& child : re.children) {
          auto [i, o] = Build(*child);
          if (first) {
            entry = i;
            first = false;
          } else {
            (*states)[exit].eps.push_back(i);
          }
          exit = o;
        }
        if (first) {  // empty concat == epsilon
          entry = exit = NewState();
        }
        return {entry, exit};
      }
      case RegexNode::Kind::kAlternate: {
        const uint32_t in = NewState();
        const uint32_t out = NewState();
        for (const auto& child : re.children) {
          auto [i, o] = Build(*child);
          (*states)[in].eps.push_back(i);
          (*states)[o].eps.push_back(out);
        }
        return {in, out};
      }
      case RegexNode::Kind::kStar: {
        const uint32_t in = NewState();
        const uint32_t out = NewState();
        auto [i, o] = Build(*re.children[0]);
        (*states)[in].eps.push_back(i);
        (*states)[in].eps.push_back(out);
        (*states)[o].eps.push_back(i);
        (*states)[o].eps.push_back(out);
        return {in, out};
      }
      case RegexNode::Kind::kPlus: {
        const uint32_t in = NewState();
        const uint32_t out = NewState();
        auto [i, o] = Build(*re.children[0]);
        (*states)[in].eps.push_back(i);
        (*states)[o].eps.push_back(i);
        (*states)[o].eps.push_back(out);
        return {in, out};
      }
      case RegexNode::Kind::kOptional: {
        const uint32_t in = NewState();
        const uint32_t out = NewState();
        auto [i, o] = Build(*re.children[0]);
        (*states)[in].eps.push_back(i);
        (*states)[in].eps.push_back(out);
        (*states)[o].eps.push_back(out);
        return {in, out};
      }
    }
    const uint32_t s = NewState();
    return {s, s};
  }
};

}  // namespace

Nfa Nfa::Build(const RegexNode& re) {
  Nfa nfa;
  Builder b{&nfa.states_};
  auto [entry, exit] = b.Build(re);
  nfa.start_ = entry;
  nfa.accept_ = exit;
  return nfa;
}

void Nfa::EpsClosure(std::vector<uint32_t>& worklist,
                     std::vector<uint8_t>& member) const {
  for (size_t i = 0; i < worklist.size(); ++i) {
    const uint32_t s = worklist[i];
    for (uint32_t t : states_[s].eps) {
      if (!member[t]) {
        member[t] = 1;
        worklist.push_back(t);
      }
    }
  }
}

size_t Nfa::LongestPrefixMatch(std::string_view input, size_t pos) const {
  std::vector<uint8_t> member(states_.size(), 0);
  std::vector<uint32_t> current;
  current.push_back(start_);
  member[start_] = 1;
  EpsClosure(current, member);

  size_t best = member[accept_] ? 0 : kNoMatch;
  std::vector<uint8_t> next_member(states_.size(), 0);
  std::vector<uint32_t> next;

  for (size_t i = pos; i < input.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(input[i]);
    next.clear();
    std::fill(next_member.begin(), next_member.end(), 0);
    for (uint32_t s : current) {
      for (const Transition& t : states_[s].arcs) {
        if (t.on.Test(c) && !next_member[t.to]) {
          next_member[t.to] = 1;
          next.push_back(t.to);
        }
      }
    }
    if (next.empty()) break;
    EpsClosure(next, next_member);
    current.swap(next);
    member.swap(next_member);
    if (member[accept_]) best = i - pos + 1;
  }
  return best;
}

bool Nfa::FullMatch(std::string_view input) const {
  // A full match exists iff some prefix match covers the whole input; the
  // longest-match scan tracks the maximal one, so compare against size.
  // (LongestPrefixMatch returns the longest, which is >= any other match,
  // and matching is monotone in no way — so check explicitly.)
  std::vector<uint8_t> member(states_.size(), 0);
  std::vector<uint32_t> current;
  current.push_back(start_);
  member[start_] = 1;
  EpsClosure(current, member);

  std::vector<uint8_t> next_member(states_.size(), 0);
  std::vector<uint32_t> next;
  for (const char ch : input) {
    const unsigned char c = static_cast<unsigned char>(ch);
    next.clear();
    std::fill(next_member.begin(), next_member.end(), 0);
    for (uint32_t s : current) {
      for (const Transition& t : states_[s].arcs) {
        if (t.on.Test(c) && !next_member[t.to]) {
          next_member[t.to] = 1;
          next.push_back(t.to);
        }
      }
    }
    if (next.empty()) return false;
    EpsClosure(next, next_member);
    current.swap(next);
    member.swap(next_member);
  }
  return member[accept_];
}

}  // namespace cfgtag::regex
