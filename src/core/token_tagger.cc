#include "core/token_tagger.h"

#include <algorithm>
#include <cctype>
#include <ostream>

#include "core/resilience/budget.h"
#include "grammar/canonical.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rtl/optimize.h"
#include "tagger/artifact/cache.h"
#include "tagger/artifact/loader.h"
#include "tagger/artifact/writer.h"
#include "rtl/simulator.h"
#include "tagger/session_pool.h"
#include "rtl/vcd_writer.h"
#include "rtl/vhdl_emitter.h"
#include "rtl/vhdl_testbench.h"

namespace cfgtag::core {

namespace {

std::string Padded(std::string_view input, size_t pad) {
  std::string s(input);
  s.append(pad, CompiledTagger::kFlushByte);
  return s;
}

// Cached handles into the default registry — registry lookup locks, so
// call sites on hot paths resolve each metric exactly once.
obs::Histogram* StageHistogram(const char* stage) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  return reg.GetHistogram(
      std::string("cfgtag_compile_stage_seconds{stage=\"") + stage + "\"}",
      "Wall time of one compile-pipeline stage");
}

}  // namespace

StatusOr<CompiledTagger> CompiledTagger::Compile(
    grammar::Grammar grammar, const hwgen::HwOptions& options) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::ScopedSpan span("core.Compile");
  obs::ScopedTimer timer(reg.GetHistogram(
      "cfgtag_compile_seconds", "End-to-end grammar compile wall time"));

  CompiledTagger out;
  out.grammar_ =
      std::make_unique<grammar::Grammar>(std::move(grammar));
  out.options_ = options;
  {
    obs::ScopedSpan stage("hwgen.Generate");
    obs::ScopedTimer stage_timer(StageHistogram("hwgen"));
    auto hardware = hwgen::TaggerGenerator::Generate(*out.grammar_, options);
    if (!hardware.ok()) return hardware.status().WithContext("hwgen");
    out.hardware_ = std::move(hardware).value();
  }
  {
    obs::ScopedSpan stage("tagger.CreateModel");
    obs::ScopedTimer stage_timer(StageHistogram("model"));
    auto model =
        tagger::FunctionalTagger::Create(out.grammar_.get(), options.tagger);
    if (!model.ok()) return model.status().WithContext("functional model");
    out.model_ =
        std::make_unique<tagger::FunctionalTagger>(std::move(model).value());
  }
  const tagger::TaggerBackend requested = options.tagger.backend;
  if (requested == tagger::TaggerBackend::kFused ||
      requested == tagger::TaggerBackend::kLazyDfa ||
      requested == tagger::TaggerBackend::kAuto) {
    obs::ScopedSpan stage("tagger.CreateFusedModel");
    obs::ScopedTimer stage_timer(StageHistogram("fused"));
    auto fused =
        tagger::FusedTagger::Create(out.grammar_.get(), options.tagger);
    if (!fused.ok()) return fused.status().WithContext("fused model");
    reg.GetGauge("cfgtag_compile_byte_classes",
                 "Byte classes of the last fused-backend compile")
        ->Set(static_cast<double>(fused.value().NumByteClasses()));
    // kAuto resolves here, against the one set of fused tables either
    // engine fronts: narrow grammars get the lazy DFA, wide ones stay
    // fused (see LazyDfaTagger::AutoPrefers).
    const bool lazy =
        requested == tagger::TaggerBackend::kLazyDfa ||
        (requested == tagger::TaggerBackend::kAuto &&
         tagger::LazyDfaTagger::AutoPrefers(fused.value()));
    if (lazy) {
      out.lazy_ = std::make_unique<tagger::LazyDfaTagger>(
          tagger::LazyDfaTagger::Wrap(std::move(fused).value()));
      out.options_.tagger.backend = tagger::TaggerBackend::kLazyDfa;
    } else {
      out.fused_ =
          std::make_unique<tagger::FusedTagger>(std::move(fused).value());
      out.options_.tagger.backend = tagger::TaggerBackend::kFused;
    }
  }

  const rtl::Netlist::Stats stats = out.hardware_.netlist.ComputeStats();
  reg.GetCounter("cfgtag_compile_total", "Grammar compiles completed")
      ->Increment();
  reg.GetGauge("cfgtag_compile_gates", "Gates in the last compiled netlist")
      ->Set(static_cast<double>(stats.num_gates));
  reg.GetGauge("cfgtag_compile_regs",
               "Registers in the last compiled netlist")
      ->Set(static_cast<double>(stats.num_regs));
  reg.GetGauge("cfgtag_compile_pattern_bytes",
               "Pattern bytes (Glushkov positions) of the last compile")
      ->Set(static_cast<double>(out.hardware_.pattern_bytes));
  return out;
}

Status CompiledTagger::RequireHardware(const char* what) const {
  if (software_only_) {
    return FailedPreconditionError(
        std::string(what) +
        ": tagger was loaded from an artifact (software engine only); "
        "recompile the grammar for netlist operations");
  }
  return Status::Ok();
}

StatusOr<std::string> CompiledTagger::SerializeWithHashes(
    uint64_t grammar_hash, uint64_t options_hash) const {
  namespace art = tagger::artifact;
  art::SerializeRequest req;
  req.grammar_hash = grammar_hash;
  req.options_hash = options_hash;
  req.aot_state_budget = options_.tagger.aot_state_budget;
  const tagger::FusedTagger* fused;
  if (lazy_ != nullptr) {
    req.backend = art::kArtifactLazyDfa;
    fused = &lazy_->fused();
  } else if (fused_ != nullptr) {
    req.backend = art::kArtifactFused;
    fused = fused_.get();
  } else {
    return FailedPreconditionError(
        "Serialize: the functional backend keeps no flat tables; compile "
        "with backend kFused, kLazyDfa or kAuto");
  }
  return art::SerializeTagger(*fused, req);
}

StatusOr<std::string> CompiledTagger::Serialize() const {
  return SerializeWithHashes(grammar::CanonicalHash(grammar()),
                             tagger::artifact::OptionsHash(options_.tagger));
}

// Builds a software-only CompiledTagger around a loaded artifact and
// records the artifact gauges.
StatusOr<CompiledTagger> CompiledTagger::AdoptLoaded(
    tagger::artifact::LoadedTagger lt) {
  const auto& am = tagger::artifact::ArtifactMetrics::Get();
  am.bytes->Set(static_cast<double>(lt.artifact_bytes));
  am.aot_states->Set(static_cast<double>(lt.aot_states));
  CompiledTagger out;
  out.software_only_ = true;
  out.loaded_grammar_ = lt.grammar;
  out.options_.tagger = lt.options;
  out.fused_ = std::move(lt.fused);
  out.lazy_ = std::move(lt.lazy);
  return out;
}

StatusOr<CompiledTagger> CompiledTagger::Deserialize(std::string_view bytes) {
  const auto& am = tagger::artifact::ArtifactMetrics::Get();
  obs::ScopedTimer timer(am.load_seconds);
  CFGTAG_ASSIGN_OR_RETURN(auto loaded,
                          tagger::artifact::LoadFromMemory(bytes));
  return AdoptLoaded(std::move(loaded));
}

StatusOr<CompiledTagger> CompiledTagger::LoadArtifact(
    const std::string& path) {
  const auto& am = tagger::artifact::ArtifactMetrics::Get();
  obs::ScopedTimer timer(am.load_seconds);
  CFGTAG_ASSIGN_OR_RETURN(auto loaded, tagger::artifact::LoadFromFile(path));
  return AdoptLoaded(std::move(loaded));
}

StatusOr<CompiledTagger> CompiledTagger::LoadArtifactCopied(
    const std::string& path) {
  const auto& am = tagger::artifact::ArtifactMetrics::Get();
  obs::ScopedTimer timer(am.load_seconds);
  CFGTAG_ASSIGN_OR_RETURN(auto loaded,
                          tagger::artifact::LoadFromFileCopied(path));
  return AdoptLoaded(std::move(loaded));
}

StatusOr<CompiledTagger> CompiledTagger::CompileCached(
    grammar::Grammar grammar, const hwgen::HwOptions& options,
    const std::string& cache_dir) {
  namespace art = tagger::artifact;
  const auto& am = art::ArtifactMetrics::Get();
  // The key is the *requested* configuration: grammar content (order
  // normalized) plus the options fields that shape the tables.
  const uint64_t ghash = grammar::CanonicalHash(grammar);
  const uint64_t ohash = art::OptionsHash(options.tagger);
  const std::string path = art::CachePath(cache_dir, ghash, ohash);
  {
    auto loaded = art::LoadFromFile(path);
    if (loaded.ok() && loaded.value().grammar_hash == ghash &&
        loaded.value().options_hash == ohash) {
      am.cache_hits->Increment();
      obs::ScopedTimer timer(am.load_seconds);
      return AdoptLoaded(std::move(loaded).value());
    }
    // Missing, corrupt, or stale-key entry: fall through to a compile
    // (the store below overwrites a bad entry atomically).
  }
  am.cache_misses->Increment();
  hwgen::HwOptions opts = options;
  if (opts.tagger.backend == tagger::TaggerBackend::kAuto &&
      opts.tagger.aot_state_budget > 0) {
    // With a baked transition table in the artifact, cold starts run warm
    // — the auto heuristic's cache-build cost argument no longer applies,
    // so kAuto prefers the precomputed DFA.
    opts.tagger.backend = tagger::TaggerBackend::kLazyDfa;
  }
  CFGTAG_ASSIGN_OR_RETURN(CompiledTagger out,
                          Compile(std::move(grammar), opts));
  auto bytes = out.SerializeWithHashes(ghash, ohash);
  if (bytes.ok()) {
    if (resilience::ResourceBudget::Process().ArtifactCacheReadOnly()) {
      // Top rung of the degradation ladder: the compile still succeeds,
      // but the cache stops accumulating new entries on disk.
      obs::RecordEvent(obs::EventKind::kDegradedMode, 1,
                       static_cast<int64_t>(bytes.value().size()),
                       "artifact_cache store skipped (read-only)");
    } else {
      // Best effort: a failed store (read-only dir, disk full) degrades
      // to an uncached compile, never to an error.
      (void)art::AtomicWriteFile(path, bytes.value());
    }
  }
  return out;
}

namespace {

// Run-path metric handles, resolved once per process. The aggregate
// cfgtag_tag_* metrics cover Tag() regardless of engine; the per-backend
// cfgtag_backend_* family splits calls and scanned-size distributions by
// the engine that served them, so a deployment mixing backends can compare
// them in one scrape.
struct BackendMetrics {
  obs::Counter* calls;
  obs::Counter* bytes;
  obs::Histogram* scan_bytes;
};

struct TagMetrics {
  obs::Counter* calls;
  obs::Counter* bytes;
  obs::Counter* tags;
  obs::Histogram* latency;
  BackendMetrics backend[3];  // indexed by TaggerBackend

  static const TagMetrics& Get() {
    static const TagMetrics* const kMetrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      auto* m = new TagMetrics;
      m->calls = reg.GetCounter("cfgtag_tag_calls_total",
                                "Tag() invocations (any backend)");
      m->bytes = reg.GetCounter("cfgtag_tag_bytes_total",
                                "Input bytes scanned by Tag()");
      m->tags = reg.GetCounter("cfgtag_tag_tokens_total",
                               "Tags emitted by Tag()");
      m->latency = reg.GetHistogram("cfgtag_tag_seconds",
                                    "Per-call Tag() wall time");
      const char* names[3] = {"functional", "fused", "lazy_dfa"};
      for (int b = 0; b < 3; ++b) {
        const std::string label =
            std::string("{backend=\"") + names[b] + "\"}";
        m->backend[b].calls =
            reg.GetCounter("cfgtag_backend_calls_total" + label,
                           "Tag() invocations served by this backend");
        m->backend[b].bytes =
            reg.GetCounter("cfgtag_backend_bytes_total" + label,
                           "Input bytes scanned by this backend");
        m->backend[b].scan_bytes = reg.GetHistogram(
            "cfgtag_backend_scan_bytes" + label,
            "Per-call input size distribution for this backend",
            obs::DefaultSizeBuckets());
      }
      return m;
    }();
    return *kMetrics;
  }
};

}  // namespace

std::vector<tagger::Tag> CompiledTagger::Tag(std::string_view input) const {
  std::vector<tagger::Tag> tags;
  Tag(input, [&tags](const tagger::Tag& t) {
    tags.push_back(t);
    return true;
  });
  return tags;
}

void CompiledTagger::Tag(std::string_view input,
                         const tagger::TagSink& sink) const {
  const TagMetrics& metrics = TagMetrics::Get();
  obs::ScopedTimer timer(metrics.latency);
  // Stream the input and then the flush padding through a pooled session:
  // the same bytes the old Padded() copy produced, minus the per-call
  // input copy and session construction. One extra pad byte beyond the
  // scanned range keeps the Fig. 7 look-ahead identical between the
  // engines at the final scanned byte.
  static const std::string& kPadding =
      *new std::string(kFlushPadding + 1, kFlushByte);
  const size_t scan_end = input.size() + kFlushPadding;
  uint64_t emitted = 0;
  const tagger::TagSink gated = [&](const tagger::Tag& t) {
    if (t.end >= scan_end) return true;
    ++emitted;
    return sink(t);
  };
  if (lazy_ != nullptr) {
    tagger::LazyDfaSessionPool::Handle session =
        lazy_->session_pool().Acquire(lazy_.get());
    session->Feed(input, gated);
    session->Feed(kPadding, gated);
    session->Finish(gated);
  } else if (fused_ != nullptr) {
    tagger::FusedSessionPool::Handle session =
        fused_->session_pool().Acquire(fused_.get());
    session->Feed(input, gated);
    session->Feed(kPadding, gated);
    session->Finish(gated);
  } else {
    tagger::SessionPool::Handle session =
        model_->session_pool().Acquire(model_.get());
    session->Feed(input, gated);
    session->Feed(kPadding, gated);
    session->Finish(gated);
  }
  metrics.calls->Increment();
  metrics.bytes->Increment(input.size());
  metrics.tags->Increment(emitted);
  const BackendMetrics& bm =
      metrics.backend[lazy_ != nullptr ? 2 : (fused_ != nullptr ? 1 : 0)];
  bm.calls->Increment();
  bm.bytes->Increment(input.size());
  bm.scan_bytes->Observe(static_cast<double>(input.size()));
}

Status CompiledTagger::TagWithControl(std::string_view input,
                                      const tagger::TagSink& sink,
                                      const resilience::ScanControl& control,
                                      std::atomic<uint64_t>* progress,
                                      uint64_t* consumed) const {
  const TagMetrics& metrics = TagMetrics::Get();
  obs::ScopedTimer timer(metrics.latency);
  static const std::string& kPadding =
      *new std::string(kFlushPadding + 1, kFlushByte);
  const size_t scan_end = input.size() + kFlushPadding;
  uint64_t emitted = 0;
  const tagger::TagSink gated = [&](const tagger::Tag& t) {
    if (t.end >= scan_end) return true;
    ++emitted;
    return sink(t);
  };
  const size_t step = control.check_interval_bytes == 0
                          ? input.size() + 1
                          : control.check_interval_bytes;
  size_t fed = 0;
  Status trip = Status::Ok();
  // Pooled sessions tolerate being returned half-fed (Acquire resets), so
  // an early trip just abandons the session — no padding, no Finish, and
  // a tag still open at the stop point is never reported.
  const auto run = [&](auto* session) {
    while (fed < input.size()) {
      trip = control.Check();
      if (!trip.ok()) return;
      resilience::FaultInjector::MaybeStall("scan.chunk");
      const size_t n = std::min(step, input.size() - fed);
      session->Feed(input.substr(fed, n), gated);
      fed += n;
      if (progress != nullptr) {
        progress->store(fed, std::memory_order_relaxed);
      }
    }
    trip = control.Check();
    if (!trip.ok()) return;
    session->Feed(kPadding, gated);
    session->Finish(gated);
  };
  if (lazy_ != nullptr) {
    tagger::LazyDfaSessionPool::Handle session =
        lazy_->session_pool().Acquire(lazy_.get());
    run(session.get());
  } else if (fused_ != nullptr) {
    tagger::FusedSessionPool::Handle session =
        fused_->session_pool().Acquire(fused_.get());
    run(session.get());
  } else {
    tagger::SessionPool::Handle session =
        model_->session_pool().Acquire(model_.get());
    run(session.get());
  }
  metrics.calls->Increment();
  metrics.bytes->Increment(fed);
  metrics.tags->Increment(emitted);
  const BackendMetrics& bm =
      metrics.backend[lazy_ != nullptr ? 2 : (fused_ != nullptr ? 1 : 0)];
  bm.calls->Increment();
  bm.bytes->Increment(fed);
  bm.scan_bytes->Observe(static_cast<double>(fed));
  if (consumed != nullptr) *consumed = fed;
  if (!trip.ok()) {
    resilience::CountControlTrip(trip, fed, input.size(), "core.Tag");
  }
  return trip;
}

StatusOr<std::vector<tagger::Tag>> CompiledTagger::TagCycleAccurate(
    std::string_view input) const {
  CFGTAG_RETURN_IF_ERROR(RequireHardware("TagCycleAccurate"));
  obs::ScopedSpan span("core.TagCycleAccurate");
  CFGTAG_ASSIGN_OR_RETURN(auto sim,
                          rtl::Simulator::Create(&hardware_.netlist));
  sim.EnableActivityStats(true);
  const std::string padded = Padded(input, kFlushPadding + 1);
  const size_t scan_end = input.size() + kFlushPadding;
  const size_t lanes = static_cast<size_t>(hardware_.lanes);
  const size_t num_tokens = hardware_.num_tokens;
  const auto& lane_latency = hardware_.lane_match_latency;

  int max_latency = 0;
  for (int lat : lane_latency) max_latency = std::max(max_latency, lat);
  const size_t last_cycle = (scan_end - 1) / lanes;
  const size_t total_steps =
      last_cycle + static_cast<size_t>(max_latency) + 1;

  std::vector<tagger::Tag> tags;
  for (size_t step = 0; step < total_steps; ++step) {
    // Feed lanes: lane k carries stream offset step*lanes + k; beyond the
    // padded input we keep feeding flush bytes.
    for (size_t k = 0; k < lanes; ++k) {
      const size_t offset = step * lanes + k;
      const unsigned char byte =
          offset < padded.size() ? static_cast<unsigned char>(padded[offset])
                                 : static_cast<unsigned char>(kFlushByte);
      for (size_t b = 0; b < 8; ++b) {
        sim.SetInput(hardware_.data_in[k * 8 + b], (byte >> b) & 1);
      }
    }
    sim.Step();
    for (size_t k = 0; k < lanes; ++k) {
      const size_t lat = static_cast<size_t>(lane_latency[k]);
      if (step < lat) continue;
      const size_t offset = (step - lat) * lanes + k;
      if (offset >= scan_end) continue;
      for (size_t t = 0; t < num_tokens; ++t) {
        if (sim.Get(hardware_.match_regs[k * num_tokens + t])) {
          tagger::Tag tag;
          tag.token = static_cast<int32_t>(t);
          tag.end = offset;
          tags.push_back(tag);
        }
      }
    }
  }
  // Per-lane readout order can interleave ends across lanes; normalize to
  // stream order (stable for equal ends: token order is preserved within a
  // lane readout).
  std::stable_sort(tags.begin(), tags.end(),
                   [](const tagger::Tag& a, const tagger::Tag& b) {
                     return a.end < b.end;
                   });
  // Export the run's switching activity — the software analogue of an FPGA
  // activity estimate, and the denominator for toggle-rate trends.
  const rtl::ActivityStats& activity = sim.activity();
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  reg.GetCounter("cfgtag_sim_cycles_total",
                 "Clock cycles simulated by TagCycleAccurate")
      ->Increment(activity.cycles);
  reg.GetCounter("cfgtag_sim_reg_toggles_total",
                 "Register toggles observed by TagCycleAccurate")
      ->Increment(activity.reg_toggles);
  reg.GetCounter("cfgtag_sim_gated_samples_total",
                 "Register-cycles held by a low clock-enable")
      ->Increment(activity.gated_samples);
  return tags;
}

StatusOr<std::vector<tagger::Tag>> CompiledTagger::TagViaIndexBus(
    std::string_view input) const {
  CFGTAG_RETURN_IF_ERROR(RequireHardware("TagViaIndexBus"));
  if (hardware_.index_valid == rtl::kInvalidNode) {
    return FailedPreconditionError("tagger was compiled without the encoder");
  }
  CFGTAG_ASSIGN_OR_RETURN(auto sim,
                          rtl::Simulator::Create(&hardware_.netlist));
  const std::string padded = Padded(input, kFlushPadding + 1);
  const size_t scan_end = input.size() + kFlushPadding;
  const int latency = hardware_.index_latency;
  const size_t total_steps = scan_end + static_cast<size_t>(latency);

  std::vector<tagger::Tag> tags;
  for (size_t step = 0; step < total_steps; ++step) {
    const unsigned char byte =
        step < padded.size() ? static_cast<unsigned char>(padded[step])
                             : static_cast<unsigned char>(kFlushByte);
    for (int b = 0; b < 8; ++b) {
      sim.SetInput(hardware_.data_in[b], (byte >> b) & 1);
    }
    sim.Step();
    if (step < static_cast<size_t>(latency)) continue;
    const size_t offset = step - static_cast<size_t>(latency);
    if (offset >= scan_end) continue;
    if (!sim.Get(hardware_.index_valid)) continue;
    uint32_t index = 0;
    for (size_t k = 0; k < hardware_.index_bits.size(); ++k) {
      if (sim.Get(hardware_.index_bits[k])) index |= 1u << k;
    }
    if (index >= hardware_.leaf_token.size() ||
        hardware_.leaf_token[index] < 0) {
      return InternalError("encoder reported an unmapped index " +
                           std::to_string(index));
    }
    tagger::Tag tag;
    tag.token = hardware_.leaf_token[index];
    tag.end = offset;
    tags.push_back(tag);
  }
  return tags;
}

StatusOr<ImplementationReport> CompiledTagger::Implement(
    const rtl::Device& device, bool optimize) const {
  CFGTAG_RETURN_IF_ERROR(RequireHardware("Implement"));
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::ScopedSpan span("core.Implement");
  obs::ScopedTimer timer(reg.GetHistogram(
      "cfgtag_implement_seconds", "Techmap + timing flow wall time"));

  rtl::TechMapper mapper(device.lut_inputs);
  rtl::Netlist optimized;
  const rtl::Netlist* to_map = &hardware_.netlist;
  if (optimize) {
    obs::ScopedSpan stage("rtl.Optimize");
    obs::ScopedTimer stage_timer(StageHistogram("optimize"));
    auto opt = rtl::Optimize(hardware_.netlist, nullptr);
    if (!opt.ok()) return opt.status().WithContext("optimize");
    optimized = std::move(opt).value();
    to_map = &optimized;
  }
  rtl::MappedNetlist mapped;
  {
    obs::ScopedSpan stage("rtl.TechMap");
    obs::ScopedTimer stage_timer(StageHistogram("techmap"));
    auto m = mapper.Map(*to_map);
    if (!m.ok()) return m.status().WithContext("techmap");
    mapped = std::move(m).value();
  }
  rtl::TimingReport timing;
  {
    obs::ScopedSpan stage("rtl.Timing");
    obs::ScopedTimer stage_timer(StageHistogram("timing"));
    auto t = rtl::TimingAnalyzer::Analyze(mapped, device);
    if (!t.ok()) return t.status().WithContext("timing");
    timing = std::move(t).value();
  }
  reg.GetGauge("cfgtag_implement_luts", "LUTs of the last Implement() call")
      ->Set(static_cast<double>(mapped.NumLuts()));
  reg.GetGauge("cfgtag_implement_ffs", "FFs of the last Implement() call")
      ->Set(static_cast<double>(mapped.NumFfs()));
  ImplementationReport report;
  report.device = device.name;
  report.area.luts = mapped.NumLuts();
  report.area.ffs = mapped.NumFfs();
  report.area.pattern_bytes = hardware_.pattern_bytes;
  report.area.luts_per_byte =
      hardware_.pattern_bytes == 0
          ? 0.0
          : static_cast<double>(report.area.luts) /
                static_cast<double>(hardware_.pattern_bytes);
  report.area.breakdown = rtl::BreakdownByScope(mapped);
  report.timing = std::move(timing);
  report.bandwidth_gbps = report.timing.fmax_mhz * 1e6 *
                          static_cast<double>(options_.bytes_per_cycle) * 8.0 /
                          1e9;
  return report;
}

StatusOr<std::string> CompiledTagger::ExportVhdl(
    const std::string& entity_name) const {
  CFGTAG_RETURN_IF_ERROR(RequireHardware("ExportVhdl"));
  return rtl::VhdlEmitter::Emit(hardware_.netlist, entity_name);
}

StatusOr<std::string> CompiledTagger::ExportVhdlTestbench(
    const std::string& entity_name, std::string_view input) const {
  CFGTAG_RETURN_IF_ERROR(RequireHardware("ExportVhdlTestbench"));
  const std::string padded = Padded(input, kFlushPadding + 1);
  const size_t scan_end = input.size() + kFlushPadding;
  const size_t lanes = static_cast<size_t>(hardware_.lanes);

  rtl::TestbenchStimulus stimulus;
  stimulus.lanes = hardware_.lanes;
  int max_latency = 0;
  for (int lat : hardware_.lane_match_latency) {
    max_latency = std::max(max_latency, lat);
  }
  const size_t total_cycles =
      (scan_end + lanes - 1) / lanes + static_cast<size_t>(max_latency) + 1;
  for (size_t cycle = 0; cycle < total_cycles; ++cycle) {
    std::vector<unsigned char> row(lanes, kFlushByte);
    for (size_t k = 0; k < lanes; ++k) {
      const size_t offset = cycle * lanes + k;
      if (offset < padded.size()) {
        row[k] = static_cast<unsigned char>(padded[offset]);
      }
    }
    stimulus.bytes.push_back(std::move(row));
  }

  // Expected observations from the functional model.
  std::vector<rtl::TestbenchCheck> checks;
  const std::string padded_for_model = Padded(input, kFlushPadding + 1);
  model_->Run(padded_for_model, [&](const tagger::Tag& t) {
    if (t.end >= scan_end) return true;
    const size_t lane = t.end % lanes;
    const size_t cycle = t.end / lanes +
                         static_cast<size_t>(
                             hardware_.lane_match_latency[lane]);
    std::string port = lanes == 1
                           ? "match_t" + std::to_string(t.token)
                           : "match_l" + std::to_string(lane) + "_t" +
                                 std::to_string(t.token);
    checks.push_back(rtl::TestbenchCheck{cycle, std::move(port), true});
    return true;
  });
  // A few negative checks: the first token's match port must be low while
  // the pipeline is still filling.
  if (hardware_.num_tokens > 0) {
    const std::string port0 =
        lanes == 1 ? "match_t0" : "match_l0_t0";
    for (uint64_t cycle = 0;
         cycle + 1 < static_cast<uint64_t>(hardware_.match_latency);
         ++cycle) {
      checks.push_back(rtl::TestbenchCheck{cycle, port0, false});
    }
  }
  return rtl::EmitVhdlTestbench(hardware_.netlist, entity_name, stimulus,
                                checks);
}

Status CompiledTagger::DumpWaveform(std::string_view input,
                                    std::ostream& os) const {
  CFGTAG_RETURN_IF_ERROR(RequireHardware("DumpWaveform"));
  CFGTAG_ASSIGN_OR_RETURN(auto sim,
                          rtl::Simulator::Create(&hardware_.netlist));
  rtl::VcdWriter vcd(&os, &hardware_.netlist);
  for (size_t b = 0; b < hardware_.data_in.size(); ++b) {
    vcd.AddSignal(hardware_.data_in[b], "d" + std::to_string(b));
  }
  for (size_t i = 0; i < hardware_.match_regs.size(); ++i) {
    const size_t t = i % hardware_.num_tokens;
    const size_t lane = i / hardware_.num_tokens;
    std::string name = "match_" + grammar_->tokens()[t].name;
    if (hardware_.lanes > 1) name += "_l" + std::to_string(lane);
    // VCD identifiers must not contain spaces.
    for (char& c : name) {
      if (std::isspace(static_cast<unsigned char>(c))) c = '_';
    }
    vcd.AddSignal(hardware_.match_regs[i], name);
  }
  if (hardware_.index_valid != rtl::kInvalidNode) {
    vcd.AddSignal(hardware_.index_valid, "index_valid");
    for (size_t k = 0; k < hardware_.index_bits.size(); ++k) {
      vcd.AddSignal(hardware_.index_bits[k], "index" + std::to_string(k));
    }
  }
  vcd.WriteHeader();

  const std::string padded = Padded(input, kFlushPadding + 1);
  const size_t lanes = static_cast<size_t>(hardware_.lanes);
  // Run long enough for the slowest output (the index encoder adds
  // ceil(log2 N) stages on top of the match latency) to drain.
  const int drain =
      std::max(hardware_.match_latency, hardware_.index_latency);
  const size_t total_steps = (padded.size() + lanes - 1) / lanes +
                             static_cast<size_t>(drain) + 1;
  for (size_t step = 0; step < total_steps; ++step) {
    for (size_t k = 0; k < lanes; ++k) {
      const size_t offset = step * lanes + k;
      const unsigned char byte =
          offset < padded.size() ? static_cast<unsigned char>(padded[offset])
                                 : static_cast<unsigned char>(kFlushByte);
      for (size_t b = 0; b < 8; ++b) {
        sim.SetInput(hardware_.data_in[k * 8 + b], (byte >> b) & 1);
      }
    }
    sim.Step();
    vcd.Sample(sim);
  }
  return Status::Ok();
}

}  // namespace cfgtag::core
