#include "core/worker_pool.h"

#include <algorithm>
#include <memory>

#include "obs/metrics.h"

namespace cfgtag::core {

namespace {

struct PoolMetrics {
  obs::Gauge* threads;
  obs::Gauge* queue_depth;
  obs::Counter* tasks;
  obs::Histogram* task_seconds;

  static const PoolMetrics& Get() {
    static const PoolMetrics* const kMetrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      auto* m = new PoolMetrics;
      m->threads = reg.GetGauge("cfgtag_engine_threads",
                                "Worker threads in the last-built pool");
      m->queue_depth =
          reg.GetGauge("cfgtag_engine_queue_depth",
                       "Tasks waiting in the worker pool queue");
      m->tasks = reg.GetCounter("cfgtag_engine_tasks_total",
                                "Tasks executed by pool workers");
      m->task_seconds = reg.GetHistogram(
          "cfgtag_engine_task_seconds",
          "Per-task wall time on a pool worker (busy time)");
      return m;
    }();
    return *kMetrics;
  }
};

}  // namespace

WorkerPool::WorkerPool(int num_threads) {
  int n = num_threads;
  if (n <= 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
    if (n <= 0) n = 1;
  }
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
  PoolMetrics::Get().threads->Set(static_cast<double>(n));
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    PoolMetrics::Get().queue_depth->Set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
}

size_t WorkerPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void WorkerPool::RunIndexed(size_t count,
                            const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (threads_.empty() || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  struct Join {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
  };
  auto join = std::make_shared<Join>();
  join->remaining = count;
  for (size_t i = 0; i < count; ++i) {
    // Capturing fn by reference is safe: this call blocks until every
    // task has run.
    Submit([&fn, i, join] {
      fn(i);
      std::lock_guard<std::mutex> lock(join->mu);
      if (--join->remaining == 0) join->cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(join->mu);
  join->cv.wait(lock, [&] { return join->remaining == 0; });
}

void WorkerPool::WorkerLoop() {
  const PoolMetrics& metrics = PoolMetrics::Get();
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      metrics.queue_depth->Set(static_cast<double>(queue_.size()));
    }
    metrics.tasks->Increment();
    obs::ScopedTimer timer(metrics.task_seconds);
    task();
  }
}

std::vector<size_t> ShardSplitPoints(std::string_view stream,
                                     const regex::CharClass& record_delimiters,
                                     size_t max_shards,
                                     size_t min_shard_bytes) {
  std::vector<size_t> starts{0};
  const size_t min_bytes = std::max<size_t>(min_shard_bytes, 1);
  if (max_shards <= 1 || stream.size() < 2 * min_bytes) return starts;
  const size_t target = std::max(min_bytes, stream.size() / max_shards);
  while (starts.size() < max_shards) {
    size_t probe = starts.back() + target;
    if (probe >= stream.size()) break;
    while (probe < stream.size() &&
           !record_delimiters.Test(
               static_cast<unsigned char>(stream[probe]))) {
      ++probe;
    }
    // The shard begins on the byte after the separator; a boundary at the
    // very end would create an empty shard, so stop instead.
    if (probe + 1 >= stream.size()) break;
    starts.push_back(probe + 1);
  }
  return starts;
}

}  // namespace cfgtag::core
