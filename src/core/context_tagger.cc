#include "core/context_tagger.h"

#include "obs/trace.h"

namespace cfgtag::core {

StatusOr<ContextualTagger> ContextualTagger::Compile(
    const grammar::Grammar& grammar, const hwgen::HwOptions& options) {
  obs::ScopedSpan span("core.ContextualCompile");
  auto original = std::make_unique<grammar::Grammar>(grammar.Clone());
  auto expansion = [&] {
    obs::ScopedSpan stage("grammar.ExpandContexts");
    return grammar::ExpandContexts(grammar);
  }();
  if (!expansion.ok()) {
    return expansion.status().WithContext("context expansion");
  }
  CFGTAG_ASSIGN_OR_RETURN(
      auto tagger,
      CompiledTagger::Compile(std::move(expansion->grammar), options));
  return ContextualTagger(std::move(original),
                          std::move(expansion->contexts),
                          std::move(tagger));
}

ContextTag ContextualTagger::Annotate(const tagger::Tag& t) const {
  ContextTag out;
  out.tag = t;
  if (t.token >= 0 && static_cast<size_t>(t.token) < contexts_.size()) {
    const grammar::TokenContext& ctx = contexts_[t.token];
    out.base_token = ctx.base_token;
    out.production = ctx.production;
    out.position = ctx.position;
  }
  return out;
}

std::vector<ContextTag> ContextualTagger::Tag(std::string_view input) const {
  std::vector<ContextTag> out;
  for (const tagger::Tag& t : tagger_.Tag(input)) {
    out.push_back(Annotate(t));
  }
  return out;
}

StatusOr<std::vector<ContextTag>> ContextualTagger::TagCycleAccurate(
    std::string_view input) const {
  CFGTAG_ASSIGN_OR_RETURN(auto tags, tagger_.TagCycleAccurate(input));
  std::vector<ContextTag> out;
  out.reserve(tags.size());
  for (const tagger::Tag& t : tags) out.push_back(Annotate(t));
  return out;
}

std::string ContextualTagger::DescribeContext(const ContextTag& tag) const {
  if (tag.base_token < 0) return "<unknown>";
  std::string out = original_->tokens()[tag.base_token].name;
  if (tag.production < 0) return out;
  const grammar::Production& p = original_->productions()[tag.production];
  out += " in " + original_->nonterminals()[p.lhs] + " ->";
  for (const grammar::Symbol& s : p.rhs) {
    out += " " + original_->SymbolName(s);
  }
  out += " at position " + std::to_string(tag.position);
  return out;
}

}  // namespace cfgtag::core
