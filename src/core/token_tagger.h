#ifndef CFGTAG_CORE_TOKEN_TAGGER_H_
#define CFGTAG_CORE_TOKEN_TAGGER_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/resilience/deadline.h"
#include "grammar/grammar.h"
#include "hwgen/tagger_gen.h"
#include "rtl/device.h"
#include "rtl/techmap.h"
#include "rtl/timing.h"
#include "tagger/functional_model.h"
#include "tagger/fused_model.h"
#include "tagger/lazy_dfa.h"
#include "tagger/tag.h"

namespace cfgtag::tagger::artifact {
struct LoadedTagger;
}  // namespace cfgtag::tagger::artifact

namespace cfgtag::core {

// Area of an implementation, in the units of the paper's Table 1.
struct AreaReport {
  size_t luts = 0;
  size_t ffs = 0;
  size_t pattern_bytes = 0;
  double luts_per_byte = 0.0;
  // Per-module attribution (decoder / tokenizer / syntax / encoder) — the
  // breakdown behind the paper's "as the size of the grammar increases ...
  // the number of LUTs per byte decreases" amortization argument.
  std::vector<rtl::AreaBucket> breakdown;
};

// One Table 1 row: what the vendor flow would report for a device.
struct ImplementationReport {
  std::string device;
  AreaReport area;
  rtl::TimingReport timing;
  // Fmax x bytes-per-cycle x 8 bits.
  double bandwidth_gbps = 0.0;
};

// The library's main entry point: compiles a grammar into (a) a fast
// software tagger, (b) a gate-level netlist of the paper's architecture,
// and (c) area/timing reports for a target FPGA device. The two tagging
// engines implement identical semantics; the cycle-accurate engine exists
// to validate the hardware, the functional model to use it at speed.
class CompiledTagger {
 public:
  static StatusOr<CompiledTagger> Compile(grammar::Grammar grammar,
                                          const hwgen::HwOptions& options = {});

  // --- Artifacts ---------------------------------------------------------
  // Zero-copy compiled-tagger artifacts (see docs/artifact_cache.md): the
  // software engine's tables serialized into one flat, checksummed,
  // mmap-able file, loadable without recompiling the grammar.

  // Serializes the software tagger — fused or lazy-DFA backend only; the
  // functional backend keeps no flat tables and returns an error. For the
  // lazy backend the artifact also carries an ahead-of-time determinized
  // transition table (options.tagger.aot_state_budget states).
  StatusOr<std::string> Serialize() const;

  // Rebuilds a tagger from artifact bytes (one aligned copy) or straight
  // from a file (mmap'd; the zero-copy path). The result is software-only:
  // has_hardware() is false and the netlist/report methods return errors.
  static StatusOr<CompiledTagger> Deserialize(std::string_view bytes);
  static StatusOr<CompiledTagger> LoadArtifact(const std::string& path);
  // Like LoadArtifact but via artifact::LoadFromFileCopied: no mapping,
  // so immune to SIGBUS from concurrent in-place truncation of the file.
  static StatusOr<CompiledTagger> LoadArtifactCopied(const std::string& path);

  // Content-addressed compile cache under `cache_dir`, keyed by
  // (grammar::CanonicalHash, artifact::OptionsHash) — pure content, so
  // textually reordered but equivalent grammars share an entry. A hit
  // loads the artifact (no hwgen, no regex compilation of the tables); a
  // miss compiles, stores the artifact atomically, and returns the full
  // tagger. A kAuto backend request is resolved to the lazy DFA whenever
  // AOT is enabled, so cached cold starts run out of the baked table.
  static StatusOr<CompiledTagger> CompileCached(grammar::Grammar grammar,
                                                const hwgen::HwOptions& options,
                                                const std::string& cache_dir);

  // False when this tagger was loaded from an artifact: only the software
  // engine exists — hardware(), model() and the netlist-backed methods
  // (TagCycleAccurate, Implement, ExportVhdl, ...) are unavailable.
  bool has_hardware() const { return !software_only_; }

  CompiledTagger(CompiledTagger&&) = default;
  CompiledTagger& operator=(CompiledTagger&&) = default;

  const grammar::Grammar& grammar() const {
    return grammar_ ? *grammar_ : *loaded_grammar_;
  }
  const hwgen::GeneratedTagger& hardware() const { return hardware_; }
  const tagger::FunctionalTagger& model() const { return *model_; }
  // The fused bit-parallel engine; built only when the resolved backend is
  // TaggerBackend::kFused (null otherwise).
  const tagger::FusedTagger* fused_model() const { return fused_.get(); }
  // The lazy-DFA engine; built only when the resolved backend is
  // TaggerBackend::kLazyDfa (null otherwise). It owns the fused engine it
  // memoizes.
  const tagger::LazyDfaTagger* lazy_model() const { return lazy_.get(); }
  // The engine Tag() dispatches to. A kAuto request is resolved during
  // Compile (see LazyDfaTagger::AutoPrefers), so this is never kAuto.
  tagger::TaggerBackend backend() const { return options_.tagger.backend; }
  const hwgen::HwOptions& options() const { return options_; }

  // --- Tagging -----------------------------------------------------------
  // The input is extended with kFlushPadding flush bytes (a delimiter, so
  // no new token can start there) before scanning; a trailing open-class
  // token may therefore report an end offset just past the input.

  // Fast software tagging via the bit-parallel functional model.
  std::vector<tagger::Tag> Tag(std::string_view input) const;
  void Tag(std::string_view input, const tagger::TagSink& sink) const;

  // Controlled tagging: the same tag stream as Tag(), but the input is
  // fed in control.check_interval_bytes chunks with a deadline/cancel
  // check (and the scan.chunk fault site) at each boundary — the byte-
  // stepping hot loops are untouched. On a trip the scan stops at the
  // last chunk boundary and returns kDeadlineExceeded / kCancelled; every
  // tag already emitted to `sink` is valid for the consumed prefix (a tag
  // still open at the stop point is simply not reported, exactly as if
  // the stream had ended there without its flush). The trip is counted
  // (cfgtag_deadline_exceeded_total / cfgtag_scan_cancelled_total) and
  // flight-recorded once, here. `progress`, when set, is advanced to the
  // consumed byte count after every chunk (the scan-engine watchdog's
  // heartbeat); `consumed` receives the final count.
  Status TagWithControl(std::string_view input, const tagger::TagSink& sink,
                        const resilience::ScanControl& control,
                        std::atomic<uint64_t>* progress = nullptr,
                        uint64_t* consumed = nullptr) const;

  // Cycle-accurate tagging: simulates the generated netlist gate by gate
  // and decodes the per-token match registers. Bit-identical to Tag() —
  // the equivalence tests enforce it — but orders of magnitude slower.
  StatusOr<std::vector<tagger::Tag>> TagCycleAccurate(
      std::string_view input) const;

  // Cycle-accurate tagging through the §3.4 index-encoder bus instead of
  // the per-token match bits. Valid when at most one token matches per
  // cycle (or priorities per eq. 5 are in force).
  StatusOr<std::vector<tagger::Tag>> TagViaIndexBus(
      std::string_view input) const;

  // --- Implementation reports --------------------------------------------
  // Maps the generated netlist onto `device` and runs timing analysis.
  // With `optimize` set, a synthesis-style cleanup pass (CSE, constant
  // folding, dead-logic removal) runs first; the default reports the raw
  // generated structure, which is what the Table 1 calibration assumes.
  StatusOr<ImplementationReport> Implement(const rtl::Device& device,
                                           bool optimize = false) const;

  // Structural VHDL for the generated design (the paper generator's output
  // artifact).
  StatusOr<std::string> ExportVhdl(const std::string& entity_name) const;

  // Debug aid: simulates `input` through the netlist while dumping a VCD
  // waveform of the input byte, every match register and the index bus to
  // `os`. View with any VCD viewer (gtkwave etc.).
  Status DumpWaveform(std::string_view input, std::ostream& os) const;

  // Emits a self-checking VHDL testbench that feeds `input` into the
  // exported design (ExportVhdl with the same entity name) and asserts the
  // match outputs this library computed — the hand-off artifact for users
  // verifying the VHDL in a real simulator (GHDL etc.).
  StatusOr<std::string> ExportVhdlTestbench(const std::string& entity_name,
                                            std::string_view input) const;

  static constexpr size_t kFlushPadding = 8;
  static constexpr char kFlushByte = '\n';

 private:
  CompiledTagger() = default;

  // Serialize with caller-chosen header hashes (the compile cache stamps
  // the lookup key rather than recomputing it from resolved options).
  StatusOr<std::string> SerializeWithHashes(uint64_t grammar_hash,
                                            uint64_t options_hash) const;
  static StatusOr<CompiledTagger> AdoptLoaded(tagger::artifact::LoadedTagger);
  Status RequireHardware(const char* what) const;

  std::unique_ptr<grammar::Grammar> grammar_;  // stable address
  // Artifact-loaded taggers observe the grammar owned by the engine's
  // backing instead (grammar_ stays null; see grammar()).
  const grammar::Grammar* loaded_grammar_ = nullptr;
  bool software_only_ = false;
  hwgen::HwOptions options_;
  hwgen::GeneratedTagger hardware_;
  std::unique_ptr<tagger::FunctionalTagger> model_;
  std::unique_ptr<tagger::FusedTagger> fused_;  // only for the fused backend
  std::unique_ptr<tagger::LazyDfaTagger> lazy_;  // only for the lazy backend
};

}  // namespace cfgtag::core

#endif  // CFGTAG_CORE_TOKEN_TAGGER_H_
