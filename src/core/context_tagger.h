#ifndef CFGTAG_CORE_CONTEXT_TAGGER_H_
#define CFGTAG_CORE_CONTEXT_TAGGER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/token_tagger.h"
#include "grammar/token_context.h"

namespace cfgtag::core {

// A tag enriched with its grammatical context — which production and RHS
// position matched, not just which pattern (paper §3.2: "for streaming
// applications, one would want to determine the context of the tokens
// during the detection process ... by automatically duplicating the tokens
// used in multiple contexts").
struct ContextTag {
  tagger::Tag tag;          // token id in the *expanded* grammar
  int32_t base_token = -1;  // token id in the original grammar
  int32_t production = -1;  // production index in the original grammar
  int32_t position = -1;    // RHS position; -1 for single-context tokens
};

// Compiles a grammar through the §3.2 context expansion: every multi-site
// token becomes one hardware tokenizer per site, so the tag stream reveals
// the grammatical role of each occurrence (e.g. the three [0-9][0-9]
// fields of a dateTime tag as HOUR vs MIN vs SEC even when they share one
// token definition).
class ContextualTagger {
 public:
  static StatusOr<ContextualTagger> Compile(
      const grammar::Grammar& grammar, const hwgen::HwOptions& options = {});

  // Tags with context, via the functional model.
  std::vector<ContextTag> Tag(std::string_view input) const;

  // Cycle-accurate variant (gate-level netlist of the expanded design).
  StatusOr<std::vector<ContextTag>> TagCycleAccurate(
      std::string_view input) const;

  // Human-readable description of a tag's context, e.g.
  // "NUM in time -> NUM ':' NUM ':' NUM at position 2".
  std::string DescribeContext(const ContextTag& tag) const;

  const CompiledTagger& tagger() const { return tagger_; }
  const grammar::Grammar& original_grammar() const { return *original_; }

 private:
  ContextualTagger(std::unique_ptr<grammar::Grammar> original,
                   std::vector<grammar::TokenContext> contexts,
                   CompiledTagger tagger)
      : original_(std::move(original)),
        contexts_(std::move(contexts)),
        tagger_(std::move(tagger)) {}

  ContextTag Annotate(const tagger::Tag& t) const;

  std::unique_ptr<grammar::Grammar> original_;
  std::vector<grammar::TokenContext> contexts_;  // by expanded token id
  CompiledTagger tagger_;
};

}  // namespace cfgtag::core

#endif  // CFGTAG_CORE_CONTEXT_TAGGER_H_
