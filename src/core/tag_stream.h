#ifndef CFGTAG_CORE_TAG_STREAM_H_
#define CFGTAG_CORE_TAG_STREAM_H_

#include <cstdint>
#include <map>
#include <vector>

#include "tagger/tag.h"

namespace cfgtag::core {

// Small reusable back-ends (paper §3.5): the tag stream produced by a
// tagger feeds one of these the way the hardware back-end consumes the
// token-index bus.

// Counts matches per token id.
class TokenCounter {
 public:
  void Add(const tagger::Tag& tag) { counts_[tag.token]++; }
  uint64_t Count(int32_t token) const {
    auto it = counts_.find(token);
    return it == counts_.end() ? 0 : it->second;
  }
  uint64_t Total() const {
    uint64_t n = 0;
    for (const auto& [token, c] : counts_) n += c;
    return n;
  }
  const std::map<int32_t, uint64_t>& counts() const { return counts_; }

 private:
  std::map<int32_t, uint64_t> counts_;
};

// The switch of Fig. 12: selected tokens steer the whole message to an
// output port. The first routing token seen wins; messages containing no
// routing token go to the default port.
class TagRouter {
 public:
  explicit TagRouter(int default_port) : default_port_(default_port) {}

  void AddRoute(int32_t token, int port) { routes_[token] = port; }

  // Port for a message whose tag stream is `tags`.
  int Route(const std::vector<tagger::Tag>& tags) const {
    for (const tagger::Tag& t : tags) {
      auto it = routes_.find(t.token);
      if (it != routes_.end()) return it->second;
    }
    return default_port_;
  }

  int default_port() const { return default_port_; }

 private:
  std::map<int32_t, int> routes_;
  int default_port_;
};

}  // namespace cfgtag::core

#endif  // CFGTAG_CORE_TAG_STREAM_H_
