#ifndef CFGTAG_CORE_WORKER_POOL_H_
#define CFGTAG_CORE_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "regex/char_class.h"

namespace cfgtag::core {

// Fixed-size worker pool behind the parallel scan paths (nids::ScanEngine,
// cfgtagc --threads). Workers are spawned once and live for the pool's
// lifetime; work arrives through an internal queue whose depth and task
// wall times are exported as cfgtag_engine_* metrics, so saturation and
// worker utilization are visible in the same registry as the scan
// counters.
class WorkerPool {
 public:
  // num_threads <= 0 picks one worker per hardware thread.
  explicit WorkerPool(int num_threads = 0);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int num_threads() const { return static_cast<int>(threads_.size()); }

  // Enqueues one task for any worker.
  void Submit(std::function<void()> task);

  // Runs fn(0), ..., fn(count-1) across the pool and returns once every
  // call has completed. Callers key results by index, so the output is
  // deterministic regardless of which worker ran which index. Not
  // reentrant: must not be called from inside a pool task.
  void RunIndexed(size_t count, const std::function<void(size_t)>& fn);

  size_t QueueDepth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool shutdown_ = false;
};

// Plans a record-aligned sharding of `stream` for parallel scanning:
// returns shard start offsets, first always 0, at most `max_shards` of
// them, each shard at least roughly `min_shard_bytes` long. Every shard
// after the first starts on the byte following a `record_delimiters` byte.
//
// `record_delimiters` must be the stream's RECORD separator (the byte
// class that appears only between complete messages, e.g. '\n' for
// line-framed protocols) — NOT the tagger's full token-delimiter set. A
// resync-mode tagger started fresh after a record separator sees exactly
// the state a streaming tagger would carry there (start tokens armed, no
// pending follow-set arms). At an arbitrary token delimiter that is not
// true: the streaming tagger still holds the follow-set arms of the
// message in flight, so a fresh tagger would drop every remaining token
// of that message. Returns {0} (no split) when the stream is too small or
// no separator is found.
std::vector<size_t> ShardSplitPoints(std::string_view stream,
                                     const regex::CharClass& record_delimiters,
                                     size_t max_shards,
                                     size_t min_shard_bytes);

}  // namespace cfgtag::core

#endif  // CFGTAG_CORE_WORKER_POOL_H_
