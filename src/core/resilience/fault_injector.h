#ifndef CFGTAG_CORE_RESILIENCE_FAULT_INJECTOR_H_
#define CFGTAG_CORE_RESILIENCE_FAULT_INJECTOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace cfgtag::core::resilience {

// Deterministic fault injection for the scan pipeline, compiled in always.
// Call sites are named hooks ("artifact.mmap", "scan.chunk", ...) baked
// into the production code; each site has an intrinsic fault kind — an
// operation that must fail, a worker that must stall, or a clock that must
// skew. Nothing fires until a site is armed, either programmatically
// (Arm/ArmFromSpec) or through the CFGTAG_FAULTS environment variable,
// read once on first use.
//
// Spec syntax (env var and ArmFromSpec): comma-separated entries
//
//   site[:period[:arg_ms]]
//
// `period` fires the fault on every period-th evaluation of the site
// (default 1 = every time); `arg_ms` is the stall duration for kStall
// sites and the forward clock skew for kClockSkew sites (milliseconds;
// error sites ignore it). Example:
//
//   CFGTAG_FAULTS="artifact.mmap,scan.chunk:3:5,deadline.clock:1:1000"
//
// Disarmed cost: the production hooks reduce to one relaxed atomic load
// and a predictable branch — no lock, no map lookup, no string hashing —
// so the layer can stay compiled into release binaries.
class FaultInjector {
 public:
  enum class FaultKind {
    kError,      // the guarded operation reports failure
    kStall,      // the calling thread sleeps for arg_ms
    kClockSkew,  // observed clocks jump forward by arg_ms
  };

  // One row of the compiled-in site catalog (see SiteCatalog()).
  struct SiteInfo {
    const char* name;
    FaultKind kind;
    const char* where;  // the instrumented operation, for docs/errors
  };

  // The process-wide injector. First use parses CFGTAG_FAULTS (a malformed
  // spec is reported on stderr and ignored — a typo must not turn into
  // silent chaos in production).
  static FaultInjector& Instance();

  // True when at least one site is armed. This is the fast-path guard the
  // inline hooks below check before doing anything else.
  static bool AnyArmed() {
    const int s = armed_state_.load(std::memory_order_relaxed);
    if (s >= 0) return s > 0;
    return InitArmed();
  }

  // --- Production hooks ---------------------------------------------------

  // kError sites: true = the caller must fail the guarded operation.
  static bool ShouldFail(const char* site) {
    if (!AnyArmed()) return false;
    return Instance().ShouldFailSlow(site);
  }

  // kStall sites: sleeps the calling thread when the site fires.
  static void MaybeStall(const char* site) {
    if (!AnyArmed()) return;
    Instance().MaybeStallSlow(site);
  }

  // kClockSkew sites: nanoseconds to add to the observed monotonic clock.
  static std::chrono::nanoseconds ClockSkew(const char* site) {
    if (!AnyArmed()) return std::chrono::nanoseconds(0);
    return Instance().ClockSkewSlow(site);
  }

  // --- Arming -------------------------------------------------------------

  // Arms one catalog site. `period` >= 1 fires every period-th evaluation;
  // `arg_ms` is the stall/skew magnitude (0 picks the kind's default).
  // Unknown sites are rejected — a misspelled site is a dead test.
  Status Arm(std::string_view site, uint32_t period = 1, uint32_t arg_ms = 0);

  // Parses and arms a full spec (see the syntax above). Partial arming on
  // error is avoided: the spec is validated before any site arms.
  Status ArmFromSpec(std::string_view spec);

  // Disarms every site and restores the zero-cost fast path.
  void DisarmAll();

  // Total faults fired since process start / per site (0 if never armed).
  uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }
  uint64_t injected_at(std::string_view site) const;

  // The compiled-in site catalog, for docs, --help and spec validation.
  static const std::vector<SiteInfo>& SiteCatalog();

 private:
  struct Site {
    FaultKind kind = FaultKind::kError;
    uint32_t period = 1;
    uint32_t arg_ms = 0;
    uint64_t hits = 0;
    uint64_t fired = 0;
    obs::Counter* counter = nullptr;  // cfgtag_faults_injected_total{site=}
  };

  FaultInjector() = default;
  static bool InitArmed();

  bool ShouldFailSlow(const char* site);
  void MaybeStallSlow(const char* site);
  std::chrono::nanoseconds ClockSkewSlow(const char* site);

  // Evaluates `site` under mu_: counts the hit and reports whether it
  // fires this time (and with what magnitude).
  bool Evaluate(const char* site, FaultKind kind, uint32_t* arg_ms);

  mutable std::mutex mu_;
  std::unordered_map<std::string, Site> sites_;
  std::atomic<uint64_t> injected_{0};

  // -1 = CFGTAG_FAULTS not yet consulted, 0 = disarmed, 1 = armed.
  static std::atomic<int> armed_state_;
};

}  // namespace cfgtag::core::resilience

#endif  // CFGTAG_CORE_RESILIENCE_FAULT_INJECTOR_H_
