#ifndef CFGTAG_CORE_RESILIENCE_DEADLINE_H_
#define CFGTAG_CORE_RESILIENCE_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/status.h"
#include "core/resilience/fault_injector.h"

namespace cfgtag::core::resilience {

// A monotonic-clock time budget for one operation. Default-constructed
// deadlines are infinite (never expire), so plumbing a Deadline through an
// API costs nothing for callers that do not set one. Checked at chunk
// boundaries only — the contract of the whole resilience layer is that
// the byte-stepping hot loops never see a clock read.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() : at_(Clock::time_point::max()) {}

  static Deadline Infinite() { return Deadline(); }
  static Deadline At(Clock::time_point at) { return Deadline(at); }
  static Deadline After(std::chrono::nanoseconds d) {
    return Deadline(Clock::now() + d);
  }
  static Deadline AfterMillis(int64_t ms) {
    return After(std::chrono::milliseconds(ms));
  }

  bool infinite() const { return at_ == Clock::time_point::max(); }

  // True once the budget is spent. The clock read honors the
  // "deadline.clock" fault site: an armed skew moves the observed now()
  // forward, forcing early expiry without real waiting.
  bool expired() const {
    if (infinite()) return false;
    Clock::time_point now = Clock::now();
    if (FaultInjector::AnyArmed()) {
      now += FaultInjector::ClockSkew("deadline.clock");
    }
    return now >= at_;
  }

  // Time left; zero when expired, Clock::duration::max() when infinite.
  Clock::duration remaining() const {
    if (infinite()) return Clock::duration::max();
    const Clock::time_point now = Clock::now();
    return now >= at_ ? Clock::duration::zero() : at_ - now;
  }

  Clock::time_point at() const { return at_; }

 private:
  explicit Deadline(Clock::time_point at) : at_(at) {}
  Clock::time_point at_;
};

// Cooperative cancellation: a copyable handle to a shared flag. Cancel()
// is sticky and thread-safe; scans observe it at chunk boundaries and
// return kCancelled with whatever they produced so far. Child() makes a
// token that trips when either it or its parent is cancelled — the scan
// engine's watchdog cancels its own child without ever touching the
// caller's token.
class CancelToken {
 public:
  // A fresh, cancellable token.
  CancelToken() : state_(std::make_shared<State>()) {}

  // The inert token: never cancelled, Cancel() is a no-op. The default
  // for controls that only carry a deadline.
  static CancelToken None() { return CancelToken(nullptr); }

  void Cancel() const {
    if (state_ != nullptr) {
      state_->flag.store(true, std::memory_order_relaxed);
    }
  }

  bool cancelled() const {
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      if (s->flag.load(std::memory_order_relaxed)) return true;
    }
    return false;
  }

  // A token cancelled by its own Cancel() or by this token's.
  CancelToken Child() const {
    CancelToken child;
    child.state_->parent = state_;
    return child;
  }

 private:
  struct State {
    std::atomic<bool> flag{false};
    std::shared_ptr<const State> parent;
  };
  explicit CancelToken(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

// The bundle threaded through the controlled scan paths: a deadline, a
// cancellation token, and the granularity at which both are checked. The
// default is fully inert (infinite deadline, inert token), so a
// default-constructed control reproduces the uncontrolled scan exactly,
// minus one branch per chunk.
struct ScanControl {
  Deadline deadline;
  CancelToken cancel = CancelToken::None();
  // Bytes fed between control checks. Smaller = tighter deadline/cancel
  // latency, larger = fewer clock reads; 64 KiB keeps the check cost
  // below noise at memory-bandwidth scan speeds.
  size_t check_interval_bytes = 64 * 1024;

  // kOk, kCancelled (checked first: an explicit cancel beats a timeout),
  // or kDeadlineExceeded. Does not record events — the scan that aborts
  // on a non-OK check owns the metric and flight-recorder entry, so one
  // trip is counted once no matter how many layers observe it.
  Status Check() const;
};

// Counts and flight-records one aborted controlled scan: increments
// cfgtag_deadline_exceeded_total / cfgtag_scan_cancelled_total per the
// status code and records the matching event with the consumed/total byte
// counts. Call exactly once per aborted top-level scan.
void CountControlTrip(const Status& status, uint64_t consumed_bytes,
                      uint64_t total_bytes, const char* where);

}  // namespace cfgtag::core::resilience

#endif  // CFGTAG_CORE_RESILIENCE_DEADLINE_H_
